package lint

import (
	"go/ast"
	"go/types"
)

// CloseLeak reports handles acquired from the I/O layers — snapifyio
// streams, snapstore uploads, vfs/hostfs/ramfs/nfs writers and files —
// that are not released on every CFG path out of the acquiring function.
// The classic shape is the early error return between two opens:
//
//	src, err := fs.Open(a)
//	if err != nil { return err }
//	dst, err := fs.Create(b)
//	if err != nil { return err } // src leaks here
//
// On the simulated platform a leaked writer means an assembly that is
// never committed or aborted (snapstore GC can then never collect its
// chunks) and a stream slot the daemon counts as live forever. The engine
// is the shared acquire/release dataflow in leak.go: Close/Abort/Commit
// and friends discharge (directly or deferred), and any escape — return,
// store, pass, capture — moves the obligation elsewhere.
var CloseLeak = &Analyzer{
	Name: "closeleak",
	Doc:  "every handle opened via snapifyio/snapstore/vfs must be released on all paths out of the function",
	Run:  runCloseLeak,
}

// closeLeakPkgs are the import-path suffixes whose constructors and Open
// methods hand out tracked handles. Interface methods count through the
// package declaring the interface (vfs.FS.Create's callee lives in vfs no
// matter which adapter implements it).
var closeLeakPkgs = []string{
	"internal/snapifyio",
	"internal/snapstore",
	"internal/vfs",
	"internal/hostfs",
	"internal/ramfs",
	"internal/nfs",
	"internal/stream",
}

// closeLeakRelease are the discharging method names: Close for streams
// and files, Abort/Commit for two-phase writers and uploads, Detach for
// endpoints, Discard/Release for store references, Stop for services.
var closeLeakRelease = map[string]bool{
	"Close":   true,
	"Abort":   true,
	"Commit":  true,
	"Detach":  true,
	"Discard": true,
	"Release": true,
	"Stop":    true,
}

// closeLeakReleaseNames is closeLeakRelease in fixed order, for the
// deterministic type-level method lookup.
var closeLeakReleaseNames = []string{"Close", "Abort", "Commit", "Detach", "Discard", "Release", "Stop"}

var closeLeakSpec = &leakSpec{
	isAcquire: func(p *Pass, f *types.Func) bool {
		if f.Pkg() == nil {
			return false
		}
		for _, suffix := range closeLeakPkgs {
			if pathHasSuffix(f.Pkg().Path(), suffix) {
				return true
			}
		}
		return false
	},
	isResource: func(t types.Type) bool {
		return hasReleaseMethod(t, closeLeakReleaseNames)
	},
	release: closeLeakRelease,
	describe: func(p *Pass, call *ast.CallExpr, f *types.Func, obj types.Object) string {
		return "handle \"" + obj.Name() + "\" from " + funcDisplayName(f)
	},
	verb:   "released",
	advice: "close or abort it on the error path (or defer the release)",
}

func runCloseLeak(p *Pass) {
	runLeak(p, closeLeakSpec)
}
