package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"snapify/internal/simclock"
)

// Span is one completed slice of virtual time on a track. Start and Dur
// are virtual (simclock) — the tracer never reads the wall clock.
type Span struct {
	Process string // track process name (e.g. "host", "mic0")
	Thread  string // track thread name (e.g. "coid", "app/stream 3")
	Name    string
	Scope   uint64 // correlates spans across tracks; 0 = unscoped
	Start   simclock.Duration
	Dur     simclock.Duration
	Args    map[string]int64
}

// End returns the virtual end time of the span.
func (s Span) End() simclock.Duration { return s.Start + s.Dur }

// Tracer records spans across named tracks. A track is a (process,
// thread) pair and maps onto a Perfetto pid/tid lane; creation order
// fixes the numeric IDs so exports are deterministic.
type Tracer struct {
	mu        sync.Mutex
	tracks    map[[2]string]*Track
	order     []*Track
	procIDs   map[string]int
	spans     []Span
	nextScope uint64
	onEmit    func(Span)
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer {
	return &Tracer{
		tracks:  make(map[[2]string]*Track),
		procIDs: make(map[string]int),
	}
}

// Track returns the track for (process, thread), creating it on first
// use. Returns nil on a nil tracer.
func (t *Tracer) Track(process, thread string) *Track {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	key := [2]string{process, thread}
	if tk, ok := t.tracks[key]; ok {
		return tk
	}
	pid, ok := t.procIDs[process]
	if !ok {
		pid = len(t.procIDs) + 1
		t.procIDs[process] = pid
	}
	tk := &Track{
		tracer:  t,
		process: process,
		thread:  thread,
		pid:     pid,
		tid:     len(t.order) + 1,
	}
	t.tracks[key] = tk
	t.order = append(t.order, tk)
	return tk
}

// NewScope mints a unique nonzero scope ID used to correlate spans
// emitted on different tracks (e.g. the shard workers of one capture).
// Returns 0 on a nil tracer; scope 0 means "unscoped" everywhere.
func (t *Tracer) NewScope() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextScope++
	return t.nextScope
}

// SetOnEmit installs a callback invoked for every span the tracer
// records (the flight recorder's feed). The callback runs under the
// tracer lock and must be cheap; it must not call back into this tracer.
func (t *Tracer) SetOnEmit(fn func(Span)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.onEmit = fn
}

// ScopeSpans returns (a copy of) every span recorded under scope, in
// emission order. Scope 0 never matches.
func (t *Tracer) ScopeSpans(scope uint64) []Span {
	if t == nil || scope == 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Span
	for _, s := range t.spans {
		if s.Scope == scope {
			out = append(out, s)
		}
	}
	return out
}

// Spans returns a copy of every recorded span in emission order.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// Track is one pid/tid lane of the trace. It keeps a cursor — the
// virtual time at which the next convenience Span() starts — advanced
// by every emission and by AlignTo.
type Track struct {
	tracer  *Tracer
	process string
	thread  string
	pid     int
	tid     int
	cursor  simclock.Duration
}

// AlignTo moves the track cursor forward to at (no-op if the cursor is
// already past it). Used to pin a device-side track onto the host's
// virtual timeline before remote work starts.
func (tk *Track) AlignTo(at simclock.Duration) {
	if tk == nil {
		return
	}
	tk.tracer.mu.Lock()
	defer tk.tracer.mu.Unlock()
	if at > tk.cursor {
		tk.cursor = at
	}
}

// Now returns the track cursor.
func (tk *Track) Now() simclock.Duration {
	if tk == nil {
		return 0
	}
	tk.tracer.mu.Lock()
	defer tk.tracer.mu.Unlock()
	return tk.cursor
}

// Emit records a span with an explicit start time and returns the
// record; the cursor advances to at least the span's end. Args may be
// nil. On a nil track it returns a zero-name span carrying start/dur so
// callers can still derive report fields from the return value.
func (tk *Track) Emit(scope uint64, name string, start, dur simclock.Duration, args map[string]int64) Span {
	if tk == nil {
		return Span{Name: name, Scope: scope, Start: start, Dur: dur, Args: args}
	}
	tk.tracer.mu.Lock()
	defer tk.tracer.mu.Unlock()
	s := Span{
		Process: tk.process,
		Thread:  tk.thread,
		Name:    name,
		Scope:   scope,
		Start:   start,
		Dur:     dur,
		Args:    args,
	}
	tk.tracer.spans = append(tk.tracer.spans, s)
	if end := start + dur; end > tk.cursor {
		tk.cursor = end
	}
	if tk.tracer.onEmit != nil {
		tk.tracer.onEmit(s)
	}
	return s
}

// Span emits a span starting at the track cursor.
func (tk *Track) Span(scope uint64, name string, dur simclock.Duration, args map[string]int64) Span {
	if tk == nil {
		return Span{Name: name, Scope: scope, Dur: dur, Args: args}
	}
	return tk.Emit(scope, name, tk.Now(), dur, args)
}

// An OpenSpan is an in-flight span begun with Track.Begin: the virtual
// start time is fixed, the duration still accumulating. Every span begun
// must be ended exactly once on every path out of the beginning function
// — `defer sp.End()` right after Begin is the idiomatic form, and the
// spanleak analyzer enforces the pairing. Ending twice is a no-op, so a
// deferred End composes with an explicit early EndAt.
type OpenSpan struct {
	tk    *Track
	scope uint64
	name  string
	start simclock.Duration
	args  map[string]int64
	ended bool
}

// Begin opens a span starting at the track cursor. Safe on a nil track:
// the returned span still carries name/scope/args and End stays a no-op
// recorder, so instrumented code paths need no nil checks.
func (tk *Track) Begin(scope uint64, name string, args map[string]int64) *OpenSpan {
	var start simclock.Duration
	if tk != nil {
		start = tk.Now()
	}
	return tk.BeginAt(scope, name, start, args)
}

// BeginAt opens a span with an explicit virtual start time.
func (tk *Track) BeginAt(scope uint64, name string, start simclock.Duration, args map[string]int64) *OpenSpan {
	return &OpenSpan{tk: tk, scope: scope, name: name, start: start, args: args}
}

// SetArg attaches (or overwrites) one argument on the still-open span.
// No-op after End.
func (o *OpenSpan) SetArg(key string, v int64) {
	if o == nil || o.ended {
		return
	}
	if o.args == nil {
		o.args = map[string]int64{}
	}
	o.args[key] = v
}

// End closes the span at the track cursor — virtual time as advanced by
// whatever was emitted since Begin — and records it. Second and later
// calls are no-ops returning a zero Span.
func (o *OpenSpan) End() Span {
	if o == nil || o.ended {
		return Span{}
	}
	at := o.start
	if o.tk != nil {
		if now := o.tk.Now(); now > at {
			at = now
		}
	}
	return o.EndAt(at)
}

// EndAt closes the span at an explicit virtual end time (clamped to the
// start, so a stale timestamp cannot produce a negative duration).
func (o *OpenSpan) EndAt(at simclock.Duration) Span {
	if o == nil || o.ended {
		return Span{}
	}
	o.ended = true
	dur := at - o.start
	if dur < 0 {
		dur = 0
	}
	return o.tk.Emit(o.scope, o.name, o.start, dur, o.args)
}

// chromeEvent is one entry of the Chrome trace-event JSON array.
// "X" events are complete spans (ts/dur in fractional microseconds, as
// the format requires); "M" events are process/thread name metadata.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// ChromeTrace exports every recorded span as Chrome trace-event JSON
// ({"traceEvents": [...]}) loadable in Perfetto (ui.perfetto.dev) or
// chrome://tracing. ts/dur are virtual microseconds; the exact virtual
// nanosecond duration rides in args.dur_ns (ints survive, floats
// round). Output is deterministic: metadata first in track-creation
// order, then spans sorted by (pid, tid, start, -dur, name).
func (t *Tracer) ChromeTrace() []byte {
	var events []chromeEvent
	if t != nil {
		t.mu.Lock()
		tracks := make([]*Track, len(t.order))
		copy(tracks, t.order)
		spans := make([]Span, len(t.spans))
		copy(spans, t.spans)
		scopes := t.nextScope
		t.mu.Unlock()

		// The scope ledger: how many scopes this tracer ever minted. The
		// validator uses it to reject spans referencing a scope id that was
		// never created (a corrupted or hand-edited trace).
		events = append(events, chromeEvent{
			Name: "scope_count", Ph: "M", Pid: 0, Tid: 0,
			Args: map[string]any{"count": int64(scopes)},
		})

		seenProc := make(map[int]bool)
		for _, tk := range tracks {
			if !seenProc[tk.pid] {
				seenProc[tk.pid] = true
				events = append(events, chromeEvent{
					Name: "process_name", Ph: "M", Pid: tk.pid, Tid: 0,
					Args: map[string]any{"name": tk.process},
				})
			}
			events = append(events, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: tk.pid, Tid: tk.tid,
				Args: map[string]any{"name": tk.thread},
			})
		}
		type keyed struct {
			pid, tid int
			s        Span
		}
		ks := make([]keyed, 0, len(spans))
		for _, s := range spans {
			tk := t.Track(s.Process, s.Thread)
			ks = append(ks, keyed{tk.pid, tk.tid, s})
		}
		sort.SliceStable(ks, func(i, j int) bool {
			a, b := ks[i], ks[j]
			if a.pid != b.pid {
				return a.pid < b.pid
			}
			if a.tid != b.tid {
				return a.tid < b.tid
			}
			if a.s.Start != b.s.Start {
				return a.s.Start < b.s.Start
			}
			if a.s.Dur != b.s.Dur {
				return a.s.Dur > b.s.Dur // parents before children
			}
			return a.s.Name < b.s.Name
		})
		for _, k := range ks {
			args := map[string]any{"dur_ns": int64(k.s.Dur)}
			if k.s.Scope != 0 {
				args["scope"] = int64(k.s.Scope)
			}
			for key, v := range k.s.Args {
				args[key] = v
			}
			dur := float64(k.s.Dur) / 1e3
			events = append(events, chromeEvent{
				Name: k.s.Name, Ph: "X",
				Ts: float64(k.s.Start) / 1e3, Dur: &dur,
				Pid: k.pid, Tid: k.tid, Args: args,
			})
		}
	}
	doc := struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
		DisplayUnit string        `json:"displayTimeUnit"`
	}{TraceEvents: events, DisplayUnit: "ms"}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		// Only map keys can make Marshal fail and ours are strings.
		panic(fmt.Sprintf("obs: chrome trace marshal: %v", err)) //nolint:paniclib // unreachable: a struct of strings, ints, and floats always marshals
	}
	return append(buf, '\n')
}

// ValidateChromeTrace checks that b is structurally valid Chrome
// trace-event JSON as produced by ChromeTrace: a non-empty traceEvents
// array of "X"/"M" events, every X span named, non-negative, carrying a
// dur_ns arg consistent with its microsecond dur, its (pid, tid) lane
// labeled by metadata, spans on one lane properly nested (contained
// or disjoint — partial overlap would render garbage in Perfetto), and
// every args.scope a positive integer no larger than the scope_count
// ledger (when the trace carries one): a span may not reference a scope
// the tracer never created.
func ValidateChromeTrace(b []byte) error {
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		return fmt.Errorf("trace: not valid JSON: %w", err)
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("trace: empty traceEvents array")
	}
	type lane struct{ pid, tid int }
	procNamed := make(map[int]bool)
	laneNamed := make(map[lane]bool)
	type ispan struct {
		start, end int64
		name       string
	}
	lanes := make(map[lane][]ispan)
	nX := 0
	scopeCount := int64(-1) // -1: trace carries no scope ledger
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" && ev.Name == "scope_count" {
			if c, ok := ev.Args["count"].(float64); ok {
				scopeCount = int64(c)
			}
		}
	}
	for i, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			switch ev.Name {
			case "process_name":
				procNamed[ev.Pid] = true
			case "thread_name":
				laneNamed[lane{ev.Pid, ev.Tid}] = true
			}
		case "X":
			nX++
			if ev.Name == "" {
				return fmt.Errorf("trace: event %d: unnamed X event", i)
			}
			if ev.Ts < 0 || ev.Dur < 0 {
				return fmt.Errorf("trace: event %d (%s): negative ts/dur", i, ev.Name)
			}
			raw, ok := ev.Args["dur_ns"]
			if !ok {
				return fmt.Errorf("trace: event %d (%s): missing args.dur_ns", i, ev.Name)
			}
			durNS, ok := raw.(float64)
			if !ok {
				return fmt.Errorf("trace: event %d (%s): args.dur_ns not a number", i, ev.Name)
			}
			if diff := ev.Dur*1e3 - durNS; diff > 1 || diff < -1 {
				return fmt.Errorf("trace: event %d (%s): dur %.3fus disagrees with dur_ns %d",
					i, ev.Name, ev.Dur, int64(durNS))
			}
			if rawScope, ok := ev.Args["scope"]; ok {
				sc, ok := rawScope.(float64)
				if !ok || sc != float64(int64(sc)) || sc < 1 {
					return fmt.Errorf("trace: event %d (%s): args.scope %v is not a positive integer", i, ev.Name, rawScope)
				}
				if scopeCount >= 0 && int64(sc) > scopeCount {
					return fmt.Errorf("trace: event %d (%s): references scope %d, but only %d scope(s) were ever created",
						i, ev.Name, int64(sc), scopeCount)
				}
			}
			l := lane{ev.Pid, ev.Tid}
			start := int64(ev.Ts*1e3 + 0.5)
			lanes[l] = append(lanes[l], ispan{start, start + int64(durNS), ev.Name})
		default:
			return fmt.Errorf("trace: event %d (%s): unsupported phase %q", i, ev.Name, ev.Ph)
		}
	}
	if nX == 0 {
		return fmt.Errorf("trace: no X (span) events")
	}
	for l, spans := range lanes {
		if !procNamed[l.pid] {
			return fmt.Errorf("trace: pid %d has spans but no process_name metadata", l.pid)
		}
		if !laneNamed[l] {
			return fmt.Errorf("trace: pid %d tid %d has spans but no thread_name metadata", l.pid, l.tid)
		}
		sort.SliceStable(spans, func(i, j int) bool {
			if spans[i].start != spans[j].start {
				return spans[i].start < spans[j].start
			}
			return spans[i].end > spans[j].end
		})
		var stack []ispan
		for _, s := range spans {
			for len(stack) > 0 && stack[len(stack)-1].end <= s.start {
				stack = stack[:len(stack)-1]
			}
			if len(stack) > 0 && s.end > stack[len(stack)-1].end {
				return fmt.Errorf("trace: pid %d tid %d: span %q [%d,%d) partially overlaps %q [%d,%d)",
					l.pid, l.tid, s.name, s.start, s.end,
					stack[len(stack)-1].name, stack[len(stack)-1].start, stack[len(stack)-1].end)
			}
			stack = append(stack, s)
		}
	}
	return nil
}
