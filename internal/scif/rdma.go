package scif

import (
	"fmt"

	"snapify/internal/blob"
	"snapify/internal/faultinject"
	"snapify/internal/simclock"
)

// rdmaFault consults the armed fault plan for a from->to RDMA transfer.
// Drop severs the connection and reports ErrConnReset (the peer's next
// operation sees the reset too); Slow returns a cost multiplier. Other
// kinds are not expressible on the DMA path and are ignored.
func (e *Endpoint) rdmaFault(from, to string) (simclock.Duration, error) {
	fault := e.net.fabric.Injector().Fire(faultinject.SiteRDMA, faultinject.LinkKey(from, to))
	if fault == nil {
		return 1, nil
	}
	switch fault.Kind {
	case faultinject.Drop:
		_ = e.Close() //nolint:errcheck // simulating a link failure; the severed endpoint's close error is immaterial
		return 1, ErrConnReset
	case faultinject.Slow:
		return simclock.Duration(fault.SlowFactor()), nil
	}
	return 1, nil
}

// Memory is the view of process memory that RDMA operates on. The process
// model (internal/proc) implements it with appropriate locking; the methods
// move blob content so multi-gigabyte windows transfer without
// materializing synthetic background.
type Memory interface {
	// Size returns the region size in bytes.
	Size() int64
	// SnapshotRange returns the content of [off, off+n).
	SnapshotRange(off, n int64) blob.Blob
	// WriteBlob overwrites [off, off+src.Len()) with src.
	WriteBlob(off int64, src blob.Blob)
}

// Window is a memory region registered for RDMA on an endpoint
// (scif_register). The peer addresses it by Offset.
type Window struct {
	// Offset is the RDMA address the registration returned. Offsets are
	// allocated from a global monotone counter, so a re-registration after
	// restore never reuses the old address.
	Offset int64
	// Len is the window length in bytes.
	Len int64

	mem     Memory
	memBase int64 // offset of the window inside mem
	pinned  bool
}

// Register pins [memBase, memBase+length) of mem for RDMA on this endpoint
// and returns the window. The cost covers page pinning and aperture setup.
func (e *Endpoint) Register(mem Memory, memBase, length int64) (*Window, simclock.Duration, error) {
	if memBase < 0 || length <= 0 || memBase+length > mem.Size() {
		return nil, 0, fmt.Errorf("scif: register [%d,%d) out of range of %d", memBase, memBase+length, mem.Size())
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, 0, ErrClosed
	}
	w := &Window{
		Offset:  e.net.nextWindowOffset.Add(length + 0x1000), // spaced, unique
		Len:     length,
		mem:     mem,
		memBase: memBase,
		pinned:  true,
	}
	w.Offset -= length // allocate the range [Offset, Offset+len)
	e.windows[w.Offset] = w
	return w, e.net.fabric.Model().RegisterCost(length), nil
}

// Unregister releases the window.
func (e *Endpoint) Unregister(w *Window) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.windows[w.Offset]; !ok {
		return fmt.Errorf("%w: offset %#x", ErrBadWindow, w.Offset)
	}
	delete(e.windows, w.Offset)
	w.pinned = false
	return nil
}

// lookupRemote resolves an RDMA offset range against the peer's windows.
func (e *Endpoint) lookupRemote(offset, n int64) (*Window, error) {
	p := e.peer
	if p == nil {
		return nil, ErrConnReset
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, ErrConnReset
	}
	for _, w := range p.windows {
		if offset >= w.Offset && offset+n <= w.Offset+w.Len {
			return w, nil
		}
	}
	return nil, fmt.Errorf("%w: [%#x,%#x) on %v", ErrBadWindow, offset, offset+n, p.local)
}

// VReadFrom copies n bytes from the peer's registered window at
// remoteOffset into arbitrary local memory (scif_vreadfrom). It returns the
// virtual cost of the DMA.
func (e *Endpoint) VReadFrom(local Memory, localOff, n, remoteOffset int64) (simclock.Duration, error) {
	slow, err := e.rdmaFault(e.remote.Node.String(), e.local.Node.String())
	if err != nil {
		return 0, err
	}
	w, err := e.lookupRemote(remoteOffset, n)
	if err != nil {
		return 0, err
	}
	if localOff < 0 || localOff+n > local.Size() {
		return 0, fmt.Errorf("scif: local range [%d,%d) out of range of %d", localOff, localOff+n, local.Size())
	}
	src := w.mem.SnapshotRange(w.memBase+(remoteOffset-w.Offset), n)
	local.WriteBlob(localOff, src)
	return slow * e.net.fabric.RDMACost(e.remote.Node, e.local.Node, n), nil
}

// VWriteTo copies n bytes from arbitrary local memory into the peer's
// registered window at remoteOffset (scif_vwriteto).
func (e *Endpoint) VWriteTo(local Memory, localOff, n, remoteOffset int64) (simclock.Duration, error) {
	slow, err := e.rdmaFault(e.local.Node.String(), e.remote.Node.String())
	if err != nil {
		return 0, err
	}
	w, err := e.lookupRemote(remoteOffset, n)
	if err != nil {
		return 0, err
	}
	if localOff < 0 || localOff+n > local.Size() {
		return 0, fmt.Errorf("scif: local range [%d,%d) out of range of %d", localOff, localOff+n, local.Size())
	}
	src := local.SnapshotRange(localOff, n)
	w.mem.WriteBlob(w.memBase+(remoteOffset-w.Offset), src)
	return slow * e.net.fabric.RDMACost(e.local.Node, e.remote.Node, n), nil
}

// ReadFrom copies n bytes from the peer's window at remoteOffset into this
// endpoint's own registered window at localOffset (scif_readfrom).
func (e *Endpoint) ReadFrom(localOffset, n, remoteOffset int64) (simclock.Duration, error) {
	lw, err := e.lookupLocal(localOffset, n)
	if err != nil {
		return 0, err
	}
	return e.VReadFrom(windowMemory{lw}, localOffset-lw.Offset, n, remoteOffset)
}

// WriteTo copies n bytes from this endpoint's own registered window at
// localOffset into the peer's window at remoteOffset (scif_writeto).
func (e *Endpoint) WriteTo(localOffset, n, remoteOffset int64) (simclock.Duration, error) {
	lw, err := e.lookupLocal(localOffset, n)
	if err != nil {
		return 0, err
	}
	return e.VWriteTo(windowMemory{lw}, localOffset-lw.Offset, n, remoteOffset)
}

func (e *Endpoint) lookupLocal(offset, n int64) (*Window, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, w := range e.windows {
		if offset >= w.Offset && offset+n <= w.Offset+w.Len {
			return w, nil
		}
	}
	return nil, fmt.Errorf("%w: local [%#x,%#x)", ErrBadWindow, offset, offset+n)
}

// windowMemory adapts a local registered window to the Memory interface so
// ReadFrom/WriteTo can share the V* implementations. Offsets passed to it
// are window-relative.
type windowMemory struct{ w *Window }

func (m windowMemory) Size() int64 { return m.w.Len }

func (m windowMemory) SnapshotRange(off, n int64) blob.Blob {
	return m.w.mem.SnapshotRange(m.w.memBase+off, n)
}

func (m windowMemory) WriteBlob(off int64, src blob.Blob) {
	m.w.mem.WriteBlob(m.w.memBase+off, src)
}
