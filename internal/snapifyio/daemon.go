package snapifyio

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"

	"snapify/internal/faultinject"
	"snapify/internal/obs"
	"snapify/internal/scif"
	"snapify/internal/simclock"
	"snapify/internal/simnet"
	"snapify/internal/vfs"
)

// chunkSizeBuckets are the histogram bounds for per-chunk transfer sizes
// (the staging buffer caps a chunk, so 4 MiB is the common case and the
// 16 MiB bucket only fills under ablation-sized buffers).
var chunkSizeBuckets = []int64{
	64 * simclock.KiB, 256 * simclock.KiB, simclock.MiB, 4 * simclock.MiB, 16 * simclock.MiB,
}

// Daemon is the per-node Snapify-IO daemon: a remote server thread accepts
// SCIF connections from peer daemons and spawns a handler per connection to
// serve the local file system. Each connection carries one stream; the
// daemon keeps per-stream staging slots and assembles striped writes into
// whole files.
type Daemon struct {
	svc     *Service
	node    simnet.NodeID
	fs      vfs.NodeFS
	lst     *scif.Listener
	bufSize int64
	done    chan struct{}

	mu         sync.Mutex
	streams    map[int64]streamInfo
	assemblies map[string]*assembly
	eps        map[*scif.Endpoint]struct{}
	// store, when attached (AttachStore), serves store-mode streams and
	// have/need negotiations on this node.
	store ChunkStore
}

// chunkStore returns the attached store, or nil.
func (d *Daemon) chunkStore() ChunkStore {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.store
}

// streamInfo describes one stream this daemon is currently serving.
type streamInfo struct {
	mode  Mode
	path  string
	slots int
}

// Node returns the daemon's SCIF node.
func (d *Daemon) Node() simnet.NodeID { return d.node }

// ActiveStreams returns the number of streams the daemon is serving.
func (d *Daemon) ActiveStreams() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.streams)
}

func (d *Daemon) registerStream(id int64, info streamInfo) {
	d.mu.Lock()
	if d.streams == nil {
		d.streams = make(map[int64]streamInfo)
	}
	d.streams[id] = info
	d.mu.Unlock()
}

func (d *Daemon) unregisterStream(id int64) {
	d.mu.Lock()
	delete(d.streams, id)
	d.mu.Unlock()
}

// assembly is one striped write in progress: parallel streams deliver
// disjoint ranges of the same remote file, and the daemon tracks the
// exact byte ranges durably written (credited per chunk, merged, so an
// idempotent replay after a fault never double-counts). The file
// commits when the last stream departs with the declared size fully
// covered; an aborted stripe poisons the assembly and the last
// departing stream discards it. A *detached* stream — one whose
// connection died or that sent msgDetach — keeps the assembly alive so
// a replacement stream can resume from its acknowledgement watermark.
type assembly struct {
	sw       vfs.SparseWriter
	total    int64
	refs     int
	detached int
	aborted  bool
	spans    []span // sorted, disjoint byte ranges durably written
}

// span is one covered byte range [off, end).
type span struct{ off, end int64 }

// add merges [off, end) into the coverage set. Caller holds d.mu.
func (a *assembly) add(off, end int64) {
	if end <= off {
		return
	}
	merged := make([]span, 0, len(a.spans)+1)
	i := 0
	for ; i < len(a.spans) && a.spans[i].end < off; i++ {
		merged = append(merged, a.spans[i]) // entirely before, keep
	}
	for ; i < len(a.spans) && a.spans[i].off <= end; i++ {
		if s := a.spans[i]; s.off < off { // overlapping or touching, absorb
			off = s.off
		}
		if s := a.spans[i]; s.end > end {
			end = s.end
		}
	}
	merged = append(merged, span{off, end})
	a.spans = append(merged, a.spans[i:]...)
}

// covered returns the total bytes durably written. Caller holds d.mu.
func (a *assembly) covered() int64 {
	var n int64
	for _, s := range a.spans {
		n += s.end - s.off
	}
	return n
}

// openAssembly joins (or starts) the striped write of path with the given
// total size. A join while detached streams are outstanding is a resume
// and consumes one detached slot.
func (d *Daemon) openAssembly(path string, total int64) (*assembly, error) {
	if total < 0 {
		return nil, fmt.Errorf("snapifyio: negative stripe total %d", total)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if a, ok := d.assemblies[path]; ok {
		if a.total != total {
			return nil, fmt.Errorf("snapifyio: stripe total %d for %q, other streams declared %d", total, path, a.total)
		}
		if a.aborted {
			return nil, fmt.Errorf("snapifyio: striped assembly of %q was aborted", path)
		}
		a.refs++
		if a.detached > 0 {
			a.detached--
		}
		return a, nil
	}
	sfs, ok := d.fs.(vfs.SparseFS)
	if !ok {
		return nil, fmt.Errorf("snapifyio: file system on %v does not support striped writes", d.node)
	}
	sw, err := sfs.CreateSparse(path, total)
	if err != nil {
		return nil, err
	}
	a := &assembly{sw: sw, total: total, refs: 1}
	d.assemblies[path] = a
	return a, nil
}

// credit records [off, off+n) of path as durably written.
func (d *Daemon) credit(asm *assembly, off, n int64) {
	d.mu.Lock()
	asm.add(off, off+n)
	d.mu.Unlock()
}

// coveredRange reports whether [off, end) is already durably written.
func (d *Daemon) coveredRange(asm *assembly, off, end int64) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, s := range asm.spans {
		if s.off <= off && end <= s.end {
			return true
		}
	}
	return false
}

// releaseAssembly drops one stripe's reference on a clean close or an
// abort. The stale-handle guard (a != asm) makes departures after a
// daemon crash harmless: the handle's assembly is gone, and a fresh one
// under the same path must not be touched.
func (d *Daemon) releaseAssembly(path string, asm *assembly, abort bool) error {
	d.mu.Lock()
	a, ok := d.assemblies[path]
	if !ok || a != asm {
		d.mu.Unlock()
		return nil
	}
	a.refs--
	if abort {
		a.aborted = true
	}
	// A clean close commits as soon as coverage is complete, even with
	// other references outstanding: once every byte is durably written
	// the only things the siblings can still do are close (harmless on a
	// committed assembly) or replay already-covered ranges (served from
	// coverage without touching the file). Waiting for refs==0 instead
	// would leave the commit racing against the departure of a severed
	// stream's handler, making the capture's outcome timing-dependent.
	complete := !abort && !a.aborted && a.covered() >= a.total
	discard := a.aborted && a.refs == 0
	if complete || discard {
		delete(d.assemblies, path)
	}
	d.mu.Unlock()
	if complete {
		return a.sw.Commit()
	}
	if discard {
		a.sw.Abort()
	}
	// Otherwise the assembly waits: either sibling streams are still
	// open (or have not opened yet — open/close order is free), or a
	// detached stream may resume. If coverage was lost for good (say a
	// daemon crash wiped it), no close can tell locally — the writer
	// verifies the committed file end-to-end and retries the capture,
	// discarding this pending assembly first.
	return nil
}

// detachAssembly parts a stream from its assembly without poisoning it:
// the coverage and partial file survive so a resumed stream can finish
// the job. If the departing stream was the last reference and coverage
// is already complete (a close handshake lost to a link fault after all
// data was acknowledged), the assembly commits here.
func (d *Daemon) detachAssembly(path string, asm *assembly) {
	d.mu.Lock()
	a, ok := d.assemblies[path]
	if !ok || a != asm {
		d.mu.Unlock()
		return
	}
	a.refs--
	a.detached++
	commit := !a.aborted && a.refs == 0 && a.covered() >= a.total
	discard := a.aborted && a.refs == 0
	if commit || discard {
		delete(d.assemblies, path)
	}
	d.mu.Unlock()
	if commit {
		a.sw.Commit() //nolint:errcheck // detach path: no peer is listening; the consumer validates the committed file
	}
	if discard {
		a.sw.Abort()
	}
}

// discardAssembly drops a pending assembly and removes its partial
// file. The cleanup path for a writer that exhausted its retries.
func (d *Daemon) discardAssembly(path string) {
	d.mu.Lock()
	a, ok := d.assemblies[path]
	if ok {
		delete(d.assemblies, path)
	}
	d.mu.Unlock()
	if ok {
		a.sw.Abort()
	}
}

// crash simulates a daemon crash and immediate restart (an injected
// Crash fault): every active connection dies, every in-progress
// assembly is discarded — partial files removed — and per-stream state
// is wiped. The listener stays bound: by the time a client observes the
// connection resets, the restarted daemon is already accepting again.
func (d *Daemon) crash() {
	d.teardown()
	// A daemon crash is exactly the incident the always-on flight
	// recorder exists for: freeze the recent-span ring before recovery
	// machinery overwrites it.
	d.svc.obs.FlightOf().Trigger("snapifyio: injected daemon crash on " + d.node.String())
}

// teardown is the state-wiping half of crash, shared with the clean
// Service.Stop path — which must NOT trigger a flight dump: a planned
// shutdown is not an incident, and a dump there would overwrite the one
// a real failure just recorded.
func (d *Daemon) teardown() {
	// Connections reset in (remote, local) address order and assemblies
	// abort in path order: both teardowns touch the simulated network and
	// file systems, so iterating the maps directly would make post-crash
	// traces run-to-run nondeterministic.
	d.mu.Lock()
	eps := make([]*scif.Endpoint, 0, len(d.eps))
	for ep := range d.eps {
		eps = append(eps, ep)
	}
	d.eps = make(map[*scif.Endpoint]struct{})
	asms := d.assemblies
	d.assemblies = make(map[string]*assembly)
	d.streams = make(map[int64]streamInfo)
	cs := d.store
	d.mu.Unlock()
	sort.Slice(eps, func(i, j int) bool {
		a, b := eps[i], eps[j]
		if a.RemoteAddr() != b.RemoteAddr() {
			if a.RemoteAddr().Node != b.RemoteAddr().Node {
				return a.RemoteAddr().Node < b.RemoteAddr().Node
			}
			return a.RemoteAddr().Port < b.RemoteAddr().Port
		}
		if a.LocalAddr().Node != b.LocalAddr().Node {
			return a.LocalAddr().Node < b.LocalAddr().Node
		}
		return a.LocalAddr().Port < b.LocalAddr().Port
	})
	for _, ep := range eps {
		ep.Close() //nolint:errcheck // crash path: connection teardown is the point
	}
	paths := make([]string, 0, len(asms))
	for path := range asms {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		asms[path].sw.Abort()
	}
	if cs != nil {
		// Negotiated uploads die with the daemon; their durable chunks
		// stay, so a retrying capture ships only what is still missing.
		cs.AbortAll()
	}
}

func (d *Daemon) trackEp(ep *scif.Endpoint) {
	d.mu.Lock()
	if d.eps == nil {
		d.eps = make(map[*scif.Endpoint]struct{})
	}
	d.eps[ep] = struct{}{}
	d.mu.Unlock()
}

func (d *Daemon) untrackEp(ep *scif.Endpoint) {
	d.mu.Lock()
	delete(d.eps, ep)
	d.mu.Unlock()
}

// remoteServer is the daemon's remote server thread (Section 6): it accepts
// SCIF connections and spawns a remote handler per connection.
func (d *Daemon) remoteServer() {
	for {
		ep, err := d.lst.Accept()
		if err != nil {
			return // listener closed: daemon shutting down
		}
		go d.remoteHandler(ep)
	}
}

// remoteHandler serves one file stream for a peer daemon.
func (d *Daemon) remoteHandler(ep *scif.Endpoint) {
	d.trackEp(ep)
	defer d.untrackEp(ep)
	defer ep.Close()

	raw, _, err := ep.Recv()
	if err != nil {
		return
	}
	if len(raw) > 0 && raw[0] == msgMetricsDump {
		// SIGUSR1 analogue: dump the metrics registry and hang up.
		d.reply(ep, func(w *wire) {
			w.u8(msgMetricsResp)
			w.str(d.svc.obs.MetricsOf().Expose())
		})
		return
	}
	if len(raw) > 0 && raw[0] == msgDiscard {
		// Control: drop a pending striped assembly and its partial file
		// (a writer gave up on resuming).
		u := &unwire{buf: raw}
		u.u8()
		path := u.str()
		if u.err() != nil {
			return
		}
		d.discardAssembly(path)
		if cs := d.chunkStore(); cs != nil {
			// A writer giving up on a path also abandons any negotiated
			// dedup upload of it; stored chunks stay for the next attempt.
			cs.AbortUpload(path)
		}
		d.svc.obs.MetricsOf().Counter("snapifyio_discards_total",
			"Pending striped assemblies discarded by control request.",
			obs.L("node", d.node.String())).Inc()
		d.reply(ep, func(w *wire) { w.u8(msgDiscardResp); w.str("") })
		return
	}
	if len(raw) > 0 && raw[0] == msgStoreNegotiate {
		d.serveNegotiate(ep, raw)
		return
	}
	if len(raw) > 0 && raw[0] == msgStoreDigests {
		d.serveDigestPlan(ep, raw)
		return
	}
	u, err := expect(raw, msgOpen)
	if err != nil {
		return
	}
	mode := Mode(u.u8())
	streamID := u.i64()
	slots := int(u.u8())
	bufSize := u.i64()
	windows := make([]int64, 0, slots)
	for i := 0; i < slots && !u.bad; i++ {
		windows = append(windows, u.i64())
	}
	striped := u.u8() == 1
	st := Stripe{Offset: u.i64(), Length: u.i64(), Total: u.i64()}
	path := u.str()
	storeMode := u.u8() == 1

	openErr := func(msg string) {
		d.reply(ep, func(w *wire) { w.u8(msgOpenResp); w.str(msg); w.i64(0) })
	}
	if err := u.err(); err != nil {
		openErr(err.Error())
		return
	}
	if bufSize != d.bufSize {
		// Mismatched staging sizes would deadlock the chunk protocol.
		openErr("staging buffer size mismatch")
		return
	}
	if slots < 1 || slots > MaxSlots {
		openErr(fmt.Sprintf("stream wants %d staging slots, daemon allows 1..%d", slots, MaxSlots))
		return
	}

	d.registerStream(streamID, streamInfo{mode: mode, path: path, slots: slots})
	defer d.unregisterStream(streamID)

	switch {
	case mode == Write && storeMode:
		d.serveStoreWrite(ep, streamID, path, windows, striped, st)
	case mode == Write:
		d.serveWrite(ep, streamID, path, windows, striped, st)
	case mode == Read:
		d.serveRead(ep, streamID, path, windows, striped, st)
	}
}

// serveNegotiate answers a have/need control round against the attached
// chunk store: decode the digest list, ask the store which chunks it
// lacks, reply with the need set (or that the manifest committed on the
// spot).
func (d *Daemon) serveNegotiate(ep *scif.Endpoint, raw []byte) {
	u := &unwire{buf: raw}
	u.u8()
	path := u.str()
	parent := u.str()
	size := u.i64()
	chunkBytes := u.i64()
	count := int(u.i64())
	var digests []string
	for i := 0; i < count && !u.bad; i++ {
		digests = append(digests, u.str())
	}
	fail := func(msg string) {
		d.reply(ep, func(w *wire) {
			w.u8(msgStoreNegotiateResp)
			w.str(msg)
			w.u8(0)
			w.dur(0)
			w.i64(0)
		})
	}
	if err := u.err(); err != nil {
		fail(err.Error())
		return
	}
	cs := d.chunkStore()
	if cs == nil {
		fail(fmt.Sprintf("no chunk store attached on %v", d.node))
		return
	}
	need, committed, dur, err := cs.Negotiate(path, parent, size, chunkBytes, digests)
	if err != nil {
		fail(err.Error())
		return
	}
	d.reply(ep, func(w *wire) {
		w.u8(msgStoreNegotiateResp)
		w.str("")
		if committed {
			w.u8(1)
		} else {
			w.u8(0)
		}
		w.dur(dur)
		w.i64(int64(len(need)))
		for _, idx := range need {
			w.i64(int64(idx))
		}
	})
}

// serveDigestPlan answers a digest-plan request against the attached
// chunk store: the live-migration destination asking "what should I be
// staging for this path right now?".
func (d *Daemon) serveDigestPlan(ep *scif.Endpoint, raw []byte) {
	u := &unwire{buf: raw}
	u.u8()
	path := u.str()
	fail := func(msg string) {
		d.reply(ep, func(w *wire) {
			w.u8(msgStoreDigestsResp)
			w.str(msg)
			w.u8(0)
			w.u8(0)
			w.dur(0)
			w.i64(0)
			w.i64(0)
			w.i64(0)
		})
	}
	if err := u.err(); err != nil {
		fail(err.Error())
		return
	}
	cs := d.chunkStore()
	if cs == nil {
		fail(fmt.Sprintf("no chunk store attached on %v", d.node))
		return
	}
	size, chunkBytes, digests, committed, ok, dur := cs.DigestPlan(path)
	d.reply(ep, func(w *wire) {
		w.u8(msgStoreDigestsResp)
		w.str("")
		if ok {
			w.u8(1)
		} else {
			w.u8(0)
		}
		if committed {
			w.u8(1)
		} else {
			w.u8(0)
		}
		w.dur(dur)
		w.i64(size)
		w.i64(chunkBytes)
		w.i64(int64(len(digests)))
		for _, dg := range digests {
			w.str(dg)
		}
	})
}

func (d *Daemon) reply(ep *scif.Endpoint, fill func(*wire)) {
	w := &wire{}
	fill(w)
	ep.Send(w.buf) //nolint:errcheck // peer teardown is handled by Recv errors
}

// serveWrite drains the peer's staging slots into a local file — appended
// chunk by chunk in the classic mode, or written at explicit offsets into
// a shared striped assembly.
func (d *Daemon) serveWrite(ep *scif.Endpoint, streamID int64, path string, windows []int64, striped bool, st Stripe) {
	var fw vfs.Writer
	var asm *assembly
	var err error
	if striped {
		if st.Offset < 0 || st.Length < 0 || st.Offset+st.Length > st.Total {
			d.reply(ep, func(w *wire) {
				w.u8(msgOpenResp)
				w.str(fmt.Sprintf("stripe [%d,%d) outside file of %d bytes", st.Offset, st.Offset+st.Length, st.Total))
				w.i64(0)
			})
			return
		}
		asm, err = d.openAssembly(path, st.Total)
	} else {
		fw, err = d.fs.Create(path)
	}
	if err != nil {
		d.reply(ep, func(w *wire) { w.u8(msgOpenResp); w.str(err.Error()); w.i64(0) })
		return
	}
	abort := func() {
		if striped {
			d.releaseAssembly(path, asm, true) //nolint:errcheck // abort path: discarding the partial assembly is the handling
		} else {
			fw.Abort()
		}
	}
	// fail parts the stream on a transport-class failure (peer vanished,
	// corrupted message, injected fault). A striped stream detaches —
	// the assembly and its coverage survive for a watermark resume — an
	// unstriped one can only discard its append-mode file.
	fail := func() {
		if striped {
			d.detachAssembly(path, asm)
		} else {
			fw.Abort()
		}
	}
	d.reply(ep, func(w *wire) { w.u8(msgOpenResp); w.str(""); w.i64(0) })

	staging := make([]*slot, len(windows))
	for i := range staging {
		staging[i] = newSlot(d.bufSize)
	}
	for {
		raw, _, err := ep.Recv()
		if err != nil {
			fail() // peer vanished mid-stream
			return
		}
		u := &unwire{buf: raw}
		switch u.u8() {
		case msgChunkReady:
			sid := u.i64()
			sl := int(u.u8())
			n := u.i64()
			fileOff := u.i64()
			nack := func(msg string) {
				d.reply(ep, func(w *wire) {
					w.u8(msgChunkAck)
					w.i64(streamID)
					w.u8(uint8(sl))
					w.str(msg)
					w.dur(0)
					w.dur(0)
				})
			}
			if u.err() != nil {
				fail() // truncated or corrupted request
				return
			}
			if sid != streamID {
				nack(fmt.Sprintf("chunk for stream %d on stream %d", sid, streamID))
				abort()
				return
			}
			if sl < 0 || sl >= len(staging) {
				nack(fmt.Sprintf("chunk names slot %d of %d", sl, len(staging)))
				abort()
				return
			}
			// Consult the fault plan at the daemon's chunk service
			// point: a Crash fault takes the whole daemon down (and
			// back up, state wiped); chunk-level faults hit just this
			// stream, keyed by its stripe offset.
			inj := d.svc.net.Fabric().Injector()
			if f := inj.Fire(faultinject.SiteDaemon, d.node.String()); f != nil && f.Kind == faultinject.Crash {
				d.crash()
				return
			}
			partial := false
			if f := inj.Fire(faultinject.SiteChunk, strconv.FormatInt(st.Offset, 10)); f != nil {
				switch f.Kind {
				case faultinject.Drop:
					fail()
					return
				case faultinject.PartialWrite:
					partial = true
				}
			}
			// Drain the peer's registered buffer with scif_vreadfrom.
			rdma, err := ep.VReadFrom(staging[sl], 0, n, windows[sl])
			if err != nil {
				fail()
				return
			}
			content := staging[sl].SnapshotRange(0, n)
			var fsWrite simclock.Duration
			if striped {
				if fileOff < st.Offset || fileOff+n > st.Offset+st.Length {
					nack(fmt.Sprintf("chunk [%d,%d) outside stripe [%d,%d)", fileOff, fileOff+n, st.Offset, st.Offset+st.Length))
					abort()
					return
				}
				if partial {
					// Injected partial stripe write: persist a prefix,
					// report failure, and never credit coverage — the
					// resumed stream replays the whole chunk.
					_, _ = asm.sw.WriteBlobAt(fileOff, content.Slice(0, n/2)) //nolint:errcheck // injected fault: the chunk is nacked below regardless of how the half-write fared
					nack("injected fault: partial stripe write")
					fail()
					return
				}
				if d.coveredRange(asm, fileOff, fileOff+n) {
					// Idempotent replay of bytes that are already
					// durable (a resumed stream's watermark undercounts
					// acked-but-uncredited chunks): ack without touching
					// the file — it may even have committed under us.
					fsWrite = 0
				} else {
					fsWrite, err = asm.sw.WriteBlobAt(fileOff, content)
					if err == nil {
						d.credit(asm, fileOff, n)
					}
				}
			} else {
				if fileOff >= 0 {
					nack("positioned chunk on an unstriped stream")
					abort()
					return
				}
				if partial {
					_, _ = fw.WriteBlob(content.Slice(0, n/2)) //nolint:errcheck // injected fault: the chunk is nacked below regardless of how the half-write fared
					nack("injected fault: partial write")
					fail()
					return
				}
				fsWrite, err = fw.WriteBlob(content)
			}
			if err != nil {
				nack(err.Error())
				abort()
				return
			}
			d.reply(ep, func(w *wire) {
				w.u8(msgChunkAck)
				w.i64(streamID)
				w.u8(uint8(sl))
				w.str("")
				w.dur(rdma)
				w.dur(fsWrite)
			})
		case msgClose:
			var err error
			if striped {
				err = d.releaseAssembly(path, asm, false)
			} else {
				err = fw.Close()
			}
			msg := ""
			if err != nil {
				msg = err.Error()
			}
			d.reply(ep, func(w *wire) { w.u8(msgCloseResp); w.str(msg) })
			return
		case msgDetach:
			fail()
			return
		case msgAbort:
			abort()
			return
		default:
			fail()
			return
		}
	}
}

// serveStoreWrite drains the peer's staging slots into the node's chunk
// store: each positioned chunk of a negotiated dedup upload is verified
// against its announced digest and stored once. There is no striped
// assembly and no partial file — chunks are durable and idempotent the
// moment they land, so a severed stream simply leaves the upload
// pending and a retry re-negotiates, shipping only what is still
// missing. Close asks the store to commit the manifest (a no-op until
// the last missing chunk has landed across all sibling streams).
func (d *Daemon) serveStoreWrite(ep *scif.Endpoint, streamID int64, path string, windows []int64, striped bool, st Stripe) {
	openErr := func(msg string) {
		d.reply(ep, func(w *wire) { w.u8(msgOpenResp); w.str(msg); w.i64(0) })
	}
	cs := d.chunkStore()
	if cs == nil {
		openErr(fmt.Sprintf("no chunk store attached on %v", d.node))
		return
	}
	if !striped {
		// Store chunks are positioned by definition; the stripe carries
		// the offsets.
		openErr("store-mode stream requires a stripe")
		return
	}
	if st.Offset < 0 || st.Length < 0 || st.Offset+st.Length > st.Total {
		openErr(fmt.Sprintf("stripe [%d,%d) outside file of %d bytes", st.Offset, st.Offset+st.Length, st.Total))
		return
	}
	d.reply(ep, func(w *wire) { w.u8(msgOpenResp); w.str(""); w.i64(0) })

	staging := make([]*slot, len(windows))
	for i := range staging {
		staging[i] = newSlot(d.bufSize)
	}
	for {
		raw, _, err := ep.Recv()
		if err != nil {
			return // peer vanished: upload stays pending for a retry
		}
		u := &unwire{buf: raw}
		switch u.u8() {
		case msgChunkReady:
			sid := u.i64()
			sl := int(u.u8())
			n := u.i64()
			fileOff := u.i64()
			nack := func(msg string) {
				d.reply(ep, func(w *wire) {
					w.u8(msgChunkAck)
					w.i64(streamID)
					w.u8(uint8(sl))
					w.str(msg)
					w.dur(0)
					w.dur(0)
				})
			}
			if u.err() != nil {
				return // truncated or corrupted request
			}
			if sid != streamID {
				nack(fmt.Sprintf("chunk for stream %d on stream %d", sid, streamID))
				return
			}
			if sl < 0 || sl >= len(staging) {
				nack(fmt.Sprintf("chunk names slot %d of %d", sl, len(staging)))
				return
			}
			// Same fault surface as the plain write path: the daemon can
			// crash (wiping pending uploads) and chunk faults hit this
			// stream, keyed by its stripe offset.
			inj := d.svc.net.Fabric().Injector()
			if f := inj.Fire(faultinject.SiteDaemon, d.node.String()); f != nil && f.Kind == faultinject.Crash {
				d.crash()
				return
			}
			if f := inj.Fire(faultinject.SiteChunk, strconv.FormatInt(st.Offset, 10)); f != nil {
				switch f.Kind {
				case faultinject.Drop:
					return
				case faultinject.PartialWrite:
					// The store admits whole verified chunks or nothing, so
					// a partial write degenerates to a failed chunk: nothing
					// durable, nothing credited.
					nack("injected fault: partial chunk upload")
					return
				}
			}
			if fileOff < st.Offset || fileOff+n > st.Offset+st.Length {
				nack(fmt.Sprintf("chunk [%d,%d) outside stripe [%d,%d)", fileOff, fileOff+n, st.Offset, st.Offset+st.Length))
				return
			}
			rdma, err := ep.VReadFrom(staging[sl], 0, n, windows[sl])
			if err != nil {
				return
			}
			fsWrite, err := cs.PutChunkAt(path, fileOff, staging[sl].SnapshotRange(0, n))
			if err != nil {
				nack(err.Error())
				return
			}
			d.reply(ep, func(w *wire) {
				w.u8(msgChunkAck)
				w.i64(streamID)
				w.u8(uint8(sl))
				w.str("")
				w.dur(rdma)
				w.dur(fsWrite)
			})
		case msgClose:
			_, _, err := cs.CloseUpload(path)
			msg := ""
			if err != nil {
				msg = err.Error()
			}
			d.reply(ep, func(w *wire) { w.u8(msgCloseResp); w.str(msg) })
			return
		case msgDetach:
			return // upload stays pending for a resume
		case msgAbort:
			cs.AbortUpload(path)
			return
		default:
			return
		}
	}
}

// serveRead streams a local file (or a byte range of it) into the peer's
// staging slots.
func (d *Daemon) serveRead(ep *scif.Endpoint, streamID int64, path string, windows []int64, striped bool, st Stripe) {
	var fr vfs.Reader
	var err error
	if striped {
		rfs, ok := d.fs.(vfs.RangeFS)
		if !ok {
			err = fmt.Errorf("snapifyio: file system on %v does not support range reads", d.node)
		} else {
			fr, err = rfs.OpenRange(path, st.Offset, st.Length)
		}
	} else {
		fr, err = d.fs.Open(path)
	}
	if err != nil {
		d.reply(ep, func(w *wire) { w.u8(msgOpenResp); w.str(err.Error()); w.i64(0) })
		return
	}
	d.reply(ep, func(w *wire) { w.u8(msgOpenResp); w.str(""); w.i64(fr.Size()) })

	staging := make([]*slot, len(windows))
	for i := range staging {
		staging[i] = newSlot(d.bufSize)
	}
	for {
		raw, _, err := ep.Recv()
		if err != nil {
			return
		}
		u := &unwire{buf: raw}
		switch u.u8() {
		case msgPull:
			sid := u.i64()
			sl := int(u.u8())
			if u.err() != nil {
				return // truncated or corrupted request
			}
			nack := func(msg string) {
				d.reply(ep, func(w *wire) {
					w.u8(msgChunkHere)
					w.i64(streamID)
					w.u8(uint8(sl))
					w.str(msg)
					w.i64(0)
					w.dur(0)
					w.dur(0)
				})
			}
			if sid != streamID {
				nack(fmt.Sprintf("pull for stream %d on stream %d", sid, streamID))
				return
			}
			if sl < 0 || sl >= len(staging) {
				nack(fmt.Sprintf("pull names slot %d of %d", sl, len(staging)))
				return
			}
			// The read path consults the same fault plan as the write
			// path: restores face the same daemon crashes and chunk
			// faults captures do.
			inj := d.svc.net.Fabric().Injector()
			if f := inj.Fire(faultinject.SiteDaemon, d.node.String()); f != nil && f.Kind == faultinject.Crash {
				d.crash()
				return
			}
			if f := inj.Fire(faultinject.SiteChunk, strconv.FormatInt(st.Offset, 10)); f != nil && f.Kind != faultinject.Slow {
				nack("injected fault: chunk read failed")
				return
			}
			chunk, fsRead, err := fr.Next(d.bufSize)
			if err == io.EOF {
				d.reply(ep, func(w *wire) {
					w.u8(msgChunkHere)
					w.i64(streamID)
					w.u8(uint8(sl))
					w.str("")
					w.i64(0)
					w.dur(0)
					w.dur(0)
				})
				continue // peer will close
			}
			if err != nil {
				nack(err.Error())
				return
			}
			staging[sl].WriteBlob(0, chunk)
			// Push into the peer's registered buffer with scif_vwriteto.
			rdma, err := ep.VWriteTo(staging[sl], 0, chunk.Len(), windows[sl])
			if err != nil {
				return
			}
			d.reply(ep, func(w *wire) {
				w.u8(msgChunkHere)
				w.i64(streamID)
				w.u8(uint8(sl))
				w.str("")
				w.i64(chunk.Len())
				w.dur(fsRead)
				w.dur(rdma)
			})
		case msgClose, msgAbort, msgDetach:
			d.reply(ep, func(w *wire) { w.u8(msgCloseResp); w.str("") })
			return
		default:
			return
		}
	}
}

// open implements the library side: connect to the target daemon, register
// the staging slots, declare the stream (ID, slots, stripe), and return
// the file handle. The stream registers a bulk flow on the fabric for its
// lifetime, so concurrent streams share link bandwidth honestly.
func (d *Daemon) open(target simnet.NodeID, path string, mode Mode, opts OpenOptions) (*File, error) {
	slots := opts.Slots
	if slots == 0 {
		slots = 1
	}
	if slots < 1 || slots > MaxSlots {
		return nil, fmt.Errorf("snapifyio: %d staging slots requested, allowed 1..%d", slots, MaxSlots)
	}
	st := opts.Stripe
	if st.enabled() {
		if st.Offset < 0 || st.Length <= 0 {
			return nil, fmt.Errorf("snapifyio: bad stripe [%d,%d)", st.Offset, st.Offset+st.Length)
		}
		if mode == Write && st.Offset+st.Length > st.Total {
			return nil, fmt.Errorf("snapifyio: stripe [%d,%d) outside declared file of %d bytes", st.Offset, st.Offset+st.Length, st.Total)
		}
	}
	if opts.Store && (mode != Write || !st.enabled()) {
		return nil, fmt.Errorf("snapifyio: store-mode stream must be a striped write")
	}

	model := d.svc.net.Fabric().Model()
	ep, err := d.svc.net.Connect(d.node, scif.Addr{Node: target, Port: Port})
	if err != nil {
		return nil, err
	}
	staging := make([]*slot, slots)
	windows := make([]int64, slots)
	var regCost simclock.Duration
	for i := range staging {
		staging[i] = newSlot(d.bufSize)
		win, rc, err := ep.Register(staging[i], 0, d.bufSize)
		if err != nil {
			ep.Close()
			return nil, err
		}
		windows[i] = win.Offset
		regCost += rc
	}
	streamID := d.svc.nextStreamID.Add(1)

	w := &wire{}
	w.u8(msgOpen)
	w.u8(uint8(mode))
	w.i64(streamID)
	w.u8(uint8(slots))
	w.i64(d.bufSize)
	for _, win := range windows {
		w.i64(win)
	}
	if st.enabled() {
		w.u8(1)
	} else {
		w.u8(0)
	}
	w.i64(st.Offset)
	w.i64(st.Length)
	w.i64(st.Total)
	w.str(path)
	if opts.Store {
		w.u8(1)
	} else {
		w.u8(0)
	}
	if _, err := ep.Send(w.buf); err != nil {
		ep.Close()
		return nil, err
	}
	raw, _, err := ep.Recv()
	if err != nil {
		ep.Close()
		return nil, err
	}
	u, err := expect(raw, msgOpenResp)
	if err != nil {
		ep.Close()
		return nil, err
	}
	if msg := u.str(); msg != "" {
		ep.Close()
		return nil, &RemoteError{Node: target, Path: path, Msg: msg}
	}
	size := u.i64()

	// The stream is a bulk flow on the PCIe link for as long as it is
	// open: writes move node -> target, reads target -> node.
	fab := d.svc.net.Fabric()
	var release func()
	if mode == Write {
		release = fab.RegisterFlow(d.node, target)
	} else {
		release = fab.RegisterFlow(target, d.node)
	}

	mx := d.svc.obs.MetricsOf()
	nodeL := obs.L("node", d.node.String())
	modeL := obs.L("mode", mode.String())
	mx.Counter("snapifyio_streams_opened_total",
		"Streams opened through snapifyio_open.", nodeL, modeL).Inc()

	f := &File{
		node:     d.node,
		target:   target,
		mode:     mode,
		ep:       ep,
		slots:    staging,
		bufSize:  d.bufSize,
		model:    model,
		size:     size,
		streamID: streamID,
		release:  release,
		fileOff:  -1,
		bytesCtr: mx.Counter("snapifyio_stream_bytes_total",
			"Bytes streamed through Snapify-IO handles.", nodeL, modeL),
		chunkHist: mx.Histogram("snapifyio_chunk_bytes",
			"Per-chunk sizes moved through the staging slots.", chunkSizeBuckets, nodeL, modeL),
		abortCtr: mx.Counter("snapifyio_aborts_total",
			"Streams discarded via Abort.", nodeL),
		detachCtr: mx.Counter("snapifyio_detaches_total",
			"Streams detached for a later watermark resume.", nodeL),
		errCtr: mx.Counter("snapifyio_remote_errors_total",
			"Errors reported by the remote daemon on an open stream.", nodeL),
		// The open handshake: UNIX socket to the local daemon, SCIF
		// connect, window registration, request/response.
		pending: model.UnixSocketLatency + 2*model.SCIFMsgLatency + regCost,
	}
	if st.enabled() && mode == Write {
		f.fileOff = st.Offset
		f.stripeEnd = st.Offset + st.Length
	}
	return f, nil
}

// RemoteError is a failure reported by the remote daemon.
type RemoteError struct {
	Node simnet.NodeID
	Path string
	Msg  string
}

func (e *RemoteError) Error() string {
	return "snapifyio: " + e.Node.String() + ":" + e.Path + ": " + e.Msg
}
