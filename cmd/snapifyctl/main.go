// Command snapifyctl demonstrates the paper's `snapify` command-line
// utility (Section 5): it signals a host process and submits swap-out,
// swap-in, or migration commands through a pipe, and the Snapify signal
// handler inside the host process executes them — the application itself
// is never modified.
//
// The simulation runs in-process, so this tool boots a two-card server,
// launches a demo offload application, and then applies the commands given
// on the command line against its host PID, printing the process table
// state after each one.
//
// Usage:
//
//	snapifyctl [command...]
//	    commands: swapout | swapin <device> | migrate <device>
//	            | trace <out.json> | metrics
//	    default sequence: swapout, swapin 2, migrate 1
//
// trace writes the session's virtual-clock trace as Chrome trace-event
// JSON (open it at ui.perfetto.dev); metrics prints the platform metrics
// registry in Prometheus text exposition. Both observe whatever commands
// ran before them in the sequence.
package main

import (
	"encoding/binary"
	"fmt"
	"os"
	"strings"
	"time"

	"snapify"
	"snapify/internal/obs"
	"snapify/internal/proc"
)

func main() {
	snapify.RegisterBinary(demoBinary())
	srv, err := snapify.NewServer(snapify.ServerOptions{Devices: 2})
	fatal(err)
	defer srv.Stop()

	app, err := srv.Launch("ctl_demo", 1)
	fatal(err)
	defer app.Close()
	pl, err := app.Proc.CreatePipeline()
	fatal(err)

	// Run some work so the process has real state to carry across swaps.
	args := make([]byte, 8)
	binary.BigEndian.PutUint64(args, 500)
	_, err = pl.RunFunction("sum", args)
	fatal(err)

	srvr := app.InstallCommandServer()
	fmt.Printf("launched ctl_demo: host PID %d, offload process on %v\n",
		app.Host.PID(), app.Proc.DeviceNode())

	cmds := parseCommands(os.Args[1:])
	for _, cmd := range cmds {
		if cmd == "metrics" {
			fmt.Printf("\n$ snapifyctl metrics\n")
			fmt.Print(srv.Platform.Obs.MetricsOf().Expose())
			continue
		}
		if path, ok := strings.CutPrefix(cmd, "trace "); ok {
			fmt.Printf("\n$ snapifyctl trace %s\n", path)
			out := srv.Platform.Obs.TracerOf().ChromeTrace()
			if err := obs.ValidateChromeTrace(out); err != nil {
				fatal(err)
			}
			fatal(os.WriteFile(path, out, 0o644))
			fmt.Printf("  wrote %s: valid Chrome trace; open at ui.perfetto.dev\n", path)
			continue
		}
		fmt.Printf("\n$ snapify %d %s\n", app.Host.PID(), cmd)
		if err := srvr.SubmitCommand(cmd); err != nil {
			fmt.Printf("  error: %v\n", err)
			continue
		}
		state := "resident on " + srvr.Proc().DeviceNode().String()
		if srvr.Swapped() {
			state = "swapped out to host storage"
		}
		fmt.Printf("  ok: offload process now %s\n", state)
	}

	// Prove the process survived everything.
	binary.BigEndian.PutUint64(args, 1000)
	out, err := pl.RunFunction("sum", args)
	fatal(err)
	fmt.Printf("\nfinal sum(1000) = %d (expected %d) — state preserved across all operations\n",
		binary.BigEndian.Uint64(out), 1000*999/2)
}

func parseCommands(argv []string) []string {
	if len(argv) == 0 {
		return []string{"swapout /ctl/snap", "swapin 2", "migrate 1 /ctl/mig"}
	}
	var out []string
	for i := 0; i < len(argv); i++ {
		switch argv[i] {
		case "swapout":
			out = append(out, "swapout /ctl/snap")
		case "swapin", "migrate":
			if i+1 >= len(argv) {
				fatal(fmt.Errorf("%s needs a device argument", argv[i]))
			}
			if argv[i] == "swapin" {
				out = append(out, "swapin "+argv[i+1])
			} else {
				out = append(out, "migrate "+argv[i+1]+" /ctl/mig")
			}
			i++
		case "metrics":
			out = append(out, "metrics")
		case "trace":
			if i+1 >= len(argv) {
				fatal(fmt.Errorf("trace needs an output path argument"))
			}
			out = append(out, "trace "+argv[i+1])
			i++
		default:
			fatal(fmt.Errorf("unknown command %q (want swapout | swapin <dev> | migrate <dev> | trace <out> | metrics)", argv[i]))
		}
	}
	return out
}

func demoBinary() *snapify.Binary {
	bin := snapify.NewBinary("ctl_demo")
	bin.AddRegion("state", proc.RegionHeap, 1<<16, 0)
	bin.Register("sum", func(ctx *snapify.RunContext, args []byte) ([]byte, error) {
		n := binary.BigEndian.Uint64(args)
		st := ctx.Region("state")
		buf := make([]byte, 16)
		st.ReadAt(buf, 0)
		for {
			i := binary.BigEndian.Uint64(buf[:8])
			if i >= n {
				break
			}
			if err := ctx.Step(func() {
				s := binary.BigEndian.Uint64(buf[8:])
				binary.BigEndian.PutUint64(buf[:8], i+1)
				binary.BigEndian.PutUint64(buf[8:], s+i)
				st.WriteAt(buf, 0)
				ctx.Compute(100 * time.Microsecond)
			}); err != nil {
				return nil, err
			}
		}
		out := make([]byte, 8)
		st.ReadAt(buf, 0)
		copy(out, buf[8:])
		return out, nil
	})
	return bin
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "snapifyctl:", err)
		os.Exit(1)
	}
}
