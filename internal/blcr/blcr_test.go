package blcr

import (
	"errors"
	"strings"
	"testing"

	"snapify/internal/blob"
	"snapify/internal/hostfs"
	"snapify/internal/phi"
	"snapify/internal/proc"
	"snapify/internal/simclock"
	"snapify/internal/simnet"
	"snapify/internal/stream"
)

// testEnv bundles a checkpointer with a host FS for sink/source plumbing.
type testEnv struct {
	cr *Checkpointer
	fs *hostfs.FS
}

func newEnv() *testEnv {
	m := simclock.Default()
	return &testEnv{cr: New(m), fs: hostfs.New(m)}
}

func (e *testEnv) sink(t *testing.T, path string) stream.Sink {
	t.Helper()
	s, err := stream.NewHostFSSink(e.fs, path)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func (e *testEnv) source(t *testing.T, path string) stream.Source {
	t.Helper()
	s, err := stream.NewHostFSSource(e.fs, path)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCheckpointRestartRoundTrip(t *testing.T) {
	e := newEnv()
	p := makeProcReal(t, "offload_proc", 1)
	want := snapshotAll(p)

	st, err := e.cr.Checkpoint(p, e.sink(t, "ctx"))
	if err != nil {
		t.Fatal(err)
	}
	if st.Regions != 3 || st.Bytes <= 0 || st.Duration <= 0 {
		t.Errorf("stats: %+v", st)
	}
	if st.MetaWrites < 5 {
		t.Errorf("MetaWrites = %d; BLCR must emit a small-write preamble", st.MetaWrites)
	}

	restored, rst, err := e.cr.Restart(e.source(t, "ctx"), func(img *Image) (*proc.Process, error) {
		if img.Name != "offload_proc" {
			t.Errorf("image name = %q", img.Name)
		}
		return proc.New(img.Name, 777, 2, nil), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rst.Regions != 3 || rst.Duration <= 0 {
		t.Errorf("restart stats: %+v", rst)
	}
	got := snapshotAll(restored)
	for name, b := range want {
		g, ok := got[name]
		if !ok {
			t.Fatalf("region %q missing after restart", name)
		}
		if name == "coibuf0" {
			// Local-store content is external (saved by Snapify's pause,
			// not by BLCR): the restored region exists at the right size
			// with untouched background, awaiting the local-store reload.
			if g.Len() != b.Len() {
				t.Errorf("local-store region size %d, want %d", g.Len(), b.Len())
			}
			if restored.Region(name).DirtyBytes() != 0 {
				t.Error("local-store content should not come from the context file")
			}
			continue
		}
		if !blob.Equal(g, b) {
			t.Errorf("region %q content differs after restart", name)
		}
	}
	// Pinned flag survives.
	if !restored.Region("coibuf0").Pinned() {
		t.Error("pinned flag lost")
	}
	// The restored process is frozen until the caller resumes it.
	if !restored.StepsPaused() {
		t.Error("restored process not frozen")
	}
	restored.ResumeSteps()
	if restored.StepsPaused() {
		t.Error("resume did not unfreeze")
	}
}

// makeProcReal builds the proc on a real simnet node id.
func makeProcReal(t *testing.T, name string, node int) *proc.Process {
	t.Helper()
	p := proc.New(name, 4242, simnet.NodeID(node), nil)
	data, err := p.AddRegion("data", proc.RegionData, 8192, 11)
	if err != nil {
		t.Fatal(err)
	}
	data.WriteAt([]byte("initialized globals"), 0)
	heap, _ := p.AddRegion("heap", proc.RegionHeap, 1<<20, 13)
	heap.WriteAt([]byte("malloc'd state"), 4096)
	ls, _ := p.AddRegion("coibuf0", proc.RegionLocalStore, 1<<16, 17)
	ls.Pin()
	ls.WriteAt([]byte("buffer contents"), 100)
	return p
}

func snapshotAll(p *proc.Process) map[string]blob.Blob {
	out := make(map[string]blob.Blob)
	for _, r := range p.Regions() {
		out[r.Name()] = r.Snapshot()
	}
	return out
}

func TestCheckpointQuiescesSteps(t *testing.T) {
	e := newEnv()
	p := makeProcReal(t, "p", 1)
	if _, err := e.cr.Checkpoint(p, e.sink(t, "ctx")); err != nil {
		t.Fatal(err)
	}
	// The gate must be fully released afterwards.
	if p.StepsPaused() {
		t.Error("process left paused after checkpoint")
	}
	if err := p.BeginStep(); err != nil {
		t.Fatal(err)
	}
	p.EndStep()
}

func TestCheckpointFrozenLeavesGateAlone(t *testing.T) {
	e := newEnv()
	p := makeProcReal(t, "p", 1)
	p.PauseSteps()
	if _, err := e.cr.CheckpointFrozen(p, e.sink(t, "ctx")); err != nil {
		t.Fatal(err)
	}
	if !p.StepsPaused() {
		t.Error("CheckpointFrozen disturbed the pause")
	}
	p.ResumeSteps()
}

func TestRestartEnforcesMemoryBudget(t *testing.T) {
	e := newEnv()
	p := makeProcReal(t, "big", 1)
	if _, err := e.cr.Checkpoint(p, e.sink(t, "ctx")); err != nil {
		t.Fatal(err)
	}
	// Restore target card has too little memory for the 1 MiB heap.
	bud := phi.NewMemBudget(64 * 1024)
	_, _, err := e.cr.Restart(e.source(t, "ctx"), func(img *Image) (*proc.Process, error) {
		return proc.New(img.Name, 1, 2, bud), nil
	})
	if err == nil {
		t.Fatal("restart into a full card must fail")
	}
	if !strings.Contains(err.Error(), "restoring region") {
		t.Errorf("unexpected error: %v", err)
	}
	if bud.Used() != 0 {
		t.Errorf("failed restart leaked %d bytes", bud.Used())
	}
}

func TestRestartRejectsCorruptContext(t *testing.T) {
	e := newEnv()
	e.fs.WriteFile("garbage", blob.FromBytes([]byte("this is not a context file at all, sorry")))
	_, _, err := e.cr.Restart(e.source(t, "garbage"), func(img *Image) (*proc.Process, error) {
		return proc.New(img.Name, 1, 1, nil), nil
	})
	var bad *ErrBadContext
	if !errors.As(err, &bad) {
		t.Fatalf("want ErrBadContext, got %v", err)
	}
}

func TestRestartRejectsTruncatedContext(t *testing.T) {
	e := newEnv()
	p := makeProcReal(t, "p", 1)
	if _, err := e.cr.Checkpoint(p, e.sink(t, "ctx")); err != nil {
		t.Fatal(err)
	}
	full, _, _ := e.fs.ReadFile("ctx")
	e.fs.WriteFile("trunc", full.Slice(0, full.Len()/2))
	_, _, err := e.cr.Restart(e.source(t, "trunc"), func(img *Image) (*proc.Process, error) {
		return proc.New(img.Name, 1, 1, nil), nil
	})
	var bad *ErrBadContext
	if !errors.As(err, &bad) {
		t.Fatalf("want ErrBadContext, got %v", err)
	}
}

func TestCheckpointTerminatedProcessFails(t *testing.T) {
	e := newEnv()
	p := makeProcReal(t, "p", 1)
	p.Terminate()
	if _, err := e.cr.Checkpoint(p, e.sink(t, "ctx")); err == nil {
		t.Fatal("checkpoint of terminated process must fail")
	}
}

func TestLargeSyntheticRegionStaysCheap(t *testing.T) {
	// A 1 GiB mostly-untouched region must checkpoint without
	// materializing: the context file stores its background descriptor.
	e := newEnv()
	p := proc.New("big", 1, 1, nil)
	r, _ := p.AddRegion("huge", proc.RegionHeap, simclock.GiB, 21)
	r.WriteAt([]byte("tiny dirty bit"), 12345)
	st, err := e.cr.Checkpoint(p, e.sink(t, "ctx"))
	if err != nil {
		t.Fatal(err)
	}
	if st.Bytes < simclock.GiB {
		t.Errorf("context bytes = %d, want >= 1 GiB", st.Bytes)
	}
	// The stored file must be footprint-light: literal bytes are only the
	// dirty overlay plus metadata.
	content, _, _ := e.fs.ReadFile("ctx")
	if lit := content.LiteralBytes(); lit > 1<<20 {
		t.Errorf("context file holds %d literal bytes; synthetic background leaked", lit)
	}
	// And the virtual duration reflects the full gigabyte.
	min := simclock.Default().PhiPageWalk(simclock.GiB)
	if st.Duration < min {
		t.Errorf("duration %v below page-walk bound %v", st.Duration, min)
	}
}

func TestCallbackCheckpointContinueAndRestart(t *testing.T) {
	e := newEnv()
	p := makeProcReal(t, "host_proc", 0)
	client := NewClient(e.cr, p)

	var branches []string
	client.RegisterCallback(func(req *Request) error {
		// Snapify would pause+capture the offload process here.
		branches = append(branches, "pre")
		rc, err := req.Checkpoint()
		if err != nil {
			return err
		}
		switch rc {
		case RcContinue:
			branches = append(branches, "continue")
		case RcRestart:
			branches = append(branches, "restart")
		}
		return nil
	})

	if _, err := client.RequestCheckpoint(e.sink(t, "host_ctx")); err != nil {
		t.Fatal(err)
	}
	if err := client.ResumeRestarted(); err != nil {
		t.Fatal(err)
	}
	want := []string{"pre", "continue", "pre", "restart"}
	if len(branches) != len(want) {
		t.Fatalf("branches = %v", branches)
	}
	for i := range want {
		if branches[i] != want[i] {
			t.Fatalf("branches = %v, want %v", branches, want)
		}
	}
}

func TestCallbackErrors(t *testing.T) {
	e := newEnv()
	p := makeProcReal(t, "p", 0)
	client := NewClient(e.cr, p)
	if _, err := client.RequestCheckpoint(e.sink(t, "x")); err == nil {
		t.Error("request without callback must fail")
	}
	client.RegisterCallback(func(req *Request) error { return nil }) // never calls Checkpoint
	if _, err := client.RequestCheckpoint(e.sink(t, "x")); err == nil {
		t.Error("callback skipping cr_checkpoint must fail")
	}
	client.RegisterCallback(func(req *Request) error {
		if _, err := req.Checkpoint(); err != nil {
			return err
		}
		_, err := req.Checkpoint()
		return err
	})
	if _, err := client.RequestCheckpoint(e.sink(t, "x")); err == nil {
		t.Error("double cr_checkpoint must fail")
	}
}
