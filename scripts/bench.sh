#!/bin/sh
# bench.sh — the standing benchmarks (ISSUE 2 and ISSUE 5 acceptance).
#
# First sweeps the multi-stream Snapify-IO capture of an 8 GiB-class
# device image over 1/2/4/8 streams, enforcing the shape (4 streams
# >= 2x over serial; all rows byte-identical) and recording the raw
# numbers in BENCH_capture.json. Then runs the dedup-store swap-cycle
# comparison — repeated swap-out of a mostly-unchanged image through the
# content-addressed store vs plain files — enforcing >= 3x fewer bytes
# shipped with byte-identical content, and recording BENCH_dedup.json.
# Then sweeps stop-the-world vs live (pre-copy) migration downtime
# over a 1-8 GiB image grid — enforcing byte-identical restores and a
# live downtime that stays bounded while stop-the-world grows linearly —
# and records BENCH_migrate.json. Finally runs the federation scenario —
# cross-host migration ping-pong (warm legs must dedup >= 2x against the
# destination store) plus k=2 replication, a host kill, repair, and a
# byte-identical restart-from-replica — recording BENCH_federation.json.
# Last comes the fleet control-plane benchmark — the seeded bursty job
# trace against 120 model-backed hosts at three oversubscription ratios,
# recording placement rate, swap-latency percentiles, and the
# utilization-vs-oversubscription curve in BENCH_fleet.json.
# All land at the repository root.
#
# Every row also records the harness's own wall-clock cost (wall_ns /
# wall_*_ns fields, plus the per-result wall_ns_per_gib normalization):
# how much real time the simulation spent producing its virtual numbers.
# Wall fields are machine-dependent and excluded from the regression
# gate (`snapbench -check baselines/`); everything else is virtual-clock
# deterministic and gated exactly.
#
#   bench.sh          regenerate the full-scale BENCH_*.json at the root
#   bench.sh -smoke   regenerate the smoke-scale baselines/ the verify.sh
#                     regression gate compares against
set -eu

cd "$(dirname "$0")/.."

if [ "${1:-}" = "-smoke" ]; then
    echo "==> regenerating smoke-scale regression-gate baselines (baselines/)"
    mkdir -p baselines
    go run ./cmd/snapbench -parallel -smoke -json baselines/BENCH_capture.json
    go run ./cmd/snapbench -store -smoke -json baselines/BENCH_dedup.json
    go run ./cmd/snapbench -migrate -smoke -json baselines/BENCH_migrate.json
    go run ./cmd/snapbench -federation -smoke -json baselines/BENCH_federation.json
    go run ./cmd/snapbench -fleet -smoke -json baselines/BENCH_fleet.json
    exit 0
fi

echo "==> parallel capture sweep (8 GiB image, streams 1/2/4/8)"
go run ./cmd/snapbench -parallel -json BENCH_capture.json

echo "==> dedup store swap cycles (1 GiB image, 4 cycles, plain vs store)"
go run ./cmd/snapbench -store -json BENCH_dedup.json

echo "==> migration downtime sweep (1-8 GiB images, stop-the-world vs live)"
go run ./cmd/snapbench -migrate -json BENCH_migrate.json

echo "==> federation scenario (cross-host dedup ping-pong + host-kill recovery)"
go run ./cmd/snapbench -federation -json BENCH_federation.json

echo "==> fleet control plane (120 hosts, 2400 jobs, oversubscription sweep)"
go run ./cmd/snapbench -fleet -json BENCH_fleet.json
