package core

import (
	"strings"
	"testing"
)

func TestCommandServerSwapAndMigrate(t *testing.T) {
	r := newRig(t, "core_ctl", 2)
	r.count(t, 5)
	srv := InstallCommandServer(r.plat, r.cp)

	// Swap out, then in on the other card.
	if _, err := srv.SubmitCommand("swapout /snap/ctl"); err != nil {
		t.Fatal(err)
	}
	if !srv.Swapped() {
		t.Fatal("server does not report swapped state")
	}
	if _, err := srv.SubmitCommand("swapout /snap/ctl2"); err == nil {
		t.Fatal("double swapout must fail")
	}
	if _, err := srv.SubmitCommand("swapin 2"); err != nil {
		t.Fatal(err)
	}
	if srv.Proc().DeviceNode() != 2 {
		t.Errorf("process on %v after swapin 2", srv.Proc().DeviceNode())
	}

	// Migrate back to card 1.
	if _, err := srv.SubmitCommand("migrate 1 /snap/ctl_mig"); err != nil {
		t.Fatal(err)
	}
	if srv.Proc().DeviceNode() != 1 {
		t.Errorf("process on %v after migrate 1", srv.Proc().DeviceNode())
	}

	// The computation is intact through all of it.
	if got := r.count(t, 25); got != refSum(25) {
		t.Errorf("count after ctl operations = %d, want %d", got, refSum(25))
	}

	// Error paths.
	if _, err := srv.SubmitCommand("swapin 1"); err == nil {
		t.Error("swapin while not swapped must fail")
	}
	if _, err := srv.SubmitCommand("frobnicate"); err == nil {
		t.Error("unknown command must fail")
	}
	if _, err := srv.SubmitCommand(""); err == nil {
		t.Error("empty command must fail")
	}
	if _, err := srv.SubmitCommand("migrate nope /x"); err == nil {
		t.Error("bad device must fail")
	}
}

func TestCommandServerLiveMigrateReply(t *testing.T) {
	r := newRig(t, "core_ctl_live", 2)
	r.count(t, 5)
	srv := InstallCommandServer(r.plat, r.cp)

	reply, err := srv.SubmitCommand("migrate 2 /snap/ctl_live live")
	if err != nil {
		t.Fatal(err)
	}
	if srv.Proc().DeviceNode() != 2 {
		t.Errorf("process on %v after live migrate 2", srv.Proc().DeviceNode())
	}
	if !strings.HasPrefix(reply, "ok\n") {
		t.Fatalf("live migrate reply %q lacks detail lines", reply)
	}
	if !strings.Contains(reply, "round 1:") || !strings.Contains(reply, "downtime ") {
		t.Errorf("live migrate reply %q missing round/downtime detail", reply)
	}
	if got := r.count(t, 25); got != refSum(25) {
		t.Errorf("count after live migration = %d, want %d", got, refSum(25))
	}
}
