package stream

import (
	"io"
	"testing"
	"time"

	"snapify/internal/blob"
	"snapify/internal/hostfs"
	"snapify/internal/phi"
	"snapify/internal/ramfs"
	"snapify/internal/simclock"
)

func TestCostAddAndObserve(t *testing.T) {
	c := Cost{Stages: []simclock.Duration{time.Second, 2 * time.Second}}
	if c.Add() != 3*time.Second {
		t.Errorf("Add = %v", c.Add())
	}
	// Pipelined: fill then bottleneck.
	acc := simclock.NewPipelineAccum()
	Observe(acc, c, 500*time.Millisecond)
	Observe(acc, c, 500*time.Millisecond)
	want := (3*time.Second + 500*time.Millisecond) + 2*time.Second
	if acc.Total() != want {
		t.Errorf("pipelined total = %v, want %v", acc.Total(), want)
	}
	// Serial: everything sums.
	acc2 := simclock.NewPipelineAccum()
	Observe(acc2, Cost{Stages: c.Stages, Serial: true}, 500*time.Millisecond)
	Observe(acc2, Cost{Stages: c.Stages, Serial: true}, 500*time.Millisecond)
	if acc2.Total() != 7*time.Second {
		t.Errorf("serial total = %v, want 7s", acc2.Total())
	}
}

func TestHostFSSinkSourceRoundTrip(t *testing.T) {
	fs := hostfs.New(simclock.Default())
	sink, err := NewHostFSSink(fs, "/f")
	if err != nil {
		t.Fatal(err)
	}
	content := blob.Concat(blob.FromBytes([]byte("abc")), blob.Synthetic(4, 5000))
	cost, err := sink.WriteBlob(content)
	if err != nil {
		t.Fatal(err)
	}
	if len(cost.Stages) != 1 || cost.Stages[0] <= 0 || cost.Serial {
		t.Errorf("cost = %+v", cost)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	src, err := NewHostFSSource(fs, "/f")
	if err != nil {
		t.Fatal(err)
	}
	if src.Size() != content.Len() {
		t.Errorf("Size = %d", src.Size())
	}
	var parts []blob.Blob
	for {
		b, _, err := src.Next(1024)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, b)
	}
	src.Close()
	if !blob.Equal(blob.Concat(parts...), content) {
		t.Error("round trip mismatch")
	}
}

func TestRamFSSinkAbortReleasesBudget(t *testing.T) {
	bud := phi.NewMemBudget(10000)
	fs := ramfs.New(simclock.Default(), bud)
	sink, err := NewRamFSSink(fs, "/f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sink.WriteBlob(blob.Zeros(5000)); err != nil {
		t.Fatal(err)
	}
	sink.Abort()
	if bud.Used() != 0 {
		t.Errorf("abort leaked %d bytes", bud.Used())
	}
	// Budget gate propagates as a write error.
	sink2, _ := NewRamFSSink(fs, "/g")
	if _, err := sink2.WriteBlob(blob.Zeros(20000)); err == nil {
		t.Error("over-budget write must fail")
	}
	sink2.Abort()
}

func TestRamFSSourceRoundTrip(t *testing.T) {
	bud := phi.NewMemBudget(1 << 20)
	fs := ramfs.New(simclock.Default(), bud)
	content := blob.Synthetic(3, 40000)
	if _, err := fs.WriteFile("/f", content); err != nil {
		t.Fatal(err)
	}
	src, err := NewRamFSSource(fs, "/f")
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := src.Next(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if !blob.Equal(got, content) {
		t.Error("content mismatch")
	}
	if _, _, err := src.Next(1); err != io.EOF {
		t.Errorf("want EOF, got %v", err)
	}
	src.Close()
}
