package fanout

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestRunExecutesEveryItem(t *testing.T) {
	const items = 100
	var hits [items]atomic.Int32
	if err := Run(7, items, func(i int) error {
		hits[i].Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range hits {
		if got := hits[i].Load(); got != 1 {
			t.Fatalf("item %d ran %d times", i, got)
		}
	}
}

func TestRunBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int32
	var mu sync.Mutex
	if err := Run(workers, 50, func(int) error {
		c := cur.Add(1)
		mu.Lock()
		if c > peak.Load() {
			peak.Store(c)
		}
		mu.Unlock()
		defer cur.Add(-1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("peak concurrency %d exceeds %d workers", p, workers)
	}
}

func TestRunReturnsFirstErrorInItemOrder(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	err := Run(4, 10, func(i int) error {
		switch i {
		case 3:
			return errA
		case 7:
			return errB
		}
		return nil
	})
	if !errors.Is(err, errA) {
		t.Errorf("got %v, want first error in item order (%v)", err, errA)
	}
}

func TestRunDegenerateInputs(t *testing.T) {
	if err := Run(4, 0, func(int) error { t.Fatal("ran"); return nil }); err != nil {
		t.Fatal(err)
	}
	var n atomic.Int32
	if err := Run(0, 5, func(int) error { n.Add(1); return nil }); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 5 {
		t.Errorf("workers=0 ran %d of 5 items", n.Load())
	}
}
