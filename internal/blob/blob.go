// Package blob represents large byte contents as sequences of extents.
//
// The paper's evaluation moves snapshots of up to 4 GiB between a Xeon Phi
// coprocessor and the host. Reproducing that with flat []byte buffers would
// make the simulation memory-bound on the build machine without adding any
// fidelity: the interesting bytes are the ones the application computed.
// A Blob therefore stores content as a sequence of extents, each either
//
//   - Literal: real bytes, copied byte-for-byte by every transport, or
//   - Synthetic: a (seed, size) descriptor of deterministically generated
//     background content (seed 0 is all-zeros, matching untouched anonymous
//     memory). Synthetic content can be materialized on demand, so equality
//     and hashing remain content-true.
//
// Transports charge the full virtual-time cost for both kinds (see
// internal/simclock), so the performance model is unaffected by the
// representation.
package blob

import (
	"fmt"
	"hash/fnv"
)

// Extent is one contiguous run of content.
type Extent struct {
	// Literal holds real bytes. If nil the extent is synthetic.
	Literal []byte
	// Seed selects the deterministic background pattern for a synthetic
	// extent. Seed 0 generates zeros.
	Seed uint64
	// Off is the offset into the seed's infinite stream at which this
	// extent starts; slicing a synthetic extent preserves content.
	Off int64
	// Size is the extent length in bytes. For literal extents it equals
	// len(Literal).
	Size int64
}

// IsLiteral reports whether the extent carries real bytes.
func (e Extent) IsLiteral() bool { return e.Literal != nil }

// Blob is an immutable sequence of extents. The zero value is an empty blob.
type Blob struct {
	extents []Extent
	size    int64
}

// FromBytes returns a blob holding a copy of b.
func FromBytes(b []byte) Blob {
	if len(b) == 0 {
		return Blob{}
	}
	c := make([]byte, len(b))
	copy(c, b)
	return Blob{extents: []Extent{{Literal: c, Size: int64(len(c))}}, size: int64(len(c))}
}

// Synthetic returns a blob of size bytes of deterministic content generated
// from seed, starting at stream offset 0.
func Synthetic(seed uint64, size int64) Blob {
	if size < 0 {
		panic(fmt.Sprintf("blob: negative size %d", size)) //nolint:paniclib // caller bug: a negative size is unconstructible input, not a runtime condition
	}
	if size == 0 {
		return Blob{}
	}
	return Blob{extents: []Extent{{Seed: seed, Size: size}}, size: size}
}

// Zeros returns a blob of size zero bytes.
func Zeros(size int64) Blob { return Synthetic(0, size) }

// Len returns the blob's length in bytes.
func (b Blob) Len() int64 { return b.size }

// Extents returns the underlying extents. Callers must not mutate the
// returned slices.
func (b Blob) Extents() []Extent { return b.extents }

// Concat returns the concatenation of blobs.
func Concat(blobs ...Blob) Blob {
	var out Blob
	for _, b := range blobs {
		out.extents = append(out.extents, b.extents...)
		out.size += b.size
	}
	return out
}

// Slice returns the sub-blob [off, off+n). It panics if the range is out of
// bounds.
func (b Blob) Slice(off, n int64) Blob {
	if off < 0 || n < 0 || off+n > b.size {
		panic(fmt.Sprintf("blob: slice [%d,%d) out of range of %d", off, off+n, b.size)) //nolint:paniclib // caller bug: slice bounds, mirroring built-in slice semantics
	}
	if n == 0 {
		return Blob{}
	}
	var out Blob
	pos := int64(0)
	for _, e := range b.extents {
		if n == 0 {
			break
		}
		end := pos + e.Size
		if end <= off {
			pos = end
			continue
		}
		// Overlap of [off, off+n) with [pos, end).
		start := off - pos
		if start < 0 {
			start = 0
		}
		take := e.Size - start
		if take > n {
			take = n
		}
		if e.IsLiteral() {
			out.extents = append(out.extents, Extent{Literal: e.Literal[start : start+take], Size: take})
		} else {
			out.extents = append(out.extents, Extent{Seed: e.Seed, Off: e.Off + start, Size: take})
		}
		out.size += take
		off += take
		n -= take
		pos = end
	}
	return out
}

// gen8 returns the 8 background bytes of stream seed at 8-aligned offset,
// using a splitmix64-style mix. Seed 0 yields zeros.
func gen8(seed uint64, alignedOff int64) uint64 {
	if seed == 0 {
		return 0
	}
	z := seed + 0x9e3779b97f4a7c15*uint64(alignedOff/8+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Materialize fills dst with the synthetic stream of seed starting at off.
func Materialize(seed uint64, off int64, dst []byte) {
	if seed == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	for i := 0; i < len(dst); {
		pos := off + int64(i)
		aligned := pos &^ 7
		w := gen8(seed, aligned)
		for j := pos - aligned; j < 8 && i < len(dst); j++ {
			dst[i] = byte(w >> (8 * uint(j)))
			i++
		}
	}
}

// Bytes materializes the whole blob. Intended for tests and small blobs.
func (b Blob) Bytes() []byte {
	out := make([]byte, b.size)
	pos := int64(0)
	for _, e := range b.extents {
		if e.IsLiteral() {
			copy(out[pos:], e.Literal)
		} else {
			Materialize(e.Seed, e.Off, out[pos:pos+e.Size])
		}
		pos += e.Size
	}
	return out
}

// At returns the byte at offset off.
func (b Blob) At(off int64) byte {
	if off < 0 || off >= b.size {
		panic(fmt.Sprintf("blob: offset %d out of range of %d", off, b.size)) //nolint:paniclib // caller bug: index bounds, mirroring built-in indexing
	}
	pos := int64(0)
	for _, e := range b.extents {
		if off < pos+e.Size {
			i := off - pos
			if e.IsLiteral() {
				return e.Literal[i]
			}
			var one [1]byte
			Materialize(e.Seed, e.Off+i, one[:])
			return one[0]
		}
		pos += e.Size
	}
	panic("unreachable") //nolint:paniclib // unreachable: the extent list covers the whole blob by construction
}

// LiteralBytes returns the number of bytes held as literal extents; the
// remainder is synthetic background. Transports use this split to decide
// how much real copying to do while charging full virtual cost.
func (b Blob) LiteralBytes() int64 {
	var n int64
	for _, e := range b.extents {
		if e.IsLiteral() {
			n += e.Size
		}
	}
	return n
}

const cmpChunk = 64 * 1024

// Equal reports whether two blobs have identical content. Synthetic runs
// with equal seeds and stream offsets compare without materialization;
// mixed comparisons materialize in bounded windows.
func Equal(a, c Blob) bool {
	if a.size != c.size {
		return false
	}
	var (
		ai, ci   int
		aoff, co int64 // consumed within current extent
		remain   = a.size
	)
	var bufA, bufC [cmpChunk]byte
	for remain > 0 {
		ea, ec := a.extents[ai], c.extents[ci]
		n := ea.Size - aoff
		if m := ec.Size - co; m < n {
			n = m
		}
		// Fast paths.
		switch {
		case !ea.IsLiteral() && !ec.IsLiteral() && ea.Seed == ec.Seed && ea.Off+aoff == ec.Off+co:
			// Identical synthetic streams.
		case ea.IsLiteral() && ec.IsLiteral():
			if !bytesEqual(ea.Literal[aoff:aoff+n], ec.Literal[co:co+n]) {
				return false
			}
		default:
			for done := int64(0); done < n; {
				w := n - done
				if w > cmpChunk {
					w = cmpChunk
				}
				sliceOrGen(ea, aoff+done, w, bufA[:w])
				sliceOrGen(ec, co+done, w, bufC[:w])
				if !bytesEqual(bufA[:w], bufC[:w]) {
					return false
				}
				done += w
			}
		}
		aoff += n
		co += n
		remain -= n
		if aoff == ea.Size {
			ai++
			aoff = 0
		}
		if co == ec.Size {
			ci++
			co = 0
		}
	}
	return true
}

func sliceOrGen(e Extent, off, n int64, dst []byte) {
	if e.IsLiteral() {
		copy(dst, e.Literal[off:off+n])
		return
	}
	Materialize(e.Seed, e.Off+off, dst[:n])
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Hash returns a content hash of the blob (FNV-1a over materialized
// content, computed in bounded windows).
func (b Blob) Hash() uint64 {
	h := fnv.New64a()
	var buf [cmpChunk]byte
	for _, e := range b.extents {
		for off := int64(0); off < e.Size; {
			n := e.Size - off
			if n > cmpChunk {
				n = cmpChunk
			}
			sliceOrGen(e, off, n, buf[:n])
			h.Write(buf[:n])
			off += n
		}
	}
	return h.Sum64()
}

// Splice returns base with [off, off+src.Len()) replaced by src. It panics
// if the spliced range exceeds base. Extents are preserved, so staging
// buffers built on Splice never materialize synthetic content.
func Splice(base Blob, off int64, src Blob) Blob {
	if off < 0 || off+src.Len() > base.Len() {
		panic(fmt.Sprintf("blob: splice [%d,%d) out of range of %d", off, off+src.Len(), base.Len())) //nolint:paniclib // caller bug: splice bounds, mirroring built-in slice semantics
	}
	return Concat(base.Slice(0, off), src, base.Slice(off+src.Len(), base.Len()-off-src.Len()))
}

// ForEachChunk calls fn for consecutive sub-blobs of at most chunkSize
// bytes, in order. It is the iteration primitive transports use to stream a
// blob through a bounded staging buffer.
func (b Blob) ForEachChunk(chunkSize int64, fn func(chunk Blob) error) error {
	if chunkSize <= 0 {
		panic("blob: non-positive chunk size") //nolint:paniclib // caller bug: the chunk size is a constant at every call site
	}
	for off := int64(0); off < b.size; off += chunkSize {
		n := chunkSize
		if b.size-off < n {
			n = b.size - off
		}
		if err := fn(b.Slice(off, n)); err != nil {
			return err
		}
	}
	return nil
}
