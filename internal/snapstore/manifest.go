package snapstore

import (
	"encoding/json"
	"fmt"
	"strings"

	"snapify/internal/blob"
)

// Store layout on the host VFS (DESIGN.md §11):
//
//	/snapstore/chunks/<hex-sha256>     one file per unique chunk content
//	/snapstore/manifests<snapshot path> one manifest per stored snapshot
//
// Manifests are tiny JSON documents; chunks are the bulk bytes. A chunk
// file's name IS its content digest, so Verify can fsck the store by
// re-digesting, and identical content across snapshots (or tenants)
// lands on the same file exactly once.
const (
	// ChunkPrefix is the VFS directory holding content-addressed chunks.
	ChunkPrefix = "/snapstore/chunks/"
	// ManifestPrefix is the VFS directory holding snapshot manifests.
	ManifestPrefix = "/snapstore/manifests"
	// TmpSuffix marks a manifest mid-commit. Commit writes the temp name
	// first, then the final name, then removes the temp — a crash between
	// the two leaves the snapshot absent (never torn), and GC sweeps the
	// stale temp (the atomic-or-absent guarantee, PR 4).
	TmpSuffix = ".tmp"
)

// Manifest records one stored snapshot: its logical geometry and the
// ordered chunk digests that reassemble it. Refs counts holders — one
// for the snapshot itself while registered, plus one per child manifest
// whose delta chain passes through this one — so GC can drop a base the
// moment its last delta is released, and not a moment earlier.
type Manifest struct {
	Path       string   `json:"path"`
	Size       int64    `json:"size"`
	ChunkBytes int64    `json:"chunk_bytes"`
	Parent     string   `json:"parent,omitempty"`
	Refs       int64    `json:"refs"`
	Chunks     []string `json:"chunks"`
}

// chunkLen returns the byte length of chunk i (the final chunk may be
// short).
func (m *Manifest) chunkLen(i int) int64 {
	off := int64(i) * m.ChunkBytes
	n := m.Size - off
	if n > m.ChunkBytes {
		n = m.ChunkBytes
	}
	return n
}

// chunkCount returns how many chunks a size/chunkBytes geometry needs.
func chunkCount(size, chunkBytes int64) int {
	if size <= 0 || chunkBytes <= 0 {
		return 0
	}
	return int((size + chunkBytes - 1) / chunkBytes)
}

func (m *Manifest) encode() blob.Blob {
	data, err := json.Marshal(m)
	if err != nil {
		panic(fmt.Sprintf("snapstore: encoding manifest: %v", err)) //nolint:paniclib // caller bug: Manifest holds only marshalable fields, so failure is unconstructible
	}
	return blob.FromBytes(data)
}

func decodeManifest(b blob.Blob) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(b.Bytes(), &m); err != nil {
		return nil, fmt.Errorf("snapstore: decoding manifest: %w", err)
	}
	if got, want := len(m.Chunks), chunkCount(m.Size, m.ChunkBytes); got != want {
		return nil, fmt.Errorf("snapstore: manifest %s: %d chunks for %d bytes in %d-byte chunks (want %d)",
			m.Path, got, m.Size, m.ChunkBytes, want)
	}
	return &m, nil
}

// normPath canonicalizes a snapshot path so manifest keys are stable no
// matter how the caller spells the path.
func normPath(p string) string {
	if !strings.HasPrefix(p, "/") {
		return "/" + p
	}
	return p
}

// manifestPath maps a snapshot path to its manifest's VFS key.
func manifestPath(snapshot string) string {
	return ManifestPrefix + normPath(snapshot)
}

// chunkPath maps a digest to its chunk file's VFS key.
func chunkPath(digest string) string {
	return ChunkPrefix + digest
}
