package core

// Chaos cases for the dedup store data path (ISSUE 5): a daemon crash
// mid-dedup-upload, a crash between a manifest's temp and final writes,
// and a crash mid-GC sweep. The contract matches the plain chaos tier —
// atomic-or-retryable — plus the store's own invariants: no dangling
// manifest, no pinned orphan chunk, refcounts consistent after recovery,
// and a byte-identical restore when the operation succeeds.
// scripts/verify.sh runs these twice under -race via the TestChaos filter.

import (
	"errors"
	"testing"

	"snapify/internal/coi"
	"snapify/internal/faultinject"
	"snapify/internal/simnet"
	"snapify/internal/snapstore"
)

// chaosStoreOpts is chaosOpts routed through the dedup store.
func chaosStoreOpts() CaptureOptions {
	o := chaosOpts()
	o.ChunkBytes = 32 * 1024
	o.Store.Enabled = true
	return o
}

// assertStoreConsistent is the post-fault store fsck: Verify finds
// nothing wrong, and after a GC nothing reclaimable lingers.
func assertStoreConsistent(t *testing.T, r *rig) {
	t.Helper()
	if problems, _ := r.plat.Store.Verify(); len(problems) != 0 {
		t.Errorf("store inconsistent: %v", problems)
	}
	if _, _, err := r.plat.Store.GC(0); err != nil {
		t.Fatalf("recovery gc: %v", err)
	}
	if s := r.plat.Store.Stats(); s.ReclaimableChunks != 0 {
		t.Errorf("orphan chunks survive gc: %+v", s)
	}
}

// TestChaosStoreDaemonCrashMidUpload kills the host Snapify-IO daemon in
// the middle of a dedup upload. The retry budget lets the capture
// re-negotiate: chunks that landed before the crash are found as "have"
// and drop out of the need set, and the capture either completes (with a
// byte-identical restore) or fails cleanly with no dangling manifest.
func TestChaosStoreDaemonCrashMidUpload(t *testing.T) {
	r := newRig(t, "core_chaos_store", 1)
	r.count(t, 20)
	ctx := "/snap/chstore/" + coi.ContextFileName
	s := NewSnapshot("/snap/chstore", r.cp)
	if err := Pause(s); err != nil {
		t.Fatal(err)
	}
	arm(r, faultinject.Fault{Site: faultinject.SiteDaemon, Key: simnet.HostNode.String(), Kind: faultinject.Crash, Nth: 2})
	err := s.Capture(chaosStoreOpts())
	if err == nil {
		err = Wait(s)
	}
	disarm(r)
	assertNoPartials(t, r.plat)
	if err != nil {
		// Clean failure: the snapshot is absent from the store (never a
		// torn or dangling manifest) and recovery leaves no orphans.
		t.Logf("store capture failed cleanly: %v", err)
		if r.plat.Store.Has(ctx) {
			if problems, _ := r.plat.Store.Verify(); len(problems) != 0 {
				t.Errorf("committed-but-unreported manifest inconsistent: %v", problems)
			}
		}
		if problems, _ := r.plat.Store.Verify(); len(problems) != 0 {
			t.Errorf("store inconsistent after failed capture: %v", problems)
		}
		if _, _, err := r.plat.Store.GC(0); err != nil {
			t.Fatalf("gc after failed capture: %v", err)
		}
		return
	}
	if !r.plat.Store.Has(ctx) {
		t.Fatal("capture succeeded but no manifest committed")
	}
	assertStoreConsistent(t, r)
	ropts := RestoreOptions{Streams: 2, ChunkBytes: 32 * 1024, Retry: RetryPolicy{MaxAttempts: 4}}
	ropts.Store.Enabled = true
	if _, err := Swapin(s, 1, ropts); err != nil {
		t.Fatalf("swap-in after faulted store capture: %v", err)
	}
	if got := r.count(t, 40); got != refSum(40) {
		t.Errorf("restored computation = %d, want %d", got, refSum(40))
	}
}

// TestChaosStoreCommitCrash crashes the daemon between the manifest's
// temp and final writes. The snapshot is atomically absent; the capture
// retry re-negotiates, finds every chunk resident, and commits during
// the negotiation with not one data byte re-shipped.
func TestChaosStoreCommitCrash(t *testing.T) {
	r := newRig(t, "core_chaos_store", 1)
	r.count(t, 20)
	ctx := "/snap/chcommit/" + coi.ContextFileName
	s := NewSnapshot("/snap/chcommit", r.cp)
	if err := Pause(s); err != nil {
		t.Fatal(err)
	}
	arm(r, faultinject.Fault{Site: faultinject.SiteStore, Key: "commit", Kind: faultinject.Crash, Nth: 1})
	err := s.Capture(chaosStoreOpts())
	if err == nil {
		err = Wait(s)
	}
	disarm(r)
	assertNoPartials(t, r.plat)
	if err != nil {
		t.Fatalf("retry must ride out a single commit crash: %v", err)
	}
	if !r.plat.Store.Has(ctx) {
		t.Fatal("no committed manifest after retried commit")
	}
	// The retried commit reused the same temp name, so nothing stale
	// lingers and the refcount graph checks out.
	assertStoreConsistent(t, r)
	ropts := RestoreOptions{}
	ropts.Store.Enabled = true
	if _, err := Swapin(s, 1, ropts); err != nil {
		t.Fatal(err)
	}
	if got := r.count(t, 40); got != refSum(40) {
		t.Errorf("restored computation = %d, want %d", got, refSum(40))
	}
}

// TestChaosStoreGCCrash interrupts a GC sweep mid-scan. The sweep only
// ever deletes garbage, so the partial run is harmless and a re-run
// converges on the empty store.
func TestChaosStoreGCCrash(t *testing.T) {
	r := newRig(t, "core_chaos_store", 1)
	r.count(t, 20)
	ctx := "/snap/chgc/" + coi.ContextFileName
	if _, err := Swapout("/snap/chgc", r.cp, chaosStoreOpts()); err != nil {
		t.Fatal(err)
	}
	before := r.plat.Store.Stats()
	if before.Chunks < 2 {
		t.Fatalf("need at least 2 chunks to interrupt a sweep, have %d", before.Chunks)
	}
	// Drop the snapshot: every chunk becomes garbage.
	if _, err := r.plat.Store.Release(ctx); err != nil {
		t.Fatal(err)
	}
	arm(r, faultinject.Fault{Site: faultinject.SiteStore, Key: "gc", Kind: faultinject.Crash, Nth: 2})
	gs, _, err := r.plat.Store.GC(0)
	disarm(r)
	if !errors.Is(err, snapstore.ErrInterrupted) {
		t.Fatalf("interrupted gc returned %v, want ErrInterrupted", err)
	}
	if gs.ChunksScanned != 2 || gs.ChunksReclaimed != 1 {
		t.Errorf("interrupted gc stats: %+v", gs)
	}
	if problems, _ := r.plat.Store.Verify(); len(problems) != 0 {
		t.Errorf("store inconsistent after interrupted gc: %v", problems)
	}
	// The re-run converges: zero chunks, zero manifests, nothing dangling.
	if _, _, err := r.plat.Store.GC(0); err != nil {
		t.Fatal(err)
	}
	if s := r.plat.Store.Stats(); s.Chunks != 0 || s.Manifests != 0 {
		t.Errorf("gc re-run did not converge: %+v", s)
	}
	if problems, _ := r.plat.Store.Verify(); len(problems) != 0 {
		t.Errorf("store inconsistent after recovery: %v", problems)
	}
}
