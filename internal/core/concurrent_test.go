package core

import (
	"fmt"
	"sync"
	"testing"

	"snapify/internal/coi"
	"snapify/internal/simnet"
)

// TestConcurrentPausesOnOneCard exercises the daemon's active-request list
// and monitor thread (Section 4.1): several host processes pause, capture,
// and resume their offload processes on the same card at the same time.
// One monitor thread serves all the pipes; each request completes and each
// application's computation is unaffected.
func TestConcurrentPausesOnOneCard(t *testing.T) {
	coi.RegisterBinary(testBinary("core_conc"))
	r := newRig(t, "core_conc_unused", 1) // builds platform + daemons
	plat := r.plat

	const apps = 4
	type appState struct {
		rig *rig
	}
	states := make([]*appState, apps)
	for i := range states {
		host := plat.Procs.Spawn(fmt.Sprintf("host_conc_%d", i), simnet.HostNode, plat.Host().Mem)
		tl := r.tl
		cp, err := coi.CreateProcess(plat, host, tl, 1, "core_conc")
		if err != nil {
			t.Fatal(err)
		}
		pl, err := cp.CreatePipeline()
		if err != nil {
			t.Fatal(err)
		}
		states[i] = &appState{rig: &rig{plat: plat, host: host, tl: tl, cp: cp, pl: pl}}
	}

	var wg sync.WaitGroup
	errs := make([]error, apps)
	for i, st := range states {
		wg.Add(1)
		go func(i int, rg *rig) {
			defer wg.Done()
			fail := func(err error) { errs[i] = fmt.Errorf("app %d: %w", i, err) }
			// Work, snapshot, work: the snapshots interleave on the card.
			args := makeCountArgs(20)
			if _, err := rg.pl.RunFunction("count", args); err != nil {
				fail(err)
				return
			}
			s := NewSnapshot(fmt.Sprintf("/snap/conc/%d", i), rg.cp)
			if err := Pause(s); err != nil {
				fail(err)
				return
			}
			if err := s.Capture(CaptureOptions{}); err != nil {
				fail(err)
				return
			}
			if err := Wait(s); err != nil {
				fail(err)
				return
			}
			if err := Resume(s); err != nil {
				fail(err)
				return
			}
			out, err := rg.pl.RunFunction("count", makeCountArgs(40))
			if err != nil {
				fail(err)
				return
			}
			if got := decodeU64(out); got != refSum(40) {
				fail(fmt.Errorf("result %d, want %d", got, refSum(40)))
			}
		}(i, st.rig)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
	// All pause state drained from the daemon; snapshots all on disk.
	for i := range states {
		if !plat.Host().FS.Exists(fmt.Sprintf("/snap/conc/%d/%s", i, coi.ContextFileName)) {
			t.Errorf("app %d snapshot missing", i)
		}
	}
}

// TestConcurrentSwapsAcrossCards runs simultaneous migrations in opposite
// directions between two cards.
func TestConcurrentSwapsAcrossCards(t *testing.T) {
	coi.RegisterBinary(testBinary("core_cross"))
	r := newRig(t, "core_cross_unused", 2)
	plat := r.plat

	mk := func(i int, dev simnet.NodeID) *rig {
		host := plat.Procs.Spawn(fmt.Sprintf("host_cross_%d", i), simnet.HostNode, plat.Host().Mem)
		cp, err := coi.CreateProcess(plat, host, r.tl, dev, "core_cross")
		if err != nil {
			t.Fatal(err)
		}
		pl, err := cp.CreatePipeline()
		if err != nil {
			t.Fatal(err)
		}
		return &rig{plat: plat, host: host, tl: r.tl, cp: cp, pl: pl}
	}
	a := mk(0, 1)                                // card 1 -> 2
	b := mk(1, 2)                                // card 2 -> 1
	a.pl.RunFunction("count", makeCountArgs(10)) //nolint:errcheck
	b.pl.RunFunction("count", makeCountArgs(10)) //nolint:errcheck

	var wg sync.WaitGroup
	errs := make([]error, 2)
	migrate := func(i int, rg *rig, to simnet.NodeID) {
		defer wg.Done()
		if _, _, err := Migrate(rg.cp, MigrateOptions{DeviceTo: to, Path: fmt.Sprintf("/snap/cross/%d", i)}); err != nil {
			errs[i] = err
		}
	}
	wg.Add(2)
	go migrate(0, a, 2)
	go migrate(1, b, 1)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("migration %d: %v", i, err)
		}
	}
	if a.cp.DeviceNode() != 2 || b.cp.DeviceNode() != 1 {
		t.Fatalf("devices after cross-migration: %v %v", a.cp.DeviceNode(), b.cp.DeviceNode())
	}
	for _, rg := range []*rig{a, b} {
		out, err := rg.pl.RunFunction("count", makeCountArgs(30))
		if err != nil {
			t.Fatal(err)
		}
		if got := decodeU64(out); got != refSum(30) {
			t.Errorf("post-cross-migration result %d, want %d", got, refSum(30))
		}
	}
}

func makeCountArgs(n uint64) []byte {
	args := make([]byte, 8)
	args[0] = byte(n >> 56)
	args[1] = byte(n >> 48)
	args[2] = byte(n >> 40)
	args[3] = byte(n >> 32)
	args[4] = byte(n >> 24)
	args[5] = byte(n >> 16)
	args[6] = byte(n >> 8)
	args[7] = byte(n)
	return args
}

func decodeU64(b []byte) uint64 {
	var v uint64
	for _, x := range b[:8] {
		v = v<<8 | uint64(x)
	}
	return v
}
