package simclock

import "sync"

// Timeline is the virtual clock of one application run. COI operations,
// Snapify hooks, and workload compute kernels all advance it; the final
// reading is the run's virtual wall-clock time (what Fig 9 reports).
type Timeline struct {
	mu sync.Mutex
	t  Duration
}

// NewTimeline returns a timeline at zero.
func NewTimeline() *Timeline { return &Timeline{} }

// Advance moves the clock forward by d.
func (tl *Timeline) Advance(d Duration) {
	if tl == nil {
		return
	}
	tl.mu.Lock()
	tl.t += d
	tl.mu.Unlock()
}

// AdvanceTo moves the clock to at least t (used to join concurrent
// activity: the clock lands at the later of the two finish times).
func (tl *Timeline) AdvanceTo(t Duration) {
	if tl == nil {
		return
	}
	tl.mu.Lock()
	if t > tl.t {
		tl.t = t
	}
	tl.mu.Unlock()
}

// Now returns the current virtual time.
func (tl *Timeline) Now() Duration {
	if tl == nil {
		return 0
	}
	tl.mu.Lock()
	defer tl.mu.Unlock()
	return tl.t
}
