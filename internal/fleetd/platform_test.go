package fleetd

// Platform-backed integration tests: the controller drives real
// simulated servers through sched.Fleet, so swap-outs run the
// store-backed core.Swapout path, migrations ship deduped snapshot
// directories, and recoveries restart from replicated checkpoints.
// These validate the control plane's decisions end to end at test
// scale; the model backend covers bench scale.

import (
	"testing"
	"time"

	"snapify/internal/obs"
	"snapify/internal/platform/platformtest"
	"snapify/internal/sched"
	"snapify/internal/simclock"
	"snapify/internal/snapstore"
	"snapify/internal/workloads"
)

// platSpec is the standard small workload: ~512 MiB of card footprint
// (device memory + local store).
func platSpec(code string, calls int) workloads.Spec {
	return workloads.Spec{
		Code: code, Name: code,
		HostMem:        8 * simclock.MiB,
		DeviceMem:      256 * simclock.MiB,
		LocalStore:     256 * simclock.MiB,
		Calls:          calls,
		StepsPerCall:   2,
		ComputePerCall: time.Millisecond,
		InPerCall:      16 * simclock.KiB,
		OutPerCall:     16 * simclock.KiB,
	}
}

func platFootprint(spec workloads.Spec) int64 { return spec.DeviceMem + spec.LocalStore }

// newPlatformEnv builds an n-host fleet of real simulated servers (one
// card each) with store-backed capture and k snapshot replicas, and a
// controller managing them through a PlatformBackend.
func newPlatformEnv(t *testing.T, hosts, replicas int, cardMem int64, opts Options) (*Controller, *PlatformBackend) {
	t.Helper()
	fleet := sched.NewFleet(obs.New(), snapstore.DefaultLink(), nil)
	var names []string
	for i := 0; i < hosts; i++ {
		name := "h" + string(rune('a'+i))
		plat := platformtest.Start(t, platformtest.Options{Devices: 1})
		if err := fleet.AddHost(name, plat); err != nil {
			t.Fatal(err)
		}
		names = append(names, name)
	}
	fleet.Capture.Streams = 2
	fleet.Capture.ChunkBytes = 256 * 1024
	fleet.Capture.Store.Enabled = true
	fleet.Capture.Store.Replicas = replicas
	fleet.Restore.Store.Enabled = true
	be := NewPlatformBackend(fleet, names, 1, cardMem)
	return New(opts, be, obs.New()), be
}

// platReference runs spec uninterrupted on a fresh platform and
// returns its checksum.
func platReference(t *testing.T, spec workloads.Spec) uint64 {
	t.Helper()
	plat := platformtest.Start(t, platformtest.Options{Devices: 1})
	in, err := workloads.Launch(plat, spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	want, err := in.Run()
	if err != nil {
		t.Fatal(err)
	}
	return want
}

func platJob(t *testing.T, c *Controller, id int) *sched.FleetJob {
	t.Helper()
	j := c.JobByID(id)
	if j == nil {
		t.Fatalf("no job %d", id)
	}
	fj, ok := j.FJ.(*sched.FleetJob)
	if !ok || fj == nil {
		t.Fatalf("job %d has no fleet binding", id)
	}
	return fj
}

func assertStoresClean(t *testing.T, fleet *sched.Fleet) {
	t.Helper()
	fed := fleet.Federation()
	for _, name := range fed.Members() {
		if !fed.Alive(name) {
			continue
		}
		st, err := fed.StoreOf(name)
		if err != nil {
			t.Fatal(err)
		}
		if problems, _ := st.Verify(); len(problems) != 0 {
			t.Errorf("store on %s inconsistent: %v", name, problems)
		}
	}
}

// TestFleetdPlatformOversubscription packs three 512 MiB jobs onto one
// oversubscribed 768 MiB card: only one can be resident at a time, so
// the controller must cycle them through real store-backed swap-outs.
// Every job must still finish with the reference checksum.
func TestFleetdPlatformOversubscription(t *testing.T) {
	spec := platSpec("PO", 6)
	want := platReference(t, spec)
	fp := platFootprint(spec)

	c, be := newPlatformEnv(t, 2, 2, fp+fp/2, Options{OversubPct: 300})
	var specs []JobSpec
	for id := 1; id <= 3; id++ {
		s := spec
		specs = append(specs, JobSpec{
			ID: id, Tenant: "tenant-a",
			Footprint: fp, Bursts: 3,
			BurstLen: 20 * ms, ThinkLen: 100 * ms,
			Workload: &s,
		})
	}
	if err := c.SubmitTrace(specs); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}

	st := c.Stats()
	if st.Completed != 3 {
		t.Fatalf("completed %d of 3 jobs: %+v", st.Completed, st)
	}
	if st.SwapOuts == 0 || st.SwapIns == 0 {
		t.Fatalf("oversubscribed card never swapped: %+v", st)
	}
	for id := 1; id <= 3; id++ {
		fj := platJob(t, c, id)
		if !fj.Done {
			t.Errorf("fleet job %d not done", id)
		}
		if got := fj.Inst.Checksum(); got != want {
			t.Errorf("job %d checksum %#x, want %#x", id, got, want)
		}
	}
	assertStoresClean(t, be.Fleet())
}

// TestFleetdPlatformEvacuation drains a host under a deadline: both
// jobs live there, and the controller must move them with real
// checkpoint-ship-restart migrations before the deadline.
func TestFleetdPlatformEvacuation(t *testing.T) {
	spec := platSpec("PE", 8)
	want := platReference(t, spec)
	fp := platFootprint(spec)

	c, be := newPlatformEnv(t, 3, 2, 2*fp, Options{EvacWave: 2})
	var specs []JobSpec
	for id := 1; id <= 2; id++ {
		s := spec
		specs = append(specs, JobSpec{
			ID: id, Tenant: "tenant-a",
			Footprint: fp, Bursts: 4,
			BurstLen: 20 * ms, ThinkLen: 1500 * ms,
			Workload: &s,
		})
	}
	if err := c.SubmitTrace(specs); err != nil {
		t.Fatal(err)
	}
	c.ScheduleEvacuation(10*ms, "ha", 60000*ms)
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}

	st := c.Stats()
	if st.Completed != 2 {
		t.Fatalf("completed %d of 2 jobs: %+v", st.Completed, st)
	}
	if st.EvacMoves == 0 {
		t.Fatalf("evacuation moved nothing: %+v", st)
	}
	reports := c.Evacuations()
	if len(reports) != 1 || !reports[0].Done || !reports[0].DeadlineMet {
		t.Fatalf("evacuation report %+v, want done within deadline", reports)
	}
	for id := 1; id <= 2; id++ {
		fj := platJob(t, c, id)
		if fj.Host == "ha" {
			t.Errorf("job %d still on drained host", id)
		}
		if got := fj.Inst.Checksum(); got != want {
			t.Errorf("job %d checksum %#x, want %#x", id, got, want)
		}
	}
	assertStoresClean(t, be.Fleet())
}

// TestFleetdPlatformKillRecovery checkpoints a live job, kills its
// host, and expects the controller to restart it from a surviving
// replica on another member — finishing with the reference checksum.
func TestFleetdPlatformKillRecovery(t *testing.T) {
	spec := platSpec("PK", 6)
	want := platReference(t, spec)
	fp := platFootprint(spec)

	c, be := newPlatformEnv(t, 3, 2, 2*fp, Options{})
	s := spec
	specs := []JobSpec{{
		ID: 1, Tenant: "tenant-a",
		Footprint: fp, Bursts: 3,
		BurstLen: 10 * ms, ThinkLen: 3000 * ms,
		Workload: &s,
	}}
	if err := c.SubmitTrace(specs); err != nil {
		t.Fatal(err)
	}

	// Run until the job reaches its first think phase, then checkpoint
	// it and kill its host out from under it.
	until := 100 * ms
	for c.JobByID(1).State != StateThinking {
		if err := c.RunUntil(until); err != nil {
			t.Fatal(err)
		}
		until += 50 * ms
		if until > 20000*ms {
			t.Fatalf("job never reached thinking; state %v", c.JobByID(1).State)
		}
	}
	if c.JobByID(1).Host != "ha" {
		t.Fatalf("job placed on %q, want ha", c.JobByID(1).Host)
	}
	if err := c.CheckpointJob(1); err != nil {
		t.Fatal(err)
	}
	c.KillHost("ha")
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}

	st := c.Stats()
	if st.JobsLost != 1 || st.Recovered != 1 {
		t.Fatalf("lost %d recovered %d, want 1/1: %+v", st.JobsLost, st.Recovered, st)
	}
	if st.Completed != 1 {
		t.Fatalf("job did not complete: %+v", st)
	}
	fj := platJob(t, c, 1)
	if fj.Host == "ha" {
		t.Error("job still homed on the dead host")
	}
	if got := fj.Inst.Checksum(); got != want {
		t.Errorf("checksum %#x, want %#x", got, want)
	}
	assertStoresClean(t, be.Fleet())
}
