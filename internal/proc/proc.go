// Package proc models the processes of a Xeon Phi server: host processes
// on node 0 and full-blown Linux processes on the coprocessors (the paper
// stresses that, unlike a GPU kernel, an offload process is an ordinary
// process with private heap, stacks, and memory-mapped files).
//
// A Process owns named memory Regions (drawing on the card's memory
// budget), threads, signal handlers, UNIX pipes, and an exit status with
// watcher callbacks — everything the COI daemon, BLCR, and Snapify's
// protocols need to observe. Because Go cannot freeze arbitrary goroutines,
// simulated computations keep all of their state in Regions and cross a
// per-process step gate between steps; the gate is where a pause lands, so
// a snapshot always observes a state the real BLCR could have captured
// (see DESIGN.md, substitution table).
package proc

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"snapify/internal/simnet"
)

// Budget arbitrates memory; phi.MemBudget implements it.
type Budget interface {
	Reserve(n int64) error
	Release(n int64)
}

// unlimited is the host's default budget when none is supplied.
type unlimited struct{}

func (unlimited) Reserve(int64) error { return nil }
func (unlimited) Release(int64)       {}

// State is a process lifecycle state.
type State int

const (
	// Running is the normal state.
	Running State = iota
	// Terminated means the process has exited and released its memory.
	Terminated
)

func (s State) String() string {
	switch s {
	case Running:
		return "running"
	case Terminated:
		return "terminated"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// ErrTerminated is returned by operations on exited processes.
var ErrTerminated = errors.New("proc: process terminated")

// Signal identifies a deliverable signal.
type Signal int

// The signals the Snapify stack uses.
const (
	// SigSnapify triggers the snapify-service handler in an offload
	// process (the COI daemon sends it during pause, Section 4.1).
	SigSnapify Signal = 64 + iota
	// SigCheckpoint triggers a checkpoint callback in a host process
	// (BLCR's cr_checkpoint command-line tool sends it, Section 5).
	SigCheckpoint
	// SigCommand tells a host process that the snapify command-line
	// utility has submitted a swap/migrate command on its pipe.
	SigCommand
)

// ExitWatcher observes a process exit. expected reports whether the exit
// was announced beforehand (Snapify marks swap-out terminations expected so
// the COI daemon does not treat them as crashes; Section 3, "Dealing with
// distributed states").
type ExitWatcher func(p *Process, expected bool)

// Process is a simulated process.
type Process struct {
	name string
	pid  int
	node simnet.NodeID

	budget Budget

	mu       sync.Mutex
	state    State
	exitCh   chan struct{}
	expected bool // termination was announced
	regions  map[string]*Region
	order    []string // region creation order, for deterministic snapshots
	threads  map[string]int
	watchers []ExitWatcher
	handlers map[Signal]func()

	gate stepGate
}

// New creates a running process. A nil budget means unlimited (host
// processes on the 32 GiB host are effectively unconstrained in the
// paper's experiments).
func New(name string, pid int, node simnet.NodeID, budget Budget) *Process {
	if budget == nil {
		budget = unlimited{}
	}
	p := &Process{
		name:     name,
		pid:      pid,
		node:     node,
		budget:   budget,
		exitCh:   make(chan struct{}),
		regions:  make(map[string]*Region),
		threads:  make(map[string]int),
		handlers: make(map[Signal]func()),
	}
	p.gate.init()
	return p
}

// Name returns the process name.
func (p *Process) Name() string { return p.name }

// PID returns the process ID.
func (p *Process) PID() int { return p.pid }

// Node returns the SCIF node the process runs on.
func (p *Process) Node() simnet.NodeID { return p.node }

// State returns the lifecycle state.
func (p *Process) State() State {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.state
}

// --- memory regions ---

// AddRegion allocates a region of size bytes with the given background
// seed, drawing on the process's memory budget.
func (p *Process) AddRegion(name string, kind RegionKind, size int64, seed uint64) (*Region, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.state == Terminated {
		return nil, ErrTerminated
	}
	if _, dup := p.regions[name]; dup {
		return nil, fmt.Errorf("proc: region %q already exists in %s", name, p.name)
	}
	if err := p.budget.Reserve(size); err != nil {
		return nil, fmt.Errorf("proc: allocating region %q (%d bytes) in %s: %w", name, size, p.name, err)
	}
	r := newRegion(name, kind, size, seed)
	p.regions[name] = r
	p.order = append(p.order, name)
	return r, nil
}

// Region returns the named region, or nil.
func (p *Process) Region(name string) *Region {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.regions[name]
}

// Regions returns all regions in creation order.
func (p *Process) Regions() []*Region {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*Region, 0, len(p.order))
	for _, n := range p.order {
		out = append(out, p.regions[n])
	}
	return out
}

// RemoveRegion frees the named region.
func (p *Process) RemoveRegion(name string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	r, ok := p.regions[name]
	if !ok {
		return fmt.Errorf("proc: no region %q in %s", name, p.name)
	}
	delete(p.regions, name)
	for i, n := range p.order {
		if n == name {
			p.order = append(p.order[:i], p.order[i+1:]...)
			break
		}
	}
	p.budget.Release(r.Size())
	return nil
}

// MemBytes returns the total bytes of all regions.
func (p *Process) MemBytes() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var n int64
	for _, r := range p.regions {
		n += r.Size()
	}
	return n
}

// --- threads ---

// SpawnThread runs fn on a new goroutine registered as a thread of the
// process. The thread is deregistered when fn returns.
func (p *Process) SpawnThread(name string, fn func()) error {
	p.mu.Lock()
	if p.state == Terminated {
		p.mu.Unlock()
		return ErrTerminated
	}
	p.threads[name]++
	p.mu.Unlock()
	go func() { //nolint:goroutineleak // this IS the tracking mechanism: the thread-table entry lives exactly as long as fn
		defer func() {
			p.mu.Lock()
			p.threads[name]--
			if p.threads[name] == 0 {
				delete(p.threads, name)
			}
			p.mu.Unlock()
		}()
		fn()
	}()
	return nil
}

// ThreadCount returns the number of live registered threads.
func (p *Process) ThreadCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, c := range p.threads {
		n += c
	}
	return n
}

// ThreadNames returns the live thread names, sorted.
func (p *Process) ThreadNames() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []string
	for n, c := range p.threads {
		for i := 0; i < c; i++ {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// --- signals ---

// HandleSignal installs (or, with a nil fn, removes) the handler for sig.
func (p *Process) HandleSignal(sig Signal, fn func()) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if fn == nil {
		delete(p.handlers, sig)
		return
	}
	p.handlers[sig] = fn
}

// Deliver invokes the handler for sig on a fresh goroutine, as the kernel
// would interrupt a thread. It returns an error if the process has exited
// or has no handler installed.
func (p *Process) Deliver(sig Signal) error {
	p.mu.Lock()
	if p.state == Terminated {
		p.mu.Unlock()
		return ErrTerminated
	}
	fn, ok := p.handlers[sig]
	p.mu.Unlock()
	if !ok {
		return fmt.Errorf("proc: %s has no handler for signal %d", p.name, sig)
	}
	go fn()
	return nil
}

// --- exit ---

// OnExit registers a watcher called when the process terminates. The COI
// daemon uses this to detect offload-process crashes.
func (p *Process) OnExit(w ExitWatcher) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.state == Terminated {
		// Fire immediately for consistency.
		expected := p.expected
		go w(p, expected)
		return
	}
	p.watchers = append(p.watchers, w)
}

// AnnounceExit marks the next termination as expected. Snapify calls it
// before the terminate-after-capture of a swap-out, so the daemon's crash
// monitoring does not misfire.
func (p *Process) AnnounceExit() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.expected = true
}

// Terminate exits the process: releases all region memory, unblocks the
// step gate, and notifies exit watchers. It is idempotent.
func (p *Process) Terminate() {
	p.mu.Lock()
	if p.state == Terminated {
		p.mu.Unlock()
		return
	}
	p.state = Terminated
	var freed int64
	for _, r := range p.regions {
		freed += r.Size()
	}
	p.regions = make(map[string]*Region)
	p.order = nil
	watchers := p.watchers
	p.watchers = nil
	expected := p.expected
	close(p.exitCh)
	p.mu.Unlock()

	p.budget.Release(freed)
	p.gate.shutdown()
	for _, w := range watchers {
		w(p, expected)
	}
}

// Wait blocks until the process terminates.
func (p *Process) Wait() { <-p.exitCh }

// Exited returns a channel closed at termination.
func (p *Process) Exited() <-chan struct{} { return p.exitCh }
