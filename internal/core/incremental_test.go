package core

import (
	"fmt"
	"testing"
)

// TestIncrementalSwapChain drives the incremental-checkpoint extension
// through the full Snapify protocol: a base capture, two delta captures
// (the last one terminating the process, like a swap-out), then a chain
// restore and continued execution with the exact state.
func TestIncrementalSwapChain(t *testing.T) {
	r := newRig(t, "core_incr", 1)

	// Phase 1: work, then base capture.
	if got := r.count(t, 10); got != refSum(10) {
		t.Fatal("phase 1 wrong")
	}
	base := NewSnapshot("/snap/incr/base", r.cp)
	mustOK(t, Pause(base))
	mustOK(t, base.CaptureBase(CaptureOptions{}))
	mustOK(t, Wait(base))
	mustOK(t, Resume(base))
	fullBytes := base.Report.SnapshotBytes

	// Phase 2: more work, then a delta capture.
	r.count(t, 20)
	d1 := NewSnapshot("/snap/incr/d1", r.cp)
	mustOK(t, Pause(d1))
	mustOK(t, d1.CaptureDelta(CaptureOptions{}))
	mustOK(t, Wait(d1))
	mustOK(t, Resume(d1))
	if d1.Report.SnapshotBytes >= fullBytes/4 {
		t.Errorf("delta capture %d bytes vs full %d — not incremental", d1.Report.SnapshotBytes, fullBytes)
	}
	if d1.Report.Capture >= base.Report.Capture {
		t.Errorf("delta capture time %v not below full %v", d1.Report.Capture, base.Report.Capture)
	}

	// Phase 3: more work, then a terminating delta (incremental swap-out).
	r.count(t, 30)
	d2 := NewSnapshot("/snap/incr/d2", r.cp)
	mustOK(t, Pause(d2))
	mustOK(t, d2.CaptureDelta(CaptureOptions{Terminate: true}))
	mustOK(t, Wait(d2))

	// Chain restore: base context + two deltas; local store from the
	// latest pause (d2's directory).
	if _, err := d2.RestoreChain("/snap/incr/base", []string{"/snap/incr/d1", "/snap/incr/d2"}, 1, RestoreOptions{}); err != nil {
		t.Fatal(err)
	}
	mustOK(t, Resume(d2))

	// The counter is at 30; continuing to 50 must be exact.
	if got := r.count(t, 50); got != refSum(50) {
		t.Errorf("post-chain-restore count = %d, want %d", got, refSum(50))
	}
}

// TestChainRestoreMissingDeltaFails covers the storage error path of the
// chain.
func TestChainRestoreMissingDeltaFails(t *testing.T) {
	r := newRig(t, "core_incr_missing", 1)
	r.count(t, 5)
	base := NewSnapshot("/snap/incrm/base", r.cp)
	mustOK(t, Pause(base))
	mustOK(t, base.CaptureBase(CaptureOptions{Terminate: true}))
	mustOK(t, Wait(base))

	_, err := base.RestoreChain("/snap/incrm/base", []string{"/snap/incrm/never"}, 1, RestoreOptions{})
	if err == nil {
		t.Fatal("chain restore with missing delta must fail")
	}
	// Without the bogus delta, the base alone restores fine.
	if _, err := base.RestoreChain("/snap/incrm/base", nil, 1, RestoreOptions{}); err != nil {
		t.Fatal(err)
	}
	mustOK(t, Resume(base))
	if got := r.count(t, 15); got != refSum(15) {
		t.Errorf("recovery run = %d, want %d", got, refSum(15))
	}
}

// TestDeltaSequenceConsistency randomizes work between delta captures and
// validates the chain always reconstructs the exact counter state.
func TestDeltaSequenceConsistency(t *testing.T) {
	r := newRig(t, "core_incr_seq", 1)
	r.count(t, 4)
	base := NewSnapshot("/snap/seq/base", r.cp)
	mustOK(t, Pause(base))
	mustOK(t, base.CaptureBase(CaptureOptions{}))
	mustOK(t, Wait(base))
	mustOK(t, Resume(base))

	var deltas []string
	target := uint64(4)
	for gen := 0; gen < 4; gen++ {
		target += uint64(3 + gen)
		r.count(t, target)
		dir := fmt.Sprintf("/snap/seq/d%d", gen)
		s := NewSnapshot(dir, r.cp)
		mustOK(t, Pause(s))
		mustOK(t, s.CaptureDelta(CaptureOptions{Terminate: gen == 3})) // last one terminates
		mustOK(t, Wait(s))
		if gen < 3 {
			mustOK(t, Resume(s))
		} else {
			if _, err := s.RestoreChain("/snap/seq/base", deltas2(deltas, dir), 1, RestoreOptions{}); err != nil {
				t.Fatal(err)
			}
			mustOK(t, Resume(s))
		}
		deltas = append(deltas, dir)
	}
	if got := r.count(t, target+10); got != refSum(target+10) {
		t.Errorf("final count = %d, want %d", got, refSum(target+10))
	}
}

func deltas2(prev []string, last string) []string {
	out := append([]string{}, prev...)
	return append(out, last)
}
