package snapstore

import (
	"testing"

	"snapify/internal/blob"
)

// FuzzDecodeManifest throws arbitrary bytes at the manifest decoder.
// The decoder is the store's parsing surface for data read back off the
// host VFS (and, with federation, off the wire from a peer), so it must
// reject malformed documents with an error — never panic — and any
// document it accepts must satisfy the store's geometry invariant and
// survive a re-encode round trip unchanged.
func FuzzDecodeManifest(f *testing.F) {
	valid := &Manifest{Path: "/snap/job0/context", Size: 100, ChunkBytes: 64, Refs: 1,
		Chunks: []string{"aa", "bb"}}
	child := &Manifest{Path: "/snap/job0/buf0", Size: 64, ChunkBytes: 64,
		Parent: "/snap/job0/context", Refs: 2, Chunks: []string{"cc"}}
	empty := &Manifest{Path: "/snap/empty", Size: 0, ChunkBytes: 64, Refs: 1}
	f.Add(valid.encode().Bytes())
	f.Add(child.encode().Bytes())
	f.Add(empty.encode().Bytes())
	f.Add([]byte(`{"path":"/x","size":100,"chunk_bytes":64,"refs":1,"chunks":["aa"]}`)) // count mismatch
	f.Add([]byte(`{"path":"/x","size":100,"chunk_b`))                                   // truncated
	f.Add([]byte(`{"path":"/x","size":-5,"chunk_bytes":64,"refs":1,"chunks":[]}`))      // negative size
	f.Add([]byte(``))
	f.Add([]byte(`[]`))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := decodeManifest(blob.FromBytes(data))
		if err != nil {
			return // rejected input: the only requirement is "no panic"
		}
		if got, want := len(m.Chunks), chunkCount(m.Size, m.ChunkBytes); got != want {
			t.Fatalf("accepted manifest with %d chunks, geometry wants %d (size %d, chunk %d)",
				got, want, m.Size, m.ChunkBytes)
		}
		// Accepted documents must round-trip: encode is how the store
		// persists what it just validated.
		back, err := decodeManifest(m.encode())
		if err != nil {
			t.Fatalf("re-decoding an accepted manifest failed: %v", err)
		}
		if back.Path != m.Path || back.Size != m.Size || back.ChunkBytes != m.ChunkBytes ||
			back.Parent != m.Parent || back.Refs != m.Refs || len(back.Chunks) != len(m.Chunks) {
			t.Fatalf("round trip changed the manifest: %+v -> %+v", m, back)
		}
		for i := range m.Chunks {
			if back.Chunks[i] != m.Chunks[i] {
				t.Fatalf("round trip changed chunk %d: %q -> %q", i, m.Chunks[i], back.Chunks[i])
			}
		}
	})
}
