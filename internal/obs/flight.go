package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// DefaultFlightSpans is the ring capacity New() gives each platform's
// flight recorder: enough to hold the spans of a full capture or a few
// migration rounds, small enough to leave always-on.
const DefaultFlightSpans = 512

// FlightRecorder keeps a bounded ring of the most recent spans plus a
// baseline counter snapshot, cheap enough to run on every platform all
// the time. When something goes wrong — a chaos fault fires, a daemon
// crashes, Capture/Restore/Migrate returns an error — Trigger freezes
// the ring into a FlightDump: a validated Chrome trace of the last N
// spans and the counter deltas since the previous incident (or since
// boot). The dump is what a post-mortem would want and what the chaos
// tier asserts on.
type FlightRecorder struct {
	mu      sync.Mutex
	ring    []Span // fixed capacity; write index wraps
	next    int
	full    bool
	dropped int64 // spans overwritten after the ring first filled
	reg     *Registry
	base    map[string]int64 // counter snapshot at boot / last trigger
	seq     int
	last    *FlightDump
	dumpDir string
}

// NewFlightRecorder returns a recorder holding up to capacity spans
// (DefaultFlightSpans if capacity <= 0), diffing counters against reg
// (which may be nil).
func NewFlightRecorder(capacity int, reg *Registry) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultFlightSpans
	}
	return &FlightRecorder{
		ring: make([]Span, capacity),
		reg:  reg,
		base: reg.counterSnapshot(),
	}
}

// SetDumpDir makes every Trigger also write its dump to dir as
// flight_<seq>.json (best-effort; failures are recorded on the dump).
// Empty dir disables file output.
func (f *FlightRecorder) SetDumpDir(dir string) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.dumpDir = dir
}

// Record appends one span to the ring, overwriting the oldest once
// full. It is installed as the tracer's onEmit callback, so it runs
// under the tracer lock: it takes only the recorder lock and never
// calls back into any tracer.
func (f *FlightRecorder) Record(s Span) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.full {
		f.dropped++
	}
	f.ring[f.next] = s
	f.next++
	if f.next == len(f.ring) {
		f.next = 0
		f.full = true
	}
}

// CounterDelta is one counter series that moved since the baseline.
type CounterDelta struct {
	Series string `json:"series"`
	Delta  int64  `json:"delta"`
}

// FlightDump is a frozen incident record: the ring contents rendered as
// a validated Chrome trace plus the counter movement around the
// incident. It round-trips through JSON (DecodeFlightDump) so
// `snapifyctl analyze flight` can read dumps written by SetDumpDir.
type FlightDump struct {
	Reason        string          `json:"reason"`
	Seq           int             `json:"seq"`
	SpanCount     int             `json:"span_count"`
	Dropped       int64           `json:"dropped"`
	Trace         json.RawMessage `json:"trace"`
	CounterDeltas []CounterDelta  `json:"counter_deltas,omitempty"`
	Path          string          `json:"path,omitempty"`
	WriteErr      string          `json:"write_err,omitempty"`
}

// Trigger freezes the ring into a FlightDump tagged with reason,
// resets the counter baseline, optionally writes the dump file, and
// returns it (also retrievable later via LastDump). Nil-safe.
func (f *FlightRecorder) Trigger(reason string) *FlightDump {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	spans := f.snapshotLocked()
	dropped := f.dropped
	f.seq++
	seq := f.seq
	now := f.reg.counterSnapshot()
	deltas := diffCounters(f.base, now)
	f.base = now
	dir := f.dumpDir
	f.mu.Unlock()

	// Re-emit the ring onto a fresh tracer so the dump is a
	// self-contained, schema-valid Chrome trace. A suffix subset of a
	// properly-nested lane is still properly nested, so validation
	// holds by construction; the scope ledger is preset to the highest
	// scope the ring references.
	tr := NewTracer()
	var maxScope uint64
	for _, s := range spans {
		if s.Scope > maxScope {
			maxScope = s.Scope
		}
	}
	tr.nextScope = maxScope
	for _, s := range spans {
		tr.Track(s.Process, s.Thread).Emit(s.Scope, s.Name, s.Start, s.Dur, s.Args)
	}
	d := &FlightDump{
		Reason:        reason,
		Seq:           seq,
		SpanCount:     len(spans),
		Dropped:       dropped,
		Trace:         json.RawMessage(tr.ChromeTrace()),
		CounterDeltas: deltas,
	}
	if dir != "" {
		path := filepath.Join(dir, fmt.Sprintf("flight_%03d.json", seq))
		if err := writeFileAtomic(path, d); err != nil {
			d.WriteErr = err.Error()
		} else {
			d.Path = path
		}
	}
	f.mu.Lock()
	f.last = d
	f.mu.Unlock()
	return d
}

// writeFileAtomic writes the dump via a temp file and rename, so a dump
// file either holds the complete JSON or does not exist — a trigger can
// fire on a teardown path racing process exit, and a truncated dump
// would defeat the post-mortem it exists for.
func writeFileAtomic(path string, d *FlightDump) error {
	b, err := d.JSON()
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// LastDump returns the most recent Trigger result (nil if none yet).
func (f *FlightRecorder) LastDump() *FlightDump {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.last
}

// snapshotLocked returns the ring contents oldest-first.
func (f *FlightRecorder) snapshotLocked() []Span {
	if !f.full {
		out := make([]Span, f.next)
		copy(out, f.ring[:f.next])
		return out
	}
	out := make([]Span, 0, len(f.ring))
	out = append(out, f.ring[f.next:]...)
	out = append(out, f.ring[:f.next]...)
	return out
}

// diffCounters returns the nonzero deltas between two counter
// snapshots, sorted by series name (series new since base count in
// full).
func diffCounters(base, now map[string]int64) []CounterDelta {
	keys := make([]string, 0, len(now))
	for k := range now {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []CounterDelta
	for _, k := range keys {
		if d := now[k] - base[k]; d != 0 {
			out = append(out, CounterDelta{Series: k, Delta: d})
		}
	}
	return out
}

// JSON renders the dump as indented JSON.
func (d *FlightDump) JSON() ([]byte, error) {
	return json.MarshalIndent(d, "", "  ")
}

// DecodeFlightDump parses a dump written by JSON()/SetDumpDir and
// re-validates the embedded trace.
func DecodeFlightDump(b []byte) (*FlightDump, error) {
	var d FlightDump
	if err := json.Unmarshal(b, &d); err != nil {
		return nil, fmt.Errorf("flight: %w", err)
	}
	if err := ValidateChromeTrace([]byte(d.Trace)); err != nil {
		return nil, fmt.Errorf("flight: embedded trace invalid: %w", err)
	}
	return &d, nil
}

// Summary renders a short human-readable account of the dump.
func (d *FlightDump) Summary() string {
	if d == nil {
		return "no flight dump recorded\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "flight dump #%d: %s\n", d.Seq, d.Reason)
	fmt.Fprintf(&b, "  spans in ring: %d (dropped before window: %d)\n", d.SpanCount, d.Dropped)
	if d.Path != "" {
		fmt.Fprintf(&b, "  written to: %s\n", d.Path)
	}
	if d.WriteErr != "" {
		fmt.Fprintf(&b, "  write error: %s\n", d.WriteErr)
	}
	if len(d.CounterDeltas) == 0 {
		b.WriteString("  no counter movement since baseline\n")
	} else {
		b.WriteString("  counter deltas since baseline:\n")
		for _, cd := range d.CounterDeltas {
			fmt.Fprintf(&b, "    %-60s %+d\n", cd.Series, cd.Delta)
		}
	}
	return b.String()
}
