package mpi

import (
	"fmt"
	"sync"

	"snapify/internal/coi"
	"snapify/internal/core"
	"snapify/internal/simclock"
)

// Coordinated checkpoint/restart for MPI offload applications (Section 5,
// "Command-line tools": an MPI runtime that supports BLCR checkpoints every
// rank through its registered callback, and Snapify's callback captures
// each rank's offload process — so distributed CR comes for free).

// AttachApp registers rank r's offload process for coordinated CR.
func (r *Rank) AttachApp(cp *coi.Process) *core.App {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.app != nil {
		panic("mpi: rank already has an attached app") //nolint:paniclib // caller bug: a rank attaches exactly one app by construction
	}
	r.app = core.NewApp(r.Plat, cp)
	return r.app
}

// App returns the rank's attached CR app.
func (r *Rank) App() *core.App {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.app
}

// CRReport is the timing of one coordinated checkpoint or restart.
type CRReport struct {
	// PerRank holds each rank's local time.
	PerRank []simclock.Duration
	// PerRankBytes holds each rank's snapshot size (host + device + local
	// store) — Fig 11c.
	PerRankBytes []int64
	// Total is the job-wide time: the slowest rank plus coordination.
	Total simclock.Duration
}

// RankDir returns rank i's snapshot directory under base.
func RankDir(base string, i int) string { return fmt.Sprintf("%s/rank%d", base, i) }

// Checkpoint takes a coordinated snapshot of every rank into
// base/rank<i>. All MPI channels must be drained (the caller quiesces the
// application, typically at an iteration barrier) — a non-empty channel is
// an error, because the snapshot would not be a consistent global state.
func (w *World) Checkpoint(base string) (*CRReport, error) {
	for _, r := range w.ranks {
		if n := r.PendingBytes(); n != 0 {
			return nil, fmt.Errorf("mpi: rank %d has %d undrained bytes; checkpoint would be inconsistent", r.ID, n)
		}
		if r.App() == nil {
			return nil, fmt.Errorf("mpi: rank %d has no attached app", r.ID)
		}
	}
	rep := &CRReport{
		PerRank:      make([]simclock.Duration, len(w.ranks)),
		PerRankBytes: make([]int64, len(w.ranks)),
	}
	errs := make([]error, len(w.ranks))
	var wg sync.WaitGroup
	for i, r := range w.ranks {
		wg.Add(1)
		go func(i int, r *Rank) {
			defer wg.Done()
			cr, err := r.App().Checkpoint(RankDir(base, i))
			if err != nil {
				errs[i] = fmt.Errorf("rank %d: %w", i, err)
				return
			}
			rep.PerRank[i] = cr.Total()
			rep.PerRankBytes[i] = cr.HostSnapshotBytes + cr.Offload.SnapshotBytes + cr.Offload.LocalStoreBytes
		}(i, r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	// The job resumes when the slowest rank finishes; the coordination
	// itself is two barrier rounds.
	rep.Total = simclock.MaxAll(rep.PerRank...) + 4*w.cluster.model.ClusterNetLatency
	return rep, nil
}

// Restart rebuilds a world of the given size from base/rank<i> snapshots.
// Each restored rank gets a fresh host process with its offload process
// restored by the Snapify callback; the per-rank CR apps are reattached.
func (c *Cluster) Restart(base string, size int) (*World, *CRReport, error) {
	w := &World{cluster: c}
	rep := &CRReport{
		PerRank:      make([]simclock.Duration, size),
		PerRankBytes: make([]int64, size),
	}
	w.ranks = make([]*Rank, size)
	errs := make([]error, size)
	var wg sync.WaitGroup
	for i := 0; i < size; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			plat := c.Nodes[i]
			app, host, rr, err := core.RestartApp(plat, RankDir(base, i))
			if err != nil {
				errs[i] = fmt.Errorf("rank %d: %w", i, err)
				return
			}
			r := &Rank{
				ID:    i,
				Plat:  plat,
				Host:  host,
				TL:    app.Proc().Timeline(),
				world: w,
				inbox: make(map[int][]message),
				app:   app,
			}
			r.cond = sync.NewCond(&r.mu)
			w.ranks[i] = r
			rep.PerRank[i] = rr.Total()
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	rep.Total = simclock.MaxAll(rep.PerRank...) + 4*c.model.ClusterNetLatency
	return w, rep, nil
}
