package lint

import (
	"strconv"
	"strings"
)

// faultgateAllowed are the import-path suffixes of the packages that may
// import internal/faultinject from non-test code. They are exactly the
// fabric choke points where faults are *implemented* (the simulated
// fabric, the SCIF transport, the Snapify-IO daemons, the COI control
// plane), the harnesses that *drive* fault plans (experiments, the
// snapbench CLI), and faultinject itself.
var faultgateAllowed = []string{
	"internal/faultinject",
	"internal/simnet",
	"internal/scif",
	"internal/snapifyio",
	"internal/coi",
	"internal/snapstore",
	"internal/experiments",
	"cmd/snapbench",
}

// Faultgate reports non-test imports of internal/faultinject outside the
// allowlist above. The failure model (DESIGN.md §10) keeps fault hooks at
// the fabric choke points only: blcr retries, the core API, and the
// platform recover from *failed operations*, never by asking the injector
// what went wrong — if they could peek at the plan, recovery code would
// quietly specialize to injected faults instead of real ones. Tests are
// exempt (the loader never reads _test.go files): they are where plans
// are armed.
var Faultgate = &Analyzer{
	Name: "faultgate",
	Doc:  "internal/faultinject is imported only by the fabric choke points (simnet, scif, snapifyio, coi), the fault-plan harnesses (experiments, cmd/snapbench), and tests",
	Run:  runFaultgate,
}

func runFaultgate(p *Pass) {
	if faultgatePathAllowed(p.Pkg.Path) {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if pathHasSuffix(path, "internal/faultinject") {
				p.Reportf(imp.Pos(), "package %s imports %s but is not a fault-injection choke point; recovery code must handle failures without consulting the injector (DESIGN.md §10)", p.Pkg.Path, path)
			}
		}
	}
}

func faultgatePathAllowed(pkgPath string) bool {
	for _, suffix := range faultgateAllowed {
		if pathHasSuffix(pkgPath, suffix) {
			return true
		}
	}
	return false
}

// pathHasSuffix reports whether path ends with the import-path suffix at
// a path-element boundary ("x/internal/scif" matches "internal/scif";
// "x/notinternal/scif" does not).
func pathHasSuffix(path, suffix string) bool {
	if path == suffix {
		return true
	}
	return strings.HasSuffix(path, "/"+suffix)
}
