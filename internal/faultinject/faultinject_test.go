package faultinject

import (
	"bytes"
	"testing"

	"snapify/internal/obs"
	"snapify/internal/simclock"
)

func TestFireNthAndCount(t *testing.T) {
	in := New(Plan{{Site: SiteSend, Key: "mic0->host", Kind: Drop, Nth: 3, Count: 2}}, nil)
	var fired []int
	for i := 1; i <= 6; i++ {
		if in.Fire(SiteSend, "mic0->host") != nil {
			fired = append(fired, i)
		}
	}
	if len(fired) != 2 || fired[0] != 3 || fired[1] != 4 {
		t.Fatalf("fired on calls %v, want [3 4]", fired)
	}
	if got := in.FiredTotal(); got != 2 {
		t.Errorf("FiredTotal = %d, want 2", got)
	}
}

func TestFireKeyMatching(t *testing.T) {
	in := New(Plan{
		{Site: SiteSend, Key: "mic0->host", Kind: Drop}, // exact key
		{Site: SiteChunk, Kind: Corrupt},                // empty key: any
	}, nil)
	if in.Fire(SiteSend, "host->mic0") != nil {
		t.Error("wrong key fired")
	}
	if in.Fire(SiteRDMA, "mic0->host") != nil {
		t.Error("wrong site fired")
	}
	if f := in.Fire(SiteSend, "mic0->host"); f == nil || f.Kind != Drop {
		t.Errorf("exact key did not fire: %+v", f)
	}
	if f := in.Fire(SiteChunk, "4194304"); f == nil || f.Kind != Corrupt {
		t.Errorf("empty key did not match any chunk key: %+v", f)
	}
}

// Each fault counts its own matched calls: traffic at other keys must
// not advance an unrelated fault's ordinal.
func TestFireOrdinalsArePerFault(t *testing.T) {
	in := New(Plan{
		{Site: SiteSend, Key: "a->b", Kind: Drop, Nth: 2},
		{Site: SiteSend, Key: "c->d", Kind: Drop, Nth: 2},
	}, nil)
	if in.Fire(SiteSend, "a->b") != nil {
		t.Fatal("a->b fired on its first call")
	}
	// Lots of unrelated traffic on c->d's first slot only.
	if in.Fire(SiteSend, "c->d") != nil {
		t.Fatal("c->d fired on its first call")
	}
	if in.Fire(SiteSend, "a->b") == nil {
		t.Fatal("a->b did not fire on its second call")
	}
	if in.Fire(SiteSend, "c->d") == nil {
		t.Fatal("c->d did not fire on its second call")
	}
}

func TestFireFirstMatchWins(t *testing.T) {
	in := New(Plan{
		{Site: SiteSend, Kind: Slow},
		{Site: SiteSend, Kind: Drop},
	}, nil)
	if f := in.Fire(SiteSend, "x->y"); f == nil || f.Kind != Slow {
		t.Fatalf("got %+v, want the first armed fault (slow)", f)
	}
	// The losing fault's trigger was not consumed: it fires next call.
	if f := in.Fire(SiteSend, "x->y"); f == nil || f.Kind != Drop {
		t.Fatalf("got %+v, want the still-armed drop", f)
	}
}

func TestFireAtVirtualTime(t *testing.T) {
	var now simclock.Duration
	in := New(Plan{{Site: SiteDaemon, Key: "host", Kind: Crash, At: 100}}, func() simclock.Duration { return now })
	now = 99
	if in.Fire(SiteDaemon, "host") != nil {
		t.Fatal("fired before its virtual trigger time")
	}
	now = 100
	if in.Fire(SiteDaemon, "host") == nil {
		t.Fatal("did not fire at its virtual trigger time")
	}
	if in.Fire(SiteDaemon, "host") != nil {
		t.Fatal("fired past its shot budget")
	}
}

func TestFireAtWithoutClockNeverFires(t *testing.T) {
	in := New(Plan{{Site: SiteDaemon, Key: "host", Kind: Crash, At: 1}}, nil)
	for i := 0; i < 5; i++ {
		if in.Fire(SiteDaemon, "host") != nil {
			t.Fatal("At-triggered fault fired with no clock")
		}
	}
}

func TestNilInjectorNeverFires(t *testing.T) {
	var in *Injector
	if in.Fire(SiteSend, "a->b") != nil {
		t.Fatal("nil injector fired")
	}
	if in.FiredTotal() != 0 || in.Pending() != nil {
		t.Fatal("nil injector has state")
	}
}

func TestParsePlanEncodeRoundTrip(t *testing.T) {
	p := Plan{
		{Site: SiteSend, Key: "mic0->host", Kind: Drop, Nth: 3},
		{Site: SiteChunk, Kind: PartialWrite, Count: 2},
		{Site: SiteDaemon, Key: "host", Kind: Crash, At: 5_000_000},
		{Site: SiteRDMA, Key: "host->mic0", Kind: Slow, Factor: 4},
	}
	enc, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParsePlan(enc)
	if err != nil {
		t.Fatal(err)
	}
	enc2, err := back.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, enc2) {
		t.Fatalf("round trip changed the plan:\n%s\nvs\n%s", enc, enc2)
	}
}

func TestParsePlanRejectsIncompleteFaults(t *testing.T) {
	if _, err := ParsePlan([]byte(`[{"key":"a->b"}]`)); err == nil {
		t.Fatal("plan without site/kind must be rejected")
	}
	if _, err := ParsePlan([]byte(`not json`)); err == nil {
		t.Fatal("malformed JSON must be rejected")
	}
}

func TestSeededPlanDeterministicAndBounded(t *testing.T) {
	menu := []SiteKey{{Site: SiteSend, Key: "mic0->host"}, {Site: SiteChunk}}
	a := SeededPlan(99, menu, 8, 5)
	b := SeededPlan(99, menu, 8, 5)
	if len(a) != 8 {
		t.Fatalf("plan has %d faults, want 8", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault %d differs across identical seeds: %+v vs %+v", i, a[i], b[i])
		}
		if a[i].Nth < 1 || a[i].Nth > 5 {
			t.Errorf("fault %d ordinal %d outside [1,5]", i, a[i].Nth)
		}
		found := false
		for _, sk := range menu {
			if a[i].Site == sk.Site && a[i].Key == sk.Key {
				found = true
			}
		}
		if !found {
			t.Errorf("fault %d targets %s/%q, not in the menu", i, a[i].Site, a[i].Key)
		}
	}
	if SeededPlan(99, nil, 8, 5) != nil || SeededPlan(99, menu, 0, 5) != nil {
		t.Error("degenerate menus must yield no plan")
	}
}

func TestPendingSortedAndShrinks(t *testing.T) {
	in := New(Plan{
		{Site: SiteSend, Key: "b", Kind: Drop},
		{Site: SiteChunk, Kind: Corrupt},
		{Site: SiteSend, Key: "a", Kind: Drop, Nth: 2},
	}, nil)
	p := in.Pending()
	if len(p) != 3 {
		t.Fatalf("pending %d, want 3", len(p))
	}
	if p[0].Key != "a" || p[1].Key != "b" || p[2].Site != SiteChunk {
		t.Fatalf("pending not sorted by (site,key,kind): %+v", p)
	}
	in.Fire(SiteSend, "b")
	if got := len(in.Pending()); got != 2 {
		t.Fatalf("pending after a shot: %d, want 2", got)
	}
}

func TestPublishMetricsCountsFires(t *testing.T) {
	reg := obs.NewRegistry()
	in := New(Plan{{Site: SiteSend, Kind: Drop, Count: 3}}, nil)
	in.PublishMetrics(reg)
	in.Fire(SiteSend, "a->b")
	in.Fire(SiteSend, "a->b")
	exp := reg.Expose()
	if !bytes.Contains([]byte(exp), []byte(`faultinject_fired_total{kind="drop",site="scif.send"} 2`)) &&
		!bytes.Contains([]byte(exp), []byte(`faultinject_fired_total{site="scif.send",kind="drop"} 2`)) {
		t.Fatalf("fired counter missing from exposition:\n%s", exp)
	}
}
