package snapifyio

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"

	"snapify/internal/blob"
	"snapify/internal/hostfs"
	"snapify/internal/phi"
	"snapify/internal/scif"
	"snapify/internal/simclock"
	"snapify/internal/simnet"
	"snapify/internal/stream"
	"snapify/internal/vfs"
)

// rig is a two-device server with daemons on every node.
type rig struct {
	server *phi.Server
	net    *scif.Network
	svc    *Service
}

func newRig(t *testing.T) *rig {
	t.Helper()
	server := phi.NewServer(phi.ServerConfig{Devices: 2})
	net := scif.NewNetwork(server.Fabric)
	svc := NewService(net, nil)
	if _, err := svc.StartDaemon(simnet.HostNode, vfs.Host(server.Host.FS)); err != nil {
		t.Fatal(err)
	}
	for _, d := range server.Devices {
		if _, err := svc.StartDaemon(d.Node, vfs.Ram(d.FS)); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(svc.Stop)
	return &rig{server: server, net: net, svc: svc}
}

// writeAll streams a blob through a write-mode file in chunks.
func writeAll(t *testing.T, f *File, content blob.Blob) simclock.Duration {
	t.Helper()
	acc := simclock.NewPipelineAccum()
	err := content.ForEachChunk(DefaultBufSize, func(chunk blob.Blob) error {
		cost, err := f.WriteBlob(chunk)
		if err != nil {
			return err
		}
		stream.Observe(acc, cost)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return acc.Total()
}

// readAll drains a read-mode file.
func readAll(t *testing.T, f *File) (blob.Blob, simclock.Duration) {
	t.Helper()
	acc := simclock.NewPipelineAccum()
	var parts []blob.Blob
	for {
		chunk, cost, err := f.Next(DefaultBufSize)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		stream.Observe(acc, cost)
		parts = append(parts, chunk)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return blob.Concat(parts...), acc.Total()
}

func TestWriteDeviceToHost(t *testing.T) {
	r := newRig(t)
	content := blob.Concat(
		blob.FromBytes([]byte("snapshot header")),
		blob.Synthetic(9, 20*simclock.MiB),
	)
	f, err := r.svc.Open(1, simnet.HostNode, "/snap/ctx", Write)
	if err != nil {
		t.Fatal(err)
	}
	d := writeAll(t, f, content)
	if d <= 0 {
		t.Error("write cost must be positive")
	}
	got, _, err := r.server.Host.FS.ReadFile("/snap/ctx")
	if err != nil {
		t.Fatal(err)
	}
	if !blob.Equal(got, content) {
		t.Error("host file content differs from what the device wrote")
	}
	// Synthetic background must not have materialized in the host file.
	if got.LiteralBytes() > 1*simclock.MiB {
		t.Errorf("host file holds %d literal bytes", got.LiteralBytes())
	}
}

func TestReadHostToDevice(t *testing.T) {
	r := newRig(t)
	content := blob.Concat(blob.FromBytes([]byte("ctx!")), blob.Synthetic(3, 9*simclock.MiB))
	r.server.Host.FS.WriteFile("/snap/ctx", content)
	f, err := r.svc.Open(1, simnet.HostNode, "/snap/ctx", Read)
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() != content.Len() {
		t.Errorf("Size = %d, want %d", f.Size(), content.Len())
	}
	got, d := readAll(t, f)
	if d <= 0 {
		t.Error("read cost must be positive")
	}
	if !blob.Equal(got, content) {
		t.Error("read content differs")
	}
}

func TestDeviceToDeviceCopy(t *testing.T) {
	// Migration copies the local store directly between coprocessors.
	r := newRig(t)
	content := blob.FromBytes([]byte("local store of the offload process"))
	if _, err := r.server.Device(1).FS.WriteFile("/tmp/store", content); err != nil {
		t.Fatal(err)
	}
	src, err := r.svc.Open(1, 1, "/tmp/store", Read) // local read via loopback
	if err != nil {
		t.Fatal(err)
	}
	dst, err := r.svc.Open(1, 2, "/tmp/store", Write) // push to mic1
	if err != nil {
		t.Fatal(err)
	}
	got, _ := readAll(t, src)
	writeAll(t, dst, got)
	stored, _, err := r.server.Device(2).FS.ReadFile("/tmp/store")
	if err != nil {
		t.Fatal(err)
	}
	if !blob.Equal(stored, content) {
		t.Error("device-to-device copy corrupted content")
	}
}

func TestWriteFasterThanReadForLargeFiles(t *testing.T) {
	// Section 7: device-to-host writes outrun host-to-device reads because
	// the host flushes asynchronously while reads are synchronous.
	r := newRig(t)
	content := blob.Synthetic(5, simclock.GiB)
	fw, err := r.svc.Open(1, simnet.HostNode, "/f", Write)
	if err != nil {
		t.Fatal(err)
	}
	wd := writeAll(t, fw, content)

	fr, err := r.svc.Open(1, simnet.HostNode, "/f", Read)
	if err != nil {
		t.Fatal(err)
	}
	_, rd := readAll(t, fr)
	if wd >= rd {
		t.Errorf("write (%v) should be faster than read (%v) for 1 GiB", wd, rd)
	}
}

func TestOpenErrors(t *testing.T) {
	r := newRig(t)
	if _, err := r.svc.Open(9, 0, "/f", Write); !errors.Is(err, ErrNoDaemon) {
		t.Errorf("open from daemon-less node: %v", err)
	}
	_, err := r.svc.Open(1, simnet.HostNode, "/missing", Read)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Errorf("open of missing remote file: %v", err)
	}
}

func TestWriteToFullDeviceFails(t *testing.T) {
	// Writing a snapshot into a nearly-full card's RAM fs must fail with a
	// remote error and leave no partial file.
	r := newRig(t)
	free := r.server.Device(1).Mem.Free()
	f, err := r.svc.Open(0, 1, "/tmp/too_big", Write)
	if err != nil {
		t.Fatal(err)
	}
	content := blob.Zeros(free + simclock.MiB)
	var failed bool
	err = content.ForEachChunk(DefaultBufSize, func(chunk blob.Blob) error {
		if _, err := f.WriteBlob(chunk); err != nil {
			failed = true
			return err
		}
		return nil
	})
	if !failed || err == nil {
		t.Fatal("write exceeding card memory must fail")
	}
	f.Abort()
	if r.server.Device(1).FS.Exists("/tmp/too_big") {
		t.Error("partial file left behind")
	}
}

func TestModeEnforcement(t *testing.T) {
	r := newRig(t)
	r.server.Host.FS.WriteFile("/f", blob.Zeros(10))
	fr, _ := r.svc.Open(1, 0, "/f", Read)
	if _, err := fr.WriteBlob(blob.Zeros(1)); err == nil {
		t.Error("write on read-mode file must fail")
	}
	fr.Close()
	fw, _ := r.svc.Open(1, 0, "/g", Write)
	if _, _, err := fw.Next(10); err == nil {
		t.Error("read on write-mode file must fail")
	}
	fw.Abort()
	if _, err := fw.WriteBlob(blob.Zeros(1)); !errors.Is(err, ErrFileClosed) {
		t.Errorf("write after abort: %v", err)
	}
}

func TestDuplicateDaemonRejected(t *testing.T) {
	r := newRig(t)
	if _, err := r.svc.StartDaemon(1, vfs.Ram(r.server.Device(1).FS)); err == nil {
		t.Fatal("duplicate daemon must be rejected")
	}
}

func TestFileVisibleOnlyAfterClose(t *testing.T) {
	r := newRig(t)
	f, _ := r.svc.Open(1, 0, "/staged", Write)
	f.WriteBlob(blob.Zeros(100))
	if r.server.Host.FS.Exists("/staged") {
		t.Error("file visible before Close")
	}
	f.Close()
	if !r.server.Host.FS.Exists("/staged") {
		t.Error("file missing after Close")
	}
}

func TestCostStagesShape(t *testing.T) {
	r := newRig(t)
	f, _ := r.svc.Open(1, 0, "/f", Write)
	cost, err := f.WriteBlob(blob.Zeros(DefaultBufSize))
	if err != nil {
		t.Fatal(err)
	}
	if len(cost.Stages) != 3 {
		t.Fatalf("want 3 pipeline stages, got %d", len(cost.Stages))
	}
	for i, s := range cost.Stages {
		if s <= 0 {
			t.Errorf("stage %d cost %v", i, s)
		}
	}
	if cost.Serial {
		t.Error("Snapify-IO stages must be pipelined")
	}
	f.Close()
}

func TestRDMATrafficOnFabric(t *testing.T) {
	r := newRig(t)
	before := r.server.Fabric.Traffic(1, 0)
	f, _ := r.svc.Open(1, 0, "/f", Write)
	writeAll(t, f, blob.Zeros(16*simclock.MiB))
	moved := r.server.Fabric.Traffic(1, 0) - before
	if moved < 16*simclock.MiB {
		t.Errorf("fabric moved %d bytes device->host, want >= %d", moved, 16*simclock.MiB)
	}
}

func TestConcurrentStreams(t *testing.T) {
	// Several processes stream through the daemons at once: one handler
	// per connection, no cross-talk.
	r := newRig(t)
	const streams = 6
	var wg sync.WaitGroup
	errs := make([]error, streams)
	for i := 0; i < streams; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			content := blob.Concat(
				blob.FromBytes([]byte{byte(i)}),
				blob.Synthetic(uint64(i+1), 2*simclock.MiB),
			)
			path := "/conc/" + string(rune('a'+i))
			f, err := r.svc.Open(simnet.NodeID(1+i%2), simnet.HostNode, path, Write)
			if err != nil {
				errs[i] = err
				return
			}
			if err := content.ForEachChunk(DefaultBufSize, func(c blob.Blob) error {
				_, err := f.WriteBlob(c)
				return err
			}); err != nil {
				errs[i] = err
				return
			}
			if err := f.Close(); err != nil {
				errs[i] = err
				return
			}
			got, _, err := r.server.Host.FS.ReadFile(path)
			if err != nil {
				errs[i] = err
				return
			}
			if !blob.Equal(got, content) {
				errs[i] = fmt.Errorf("stream %d corrupted", i)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("stream %d: %v", i, err)
		}
	}
}

func TestMismatchedStagingBufferRejected(t *testing.T) {
	server := phi.NewServer(phi.ServerConfig{Devices: 1})
	net := scif.NewNetwork(server.Fabric)
	svc := NewService(net, nil)
	if _, err := svc.StartDaemonBuf(simnet.HostNode, vfs.Host(server.Host.FS), 1*simclock.MiB); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.StartDaemonBuf(1, vfs.Ram(server.Device(1).FS), 2*simclock.MiB); err != nil {
		t.Fatal(err)
	}
	defer svc.Stop()
	if _, err := svc.Open(1, simnet.HostNode, "/f", Write); err == nil {
		t.Fatal("mismatched staging sizes must be rejected at open")
	}
	if _, err := svc.StartDaemonBuf(2, nil, 0); err == nil {
		t.Fatal("zero buffer size must be rejected")
	}
}

// TestDaemonCrashLeavesNoPartialFiles is the daemon-abort orphan
// regression (DESIGN.md §10): a daemon that dies mid-stripe must take
// its in-progress ".partial" assembly markers with it. Before the fix,
// the crash wiped the assembly table but the marker survived on the
// host file system, shadowing later captures to the same path.
func TestDaemonCrashLeavesNoPartialFiles(t *testing.T) {
	r := newRig(t)
	const total = 8 * int64(simclock.MiB)
	f, err := r.svc.OpenStream(1, simnet.HostNode, "/snap/crashed", Write, OpenOptions{
		Slots:  2,
		Stripe: Stripe{Offset: 0, Length: total, Total: total},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Move one chunk so the sparse assembly (and its marker) exists.
	if _, err := f.WriteBlob(blob.Synthetic(3, DefaultBufSize)); err != nil {
		t.Fatal(err)
	}
	if !r.server.Host.FS.Exists("/snap/crashed" + hostfs.PartialSuffix) {
		t.Fatal("no partial marker while the stripe is in progress")
	}
	if err := r.svc.CrashDaemon(simnet.HostNode); err != nil {
		t.Fatal(err)
	}
	// The stream is dead; its next operation fails.
	if _, err := f.WriteBlob(blob.Synthetic(4, DefaultBufSize)); err == nil {
		t.Error("write after daemon crash must fail")
	}
	f.Abort()
	for _, p := range r.server.Host.FS.List("") {
		if strings.HasSuffix(p, hostfs.PartialSuffix) {
			t.Errorf("orphan partial file after daemon crash: %s", p)
		}
	}
	if r.server.Host.FS.Exists("/snap/crashed") {
		t.Error("crashed assembly must not surface as a committed file")
	}
	// The restarted daemon accepts new streams on the same path, and a
	// clean write commits.
	f2, err := r.svc.OpenStream(1, simnet.HostNode, "/snap/crashed", Write, OpenOptions{
		Slots:  2,
		Stripe: Stripe{Offset: 0, Length: total, Total: total},
	})
	if err != nil {
		t.Fatalf("open after daemon restart: %v", err)
	}
	content := blob.Synthetic(5, total)
	if err := content.ForEachChunk(DefaultBufSize, func(chunk blob.Blob) error {
		_, werr := f2.WriteBlob(chunk)
		return werr
	}); err != nil {
		t.Fatal(err)
	}
	if err := f2.Close(); err != nil {
		t.Fatal(err)
	}
	got, _, err := r.server.Host.FS.ReadFile("/snap/crashed")
	if err != nil {
		t.Fatal(err)
	}
	if !blob.Equal(got, content) {
		t.Error("post-restart capture differs from what was written")
	}
}

// TestDiscardRemovesPendingAssembly covers the writer-gave-up path: a
// Discard control request drops the pending assembly and its marker.
func TestDiscardRemovesPendingAssembly(t *testing.T) {
	r := newRig(t)
	// The stripe is twice the chunk the writer manages to send: the
	// abandoned assembly is genuinely incomplete, so neither the detach
	// nor the discard may ever commit it.
	const total = 8 * int64(simclock.MiB)
	f, err := r.svc.OpenStream(1, simnet.HostNode, "/snap/given_up", Write, OpenOptions{
		Slots:  1,
		Stripe: Stripe{Offset: 0, Length: total, Total: total},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteBlob(blob.Synthetic(6, DefaultBufSize)); err != nil {
		t.Fatal(err)
	}
	f.Detach()
	if err := r.svc.Discard(1, simnet.HostNode, "/snap/given_up"); err != nil {
		t.Fatal(err)
	}
	if r.server.Host.FS.Exists("/snap/given_up"+hostfs.PartialSuffix) || r.server.Host.FS.Exists("/snap/given_up") {
		t.Error("discard left the assembly or its marker behind")
	}
}
