package fleetd

// Chaos coverage for the control plane, driven by seeded fault plans:
// a destination host dying mid-evacuation-wave, and a capture crashing
// mid-preemption. The chaosBackend wraps ModelBackend and consults a
// faultinject plan at the two riskiest backend operations; every run
// is a pure function of its seed, so a failure replays from nothing
// but the seed.

import (
	"fmt"
	"testing"

	"snapify/internal/faultinject"
	"snapify/internal/obs"
	"snapify/internal/simclock"
	"snapify/internal/snapstore"
)

// Chaos keys at the federation site: the controller's migrate and
// swap-out choke points.
const (
	chaosMigrateKey = "fleet-migrate"
	chaosSwapKey    = "fleet-swapout"
)

// chaosPlan derives a seeded crash plan over the given keys: n faults
// with trigger ordinals in [1, maxNth], kinds pinned to Crash (the
// meaningful kind at these choke points).
func chaosPlan(seed uint64, keys []string, n, maxNth int) faultinject.Plan {
	menu := make([]faultinject.SiteKey, len(keys))
	for i, k := range keys {
		menu[i] = faultinject.SiteKey{Site: faultinject.SiteFederation, Key: k}
	}
	plan := faultinject.SeededPlan(seed, menu, n, maxNth)
	for i := range plan {
		plan[i].Kind = faultinject.Crash
	}
	return plan
}

// chaosBackend wraps ModelBackend with fault injection: a fired
// migrate fault kills the destination host mid-transfer (the op fails
// with ErrHostDead, as the federation would report it), and a fired
// swap-out fault crashes the capture (clean failure, snapshot absent).
type chaosBackend struct {
	*ModelBackend
	inj *faultinject.Injector
}

func (b *chaosBackend) Migrate(j *Job, dstHost string, dstCard int) (simclock.Duration, error) {
	if f := b.inj.Fire(faultinject.SiteFederation, chaosMigrateKey); f != nil {
		return 0, fmt.Errorf("chaos: migrating job %d to %s: %w", j.ID, dstHost, snapstore.ErrHostDead)
	}
	return b.ModelBackend.Migrate(j, dstHost, dstCard)
}

func (b *chaosBackend) SwapOut(j *Job) (simclock.Duration, error) {
	if f := b.inj.Fire(faultinject.SiteFederation, chaosSwapKey); f != nil {
		return 0, fmt.Errorf("chaos: capture of job %d crashed", j.ID)
	}
	return b.ModelBackend.SwapOut(j)
}

var _ Backend = (*chaosBackend)(nil)

// runChaosEvacuation drains a fully packed host while a seeded plan
// kills migration destinations mid-wave, and returns the final stats.
func runChaosEvacuation(t *testing.T, seed uint64) Stats {
	t.Helper()
	be := &chaosBackend{
		ModelBackend: NewModelBackend(ModelOptions{
			Hosts: 4, CardsPerHost: 1, CardMem: 4 << 30, ReplicaK: 2,
		}),
		inj: faultinject.New(chaosPlan(seed, []string{chaosMigrateKey}, 2, 4), nil),
	}
	c := New(Options{EvacWave: 4}, be, obs.New())
	var specs []JobSpec
	for id := 1; id <= 8; id++ {
		specs = append(specs, JobSpec{
			ID: id, Tenant: "tenant-a",
			Footprint: 512 << 20, Bursts: 4,
			BurstLen: 50 * ms, ThinkLen: 2000 * ms,
		})
	}
	if err := c.SubmitTrace(specs); err != nil {
		t.Fatal(err)
	}
	c.ScheduleEvacuation(2*ms, "h000", 300000*ms)
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	return c.Stats()
}

// TestChaosFleetEvacuationHostKill packs eight jobs onto one host and
// drains it while the fault plan kills destination hosts mid-wave. The
// controller must absorb the losses — re-routing in-flight moves,
// requeueing jobs stranded on the dead destinations — and still land
// every job on a living host.
func TestChaosFleetEvacuationHostKill(t *testing.T) {
	st := runChaosEvacuation(t, 0xC0FFEE)
	if st.Completed != 8 {
		t.Fatalf("completed %d of 8 jobs: %+v", st.Completed, st)
	}
	if st.EvacFails == 0 {
		t.Fatalf("seeded plan fired no mid-wave host kill: %+v", st)
	}
	if st.EvacMoves == 0 {
		t.Fatalf("evacuation moved nothing: %+v", st)
	}
}

// TestChaosFleetEvacuationSeedReplay replays the evacuation chaos run:
// the same seed must reproduce the identical stats, and other seeds
// must still drive every job to completion.
func TestChaosFleetEvacuationSeedReplay(t *testing.T) {
	a := runChaosEvacuation(t, 0xC0FFEE)
	b := runChaosEvacuation(t, 0xC0FFEE)
	if a != b {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
	for seed := uint64(1); seed <= 3; seed++ {
		if st := runChaosEvacuation(t, seed); st.Completed != 8 {
			t.Errorf("seed %d: completed %d of 8: %+v", seed, st.Completed, st)
		}
	}
}

// runChaosPreemption races a high-priority arrival against a resident
// low-priority job while a seeded plan crashes swap-out captures, and
// returns the final stats.
func runChaosPreemption(t *testing.T, seed uint64) Stats {
	t.Helper()
	be := &chaosBackend{
		ModelBackend: NewModelBackend(ModelOptions{
			Hosts: 1, CardsPerHost: 1, CardMem: 1 << 30, ReplicaK: 1,
		}),
		inj: faultinject.New(chaosPlan(seed, []string{chaosSwapKey}, 1, 1), nil),
	}
	c := New(Options{}, be, obs.New())
	specs := []JobSpec{
		{ID: 1, Tenant: "tenant-a", Priority: 0, Arrival: 0,
			Footprint: 1 << 30, Bursts: 3, BurstLen: 10 * ms, ThinkLen: 100 * ms},
		{ID: 2, Tenant: "tenant-b", Priority: 2, Arrival: 200 * ms,
			Footprint: 1 << 30, Bursts: 2, BurstLen: 10 * ms, ThinkLen: 10 * ms},
	}
	if err := c.SubmitTrace(specs); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	return c.Stats()
}

// TestChaosFleetPreemptionCrash crashes the eviction capture the first
// time a high-priority arrival preempts the resident job. The aborted
// eviction must leave the victim unharmed and running; the next
// dispatch retries, succeeds, and both jobs finish.
func TestChaosFleetPreemptionCrash(t *testing.T) {
	st := runChaosPreemption(t, 0xBADBEEF)
	if st.Completed != 2 {
		t.Fatalf("completed %d of 2 jobs: %+v", st.Completed, st)
	}
	if st.PreemptAborts == 0 || st.SwapFails == 0 {
		t.Fatalf("seeded plan crashed no capture mid-preemption: %+v", st)
	}
	if st.Preemptions == 0 {
		t.Fatalf("retry after the aborted eviction never preempted: %+v", st)
	}
}

// TestChaosFleetHostKillMidPreemptionEviction kills the victim's host
// while its preemption-eviction swap-out is in flight. The dead host
// must release the pending preemptor's in-flight eviction count —
// otherwise the preemptor blocks the admission queue head-of-line
// forever and nothing ever places again.
func TestChaosFleetHostKillMidPreemptionEviction(t *testing.T) {
	be := NewModelBackend(ModelOptions{Hosts: 2, CardsPerHost: 1, CardMem: 1 << 30, ReplicaK: 2})
	c := New(Options{}, be, obs.New())
	// Jobs 1 and 2 fill the two cards and think long; job 3 arrives
	// mid-think at higher priority and must preempt one of them.
	if err := c.SubmitTrace([]JobSpec{
		{ID: 1, Tenant: "a", Priority: 0, Arrival: 0, Footprint: 1 << 30, Bursts: 3, BurstLen: 10 * ms, ThinkLen: 500 * ms},
		{ID: 2, Tenant: "a", Priority: 0, Arrival: 0, Footprint: 1 << 30, Bursts: 3, BurstLen: 10 * ms, ThinkLen: 500 * ms},
		{ID: 3, Tenant: "b", Priority: 2, Arrival: 250 * ms, Footprint: 1 << 30, Bursts: 2, BurstLen: 10 * ms, ThinkLen: 10 * ms},
	}); err != nil {
		t.Fatal(err)
	}
	var victim *Job
	if !stepUntil(t, c, func() bool {
		for _, j := range c.Jobs() {
			if j.curOp == opSwapOut && j.opPreempt {
				victim = j
				return true
			}
		}
		return false
	}) {
		t.Fatal("setup: no preemption eviction ever started")
	}
	preemptor := c.JobByID(victim.preemptFor)
	if preemptor == nil || preemptor.preemptEvicts == 0 {
		t.Fatalf("setup: victim %d has no pending preemptor", victim.ID)
	}
	// Kill in two phases (KillHost = markHostDead + dispatch) so the
	// accounting is observable before dispatch starts a fresh preemption
	// on the surviving host.
	if err := c.markHostDead(victim.Host); err != nil {
		t.Fatal(err)
	}
	if preemptor.preemptEvicts != 0 {
		t.Fatalf("host kill left preemptor %d with %d in-flight evictions — dispatch is wedged",
			preemptor.ID, preemptor.preemptEvicts)
	}
	if err := c.dispatch(); err != nil {
		t.Fatal(err)
	}
	if !stepUntil(t, c, func() bool { return c.events.Len() == 0 }) {
		t.Fatal("unreachable")
	}
	completedAll(t, c)
	st := c.Stats()
	if st.JobsLost == 0 {
		t.Fatalf("kill lost no jobs: %+v", st)
	}
	if st.Preemptions == 0 {
		t.Fatalf("the released preemptor never preempted on the surviving host: %+v", st)
	}
}

// TestChaosFleetDestKillMidSwappedRecover evacuates a host holding a
// swapped-out job and kills the move's destination while the recover
// is in flight. The job was a snapshot before the move, so it must
// come back as one — not as a thinking job bursting on residency it
// never held (which would corrupt the card's residency accounting).
func TestChaosFleetDestKillMidSwappedRecover(t *testing.T) {
	be := NewModelBackend(ModelOptions{Hosts: 3, CardsPerHost: 1, CardMem: 1 << 30, ReplicaK: 2})
	c := New(Options{OversubPct: 200}, be, obs.New())
	// Jobs 1+2 churn through the swap path on h000, so one of them is a
	// snapshot when the drain starts. Job 3 keeps h001 physically full
	// with long bursts, so after the destination dies there is nowhere
	// to re-route: the failed move must park the job on the source in
	// its true pre-move state instead of hiding the bug behind an
	// instant re-move.
	sec := 1000 * ms
	if err := c.SubmitTrace([]JobSpec{
		{ID: 1, Tenant: "a", Arrival: 0, Footprint: 1 << 30, Bursts: 6, BurstLen: 50 * ms, ThinkLen: 3 * sec},
		{ID: 2, Tenant: "a", Arrival: 0, Footprint: 1 << 30, Bursts: 6, BurstLen: 50 * ms, ThinkLen: 3 * sec},
		{ID: 3, Tenant: "b", Arrival: 0, Footprint: 1 << 30, Bursts: 4, BurstLen: 3 * sec, ThinkLen: 10 * ms},
	}); err != nil {
		t.Fatal(err)
	}
	if !stepUntil(t, c, func() bool {
		for _, j := range c.Jobs() {
			if j.Host == "h000" && j.State == StateSwappedOut && j.curOp == opNone {
				return true
			}
		}
		return false
	}) {
		t.Fatal("setup: no job ever sat swapped out on h000")
	}
	c.ScheduleEvacuation(c.now+1*ms, "h000", 600*sec)
	// Wait for a swapped-out job's recover move to be in flight: it is
	// migrating but holds no residency on the source card.
	var moving *Job
	if !stepUntil(t, c, func() bool {
		for _, j := range c.Jobs() {
			if j.curOp != opMigrate || j.opDstHost == "" || j.Host != "h000" {
				continue
			}
			src, err := c.hostByName(j.Host)
			if err != nil {
				continue
			}
			if _, resident := src.cards[j.Card].residents[j.ID]; !resident {
				moving = j
				return true
			}
		}
		return false
	}) {
		t.Fatal("setup: the drain never moved a swapped-out job")
	}
	if err := c.KillHost(moving.opDstHost); err != nil {
		t.Fatal(err)
	}
	// stepUntil's per-step invariant check is the teeth here: the job
	// must never show up running or thinking without residency, and no
	// card's residency may go negative or past capacity.
	if !stepUntil(t, c, func() bool { return c.events.Len() == 0 }) {
		t.Fatal("unreachable")
	}
	completedAll(t, c)
	st := c.Stats()
	if st.EvacFails == 0 {
		t.Fatalf("destination kill produced no failed evacuation move: %+v", st)
	}
}

// TestChaosFleetPreemptionSeedReplay pins determinism of the
// preemption chaos run.
func TestChaosFleetPreemptionSeedReplay(t *testing.T) {
	a := runChaosPreemption(t, 0xBADBEEF)
	b := runChaosPreemption(t, 0xBADBEEF)
	if a != b {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
}
