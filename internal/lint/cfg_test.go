package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseBody parses a statement list as a function body. CFG construction
// is purely syntactic, so no type-checking is needed here.
func parseBody(t *testing.T, stmts string) *ast.BlockStmt {
	t.Helper()
	src := "package p\nfunc fn() { " + stmts + " }"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "cfg_test_input.go", src, 0)
	if err != nil {
		t.Fatalf("parsing %q: %v", stmts, err)
	}
	return file.Decls[0].(*ast.FuncDecl).Body
}

// TestCFGShape pins the block/edge structure the builder produces for
// each control construct. The String form is "index[kind]->succs"; Entry
// is always block 0 and Exit always last.
func TestCFGShape(t *testing.T) {
	cases := []struct {
		name, body, want string
	}{
		{"straightline", `a(); b()`,
			"0[entry]->1 1[exit]->"},
		{"if with else: both branches get an Assume block and rejoin", `if c { a() } else { b() }; d()`,
			"0[entry]->2,3 1[if.join]->4 2[if.then]->1 3[if.else]->1 4[exit]->"},
		{"if without else: a synthetic else block still carries the negative Assume", `if c { a() }; d()`,
			"0[entry]->2,3 1[if.join]->4 2[if.then]->1 3[if.else]->1 4[exit]->"},
		{"for with break: back edge through post, break edge to join", `for i := 0; i < n; i++ { if c { break }; a() }; d()`,
			"0[entry]->1 1[for.head]->2,3 2[for.body]->6,7 3[for.join]->8 4[for.post]->1 5[if.join]->4 6[if.then]->3 7[if.else]->5 8[exit]->"},
		{"range: head branches to body and join, body loops back", `for k := range m { a(k) }; d()`,
			"0[entry]->1 1[range.head]->2,3 2[range.body]->1 3[range.join]->4 4[exit]->"},
		{"switch with fallthrough: case 1 falls into case 2", `switch x { case 1: a(); fallthrough; case 2: b(); default: c() }; d()`,
			"0[entry]->2,3,4 1[switch.join]->5 2[case]->3 3[case]->1 4[case]->1 5[exit]->"},
		{"select: every comm clause is a successor of the entry", `select { case <-ch: a(); case ch2 <- 1: b() }; d()`,
			"0[entry]->2,3,1 1[switch.join]->4 2[comm]->1 3[comm]->1 4[exit]->"},
		{"panic: jumps to exit, trailing statements are an unreachable block", `a(); panic("x"); b()`,
			"0[entry]->2 1[unreachable]->2 2[exit]->"},
		{"return inside if: then-block exits directly, else path continues", `f, err := open(); if err != nil { return }; defer f.Close(); use(f)`,
			"0[entry]->2,3 1[if.join]->4 2[if.then]->4 3[if.else]->1 4[exit]->"},
		{"goto: conservative edge to exit", `i := 0; L: if i < n { i++; goto L }; d()`,
			"0[entry]->2,3 1[if.join]->4 2[if.then]->4 3[if.else]->1 4[exit]->"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := BuildCFG(parseBody(t, tc.body))
			if got := cfg.String(); got != tc.want {
				t.Errorf("CFG for %q:\n got %s\nwant %s", tc.body, got, tc.want)
			}
		})
	}
}

// TestCFGAssumeNodes pins the synthetic guard refinement: the then block
// starts with Assume{Cond, true}, the (possibly synthetic) else block
// with Assume{Cond, false}, both sharing the if condition.
func TestCFGAssumeNodes(t *testing.T) {
	body := parseBody(t, `if err != nil { a() } else { b() }`)
	cfg := BuildCFG(body)
	cond := body.List[0].(*ast.IfStmt).Cond
	var thenA, elseA *Assume
	for _, b := range cfg.Blocks {
		if len(b.Nodes) == 0 {
			continue
		}
		if a, ok := b.Nodes[0].(*Assume); ok {
			switch b.Kind {
			case "if.then":
				thenA = a
			case "if.else":
				elseA = a
			}
		}
	}
	if thenA == nil || elseA == nil {
		t.Fatalf("missing Assume nodes: then=%v else=%v (cfg %s)", thenA, elseA, cfg.String())
	}
	if !thenA.Truth || elseA.Truth {
		t.Errorf("Assume truths: then=%v else=%v, want true/false", thenA.Truth, elseA.Truth)
	}
	if thenA.Cond != cond || elseA.Cond != cond {
		t.Error("Assume nodes do not share the if condition expression")
	}
	if thenA.Pos() != cond.Pos() || thenA.End() != cond.End() {
		t.Error("Assume does not delegate Pos/End to its condition")
	}
}

// TestAssumeNilness tables the guard classifier used by the leak engine's
// error-paired facts.
func TestAssumeNilness(t *testing.T) {
	cases := []struct {
		expr       string
		truth      bool
		wantID     string
		wantNonNil bool
		wantOK     bool
	}{
		{"err != nil", true, "err", true, true},
		{"err != nil", false, "err", false, true},
		{"err == nil", true, "err", false, true},
		{"err == nil", false, "err", true, true},
		{"nil != err", true, "err", true, true},
		{"nil == err", true, "err", false, true},
		{"a == b", true, "", false, false},
		{"err", true, "", false, false},
		{"x < 3", true, "", false, false},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("%s/%v", tc.expr, tc.truth), func(t *testing.T) {
			e, err := parser.ParseExpr(tc.expr)
			if err != nil {
				t.Fatal(err)
			}
			a := &Assume{Cond: e, Truth: tc.truth}
			id, nonNil, ok := a.AssumeNilness()
			if ok != tc.wantOK {
				t.Fatalf("ok = %v, want %v", ok, tc.wantOK)
			}
			if !ok {
				return
			}
			if id.Name != tc.wantID || nonNil != tc.wantNonNil {
				t.Errorf("got (%s, nonNil=%v), want (%s, nonNil=%v)", id.Name, nonNil, tc.wantID, tc.wantNonNil)
			}
		})
	}
}

// nodeGen is a transfer function that records every node it visits as a
// fact — monotone, so fixpoints must terminate.
func nodeGen(n ast.Node, in Facts) Facts {
	in[n] = true
	return in
}

// TestSolveForwardLoopFacts: a fact generated in a loop body flows around
// the back edge and out of the loop.
func TestSolveForwardLoopFacts(t *testing.T) {
	body := parseBody(t, `for k := range m { a(k) }; d()`)
	cfg := BuildCFG(body)
	in := SolveForward(cfg, Facts{}, nodeGen)

	var bodyCall ast.Node
	for _, b := range cfg.Blocks {
		if b.Kind == "range.body" {
			bodyCall = b.Nodes[0]
		}
	}
	if bodyCall == nil {
		t.Fatal("no range.body block")
	}
	for _, b := range cfg.Blocks {
		if b.Kind == "range.join" && !in[b][bodyCall] {
			t.Error("loop-body fact did not flow to the join block")
		}
		if b.Kind == "range.head" && !in[b][bodyCall] {
			t.Error("loop-body fact did not flow around the back edge")
		}
	}
}

// TestSolveForwardKillRegen: facts killed on one branch survive through
// the union join — the may-analysis contract.
func TestSolveForwardKillRegen(t *testing.T) {
	body := parseBody(t, `gen(); if c { kill() }; after()`)
	cfg := BuildCFG(body)
	var genStmt, killStmt ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if es, ok := n.(*ast.ExprStmt); ok {
			call := es.X.(*ast.CallExpr)
			switch call.Fun.(*ast.Ident).Name {
			case "gen":
				genStmt = es
			case "kill":
				killStmt = es
			}
		}
		return true
	})
	transfer := func(n ast.Node, in Facts) Facts {
		switch n {
		case genStmt:
			in["fact"] = true
		case killStmt:
			delete(in, "fact")
		}
		return in
	}
	in := SolveForward(cfg, Facts{}, transfer)
	for _, b := range cfg.Blocks {
		if b.Kind == "if.join" && !in[b]["fact"] {
			t.Error("fact killed on one branch must survive the union join (may-analysis)")
		}
		if b.Kind == "if.then" && !in[b]["fact"] {
			t.Error("fact must be live entering the branch that kills it")
		}
	}
}

// TestFactsAtReplay: FactsAt returns the dataflow state immediately
// before the queried node, replaying earlier same-block transfers.
func TestFactsAtReplay(t *testing.T) {
	body := parseBody(t, `a(); b(); c()`)
	cfg := BuildCFG(body)
	entry := cfg.Blocks[0]
	if len(entry.Nodes) != 3 {
		t.Fatalf("entry block has %d nodes, want 3", len(entry.Nodes))
	}
	in := SolveForward(cfg, Facts{}, nodeGen)
	facts := FactsAt(cfg, in, entry.Nodes[1], nodeGen)
	if !facts[entry.Nodes[0]] {
		t.Error("fact from the preceding node is missing")
	}
	if facts[entry.Nodes[1]] || facts[entry.Nodes[2]] {
		t.Error("FactsAt must not include the queried node or later ones")
	}
}

// TestSolveForwardPathologicalNesting: the fixpoint must terminate on
// deeply nested control flow well inside maxFixpointRounds. 60 levels of
// alternating loops and branches is far past anything in the tree.
func TestSolveForwardPathologicalNesting(t *testing.T) {
	var b strings.Builder
	const depth = 60
	for i := 0; i < depth; i++ {
		if i%2 == 0 {
			fmt.Fprintf(&b, "for i%d := 0; i%d < n; i%d++ { g%d(); ", i, i, i, i)
		} else {
			fmt.Fprintf(&b, "if c%d { g%d() } else { ", i, i)
		}
	}
	b.WriteString("core()")
	for i := depth - 1; i >= 0; i-- {
		b.WriteString(" }")
	}
	body := parseBody(t, b.String())
	cfg := BuildCFG(body)

	var coreStmt ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if es, ok := n.(*ast.ExprStmt); ok {
			if call, ok := es.X.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "core" {
					coreStmt = es
				}
			}
		}
		return true
	})
	if coreStmt == nil {
		t.Fatal("generated body lacks the innermost call")
	}
	in := SolveForward(cfg, Facts{}, nodeGen) // panics on non-convergence
	if facts := FactsAt(cfg, in, coreStmt, nodeGen); len(facts) == 0 {
		t.Error("no facts reached the innermost statement")
	}
	if !in[cfg.Exit].equal(in[cfg.Exit]) {
		t.Error("Facts.equal is not reflexive") // also exercises the helper
	}
}
