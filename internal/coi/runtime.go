package coi

import (
	"fmt"
	"sync"

	"snapify/internal/platform"
	"snapify/internal/simnet"
)

// The daemon registry maps a platform to its per-card COI daemons, the way
// a real server has one coi_daemon per installed coprocessor.
var (
	daemonsMu sync.Mutex
	daemons   = make(map[*platform.Platform]map[simnet.NodeID]*Daemon)
)

// StartDaemons launches a COI daemon on every card of the platform.
func StartDaemons(plat *platform.Platform) error {
	daemonsMu.Lock()
	defer daemonsMu.Unlock()
	if _, dup := daemons[plat]; dup {
		return fmt.Errorf("coi: daemons already started for this platform")
	}
	m := make(map[simnet.NodeID]*Daemon)
	for _, dev := range plat.Server.Devices {
		d, err := StartDaemon(plat, dev)
		if err != nil {
			for _, started := range m {
				started.Stop()
			}
			return err
		}
		m[dev.Node] = d
	}
	daemons[plat] = m
	return nil
}

// DaemonAt returns the daemon on node, or nil.
func DaemonAt(plat *platform.Platform, node simnet.NodeID) *Daemon {
	daemonsMu.Lock()
	defer daemonsMu.Unlock()
	return daemons[plat][node]
}

// StopDaemons stops every daemon of the platform and forgets them.
func StopDaemons(plat *platform.Platform) {
	daemonsMu.Lock()
	m := daemons[plat]
	delete(daemons, plat)
	daemonsMu.Unlock()
	for _, d := range m {
		d.Stop()
	}
}
