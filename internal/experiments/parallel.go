package experiments

import (
	"encoding/json"
	"fmt"

	"snapify/internal/coi"
	"snapify/internal/core"
	"snapify/internal/obs"
	"snapify/internal/phi"
	"snapify/internal/platform"
	"snapify/internal/simclock"
	"snapify/internal/trace"
	"snapify/internal/workloads"
)

// ParallelCaptureStreams is the stream-count sweep of the parallel
// capture benchmark. The first entry must be 1: it is the serial baseline
// every other row's speedup is computed against.
var ParallelCaptureStreams = []int{1, 2, 4, 8}

// ParallelCaptureImageBytes is the default device image size: an 8
// GiB-class snapshot, the full memory of a 5110P-class card and the
// worst case of Fig 10's size sweep.
const ParallelCaptureImageBytes = 8 * simclock.GiB

// ParallelCaptureRow is one stream count's measurements.
type ParallelCaptureRow struct {
	Streams int `json:"streams"`
	// CaptureSeconds is the device capture's virtual wall-clock: the
	// slowest stream when Streams > 1.
	CaptureSeconds float64 `json:"capture_seconds"`
	// Speedup is the serial capture time divided by this row's.
	Speedup float64 `json:"speedup"`
	// ThroughputMiBs is ImageBytes / CaptureSeconds.
	ThroughputMiBs float64 `json:"throughput_mib_s"`
	// StreamSeconds is each worker's virtual time (absent when serial).
	StreamSeconds []float64 `json:"stream_seconds,omitempty"`
	// CaptureNs is the capture duration in exact virtual nanoseconds —
	// the same integer the capture_stream spans of the exported trace
	// carry, so trace and benchmark JSON can be diffed without rounding.
	CaptureNs int64 `json:"capture_ns"`
	// StreamNs is each worker's exact virtual nanoseconds (absent when
	// serial).
	StreamNs []int64 `json:"stream_ns,omitempty"`
	// SnapshotBytes is the context file size; identical across rows by
	// the golden-parity guarantee.
	SnapshotBytes int64 `json:"snapshot_bytes"`
	// WallNs is the real wall-clock time the simulator harness spent
	// producing this row — machine-dependent, excluded from the
	// regression gate, reported so fleet-scale planning knows how fast
	// the harness itself runs.
	WallNs int64 `json:"wall_ns"`
}

// ParallelCaptureResult is the full sweep.
type ParallelCaptureResult struct {
	Benchmark  string               `json:"benchmark"`
	ImageBytes int64                `json:"image_bytes"`
	Rows       []ParallelCaptureRow `json:"rows"`
	// WallTotalNs / WallNsPerGiB are the harness's own wall-clock cost:
	// total real nanoseconds for the sweep, and that normalized per GiB
	// of simulated image captured.
	WallTotalNs  int64 `json:"wall_total_ns"`
	WallNsPerGiB int64 `json:"wall_ns_per_gib"`

	tracer *obs.Tracer // the sweep platform's tracer, for TraceJSON
}

// TraceJSON exports the whole sweep's virtual-clock trace as Chrome
// trace-event JSON (load it at ui.perfetto.dev): the host application,
// the card's COI daemon, the offload process's agent, and one lane per
// Snapify-IO shard worker, all on the shared virtual timeline.
func (r *ParallelCaptureResult) TraceJSON() []byte {
	return r.tracer.ChromeTrace()
}

// ParallelCapture captures one offload process with an imageBytes-sized
// device heap once per entry of streams, through the full Snapify stack
// (pause protocol, BLCR, Snapify-IO, the SCIF fabric). Serial capture is
// bottlenecked by the card's page-table walk (Section 5's "memory
// snapshot" stage); striping the image across streams walks shards
// concurrently, so capture time approaches the shared PCIe link limit.
func ParallelCapture(imageBytes int64, streams []int) (*ParallelCaptureResult, error) {
	if len(streams) == 0 || streams[0] != 1 {
		return nil, fmt.Errorf("parallel capture: sweep must start with the serial baseline, got %v", streams)
	}
	plat, err := platform.New(platform.Config{Server: phi.ServerConfig{
		Devices: 1,
		Device:  phi.DeviceConfig{MemBytes: imageBytes + 2*simclock.GiB},
	}})
	if err != nil {
		return nil, err
	}
	if err := coi.StartDaemons(plat); err != nil {
		return nil, err
	}
	defer coi.StopDaemons(plat)
	defer plat.IO.Stop()

	spec := workloads.Spec{
		Code: "PC", Name: "parallel capture sweep",
		HostMem:      16 * simclock.MiB,
		DeviceMem:    imageBytes,
		LocalStore:   4 * simclock.MiB,
		Calls:        4,
		StepsPerCall: 2,
	}
	in, err := workloads.Launch(plat, spec, 1)
	if err != nil {
		return nil, err
	}
	defer in.Close()
	if _, err := in.RunCalls(1); err != nil {
		return nil, err
	}

	res := &ParallelCaptureResult{
		Benchmark: "parallel-capture", ImageBytes: imageBytes,
		tracer: plat.Obs.TracerOf(),
	}
	sweepWall := simclock.StartWall()
	for _, n := range streams {
		rowWall := simclock.StartWall()
		s := core.NewSnapshot(fmt.Sprintf("/bench/parallel/%d", n), in.CP)
		if err := s.Pause(); err != nil {
			return nil, fmt.Errorf("streams=%d pause: %w", n, err)
		}
		if err := s.Capture(core.CaptureOptions{Streams: n}); err != nil {
			return nil, fmt.Errorf("streams=%d capture: %w", n, err)
		}
		if err := s.Wait(); err != nil {
			return nil, fmt.Errorf("streams=%d wait: %w", n, err)
		}
		if err := s.Resume(); err != nil {
			return nil, fmt.Errorf("streams=%d resume: %w", n, err)
		}
		row := ParallelCaptureRow{
			Streams:        n,
			CaptureSeconds: s.Report.Capture.Seconds(),
			CaptureNs:      int64(s.Report.Capture),
			SnapshotBytes:  s.Report.SnapshotBytes,
			WallNs:         rowWall.ElapsedNs(),
		}
		for _, d := range s.Report.CaptureStreamDurations {
			row.StreamSeconds = append(row.StreamSeconds, d.Seconds())
			row.StreamNs = append(row.StreamNs, int64(d))
		}
		if row.CaptureSeconds > 0 {
			row.Speedup = res.serialSeconds(row.CaptureSeconds)
			row.ThroughputMiBs = float64(imageBytes) / float64(simclock.MiB) / row.CaptureSeconds
		}
		res.Rows = append(res.Rows, row)
	}
	res.WallTotalNs = sweepWall.ElapsedNs()
	res.WallNsPerGiB = simclock.WallNsPerGiB(res.WallTotalNs, imageBytes*int64(len(streams)))
	return res, nil
}

// serialSeconds returns the speedup of a capture taking sec seconds over
// the serial baseline (row 0; 1.0 while computing the baseline itself).
func (r *ParallelCaptureResult) serialSeconds(sec float64) float64 {
	if len(r.Rows) == 0 {
		return 1.0
	}
	return r.Rows[0].CaptureSeconds / sec
}

// Render prints the sweep in the tables' layout.
func (r *ParallelCaptureResult) Render() string {
	t := trace.New(fmt.Sprintf("Parallel capture: %s device image, N Snapify-IO streams", sizeLabel(r.ImageBytes)),
		"Streams", "Capture (s)", "Speedup", "MiB/s")
	for _, row := range r.Rows {
		t.Row(fmt.Sprintf("%d", row.Streams),
			fmt.Sprintf("%.2f", row.CaptureSeconds),
			fmt.Sprintf("%.2fx", row.Speedup),
			fmt.Sprintf("%.0f", row.ThroughputMiBs))
	}
	return t.String() + fmt.Sprintf("harness wall-clock: %.1f ms total, %d ns per simulated GiB\n",
		float64(r.WallTotalNs)/1e6, r.WallNsPerGiB)
}

// CheckShape verifies the acceptance claims: 4 streams beat serial by at
// least 2x, speedups are monotone up to 4 streams, and every row captured
// the same number of bytes (striping never changes the image).
func (r *ParallelCaptureResult) CheckShape() error {
	if len(r.Rows) == 0 {
		return fmt.Errorf("parallel capture: no rows")
	}
	for _, row := range r.Rows {
		if row.SnapshotBytes != r.Rows[0].SnapshotBytes {
			return fmt.Errorf("parallel capture: %d streams captured %d bytes, serial captured %d",
				row.Streams, row.SnapshotBytes, r.Rows[0].SnapshotBytes)
		}
		if row.Streams > 1 && len(row.StreamSeconds) != row.Streams {
			return fmt.Errorf("parallel capture: %d streams reported %d worker durations",
				row.Streams, len(row.StreamSeconds))
		}
	}
	prev := 0.0
	for _, row := range r.Rows {
		if row.Streams > 4 {
			break
		}
		if row.Speedup < prev {
			return fmt.Errorf("parallel capture: speedup fell from %.2fx to %.2fx at %d streams",
				prev, row.Speedup, row.Streams)
		}
		prev = row.Speedup
		if row.Streams == 4 && row.Speedup < 2.0 {
			return fmt.Errorf("parallel capture: 4 streams only %.2fx over serial, want >= 2x", row.Speedup)
		}
	}
	return nil
}

// JSON renders the sweep as the BENCH_capture.json document.
func (r *ParallelCaptureResult) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
