package analyze

import (
	"testing"
)

// FuzzParseChromeTrace throws arbitrary bytes at the trace parser. The
// parser is the analyze layer's input surface for artifacts produced
// outside the process (CI trace files, user-supplied exports), so it
// must reject malformed documents with an error — never panic — and
// every span it does return must carry what ValidateChromeTrace
// guarantees: a name, and a non-negative start.
func FuzzParseChromeTrace(f *testing.F) {
	f.Add([]byte(`{"traceEvents":[` +
		`{"name":"process_name","ph":"M","pid":1,"args":{"name":"host"}},` +
		`{"name":"thread_name","ph":"M","pid":1,"tid":2,"args":{"name":"stream0"}},` +
		`{"name":"capture","ph":"X","ts":1.5,"dur":2,"pid":1,"tid":2,"args":{"dur_ns":2000,"bytes":4096}}` +
		`]}`))
	f.Add([]byte(`{"traceEvents":[` +
		`{"name":"scope_count","ph":"M","pid":1,"args":{"count":1}},` +
		`{"name":"process_name","ph":"M","pid":1,"args":{"name":"host"}},` +
		`{"name":"thread_name","ph":"M","pid":1,"tid":1,"args":{"name":"lane"}},` +
		`{"name":"outer","ph":"X","ts":0,"dur":5,"pid":1,"tid":1,"args":{"dur_ns":5000,"scope":1}},` +
		`{"name":"inner","ph":"X","ts":1,"dur":2,"pid":1,"tid":1,"args":{"dur_ns":2000,"scope":1}}` +
		`]}`))
	f.Add([]byte(`{"traceEvents":[]}`))
	f.Add([]byte(`{"traceEvents":[{"name":"x","ph":"X","ts":-1,"dur":1,"pid":1,"tid":1,"args":{"dur_ns":1000}}]}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		spans, err := ParseChromeTrace(data)
		if err != nil {
			return // rejected input: the only requirement is "no panic"
		}
		for i, s := range spans {
			if s.Name == "" {
				t.Fatalf("span %d accepted without a name", i)
			}
			if s.Start < 0 {
				t.Fatalf("span %d (%s) accepted with negative start %d", i, s.Name, s.Start)
			}
		}
	})
}
