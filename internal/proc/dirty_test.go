package proc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRangeSetCoalescing(t *testing.T) {
	var s rangeSet
	s.add(10, 5) // [10,15)
	s.add(20, 5) // [10,15) [20,25)
	s.add(15, 5) // adjacent: [10,25)
	if got := s.ranges(); len(got) != 1 || got[0] != (ByteRange{10, 15}) {
		t.Fatalf("ranges = %v", got)
	}
	s.add(5, 2) // [5,7) [10,25)
	s.add(0, 1) // [0,1) [5,7) [10,25)
	if got := s.ranges(); len(got) != 3 {
		t.Fatalf("ranges = %v", got)
	}
	s.add(0, 30) // swallow everything
	if got := s.ranges(); len(got) != 1 || got[0] != (ByteRange{0, 30}) {
		t.Fatalf("ranges = %v", got)
	}
	if s.bytes() != 30 {
		t.Fatalf("bytes = %d", s.bytes())
	}
	s.reset()
	if len(s.ranges()) != 0 || s.bytes() != 0 {
		t.Fatal("reset did not clear")
	}
	s.add(3, 0) // no-op
	if len(s.ranges()) != 0 {
		t.Fatal("zero-length add changed the set")
	}
}

// TestRangeSetQuickAgainstBitmap compares the range set against a boolean
// bitmap reference under random inserts.
func TestRangeSetQuickAgainstBitmap(t *testing.T) {
	const size = 2048
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var s rangeSet
		ref := make([]bool, size)
		for op := 0; op < 40; op++ {
			off := r.Int63n(size)
			n := r.Int63n(size - off)
			s.add(off, n)
			for i := off; i < off+n; i++ {
				ref[i] = true
			}
		}
		// Same total coverage.
		var want int64
		for _, b := range ref {
			if b {
				want++
			}
		}
		if s.bytes() != want {
			return false
		}
		// Ranges are sorted, disjoint, non-adjacent, and cover exactly ref.
		got := make([]bool, size)
		prevEnd := int64(-1)
		for _, rg := range s.ranges() {
			if rg.Off <= prevEnd {
				return false // overlapping or adjacent (should have merged)
			}
			prevEnd = rg.End()
			for i := rg.Off; i < rg.End(); i++ {
				got[i] = true
			}
		}
		for i := range ref {
			if ref[i] != got[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRegionDirtyTracking(t *testing.T) {
	p := New("p", 1, 1, nil)
	r, _ := p.AddRegion("heap", RegionHeap, 4096, 0)
	if r.DirtySinceClean() != 0 {
		t.Fatal("fresh region dirty")
	}
	r.WriteAt([]byte("abc"), 100)
	r.Fill(1, 200, 50)
	if got := r.DirtySinceClean(); got != 53 {
		t.Fatalf("dirty = %d, want 53", got)
	}
	r.MarkClean()
	if r.DirtySinceClean() != 0 {
		t.Fatal("MarkClean did not clear")
	}
	// Overlapping rewrite counts once.
	r.WriteAt(make([]byte, 100), 0)
	r.WriteAt(make([]byte, 100), 50)
	if got := r.DirtySinceClean(); got != 150 {
		t.Fatalf("dirty = %d, want 150", got)
	}
}
