package experiments

import "testing"

func TestBufSizeAblationShape(t *testing.T) {
	rows, err := BufSizeAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	if err := CheckBufSizeAblation(rows); err != nil {
		t.Errorf("%v\n%s", err, RenderBufSizeAblation(rows))
	}
}

func TestIncrementalAblationShape(t *testing.T) {
	rows, err := IncrementalAblation()
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckIncrementalAblation(rows); err != nil {
		t.Errorf("%v\n%s", err, RenderIncrementalAblation(rows))
	}
}

func TestWsizeAblationShape(t *testing.T) {
	rows, err := WsizeAblation()
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckWsizeAblation(rows); err != nil {
		t.Errorf("%v\n%s", err, RenderWsizeAblation(rows))
	}
}
