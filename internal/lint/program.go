package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// A Program is the whole-module view the interprocedural analyzers share:
// every loaded package, an index of declared functions, and a static call
// graph with interface calls resolved against the module's method sets.
// lint.Run builds one Program per invocation and hands it to every Pass.
type Program struct {
	Pkgs []*Package

	// Funcs indexes every function and method declared with a body in
	// the loaded packages.
	Funcs map[*types.Func]*FuncInfo

	// funcOrder lists the keys of Funcs in source order so iteration is
	// deterministic.
	funcOrder []*types.Func

	// siteByCall finds the resolved CallSite for a call expression.
	siteByCall map[*ast.CallExpr]CallSite

	cfgs map[*ast.BlockStmt]*CFG
}

// A FuncInfo is one declared function with its call sites.
type FuncInfo struct {
	Func *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	// Calls are the static call sites in the function's body, including
	// those inside nested function literals (a literal runs with the
	// declaring function's identity for reachability purposes).
	Calls []CallSite
}

// A CallSite is one resolved static call.
type CallSite struct {
	Call *ast.CallExpr
	// Callee is the invoked function: a concrete function or method, or
	// an interface method. Never nil.
	Callee *types.Func
	// Impls lists, for an interface-method callee, the module's concrete
	// methods the call can dispatch to (sorted by position). Empty for
	// direct calls.
	Impls []*types.Func
}

// BuildProgram indexes the packages and resolves the call graph.
func BuildProgram(pkgs []*Package) *Program {
	prog := &Program{
		Pkgs:       pkgs,
		Funcs:      map[*types.Func]*FuncInfo{},
		siteByCall: map[*ast.CallExpr]CallSite{},
		cfgs:       map[*ast.BlockStmt]*CFG{},
	}
	// Pass 1: index declared functions and collect the module's concrete
	// named types (the candidates interface dispatch resolves against).
	var concrete []types.Type
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue // type error around the declaration
				}
				prog.Funcs[fn] = &FuncInfo{Func: fn, Decl: fd, Pkg: pkg}
				prog.funcOrder = append(prog.funcOrder, fn)
			}
		}
		if pkg.Types == nil {
			continue
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if _, isIface := named.Underlying().(*types.Interface); isIface {
				continue
			}
			concrete = append(concrete, named)
		}
	}
	// Pass 2: resolve call sites.
	for _, fn := range prog.funcOrder {
		info := prog.Funcs[fn]
		ast.Inspect(info.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(info.Pkg.Info, call)
			if callee == nil {
				return true // builtin, conversion, or unresolved
			}
			site := CallSite{Call: call, Callee: callee}
			if iface := recvInterface(callee); iface != nil {
				site.Impls = implementationsOf(concrete, iface, callee, prog)
			}
			info.Calls = append(info.Calls, site)
			prog.siteByCall[call] = site
			return true
		})
	}
	return prog
}

// recvInterface returns the interface type callee is a method of, or nil
// for concrete functions and methods.
func recvInterface(f *types.Func) *types.Interface {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if iface, ok := t.Underlying().(*types.Interface); ok {
		return iface
	}
	return nil
}

// implementationsOf finds the module's declared methods an interface call
// can dispatch to.
func implementationsOf(concrete []types.Type, iface *types.Interface, method *types.Func, prog *Program) []*types.Func {
	var out []*types.Func
	seen := map[*types.Func]bool{}
	for _, t := range concrete {
		var impl types.Type
		switch {
		case types.Implements(t, iface):
			impl = t
		case types.Implements(types.NewPointer(t), iface):
			impl = types.NewPointer(t)
		default:
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(impl, true, method.Pkg(), method.Name())
		fn, ok := obj.(*types.Func)
		if !ok || seen[fn] {
			continue
		}
		// Only methods we hold a body for matter to reachability.
		if _, declared := prog.Funcs[fn]; declared {
			seen[fn] = true
			out = append(out, fn)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

// SiteOf returns the resolved call site for a call expression, if the
// call sits inside an indexed function body.
func (prog *Program) SiteOf(call *ast.CallExpr) (CallSite, bool) {
	site, ok := prog.siteByCall[call]
	return site, ok
}

// FuncsInOrder returns every indexed function in source order.
func (prog *Program) FuncsInOrder() []*FuncInfo {
	out := make([]*FuncInfo, 0, len(prog.funcOrder))
	for _, fn := range prog.funcOrder {
		out = append(out, prog.Funcs[fn])
	}
	return out
}

// CFGOf returns the (cached) control-flow graph of a function body.
func (prog *Program) CFGOf(body *ast.BlockStmt) *CFG {
	if cfg, ok := prog.cfgs[body]; ok {
		return cfg
	}
	cfg := BuildCFG(body)
	prog.cfgs[body] = cfg
	return cfg
}

// Reaches computes the set of declared functions from which a call to a
// function satisfying isSink is reachable — the shared "sink
// reachability" query. A function is in the set if any of its call sites
// invokes a sink directly (the callee itself satisfies isSink, whether or
// not it is declared in the module) or invokes — possibly through
// interface dispatch — a declared function already in the set. The
// fixpoint runs over the static call graph, so dynamic calls through
// stored function values are not followed.
func (prog *Program) Reaches(isSink func(*types.Func) bool) map[*types.Func]bool {
	reaches := map[*types.Func]bool{}
	// Iterate to fixpoint; the call graph is small (one module) and each
	// round only ever adds functions, so this terminates in at most
	// len(Funcs) rounds.
	for changed := true; changed; {
		changed = false
		for _, fn := range prog.funcOrder {
			if reaches[fn] {
				continue
			}
			info := prog.Funcs[fn]
			for _, site := range info.Calls {
				if prog.siteReaches(site, isSink, reaches) {
					reaches[fn] = true
					changed = true
					break
				}
			}
		}
	}
	return reaches
}

// siteReaches reports whether one call site hits a sink under the current
// reaches set.
func (prog *Program) siteReaches(site CallSite, isSink func(*types.Func) bool, reaches map[*types.Func]bool) bool {
	if isSink(site.Callee) || reaches[site.Callee] {
		return true
	}
	for _, impl := range site.Impls {
		if isSink(impl) || reaches[impl] {
			return true
		}
	}
	return false
}

// SinkPath renders a short witness of how callee reaches a sink, for
// finding messages: "f -> g -> sinkpkg.Sink". It follows the first
// sink-reaching call site at each hop (deterministic: call sites are in
// source order) and stops after a few hops.
func (prog *Program) SinkPath(callee *types.Func, isSink func(*types.Func) bool, reaches map[*types.Func]bool) string {
	var hops []string
	cur := callee
	for range [6]int{} {
		hops = append(hops, funcDisplayName(cur))
		if isSink(cur) {
			return strings.Join(hops, " -> ")
		}
		info, ok := prog.Funcs[cur]
		if !ok {
			break
		}
		next := (*types.Func)(nil)
		for _, site := range info.Calls {
			if isSink(site.Callee) || reaches[site.Callee] {
				next = site.Callee
				break
			}
			for _, impl := range site.Impls {
				if isSink(impl) || reaches[impl] {
					next = impl
					break
				}
			}
			if next != nil {
				break
			}
		}
		if next == nil {
			break
		}
		cur = next
	}
	if len(hops) > 0 && !isSink(cur) {
		hops = append(hops, "...")
	}
	return strings.Join(hops, " -> ")
}

// funcPkgPathHasSuffix reports whether f is declared in a package whose
// import path ends with the given suffix.
func funcPkgPathHasSuffix(f *types.Func, suffix string) bool {
	return f != nil && f.Pkg() != nil && pathHasSuffix(f.Pkg().Path(), suffix)
}
