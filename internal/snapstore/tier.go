package snapstore

// The storage hierarchy (DESIGN.md §15): chunk reads are served from the
// hottest tier holding the content — a size-bounded card RAM-fs cache,
// then the host store, then a simulated cold/object tier — and chunk
// writes admit into the host tier, demoting least-recently-used chunks
// to cold when the host budget overflows. The zero TierPolicy disables
// both bounds, which reduces exactly to the single-tier store of PR 5:
// every read is a host-tier read at the same virtual cost as before, so
// untiered benchmarks and baselines are bit-for-bit unchanged.

import (
	"container/list"
	"fmt"

	"snapify/internal/blob"
	"snapify/internal/simclock"
)

// ColdPrefix is the VFS directory holding chunks demoted to the
// simulated cold/object tier. Cold chunks are the same content-addressed
// files as host chunks, just slower to read (coldReadFactor) and outside
// the host-tier byte budget.
const ColdPrefix = "/snapstore/cold/"

// coldReadFactor multiplies the cold tier's read cost over a cold host
// file-system read — the object-store penalty of the simulated tier.
const coldReadFactor = 4

// Tier names a level of the storage hierarchy.
type Tier string

// The tiers, hottest first.
const (
	TierCache Tier = "cache"
	TierHost  Tier = "host"
	TierCold  Tier = "cold"
)

// TierPolicy bounds the storage hierarchy. Zero fields disable the
// corresponding bound: CacheBytes 0 means no card cache, HostBytes 0
// means the host tier is unbounded and nothing ever demotes to cold.
type TierPolicy struct {
	// CacheBytes is the card RAM-fs chunk cache capacity. Cached chunks
	// re-read at memcpy rate instead of paying the host file system.
	CacheBytes int64
	// HostBytes is the host-resident chunk byte budget. Admitting a chunk
	// past the budget demotes least-recently-used chunks to the cold tier.
	HostBytes int64
}

// tiers is the Store's placement state. All fields are guarded by the
// Store's mutex.
type tiers struct {
	policy TierPolicy

	// Host-tier LRU: front is least recently used. pos indexes digests
	// into the list; hostUsed sums resident host chunk bytes.
	hostLRU  *list.List
	hostPos  map[string]*list.Element
	hostUsed int64

	// Card cache: digest set with its own LRU and byte budget. The cache
	// holds copies — content is still durable in host or cold.
	cacheLRU  *list.List
	cachePos  map[string]*list.Element
	cacheSize map[string]int64
	cacheUsed int64

	demotions  int64
	promotions int64
}

func newTiers() *tiers {
	return &tiers{
		hostLRU:   list.New(),
		hostPos:   make(map[string]*list.Element),
		cacheLRU:  list.New(),
		cachePos:  make(map[string]*list.Element),
		cacheSize: make(map[string]int64),
	}
}

// SetTierPolicy installs the storage-hierarchy bounds. Shrinking the
// host budget below the resident set demotes immediately (oldest first);
// shrinking the cache evicts.
func (st *Store) SetTierPolicy(p TierPolicy) (simclock.Duration, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.tiers.policy = p
	st.trimCacheLocked()
	return st.rebalanceLocked("")
}

// TierPolicy returns the installed bounds.
func (st *Store) TierPolicy() TierPolicy {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.tiers.policy
}

// TierStats summarizes placement and traffic per tier.
type TierStats struct {
	CacheChunks int
	CacheBytes  int64
	HostChunks  int
	HostBytes   int64
	ColdChunks  int
	ColdBytes   int64

	CacheHits  int64
	HostHits   int64
	ColdHits   int64
	Demotions  int64
	Promotions int64
}

// HitRatio returns the fraction of chunk reads served above the cold
// tier (0 when nothing has been read).
func (s TierStats) HitRatio() float64 {
	total := s.CacheHits + s.HostHits + s.ColdHits
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits+s.HostHits) / float64(total)
}

// TierStats walks the chunk directories and the placement state.
// Metadata-only; no virtual time is charged.
func (st *Store) TierStats() TierStats {
	st.mu.Lock()
	defer st.mu.Unlock()
	s := TierStats{
		CacheChunks: st.tiers.cacheLRU.Len(),
		CacheBytes:  st.tiers.cacheUsed,
		CacheHits:   st.cacheHits.Value(),
		HostHits:    st.hostTierHits.Value(),
		ColdHits:    st.coldHits.Value(),
		Demotions:   st.tiers.demotions,
		Promotions:  st.tiers.promotions,
	}
	for _, cp := range st.fs.List(ChunkPrefix) {
		if n, err := st.fs.Size(cp); err == nil {
			s.HostChunks++
			s.HostBytes += n
		}
	}
	for _, cp := range st.fs.List(ColdPrefix) {
		if n, err := st.fs.Size(cp); err == nil {
			s.ColdChunks++
			s.ColdBytes += n
		}
	}
	return s
}

// coldPath maps a digest to its cold-tier file.
func coldPath(digest string) string { return ColdPrefix + digest }

// chunkResidentLocked reports whether the chunk content is durable in
// any tier (host or cold; the cache is a copy, never the only resident).
func (st *Store) chunkResidentLocked(digest string) bool {
	return st.fs.Exists(chunkPath(digest)) || st.fs.Exists(coldPath(digest))
}

// ReadChunk returns the content of the chunk with the given digest from
// the hottest tier holding it, charging that tier's virtual read cost
// and updating placement (LRU touch, cache admission, cold promotion).
func (st *Store) ReadChunk(digest string) (blob.Blob, simclock.Duration, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.readChunkLocked(digest)
}

func (st *Store) readChunkLocked(digest string) (blob.Blob, simclock.Duration, error) {
	t := st.tiers
	// Cache tier: the content is a card-RAM copy; serving it costs one
	// memcpy. Durable content still lives below, read without charge.
	if _, ok := t.cachePos[digest]; ok {
		b, err := st.readDurableLocked(digest)
		if err != nil {
			return blob.Blob{}, 0, err
		}
		t.cacheLRU.MoveToBack(t.cachePos[digest])
		st.cacheHits.Inc()
		return b, st.model.HostMemcpy(b.Len()), nil
	}
	// Host tier.
	if st.fs.Exists(chunkPath(digest)) {
		b, dur, err := st.fs.ReadFile(chunkPath(digest))
		if err != nil {
			return blob.Blob{}, dur, err
		}
		st.touchHostLocked(digest, b.Len())
		st.admitCacheLocked(digest, b.Len())
		st.hostTierHits.Inc()
		return b, dur, nil
	}
	// Cold tier: pay the object-store penalty, then promote the chunk
	// back to host (and let the budget demote something colder).
	if st.fs.Exists(coldPath(digest)) {
		b, _, err := st.fs.ReadFile(coldPath(digest))
		if err != nil {
			return blob.Blob{}, 0, err
		}
		dur := simclock.Duration(coldReadFactor) * (st.model.HostFSOpLatency + simclock.Rate(st.model.HostFSReadColdBandwidth)(b.Len()))
		st.coldHits.Inc()
		d, err := st.promoteLocked(digest, b)
		dur += d
		if err != nil {
			return blob.Blob{}, dur, err
		}
		st.admitCacheLocked(digest, b.Len())
		return b, dur, nil
	}
	return blob.Blob{}, 0, fmt.Errorf("snapstore: chunk %s resident in no tier", digest[:12])
}

// readDurableLocked reads chunk content from whichever durable tier
// holds it, charging nothing (the caller accounts the serving tier).
func (st *Store) readDurableLocked(digest string) (blob.Blob, error) {
	if st.fs.Exists(chunkPath(digest)) {
		b, _, err := st.fs.ReadFile(chunkPath(digest))
		return b, err
	}
	b, _, err := st.fs.ReadFile(coldPath(digest))
	return b, err
}

// admitHostLocked records a freshly written host chunk in the LRU and
// rebalances against the host budget. Returns the demotion cost, if any.
func (st *Store) admitHostLocked(digest string, n int64) (simclock.Duration, error) {
	st.touchHostLocked(digest, n)
	return st.rebalanceLocked(digest)
}

// touchHostLocked moves digest to the hot end of the host LRU, inserting
// it if unseen.
func (st *Store) touchHostLocked(digest string, n int64) {
	t := st.tiers
	if e, ok := t.hostPos[digest]; ok {
		t.hostLRU.MoveToBack(e)
		return
	}
	t.hostPos[digest] = t.hostLRU.PushBack(digest)
	t.hostUsed += n
}

// rebalanceLocked demotes least-recently-used host chunks to the cold
// tier until the host byte budget holds. exclude pins one digest (the
// chunk just admitted or promoted) so a single oversized admission
// cannot demote itself into a thrash loop.
func (st *Store) rebalanceLocked(exclude string) (simclock.Duration, error) {
	t := st.tiers
	if t.policy.HostBytes <= 0 {
		return 0, nil
	}
	var dur simclock.Duration
	for t.hostUsed > t.policy.HostBytes {
		var victim *list.Element
		for e := t.hostLRU.Front(); e != nil; e = e.Next() {
			if e.Value.(string) != exclude {
				victim = e
				break
			}
		}
		if victim == nil {
			return dur, nil
		}
		d, err := st.demoteLocked(victim.Value.(string))
		dur += d
		if err != nil {
			return dur, err
		}
	}
	return dur, nil
}

// demoteLocked moves one host chunk to the cold tier.
func (st *Store) demoteLocked(digest string) (simclock.Duration, error) {
	b, dur, err := st.fs.ReadFile(chunkPath(digest))
	if err != nil {
		return dur, err
	}
	d, err := st.fs.WriteFile(coldPath(digest), b)
	dur += d
	if err != nil {
		return dur, err
	}
	if err := st.fs.Remove(chunkPath(digest)); err != nil {
		return dur, err
	}
	st.dropHostLocked(digest, b.Len())
	st.tiers.demotions++
	st.tierDemotions.Inc()
	return dur, nil
}

// promoteLocked moves a cold chunk back into the host tier and
// rebalances (something colder pays for the promotion).
func (st *Store) promoteLocked(digest string, content blob.Blob) (simclock.Duration, error) {
	dur, err := st.fs.WriteFile(chunkPath(digest), content)
	if err != nil {
		return dur, err
	}
	if err := st.fs.Remove(coldPath(digest)); err != nil {
		return dur, err
	}
	st.touchHostLocked(digest, content.Len())
	st.tiers.promotions++
	st.tierPromotions.Inc()
	d, err := st.rebalanceLocked(digest)
	return dur + d, err
}

// dropHostLocked forgets a digest's host-tier placement (demotion or GC
// reclaim).
func (st *Store) dropHostLocked(digest string, n int64) {
	t := st.tiers
	if e, ok := t.hostPos[digest]; ok {
		t.hostLRU.Remove(e)
		delete(t.hostPos, digest)
		t.hostUsed -= n
	}
}

// dropCacheLocked forgets a digest's cache entry.
func (st *Store) dropCacheLocked(digest string) {
	t := st.tiers
	if e, ok := t.cachePos[digest]; ok {
		t.cacheLRU.Remove(e)
		delete(t.cachePos, digest)
		t.cacheUsed -= t.cacheSize[digest]
		delete(t.cacheSize, digest)
	}
}

// admitCacheLocked copies a just-read chunk into the card cache,
// evicting LRU entries to fit. Chunks larger than the whole cache are
// never admitted.
func (st *Store) admitCacheLocked(digest string, n int64) {
	t := st.tiers
	if t.policy.CacheBytes <= 0 || n > t.policy.CacheBytes {
		return
	}
	if e, ok := t.cachePos[digest]; ok {
		t.cacheLRU.MoveToBack(e)
		return
	}
	t.cachePos[digest] = t.cacheLRU.PushBack(digest)
	t.cacheSize[digest] = n
	t.cacheUsed += n
	st.trimCacheLocked()
}

// trimCacheLocked evicts least-recently-used cache entries until the
// cache budget holds.
func (st *Store) trimCacheLocked() {
	t := st.tiers
	for t.cacheUsed > t.policy.CacheBytes && t.cacheLRU.Len() > 0 {
		st.dropCacheLocked(t.cacheLRU.Front().Value.(string))
	}
}
