// Command snapifyctl demonstrates the paper's `snapify` command-line
// utility (Section 5): it signals a host process and submits swap-out,
// swap-in, or migration commands through a pipe, and the Snapify signal
// handler inside the host process executes them — the application itself
// is never modified.
//
// The simulation runs in-process, so this tool boots a two-card server,
// launches a demo offload application, and then applies the commands given
// on the command line against its host PID, printing the process table
// state after each one.
//
// Usage:
//
//	snapifyctl [command...]
//	    commands: swapout [store] | swapin <device> | migrate <device> [store|live]
//	            | store ls|stat|tiers|verify|gc
//	            | trace <out.json> | metrics
//	    default sequence: swapout, swapin 2, migrate 1 live
//
//	snapifyctl analyze critical-path <trace.json>
//	    offline: print the critical-path breakdown (chain, blame table,
//	    straggler skew, pre-copy rounds) of an exported Chrome trace
//	snapifyctl analyze flight <dump.json>
//	    offline: summarize a flight-recorder dump (reason, counter
//	    deltas, critical path of the recorded window)
//	snapifyctl fleet status
//	    boot the deterministic fleet control-plane demo (model backend,
//	    2x oversubscription, one host draining), advance to mid-run, and
//	    print per-host card occupancy and evacuation progress
//	snapifyctl fleet queue
//	    same scenario; print the admission queue (per-tenant depth and
//	    the pending jobs in dispatch order)
//
// swapout store (and migrate <device> store) capture through the
// content-addressed dedup store instead of plain host files; migrate
// <device> live runs a pre-copy live migration — the image ships in
// rounds while the process runs, and the reply details each round's
// dirty/shipped bytes plus the final downtime. The store
// subcommands inspect it: ls lists committed manifests, stat prints
// chunk/dedup statistics, tiers prints the storage-hierarchy placement
// (cache/host/cold residency, per-tier hits, promotion/demotion counts),
// verify re-digests every chunk and checks the refcount invariants, and
// gc runs a mark-and-sweep collection. trace
// writes the session's virtual-clock trace as Chrome trace-event JSON
// (open it at ui.perfetto.dev); metrics prints the platform metrics
// registry in Prometheus text exposition. Both observe whatever commands
// ran before them in the sequence.
package main

import (
	"encoding/binary"
	"fmt"
	"os"
	"strings"
	"time"

	"snapify"
	"snapify/internal/obs"
	"snapify/internal/obs/analyze"
	"snapify/internal/proc"
	"snapify/internal/snapstore"
)

func main() {
	// `analyze` works on files a previous run exported — no demo server
	// to boot, so it dispatches before the simulation starts.
	if len(os.Args) > 1 && os.Args[1] == "analyze" {
		analyzeCommand(os.Args[2:])
		return
	}

	// `fleet` boots its own control-plane scenario — no demo server.
	if len(os.Args) > 1 && os.Args[1] == "fleet" {
		fleetCommand(os.Args[2:])
		return
	}

	snapify.RegisterBinary(demoBinary())
	srv, err := snapify.NewServer(snapify.ServerOptions{Devices: 2})
	fatal(err)
	defer srv.Stop()

	app, err := srv.Launch("ctl_demo", 1)
	fatal(err)
	defer app.Close()
	pl, err := app.Proc.CreatePipeline()
	fatal(err)

	// Run some work so the process has real state to carry across swaps.
	args := make([]byte, 8)
	binary.BigEndian.PutUint64(args, 500)
	_, err = pl.RunFunction("sum", args)
	fatal(err)

	srvr := app.InstallCommandServer()
	fmt.Printf("launched ctl_demo: host PID %d, offload process on %v\n",
		app.Host.PID(), app.Proc.DeviceNode())

	cmds := parseCommands(os.Args[1:])
	for _, cmd := range cmds {
		if cmd == "metrics" {
			fmt.Printf("\n$ snapifyctl metrics\n")
			fmt.Print(srv.Platform.Obs.MetricsOf().Expose())
			continue
		}
		if sub, ok := strings.CutPrefix(cmd, "store "); ok {
			fmt.Printf("\n$ snapifyctl store %s\n", sub)
			storeCommand(srv.Platform.Store, sub)
			continue
		}
		if path, ok := strings.CutPrefix(cmd, "trace "); ok {
			fmt.Printf("\n$ snapifyctl trace %s\n", path)
			out := srv.Platform.Obs.TracerOf().ChromeTrace()
			if err := obs.ValidateChromeTrace(out); err != nil {
				fatal(err)
			}
			fatal(os.WriteFile(path, out, 0o644))
			fmt.Printf("  wrote %s: valid Chrome trace; open at ui.perfetto.dev\n", path)
			continue
		}
		fmt.Printf("\n$ snapify %d %s\n", app.Host.PID(), cmd)
		reply, err := srvr.SubmitCommand(cmd)
		if err != nil {
			fmt.Printf("  error: %v\n", err)
			continue
		}
		// A migration reply details each pre-copy round and the downtime.
		if detail, ok := strings.CutPrefix(reply, "ok\n"); ok {
			for _, line := range strings.Split(detail, "\n") {
				fmt.Printf("  %s\n", line)
			}
		}
		state := "resident on " + srvr.Proc().DeviceNode().String()
		if srvr.Swapped() {
			state = "swapped out to host storage"
		}
		fmt.Printf("  ok: offload process now %s\n", state)
	}

	// Prove the process survived everything.
	binary.BigEndian.PutUint64(args, 1000)
	out, err := pl.RunFunction("sum", args)
	fatal(err)
	fmt.Printf("\nfinal sum(1000) = %d (expected %d) — state preserved across all operations\n",
		binary.BigEndian.Uint64(out), 1000*999/2)
}

func parseCommands(argv []string) []string {
	if len(argv) == 0 {
		return []string{"swapout /ctl/snap", "swapin 2", "migrate 1 /ctl/mig live"}
	}
	var out []string
	for i := 0; i < len(argv); i++ {
		switch argv[i] {
		case "swapout":
			cmd := "swapout /ctl/snap"
			if i+1 < len(argv) && argv[i+1] == "store" {
				cmd += " store"
				i++
			}
			out = append(out, cmd)
		case "swapin", "migrate":
			if i+1 >= len(argv) {
				fatal(fmt.Errorf("%s needs a device argument", argv[i]))
			}
			if argv[i] == "swapin" {
				out = append(out, "swapin "+argv[i+1])
			} else {
				cmd := "migrate " + argv[i+1] + " /ctl/mig"
				if i+2 < len(argv) && (argv[i+2] == "store" || argv[i+2] == "live") {
					cmd += " " + argv[i+2]
					i++
				}
				out = append(out, cmd)
			}
			i++
		case "store":
			if i+1 >= len(argv) {
				fatal(fmt.Errorf("store needs a subcommand (ls | stat | tiers | verify | gc)"))
			}
			switch argv[i+1] {
			case "ls", "stat", "tiers", "verify", "gc":
				out = append(out, "store "+argv[i+1])
			default:
				fatal(fmt.Errorf("unknown store subcommand %q (want ls | stat | tiers | verify | gc)", argv[i+1]))
			}
			i++
		case "metrics":
			out = append(out, "metrics")
		case "trace":
			if i+1 >= len(argv) {
				fatal(fmt.Errorf("trace needs an output path argument"))
			}
			out = append(out, "trace "+argv[i+1])
			i++
		default:
			fatal(fmt.Errorf("unknown command %q (want swapout [store] | swapin <dev> | migrate <dev> [store|live] | store <sub> | trace <out> | metrics)", argv[i]))
		}
	}
	return out
}

// analyzeCommand services `snapifyctl analyze <sub> <file>`: offline
// analysis of artifacts a previous run exported (a Chrome trace from
// `trace`/`-trace`, or a flight-recorder dump from SNAPIFY_FLIGHT_DIR).
func analyzeCommand(argv []string) {
	if len(argv) != 2 {
		fatal(fmt.Errorf("usage: snapifyctl analyze critical-path <trace.json> | analyze flight <dump.json>"))
	}
	data, err := os.ReadFile(argv[1])
	fatal(err)
	switch argv[0] {
	case "critical-path":
		spans, err := analyze.ParseChromeTrace(data)
		fatal(err)
		report, err := analyze.CriticalPath(spans)
		fatal(err)
		fmt.Print(report.Render(10))
	case "flight":
		report, err := analyze.FlightReport(data)
		fatal(err)
		fmt.Print(report)
	default:
		fatal(fmt.Errorf("unknown analyze subcommand %q (want critical-path | flight)", argv[0]))
	}
}

// storeCommand services one `store <sub>` inspection command against the
// platform's dedup store.
func storeCommand(st *snapstore.Store, sub string) {
	switch sub {
	case "ls":
		paths := st.List()
		if len(paths) == 0 {
			fmt.Println("  (no committed manifests)")
			return
		}
		for _, p := range paths {
			m, _, err := st.Manifest(p)
			fatal(err)
			parent := "-"
			if m.Parent != "" {
				parent = m.Parent
			}
			fmt.Printf("  %s  %d bytes, %d chunks, refs %d, parent %s\n",
				m.Path, m.Size, len(m.Chunks), m.Refs, parent)
		}
	case "stat":
		s := st.Stats()
		fmt.Printf("  manifests:     %d\n", s.Manifests)
		fmt.Printf("  chunks:        %d (%d bytes stored)\n", s.Chunks, s.StoredBytes)
		fmt.Printf("  logical bytes: %d\n", s.LogicalBytes)
		fmt.Printf("  dedup ratio:   %.2fx\n", s.DedupRatio())
		fmt.Printf("  reclaimable:   %d chunks (%d bytes)\n", s.ReclaimableChunks, s.ReclaimableBytes)
	case "tiers":
		p := st.TierPolicy()
		cacheCap, hostCap := "disabled", "unbounded"
		if p.CacheBytes > 0 {
			cacheCap = fmt.Sprintf("%d bytes", p.CacheBytes)
		}
		if p.HostBytes > 0 {
			hostCap = fmt.Sprintf("%d bytes", p.HostBytes)
		}
		ts := st.TierStats()
		fmt.Printf("  %-6s %8s %12s %10s   %s\n", "tier", "chunks", "bytes", "hits", "capacity")
		fmt.Printf("  %-6s %8d %12d %10d   %s\n", "cache", ts.CacheChunks, ts.CacheBytes, ts.CacheHits, cacheCap)
		fmt.Printf("  %-6s %8d %12d %10d   %s\n", "host", ts.HostChunks, ts.HostBytes, ts.HostHits, hostCap)
		fmt.Printf("  %-6s %8d %12d %10d   %s\n", "cold", ts.ColdChunks, ts.ColdBytes, ts.ColdHits, "unbounded")
		fmt.Printf("  hit ratio (above cold): %.2f\n", ts.HitRatio())
		fmt.Printf("  demotions %d, promotions %d\n", ts.Demotions, ts.Promotions)
	case "verify":
		problems, _ := st.Verify()
		if len(problems) == 0 {
			fmt.Println("  store consistent: every chunk matches its digest, every reference resolves")
			return
		}
		for _, p := range problems {
			fmt.Printf("  PROBLEM: %s\n", p)
		}
		fatal(fmt.Errorf("store verify found %d problems", len(problems)))
	case "gc":
		gs, _, err := st.GC(0)
		fatal(err)
		fmt.Printf("  scanned %d chunks, reclaimed %d (%d bytes), swept %d stale tmp files, %d live\n",
			gs.ChunksScanned, gs.ChunksReclaimed, gs.BytesReclaimed, gs.TmpSwept, gs.ChunksLive)
	}
}

func demoBinary() *snapify.Binary {
	bin := snapify.NewBinary("ctl_demo")
	bin.AddRegion("state", proc.RegionHeap, 1<<16, 0)
	bin.Register("sum", func(ctx *snapify.RunContext, args []byte) ([]byte, error) {
		n := binary.BigEndian.Uint64(args)
		st := ctx.Region("state")
		buf := make([]byte, 16)
		st.ReadAt(buf, 0)
		for {
			i := binary.BigEndian.Uint64(buf[:8])
			if i >= n {
				break
			}
			if err := ctx.Step(func() {
				s := binary.BigEndian.Uint64(buf[8:])
				binary.BigEndian.PutUint64(buf[:8], i+1)
				binary.BigEndian.PutUint64(buf[8:], s+i)
				st.WriteAt(buf, 0)
				ctx.Compute(100 * time.Microsecond)
			}); err != nil {
				return nil, err
			}
		}
		out := make([]byte, 8)
		st.ReadAt(buf, 0)
		copy(out, buf[8:])
		return out, nil
	})
	return bin
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "snapifyctl:", err)
		os.Exit(1)
	}
}
