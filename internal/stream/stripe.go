package stream

import (
	"fmt"
	"sync"

	"snapify/internal/blob"
	"snapify/internal/simclock"
	"snapify/internal/vfs"
)

// StripeSet shares one fixed-size sparse file among parallel stripe sinks
// — the local-file-system counterpart of the Snapify-IO daemon's striped
// assembly. Each Sink writes a disjoint byte range; the file becomes
// visible once the closed stripes cover the whole size, and is discarded
// if any stripe aborts.
type StripeSet struct {
	mu      sync.Mutex
	sw      vfs.SparseWriter
	total   int64
	covered int64
	refs    int
	aborted bool
	settled bool
}

// NewStripeSet creates the backing sparse file of total bytes on fs.
func NewStripeSet(fs vfs.SparseFS, path string, total int64) (*StripeSet, error) {
	sw, err := fs.CreateSparse(path, total)
	if err != nil {
		return nil, err
	}
	return &StripeSet{sw: sw, total: total}, nil
}

// Sink returns a stripe sink for the byte range [off, off+n).
func (s *StripeSet) Sink(off, n int64) (Sink, error) {
	if off < 0 || n <= 0 || off+n > s.total {
		return nil, fmt.Errorf("stream: stripe [%d,%d) outside file of %d bytes", off, off+n, s.total)
	}
	s.mu.Lock()
	s.refs++
	s.mu.Unlock()
	return &stripeSink{set: s, off: off, end: off + n, length: n}, nil
}

// release drops one stripe: a clean close credits its length toward
// coverage (stripes are disjoint, so full coverage means the file is
// complete); an abort poisons the set, and the last stripe out discards
// the file.
func (s *StripeSet) release(length int64, abort bool) error {
	s.mu.Lock()
	s.refs--
	if abort {
		s.aborted = true
	} else {
		s.covered += length
	}
	commit := !s.aborted && !s.settled && s.covered >= s.total
	discard := s.aborted && !s.settled && s.refs == 0
	if commit || discard {
		s.settled = true
	}
	s.mu.Unlock()
	if commit {
		return s.sw.Commit()
	}
	if discard {
		s.sw.Abort()
	}
	return nil
}

type stripeSink struct {
	set    *StripeSet
	off    int64
	end    int64
	length int64
	closed bool
}

// WriteBlob implements Sink, appending within the stripe's range.
func (w *stripeSink) WriteBlob(b blob.Blob) (Cost, error) {
	if w.closed {
		return Cost{}, fmt.Errorf("stream: write on closed stripe")
	}
	if w.off+b.Len() > w.end {
		return Cost{}, fmt.Errorf("stream: chunk [%d,%d) overruns stripe ending at %d", w.off, w.off+b.Len(), w.end)
	}
	d, err := w.set.sw.WriteBlobAt(w.off, b)
	if err != nil {
		return Cost{}, err
	}
	w.off += b.Len()
	return Cost{Stages: []simclock.Duration{d}}, nil
}

// Close implements Sink.
func (w *stripeSink) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	return w.set.release(w.length, false)
}

// Abort implements Sink.
func (w *stripeSink) Abort() {
	if w.closed {
		return
	}
	w.closed = true
	w.set.release(0, true) //nolint:errcheck // abort path: discarding the partial file is the handling
}

// NewRangeSource opens bytes [off, off+n) of the file at path on any
// range-capable node file system as a Source (the read side of a parallel
// restart from local storage).
func NewRangeSource(fs vfs.RangeFS, path string, off, n int64) (Source, error) {
	r, err := fs.OpenRange(path, off, n)
	if err != nil {
		return nil, err
	}
	return vfsSource{r: r}, nil
}

type vfsSource struct{ r vfs.Reader }

func (s vfsSource) Next(max int64) (blob.Blob, Cost, error) {
	b, d, err := s.r.Next(max)
	return b, Cost{Stages: []simclock.Duration{d}}, err
}

func (s vfsSource) Size() int64  { return s.r.Size() }
func (s vfsSource) Close() error { return nil }
