package snapifyio

import (
	"sync"

	"snapify/internal/blob"
)

// slot is the registered RDMA staging buffer of one handler. It implements
// scif.Memory over an immutable blob, so chunk content passes through with
// its extents intact: literal bytes are really copied, synthetic background
// travels as descriptors, and multi-gigabyte snapshots never materialize in
// the staging path (the virtual-time cost is charged on the full size
// regardless; see internal/blob).
type slot struct {
	mu      sync.Mutex
	content blob.Blob
	size    int64
}

func newSlot(size int64) *slot {
	return &slot{content: blob.Zeros(size), size: size}
}

// Size implements scif.Memory.
func (s *slot) Size() int64 { return s.size }

// SnapshotRange implements scif.Memory.
func (s *slot) SnapshotRange(off, n int64) blob.Blob {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.content.Slice(off, n)
}

// WriteBlob implements scif.Memory.
func (s *slot) WriteBlob(off int64, src blob.Blob) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.content = blob.Splice(s.content, off, src)
}
