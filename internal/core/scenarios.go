package core

import (
	"fmt"

	"snapify/internal/coi"
	"snapify/internal/simnet"
)

// The three API use scenarios of Section 5, composed from the five
// primitives exactly as the paper's sample code does (Fig 6 and Fig 7).

// Swapout captures and terminates the offload process, freeing the card
// for another tenant (snapify_swapout, Fig 6a). The returned Snapshot
// represents the swapped-out process and is the input to Swapin.
func Swapout(path string, cp *coi.Process) (*Snapshot, error) {
	s := NewSnapshot(path, cp)
	if err := s.Pause(); err != nil {
		return nil, err
	}
	if err := s.Capture(CaptureOptions{Terminate: true}); err != nil {
		return nil, err
	}
	if err := s.Wait(); err != nil {
		return nil, err
	}
	return s, nil
}

// Swapin restores a swapped-out offload process on the given device and
// resumes it (snapify_swapin, Fig 6a). It returns the revived handle.
func Swapin(s *Snapshot, deviceTo simnet.NodeID) (*coi.Process, error) {
	cp, err := s.Restore(deviceTo, RestoreOptions{})
	if err != nil {
		return nil, err
	}
	if err := s.Resume(); err != nil {
		return nil, err
	}
	return cp, nil
}

// Migrate moves the offload process to another coprocessor on the same
// machine (snapify_migration, Fig 7): a swap-out whose local store streams
// directly to the destination card, followed by a swap-in there.
func Migrate(cp *coi.Process, deviceTo simnet.NodeID, path string) (*coi.Process, *Snapshot, error) {
	if deviceTo == cp.DeviceNode() {
		return nil, nil, fmt.Errorf("core: migration target %v is the current device", deviceTo)
	}
	s := NewSnapshot(path, cp)
	// The local store moves device-to-device over PCIe, not through the
	// host (Section 7, "Process migration").
	s.LocalStoreTarget = deviceTo
	if err := s.Pause(); err != nil {
		return nil, nil, err
	}
	if err := s.Capture(CaptureOptions{Terminate: true}); err != nil {
		return nil, nil, err
	}
	if err := s.Wait(); err != nil {
		return nil, nil, err
	}
	ncp, err := Swapin(s, deviceTo)
	if err != nil {
		return nil, nil, err
	}
	return ncp, s, nil
}
