package core

import (
	"encoding/binary"
	"fmt"
	"testing"
	"time"

	"snapify/internal/coi"
	"snapify/internal/platform"
	"snapify/internal/platform/platformtest"
	"snapify/internal/proc"
	"snapify/internal/simclock"
	"snapify/internal/simnet"
)

// testBinary is a resumable kernel: it adds [0, n) into a sum in the
// "state" region and mixes in the bytes of COI buffer 0 if present.
func testBinary(name string) *coi.Binary {
	bin := coi.NewBinary(name)
	bin.AddRegion("state", proc.RegionHeap, 1<<16, 0)
	bin.Register("count", func(ctx *coi.RunContext, args []byte) ([]byte, error) {
		n := binary.BigEndian.Uint64(args)
		st := ctx.Region("state")
		buf := make([]byte, 16)
		st.ReadAt(buf, 0)
		for {
			i := binary.BigEndian.Uint64(buf[:8])
			if i >= n {
				break
			}
			if err := ctx.Step(func() {
				sum := binary.BigEndian.Uint64(buf[8:])
				binary.BigEndian.PutUint64(buf[:8], i+1)
				binary.BigEndian.PutUint64(buf[8:], sum+i*3+1)
				st.WriteAt(buf, 0)
				ctx.Compute(200 * time.Microsecond)
			}); err != nil {
				return nil, err
			}
		}
		out := make([]byte, 8)
		st.ReadAt(buf, 0)
		copy(out, buf[8:])
		return out, nil
	})
	return bin
}

type rig struct {
	plat *platform.Platform
	host *proc.Process
	tl   *simclock.Timeline
	cp   *coi.Process
	pl   *coi.Pipeline
}

func newRig(t *testing.T, binName string, devices int) *rig {
	t.Helper()
	coi.RegisterBinary(testBinary(binName))
	plat := platformtest.Start(t, platformtest.Options{Devices: devices})
	host := plat.Procs.Spawn("host_proc", simnet.HostNode, plat.Host().Mem)
	tl := simclock.NewTimeline()
	cp, err := coi.CreateProcess(plat, host, tl, 1, binName)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := cp.CreatePipeline()
	if err != nil {
		t.Fatal(err)
	}
	return &rig{plat: plat, host: host, tl: tl, cp: cp, pl: pl}
}

func (r *rig) count(t *testing.T, n uint64) uint64 {
	t.Helper()
	args := make([]byte, 8)
	binary.BigEndian.PutUint64(args, n)
	out, err := r.pl.RunFunction("count", args)
	if err != nil {
		t.Fatal(err)
	}
	return binary.BigEndian.Uint64(out)
}

// refSum computes the expected sum for counting to n with the kernel's
// formula (sum of 3i+1 for i in [0,n)).
func refSum(n uint64) uint64 { return 3*n*(n-1)/2 + n }

func TestPauseCaptureResumeLifecycle(t *testing.T) {
	r := newRig(t, "core_basic", 1)
	r.count(t, 20)

	s := NewSnapshot("/snap/basic", r.cp)
	if err := Pause(s); err != nil {
		t.Fatal(err)
	}
	if s.Report.PauseTotal() <= 0 {
		t.Error("pause must take virtual time")
	}
	if err := s.Capture(CaptureOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := Wait(s); err != nil {
		t.Fatal(err)
	}
	if s.Report.SnapshotBytes <= 0 || s.Report.Capture <= 0 {
		t.Errorf("capture report: %+v", s.Report)
	}
	// The snapshot landed on the host file system via Snapify-IO.
	if !r.plat.Host().FS.Exists("/snap/basic/" + coi.ContextFileName) {
		t.Error("context file missing")
	}
	if !r.plat.Host().FS.Exists("/snap/basic/runtime_libs") {
		t.Error("runtime libraries not saved with the snapshot")
	}
	if err := Resume(s); err != nil {
		t.Fatal(err)
	}
	// Work continues unharmed.
	if got := r.count(t, 40); got != refSum(40) {
		t.Errorf("post-resume count = %d, want %d", got, refSum(40))
	}
}

func TestCaptureRequiresPause(t *testing.T) {
	r := newRig(t, "core_nopause", 1)
	s := NewSnapshot("/snap/np", r.cp)
	if err := s.Capture(CaptureOptions{}); err == nil {
		t.Fatal("capture without pause must fail")
	}
}

func TestConsistencyInvariantAtCapture(t *testing.T) {
	r := newRig(t, "core_invariant", 1)
	buf, err := r.cp.CreateBuffer(128 * 1024)
	if err != nil {
		t.Fatal(err)
	}
	buf.Write(make([]byte, 128*1024), 0) //nolint:errcheck
	r.count(t, 15)

	s := NewSnapshot("/snap/inv", r.cp)
	if err := Pause(s); err != nil {
		t.Fatal(err)
	}
	// Every channel between host proc, daemon, and offload proc is empty.
	if n := r.cp.QueuedBytesAll(); n != 0 {
		t.Errorf("host-side queued bytes at capture time: %d", n)
	}
	op, err := coi.DaemonAt(r.plat, 1).Lookup(r.cp.ID())
	if err != nil {
		t.Fatal(err)
	}
	for _, ep := range op.Endpoints() {
		if n := ep.QueuedBytes(); n != 0 {
			t.Errorf("device endpoint %v queued bytes: %d", ep.LocalAddr(), n)
		}
	}
	// No thread is mid-step.
	if op.Proc().StepActive() != 0 {
		t.Error("a computation step is active during pause")
	}
	s.Capture(CaptureOptions{}) //nolint:errcheck
	Wait(s)                     //nolint:errcheck
	Resume(s)                   //nolint:errcheck
}

func TestSwapoutSwapinRoundTrip(t *testing.T) {
	r := newRig(t, "core_swap", 1)
	buf, _ := r.cp.CreateBuffer(512 * 1024)
	pattern := make([]byte, 512*1024)
	for i := range pattern {
		pattern[i] = byte(i * 7)
	}
	buf.Write(pattern, 0) //nolint:errcheck
	r.count(t, 33)

	memBefore := r.plat.Device(1).Mem.Used()
	snap, err := Swapout("/snap/swap", r.cp, CaptureOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// The card's memory is freed while swapped out.
	if used := r.plat.Device(1).Mem.Used(); used >= memBefore {
		t.Errorf("card memory not freed by swap-out: %d -> %d", memBefore, used)
	}
	if r.cp.State() != coi.StateSwapped {
		t.Error("handle not swapped")
	}

	cp2, err := Swapin(snap, 1, RestoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if cp2.State() != coi.StateActive {
		t.Error("handle not active after swap-in")
	}
	back := make([]byte, len(pattern))
	if err := buf.Read(back, 0); err != nil {
		t.Fatal(err)
	}
	for i := range back {
		if back[i] != pattern[i] {
			t.Fatalf("buffer corrupted at %d after swap", i)
		}
	}
	if got := r.count(t, 66); got != refSum(66) {
		t.Errorf("post-swap count = %d, want %d", got, refSum(66))
	}
}

func TestMigrateMovesProcessAndLocalStoreDirect(t *testing.T) {
	r := newRig(t, "core_migrate", 2)
	buf, _ := r.cp.CreateBuffer(1 * int64(simclock.MiB))
	data := make([]byte, simclock.MiB)
	for i := range data {
		data[i] = byte(i % 253)
	}
	buf.Write(data, 0) //nolint:errcheck
	r.count(t, 10)

	hostTrafficBefore := r.plat.Server.Fabric.Traffic(1, 0)
	devTrafficBefore := r.plat.Server.Fabric.Traffic(1, 2)

	cp2, snap, err := Migrate(r.cp, MigrateOptions{DeviceTo: 2, Path: "/snap/mig"})
	if err != nil {
		t.Fatal(err)
	}
	if cp2.DeviceNode() != 2 {
		t.Fatalf("process on %v after migration", cp2.DeviceNode())
	}
	// The local store moved device-to-device, not through the host.
	devMoved := r.plat.Server.Fabric.Traffic(1, 2) - devTrafficBefore
	if devMoved < int64(simclock.MiB) {
		t.Errorf("device-to-device traffic %d, want >= 1 MiB local store", devMoved)
	}
	// The context still goes through the host (BLCR writes there), but the
	// local store must not be doubled onto the host link.
	hostMoved := r.plat.Server.Fabric.Traffic(1, 0) - hostTrafficBefore
	if hostMoved > snap.Report.SnapshotBytes+2*int64(simclock.MiB) {
		t.Errorf("host link moved %d bytes; local store should have bypassed it", hostMoved)
	}
	// The migrated card no longer holds the staged local store files.
	if files := r.plat.Device(2).FS.List("/snap/mig/"); len(files) != 0 {
		t.Errorf("staged local store not cleaned up: %v", files)
	}

	back := make([]byte, len(data))
	if err := buf.Read(back, 0); err != nil {
		t.Fatal(err)
	}
	for i := range back {
		if back[i] != data[i] {
			t.Fatalf("buffer corrupted at %d after migration", i)
		}
	}
	if got := r.count(t, 30); got != refSum(30) {
		t.Errorf("post-migration count = %d, want %d", got, refSum(30))
	}
}

func TestMigrateToSameDeviceRejected(t *testing.T) {
	r := newRig(t, "core_selfmig", 1)
	if _, _, err := Migrate(r.cp, MigrateOptions{DeviceTo: 1, Path: "/snap/self"}); err == nil {
		t.Fatal("migration to the same device must fail")
	}
}

func TestFullApplicationCheckpointRestart(t *testing.T) {
	r := newRig(t, "core_appcr", 1)
	buf, _ := r.cp.CreateBuffer(256 * 1024)
	data := make([]byte, 256*1024)
	for i := range data {
		data[i] = byte(i % 41)
	}
	buf.Write(data, 0) //nolint:errcheck
	r.count(t, 40)     // counter now at 40

	app := NewApp(r.plat, r.cp)
	report, err := app.Checkpoint("/snap/appcr")
	if err != nil {
		t.Fatal(err)
	}
	if report.HostCapture <= 0 || report.Offload.Capture <= 0 || report.Total() <= 0 {
		t.Errorf("checkpoint report: %+v", report)
	}
	if report.HostSnapshotBytes <= 0 {
		t.Error("host snapshot empty")
	}

	// The original run continues to 100 — this is the reference result.
	want := r.count(t, 100)
	if want != refSum(100) {
		t.Fatalf("reference run wrong: %d", want)
	}

	// Failure: the whole application dies.
	r.host.Terminate()
	waitFor(t, func() bool {
		_, err := coi.DaemonAt(r.plat, 1).Lookup(r.cp.ID())
		return err != nil
	})

	// Restart from the snapshot: the counter must be back at 40.
	app2, host2, rreport, err := RestartApp(r.plat, "/snap/appcr")
	if err != nil {
		t.Fatal(err)
	}
	defer host2.Terminate()
	if rreport.HostRestore <= 0 || rreport.Offload.RestoreTotal() <= 0 {
		t.Errorf("restart report: %+v", rreport)
	}
	cp2 := app2.Proc()
	if cp2.State() != coi.StateActive {
		t.Fatalf("restored handle state %v", cp2.State())
	}
	// Buffer content restored.
	pls := cp2.Pipelines()
	if len(pls) != 1 {
		t.Fatalf("restored app has %d pipelines", len(pls))
	}
	bufs := cp2.Buffers()
	if len(bufs) != 1 {
		t.Fatalf("restored app has %d buffers", len(bufs))
	}
	back := make([]byte, len(data))
	if err := bufs[0].Read(back, 0); err != nil {
		t.Fatal(err)
	}
	for i := range back {
		if back[i] != data[i] {
			t.Fatalf("restored buffer differs at %d", i)
		}
	}
	// Resume the computation from the checkpointed state to 100.
	args := make([]byte, 8)
	binary.BigEndian.PutUint64(args, 100)
	out, err := pls[0].RunFunction("count", args)
	if err != nil {
		t.Fatal(err)
	}
	if got := binary.BigEndian.Uint64(out); got != want {
		t.Errorf("restarted run = %d, want %d (checkpoint/restart is not transparent)", got, want)
	}
}

func TestDoubleCheckpointThenRestartFromEach(t *testing.T) {
	r := newRig(t, "core_twocp", 1)
	app := NewApp(r.plat, r.cp)
	r.count(t, 10)
	if _, err := app.Checkpoint("/snap/cp1"); err != nil {
		t.Fatal(err)
	}
	r.count(t, 20)
	if _, err := app.Checkpoint("/snap/cp2"); err != nil {
		t.Fatal(err)
	}
	want := r.count(t, 50)
	r.host.Terminate()
	time.Sleep(5 * time.Millisecond)

	for _, dir := range []string{"/snap/cp2", "/snap/cp1"} {
		app2, host2, _, err := RestartApp(r.plat, dir)
		if err != nil {
			t.Fatalf("restart from %s: %v", dir, err)
		}
		args := make([]byte, 8)
		binary.BigEndian.PutUint64(args, 50)
		out, err := app2.Proc().Pipelines()[0].RunFunction("count", args)
		if err != nil {
			t.Fatalf("restart from %s: %v", dir, err)
		}
		if got := binary.BigEndian.Uint64(out); got != want {
			t.Errorf("restart from %s = %d, want %d", dir, got, want)
		}
		host2.Terminate()
		time.Sleep(5 * time.Millisecond)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition never became true")
}

// TestOneHostTwoCards checkpoints an application that offloads to two
// coprocessors at once: one Snapshot per offload process, both captured
// around the same host snapshot (the paper's multi-coprocessor case in
// Section 4.1).
func TestOneHostTwoCards(t *testing.T) {
	coi.RegisterBinary(testBinary("core_twocards"))
	plat := platformtest.Start(t, platformtest.Options{Devices: 2})
	host := plat.Procs.Spawn("host_two", simnet.HostNode, plat.Host().Mem)
	tl := simclock.NewTimeline()

	var cps []*coi.Process
	var pls []*coi.Pipeline
	for dev := simnet.NodeID(1); dev <= 2; dev++ {
		cp, err := coi.CreateProcess(plat, host, tl, dev, "core_twocards")
		if err != nil {
			t.Fatal(err)
		}
		pl, err := cp.CreatePipeline()
		if err != nil {
			t.Fatal(err)
		}
		cps = append(cps, cp)
		pls = append(pls, pl)
	}
	for _, pl := range pls {
		if _, err := pl.RunFunction("count", makeCountArgs(12)); err != nil {
			t.Fatal(err)
		}
	}

	// Pause both, capture both (concurrently, as Fig 5's callback would
	// for each offload process), resume both.
	var snaps []*Snapshot
	for i, cp := range cps {
		s := NewSnapshot(fmt.Sprintf("/snap/two/%d", i), cp)
		if err := Pause(s); err != nil {
			t.Fatal(err)
		}
		snaps = append(snaps, s)
	}
	for _, s := range snaps {
		if err := s.Capture(CaptureOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	for _, s := range snaps {
		if err := Wait(s); err != nil {
			t.Fatal(err)
		}
		if err := Resume(s); err != nil {
			t.Fatal(err)
		}
	}
	for _, pl := range pls {
		out, err := pl.RunFunction("count", makeCountArgs(24))
		if err != nil {
			t.Fatal(err)
		}
		if got := decodeU64(out); got != refSum(24) {
			t.Errorf("two-card result %d, want %d", got, refSum(24))
		}
	}
}
