// Package stream defines the contracts between snapshot producers/consumers
// (the BLCR-equivalent checkpointer) and the storage transports (Snapify-IO,
// the NFS variants, scp, and the local file systems).
//
// A transport moves blob chunks and reports, per chunk, the virtual-time
// cost of each of its internal stages plus whether those stages overlap
// with the producer (pipelined) or serialize against it. The checkpointer
// composes its own page-walk stage with the transport's stages through a
// simclock.PipelineAccum, so end-to-end checkpoint and restart times emerge
// from the same per-stage constants for every storage backend — which is
// exactly the comparison Tables 3 and 4 of the paper make.
package stream

import (
	"snapify/internal/blob"
	"snapify/internal/simclock"
)

// Cost is the virtual cost of moving one chunk through a transport.
type Cost struct {
	// Stages holds the per-stage durations for this chunk, in data-path
	// order (e.g. socket copy, RDMA, file-system write).
	Stages []simclock.Duration
	// Serial, when true, means the stages do not overlap with the producer
	// or with each other (e.g. a synchronous NFS RPC per write), so the
	// chunk's total cost is the sum of all stages with no pipelining.
	Serial bool
}

// Add returns the plain sum of the stage durations.
func (c Cost) Add() simclock.Duration {
	var d simclock.Duration
	for _, s := range c.Stages {
		d += s
	}
	return d
}

// Sink receives a snapshot stream.
type Sink interface {
	// WriteBlob appends one chunk and returns its transport cost.
	WriteBlob(b blob.Blob) (Cost, error)
	// Close finalizes the stream (makes the file visible, sends EOF).
	Close() error
	// Abort discards the partial stream.
	Abort()
}

// Source produces a snapshot stream.
type Source interface {
	// Next returns the next chunk of at most max bytes, with its transport
	// cost, or io.EOF after the last chunk.
	Next(max int64) (blob.Blob, Cost, error)
	// Size returns the total stream size in bytes.
	Size() int64
	// Close releases the source.
	Close() error
}

// Watermarked is implemented by sinks that track a durability watermark:
// Acked returns how many bytes of the stream the remote end has
// acknowledged as written, in order, with no gaps. After a transport
// fault, a writer may resume from this offset instead of starting over.
type Watermarked interface {
	Acked() int64
}

// Detacher is implemented by sinks that can part with a shared remote
// assembly without poisoning it: Detach abandons this transport leg but
// leaves the bytes already acknowledged in place, so a successor stream
// opened over the remaining range completes the same file. Contrast
// Abort, which discards the whole assembly.
type Detacher interface {
	Detach()
}

// Flusher is implemented by sinks that pipeline writes internally (keeping
// chunks in flight across WriteBlob calls, like a multi-slot Snapify-IO
// stream) and can drain the in-flight tail. Flush blocks until every
// buffered chunk is acknowledged and returns the cost of that remaining
// work; callers that account per-chunk costs should Observe it before
// Close.
type Flusher interface {
	Flush() (Cost, error)
}

// Observe feeds one chunk's producer-side stages plus the transport cost
// into the accumulator, honoring the transport's Serial flag.
func Observe(acc *simclock.PipelineAccum, c Cost, producerStages ...simclock.Duration) {
	all := make([]simclock.Duration, 0, len(producerStages)+len(c.Stages))
	all = append(all, producerStages...)
	all = append(all, c.Stages...)
	if c.Serial {
		acc.SerialObserve(all...)
		return
	}
	acc.Observe(all...)
}
