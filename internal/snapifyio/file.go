package snapifyio

import (
	"fmt"
	"io"

	"snapify/internal/blob"
	"snapify/internal/scif"
	"snapify/internal/simclock"
	"snapify/internal/simnet"
	"snapify/internal/stream"
)

// File is a Snapify-IO handle, the analogue of the UNIX file descriptor
// snapifyio_open returns. A Write-mode file implements stream.Sink; a
// Read-mode file implements stream.Source. Chunk costs report the three
// pipeline stages (local copy, RDMA, remote file system) so the consumer
// composes them with its own stages.
type File struct {
	node    simnet.NodeID
	target  simnet.NodeID
	mode    Mode
	ep      *scif.Endpoint
	staging *slot
	bufSize int64
	model   *simclock.Model
	size    int64

	// pending is fixed overhead (open handshake) charged on the next chunk.
	pending simclock.Duration

	// read-mode chunk being doled out.
	current blob.Blob
	curOff  int64
	eof     bool

	closed bool
}

var (
	_ stream.Sink   = (*File)(nil)
	_ stream.Source = (*File)(nil)
)

// Mode returns the file's access mode.
func (f *File) Mode() Mode { return f.mode }

// Size returns the remote file size (read mode only).
func (f *File) Size() int64 { return f.size }

// localCopy is the user-process-to-staging (or back) stage on f's node.
func (f *File) localCopy(n int64) simclock.Duration {
	d := f.model.UnixSocketLatency
	if f.node.IsHost() {
		return d + f.model.HostMemcpy(n)
	}
	return d + f.model.PhiMemcpy(n)
}

// WriteBlob streams one chunk (at most the staging buffer size) to the
// remote file. Part of stream.Sink.
func (f *File) WriteBlob(b blob.Blob) (stream.Cost, error) {
	if f.closed {
		return stream.Cost{}, ErrFileClosed
	}
	if f.mode != Write {
		return stream.Cost{}, fmt.Errorf("snapifyio: write on %v-mode file", f.mode)
	}
	var stages [3]simclock.Duration
	err := b.ForEachChunk(f.bufSize, func(chunk blob.Blob) error {
		// Stage 1: user writes the socket; local handler fills the buffer.
		f.staging.WriteBlob(0, chunk)
		s1 := f.localCopy(chunk.Len()) + f.pending
		f.pending = 0

		// Notify the remote daemon and wait for the drain ack.
		w := &wire{}
		w.u8(msgChunkReady)
		w.i64(chunk.Len())
		if _, err := f.ep.Send(w.buf); err != nil {
			return err
		}
		raw, _, err := f.ep.Recv()
		if err != nil {
			return err
		}
		u, err := expect(raw, msgChunkAck)
		if err != nil {
			return err
		}
		if msg := u.str(); msg != "" {
			return &RemoteError{Node: f.target, Path: "", Msg: msg}
		}
		rdma := u.dur() + f.model.SCIFMsgLatency // notify + DMA
		fsWrite := u.dur()

		stages[0] += s1
		stages[1] += rdma
		stages[2] += fsWrite
		return nil
	})
	if err != nil {
		return stream.Cost{}, err
	}
	return stream.Cost{Stages: stages[:]}, nil
}

// Next returns up to max bytes of the remote file. Part of stream.Source.
func (f *File) Next(max int64) (blob.Blob, stream.Cost, error) {
	if f.closed {
		return blob.Blob{}, stream.Cost{}, ErrFileClosed
	}
	if f.mode != Read {
		return blob.Blob{}, stream.Cost{}, fmt.Errorf("snapifyio: read on %v-mode file", f.mode)
	}
	var cost stream.Cost
	if f.curOff >= f.current.Len() {
		if f.eof {
			return blob.Blob{}, stream.Cost{}, io.EOF
		}
		// Pull the next chunk through the staging buffer.
		w := &wire{}
		w.u8(msgPull)
		if _, err := f.ep.Send(w.buf); err != nil {
			return blob.Blob{}, stream.Cost{}, err
		}
		raw, _, err := f.ep.Recv()
		if err != nil {
			return blob.Blob{}, stream.Cost{}, err
		}
		u, err := expect(raw, msgChunkHere)
		if err != nil {
			return blob.Blob{}, stream.Cost{}, err
		}
		if msg := u.str(); msg != "" {
			return blob.Blob{}, stream.Cost{}, &RemoteError{Node: f.target, Path: "", Msg: msg}
		}
		n := u.i64()
		fsRead := u.dur()
		rdma := u.dur() + f.model.SCIFMsgLatency
		if n == 0 {
			f.eof = true
			return blob.Blob{}, stream.Cost{}, io.EOF
		}
		f.current = f.staging.SnapshotRange(0, n)
		f.curOff = 0
		// Stage 3: local handler copies buffer -> socket -> user. The read
		// path is request-response over the single staging buffer, so the
		// stages serialize — this is why device-to-host writes (whose host
		// file-system writeback overlaps the PCIe transfer) outrun
		// host-to-device reads in Section 7.
		cost = stream.Cost{
			Stages: []simclock.Duration{fsRead, rdma, f.localCopy(n) + f.pending},
			Serial: true,
		}
		f.pending = 0
	}
	n := max
	if rem := f.current.Len() - f.curOff; rem < n {
		n = rem
	}
	chunk := f.current.Slice(f.curOff, n)
	f.curOff += n
	return chunk, cost, nil
}

// Close finalizes the stream: in write mode the remote file becomes
// visible; in read mode resources are released.
func (f *File) Close() error {
	if f.closed {
		return nil
	}
	f.closed = true
	defer f.ep.Close() //nolint:errcheck // close releases the endpoint; the msgClose round-trip below carries the real error
	w := &wire{}
	w.u8(msgClose)
	if _, err := f.ep.Send(w.buf); err != nil {
		return err
	}
	raw, _, err := f.ep.Recv()
	if err != nil {
		return err
	}
	u, err := expect(raw, msgCloseResp)
	if err != nil {
		return err
	}
	if msg := u.str(); msg != "" {
		return &RemoteError{Node: f.target, Path: "", Msg: msg}
	}
	return nil
}

// Abort discards the stream; in write mode the partial remote file is
// dropped.
func (f *File) Abort() {
	if f.closed {
		return
	}
	f.closed = true
	w := &wire{}
	w.u8(msgAbort)
	f.ep.Send(w.buf) //nolint:errcheck // best effort: the remote handler also aborts on reset
	f.ep.Close()     //nolint:errcheck // abort path: dropping the connection is the abort signal
}
