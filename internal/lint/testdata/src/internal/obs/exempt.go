// Package obs is a golden fixture proving the rawprint analyzer exempts
// the rendering layer — packages whose import path ends in internal/obs,
// the one library layer allowed to format output for the terminal. No
// findings are expected anywhere in this file.
package obs

import "fmt"

// Render prints a rendered metrics table; legal only here.
func Render(table string) { fmt.Println(table) }
