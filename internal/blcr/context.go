// Package blcr reimplements, at the process-model level, the Berkeley Lab
// Checkpoint/Restart tool that MPSS ships for Xeon Phi native applications
// and that Snapify drives for offload processes.
//
// A checkpoint serializes a proc.Process into a *context file*: a header,
// a burst of small metadata records (process identity, threads, region
// table — BLCR's signature many-small-writes preamble, which is what makes
// plain NFS storage slow in Table 4), followed by each region's pages in
// large chunks. A restart parses the context file and rebuilds the process
// on a target node, subject to that node's memory budget — so restoring a
// 4 GiB snapshot onto a nearly-full card fails exactly the way the paper
// says local storage must (Section 3).
//
// The checkpointer is storage-agnostic: it writes to any stream.Sink and
// reads from any stream.Source, which is how Snapify-IO, the NFS variants,
// and the local file systems all plug in unchanged (the paper passes
// Snapify-IO's file descriptor straight to BLCR the same way, Section 6).
package blcr

import (
	"encoding/binary"
	"fmt"

	"snapify/internal/blob"
)

// Context-file record tags.
const (
	tagHeader uint16 = 0xB1C0 + iota
	tagProcMeta
	tagThread
	tagRegionMeta
	tagRegionPages
	tagTrailer
)

// formatVersion is the context-file version this package writes.
const formatVersion = 3

// magic identifies a context file.
const magic = "CR_CONTEXT"

// metaRecordSize pads small metadata records to BLCR-like sizes: the real
// tool emits dozens of sub-hundred-byte writes before the page loop.
const metaRecordSize = 96

// rec encodes one small metadata record as a literal blob: tag, length,
// then the payload strings/ints in a simple length-prefixed wire format.
type recEncoder struct{ buf []byte }

func (e *recEncoder) u16(v uint16) { e.buf = binary.BigEndian.AppendUint16(e.buf, v) }
func (e *recEncoder) u64(v uint64) { e.buf = binary.BigEndian.AppendUint64(e.buf, v) }
func (e *recEncoder) str(s string) {
	e.u64(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

func (e *recEncoder) record(tag uint16, fill func(*recEncoder)) blob.Blob {
	e.buf = e.buf[:0]
	e.u16(tag)
	fill(e)
	if len(e.buf) < metaRecordSize {
		e.buf = append(e.buf, make([]byte, metaRecordSize-len(e.buf))...)
	}
	// Length-prefix the whole record so the decoder can stream it.
	framed := binary.BigEndian.AppendUint64(nil, uint64(len(e.buf)))
	framed = append(framed, e.buf...)
	return blob.FromBytes(framed)
}

type recDecoder struct {
	buf []byte
	off int
}

func (d *recDecoder) u16() uint16 {
	v := binary.BigEndian.Uint16(d.buf[d.off:])
	d.off += 2
	return v
}

func (d *recDecoder) u64() uint64 {
	v := binary.BigEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

func (d *recDecoder) str() string {
	n := int(d.u64())
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s
}

// ErrBadContext reports a malformed or truncated context file.
type ErrBadContext struct{ Reason string }

func (e *ErrBadContext) Error() string { return "blcr: bad context file: " + e.Reason }

func badContext(format string, args ...any) error {
	return &ErrBadContext{Reason: fmt.Sprintf(format, args...)}
}
