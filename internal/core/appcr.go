package core

import (
	"errors"
	"fmt"
	"sync"

	"snapify/internal/blcr"
	"snapify/internal/coi"
	"snapify/internal/platform"
	"snapify/internal/proc"
	"snapify/internal/simclock"
	"snapify/internal/simnet"
	"snapify/internal/stream"
)

// App wires a whole offload application — host process plus offload
// process — into checkpoint-and-restart, following the paper's Fig 5: a
// Snapify-aware callback registered with the host-side BLCR pauses and
// captures the offload process around the host snapshot, and on restart
// the callback's other branch restores the offload process.
type App struct {
	plat   *platform.Platform
	client *blcr.Client

	mu      sync.Mutex
	cp      *coi.Process
	dir     string
	last    *CheckpointReport
	capture CaptureOptions
	restore RestoreOptions
}

// HostContextFileName is the host process's BLCR context file inside a
// snapshot directory.
const HostContextFileName = "context_host"

// CheckpointReport is the timing of one full-application checkpoint.
type CheckpointReport struct {
	// Offload is the offload-side snapshot breakdown.
	Offload Report
	// HostCapture is the host process's BLCR checkpoint time.
	HostCapture simclock.Duration
	// HostSnapshotBytes is the host context-file size.
	HostSnapshotBytes int64
}

// Total returns the end-to-end checkpoint time: the pause, then the host
// and device captures, which overlap (Fig 10a), then the resume.
func (r *CheckpointReport) Total() simclock.Duration {
	return r.Offload.PauseTotal() +
		simclock.Max(r.HostCapture, r.Offload.Capture) +
		r.Offload.Resume
}

// RestartReport is the timing of one full-application restart.
type RestartReport struct {
	// HostRestore is the host process's BLCR restart time.
	HostRestore simclock.Duration
	// Offload is the offload-side restore breakdown.
	Offload Report
}

// Total returns the end-to-end restart time; the host restores first, then
// the offload process (Fig 10c's stacked phases).
func (r *RestartReport) Total() simclock.Duration {
	return r.HostRestore + r.Offload.RestoreTotal() + r.Offload.Resume
}

// NewApp registers the Snapify checkpoint callback (snapify_blcr_callback
// in Fig 5a) for the application owning cp.
func NewApp(plat *platform.Platform, cp *coi.Process) *App {
	a := &App{
		plat:   plat,
		client: blcr.NewClient(plat.CR, cp.HostProc()),
		cp:     cp,
	}
	a.client.RegisterCallback(a.callback)
	return a
}

// Proc returns the application's current offload handle (it changes across
// restores).
func (a *App) Proc() *coi.Process {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.cp
}

// Client exposes the BLCR client (the cr_checkpoint command-line tool
// signals through it).
func (a *App) Client() *blcr.Client { return a.client }

// SetOptions configures how the callback captures and restores the
// offload process — store-backed data paths, parallel streams, retry,
// replication targets. The zero values (the default) are the plain
// serial paths.
func (a *App) SetOptions(capture CaptureOptions, restore RestoreOptions) error {
	if err := capture.validate(); err != nil {
		return err
	}
	if err := restore.validate(); err != nil {
		return err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.capture, a.restore = capture, restore
	return nil
}

// Options returns the callback's configured capture and restore options.
func (a *App) Options() (CaptureOptions, RestoreOptions) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.capture, a.restore
}

// callback is Fig 5a: pause + capture the offload process, snapshot the
// host process, then either finish the capture (continue) or restore the
// offload process (restart).
func (a *App) callback(req *blcr.Request) error {
	a.mu.Lock()
	cp, dir := a.cp, a.dir
	captureOpts, restoreOpts := a.capture, a.restore
	a.mu.Unlock()

	var snap *Snapshot
	if !req.Restarting() {
		snap = NewSnapshot(dir, cp)
		if err := snap.Pause(); err != nil {
			return err
		}
		if err := snap.Capture(captureOpts); err != nil {
			return err
		}
	}

	rc, err := req.Checkpoint()
	if err != nil {
		return err
	}
	switch rc {
	case blcr.RcContinue:
		if err := snap.Wait(); err != nil {
			return err
		}
		if err := snap.Resume(); err != nil {
			return err
		}
		a.mu.Lock()
		a.last = &CheckpointReport{
			Offload:           snap.Report,
			HostCapture:       req.Stats().Duration,
			HostSnapshotBytes: req.Stats().Bytes,
		}
		a.mu.Unlock()
		return nil
	case blcr.RcRestart:
		// The restored world: the offload process existed as a snapshot
		// when the host snapshot was taken. Recreate it on the device the
		// handle names (GetDeviceID in Fig 5a) and resume.
		snap = NewSnapshot(dir, cp)
		if _, err := snap.Restore(cp.DeviceNode(), restoreOpts); err != nil {
			return err
		}
		if err := snap.Resume(); err != nil {
			return err
		}
		a.mu.Lock()
		a.last = &CheckpointReport{Offload: snap.Report}
		a.mu.Unlock()
		return nil
	default:
		return fmt.Errorf("core: unexpected cr_checkpoint rc %d", rc)
	}
}

// Checkpoint takes a coordinated snapshot of the whole application into
// dir: the offload process via Snapify, the host process via BLCR, both
// through the registered callback.
func (a *App) Checkpoint(dir string) (*CheckpointReport, error) {
	a.mu.Lock()
	a.dir = dir
	a.mu.Unlock()

	sink, err := stream.NewHostFSSink(a.plat.Host().FS, dir+"/"+HostContextFileName)
	if err != nil {
		return nil, err
	}
	if _, err := a.client.RequestCheckpoint(sink); err != nil {
		return nil, err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.last == nil {
		return nil, errors.New("core: checkpoint callback produced no report")
	}
	return a.last, nil
}

// RestartApp restores a whole application from a snapshot directory with
// the plain serial restore path; see RestartAppOptions.
func RestartApp(plat *platform.Platform, dir string) (*App, *proc.Process, *RestartReport, error) {
	return RestartAppOptions(plat, dir, RestoreOptions{})
}

// RestartAppOptions restores a whole application from a snapshot
// directory: the host process first (BLCR), then — through the
// callback's restart branch — the offload process, restored with the
// given options (a store-resident snapshot needs Store.Enabled here).
// It returns the new App, the restored host process, and the timing
// report. The restored host process's step gate is released before
// return.
func RestartAppOptions(plat *platform.Platform, dir string, restore RestoreOptions) (*App, *proc.Process, *RestartReport, error) {
	if err := restore.validate(); err != nil {
		return nil, nil, nil, err
	}
	src, err := stream.NewHostFSSource(plat.Host().FS, dir+"/"+HostContextFileName)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("core: opening host context: %w", err)
	}
	hostProc, hostStats, err := plat.CR.Restart(src, func(img *blcr.Image) (*proc.Process, error) {
		return plat.Procs.Spawn(img.Name, simnet.HostNode, plat.Host().Mem), nil
	})
	if err != nil {
		return nil, nil, nil, fmt.Errorf("core: restoring host process: %w", err)
	}

	meta, err := LoadHandleState(hostProc)
	if err != nil {
		hostProc.Terminate()
		return nil, nil, nil, err
	}
	tl := simclock.NewTimeline()
	cp := coi.AttachRestored(plat, hostProc, tl, meta)

	a := &App{plat: plat, client: blcr.NewClient(plat.CR, hostProc), cp: cp, dir: dir, restore: restore}
	a.client.RegisterCallback(a.callback)

	// Execution resumes inside cr_checkpoint: the callback's restart
	// branch restores the offload process.
	if err := a.client.ResumeRestarted(); err != nil {
		hostProc.Terminate()
		return nil, nil, nil, err
	}
	hostProc.ResumeSteps()

	a.mu.Lock()
	report := &RestartReport{HostRestore: hostStats.Duration, Offload: a.last.Offload}
	a.mu.Unlock()
	tl.Advance(hostStats.Duration)
	return a, hostProc, report, nil
}
