package proc

import (
	"fmt"
	"sync"

	"snapify/internal/simnet"
)

// Table is the process table of a Xeon Phi server: it allocates PIDs and
// resolves them, the way the snapify command-line utility resolves the PID
// of a host process (Section 5).
type Table struct {
	mu      sync.Mutex
	nextPID int
	procs   map[int]*Process
}

// NewTable returns an empty process table.
func NewTable() *Table {
	return &Table{nextPID: 1000, procs: make(map[int]*Process)}
}

// Spawn creates a running process on the given node.
func (t *Table) Spawn(name string, node simnet.NodeID, budget Budget) *Process {
	t.mu.Lock()
	pid := t.nextPID
	t.nextPID++
	t.mu.Unlock()

	p := New(name, pid, node, budget)
	t.mu.Lock()
	t.procs[pid] = p
	t.mu.Unlock()
	p.OnExit(func(p *Process, _ bool) {
		t.mu.Lock()
		delete(t.procs, p.PID())
		t.mu.Unlock()
	})
	return p
}

// Lookup resolves a PID.
func (t *Table) Lookup(pid int) (*Process, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	p, ok := t.procs[pid]
	if !ok {
		return nil, fmt.Errorf("proc: no such process %d", pid)
	}
	return p, nil
}

// Count returns the number of live processes.
func (t *Table) Count() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.procs)
}
