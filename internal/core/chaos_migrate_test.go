package core

// Chaos cases for live migration: the host Snapify-IO daemon crashes in
// the middle of a pre-copy round and in the middle of the final delta
// capture. The contract extends the store tier's atomic-or-retryable rule
// with live migration's own invariants: the source process is never
// harmed (it was running during rounds and gets resumed after a failed
// switch-over), Abort leaves no orphan staged chunks on the destination
// and no pinned upload in the store, and a retried migration restores
// byte-identically. scripts/verify.sh runs these twice under -race via
// the TestChaos filter.

import (
	"testing"

	"snapify/internal/coi"
	"snapify/internal/faultinject"
	"snapify/internal/simnet"
)

// chaosMigrateOpts routes a live migration through the chaos-store data
// path: small chunks, striped streams, and a retry budget on the final
// capture.
func chaosMigrateOpts(path string) MigrateOptions {
	o := MigrateOptions{DeviceTo: 2, Path: path}
	o.Capture = chaosStoreOpts()
	o.Restore = RestoreOptions{Streams: 2, ChunkBytes: 32 * 1024, Retry: RetryPolicy{MaxAttempts: 4}}
	o.Restore.Store.Enabled = true
	o.Precopy = PrecopyOptions{MaxRounds: 3}
	return o
}

// assertNoStaging checks the destination daemon holds no staged chunks.
func assertNoStaging(t *testing.T, r *rig, dev simnet.NodeID) {
	t.Helper()
	if dst := coi.DaemonAt(r.plat, dev); len(dst.Staging().Paths()) != 0 {
		t.Errorf("orphan staged chunks on %v: %v", dev, dst.Staging().Paths())
	}
}

// TestChaosMigratePrecopyRoundCrash kills the host Snapify-IO daemon in
// the middle of the first pre-copy round. Whatever the round's outcome,
// the source process — which was never paused — keeps computing, and an
// Abort leaves the destination staging empty and the store consistent.
// A retried live migration then succeeds with byte-identical state.
func TestChaosMigratePrecopyRoundCrash(t *testing.T) {
	r := newRig(t, "core_chaos_mig", 2)
	r.count(t, 20)
	opts := chaosMigrateOpts("/snap/chmig")
	m, err := NewMigration(r.cp, opts)
	if err != nil {
		t.Fatal(err)
	}

	arm(r, faultinject.Fault{Site: faultinject.SiteDaemon, Key: simnet.HostNode.String(), Kind: faultinject.Crash, Nth: 2})
	rec, _, rerr := m.Round()
	disarm(r)
	if rerr != nil {
		t.Logf("pre-copy round failed cleanly: %v", rerr)
	} else {
		t.Logf("pre-copy round survived the crash: shipped %d of %d bytes", rec.ShippedBytes, rec.ImageBytes)
	}
	m.Abort()

	// The source was running the whole time: still active, still correct.
	if st := r.cp.State(); st != coi.StateActive {
		t.Fatalf("source process state %v after aborted round, want active", st)
	}
	if got := r.count(t, 40); got != refSum(40) {
		t.Errorf("source computation after aborted round = %d, want %d", got, refSum(40))
	}
	assertNoStaging(t, r, 2)
	assertNoPartials(t, r.plat)
	// The aborted upload is unpinned: a GC reclaims anything the crashed
	// round left behind and the refcount graph stays sound.
	assertStoreConsistent(t, r)

	// Retry from scratch: the full live migration lands the process on
	// the other card with identical bytes.
	cp2, snap, err := Migrate(r.cp, opts)
	if err != nil {
		t.Fatalf("retried live migration: %v", err)
	}
	if cp2.DeviceNode() != 2 {
		t.Errorf("process on %v after retried migration, want mic1", cp2.DeviceNode())
	}
	if snap.Report.Downtime <= 0 || len(snap.Report.Precopy) == 0 {
		t.Errorf("retried migration report incomplete: downtime %v, %d rounds", snap.Report.Downtime, len(snap.Report.Precopy))
	}
	assertNoStaging(t, r, 2)
	if got := r.count(t, 60); got != refSum(60) {
		t.Errorf("computation after retried migration = %d, want %d", got, refSum(60))
	}
}

// TestChaosMigrateFinalDeltaCrash lets the pre-copy rounds complete
// cleanly, then kills the host Snapify-IO daemon during the final paused
// delta capture with no retry budget. The switch-over must fail cleanly:
// the source process is resumed on its original card and computes on,
// Abort clears the staged rounds, and a retried migration (with a retry
// budget back in place) restores byte-identically.
func TestChaosMigrateFinalDeltaCrash(t *testing.T) {
	r := newRig(t, "core_chaos_mig", 2)
	r.count(t, 20)
	opts := chaosMigrateOpts("/snap/chfinal")
	opts.Capture.Retry = RetryPolicy{MaxAttempts: 1} // the crash must surface
	m, err := NewMigration(r.cp, opts)
	if err != nil {
		t.Fatal(err)
	}
	iters := uint64(20)
	for {
		_, done, err := m.Round()
		if err != nil {
			t.Fatalf("clean pre-copy round: %v", err)
		}
		if done {
			break
		}
		iters += 10
		r.count(t, iters)
	}

	// Dirty the image after the last round so the switch-over has a real
	// final delta to ship — that shipment is what the crash interrupts.
	iters += 10
	r.count(t, iters)
	arm(r, faultinject.Fault{Site: faultinject.SiteDaemon, Key: simnet.HostNode.String(), Kind: faultinject.Crash, Nth: 1})
	_, ferr := m.Finish()
	disarm(r)
	if ferr == nil {
		t.Fatal("Finish must fail when the IO daemon crashes with no retry budget")
	}
	t.Logf("switch-over failed cleanly: %v", ferr)

	// A failed migration leaves the source unharmed: resumed, on its
	// original card, computation intact.
	if r.cp.DeviceNode() != 1 {
		t.Fatalf("source on %v after failed switch-over, want mic0", r.cp.DeviceNode())
	}
	if st := r.cp.State(); st != coi.StateActive {
		t.Fatalf("source process state %v after failed switch-over, want active", st)
	}
	iters += 10
	if got := r.count(t, iters); got != refSum(iters) {
		t.Errorf("source computation after failed switch-over = %d, want %d", got, refSum(iters))
	}

	m.Abort()
	assertNoStaging(t, r, 2)
	assertNoPartials(t, r.plat)
	assertStoreConsistent(t, r)

	// Retry with the retry budget restored: byte-identical on the new card.
	opts.Capture.Retry = RetryPolicy{MaxAttempts: 4}
	cp2, snap, err := Migrate(r.cp, opts)
	if err != nil {
		t.Fatalf("retried migration: %v", err)
	}
	if cp2.DeviceNode() != 2 {
		t.Errorf("process on %v after retried migration, want mic1", cp2.DeviceNode())
	}
	if snap.Report.Downtime <= 0 {
		t.Error("retried migration recorded no downtime")
	}
	assertNoStaging(t, r, 2)
	iters += 10
	if got := r.count(t, iters); got != refSum(iters) {
		t.Errorf("computation after retried migration = %d, want %d", got, refSum(iters))
	}
}
