package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The golden fixtures under testdata/src/<analyzer>/ seed one violation
// per `// want "substr"` comment; running the named analyzer over the
// fixture must produce exactly those findings, in addition to one
// amended finding per line that ends with a bare //nolint directive
// (which, by design, does not suppress).

// want is one expected finding.
type want struct {
	file string
	line int
	sub  string
}

var wantRe = regexp.MustCompile(`// want "([^"]+)"`)

// fixtureWants scans every .go file of a fixture directory for the two
// expectation forms.
func fixtureWants(t *testing.T, dir, analyzer string) []want {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var wants []want
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("reading fixture: %v", err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			if m := wantRe.FindStringSubmatch(line); m != nil {
				wants = append(wants, want{file: path, line: i + 1, sub: m[1]})
			}
			if strings.HasSuffix(strings.TrimSpace(line), "//nolint:"+analyzer) {
				wants = append(wants, want{file: path, line: i + 1,
					sub: "suppresses only with a justification"})
			}
		}
	}
	return wants
}

func loadFixture(t *testing.T, rel string) (*Loader, *Package) {
	t.Helper()
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatalf("module root: %v", err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkg, err := l.LoadDir(filepath.Join("internal/lint/testdata/src", rel))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", rel, err)
	}
	if pkg == nil {
		t.Fatalf("fixture %s has no Go files", rel)
	}
	for _, terr := range pkg.TypeErrors {
		t.Errorf("fixture %s does not type-check: %v", rel, terr)
	}
	return l, pkg
}

func analyzerByName(t *testing.T, name string) *Analyzer {
	t.Helper()
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	t.Fatalf("no analyzer named %q", name)
	return nil
}

func TestGolden(t *testing.T) {
	for _, name := range []string{"errcheck", "wallclock", "mutexblock", "goroutineleak", "paniclib", "rawprint", "faultgate", "storegate", "maporder", "spanleak", "lockorder", "closeleak"} {
		t.Run(name, func(t *testing.T) {
			_, pkg := loadFixture(t, name)
			findings := Run([]*Package{pkg}, []*Analyzer{analyzerByName(t, name)})
			wants := fixtureWants(t, pkg.Dir, name)
			checkFindings(t, findings, wants)
		})
	}
}

func checkFindings(t *testing.T, findings []Finding, wants []want) {
	t.Helper()
	matched := make([]bool, len(findings))
	for _, w := range wants {
		found := false
		for i, f := range findings {
			if !matched[i] && f.File == w.file && f.Line == w.line && strings.Contains(f.Message, w.sub) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing finding %s:%d containing %q\n%s", w.file, w.line, w.sub, sourceContext(w.file, w.line))
		}
	}
	for i, f := range findings {
		if !matched[i] {
			t.Errorf("unexpected finding %s:%d: [%s] %s\n%s", f.File, f.Line, f.Analyzer, f.Message, sourceContext(f.File, f.Line))
		}
	}
}

// sourceContext renders the fixture lines around a mismatch, with the
// offending line marked — a missing or unexpected finding is diagnosable
// from the test log alone, without opening the fixture.
func sourceContext(file string, line int) string {
	data, err := os.ReadFile(file)
	if err != nil {
		return "\t(no source context: " + err.Error() + ")"
	}
	lines := strings.Split(string(data), "\n")
	lo, hi := line-3, line+3
	if lo < 1 {
		lo = 1
	}
	if hi > len(lines) {
		hi = len(lines)
	}
	var b strings.Builder
	for i := lo; i <= hi; i++ {
		mark := "  "
		if i == line {
			mark = "> "
		}
		fmt.Fprintf(&b, "\t%s%4d | %s\n", mark, i, lines[i-1])
	}
	return strings.TrimRight(b.String(), "\n")
}

// TestWallclockExemptsSimclock proves the one sanctioned wall-clock
// package (an import path ending in internal/simclock) is skipped.
func TestWallclockExemptsSimclock(t *testing.T) {
	_, pkg := loadFixture(t, "internal/simclock")
	if findings := Run([]*Package{pkg}, []*Analyzer{analyzerByName(t, "wallclock")}); len(findings) != 0 {
		t.Fatalf("expected no findings in the simclock fixture, got %v", findings)
	}
}

// TestRawPrintExemptsObs proves the rendering layer (an import path
// ending in internal/obs) is the one internal package allowed to print.
func TestRawPrintExemptsObs(t *testing.T) {
	_, pkg := loadFixture(t, "internal/obs")
	if findings := Run([]*Package{pkg}, []*Analyzer{analyzerByName(t, "rawprint")}); len(findings) != 0 {
		t.Fatalf("expected no findings in the obs fixture, got %v", findings)
	}
}

// TestFaultgateExemptsChokePoints proves the real fault-injection choke
// points — the packages that implement the hooks — pass the gate.
func TestFaultgateExemptsChokePoints(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatalf("module root: %v", err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	for _, rel := range []string{"internal/simnet", "internal/scif", "internal/snapifyio", "internal/coi", "internal/snapstore"} {
		pkg, err := l.LoadDir(rel)
		if err != nil {
			t.Fatalf("loading %s: %v", rel, err)
		}
		if findings := Run([]*Package{pkg}, []*Analyzer{analyzerByName(t, "faultgate")}); len(findings) != 0 {
			t.Errorf("expected no findings in %s, got %v", rel, findings)
		}
	}
}

// TestStoregateExemptsSnapstore proves the snapshot store itself — the
// one sanctioned digest site — passes the gate, and that the rest of the
// tree computes no chunk digests outside it.
func TestStoregateExemptsSnapstore(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatalf("module root: %v", err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkg, err := l.LoadDir("internal/snapstore")
	if err != nil {
		t.Fatalf("loading internal/snapstore: %v", err)
	}
	if findings := Run([]*Package{pkg}, []*Analyzer{analyzerByName(t, "storegate")}); len(findings) != 0 {
		t.Errorf("expected no findings in internal/snapstore, got %v", findings)
	}
}

// TestAllowlistGolden runs the errcheck fixture through testdata/allow.txt:
// the entry for Allowlisted's finding must drop it (and be marked used),
// the decoy entry must be reported unused, and every other finding must
// survive.
func TestAllowlistGolden(t *testing.T) {
	_, pkg := loadFixture(t, "errcheck")
	findings := Run([]*Package{pkg}, []*Analyzer{analyzerByName(t, "errcheck")})

	al, err := ParseAllowlist(filepath.Join("testdata", "allow.txt"))
	if err != nil {
		t.Fatalf("parsing allowlist: %v", err)
	}
	kept := al.Filter(findings)
	if len(kept) != len(findings)-1 {
		t.Fatalf("allowlist dropped %d findings, want 1", len(findings)-len(kept))
	}
	for _, f := range kept {
		if strings.Contains(f.Message, "errcheck.allowme") {
			t.Errorf("allowlisted finding survived: %s:%d %s", f.File, f.Line, f.Message)
		}
	}
	unused := al.Unused()
	if len(unused) != 1 || unused[0].Analyzer != "wallclock" {
		t.Fatalf("unused entries = %v, want exactly the wallclock decoy", unused)
	}
}

// TestFindingJSON pins the JSON field names the -json mode emits, so CI
// diffs stay stable across refactors.
func TestFindingJSON(t *testing.T) {
	_, pkg := loadFixture(t, "paniclib")
	findings := Run([]*Package{pkg}, []*Analyzer{analyzerByName(t, "paniclib")})
	if len(findings) == 0 {
		t.Fatal("paniclib fixture produced no findings")
	}
	raw, err := json.Marshal(findings[0])
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	for _, key := range []string{"analyzer", "file", "line", "col", "message"} {
		if _, ok := m[key]; !ok {
			t.Errorf("JSON finding lacks %q field: %s", key, raw)
		}
	}
	if m["analyzer"] != "paniclib" {
		t.Errorf("analyzer field = %v, want paniclib", m["analyzer"])
	}
}
