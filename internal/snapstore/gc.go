package snapstore

import (
	"fmt"
	"sort"
	"strings"

	"snapify/internal/faultinject"
	"snapify/internal/simclock"
)

// GCStats reports one GC run.
type GCStats struct {
	ChunksScanned   int
	ChunksReclaimed int
	BytesReclaimed  int64
	TmpSwept        int // stale mid-commit temp manifests removed
	ChunksLive      int
}

// GC reclaims unreferenced chunks: mark every digest reachable from a
// committed manifest or a pending upload, sweep chunk files outside the
// mark set, and remove stale mid-commit temp manifests. at positions
// the emitted store_gc span on the host timeline.
//
// The sweep consults the fault injector once per examined chunk
// (SiteStore, key "gc"); a Crash fault abandons the sweep where it
// stands and returns ErrInterrupted. That is always safe: the sweep
// only ever deletes garbage, so a re-run converges on the same end
// state.
func (st *Store) GC(at simclock.Duration) (GCStats, simclock.Duration, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	var gs GCStats
	live := st.referencedLocked()
	dur := st.model.HostFSOpLatency // directory scan
	var sweepErr error
	// The span is open for the whole run and closed on every path out —
	// including an injected-crash abandon — so an interrupted sweep still
	// shows up on the timeline with whatever it reclaimed.
	sp := st.obs.TracerOf().Track("host", "snapstore").BeginAt(0, "store_gc", at, nil)
	defer func() {
		sp.SetArg("chunks_reclaimed", int64(gs.ChunksReclaimed))
		sp.SetArg("bytes_reclaimed", gs.BytesReclaimed)
		sp.SetArg("chunks_live", int64(gs.ChunksLive))
		sp.EndAt(at + dur)
	}()
	for _, mp := range st.fs.List(ManifestPrefix) {
		if !strings.HasSuffix(mp, TmpSuffix) {
			continue
		}
		// A temp manifest only outlives its commit if the daemon died
		// between the temp and final writes; the snapshot is absent, so
		// the temp is pure garbage.
		if err := st.fs.Remove(mp); err == nil {
			gs.TmpSwept++
			dur += st.model.HostFSOpLatency
		}
	}
sweep:
	for _, prefix := range []string{ChunkPrefix, ColdPrefix} {
		for _, cp := range st.fs.List(prefix) {
			gs.ChunksScanned++
			if f := st.fire("gc"); f != nil && f.Kind == faultinject.Crash {
				sweepErr = fmt.Errorf("%w: gc sweep after %d chunks", ErrInterrupted, gs.ChunksScanned)
				break sweep
			}
			digest := strings.TrimPrefix(cp, prefix)
			if live[digest] {
				gs.ChunksLive++
				continue
			}
			n, err := st.fs.Size(cp)
			if err != nil {
				continue
			}
			if err := st.fs.Remove(cp); err != nil {
				continue
			}
			if prefix == ChunkPrefix {
				st.dropHostLocked(digest, n)
			}
			st.dropCacheLocked(digest)
			gs.ChunksReclaimed++
			gs.BytesReclaimed += n
			dur += st.model.HostFSOpLatency
		}
	}
	st.gcChunks.Add(int64(gs.ChunksReclaimed))
	st.gcBytes.Add(gs.BytesReclaimed)
	return gs, dur, sweepErr
}

// Verify is the store's fsck. It re-digests every chunk against its
// name, decodes every manifest, and checks the reference graph:
// referenced chunks exist, parents exist, and every refcount is at
// least one-for-the-holder plus one per child. It returns a description
// of each problem found (empty means clean).
func (st *Store) Verify() ([]string, simclock.Duration) {
	st.mu.Lock()
	defer st.mu.Unlock()
	var problems []string
	var dur simclock.Duration
	for _, prefix := range []string{ChunkPrefix, ColdPrefix} {
		for _, cp := range st.fs.List(prefix) {
			b, d, err := st.fs.ReadFile(cp)
			dur += d
			if err != nil {
				problems = append(problems, fmt.Sprintf("chunk %s: %v", cp, err))
				continue
			}
			want := strings.TrimPrefix(cp, prefix)
			dur += st.model.HostMemcpy(b.Len())
			if got := Digest(b); got != want {
				problems = append(problems, fmt.Sprintf("chunk %s: content digests to %s", cp, got))
			}
			if prefix == ColdPrefix && st.fs.Exists(chunkPath(want)) {
				problems = append(problems, fmt.Sprintf("chunk %s resident in both host and cold tier", want[:12]))
			}
		}
	}
	children := make(map[string]int64)
	manifests := make(map[string]*Manifest)
	for _, mp := range st.fs.List(ManifestPrefix) {
		if strings.HasSuffix(mp, TmpSuffix) {
			problems = append(problems, fmt.Sprintf("stale temp manifest %s (crashed commit; run gc)", mp))
			continue
		}
		b, d, err := st.fs.ReadFile(mp)
		dur += d
		if err != nil {
			problems = append(problems, fmt.Sprintf("manifest %s: %v", mp, err))
			continue
		}
		m, err := decodeManifest(b)
		if err != nil {
			problems = append(problems, fmt.Sprintf("manifest %s: %v", mp, err))
			continue
		}
		path := strings.TrimPrefix(mp, ManifestPrefix)
		manifests[path] = m
		if m.Parent != "" {
			children[m.Parent]++
		}
		for i, dg := range m.Chunks {
			if !st.chunkResidentLocked(dg) {
				problems = append(problems, fmt.Sprintf("manifest %s: chunk %d (%s) missing", path, i, dg[:12]))
			}
		}
	}
	paths := make([]string, 0, len(manifests))
	for path := range manifests {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		m := manifests[path]
		if m.Parent != "" {
			if _, ok := manifests[m.Parent]; !ok {
				problems = append(problems, fmt.Sprintf("manifest %s: parent %s missing (dangling delta chain)", path, m.Parent))
			}
		}
		if min := 1 + children[path]; m.Refs < min {
			problems = append(problems, fmt.Sprintf("manifest %s: refs %d below %d (1 holder + %d children)", path, m.Refs, min, children[path]))
		}
	}
	return problems, dur
}
