package core

// Store-backed capture and restore at the core layer: swap cycles that
// ship only missing chunks, and delta chains whose parent manifest lives
// only in the content-addressed store (ISSUE 5). The chaos-under-fault
// cases live in chaos_store_test.go.

import (
	"testing"

	"snapify/internal/coi"
)

// storeOpts is the capture configuration of the store tests: a striped
// data path with chunks small enough that a touched counter page leaves
// most of the image deduplicable.
func storeOpts() CaptureOptions {
	o := chaosOpts()
	o.ChunkBytes = 32 * 1024
	o.Store.Enabled = true
	return o
}

func TestStoreSwapRoundTrip(t *testing.T) {
	r := newRig(t, "core_store_swap", 1)
	buf, _ := r.cp.CreateBuffer(512 * 1024)
	pattern := make([]byte, 512*1024)
	for i := range pattern {
		pattern[i] = byte(i * 11)
	}
	buf.Write(pattern, 0) //nolint:errcheck
	r.count(t, 33)

	ctx := "/snap/store/" + coi.ContextFileName
	snap, err := Swapout("/snap/store", r.cp, storeOpts())
	if err != nil {
		t.Fatal(err)
	}
	// The context lives in the store, not as a plain host file; the
	// sidecar artifacts (runtime libraries) stay plain.
	if r.plat.Host().FS.Exists(ctx) {
		t.Error("store-mode capture left a plain context file")
	}
	if !r.plat.Host().FS.Exists("/snap/store/runtime_libs") {
		t.Error("runtime libraries missing from store-mode snapshot")
	}
	if !r.plat.Store.Has(ctx) {
		t.Fatal("no committed manifest for the captured context")
	}
	if snap.Report.ShippedBytes <= 0 || snap.Report.ShippedBytes > snap.Report.SnapshotBytes {
		t.Errorf("shipped %d of %d snapshot bytes", snap.Report.ShippedBytes, snap.Report.SnapshotBytes)
	}
	if problems, _ := r.plat.Store.Verify(); len(problems) != 0 {
		t.Fatalf("store inconsistent after capture: %v", problems)
	}

	ropts := RestoreOptions{}
	ropts.Store.Enabled = true
	if _, err := Swapin(snap, 1, ropts); err != nil {
		t.Fatal(err)
	}
	back := make([]byte, len(pattern))
	if err := buf.Read(back, 0); err != nil {
		t.Fatal(err)
	}
	for i := range back {
		if back[i] != pattern[i] {
			t.Fatalf("buffer corrupted at %d after store swap", i)
		}
	}
	if got := r.count(t, 66); got != refSum(66) {
		t.Errorf("post-swap count = %d, want %d", got, refSum(66))
	}

	// A second cycle re-ships only what changed: the counter page, not
	// the 512 KiB buffer or the untouched background.
	snap2, err := Swapout("/snap/store", r.cp, storeOpts())
	if err != nil {
		t.Fatal(err)
	}
	if snap2.Report.ShippedBytes >= snap2.Report.SnapshotBytes {
		t.Errorf("warm swap shipped %d of %d bytes: no dedup", snap2.Report.ShippedBytes, snap2.Report.SnapshotBytes)
	}
	if _, err := Swapin(snap2, 1, ropts); err != nil {
		t.Fatal(err)
	}
	if got := r.count(t, 99); got != refSum(99) {
		t.Errorf("post-second-swap count = %d, want %d", got, refSum(99))
	}

	// Dropping the snapshot empties the store.
	if _, err := r.plat.Store.Release(ctx); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.plat.Store.GC(0); err != nil {
		t.Fatal(err)
	}
	if s := r.plat.Store.Stats(); s.Manifests != 0 || s.Chunks != 0 {
		t.Errorf("store not empty after release + gc: %+v", s)
	}
}

func TestStoreRestorePrecheckFailsFast(t *testing.T) {
	r := newRig(t, "core_store_precheck", 1)
	r.count(t, 10)
	snap, err := Swapout("/snap/nostore", r.cp, chaosOpts()) // plain capture
	if err != nil {
		t.Fatal(err)
	}
	ropts := RestoreOptions{}
	ropts.Store.Enabled = true
	if _, err := Swapin(snap, 1, ropts); err == nil {
		t.Fatal("store-asserting restore of a plain snapshot must fail fast")
	}
	// The plain restore still works.
	if _, err := Swapin(snap, 1, RestoreOptions{}); err != nil {
		t.Fatal(err)
	}
	if got := r.count(t, 20); got != refSum(20) {
		t.Errorf("post-swap count = %d, want %d", got, refSum(20))
	}
}

// TestStoreDeltaChainParentOnlyInStore restores a base+delta chain where
// neither file exists outside the store: the base's refcount tracks its
// delta child, and releasing the chain cascades the store back to empty.
func TestStoreDeltaChainParentOnlyInStore(t *testing.T) {
	r := newRig(t, "core_store_chain", 1)
	r.count(t, 10)

	baseCtx := "/snap/sbase/" + coi.ContextFileName
	deltaPath := "/snap/sdelta/" + coi.DeltaFileName
	base := NewSnapshot("/snap/sbase", r.cp)
	if err := Pause(base); err != nil {
		t.Fatal(err)
	}
	bopts := storeOpts()
	bopts.Terminate = false
	if err := base.CaptureBase(bopts); err != nil {
		t.Fatal(err)
	}
	if err := Wait(base); err != nil {
		t.Fatal(err)
	}
	if err := Resume(base); err != nil {
		t.Fatal(err)
	}
	r.count(t, 30)

	d := NewSnapshot("/snap/sdelta", r.cp)
	if err := Pause(d); err != nil {
		t.Fatal(err)
	}
	dopts := storeOpts()
	dopts.Store.Parent = baseCtx
	if err := d.CaptureDelta(dopts); err != nil {
		t.Fatal(err)
	}
	if err := Wait(d); err != nil {
		t.Fatal(err)
	}

	if r.plat.Host().FS.Exists(baseCtx) || r.plat.Host().FS.Exists(deltaPath) {
		t.Fatal("chain files exist outside the store")
	}
	bm, _, err := r.plat.Store.Manifest(baseCtx)
	if err != nil {
		t.Fatal(err)
	}
	if bm.Refs != 2 {
		t.Errorf("base refs %d, want 2 (holder + delta child)", bm.Refs)
	}
	dm, _, err := r.plat.Store.Manifest(deltaPath)
	if err != nil {
		t.Fatal(err)
	}
	if dm.Parent != baseCtx {
		t.Errorf("delta parent %q, want %q", dm.Parent, baseCtx)
	}

	ropts := RestoreOptions{}
	ropts.Store.Enabled = true
	if _, err := d.RestoreChain("/snap/sbase", []string{"/snap/sdelta"}, 1, ropts); err != nil {
		t.Fatalf("restore chain from store: %v", err)
	}
	if err := d.Resume(); err != nil {
		t.Fatal(err)
	}
	if got := r.count(t, 50); got != refSum(50) {
		t.Errorf("restored computation = %d, want %d", got, refSum(50))
	}

	// Releasing the delta cascades onto the base; releasing the base's own
	// holder reference empties the store.
	if _, err := r.plat.Store.Release(deltaPath); err != nil {
		t.Fatal(err)
	}
	if bm, _, err := r.plat.Store.Manifest(baseCtx); err != nil || bm.Refs != 1 {
		t.Fatalf("base after delta release: refs=%v err=%v", bm, err)
	}
	if _, err := r.plat.Store.Release(baseCtx); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.plat.Store.GC(0); err != nil {
		t.Fatal(err)
	}
	if s := r.plat.Store.Stats(); s.Manifests != 0 || s.Chunks != 0 {
		t.Errorf("store not empty after chain release + gc: %+v", s)
	}
}
