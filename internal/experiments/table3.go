package experiments

import (
	"fmt"

	"snapify/internal/blob"
	"snapify/internal/scp"
	"snapify/internal/simclock"
	"snapify/internal/simnet"
	"snapify/internal/snapifyio"
	"snapify/internal/stream"
	"snapify/internal/trace"
	"snapify/internal/vfs"
)

// Table3Sizes are the file sizes of the copy micro-benchmark.
var Table3Sizes = []int64{
	1 * simclock.MiB, 16 * simclock.MiB, 64 * simclock.MiB,
	256 * simclock.MiB, 1 * simclock.GiB,
}

// Table3Row is one file size's measurements (seconds of virtual time).
type Table3Row struct {
	Size int64
	// Write: device -> host. Read: host -> device.
	SnapifyIOWrite, SnapifyIORead simclock.Duration
	NFSWrite, NFSRead             simclock.Duration
	SCPWrite, SCPRead             simclock.Duration
}

// Table3Result is the full micro-benchmark.
type Table3Result struct {
	Rows []Table3Row
}

// Table3 runs the file-copy micro-benchmark of Section 7 ("Snapify-IO
// performance"): a native process on the Xeon Phi copies files of various
// sizes between the card and the host through Snapify-IO, the NFS mount,
// and scp.
func Table3() (*Table3Result, error) {
	plat, err := newPlatform(1)
	if err != nil {
		return nil, err
	}
	dev := plat.Device(1)
	host := plat.Host()
	mnt := plat.NFS(1)

	res := &Table3Result{}
	for _, size := range Table3Sizes {
		row := Table3Row{Size: size}
		content := blob.Synthetic(uint64(size), size)

		// --- device -> host ("write") ---
		if _, err := dev.FS.WriteFile("/tmp/src", content); err != nil {
			return nil, fmt.Errorf("table3: staging %s on card: %w", sizeLabel(size), err)
		}

		// Snapify-IO: the native process reads the local file and writes
		// through a Snapify-IO descriptor to the host.
		f, err := plat.IO.Open(dev.Node, simnet.HostNode, "/t3/sio_w", snapifyio.Write)
		if err != nil {
			return nil, err
		}
		src, err := dev.FS.Open("/tmp/src")
		if err != nil {
			f.Abort()
			return nil, err
		}
		acc := simclock.NewPipelineAccum()
		if err := copyReaderToSink(src, f, acc); err != nil {
			return nil, err
		}
		row.SnapifyIOWrite = acc.Total()

		// NFS: cp to the mounted directory (buffered client).
		nfsSink, err := mnt.CreateBuffered("/t3/nfs_w")
		if err != nil {
			return nil, err
		}
		src2, err := dev.FS.Open("/tmp/src")
		if err != nil {
			nfsSink.Abort()
			return nil, err
		}
		acc = simclock.NewPipelineAccum()
		if err := copyReaderToSink(src2, nfsSink, acc); err != nil {
			return nil, err
		}
		row.NFSWrite = acc.Total()

		// scp to the host.
		d, err := scp.Copy(plat.Server.Fabric, dev.Node, vfs.Ram(dev.FS), "/tmp/src",
			simnet.HostNode, vfs.Host(host.FS), "/t3/scp_w")
		if err != nil {
			return nil, err
		}
		row.SCPWrite = d
		dev.FS.Remove("/tmp/src") //nolint:errcheck // scratch cleanup; a failed remove only holds simulated ram until the next loop

		// --- host -> device ("read") ---
		if _, err := host.FS.WriteFile("/t3/src", content); err != nil {
			return nil, err
		}
		fr, err := plat.IO.Open(dev.Node, simnet.HostNode, "/t3/src", snapifyio.Read)
		if err != nil {
			return nil, err
		}
		w, err := dev.FS.Create("/tmp/sio_r")
		if err != nil {
			fr.Abort()
			return nil, err
		}
		acc = simclock.NewPipelineAccum()
		if err := copySourceToWriter(fr, w, acc); err != nil {
			return nil, err
		}
		row.SnapifyIORead = acc.Total()
		dev.FS.Remove("/tmp/sio_r") //nolint:errcheck // scratch cleanup; a failed remove only holds simulated ram until the next loop

		nfsSrc, err := mnt.Open("/t3/src")
		if err != nil {
			return nil, err
		}
		w2, err := dev.FS.Create("/tmp/nfs_r")
		if err != nil {
			nfsSrc.Close() //nolint:errcheck // error path: the create failure is the reported error; Close on a read source only releases the handle
			return nil, err
		}
		acc = simclock.NewPipelineAccum()
		if err := copySourceToWriter(nfsSrc, w2, acc); err != nil {
			return nil, err
		}
		row.NFSRead = acc.Total()
		dev.FS.Remove("/tmp/nfs_r") //nolint:errcheck // scratch cleanup; a failed remove only holds simulated ram until the next loop

		d, err = scp.Copy(plat.Server.Fabric, simnet.HostNode, vfs.Host(host.FS), "/t3/src",
			dev.Node, vfs.Ram(dev.FS), "/tmp/scp_r")
		if err != nil {
			return nil, err
		}
		row.SCPRead = d
		dev.FS.Remove("/tmp/scp_r") //nolint:errcheck // scratch cleanup; a failed remove only holds simulated ram until the next loop
		host.FS.RemoveAll("/t3/")   //nolint:errcheck // scratch cleanup; a failed remove only holds simulated ram until the next loop

		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// copyReaderToSink pumps a vfs.Reader into a stream.Sink.
func copyReaderToSink(r vfs.Reader, sink stream.Sink, acc *simclock.PipelineAccum) error {
	for {
		chunk, rd, err := r.Next(4 * simclock.MiB)
		if err != nil {
			break // io.EOF
		}
		cost, werr := sink.WriteBlob(chunk)
		if werr != nil {
			sink.Abort()
			return werr
		}
		stream.Observe(acc, cost, rd)
	}
	return sink.Close()
}

// copySourceToWriter pumps a stream.Source into a vfs.Writer.
func copySourceToWriter(src stream.Source, w vfs.Writer, acc *simclock.PipelineAccum) error {
	for {
		chunk, cost, err := src.Next(4 * simclock.MiB)
		if err != nil {
			break // io.EOF
		}
		wd, werr := w.WriteBlob(chunk)
		if werr != nil {
			w.Abort()
			return werr
		}
		stream.Observe(acc, cost, wd)
	}
	if c, ok := src.(interface{ Close() error }); ok {
		c.Close() //nolint:errcheck // read side already at EOF: close only releases the descriptor
	}
	return w.Close()
}

// Render prints the table in the paper's layout.
func (r *Table3Result) Render() string {
	t := trace.New("Table 3: Time to copy files between the host and the Xeon Phi",
		"File size",
		"SnapIO wr", "NFS wr", "scp wr",
		"SnapIO rd", "NFS rd", "scp rd")
	for _, row := range r.Rows {
		t.Row(sizeLabel(row.Size),
			trace.Seconds(row.SnapifyIOWrite), trace.Seconds(row.NFSWrite), trace.Seconds(row.SCPWrite),
			trace.Seconds(row.SnapifyIORead), trace.Seconds(row.NFSRead), trace.Seconds(row.SCPRead))
	}
	return t.String()
}

// CheckShape verifies the paper's qualitative claims: Snapify-IO beats NFS
// and scp for all but the smallest size; the gap grows with size; writes
// beat reads for Snapify-IO; scp is slowest.
func (r *Table3Result) CheckShape() error {
	for _, row := range r.Rows {
		if row.Size <= 1*simclock.MiB {
			continue // the paper's 1 MB case: NFS buffering may win
		}
		if !(row.SnapifyIOWrite < row.NFSWrite && row.NFSWrite < row.SCPWrite) {
			return fmt.Errorf("table3 %s write ordering violated: sio=%v nfs=%v scp=%v",
				sizeLabel(row.Size), row.SnapifyIOWrite, row.NFSWrite, row.SCPWrite)
		}
		if !(row.SnapifyIORead < row.NFSRead && row.NFSRead < row.SCPRead) {
			return fmt.Errorf("table3 %s read ordering violated: sio=%v nfs=%v scp=%v",
				sizeLabel(row.Size), row.SnapifyIORead, row.NFSRead, row.SCPRead)
		}
		if row.SnapifyIOWrite >= row.SnapifyIORead {
			return fmt.Errorf("table3 %s: Snapify-IO write (%v) should beat read (%v)",
				sizeLabel(row.Size), row.SnapifyIOWrite, row.SnapifyIORead)
		}
	}
	// The advantage grows with file size.
	first, last := r.Rows[1], r.Rows[len(r.Rows)-1]
	if ratio(last.NFSWrite, last.SnapifyIOWrite) <= ratio(first.NFSWrite, first.SnapifyIOWrite) {
		return fmt.Errorf("table3: Snapify-IO advantage does not grow with size")
	}
	return nil
}

func ratio(a, b simclock.Duration) float64 { return float64(a) / float64(b) }
