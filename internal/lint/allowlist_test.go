package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "allow")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseAllowlistRejectsMissingJustification(t *testing.T) {
	for _, bad := range []string{
		"errcheck internal/x/y.go Close",          // no justification at all
		"errcheck internal/x/y.go Close -- ",      // empty justification
		"errcheck internal/x/y.go -- justified",   // missing match field
		"errcheck a b c d -- too many rule parts", // malformed rule
	} {
		if _, err := ParseAllowlist(writeTemp(t, bad)); err == nil {
			t.Errorf("ParseAllowlist accepted %q", bad)
		}
	}
}

func TestParseAllowlistSkipsCommentsAndBlanks(t *testing.T) {
	al, err := ParseAllowlist(writeTemp(t, "# header\n\nerrcheck a.go Close -- teardown\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(al.Entries) != 1 {
		t.Fatalf("got %d entries, want 1", len(al.Entries))
	}
	e := al.Entries[0]
	if e.Analyzer != "errcheck" || e.PathSuffix != "a.go" || e.Match != "Close" || e.Justification != "teardown" {
		t.Fatalf("parsed entry = %+v", *e)
	}
}

func TestAllowlistFilter(t *testing.T) {
	al, err := ParseAllowlist(writeTemp(t, strings.Join([]string{
		"errcheck internal/coi/process.go Endpoint.Close -- teardown",
		"all internal/legacy/old.go * -- frozen file",
	}, "\n")))
	if err != nil {
		t.Fatal(err)
	}
	findings := []Finding{
		{Analyzer: "errcheck", File: "/mod/internal/coi/process.go", Line: 1,
			Message: "error result of Endpoint.Close is discarded by the bare call"},
		{Analyzer: "errcheck", File: "/mod/internal/coi/process.go", Line: 2,
			Message: "error result of Endpoint.Send is discarded by the bare call"},
		{Analyzer: "paniclib", File: "/mod/internal/legacy/old.go", Line: 3,
			Message: "panic in library code: return an error instead"},
		{Analyzer: "errcheck", File: "/mod/internal/other/file.go", Line: 4,
			Message: "error result of Endpoint.Close is discarded by the bare call"},
	}
	kept := al.Filter(findings)
	if len(kept) != 2 {
		t.Fatalf("kept %d findings, want 2: %v", len(kept), kept)
	}
	if kept[0].Line != 2 || kept[1].Line != 4 {
		t.Fatalf("wrong findings survived: %v", kept)
	}
	if unused := al.Unused(); len(unused) != 0 {
		t.Fatalf("both entries matched, but Unused() = %v", unused)
	}
}
