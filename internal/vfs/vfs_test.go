package vfs

import (
	"io"
	"testing"

	"snapify/internal/blob"
	"snapify/internal/hostfs"
	"snapify/internal/phi"
	"snapify/internal/ramfs"
	"snapify/internal/simclock"
)

// roundTrip exercises a NodeFS through the interface only.
func roundTrip(t *testing.T, fs NodeFS) {
	t.Helper()
	w, err := fs.Create("/vfs/file")
	if err != nil {
		t.Fatal(err)
	}
	content := blob.Concat(blob.FromBytes([]byte("header")), blob.Synthetic(5, 10000))
	if _, err := w.WriteBlob(content); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := fs.Open("/vfs/file")
	if err != nil {
		t.Fatal(err)
	}
	if r.Size() != content.Len() {
		t.Errorf("Size = %d, want %d", r.Size(), content.Len())
	}
	var parts []blob.Blob
	for {
		c, _, err := r.Next(4096)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, c)
	}
	if !blob.Equal(blob.Concat(parts...), content) {
		t.Error("round trip content mismatch")
	}

	// Abort discards.
	w2, _ := fs.Create("/vfs/aborted")
	w2.WriteBlob(blob.Zeros(10)) //nolint:errcheck
	w2.Abort()
	if _, err := fs.Open("/vfs/aborted"); err == nil {
		t.Error("aborted file visible")
	}
	if _, err := fs.Open("/vfs/missing"); err == nil {
		t.Error("missing file opened")
	}
}

func TestHostAdapter(t *testing.T) {
	roundTrip(t, Host(hostfs.New(simclock.Default())))
}

func TestRamAdapter(t *testing.T) {
	bud := phi.NewMemBudget(1 << 20)
	roundTrip(t, Ram(ramfs.New(simclock.Default(), bud)))
}
