// Incremental snapshots: an extension beyond the paper. After a base
// capture marks the offload process clean, each subsequent capture
// serializes only the pages written since — far cheaper for applications
// whose working set is a small slice of their footprint. A chain restore
// (base + deltas) reconstructs the exact state.
package main

import (
	"encoding/binary"
	"fmt"
	"os"
	"time"

	"snapify"
	"snapify/internal/proc"
)

func main() {
	snapify.RegisterBinary(trainerBinary())
	srv, err := snapify.NewServer(snapify.ServerOptions{Devices: 1})
	check(err)
	defer srv.Stop()

	app, err := srv.Launch("trainer", 1)
	check(err)
	defer app.Close()
	pl, err := app.Proc.CreatePipeline()
	check(err)

	epoch := func(n uint64) {
		args := make([]byte, 8)
		binary.BigEndian.PutUint64(args, n)
		_, err := pl.RunFunction("epoch", args)
		check(err)
	}

	// Base snapshot after warm-up.
	epoch(1)
	base := snapify.NewSnapshot("/incr/base", app.Proc)
	check(snapify.Pause(base))
	check(snapify.CaptureBase(base, snapify.CaptureOptions{}))
	check(snapify.Wait(base))
	check(snapify.Resume(base))
	fmt.Printf("base snapshot: %8s in %5.2fs virtual\n",
		fmtBytes(base.Report.SnapshotBytes), base.Report.Capture.Seconds())

	// Delta snapshots after each epoch: only the touched pages move.
	var deltas []string
	var last *snapify.Snapshot
	for e := uint64(2); e <= 4; e++ {
		epoch(e)
		dir := fmt.Sprintf("/incr/epoch%d", e)
		s := snapify.NewSnapshot(dir, app.Proc)
		check(snapify.Pause(s))
		check(snapify.CaptureDelta(s, snapify.CaptureOptions{Terminate: e == 4})) // the last one swaps out
		check(snapify.Wait(s))
		if e < 4 {
			check(snapify.Resume(s))
		}
		fmt.Printf("delta epoch %d: %8s in %5.2fs virtual (%.0fx smaller than the base)\n",
			e, fmtBytes(s.Report.SnapshotBytes), s.Report.Capture.Seconds(),
			float64(base.Report.SnapshotBytes)/float64(s.Report.SnapshotBytes))
		deltas = append(deltas, dir)
		last = s
	}

	// Chain restore: base + three deltas.
	_, err = snapify.RestoreChain(last, "/incr/base", deltas, 1, snapify.RestoreOptions{})
	check(err)
	check(snapify.Resume(last))
	fmt.Println("\nchain restore complete (base + 3 deltas)")

	args := make([]byte, 8)
	binary.BigEndian.PutUint64(args, 5)
	out, err := pl.RunFunction("epoch", args)
	check(err)
	fmt.Printf("epoch 5 after restore: model checksum %d — training state exact\n",
		binary.BigEndian.Uint64(out))
}

// trainerBinary mimics a training loop: a large model (64 MiB) of which
// each epoch touches only a narrow slice.
func trainerBinary() *snapify.Binary {
	bin := snapify.NewBinary("trainer")
	bin.AddRegion("model", proc.RegionHeap, 64<<20, 0)
	bin.Register("epoch", func(ctx *snapify.RunContext, args []byte) ([]byte, error) {
		e := binary.BigEndian.Uint64(args)
		model := ctx.Region("model")
		sum := make([]byte, 8)
		model.ReadAt(sum, 0)
		acc := binary.BigEndian.Uint64(sum)
		page := make([]byte, 4096)
		for i := uint64(0); i < 64; i++ {
			i := i
			if err := ctx.Step(func() {
				off := int64((e*64 + i) * 4096 % (63 << 20))
				model.ReadAt(page, off)
				acc = acc*31 + e + i
				page[0] = byte(acc)
				model.WriteAt(page[:64], off)
				binary.BigEndian.PutUint64(sum, acc)
				model.WriteAt(sum, 0)
				ctx.Compute(5 * time.Millisecond)
			}); err != nil {
				return nil, err
			}
		}
		out := make([]byte, 8)
		binary.BigEndian.PutUint64(out, acc)
		return out, nil
	})
	return bin
}

func fmtBytes(n int64) string {
	if n >= 1<<20 {
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	}
	return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "incremental:", err)
		os.Exit(1)
	}
}
