package core

// Seed-replay property (DESIGN.md §10): a chaos run is a pure function
// of its seed. Two fresh platforms driven through the same scenario
// under the same seeded fault plan must agree on the operation's
// outcome AND produce byte-identical Chrome-trace JSON — retries,
// backoffs, and injected faults land at the same virtual times.

import (
	"bytes"
	"testing"

	"snapify/internal/faultinject"
	"snapify/internal/obs"
	"snapify/internal/simnet"
)

// seedReplayRun drives one platform through the seeded-fault capture
// scenario and returns the full Chrome trace plus the outcome. The
// scenario is serial (one stream, one worker) so fault ordinals match
// traffic deterministically — concurrent streams share link keys and
// would race for the Nth slot.
func seedReplayRun(t *testing.T, seed uint64) (trace []byte, outcome string) {
	t.Helper()
	r := newRig(t, "core_seedreplay", 1)
	r.count(t, 20)
	s := NewSnapshot("/snap/seedreplay", r.cp)
	if err := Pause(s); err != nil {
		t.Fatal(err)
	}
	menu := []faultinject.SiteKey{
		{Site: faultinject.SiteSend, Key: faultinject.LinkKey(simnet.NodeID(1).String(), simnet.HostNode.String())},
		{Site: faultinject.SiteChunk, Key: ""},
	}
	plan := faultinject.SeededPlan(seed, menu, 2, 6)
	r.plat.Server.Fabric.SetInjector(faultinject.New(plan, nil))
	err := s.Capture(CaptureOptions{
		Terminate:  true,
		Streams:    1,
		ChunkBytes: 64 * 1024,
		Retry:      RetryPolicy{MaxAttempts: 3},
	})
	if err == nil {
		err = Wait(s)
	}
	r.plat.Server.Fabric.SetInjector(nil)
	if err != nil {
		outcome = "capture error: " + err.Error()
	} else {
		if _, rerr := Swapin(s, 1, RestoreOptions{}); rerr != nil {
			t.Fatalf("swap-in after seeded capture: %v", rerr)
		}
		if got := r.count(t, 40); got != refSum(40) {
			t.Fatalf("restored computation = %d, want %d", got, refSum(40))
		}
		outcome = "ok"
	}
	trace = r.plat.Obs.TracerOf().ChromeTrace()
	if err := obs.ValidateChromeTrace(trace); err != nil {
		t.Fatalf("invalid Chrome trace: %v", err)
	}
	return trace, outcome
}

func TestSeedReplayIdenticalTraces(t *testing.T) {
	for _, seed := range []uint64{1, 7, 0xC0FFEE} {
		t1, o1 := seedReplayRun(t, seed)
		t2, o2 := seedReplayRun(t, seed)
		if o1 != o2 {
			t.Fatalf("seed %#x: outcomes differ across runs: %q vs %q", seed, o1, o2)
		}
		if !bytes.Equal(t1, t2) {
			t.Fatalf("seed %#x: Chrome traces differ across runs (%d vs %d bytes, outcome %q)",
				seed, len(t1), len(t2), o1)
		}
	}
}

// TestSeededPlanIsPure pins the seed -> plan derivation itself: the
// same inputs always yield the same plan, different seeds diverge.
func TestSeededPlanIsPure(t *testing.T) {
	menu := []faultinject.SiteKey{
		{Site: faultinject.SiteSend, Key: "mic0->host"},
		{Site: faultinject.SiteChunk},
	}
	a := faultinject.SeededPlan(42, menu, 4, 8)
	b := faultinject.SeededPlan(42, menu, 4, 8)
	ea, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	eb, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ea, eb) {
		t.Fatalf("same seed produced different plans:\n%s\nvs\n%s", ea, eb)
	}
	c := faultinject.SeededPlan(43, menu, 4, 8)
	ec, err := c.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ea, ec) {
		t.Fatal("different seeds produced identical plans")
	}
}
