package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// wallclockBanned are the package-time functions that read or wait on the
// wall clock.
var wallclockBanned = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"Since":     true,
	"Until":     true,
}

// Wallclock reports direct wall-clock usage outside internal/simclock.
// Every duration the benchmarks report is *virtual* (DESIGN.md §1): costs
// come from the calibrated model, never from the host's clock, which is
// what makes `snapbench` output bit-for-bit reproducible. A stray
// time.Now or time.Sleep reintroduces host timing into results — or
// worse, into protocol behavior.
var Wallclock = &Analyzer{
	Name: "wallclock",
	Doc:  "wall-clock time (time.Now/Sleep/...) is confined to internal/simclock; everything else uses virtual time",
	Run:  runWallclock,
}

func runWallclock(p *Pass) {
	if strings.HasSuffix(p.Pkg.Path, "internal/simclock") {
		return
	}
	info := p.Pkg.Info
	inspectFiles(p, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		f, ok := info.Uses[sel.Sel].(*types.Func)
		if !ok || f.Pkg() == nil || f.Pkg().Path() != "time" {
			return true
		}
		if wallclockBanned[f.Name()] {
			p.Reportf(sel.Pos(), "wall-clock time.%s breaks simulated-time determinism; charge the cost model via internal/simclock instead", f.Name())
		}
		return true
	})
}
