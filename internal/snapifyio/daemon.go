package snapifyio

import (
	"io"

	"snapify/internal/scif"
	"snapify/internal/simnet"
	"snapify/internal/vfs"
)

// Daemon is the per-node Snapify-IO daemon: a remote server thread accepts
// SCIF connections from peer daemons and spawns a handler per connection to
// serve the local file system.
type Daemon struct {
	svc     *Service
	node    simnet.NodeID
	fs      vfs.NodeFS
	lst     *scif.Listener
	bufSize int64
	done    chan struct{}
}

// Node returns the daemon's SCIF node.
func (d *Daemon) Node() simnet.NodeID { return d.node }

// remoteServer is the daemon's remote server thread (Section 6): it accepts
// SCIF connections and spawns a remote handler per connection.
func (d *Daemon) remoteServer() {
	for {
		ep, err := d.lst.Accept()
		if err != nil {
			return // listener closed: daemon shutting down
		}
		go d.remoteHandler(ep)
	}
}

// remoteHandler serves one file stream for a peer daemon.
func (d *Daemon) remoteHandler(ep *scif.Endpoint) {
	defer ep.Close()

	raw, _, err := ep.Recv()
	if err != nil {
		return
	}
	u, err := expect(raw, msgOpen)
	if err != nil {
		return
	}
	mode := Mode(u.u8())
	path := u.str()
	peerWindow := u.i64()
	n := u.i64()
	if n != d.bufSize {
		// Mismatched staging sizes would deadlock the chunk protocol.
		d.reply(ep, func(w *wire) {
			w.u8(msgOpenResp)
			w.str("staging buffer size mismatch")
			w.i64(0)
		})
		return
	}

	switch mode {
	case Write:
		d.serveWrite(ep, path, peerWindow)
	case Read:
		d.serveRead(ep, path, peerWindow)
	}
}

func (d *Daemon) reply(ep *scif.Endpoint, fill func(*wire)) {
	w := &wire{}
	fill(w)
	ep.Send(w.buf) //nolint:errcheck // peer teardown is handled by Recv errors
}

// serveWrite drains the peer's staging buffer into a local file.
func (d *Daemon) serveWrite(ep *scif.Endpoint, path string, peerWindow int64) {
	fw, err := d.fs.Create(path)
	if err != nil {
		d.reply(ep, func(w *wire) { w.u8(msgOpenResp); w.str(err.Error()); w.i64(0) })
		return
	}
	d.reply(ep, func(w *wire) { w.u8(msgOpenResp); w.str(""); w.i64(0) })

	staging := newSlot(d.bufSize)
	for {
		raw, _, err := ep.Recv()
		if err != nil {
			fw.Abort() // peer vanished mid-stream
			return
		}
		u := &unwire{buf: raw}
		switch u.u8() {
		case msgChunkReady:
			n := u.i64()
			// Drain the peer's registered buffer with scif_vreadfrom.
			rdma, err := ep.VReadFrom(staging, 0, n, peerWindow)
			if err != nil {
				fw.Abort()
				return
			}
			fsWrite, err := fw.WriteBlob(staging.SnapshotRange(0, n))
			if err != nil {
				d.reply(ep, func(w *wire) { w.u8(msgChunkAck); w.str(err.Error()); w.dur(0); w.dur(0) })
				fw.Abort()
				return
			}
			d.reply(ep, func(w *wire) { w.u8(msgChunkAck); w.str(""); w.dur(rdma); w.dur(fsWrite) })
		case msgClose:
			err := fw.Close()
			msg := ""
			if err != nil {
				msg = err.Error()
			}
			d.reply(ep, func(w *wire) { w.u8(msgCloseResp); w.str(msg) })
			return
		case msgAbort:
			fw.Abort()
			return
		default:
			fw.Abort()
			return
		}
	}
}

// serveRead streams a local file into the peer's staging buffer.
func (d *Daemon) serveRead(ep *scif.Endpoint, path string, peerWindow int64) {
	fr, err := d.fs.Open(path)
	if err != nil {
		d.reply(ep, func(w *wire) { w.u8(msgOpenResp); w.str(err.Error()); w.i64(0) })
		return
	}
	d.reply(ep, func(w *wire) { w.u8(msgOpenResp); w.str(""); w.i64(fr.Size()) })

	staging := newSlot(d.bufSize)
	for {
		raw, _, err := ep.Recv()
		if err != nil {
			return
		}
		u := &unwire{buf: raw}
		switch u.u8() {
		case msgPull:
			chunk, fsRead, err := fr.Next(d.bufSize)
			if err == io.EOF {
				d.reply(ep, func(w *wire) { w.u8(msgChunkHere); w.str(""); w.i64(0); w.dur(0); w.dur(0) })
				continue // peer will close
			}
			if err != nil {
				d.reply(ep, func(w *wire) { w.u8(msgChunkHere); w.str(err.Error()); w.i64(0); w.dur(0); w.dur(0) })
				return
			}
			staging.WriteBlob(0, chunk)
			// Push into the peer's registered buffer with scif_vwriteto.
			rdma, err := ep.VWriteTo(staging, 0, chunk.Len(), peerWindow)
			if err != nil {
				return
			}
			d.reply(ep, func(w *wire) {
				w.u8(msgChunkHere)
				w.str("")
				w.i64(chunk.Len())
				w.dur(fsRead)
				w.dur(rdma)
			})
		case msgClose, msgAbort:
			d.reply(ep, func(w *wire) { w.u8(msgCloseResp); w.str("") })
			return
		default:
			return
		}
	}
}

// open implements the library side: connect to the target daemon, register
// the staging buffer, and return the file handle.
func (d *Daemon) open(target simnet.NodeID, path string, mode Mode) (*File, error) {
	model := d.svc.net.Fabric().Model()
	ep, err := d.svc.net.Connect(d.node, scif.Addr{Node: target, Port: Port})
	if err != nil {
		return nil, err
	}
	staging := newSlot(d.bufSize)
	win, regCost, err := ep.Register(staging, 0, d.bufSize)
	if err != nil {
		ep.Close()
		return nil, err
	}

	w := &wire{}
	w.u8(msgOpen)
	w.u8(uint8(mode))
	w.str(path)
	w.i64(win.Offset)
	w.i64(d.bufSize)
	if _, err := ep.Send(w.buf); err != nil {
		ep.Close()
		return nil, err
	}
	raw, _, err := ep.Recv()
	if err != nil {
		ep.Close()
		return nil, err
	}
	u, err := expect(raw, msgOpenResp)
	if err != nil {
		ep.Close()
		return nil, err
	}
	if msg := u.str(); msg != "" {
		ep.Close()
		return nil, &RemoteError{Node: target, Path: path, Msg: msg}
	}
	size := u.i64()

	return &File{
		node:    d.node,
		target:  target,
		mode:    mode,
		ep:      ep,
		staging: staging,
		bufSize: d.bufSize,
		model:   model,
		size:    size,
		// The open handshake: UNIX socket to the local daemon, SCIF
		// connect, window registration, request/response.
		pending: model.UnixSocketLatency + 2*model.SCIFMsgLatency + regCost,
	}, nil
}

// RemoteError is a failure reported by the remote daemon.
type RemoteError struct {
	Node simnet.NodeID
	Path string
	Msg  string
}

func (e *RemoteError) Error() string {
	return "snapifyio: " + e.Node.String() + ":" + e.Path + ": " + e.Msg
}
