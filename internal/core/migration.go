package core

import (
	"encoding/binary"
	"errors"
	"fmt"

	"snapify/internal/coi"
	"snapify/internal/simclock"
)

// Live migration (the VM-style pre-copy extension of the paper's
// stop-the-world migration, Section 5 / Fig 7): a Migration session runs
// iterative digest-and-ship rounds against the *running* offload process —
// each round materializes a consistent cut of the image, diffs its chunk
// digests against the previous round's, and ships only the changed chunks
// into the host store while the destination card stages them — then pauses
// the process only for the final small delta plus the context switch-over.
// The restored image is byte-identical to a stop-the-world migration's:
// every round's digests come from a genuinely materialized image and every
// staged chunk is digest-verified, so pre-copy only moves *when* bytes
// travel, never *which* bytes arrive.

// PrecopyRound is one pre-copy round's outcome, recorded in
// Report.Precopy.
type PrecopyRound struct {
	// Round numbers from 1.
	Round int
	// Duration is the round's source-side virtual time: the digest scan
	// (full materialize on round 1, the dirty-bit-assisted rescan after)
	// plus the have/need negotiation and chunk shipping.
	Duration simclock.Duration
	// StageDuration is the destination card's time pulling the round's
	// chunks from the host store into its staging area.
	StageDuration simclock.Duration
	// ImageBytes is the full context image size at this round's cut.
	ImageBytes int64
	// DirtyBytes is how much of the image changed since the previous
	// round (the whole image on round 1).
	DirtyBytes int64
	// ShippedBytes is how many bytes the round physically moved to the
	// host store; dedup against earlier rounds makes it <= DirtyBytes.
	ShippedBytes int64
	// ChunksTotal and ChunksNeeded are the round's negotiation figures.
	ChunksTotal  int
	ChunksNeeded int
	// Skipped means the dirty set already fit the stopping floor, so the
	// round probed but shipped nothing — the delta waits for the final
	// paused capture.
	Skipped bool
}

// Migration is a live-migration session: Round drives the pre-copy
// iterations, Finish executes the switch-over (pause, final delta
// capture, restore on the destination, resume), and Abort cleans up a
// session abandoned mid-rounds, leaving the source process running and
// unharmed. Migrate composes them for the common case.
type Migration struct {
	s    *Snapshot
	opts MigrateOptions

	scope    uint64
	round    int
	done     bool // rounds are over (floor hit, budget fit, or no progress)
	finished bool // Finish ran

	prevDirty   int64
	lastShipped int64
	lastShipDur simclock.Duration
}

// NewMigration validates opts against cp and opens a live-migration
// session. The source process keeps running; nothing moves until the
// first Round (or Finish, for a stop-the-world migration).
func NewMigration(cp *coi.Process, opts MigrateOptions) (*Migration, error) {
	if st := cp.State(); st != coi.StateActive {
		return nil, fmt.Errorf("core: migration requires an active handle, have %s", st)
	}
	if err := opts.validate(cp); err != nil {
		return nil, err
	}
	opts = opts.normalized()
	s := NewSnapshot(opts.Path, cp)
	if !opts.StageLocalStoreOnHost {
		// The local store moves device-to-device over PCIe, not through
		// the host (Section 7, "Process migration").
		s.localStoreTarget = opts.DeviceTo
	}
	return &Migration{
		s:     s,
		opts:  opts,
		scope: cp.Platform().Obs.TracerOf().NewScope(),
	}, nil
}

// Snapshot returns the session's snapshot descriptor (its Report carries
// the per-round figures and the final downtime).
func (m *Migration) Snapshot() *Snapshot { return m.s }

// ctxPath is the context file the rounds negotiate into the store.
func (m *Migration) ctxPath() string { return m.opts.Path + "/" + coi.ContextFileName }

// shipFloor is the current round-stopping floor: the static
// DirtyFloorBytes, raised dynamically when the observed shipping
// bandwidth projects the remaining dirty set to fit DowntimeBudget.
func (m *Migration) shipFloor() int64 {
	floor := m.opts.Precopy.DirtyFloorBytes
	if m.opts.Precopy.DowntimeBudget > 0 && m.lastShipDur > 0 && m.lastShipped > 0 {
		bw := float64(m.lastShipped) / float64(m.lastShipDur) // bytes per ns
		if proj := int64(bw * float64(m.opts.Precopy.DowntimeBudget)); proj > floor {
			floor = proj
		}
	}
	return floor
}

// Round runs one pre-copy iteration: the source daemon digests the
// running process and ships the changed chunks, then the destination
// daemon pulls them into its staging area. done reports that the rounds
// have converged (or stopped making progress) and Finish should run.
func (m *Migration) Round() (PrecopyRound, bool, error) {
	if m.finished {
		return PrecopyRound{}, true, errors.New("core: migration already finished")
	}
	if m.done {
		return PrecopyRound{}, true, errors.New("core: pre-copy rounds are over; call Finish")
	}
	if !m.opts.Precopy.Enabled() {
		return PrecopyRound{}, true, errors.New("core: pre-copy is disabled (MaxRounds is 0); call Finish for a stop-the-world migration")
	}
	cp := m.s.Proc
	if st := cp.State(); st != coi.StateActive {
		return PrecopyRound{}, true, fmt.Errorf("core: pre-copy round requires an active handle, have %s", st)
	}
	m.round++
	m.s.countOp("precopy_round")
	start := cp.Timeline().Now()
	floor := m.shipFloor()

	payload := coi.PutU32(uint32(cp.ID()))
	payload = coi.AppendU32(payload, uint32(m.round))
	payload = binary.BigEndian.AppendUint64(payload, uint64(start))
	payload = binary.BigEndian.AppendUint64(payload, m.scope)
	payload = binary.BigEndian.AppendUint64(payload, uint64(m.opts.Precopy.ChunkBytes))
	payload = binary.BigEndian.AppendUint16(payload, uint16(m.opts.Precopy.Streams))
	payload = binary.BigEndian.AppendUint64(payload, uint64(floor))
	payload = coi.AppendU32(payload, uint32(len(m.opts.Path)))
	payload = append(payload, m.opts.Path...)
	resp, err := cp.DaemonRequest(coi.OpSnapifyPrecopy, payload, coi.OpSnapifyPrecopyResp)
	if err != nil {
		err = fmt.Errorf("core: pre-copy round %d: %w", m.round, err)
		m.s.failDump("migrate", err)
		return PrecopyRound{}, false, err
	}
	rec := PrecopyRound{
		Round:        m.round,
		Duration:     simclock.Duration(binary.BigEndian.Uint64(resp)),
		ImageBytes:   int64(binary.BigEndian.Uint64(resp[8:])),
		DirtyBytes:   int64(binary.BigEndian.Uint64(resp[16:])),
		ShippedBytes: int64(binary.BigEndian.Uint64(resp[24:])),
		ChunksTotal:  int(binary.BigEndian.Uint32(resp[32:])),
		ChunksNeeded: int(binary.BigEndian.Uint32(resp[36:])),
		Skipped:      resp[40] == 1,
	}

	if !rec.Skipped {
		// The round's chunks are in the host store; let the destination
		// pull them down while the source keeps running. A skipped round
		// shipped nothing, so there is nothing new to stage.
		stageDur, _, _, err := m.stageRequest(coi.StageSync, start+rec.Duration)
		if err != nil {
			err = fmt.Errorf("core: pre-copy round %d staging: %w", m.round, err)
			m.s.failDump("migrate", err)
			return rec, false, err
		}
		rec.StageDuration = stageDur
	}

	tk := m.s.hostTrack()
	tk.AlignTo(start)
	tk.Emit(m.scope, "precopy_round", start, rec.Duration+rec.StageDuration, map[string]int64{
		"round":         int64(rec.Round),
		"dirty_bytes":   rec.DirtyBytes,
		"shipped_bytes": rec.ShippedBytes,
	})
	ms := cp.Platform().Obs.MetricsOf()
	ms.Counter("snapify_precopy_rounds_total", "Pre-copy rounds run.").Inc()
	ms.Counter("snapify_precopy_shipped_bytes_total", "Bytes shipped by pre-copy rounds.").Add(rec.ShippedBytes)
	ms.Gauge("snapify_precopy_dirty_bytes", "Dirty bytes after the latest pre-copy round.").Set(rec.DirtyBytes)

	m.s.Report.Precopy = append(m.s.Report.Precopy, rec)
	cp.Timeline().Advance(rec.Duration + rec.StageDuration)

	// Round-termination rule: stop when the dirty set fits the floor
	// (the device skipped), when the round budget is exhausted, or when
	// the dirty set stopped shrinking (the workload writes faster than
	// the link ships — more rounds only burn bandwidth).
	switch {
	case rec.Skipped:
		m.done = true
	case m.round >= m.opts.Precopy.MaxRounds:
		m.done = true
	case m.round >= 2 && rec.DirtyBytes >= m.prevDirty:
		m.done = true
	}
	m.prevDirty = rec.DirtyBytes
	if rec.ShippedBytes > 0 {
		m.lastShipped = rec.ShippedBytes
		m.lastShipDur = rec.Duration
	}
	return rec, m.done, nil
}

// stageRequest sends one stage-control request (StageSync or StageDrop)
// to the destination card's daemon.
func (m *Migration) stageRequest(mode uint8, align simclock.Duration) (dur simclock.Duration, fetched, staged int64, err error) {
	ctx := m.ctxPath()
	payload := []byte{mode}
	payload = binary.BigEndian.AppendUint64(payload, uint64(align))
	payload = binary.BigEndian.AppendUint64(payload, m.scope)
	payload = coi.AppendU32(payload, uint32(len(ctx)))
	payload = append(payload, ctx...)
	resp, err := coi.DaemonStageRequest(m.s.Proc.Platform(), m.opts.DeviceTo, payload)
	if err != nil {
		return 0, 0, 0, err
	}
	dur = simclock.Duration(binary.BigEndian.Uint64(resp))
	fetched = int64(binary.BigEndian.Uint64(resp[8:]))
	staged = int64(binary.BigEndian.Uint64(resp[16:]))
	return dur, fetched, staged, nil
}

// Finish executes the switch-over: pause, final capture (only the last
// delta ships when pre-copy ran), restore on the destination (adopting
// the staged chunks), and resume. Report.Downtime records the whole
// stop-everything window. On a capture failure the source process is
// resumed — it stays unharmed on its card.
func (m *Migration) Finish() (*coi.Process, error) {
	if m.finished {
		return nil, errors.New("core: migration already finished")
	}
	s := m.s
	downStart := s.Proc.Timeline().Now()
	if err := s.Pause(); err != nil {
		return nil, err
	}
	copts := m.opts.Capture
	copts.Terminate = true
	if err := s.Capture(copts); err != nil {
		s.Resume() //nolint:errcheck // best-effort unwind; the capture error is what propagates
		return nil, err
	}
	if err := s.Wait(); err != nil {
		// The capture failed before the terminate took effect: the source
		// process is still on its card, paused. Resume it — a failed
		// migration must leave the source unharmed.
		s.Resume() //nolint:errcheck // best-effort unwind; the capture error is what propagates
		return nil, err
	}
	ncp, err := s.Restore(m.opts.DeviceTo, m.opts.Restore)
	if err != nil {
		return nil, err
	}
	if err := s.Resume(); err != nil {
		return nil, err
	}
	m.finished = true
	m.done = true
	s.Report.Downtime = s.Report.PauseTotal() + s.Report.Capture + s.Report.RestoreTotal() + s.Report.Resume
	tk := s.hostTrack()
	tk.Emit(m.scope, "migration_downtime", downStart, s.Report.Downtime, map[string]int64{
		"rounds": int64(len(s.Report.Precopy)),
	})
	return ncp, nil
}

// Abort abandons a session mid-rounds: the pending store upload is
// dropped (unpinning its digests for GC) and the destination's staged
// chunks are discarded. The source process was never paused and keeps
// running.
func (m *Migration) Abort() {
	if m.finished {
		return
	}
	m.done = true
	plat := m.s.Proc.Platform()
	if plat.Store != nil {
		plat.Store.AbortUpload(m.ctxPath())
	}
	if m.opts.Precopy.Enabled() {
		m.stageRequest(coi.StageDrop, m.s.Proc.Timeline().Now()) //nolint:errcheck // best-effort cleanup; the destination daemon may be the very thing that failed
	}
}

// Migrate moves the offload process to another coprocessor on the same
// machine (snapify_migration, Fig 7). With opts.Precopy enabled it is a
// live migration — pre-copy rounds ship the image while the process
// runs, and the process stops only for the final delta; with a zero
// Precopy it is the paper's stop-the-world migration (pause, capture,
// restore, resume). Either way Report.Downtime records how long the
// process was stopped, and the restored image is byte-identical.
func Migrate(cp *coi.Process, opts MigrateOptions) (*coi.Process, *Snapshot, error) {
	m, err := NewMigration(cp, opts)
	if err != nil {
		return nil, nil, err
	}
	if m.opts.Precopy.Enabled() {
		for {
			_, done, err := m.Round()
			if err != nil {
				m.Abort()
				return nil, nil, err
			}
			if done {
				break
			}
		}
	}
	ncp, err := m.Finish()
	if err != nil {
		return nil, nil, err
	}
	return ncp, m.s, nil
}
