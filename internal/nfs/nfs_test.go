package nfs

import (
	"io"
	"testing"

	"snapify/internal/blob"
	"snapify/internal/hostfs"
	"snapify/internal/simclock"
	"snapify/internal/simnet"
	"snapify/internal/stream"
)

func newMount(t *testing.T) (*Mount, *hostfs.FS) {
	t.Helper()
	m := simclock.Default()
	fabric := simnet.NewFabric(m, 1)
	host := hostfs.New(m)
	return NewMount(fabric, 1, host), host
}

// drain writes content through sink in writeSize pieces and returns the
// accumulated virtual time.
func drain(t *testing.T, sink stream.Sink, content blob.Blob, writeSize int64) simclock.Duration {
	t.Helper()
	acc := simclock.NewPipelineAccum()
	err := content.ForEachChunk(writeSize, func(c blob.Blob) error {
		cost, err := sink.WriteBlob(c)
		if err != nil {
			return err
		}
		stream.Observe(acc, cost)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	return acc.Total()
}

func TestHostCannotMount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for host-side mount")
		}
	}()
	m := simclock.Default()
	NewMount(simnet.NewFabric(m, 1), simnet.HostNode, hostfs.New(m))
}

func TestSyncWriteStoresContent(t *testing.T) {
	mnt, host := newMount(t)
	content := blob.FromBytes([]byte("checkpoint data over nfs"))
	sink, err := mnt.CreateSync("/snap/ctx")
	if err != nil {
		t.Fatal(err)
	}
	d := drain(t, sink, content, 8)
	if d <= 0 {
		t.Error("cost must be positive")
	}
	got, _, err := host.ReadFile("/snap/ctx")
	if err != nil {
		t.Fatal(err)
	}
	if !blob.Equal(got, content) {
		t.Error("content mismatch")
	}
}

func TestSmallWritesPunishSyncOnly(t *testing.T) {
	// BLCR's preamble: many small writes. Plain NFS pays one RPC each;
	// the buffered variants absorb them.
	mnt, _ := newMount(t)
	content := blob.Zeros(256 * 96) // 256 records of 96 B

	s1, _ := mnt.CreateSync("/a")
	syncD := drain(t, s1, content, 96)
	s2, _ := mnt.CreateKernelBuffered("/b")
	kernD := drain(t, s2, content, 96)

	model := simclock.Default()
	if syncD < 256*model.NFSRPCLatency {
		t.Errorf("sync small writes cost %v, want >= 256 RPCs (%v)", syncD, 256*model.NFSRPCLatency)
	}
	if kernD*10 > syncD {
		t.Errorf("kernel buffering should absorb small writes: %v vs sync %v", kernD, syncD)
	}
}

func TestBufferedOrdering(t *testing.T) {
	// Section 7: kernel buffering boosts NFS "to a large degree", user
	// buffering "to a lesser degree", and both beat plain sync for bulk
	// checkpoint-sized streams.
	mnt, _ := newMount(t)
	content := blob.Synthetic(3, 256*simclock.MiB)

	s1, _ := mnt.CreateSync("/sync")
	syncD := drain(t, s1, content, 64*simclock.KiB) // BLCR page-granular writes
	s2, _ := mnt.CreateKernelBuffered("/kern")
	kernD := drain(t, s2, content, 64*simclock.KiB)
	s3, _ := mnt.CreateUserBuffered("/user")
	userD := drain(t, s3, content, 64*simclock.KiB)

	if !(kernD < userD && userD < syncD) {
		t.Errorf("want kernel (%v) < user (%v) < sync (%v)", kernD, userD, syncD)
	}
}

func TestBufferedFlushOnClose(t *testing.T) {
	mnt, host := newMount(t)
	content := blob.FromBytes([]byte("short"))
	sink, _ := mnt.CreateKernelBuffered("/f")
	if _, err := sink.WriteBlob(content); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	got, _, err := host.ReadFile("/f")
	if err != nil {
		t.Fatal(err)
	}
	if !blob.Equal(got, content) {
		t.Error("buffered tail lost at close")
	}
}

func TestReadRoundTripAndCost(t *testing.T) {
	mnt, host := newMount(t)
	content := blob.Synthetic(7, 64*simclock.MiB)
	host.WriteFile("/ctx", content)
	src, err := mnt.Open("/ctx")
	if err != nil {
		t.Fatal(err)
	}
	if src.Size() != content.Len() {
		t.Errorf("Size = %d", src.Size())
	}
	acc := simclock.NewPipelineAccum()
	var parts []blob.Blob
	for {
		b, cost, err := src.Next(4 * simclock.MiB)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		stream.Observe(acc, cost)
		parts = append(parts, b)
	}
	if !blob.Equal(blob.Concat(parts...), content) {
		t.Error("read content mismatch")
	}
	// Readahead keeps RPCs in flight: the read must cost less than the
	// fully serial bound of one RPC round trip per rsize transfer plus the
	// wire time.
	model := simclock.Default()
	serial := simclock.Duration(64*simclock.MiB/model.NFSMaxTransfer)*model.NFSRPCLatency +
		simclock.Rate(model.NFSBandwidth)(64*simclock.MiB)
	if acc.Total() >= serial {
		t.Errorf("read cost %v suggests no readahead (serial bound %v)", acc.Total(), serial)
	}
}

func TestMissingFileRead(t *testing.T) {
	mnt, _ := newMount(t)
	if _, err := mnt.Open("/missing"); err == nil {
		t.Fatal("open of missing file must fail")
	}
}

func TestAbortDiscardsPartial(t *testing.T) {
	mnt, host := newMount(t)
	sink, _ := mnt.CreateUserBuffered("/partial")
	sink.WriteBlob(blob.Zeros(10))
	sink.Abort()
	if host.Exists("/partial") {
		t.Error("aborted file visible")
	}
}
