package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// All metric values are int64: the simulation deals in bytes, message
// counts, and virtual nanoseconds, all of which are exact integers.
// Keeping floats out makes the exposition byte-stable across runs.

// Label is one name="value" pair on a metric series.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing int64.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n (no-op on nil, negative n ignored).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an int64 that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value (no-op on nil).
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the gauge by n, which may be negative.
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current gauge value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed upper-bound buckets
// (Prometheus-style cumulative exposition: name_bucket{le=...},
// name_sum, name_count).
type Histogram struct {
	bounds []int64 // sorted upper bounds, exclusive of +Inf
	mu     sync.Mutex
	counts []int64 // len(bounds)+1; last is the +Inf bucket
	sum    int64
	count  int64
}

// Observe records one value (no-op on nil).
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i]++
	h.sum += v
	h.count++
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of observed values (0 on nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Quantile estimates the q-th quantile (0 < q <= 1) from the bucket
// counts, histogram_quantile-style: linear interpolation inside the
// covering bucket, with the lowest bucket anchored at 0. Observations
// landing in the +Inf bucket clamp to the highest finite bound — the
// estimate cannot exceed what the buckets can resolve. Returns 0 on
// nil or when nothing has been observed.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(q)
}

func (h *Histogram) quantileLocked(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	rank := q * float64(h.count)
	cum := int64(0)
	for i, bound := range h.bounds {
		prev := cum
		cum += h.counts[i]
		if float64(cum) >= rank {
			lower := int64(0)
			if i > 0 {
				lower = h.bounds[i-1]
			}
			if h.counts[i] == 0 {
				return bound
			}
			frac := (rank - float64(prev)) / float64(h.counts[i])
			return lower + int64(float64(bound-lower)*frac+0.5)
		}
	}
	if len(h.bounds) > 0 {
		return h.bounds[len(h.bounds)-1]
	}
	// Degenerate histogram with no finite buckets: fall back to the mean.
	return h.sum / h.count
}

// exposedQuantiles are the estimates rendered for every histogram
// series in Expose, as name_quantile{quantile="..."} lines.
var exposedQuantiles = []struct {
	label string
	q     float64
}{
	{"0.5", 0.5},
	{"0.9", 0.9},
	{"0.99", 0.99},
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

type series struct {
	labels  []Label
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

type family struct {
	name   string
	help   string
	kind   metricKind
	series map[string]*series // keyed by rendered label string
}

// Registry holds metric families and renders them as Prometheus text
// exposition. Getter methods are idempotent: the same (name, labels)
// always returns the same instance, so hot paths may re-look-up.
type Registry struct {
	mu         sync.Mutex
	families   map[string]*family
	collectors []func(*Registry)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter returns (creating if needed) the counter series name{labels}.
// Returns nil — a valid no-op metric — on a nil registry.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.lookup(name, help, kindCounter, labels)
	if s == nil {
		return nil
	}
	return s.counter
}

// Gauge returns (creating if needed) the gauge series name{labels}.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.lookup(name, help, kindGauge, labels)
	if s == nil {
		return nil
	}
	return s.gauge
}

// Histogram returns (creating if needed) the histogram series
// name{labels} with the given upper bounds (sorted copies are taken;
// bounds are fixed at first creation and later calls reuse them).
func (r *Registry) Histogram(name, help string, bounds []int64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, kindHistogram)
	key := renderLabels(labels)
	if s, ok := f.series[key]; ok {
		return s.hist
	}
	bs := append([]int64(nil), bounds...)
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	s := &series{
		labels: append([]Label(nil), labels...),
		hist:   &Histogram{bounds: bs, counts: make([]int64, len(bs)+1)},
	}
	f.series[key] = s
	return s.hist
}

// RegisterCollector adds a callback run at the start of every Expose,
// letting lazily-computed state (e.g. simnet link stats) publish
// point-in-time gauges without continuous instrumentation.
func (r *Registry) RegisterCollector(fn func(*Registry)) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, fn)
}

func (r *Registry) lookup(name, help string, kind metricKind, labels []Label) *series {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, kind)
	key := renderLabels(labels)
	if s, ok := f.series[key]; ok {
		return s
	}
	s := &series{labels: append([]Label(nil), labels...)}
	switch kind {
	case kindCounter:
		s.counter = &Counter{}
	case kindGauge:
		s.gauge = &Gauge{}
	}
	f.series[key] = s
	return s
}

func (r *Registry) familyLocked(name, help string, kind metricKind) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
		r.families[name] = f
	}
	return f
}

// counterSnapshot returns the current value of every counter series as
// "name{labels}" → value. The flight recorder diffs two snapshots to
// report what moved around an incident. Callers must iterate sorted
// keys before serializing.
func (r *Registry) counterSnapshot() map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64)
	for name, f := range r.families {
		if f.kind != kindCounter {
			continue
		}
		for k, s := range f.series {
			out[name+k] = s.counter.Value()
		}
	}
	return out
}

// renderLabels renders a sorted {k="v",...} string ("" for no labels).
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	parts := make([]string, len(ls))
	for i, l := range ls {
		parts[i] = fmt.Sprintf("%s=%q", l.Key, l.Value)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// mergeLabels renders labels plus one extra pair (for histogram le).
func mergeLabels(labels []Label, extra Label) string {
	return renderLabels(append(append([]Label(nil), labels...), extra))
}

// Expose runs the registered collectors and renders every family in
// Prometheus text exposition format, sorted by family name then series
// label string, so output is deterministic. Returns "" on nil.
func (r *Registry) Expose() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	collectors := make([]func(*Registry), len(r.collectors))
	copy(collectors, r.collectors)
	r.mu.Unlock()
	for _, fn := range collectors {
		fn(r)
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)

	var b strings.Builder
	for _, name := range names {
		f := r.families[name]
		kind := map[metricKind]string{
			kindCounter:   "counter",
			kindGauge:     "gauge",
			kindHistogram: "histogram",
		}[f.kind]
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", name, f.help, name, kind)
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := f.series[k]
			switch f.kind {
			case kindCounter:
				fmt.Fprintf(&b, "%s%s %d\n", name, k, s.counter.Value())
			case kindGauge:
				fmt.Fprintf(&b, "%s%s %d\n", name, k, s.gauge.Value())
			case kindHistogram:
				h := s.hist
				h.mu.Lock()
				cum := int64(0)
				for i, bound := range h.bounds {
					cum += h.counts[i]
					fmt.Fprintf(&b, "%s_bucket%s %d\n",
						name, mergeLabels(s.labels, L("le", fmt.Sprintf("%d", bound))), cum)
				}
				cum += h.counts[len(h.bounds)]
				fmt.Fprintf(&b, "%s_bucket%s %d\n", name, mergeLabels(s.labels, L("le", "+Inf")), cum)
				for _, eq := range exposedQuantiles {
					fmt.Fprintf(&b, "%s_quantile%s %d\n",
						name, mergeLabels(s.labels, L("quantile", eq.label)), h.quantileLocked(eq.q))
				}
				fmt.Fprintf(&b, "%s_sum%s %d\n", name, k, h.sum)
				fmt.Fprintf(&b, "%s_count%s %d\n", name, k, h.count)
				h.mu.Unlock()
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
