package fleetd

// PlatformBackend executes control-plane operations on real simulated
// platforms through sched.Fleet: jobs are live workloads.Instances,
// swap-outs run the store-backed core.Swapout path, recoveries restart
// from replicated snapshot directories. It validates the control
// plane's decisions end to end — at test scale, not bench scale.

import (
	"fmt"

	"snapify/internal/sched"
	"snapify/internal/simclock"
	"snapify/internal/simnet"
)

// PlatformBackend implements Backend over a sched.Fleet of real
// simulated servers.
type PlatformBackend struct {
	fleet *sched.Fleet
	topo  []HostTopo
	model *simclock.Model
}

// NewPlatformBackend wraps a fleet whose members are already added.
// cardMem is each card's capacity; cards is cards per host.
func NewPlatformBackend(fleet *sched.Fleet, hosts []string, cards int, cardMem int64) *PlatformBackend {
	b := &PlatformBackend{fleet: fleet, model: simclock.Default()}
	for _, h := range hosts {
		caps := make([]int64, cards)
		for i := range caps {
			caps[i] = cardMem
		}
		b.topo = append(b.topo, HostTopo{Name: h, Cards: caps})
	}
	return b
}

// Fleet exposes the underlying sched.Fleet.
func (b *PlatformBackend) Fleet() *sched.Fleet { return b.fleet }

// Topology enumerates the wrapped hosts.
func (b *PlatformBackend) Topology() []HostTopo { return b.topo }

// LinkCost prices an inter-host transfer through the federation's
// per-pair link models.
func (b *PlatformBackend) LinkCost(a, bHost string, n int64) simclock.Duration {
	if a == bHost {
		return 0
	}
	return b.fleet.Federation().LinkCost(a, bHost, n)
}

func (b *PlatformBackend) fj(j *Job) (*sched.FleetJob, error) {
	fj, ok := j.FJ.(*sched.FleetJob)
	if !ok || fj == nil {
		return nil, fmt.Errorf("fleetd: job %d has no fleet binding", j.ID)
	}
	return fj, nil
}

// device maps the controller's card index to the member's SCIF node.
func device(cardIdx int) simnet.NodeID { return simnet.NodeID(cardIdx + 1) }

// callsPerBurst splits the workload's calls evenly over the job's
// bursts; the last burst absorbs the remainder.
func callsPerBurst(j *Job) int {
	n := j.Spec.Workload.Calls / j.Spec.Bursts
	if n < 1 {
		n = 1
	}
	return n
}

// Launch submits the job's workload on its assigned host and card.
func (b *PlatformBackend) Launch(j *Job) (simclock.Duration, error) {
	if j.Spec.Workload == nil {
		return 0, fmt.Errorf("fleetd: job %d has no workload spec", j.ID)
	}
	fj, err := b.fleet.Submit(*j.Spec.Workload, j.Host, device(j.Card))
	if err != nil {
		return 0, err
	}
	j.FJ = fj
	return b.model.RDMA(j.Spec.Footprint), nil
}

// RunBurst executes one burst's worth of offload calls.
func (b *PlatformBackend) RunBurst(j *Job) error {
	fj, err := b.fj(j)
	if err != nil {
		return err
	}
	want := callsPerBurst(j)
	if left := fj.Spec.Calls - fj.Inst.Progress(); left < want || j.burstsDone == j.Spec.Bursts-1 {
		want = fj.Spec.Calls - fj.Inst.Progress()
	}
	if want <= 0 {
		return nil
	}
	if _, err := fj.Inst.RunCalls(want); err != nil {
		return fmt.Errorf("fleetd: job %d burst: %w", j.ID, err)
	}
	return nil
}

// SwapOut checkpoints the whole application (durable, replicated per
// the fleet's capture options) and then swaps the offload process out
// through the store-backed path, freeing the card.
func (b *PlatformBackend) SwapOut(j *Job) (simclock.Duration, error) {
	fj, err := b.fj(j)
	if err != nil {
		return 0, err
	}
	rep, _, err := b.fleet.Checkpoint(fj)
	if err != nil {
		return 0, err
	}
	snap, err := b.fleet.SwapoutJob(fj)
	if err != nil {
		return 0, err
	}
	return rep.Total() + snap.Report.PauseTotal() + snap.Report.Capture, nil
}

// SwapIn revives the swapped-out offload process on its card.
func (b *PlatformBackend) SwapIn(j *Job, from string) (simclock.Duration, error) {
	fj, err := b.fj(j)
	if err != nil {
		return 0, err
	}
	if err := b.fleet.SwapinJob(fj, device(j.Card)); err != nil {
		return 0, err
	}
	dur := b.model.RDMA(j.Spec.Footprint)
	if from != "" && from != j.Host {
		dur += b.LinkCost(from, j.Host, j.Spec.Footprint)
	}
	return dur, nil
}

// Checkpoint captures a durable replicated snapshot of the live job.
func (b *PlatformBackend) Checkpoint(j *Job) (simclock.Duration, error) {
	fj, err := b.fj(j)
	if err != nil {
		return 0, err
	}
	rep, _, err := b.fleet.Checkpoint(fj)
	if err != nil {
		return 0, err
	}
	return rep.Total(), nil
}

// Holders returns the living holders of the job's snapshot directory.
func (b *PlatformBackend) Holders(j *Job) []string {
	fj, err := b.fj(j)
	if err != nil {
		return nil
	}
	fed := b.fleet.Federation()
	var out []string
	for _, h := range fed.Holders(fj.Dir) {
		if fed.Alive(h) {
			out = append(out, h)
		}
	}
	return out
}

// Migrate moves the live job to the destination host: checkpoint, ship
// the snapshot directory (deduped against the destination store),
// restart there.
func (b *PlatformBackend) Migrate(j *Job, dstHost string, dstCard int) (simclock.Duration, error) {
	fj, err := b.fj(j)
	if err != nil {
		return 0, err
	}
	stats, err := b.fleet.MigrateJob(fj, dstHost)
	if err != nil {
		return 0, err
	}
	return b.LinkCost(j.Host, dstHost, stats.BytesShipped) + b.model.RDMA(j.Spec.Footprint), nil
}

// Recover restarts a lost or swapped-out job from its closest replica
// onto the destination host.
func (b *PlatformBackend) Recover(j *Job, dstHost string, dstCard int) (simclock.Duration, error) {
	fj, err := b.fj(j)
	if err != nil {
		return 0, err
	}
	if err := b.fleet.RecoverJobOn(fj, dstHost); err != nil {
		return 0, err
	}
	dur := b.model.RDMA(j.Spec.Footprint)
	if fj.Host != dstHost {
		dur += b.LinkCost(fj.Host, dstHost, j.Spec.Footprint)
	}
	return dur, nil
}

// Finish marks the fleet job done and releases its instance.
func (b *PlatformBackend) Finish(j *Job) error {
	fj, err := b.fj(j)
	if err != nil {
		return err
	}
	fj.Done = true
	fj.Inst.Close()
	return nil
}

// HostKilled propagates a host failure into the fleet and federation.
func (b *PlatformBackend) HostKilled(name string) {
	// The error paths (unknown host, already dead) cannot fire here: the
	// controller only kills hosts it got from Topology, once.
	if err := b.fleet.KillHost(name); err != nil {
		panic(fmt.Sprintf("fleetd: killing host %s: %v", name, err)) //nolint:paniclib // invariant: topology hosts are fleet members
	}
}

// ensure the interface stays satisfied.
var _ Backend = (*PlatformBackend)(nil)
var _ Backend = (*ModelBackend)(nil)
