package experiments

import (
	"fmt"

	"snapify/internal/coi"
	"snapify/internal/phi"
	"snapify/internal/platform"
	"snapify/internal/simclock"
	"snapify/internal/simnet"
	"snapify/internal/trace"
	"snapify/internal/workloads"
)

// Fig9Row is one benchmark's runtime with and without Snapify support.
type Fig9Row struct {
	Code              string
	Baseline, Snapify simclock.Duration
	OverheadPct       float64
}

// Fig9Result is the runtime-overhead experiment.
type Fig9Result struct {
	Rows       []Fig9Row
	AveragePct float64
}

// Fig9Scale divides each benchmark's call count for the harness run; the
// per-call costs are constant, so the overhead percentage is
// scale-invariant, and the reported runtimes are extrapolated back to the
// full call count.
const Fig9Scale = 10

// Fig9 measures the runtime overhead the Snapify instrumentation adds to
// the normal (snapshot-free) execution of the eight OpenMP benchmarks.
func Fig9() (*Fig9Result, error) {
	res := &Fig9Result{}
	var sum float64
	for _, spec := range workloads.OpenMP {
		base, err := fig9Run(spec, true)
		if err != nil {
			return nil, fmt.Errorf("fig9 %s baseline: %w", spec.Code, err)
		}
		with, err := fig9Run(spec, false)
		if err != nil {
			return nil, fmt.Errorf("fig9 %s snapify: %w", spec.Code, err)
		}
		row := Fig9Row{
			Code:        spec.Code,
			Baseline:    base,
			Snapify:     with,
			OverheadPct: 100 * float64(with-base) / float64(base),
		}
		sum += row.OverheadPct
		res.Rows = append(res.Rows, row)
	}
	res.AveragePct = sum / float64(len(res.Rows))
	return res, nil
}

// fig9Run executes a scaled run and extrapolates the full-run time.
func fig9Run(spec workloads.Spec, noHooks bool) (simclock.Duration, error) {
	plat, err := platform.New(platform.Config{
		Server:    serverConfig(),
		NoSnapify: noHooks,
	})
	if err != nil {
		return 0, err
	}
	if err := coi.StartDaemons(plat); err != nil {
		return 0, err
	}
	defer coi.StopDaemons(plat)
	defer plat.IO.Stop()

	scaledSpec := spec
	scaledSpec.Calls = spec.Calls / Fig9Scale
	if scaledSpec.Calls < 20 {
		scaledSpec.Calls = 20
	}
	in, err := workloads.Launch(plat, scaledSpec, simnet.NodeID(1))
	if err != nil {
		return 0, err
	}
	defer in.Close()
	launchCost := in.Runtime()
	if _, err := in.Run(); err != nil {
		return 0, err
	}
	perCall := (in.Runtime() - launchCost) / simclock.Duration(scaledSpec.Calls)
	return launchCost + perCall*simclock.Duration(spec.Calls), nil
}

// Render prints the figure as a table (bars + the overhead line series).
func (r *Fig9Result) Render() string {
	t := trace.New("Fig 9: Runtime overhead of Snapify (normal execution, no snapshot)",
		"Benchmark", "Baseline", "With Snapify", "Overhead")
	for _, row := range r.Rows {
		t.Row(row.Code, trace.Seconds(row.Baseline), trace.Seconds(row.Snapify),
			fmt.Sprintf("%.2f%%", row.OverheadPct))
	}
	t.Row("average", "", "", fmt.Sprintf("%.2f%%", r.AveragePct))

	chart := trace.NewBarChart("", "s", "runtime with Snapify")
	for _, row := range r.Rows {
		chart.Bar(row.Code, []float64{row.Snapify.Seconds()},
			fmt.Sprintf("(+%.2f%%)", row.OverheadPct))
	}
	return t.String() + "\n" + chart.String()
}

// CheckShape verifies the paper's claims: overhead is positive for every
// benchmark, below 5% everywhere, largest for MD, and the average is in
// the paper's ~1.5% neighbourhood.
func (r *Fig9Result) CheckShape() error {
	var maxCode string
	var maxPct float64
	for _, row := range r.Rows {
		if row.OverheadPct <= 0 {
			return fmt.Errorf("fig9 %s: overhead %.3f%% not positive", row.Code, row.OverheadPct)
		}
		if row.OverheadPct >= 5 {
			return fmt.Errorf("fig9 %s: overhead %.2f%% breaches the 5%% bound", row.Code, row.OverheadPct)
		}
		if row.OverheadPct > maxPct {
			maxPct, maxCode = row.OverheadPct, row.Code
		}
	}
	if maxCode != "MD" {
		return fmt.Errorf("fig9: worst overhead is %s, the paper's is MD", maxCode)
	}
	if r.AveragePct < 0.3 || r.AveragePct > 3 {
		return fmt.Errorf("fig9: average overhead %.2f%% far from the paper's 1.5%%", r.AveragePct)
	}
	return nil
}

func serverConfig() phi.ServerConfig {
	return phi.ServerConfig{Devices: 2, Device: phi.DeviceConfig{MemBytes: 8 * simclock.GiB}}
}
