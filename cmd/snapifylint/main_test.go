package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The driver is exercised end-to-end through run() against the golden
// fixtures under internal/lint/testdata/src — real packages that
// type-check against the module, so findings are guaranteed.

const errcheckFixture = "internal/lint/testdata/src/errcheck"

// writeAllowlist drops an allowlist with the given entry lines into a
// temp dir and returns its path.
func writeAllowlist(t *testing.T, lines ...string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "allow.txt")
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exited %d, stderr: %s", code, stderr.String())
	}
	for _, name := range []string{"errcheck", "maporder", "spanleak", "lockorder", "closeleak"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output lacks analyzer %q:\n%s", name, stdout.String())
		}
	}
}

// TestRunSARIF checks the emitted log against the SARIF 2.1.0 shape:
// schema/version header, tool.driver.name, a rules table for the
// analyzers that fired, and results carrying ruleId, message.text and a
// physical location with a slash-separated relative URI.
func TestRunSARIF(t *testing.T) {
	sarifPath := filepath.Join(t.TempDir(), "out.sarif")
	allow := writeAllowlist(t, "# empty")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-allowlist", allow, "-sarif", sarifPath, errcheckFixture}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("expected exit 1 (fixture has findings), got %d\nstdout: %s\nstderr: %s",
			code, stdout.String(), stderr.String())
	}

	data, err := os.ReadFile(sarifPath)
	if err != nil {
		t.Fatalf("reading SARIF log: %v", err)
	}
	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID               string `json:"id"`
						ShortDescription struct {
							Text string `json:"text"`
						} `json:"shortDescription"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID  string `json:"ruleId"`
				Level   string `json:"level"`
				Message struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatalf("SARIF log is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	if !strings.Contains(log.Schema, "sarif-schema-2.1.0") {
		t.Errorf("$schema = %q, want a 2.1.0 schema reference", log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(log.Runs))
	}
	r := log.Runs[0]
	if r.Tool.Driver.Name != "snapifylint" {
		t.Errorf("tool.driver.name = %q, want snapifylint", r.Tool.Driver.Name)
	}
	if len(r.Results) == 0 {
		t.Fatal("SARIF log has no results for a fixture full of findings")
	}
	ruleIDs := make(map[string]bool)
	for _, rule := range r.Tool.Driver.Rules {
		ruleIDs[rule.ID] = true
		if rule.ShortDescription.Text == "" {
			t.Errorf("rule %s has an empty shortDescription", rule.ID)
		}
	}
	for _, res := range r.Results {
		if !ruleIDs[res.RuleID] {
			t.Errorf("result ruleId %q missing from the rules table", res.RuleID)
		}
		if res.Level != "warning" {
			t.Errorf("result level = %q, want warning", res.Level)
		}
		if res.Message.Text == "" {
			t.Error("result has an empty message.text")
		}
		if len(res.Locations) != 1 {
			t.Fatalf("result has %d locations, want 1", len(res.Locations))
		}
		loc := res.Locations[0].PhysicalLocation
		if strings.Contains(loc.ArtifactLocation.URI, "\\") || filepath.IsAbs(loc.ArtifactLocation.URI) {
			t.Errorf("URI %q is not a slash-separated relative path", loc.ArtifactLocation.URI)
		}
		if loc.Region.StartLine < 1 {
			t.Errorf("startLine = %d, want >= 1", loc.Region.StartLine)
		}
	}
}

// TestRunUnusedAllowlist covers both outcomes of -unused-allowlist: a
// clean list (every entry still matches) exits 0, a stale entry is
// reported on stdout and flips the exit to 1.
func TestRunUnusedAllowlist(t *testing.T) {
	used := "errcheck internal/lint/testdata/src/errcheck/errcheck.go errcheck.allowme -- driver test: a live entry"
	stale := "wallclock internal/lint/testdata/src/errcheck/errcheck.go time.Now -- driver test: a stale decoy"

	t.Run("clean", func(t *testing.T) {
		allow := writeAllowlist(t, used)
		var stdout, stderr bytes.Buffer
		code := run([]string{"-allowlist", allow, "-unused-allowlist", errcheckFixture}, &stdout, &stderr)
		if code != 0 {
			t.Fatalf("expected exit 0 for a clean allowlist, got %d\nstdout: %s\nstderr: %s",
				code, stdout.String(), stderr.String())
		}
		if !strings.Contains(stdout.String(), "clean") {
			t.Errorf("clean run should say so:\n%s", stdout.String())
		}
	})

	t.Run("stale", func(t *testing.T) {
		allow := writeAllowlist(t, used, stale)
		var stdout, stderr bytes.Buffer
		code := run([]string{"-allowlist", allow, "-unused-allowlist", errcheckFixture}, &stdout, &stderr)
		if code != 1 {
			t.Fatalf("expected exit 1 for a stale entry, got %d\nstdout: %s", code, stdout.String())
		}
		out := stdout.String()
		if !strings.Contains(out, "unused allowlist entry") || !strings.Contains(out, "time.Now") {
			t.Errorf("stale entry not reported:\n%s", out)
		}
		if strings.Contains(out, "errcheck.allowme") {
			t.Errorf("live entry must not be reported as stale:\n%s", out)
		}
	})
}

// TestRunStatsFlag: -stats appends one line per analyzer plus a total,
// after the findings.
func TestRunStats(t *testing.T) {
	allow := writeAllowlist(t, "# empty")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-allowlist", allow, "-stats", errcheckFixture}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("expected exit 1, got %d\nstderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, name := range []string{"errcheck", "maporder", "spanleak", "lockorder", "closeleak", "total"} {
		if !strings.Contains(out, "stats: "+name) {
			t.Errorf("-stats output lacks a line for %q:\n%s", name, out)
		}
	}
	if !strings.Contains(out, "wall=") {
		t.Errorf("-stats output lacks wall-clock figures:\n%s", out)
	}
}
