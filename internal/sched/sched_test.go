package sched

import (
	"testing"
	"time"

	"snapify/internal/coi"
	"snapify/internal/phi"
	"snapify/internal/platform"
	"snapify/internal/simclock"
	"snapify/internal/workloads"
)

// smallSpec is a compact job used to force memory pressure on a small card.
func smallSpec(code string, calls int) workloads.Spec {
	return workloads.Spec{
		Code: code, Name: code,
		HostMem:   8 * simclock.MiB,
		DeviceMem: 256 * simclock.MiB,
		// Local store + device memory + runtime ~ 600 MiB per job.
		LocalStore:     256 * simclock.MiB,
		Calls:          calls,
		StepsPerCall:   2,
		ComputePerCall: time.Millisecond,
		InPerCall:      16 * simclock.KiB,
		OutPerCall:     16 * simclock.KiB,
	}
}

func newSched(t *testing.T, devices int, cardMem int64) *Scheduler {
	t.Helper()
	plat, err := platform.New(platform.Config{Server: phi.ServerConfig{
		Devices: devices,
		Device:  phi.DeviceConfig{MemBytes: cardMem},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := coi.StartDaemons(plat); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coi.StopDaemons(plat) })
	return New(plat)
}

func TestMultiTenancyViaSwapping(t *testing.T) {
	// A 1.5 GiB card cannot hold two ~600 MiB jobs plus the OS reserve at
	// once: the scheduler must swap to run both.
	s := newSched(t, 1, 1536*simclock.MiB)
	j1, err := s.Submit(smallSpec("J1", 6), 1)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := s.Submit(smallSpec("J2", 6), 1)
	if err != nil {
		t.Fatal(err)
	}
	if j1.State != SwappedOut {
		t.Fatalf("submitting job 2 should have swapped job 1 out (state %v)", j1.State)
	}
	if j2.State != Resident {
		t.Fatalf("job 2 state %v", j2.State)
	}

	swaps, err := s.RunRoundRobin(2)
	if err != nil {
		t.Fatal(err)
	}
	if swaps < 2 {
		t.Errorf("round robin finished with only %d swaps; no real sharing happened", swaps)
	}
	for _, j := range s.Jobs() {
		if j.State != Done {
			t.Errorf("job %d not done: %v", j.ID, j.State)
		}
	}
}

func TestNoSwappingWhenCardFitsBoth(t *testing.T) {
	s := newSched(t, 1, 8*simclock.GiB)
	s.Submit(smallSpec("A", 4), 1) //nolint:errcheck
	s.Submit(smallSpec("B", 4), 1) //nolint:errcheck
	swaps, err := s.RunRoundRobin(2)
	if err != nil {
		t.Fatal(err)
	}
	if swaps != 0 {
		t.Errorf("%d swaps on a card that fits both jobs", swaps)
	}
}

func TestSubmitFailsWhenNothingToEvict(t *testing.T) {
	s := newSched(t, 1, 1024*simclock.MiB)
	spec := smallSpec("HUGE", 2)
	spec.LocalStore = 4 * simclock.GiB
	if _, err := s.Submit(spec, 1); err == nil {
		t.Fatal("oversized job must be rejected")
	}
}

func TestEvacuateMigratesJobs(t *testing.T) {
	s := newSched(t, 2, 8*simclock.GiB)
	j1, err := s.Submit(smallSpec("E1", 6), 1)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := s.Submit(smallSpec("E2", 6), 1)
	if err != nil {
		t.Fatal(err)
	}
	j1.Inst.RunCalls(2) //nolint:errcheck
	j2.Inst.RunCalls(2) //nolint:errcheck

	// Fault prediction flags card 1: evacuate everything to card 2.
	if err := s.Evacuate(1, 2); err != nil {
		t.Fatal(err)
	}
	for _, j := range s.Jobs() {
		if j.Device != 2 {
			t.Errorf("job %d still on %v", j.ID, j.Device)
		}
	}
	// Both jobs finish correctly on the new card.
	if _, err := s.RunRoundRobin(3); err != nil {
		t.Fatal(err)
	}
	for _, j := range s.Jobs() {
		if j.State != Done {
			t.Errorf("job %d not done after evacuation", j.ID)
		}
	}
	if err := s.Evacuate(1, 1); err == nil {
		t.Error("evacuating onto the failing card must fail")
	}
}
