// Package workloads provides the benchmark applications of the paper's
// evaluation (Section 7): eight OpenMP-style offload benchmarks (Table 5)
// and the three NAS multi-zone MPI benchmarks (LU-MZ, SP-MZ, BT-MZ,
// class C).
//
// Table 5 is an image in our source of the paper, so only the four
// benchmarks named in the text (MD, MC, SS, SG) are certain; the other
// four are representative stand-ins (documented in EXPERIMENTS.md). Each
// Spec's footprint and call pattern is calibrated so the suite reproduces
// the figures' qualitative structure: MD makes the most offload calls and
// shows the largest Snapify hook overhead (just under 5%); MC is the
// smallest process and migrates fastest; SS and SG have local stores far
// larger than their device snapshots, so their pauses dominate and their
// checkpoint sizes reach the paper's gigabyte range (Figs 9 and 10).
package workloads

import (
	"time"

	"snapify/internal/simclock"
)

// Spec describes one OpenMP-style offload benchmark.
type Spec struct {
	// Code is the two-letter benchmark name used in the figures.
	Code string
	// Name is the descriptive name (Table 5).
	Name string

	// HostMem is the host process's private data footprint (drives the
	// host snapshot size).
	HostMem int64
	// DeviceMem is the offload process's private heap (drives the device
	// snapshot size).
	DeviceMem int64
	// LocalStore is the total COI buffer footprint (drives pause time and
	// the local-store file size).
	LocalStore int64

	// Calls is the number of offload-region invocations in a full run.
	Calls int
	// StepsPerCall is the kernel's step count per invocation (each step is
	// a snapshot-safe point).
	StepsPerCall int
	// ComputePerCall is the offload compute time per invocation.
	ComputePerCall simclock.Duration
	// InPerCall / OutPerCall are the per-invocation buffer transfers.
	InPerCall, OutPerCall int64
}

// OpenMP is the paper's eight-benchmark OpenMP suite.
var OpenMP = []Spec{
	{
		Code: "MD", Name: "Molecular Dynamics",
		HostMem: 64 * simclock.MiB, DeviceMem: 96 * simclock.MiB, LocalStore: 48 * simclock.MiB,
		Calls: 20000, StepsPerCall: 4, ComputePerCall: 1500 * time.Microsecond,
		InPerCall: 64 * simclock.KiB, OutPerCall: 16 * simclock.KiB,
	},
	{
		Code: "MC", Name: "Monte Carlo Option Pricing",
		HostMem: 16 * simclock.MiB, DeviceMem: 32 * simclock.MiB, LocalStore: 8 * simclock.MiB,
		Calls: 100, StepsPerCall: 16, ComputePerCall: 300 * time.Millisecond,
		InPerCall: 8 * simclock.KiB, OutPerCall: 8 * simclock.KiB,
	},
	{
		Code: "SS", Name: "Sparse Solver",
		HostMem: 900 * simclock.MiB, DeviceMem: 128 * simclock.MiB, LocalStore: 1200 * simclock.MiB,
		Calls: 200, StepsPerCall: 16, ComputePerCall: 150 * time.Millisecond,
		InPerCall: 1 * simclock.MiB, OutPerCall: 256 * simclock.KiB,
	},
	{
		Code: "SG", Name: "Scatter-Gather",
		HostMem: 700 * simclock.MiB, DeviceMem: 96 * simclock.MiB, LocalStore: 1000 * simclock.MiB,
		Calls: 300, StepsPerCall: 12, ComputePerCall: 100 * time.Millisecond,
		InPerCall: 2 * simclock.MiB, OutPerCall: 512 * simclock.KiB,
	},
	{
		Code: "NB", Name: "N-Body",
		HostMem: 96 * simclock.MiB, DeviceMem: 256 * simclock.MiB, LocalStore: 128 * simclock.MiB,
		Calls: 5000, StepsPerCall: 8, ComputePerCall: 8 * time.Millisecond,
		InPerCall: 128 * simclock.KiB, OutPerCall: 128 * simclock.KiB,
	},
	{
		Code: "JC", Name: "Jacobi 2D Stencil",
		HostMem: 48 * simclock.MiB, DeviceMem: 384 * simclock.MiB, LocalStore: 256 * simclock.MiB,
		Calls: 3000, StepsPerCall: 8, ComputePerCall: 10 * time.Millisecond,
		InPerCall: 64 * simclock.KiB, OutPerCall: 64 * simclock.KiB,
	},
	{
		Code: "KM", Name: "K-Means Clustering",
		HostMem: 128 * simclock.MiB, DeviceMem: 192 * simclock.MiB, LocalStore: 160 * simclock.MiB,
		Calls: 8000, StepsPerCall: 6, ComputePerCall: 5 * time.Millisecond,
		InPerCall: 96 * simclock.KiB, OutPerCall: 32 * simclock.KiB,
	},
	{
		Code: "BS", Name: "Black-Scholes",
		HostMem: 32 * simclock.MiB, DeviceMem: 64 * simclock.MiB, LocalStore: 96 * simclock.MiB,
		Calls: 12000, StepsPerCall: 4, ComputePerCall: 2500 * time.Microsecond,
		InPerCall: 48 * simclock.KiB, OutPerCall: 48 * simclock.KiB,
	},
}

// ByCode returns the OpenMP spec with the given code.
func ByCode(code string) (Spec, bool) {
	for _, s := range OpenMP {
		if s.Code == code {
			return s, true
		}
	}
	return Spec{}, false
}

// MZSpec describes one NAS multi-zone MPI benchmark (class C). The zones
// partition across ranks, so per-rank memory — and hence per-rank
// checkpoint size — shrinks as ranks are added (Fig 11c).
type MZSpec struct {
	Code string
	// TotalHostMem and TotalDeviceMem are the aggregate class-C problem
	// footprints, divided across ranks.
	TotalHostMem   int64
	TotalDeviceMem int64
	TotalLocal     int64
	// Iterations is the outer time-step count; each iteration is one
	// offload call per rank plus a boundary exchange.
	Iterations int
	// ComputePerIter is the aggregate compute per iteration (divided
	// across ranks).
	ComputePerIter simclock.Duration
	// ExchangeBytes is the per-neighbor boundary exchange per iteration.
	ExchangeBytes int64
}

// NASMZ is the paper's MPI suite: LU-MZ, SP-MZ, BT-MZ, class C.
var NASMZ = []MZSpec{
	{
		Code:           "LU-MZ",
		TotalHostMem:   600 * simclock.MiB,
		TotalDeviceMem: 900 * simclock.MiB,
		TotalLocal:     500 * simclock.MiB,
		Iterations:     250,
		ComputePerIter: 600 * time.Millisecond,
		ExchangeBytes:  2 * simclock.MiB,
	},
	{
		Code:           "SP-MZ",
		TotalHostMem:   500 * simclock.MiB,
		TotalDeviceMem: 800 * simclock.MiB,
		TotalLocal:     400 * simclock.MiB,
		Iterations:     400,
		ComputePerIter: 350 * time.Millisecond,
		ExchangeBytes:  1 * simclock.MiB,
	},
	{
		Code:           "BT-MZ",
		TotalHostMem:   700 * simclock.MiB,
		TotalDeviceMem: 1100 * simclock.MiB,
		TotalLocal:     600 * simclock.MiB,
		Iterations:     200,
		ComputePerIter: 800 * time.Millisecond,
		ExchangeBytes:  3 * simclock.MiB,
	},
}

// MZByCode returns the MZ spec with the given code.
func MZByCode(code string) (MZSpec, bool) {
	for _, s := range NASMZ {
		if s.Code == code {
			return s, true
		}
	}
	return MZSpec{}, false
}
