#!/bin/sh
# verify.sh — the one-command tier-1 gate (ROADMAP.md "Tier-1 verify").
#
# Runs, in order: formatting, go vet, the build, the Snapify-specific
# static analyzers (cmd/snapifylint — exits non-zero on any unjustified
# finding), and the full test suite under the race detector. Run it from
# anywhere inside the module; it cds to the module root first.
set -eu

cd "$(dirname "$0")/.."

echo "==> gofmt"
unformatted=$(gofmt -l $(git ls-files '*.go'))
if [ -n "$unformatted" ]; then
    echo "gofmt: needs formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> snapifylint ./internal/... ./cmd/..."
go run ./cmd/snapifylint ./internal/... ./cmd/...

echo "==> go test -race ./..."
go test -race ./...

echo "==> snapbench -parallel -smoke -trace (parallel capture + trace smoke)"
# The -trace flag makes snapbench export the sweep's Chrome trace and
# schema-check it (obs.ValidateChromeTrace) before writing; a malformed
# trace fails the gate.
trace_out=$(mktemp /tmp/snapify_trace_smoke.XXXXXX.json)
go run ./cmd/snapbench -parallel -smoke -trace "$trace_out"
rm -f "$trace_out"

echo "verify: all gates passed"
