package blob

import (
	"fmt"
	"sort"
)

// Buffer is a mutable, fixed-size memory content: a synthetic background
// (what the memory held when allocated) plus an overlay of every range the
// application has actually written. It is the content representation of a
// simulated process's memory regions and COI buffers.
//
// Buffer is not safe for concurrent use; the owning process model
// serializes access (a real process's memory has no internal locking
// either).
type Buffer struct {
	size   int64
	seed   uint64
	writes []span // sorted by off, non-overlapping, non-adjacent
}

type span struct {
	off  int64
	data []byte
}

// NewBuffer returns a Buffer of size bytes of background content seed
// (seed 0 = zero-filled, like fresh anonymous memory).
func NewBuffer(size int64, seed uint64) *Buffer {
	if size < 0 {
		panic(fmt.Sprintf("blob: negative buffer size %d", size)) //nolint:paniclib // caller bug: a negative size is unconstructible input, not a runtime condition
	}
	return &Buffer{size: size, seed: seed}
}

// Size returns the buffer size in bytes.
func (b *Buffer) Size() int64 { return b.size }

// DirtyBytes returns the number of overlay (written) bytes.
func (b *Buffer) DirtyBytes() int64 {
	var n int64
	for _, w := range b.writes {
		n += int64(len(w.data))
	}
	return n
}

// WriteAt copies p into the buffer at off.
func (b *Buffer) WriteAt(p []byte, off int64) {
	if off < 0 || off+int64(len(p)) > b.size {
		panic(fmt.Sprintf("blob: write [%d,%d) out of range of %d", off, off+int64(len(p)), b.size)) //nolint:paniclib // caller bug: write bounds, mirroring built-in slice semantics
	}
	if len(p) == 0 {
		return
	}
	end := off + int64(len(p))

	// Fast path: the write lands entirely inside one existing span (the
	// steady state once a hot region has coalesced) — copy in place.
	lo := sort.Search(len(b.writes), func(i int) bool {
		return b.writes[i].off+int64(len(b.writes[i].data)) >= off
	})
	if lo < len(b.writes) {
		if w := b.writes[lo]; w.off <= off && end <= w.off+int64(len(w.data)) {
			copy(w.data[off-w.off:], p)
			return
		}
	}

	// Append fast path: the write overlaps or abuts the tail of exactly
	// one span and extends it (the steady state of sequential writers) —
	// extend with append, which amortizes instead of re-copying the span.
	hiProbe := sort.Search(len(b.writes), func(i int) bool {
		return b.writes[i].off > end
	})
	if hiProbe == lo+1 {
		w := &b.writes[lo]
		wEnd := w.off + int64(len(w.data))
		if off >= w.off && off <= wEnd && end > wEnd {
			inPlace := wEnd - off // bytes overwriting existing data
			copy(w.data[off-w.off:], p[:inPlace])
			w.data = append(w.data, p[inPlace:]...)
			return
		}
	}

	// Slow path: merge all spans overlapping or adjacent to [off, end)
	// with the new data into a single span.
	hi := sort.Search(len(b.writes), func(i int) bool {
		return b.writes[i].off > end
	})
	if lo == hi {
		// No overlap/adjacency: insert a fresh span.
		data := make([]byte, len(p))
		copy(data, p)
		b.writes = append(b.writes, span{})
		copy(b.writes[lo+1:], b.writes[lo:])
		b.writes[lo] = span{off: off, data: data}
		return
	}
	first, last := b.writes[lo], b.writes[hi-1]
	newOff := first.off
	if off < newOff {
		newOff = off
	}
	newEnd := last.off + int64(len(last.data))
	if end > newEnd {
		newEnd = end
	}
	merged := make([]byte, newEnd-newOff)
	for _, w := range b.writes[lo:hi] {
		copy(merged[w.off-newOff:], w.data)
	}
	copy(merged[off-newOff:], p)
	b.writes[lo] = span{off: newOff, data: merged}
	b.writes = append(b.writes[:lo+1], b.writes[hi:]...)
}

// Fill writes n copies of v starting at off.
func (b *Buffer) Fill(v byte, off, n int64) {
	p := make([]byte, n)
	if v != 0 {
		for i := range p {
			p[i] = v
		}
	}
	b.WriteAt(p, off)
}

// ReadAt fills p with buffer content at off.
func (b *Buffer) ReadAt(p []byte, off int64) {
	if off < 0 || off+int64(len(p)) > b.size {
		panic(fmt.Sprintf("blob: read [%d,%d) out of range of %d", off, off+int64(len(p)), b.size)) //nolint:paniclib // caller bug: read bounds, mirroring built-in slice semantics
	}
	Materialize(b.seed, off, p)
	lo := sort.Search(len(b.writes), func(i int) bool {
		return b.writes[i].off+int64(len(b.writes[i].data)) > off
	})
	end := off + int64(len(p))
	for i := lo; i < len(b.writes) && b.writes[i].off < end; i++ {
		w := b.writes[i]
		s, e := w.off, w.off+int64(len(w.data))
		if s < off {
			s = off
		}
		if e > end {
			e = end
		}
		copy(p[s-off:e-off], w.data[s-w.off:e-w.off])
	}
}

// Snapshot returns an immutable Blob of the buffer's current content:
// literal extents for written ranges, synthetic extents for untouched
// background.
func (b *Buffer) Snapshot() Blob { return b.SnapshotRange(0, b.size) }

// Restore overwrites the buffer's entire content from a blob of the same
// size. Literal extents become overlay writes; synthetic extents with the
// buffer's own seed and matching stream offset collapse back to background.
func (b *Buffer) Restore(src Blob) {
	if src.Len() != b.size {
		panic(fmt.Sprintf("blob: restore size %d into buffer of %d", src.Len(), b.size)) //nolint:paniclib // caller bug: a restore image matches the buffer size by protocol construction
	}
	b.writes = nil
	b.WriteBlob(0, src)
}

// WriteBlob copies src into the buffer at off. Literal extents become
// overlay writes; a synthetic extent that already matches the buffer's own
// background at that position is a no-op (this is the fast path that lets
// RDMA transfers and restores of mostly-untouched gigabyte regions stay
// cheap); any other synthetic extent is materialized in bounded windows.
func (b *Buffer) WriteBlob(off int64, src Blob) {
	if off < 0 || off+src.Len() > b.size {
		panic(fmt.Sprintf("blob: WriteBlob [%d,%d) out of range of %d", off, off+src.Len(), b.size)) //nolint:paniclib // caller bug: write bounds, mirroring built-in slice semantics
	}
	pos := off
	for _, e := range src.Extents() {
		switch {
		case e.IsLiteral():
			b.WriteAt(e.Literal, pos)
		case e.Seed == b.seed && e.Off == pos:
			// Identical background: nothing to write, but any overlay
			// previously covering this range must be cleared so the
			// background shows through again.
			b.clearOverlay(pos, e.Size)
		default:
			buf := make([]byte, cmpChunk)
			for done := int64(0); done < e.Size; {
				n := e.Size - done
				if n > cmpChunk {
					n = cmpChunk
				}
				Materialize(e.Seed, e.Off+done, buf[:n])
				b.WriteAt(buf[:n], pos+done)
				done += n
			}
		}
		pos += e.Size
	}
}

// clearOverlay removes overlay data in [off, off+n), exposing background.
func (b *Buffer) clearOverlay(off, n int64) {
	if n <= 0 {
		return
	}
	end := off + n
	var out []span
	for _, w := range b.writes {
		ws, we := w.off, w.off+int64(len(w.data))
		if we <= off || ws >= end {
			out = append(out, w)
			continue
		}
		if ws < off {
			out = append(out, span{off: ws, data: w.data[:off-ws]})
		}
		if we > end {
			out = append(out, span{off: end, data: w.data[end-ws:]})
		}
	}
	b.writes = out
}

// SnapshotRange returns an immutable Blob of the buffer content in
// [off, off+n).
func (b *Buffer) SnapshotRange(off, n int64) Blob {
	if off < 0 || n < 0 || off+n > b.size {
		panic(fmt.Sprintf("blob: SnapshotRange [%d,%d) out of range of %d", off, off+n, b.size)) //nolint:paniclib // caller bug: snapshot bounds, mirroring built-in slice semantics
	}
	if n == 0 {
		return Blob{}
	}
	var out Blob
	end := off + n
	pos := off
	lo := sort.Search(len(b.writes), func(i int) bool {
		return b.writes[i].off+int64(len(b.writes[i].data)) > off
	})
	for i := lo; i < len(b.writes) && b.writes[i].off < end; i++ {
		w := b.writes[i]
		ws, we := w.off, w.off+int64(len(w.data))
		if ws < pos {
			ws = pos
		}
		if we > end {
			we = end
		}
		if ws > pos {
			out.extents = append(out.extents, Extent{Seed: b.seed, Off: pos, Size: ws - pos})
			out.size += ws - pos
		}
		data := make([]byte, we-ws)
		copy(data, w.data[ws-w.off:we-w.off])
		out.extents = append(out.extents, Extent{Literal: data, Size: int64(len(data))})
		out.size += int64(len(data))
		pos = we
	}
	if pos < end {
		out.extents = append(out.extents, Extent{Seed: b.seed, Off: pos, Size: end - pos})
		out.size += end - pos
	}
	return out
}
