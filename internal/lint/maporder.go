package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapOrder reports map-range iterations whose per-iteration effects reach
// an order-sensitive serialization sink — wire encoding, trace/metrics
// export, manifest or JSON serialization — without an intervening sort.
// Go randomizes map iteration order on purpose, and every acceptance pin
// in this repo (byte-identical serial-vs-parallel snapshots, seed-replay-
// identical Chrome traces, golden Prometheus expositions) assumes the
// bytes that cross a choke point are a pure function of the inputs. A
// single `for k, v := range m { encode(v) }` quietly breaks all of them.
//
// The analysis is order-taint dataflow, not value taint: the problem is
// the *sequence* of sink calls, so a slice appended to inside a map range
// inherits the taint, sort.* / slices.Sort* cleanse it, and a later range
// over the cleansed slice is fine. Sink reachability is interprocedural
// over the module call graph (Program.Reaches), so a loop body that calls
// a helper which eventually hits the wire is still flagged. Counting,
// summing, and building maps/sets inside a map range stay out of scope —
// they are order-insensitive.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "no map-range iteration whose effects reach wire encoding, trace/metrics export, or serialization without an intervening sort",
	Run:  runMapOrder,
}

// mapOrderSink classifies callees whose call order is observable in
// serialized output. Kept deliberately curated: order-insensitive APIs
// (metric Inc/Add, map inserts) must not be here or the analyzer drowns
// real findings in noise.
func mapOrderSink(f *types.Func) bool {
	if f == nil || f.Pkg() == nil {
		return false
	}
	switch f.Pkg().Path() {
	case "encoding/json", "encoding/binary", "encoding/gob", "encoding/xml":
		return true
	case "fmt":
		// Writer-directed output is a sink; Sprintf into a local is not —
		// the string's later use decides, and if it lands in a slice the
		// taint rules carry it there.
		return strings.HasPrefix(f.Name(), "Fprint")
	}
	// Module-side order-sensitive choke points.
	switch {
	case funcPkgPathHasSuffix(f, "internal/obs"):
		// Track creation order fixes Perfetto pid/tid numbering; span
		// emission order tie-breaks export sorting; scope IDs are
		// allocated in call order.
		switch f.Name() {
		case "Track", "Emit", "Span", "Begin", "BeginAt", "NewScope":
			return true
		}
	case funcPkgPathHasSuffix(f, "internal/scif"):
		// Anything that puts bytes on the fabric, in order.
		switch f.Name() {
		case "Send", "WriteTo", "VWriteTo", "ReadFrom", "VReadFrom":
			return true
		}
	case funcPkgPathHasSuffix(f, "internal/snapifyio"):
		// Stream writes are wire messages; Open/Close order shows up in
		// daemon-side stream IDs and virtual-clock accounting.
		switch f.Name() {
		case "WriteBlob", "WriteBlobAt", "Flush", "Open", "OpenStream", "Close":
			return true
		}
	case funcPkgPathHasSuffix(f, "internal/snapstore"):
		// Upload/commit order is manifest and negotiation order.
		switch f.Name() {
		case "BeginUpload", "Commit", "Put", "Release", "Retain":
			return true
		}
	}
	return false
}

// mapOrderCleanser reports calls that impose a deterministic order on
// their first (slice) argument in place.
func mapOrderCleanser(f *types.Func) bool {
	if f == nil || f.Pkg() == nil {
		return false
	}
	switch f.Pkg().Path() {
	case "sort":
		switch f.Name() {
		case "Strings", "Ints", "Float64s", "Slice", "SliceStable", "Sort", "Stable":
			return true
		}
	case "slices":
		return strings.HasPrefix(f.Name(), "Sort")
	}
	return false
}

func runMapOrder(p *Pass) {
	reaches := p.Prog.Reaches(mapOrderSink)
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkMapOrderFunc(p, fd.Body, reaches)
		}
	}
}

// mapOrderChecker carries the per-function analysis state.
type mapOrderChecker struct {
	pass    *Pass
	info    *types.Info
	cfg     *CFG
	reaches map[*types.Func]bool
	// enclosingRanges maps each assignment statement to the range
	// statements lexically surrounding it, innermost last.
	enclosingRanges map[*ast.AssignStmt][]*ast.RangeStmt
	in              map[*Block]Facts
}

// checkMapOrderFunc runs the order-taint analysis over one function body.
// Function literals nested in the body are part of the same CFG-free
// lexical region; their statements are visited by the same inspection, so
// taint into and out of a literal is approximated lexically.
func checkMapOrderFunc(p *Pass, body *ast.BlockStmt, reaches map[*types.Func]bool) {
	c := &mapOrderChecker{
		pass:            p,
		info:            p.Pkg.Info,
		cfg:             p.Prog.CFGOf(body),
		reaches:         reaches,
		enclosingRanges: map[*ast.AssignStmt][]*ast.RangeStmt{},
	}
	// Precompute the lexical range-nesting of every assignment, so the
	// transfer function can tell "this append runs in map order".
	var stack []*ast.RangeStmt
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.RangeStmt:
			stack = append(stack, node)
			ast.Inspect(node.Body, walk)
			stack = stack[:len(stack)-1]
			return false
		case *ast.AssignStmt:
			if len(stack) > 0 {
				c.enclosingRanges[node] = append([]*ast.RangeStmt(nil), stack...)
			}
		}
		return true
	}
	ast.Inspect(body, walk)

	c.in = SolveForward(c.cfg, Facts{}, c.transfer)

	// Visit every range statement: a range over a map, or over an
	// order-tainted slice, makes the body's iteration order
	// nondeterministic; any sink-reaching call inside is a finding. A
	// sink-reaching call taking a tainted slice as argument outside any
	// such loop is also a finding (the order rides in, serialized there).
	for _, b := range c.cfg.Blocks {
		for _, n := range b.Nodes {
			if rng, ok := n.(*ast.RangeStmt); ok {
				facts := FactsAt(c.cfg, c.in, rng, c.transfer)
				if src := c.rangeOrderSource(rng, facts); src != "" {
					c.reportSinks(rng, src)
					continue
				}
			}
			c.checkTaintedArgs(n)
		}
	}
}

// transfer is the dataflow transfer function: facts are the set of
// order-tainted variable objects.
func (c *mapOrderChecker) transfer(n ast.Node, in Facts) Facts {
	switch stmt := n.(type) {
	case *ast.AssignStmt:
		inMapLoop := false
		for _, rng := range c.enclosingRanges[stmt] {
			if c.rangeOrderSource(rng, in) != "" {
				inMapLoop = true
				break
			}
		}
		for i, lhs := range stmt.Lhs {
			obj := assignedObj(c.info, lhs)
			if obj == nil {
				continue
			}
			var rhs ast.Expr
			if len(stmt.Rhs) == len(stmt.Lhs) {
				rhs = stmt.Rhs[i]
			} else if len(stmt.Rhs) == 1 {
				rhs = stmt.Rhs[0]
			}
			switch {
			case rhs != nil && inMapLoop && isAppendOf(c.info, rhs, obj):
				// s = append(s, ...) in map order: the slice's element
				// order is now nondeterministic.
				in[obj] = true
			case rhs != nil && c.rhsOrderTainted(rhs, in):
				in[obj] = true
			case len(stmt.Rhs) == len(stmt.Lhs):
				// Plain overwrite with untainted data cleanses.
				delete(in, obj)
			}
		}
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(stmt.X).(*ast.CallExpr); ok {
			if f := calleeFunc(c.info, call); mapOrderCleanser(f) && len(call.Args) > 0 {
				if obj := assignedObj(c.info, call.Args[0]); obj != nil {
					delete(in, obj)
				}
			}
		}
	}
	return in
}

// rangeOrderSource classifies a range statement's iteration order under
// the given facts: "a map" for map operands, a description for
// order-tainted slices, "" for deterministic iteration.
func (c *mapOrderChecker) rangeOrderSource(rng *ast.RangeStmt, facts Facts) string {
	if tv, ok := c.info.Types[rng.X]; ok && isMapType(tv.Type) {
		return "a map"
	}
	if obj := assignedObj(c.info, rng.X); obj != nil && facts[obj] {
		return "a slice built in map-iteration order (no intervening sort)"
	}
	return ""
}

// reportSinks scans a nondeterministically-ordered loop body for calls
// that are (or reach) a serialization sink.
func (c *mapOrderChecker) reportSinks(rng *ast.RangeStmt, source string) {
	reported := map[token.Pos]bool{}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.RangeStmt); ok && inner != rng {
			// A nested map range is reported on its own visit; skip its
			// body to avoid double findings.
			if tv, ok := c.info.Types[inner.X]; ok && isMapType(tv.Type) {
				return false
			}
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || reported[call.Pos()] {
			return true
		}
		if how := c.sinkHow(call); how != "" {
			reported[call.Pos()] = true
			c.pass.Reportf(rng.Pos(), "iteration over %s %s at line %d: iteration order is nondeterministic and leaks into serialized output; collect and sort first",
				source, how, c.pass.Fset().Position(call.Pos()).Line)
		}
		return true
	})
}

// sinkHow describes how a call hits a serialization sink ("" if it does
// not): directly, through the call graph, or through interface dispatch.
func (c *mapOrderChecker) sinkHow(call *ast.CallExpr) string {
	f := calleeFunc(c.info, call)
	if f == nil {
		return ""
	}
	if mapOrderSink(f) {
		return "calls " + funcDisplayName(f)
	}
	if c.reaches[f] {
		return "reaches a serialization sink via " + c.pass.Prog.SinkPath(f, mapOrderSink, c.reaches)
	}
	if site, ok := c.pass.Prog.SiteOf(call); ok {
		for _, impl := range site.Impls {
			if mapOrderSink(impl) || c.reaches[impl] {
				return "may dispatch to sink-reaching " + funcDisplayName(impl)
			}
		}
	}
	return ""
}

// checkTaintedArgs reports sink-reaching calls handed an order-tainted
// slice outside a flagged loop: the nondeterministic order rides into the
// callee and is serialized there.
func (c *mapOrderChecker) checkTaintedArgs(n ast.Node) {
	if _, isAssume := n.(*Assume); isAssume {
		return // synthetic guard node; ast.Inspect cannot walk it
	}
	facts := FactsAt(c.cfg, c.in, n, c.transfer)
	if len(facts) == 0 {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		f := calleeFunc(c.info, call)
		if f == nil || (!mapOrderSink(f) && !c.reaches[f]) {
			return true
		}
		for _, arg := range call.Args {
			obj := assignedObj(c.info, arg)
			if obj == nil || !facts[obj] {
				continue
			}
			c.pass.Reportf(call.Pos(), "%s is called with %q, a slice built in map-iteration order (no intervening sort), and reaches a serialization sink (%s)",
				funcDisplayName(f), obj.Name(), c.pass.Prog.SinkPath(f, mapOrderSink, c.reaches))
			return false
		}
		return true
	})
}

// rhsOrderTainted reports whether an assignment's right-hand side carries
// order taint: a tainted identifier, an append of tainted operands, a
// slice of a tainted value, or maps.Keys/Values (whose order is the map's).
func (c *mapOrderChecker) rhsOrderTainted(rhs ast.Expr, facts Facts) bool {
	switch e := ast.Unparen(rhs).(type) {
	case *ast.Ident:
		obj := c.info.Uses[e]
		return obj != nil && facts[obj]
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && isBuiltinAppend(c.info, id) {
			for _, a := range e.Args {
				if c.rhsOrderTainted(a, facts) {
					return true
				}
			}
			return false
		}
		if f := calleeFunc(c.info, e); f != nil && f.Pkg() != nil {
			switch {
			case f.Pkg().Path() == "maps" && (f.Name() == "Keys" || f.Name() == "Values"):
				return true
			case f.Pkg().Path() == "slices" && f.Name() == "Collect":
				for _, a := range e.Args {
					if c.rhsOrderTainted(a, facts) {
						return true
					}
				}
			}
		}
		return false
	case *ast.SliceExpr:
		return c.rhsOrderTainted(e.X, facts)
	case *ast.IndexExpr:
		return c.rhsOrderTainted(e.X, facts)
	}
	return false
}

// isAppendOf reports whether rhs is append(obj, ...).
func isAppendOf(info *types.Info, rhs ast.Expr, obj types.Object) bool {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || !isBuiltinAppend(info, id) || len(call.Args) == 0 {
		return false
	}
	return assignedObj(info, call.Args[0]) == obj
}

// isBuiltinAppend reports whether id resolves to the append builtin (a
// local identifier named append shadows it and does not count).
func isBuiltinAppend(info *types.Info, id *ast.Ident) bool {
	if id.Name != "append" {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// assignedObj resolves an assignable expression to its variable object
// when it is a simple identifier (locals are what the taint rules track).
func assignedObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// isMapType reports whether t is a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}
