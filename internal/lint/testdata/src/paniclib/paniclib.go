// Package paniclib is a golden fixture for the paniclib analyzer.
package paniclib

import "fmt"

func libPanic(n int) {
	if n < 0 {
		panic("negative") // want "panic in library code: return an error instead"
	}
}

func libError(n int) error {
	if n < 0 {
		return fmt.Errorf("paniclib: negative %d", n)
	}
	return nil
}

func suppressed(off, size int64) {
	if off < 0 || off >= size {
		panic("out of range") //nolint:paniclib // golden fixture: bounds check mirroring built-in slice semantics
	}
}
