// Package vfs defines the node-local file system contract shared by every
// storage transport (Snapify-IO daemons, the NFS client, scp) and provides
// adapters for the two concrete file systems of a Xeon Phi server: the
// host file system and a card's RAM file system.
package vfs

import (
	"snapify/internal/blob"
	"snapify/internal/hostfs"
	"snapify/internal/ramfs"
	"snapify/internal/simclock"
)

// NodeFS is the file system local to one SCIF node.
type NodeFS interface {
	Create(path string) (Writer, error)
	Open(path string) (Reader, error)
}

// Writer streams a file in. The file becomes visible at Close; Abort
// discards the partial file.
type Writer interface {
	WriteBlob(b blob.Blob) (simclock.Duration, error)
	Close() error
	Abort()
}

// Reader streams a file out; Next returns io.EOF after the last chunk.
type Reader interface {
	Next(max int64) (blob.Blob, simclock.Duration, error)
	Size() int64
}

// SparseFS is implemented by node file systems that support positioned
// (striped) writes: several writers fill disjoint ranges of one
// fixed-size file concurrently. The Snapify-IO daemon uses it to assemble
// a capture striped across parallel streams.
type SparseFS interface {
	// CreateSparse opens a positioned writer over a file of exactly size
	// bytes, initially zero.
	CreateSparse(path string, size int64) (SparseWriter, error)
}

// SparseWriter writes byte ranges of a fixed-size file. The file becomes
// visible at Commit; Abort discards it. WriteBlobAt is safe for concurrent
// use.
type SparseWriter interface {
	WriteBlobAt(off int64, b blob.Blob) (simclock.Duration, error)
	Commit() error
	Abort()
}

// RangeFS is implemented by node file systems that can open a reader over
// a byte range of a file (the read side of striped transfers).
type RangeFS interface {
	// OpenRange streams bytes [off, off+n) of the file at path.
	OpenRange(path string, off, n int64) (Reader, error)
}

// Host adapts a hostfs.FS to NodeFS.
func Host(fs *hostfs.FS) NodeFS { return hostAdapter{fs} }

type hostAdapter struct{ fs *hostfs.FS }

func (h hostAdapter) Create(path string) (Writer, error) { return h.fs.Create(path) }
func (h hostAdapter) Open(path string) (Reader, error)   { return h.fs.Open(path) }
func (h hostAdapter) CreateSparse(path string, size int64) (SparseWriter, error) {
	return h.fs.CreateSparse(path, size)
}
func (h hostAdapter) OpenRange(path string, off, n int64) (Reader, error) {
	return h.fs.OpenRange(path, off, n)
}

// Ram adapts a ramfs.FS to NodeFS.
func Ram(fs *ramfs.FS) NodeFS { return ramAdapter{fs} }

type ramAdapter struct{ fs *ramfs.FS }

func (r ramAdapter) Create(path string) (Writer, error) { return r.fs.Create(path) }
func (r ramAdapter) Open(path string) (Reader, error)   { return r.fs.Open(path) }
func (r ramAdapter) CreateSparse(path string, size int64) (SparseWriter, error) {
	return r.fs.CreateSparse(path, size)
}
func (r ramAdapter) OpenRange(path string, off, n int64) (Reader, error) {
	return r.fs.OpenRange(path, off, n)
}

// Compile-time checks that both adapters implement the optional
// interfaces.
var (
	_ SparseFS = hostAdapter{}
	_ RangeFS  = hostAdapter{}
	_ SparseFS = ramAdapter{}
	_ RangeFS  = ramAdapter{}
)
