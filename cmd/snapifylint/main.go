// Command snapifylint runs the Snapify-specific static analyzers
// (internal/lint) over the module and reports protocol-invariant
// violations with file:line positions.
//
// Usage:
//
//	snapifylint [-allowlist file] [-json] [-list] [patterns...]
//
// Patterns are package directories relative to the module root, with the
// usual /... suffix for subtrees (default ./...). The exit status is 0
// when no findings survive the allowlist, 1 when findings remain, and 2
// on usage or load errors.
//
// If -allowlist is not given and a .snapifylint file exists at the module
// root, it is used automatically. See internal/lint for the allowlist and
// //nolint directive formats — every suppression requires a written
// justification.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"snapify/internal/lint"
)

// DefaultAllowlistName is the allowlist loaded from the module root when
// -allowlist is not given.
const DefaultAllowlistName = ".snapifylint"

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	flags := flag.NewFlagSet("snapifylint", flag.ContinueOnError)
	flags.SetOutput(stderr)
	allowPath := flags.String("allowlist", "", "allowlist file of acknowledged findings (default: <module root>/"+DefaultAllowlistName+" if present)")
	asJSON := flags.Bool("json", false, "emit findings as a JSON array (stable across runs, for CI diffing)")
	list := flags.Bool("list", false, "list the analyzers and the invariant each protects, then exit")
	if err := flags.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "snapifylint:", err)
		return 2
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "snapifylint:", err)
		return 2
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(stderr, "snapifylint:", err)
		return 2
	}

	patterns := flags.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "snapifylint:", err)
		return 2
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(stderr, "snapifylint: type error (analysis degrades): %v\n", terr)
		}
	}

	var allow *lint.Allowlist
	switch {
	case *allowPath != "":
		if allow, err = lint.ParseAllowlist(*allowPath); err != nil {
			fmt.Fprintln(stderr, "snapifylint:", err)
			return 2
		}
	default:
		implicit := filepath.Join(root, DefaultAllowlistName)
		if _, statErr := os.Stat(implicit); statErr == nil {
			if allow, err = lint.ParseAllowlist(implicit); err != nil {
				fmt.Fprintln(stderr, "snapifylint:", err)
				return 2
			}
		}
	}

	findings := allow.Filter(lint.Run(pkgs, lint.All()))
	for _, e := range allow.Unused() {
		fmt.Fprintf(stderr, "snapifylint: unused allowlist entry in %s: %s %s %s (delete it?)\n",
			allow.Source, e.Analyzer, e.PathSuffix, e.Match)
	}

	// Findings print with module-root-relative paths so output (and the
	// -json stream CI diffs across PRs) is stable across checkouts.
	for i := range findings {
		if rel, relErr := filepath.Rel(root, findings[i].File); relErr == nil {
			findings[i].File = filepath.ToSlash(rel)
		}
	}

	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(stderr, "snapifylint:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if len(findings) > 0 {
		if !*asJSON {
			fmt.Fprintf(stdout, "snapifylint: %d finding(s)\n", len(findings))
		}
		return 1
	}
	return 0
}
