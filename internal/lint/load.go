package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one directory of non-test Go files, parsed and
// type-checked.
type Package struct {
	// Dir is the absolute directory the files were read from.
	Dir string
	// Path is the package's import path within the module.
	Path string
	// Fset is shared by every package a Loader produces.
	Fset *token.FileSet
	// Files are the parsed files, with comments.
	Files []*ast.File
	// Types and Info carry the go/types results. Type-checking is
	// fault-tolerant: both are always non-nil, and TypeErrors collects
	// whatever the checker could not resolve.
	Types      *types.Package
	Info       *types.Info
	TypeErrors []error
}

// A Loader parses and type-checks packages of one module using only the
// standard library: module-internal imports resolve against the module
// tree, standard-library imports through the compiler's export data (with
// a from-source fallback), and anything else degrades to an empty
// placeholder package recorded in TypeErrors.
type Loader struct {
	// Root is the absolute path of the module root (the go.mod
	// directory).
	Root string
	// Module is the module path declared in go.mod.
	Module string
	// Fset positions every file the loader touches.
	Fset *token.FileSet

	pkgs     map[string]*Package // by import path; nil value = in progress
	std      types.Importer
	stdSrc   types.Importer
	checking map[string]bool
}

// NewLoader returns a loader for the module rooted at root.
func NewLoader(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	module, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Root:     abs,
		Module:   module,
		Fset:     fset,
		pkgs:     map[string]*Package{},
		std:      importer.Default(),
		stdSrc:   importer.ForCompiler(fset, "source", nil),
		checking: map[string]bool{},
	}, nil
}

// FindModuleRoot walks up from dir to the nearest directory containing a
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		abs = parent
	}
}

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s", gomod)
}

// Load expands the patterns (a directory, or a directory followed by
// /... for the whole subtree, resolved against the module root) and
// returns the matched packages, parsed and type-checked, sorted by import
// path. Directories named testdata and hidden directories are skipped
// during expansion; test files are never loaded.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs, err := l.expand(patterns)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

func (l *Loader) expand(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		base, recursive := strings.CutSuffix(pat, "/...")
		if base == "." || base == "" {
			base = l.Root
		} else if !filepath.IsAbs(base) {
			base = filepath.Join(l.Root, base)
		}
		if !recursive {
			add(base)
			continue
		}
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("lint: expanding %s: %w", pat, err)
		}
	}
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// LoadDir parses and type-checks the single package in dir (absolute, or
// relative to the module root).
func (l *Loader) LoadDir(dir string) (*Package, error) {
	if !filepath.IsAbs(dir) {
		dir = filepath.Join(l.Root, dir)
	}
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("lint: %s is outside module root %s", dir, l.Root)
	}
	path := l.Module
	if rel != "." {
		path = l.Module + "/" + filepath.ToSlash(rel)
	}
	return l.loadPath(path, dir)
}

func (l *Loader) loadPath(path, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.checking[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.checking[path] = true
	defer delete(l.checking, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %w", filepath.Join(dir, name), err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		l.pkgs[path] = nil
		return nil, nil
	}

	pkg := &Package{
		Dir:   dir,
		Path:  path,
		Fset:  l.Fset,
		Files: files,
		Info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Scopes:     map[ast.Node]*types.Scope{},
		},
	}
	conf := types.Config{
		Importer: importerFunc(func(ipath string) (*types.Package, error) { return l.importPkg(ipath) }),
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// Check never returns a hard error with an Error handler installed;
	// whatever could not be resolved is in pkg.TypeErrors and the
	// analyzers degrade gracefully around the missing type info.
	pkg.Types, _ = conf.Check(path, l.Fset, files, pkg.Info)
	l.pkgs[path] = pkg
	return pkg, nil
}

// importPkg resolves one import for the type checker.
func (l *Loader) importPkg(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.Module || strings.HasPrefix(path, l.Module+"/") {
		dir := l.Root
		if path != l.Module {
			dir = filepath.Join(l.Root, filepath.FromSlash(strings.TrimPrefix(path, l.Module+"/")))
		}
		pkg, err := l.loadPath(path, dir)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("lint: no Go files in %s", dir)
		}
		return pkg.Types, nil
	}
	if pkg, err := l.std.Import(path); err == nil {
		return pkg, nil
	}
	// Export data unavailable (e.g. an uninstalled toolchain): fall back
	// to type-checking the dependency from source.
	return l.stdSrc.Import(path)
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
