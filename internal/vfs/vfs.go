// Package vfs defines the node-local file system contract shared by every
// storage transport (Snapify-IO daemons, the NFS client, scp) and provides
// adapters for the two concrete file systems of a Xeon Phi server: the
// host file system and a card's RAM file system.
package vfs

import (
	"snapify/internal/blob"
	"snapify/internal/hostfs"
	"snapify/internal/ramfs"
	"snapify/internal/simclock"
)

// NodeFS is the file system local to one SCIF node.
type NodeFS interface {
	Create(path string) (Writer, error)
	Open(path string) (Reader, error)
}

// Writer streams a file in. The file becomes visible at Close; Abort
// discards the partial file.
type Writer interface {
	WriteBlob(b blob.Blob) (simclock.Duration, error)
	Close() error
	Abort()
}

// Reader streams a file out; Next returns io.EOF after the last chunk.
type Reader interface {
	Next(max int64) (blob.Blob, simclock.Duration, error)
	Size() int64
}

// Host adapts a hostfs.FS to NodeFS.
func Host(fs *hostfs.FS) NodeFS { return hostAdapter{fs} }

type hostAdapter struct{ fs *hostfs.FS }

func (h hostAdapter) Create(path string) (Writer, error) { return h.fs.Create(path) }
func (h hostAdapter) Open(path string) (Reader, error)   { return h.fs.Open(path) }

// Ram adapts a ramfs.FS to NodeFS.
func Ram(fs *ramfs.FS) NodeFS { return ramAdapter{fs} }

type ramAdapter struct{ fs *ramfs.FS }

func (r ramAdapter) Create(path string) (Writer, error) { return r.fs.Create(path) }
func (r ramAdapter) Open(path string) (Reader, error)   { return r.fs.Open(path) }
