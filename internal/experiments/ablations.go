package experiments

import (
	"fmt"

	"snapify/internal/blob"
	"snapify/internal/phi"
	"snapify/internal/proc"
	"snapify/internal/scif"
	"snapify/internal/simclock"
	"snapify/internal/simnet"
	"snapify/internal/snapifyio"
	"snapify/internal/stream"
	"snapify/internal/trace"
	"snapify/internal/vfs"
)

// Ablations probe the design choices DESIGN.md calls out: the Snapify-IO
// staging buffer size (the paper picks 4 MiB "to balance between the
// requirement of minimizing memory footprint and the need of shorter
// transfer latency", Section 6), the NFS transfer size (why BLCR's write
// granularity decides the plain-NFS column of Table 4), and the
// incremental-checkpoint extension against the paper's full snapshots.

// BufSizeAblationRow is one staging-buffer-size measurement.
type BufSizeAblationRow struct {
	BufSize int64
	// Write1G is the device-to-host transfer time of a 1 GiB stream.
	Write1G simclock.Duration
	// Footprint is the staging memory pinned per stream (both daemons).
	Footprint int64
}

// BufSizeAblation sweeps the Snapify-IO staging buffer from 64 KiB to
// 64 MiB.
func BufSizeAblation() ([]BufSizeAblationRow, error) {
	var rows []BufSizeAblationRow
	for _, bufSize := range []int64{
		64 * simclock.KiB, 256 * simclock.KiB, 1 * simclock.MiB,
		4 * simclock.MiB, 16 * simclock.MiB, 64 * simclock.MiB,
	} {
		row, err := bufSizeRun(bufSize)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// bufSizeRun builds a fresh fabric, streams 1 GiB device-to-host at the
// given staging buffer size, and stops the service on every path out.
func bufSizeRun(bufSize int64) (BufSizeAblationRow, error) {
	server := phi.NewServer(phi.ServerConfig{Devices: 1, Device: phi.DeviceConfig{MemBytes: 8 * simclock.GiB}})
	net := scif.NewNetwork(server.Fabric)
	svc := snapifyio.NewService(net, nil)
	defer svc.Stop()
	if _, err := svc.StartDaemonBuf(simnet.HostNode, vfs.Host(server.Host.FS), bufSize); err != nil {
		return BufSizeAblationRow{}, err
	}
	if _, err := svc.StartDaemonBuf(1, vfs.Ram(server.Device(1).FS), bufSize); err != nil {
		return BufSizeAblationRow{}, err
	}

	content := blob.Synthetic(7, simclock.GiB)
	f, err := svc.Open(1, simnet.HostNode, "/abl/f", snapifyio.Write)
	if err != nil {
		return BufSizeAblationRow{}, err
	}
	acc := simclock.NewPipelineAccum()
	err = content.ForEachChunk(bufSize, func(chunk blob.Blob) error {
		cost, err := f.WriteBlob(chunk)
		if err != nil {
			return err
		}
		stream.Observe(acc, cost)
		return nil
	})
	if err != nil {
		f.Abort()
		return BufSizeAblationRow{}, err
	}
	if err := f.Close(); err != nil {
		return BufSizeAblationRow{}, err
	}
	return BufSizeAblationRow{
		BufSize:   bufSize,
		Write1G:   acc.Total(),
		Footprint: 2 * bufSize,
	}, nil
}

// RenderBufSizeAblation prints the sweep.
func RenderBufSizeAblation(rows []BufSizeAblationRow) string {
	t := trace.New("Ablation: Snapify-IO staging buffer size (1 GiB device-to-host stream)",
		"Buffer", "Transfer", "Pinned staging memory")
	for _, r := range rows {
		t.Row(trace.Bytes(r.BufSize), trace.Seconds(r.Write1G), trace.Bytes(r.Footprint))
	}
	return t.String()
}

// CheckBufSizeAblation verifies the paper's trade-off: tiny buffers pay
// per-chunk overheads; past a few MiB the curve flattens, so growing the
// pinned footprint buys (almost) nothing — 4 MiB sits at the knee.
func CheckBufSizeAblation(rows []BufSizeAblationRow) error {
	byBuf := map[int64]simclock.Duration{}
	for _, r := range rows {
		byBuf[r.BufSize] = r.Write1G
	}
	if byBuf[64*simclock.KiB] <= byBuf[4*simclock.MiB] {
		return fmt.Errorf("64 KiB staging (%v) should be slower than 4 MiB (%v)",
			byBuf[64*simclock.KiB], byBuf[4*simclock.MiB])
	}
	knee := float64(byBuf[4*simclock.MiB])
	big := float64(byBuf[64*simclock.MiB])
	if gain := (knee - big) / knee; gain > 0.10 {
		return fmt.Errorf("going 4 MiB -> 64 MiB still gains %.0f%%: 4 MiB would not be the knee", gain*100)
	}
	return nil
}

// IncrementalRow compares full and delta checkpoints of a process whose
// working set is a small fraction of its footprint.
type IncrementalRow struct {
	DirtyFraction float64
	Full, Delta   simclock.Duration
	FullBytes     int64
	DeltaBytes    int64
}

// IncrementalAblation measures the incremental-checkpoint extension on a
// 256 MiB native process at several dirty fractions.
func IncrementalAblation() ([]IncrementalRow, error) {
	var rows []IncrementalRow
	for _, frac := range []float64{0.01, 0.05, 0.25, 1.0} {
		plat, err := newPlatform(1)
		if err != nil {
			return nil, err
		}
		dev := plat.Device(1)
		p := plat.Procs.Spawn("incr_bench", dev.Node, dev.Mem)
		const size = 256 * simclock.MiB
		heap, err := p.AddRegion("heap", proc.RegionHeap, size, 3)
		if err != nil {
			return nil, err
		}

		sink := func(path string) (stream.Sink, error) {
			return plat.IO.Open(dev.Node, simnet.HostNode, path, snapifyio.Write)
		}

		fullSink, err := sink("/abl/full")
		if err != nil {
			return nil, err
		}
		full, err := plat.CR.CheckpointFull(p, fullSink)
		if err != nil {
			return nil, err
		}
		// Dirty the requested fraction in 64 KiB strides.
		dirty := int64(frac * float64(size))
		stride := int64(64 * simclock.KiB)
		pattern := make([]byte, stride)
		for off := int64(0); off < dirty; off += stride {
			n := stride
			if dirty-off < n {
				n = dirty - off
			}
			heap.WriteAt(pattern[:n], off*int64(1/frac)%(size-stride))
		}
		deltaSink, err := sink("/abl/delta")
		if err != nil {
			return nil, err
		}
		delta, err := plat.CR.CheckpointDelta(p, deltaSink)
		if err != nil {
			return nil, err
		}
		p.AnnounceExit()
		p.Terminate()
		plat.IO.Stop()
		rows = append(rows, IncrementalRow{
			DirtyFraction: frac,
			Full:          full.Duration,
			Delta:         delta.Duration,
			FullBytes:     full.Bytes,
			DeltaBytes:    delta.Bytes,
		})
	}
	return rows, nil
}

// RenderIncrementalAblation prints the comparison.
func RenderIncrementalAblation(rows []IncrementalRow) string {
	t := trace.New("Ablation: incremental vs full checkpoint (256 MiB native process, via Snapify-IO)",
		"Dirty fraction", "Full ckpt", "Delta ckpt", "Full bytes", "Delta bytes", "Speedup")
	for _, r := range rows {
		t.Row(fmt.Sprintf("%.0f%%", r.DirtyFraction*100),
			trace.Seconds(r.Full), trace.Seconds(r.Delta),
			trace.Bytes(r.FullBytes), trace.Bytes(r.DeltaBytes),
			trace.Speedup(float64(r.Full)/float64(r.Delta)))
	}
	return t.String()
}

// CheckIncrementalAblation verifies deltas win in proportion to the dirty
// fraction and degrade gracefully to ~full cost at 100%.
func CheckIncrementalAblation(rows []IncrementalRow) error {
	for _, r := range rows {
		if r.DirtyFraction <= 0.05 && float64(r.Full)/float64(r.Delta) < 3 {
			return fmt.Errorf("delta at %.0f%% dirty only %.1fx faster",
				r.DirtyFraction*100, float64(r.Full)/float64(r.Delta))
		}
		if r.DeltaBytes > r.FullBytes {
			return fmt.Errorf("delta larger than full at %.0f%% dirty", r.DirtyFraction*100)
		}
	}
	return nil
}

// WsizeRow is one NFS transfer-size measurement for a 1 GiB BLCR-style
// checkpoint stream.
type WsizeRow struct {
	Wsize int64
	Ckpt  simclock.Duration
}

// WsizeAblation sweeps the NFS rsize/wsize to show why BLCR's synchronous
// write granularity decides the plain-NFS column of Table 4.
func WsizeAblation() ([]WsizeRow, error) {
	var rows []WsizeRow
	for _, wsize := range []int64{16 * simclock.KiB, 64 * simclock.KiB, 256 * simclock.KiB, 1 * simclock.MiB} {
		plat, err := newPlatform(1)
		if err != nil {
			return nil, err
		}
		model := plat.Model()
		model.NFSMaxTransfer = wsize
		dev := plat.Device(1)
		p := plat.Procs.Spawn("wsize_bench", dev.Node, dev.Mem)
		if _, err := p.AddRegion("heap", proc.RegionHeap, simclock.GiB, 3); err != nil {
			return nil, err
		}
		sink, err := plat.NFS(dev.Node).CreateSync("/abl/wsize")
		if err != nil {
			return nil, err
		}
		st, err := plat.CR.Checkpoint(p, sink)
		if err != nil {
			return nil, err
		}
		p.AnnounceExit()
		p.Terminate()
		plat.IO.Stop()
		rows = append(rows, WsizeRow{Wsize: wsize, Ckpt: st.Duration})
	}
	return rows, nil
}

// RenderWsizeAblation prints the sweep.
func RenderWsizeAblation(rows []WsizeRow) string {
	t := trace.New("Ablation: NFS transfer size vs plain-NFS checkpoint cost (1 GiB)",
		"rsize/wsize", "Checkpoint")
	for _, r := range rows {
		t.Row(trace.Bytes(r.Wsize), trace.Seconds(r.Ckpt))
	}
	return t.String()
}

// CheckWsizeAblation verifies monotonicity: smaller transfers, more RPCs,
// slower checkpoints.
func CheckWsizeAblation(rows []WsizeRow) error {
	for i := 1; i < len(rows); i++ {
		if rows[i].Ckpt >= rows[i-1].Ckpt {
			return fmt.Errorf("checkpoint not faster at wsize %s vs %s",
				trace.Bytes(rows[i].Wsize), trace.Bytes(rows[i-1].Wsize))
		}
	}
	return nil
}
