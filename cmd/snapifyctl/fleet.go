package main

// `snapifyctl fleet <status|queue>` — inspect the fleetd control plane.
// There is no long-running daemon in the simulation, so the command
// boots a deterministic in-process scenario (the seeded bursty trace
// against the model backend, one host draining, memory oversubscribed
// 2x), advances it to mid-run, and prints the requested view: `status`
// is the per-host card occupancy, `queue` the admission queue.

import (
	"fmt"
	"sort"

	"snapify/internal/fleetd"
	"snapify/internal/obs"
	"snapify/internal/simclock"
	"snapify/internal/trace"
)

// The demo scenario: 8 hosts x 1 card, 160 jobs, 2x oversubscription,
// h000 draining mid-run. Mirrors the fleet benchmark's smoke shape.
const (
	fleetDemoHosts   = 8
	fleetDemoJobs    = 160
	fleetDemoCardMem = 256 * simclock.MiB
	fleetDemoSeed    = 42
	fleetDemoAt      = 8000 * simclock.Duration(1e6)
)

func fleetCommand(argv []string) {
	if len(argv) != 1 || (argv[0] != "status" && argv[0] != "queue") {
		fatal(fmt.Errorf("usage: snapifyctl fleet status | fleet queue"))
	}
	be := fleetd.NewModelBackend(fleetd.ModelOptions{
		Hosts: fleetDemoHosts, CardsPerHost: 1, CardMem: fleetDemoCardMem,
	})
	c := fleetd.New(fleetd.Options{OversubPct: 200, QueueDepth: 128}, be, obs.New())
	specs := fleetd.GenerateTrace(fleetd.TraceConfig{
		Seed: fleetDemoSeed, Jobs: fleetDemoJobs, Tenants: 4, CardMem: fleetDemoCardMem,
		BurstScale: 10, ThinkScale: 400,
	})
	fatal(c.SubmitTrace(specs))
	c.ScheduleEvacuation(fleetDemoAt/2, "h000", 120000*simclock.Duration(1e6))
	fatal(c.RunUntil(fleetDemoAt))

	st := c.Stats()
	fmt.Printf("fleetd @ t=%dms: %d submitted, %d admitted, %d rejected, %d completed, %d pending, %d swaps out/%d in\n\n",
		c.Now()/1e6, st.Submitted, st.Admitted, st.Rejected, st.Completed, len(c.PendingJobs()), st.SwapOuts, st.SwapIns)

	switch argv[0] {
	case "status":
		fleetStatus(c)
	case "queue":
		fleetQueue(c)
	}
}

// fleetStatus prints the per-host card occupancy table.
func fleetStatus(c *fleetd.Controller) {
	t := trace.New("$ snapifyctl fleet status",
		"Host", "State", "Jobs", "Committed (MiB)", "Resident (MiB)", "Capacity (MiB)", "Waiters")
	for _, hs := range c.HostStatuses() {
		state := "up"
		if hs.Draining {
			state = "draining"
		}
		if hs.Dead {
			state = "dead"
		}
		var committed, resident, capacity int64
		waiters := 0
		for _, cd := range hs.Cards {
			committed += cd.CommittedBytes
			resident += cd.ResidentBytes
			capacity += cd.CapacityBytes
			waiters += cd.Waiters
		}
		t.Row(hs.Host, state,
			fmt.Sprintf("%d", hs.Assigned),
			fmt.Sprintf("%d", committed/simclock.MiB),
			fmt.Sprintf("%d", resident/simclock.MiB),
			fmt.Sprintf("%d", capacity/simclock.MiB),
			fmt.Sprintf("%d", waiters))
	}
	fmt.Println(t.String())
	for _, r := range c.Evacuations() {
		fmt.Printf("evacuation of %s: moved %d in %d wave(s), done=%v, deadline met=%v\n",
			r.Host, r.Moved, r.Waves, r.Done, r.DeadlineMet)
	}
}

// fleetQueue prints the admission queue: per-tenant depth, then the
// longest-waiting pending jobs.
func fleetQueue(c *fleetd.Controller) {
	pending := c.PendingJobs()
	byTenant := make(map[string]int)
	for _, j := range pending {
		byTenant[j.Spec.Tenant]++
	}
	tenants := make([]string, 0, len(byTenant))
	for tn := range byTenant {
		tenants = append(tenants, tn)
	}
	sort.Strings(tenants)
	fmt.Print("queued per tenant:")
	for _, tn := range tenants {
		fmt.Printf(" %s=%d", tn, byTenant[tn])
	}
	fmt.Println()

	sort.SliceStable(pending, func(a, b int) bool {
		if pending[a].Spec.Priority != pending[b].Spec.Priority {
			return pending[a].Spec.Priority > pending[b].Spec.Priority
		}
		return pending[a].Spec.Arrival < pending[b].Spec.Arrival
	})
	t := trace.New("$ snapifyctl fleet queue (dispatch order)",
		"Job", "Tenant", "Priority", "Footprint (MiB)", "Waited (ms)")
	max := len(pending)
	if max > 12 {
		max = 12
	}
	for _, j := range pending[:max] {
		t.Row(fmt.Sprintf("%d", j.ID), j.Spec.Tenant,
			fmt.Sprintf("%d", j.Spec.Priority),
			fmt.Sprintf("%d", j.Spec.Footprint/simclock.MiB),
			fmt.Sprintf("%d", (c.Now()-j.Spec.Arrival)/1e6))
	}
	fmt.Println(t.String())
	if len(pending) > max {
		fmt.Printf("... and %d more\n", len(pending)-max)
	}
}
