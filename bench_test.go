// Benchmarks: one per table and figure of the paper's evaluation. Each
// benchmark executes the corresponding experiment's real protocol path on
// the simulated platform; wall-clock ns/op measures the simulator itself,
// while the reported custom metrics are the virtual-time results that
// correspond to the paper's numbers (vsec = virtual seconds).
//
// Run everything with:
//
//	go test -bench=. -benchmem
package snapify_test

import (
	"testing"

	"snapify/internal/experiments"
	"snapify/internal/simclock"
)

func vsec(d simclock.Duration) float64 { return d.Seconds() }

// BenchmarkTable3_FileCopy regenerates Table 3: copying files between the
// host and the Xeon Phi via Snapify-IO, NFS, and scp.
func BenchmarkTable3_FileCopy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table3()
		if err != nil {
			b.Fatal(err)
		}
		last := res.Rows[len(res.Rows)-1]
		b.ReportMetric(vsec(last.SnapifyIOWrite), "snapio-wr-1G-vsec")
		b.ReportMetric(vsec(last.NFSWrite), "nfs-wr-1G-vsec")
		b.ReportMetric(vsec(last.SCPWrite), "scp-wr-1G-vsec")
		b.ReportMetric(vsec(last.SnapifyIORead), "snapio-rd-1G-vsec")
	}
}

// BenchmarkTable4_NativeBLCR regenerates Table 4: BLCR checkpoint/restart
// of a native Xeon Phi process over five storage paths.
func BenchmarkTable4_NativeBLCR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table4()
		if err != nil {
			b.Fatal(err)
		}
		oneGB := res.Rows[3]
		b.ReportMetric(vsec(oneGB.CkptSnapIO), "ckpt-snapio-1G-vsec")
		b.ReportMetric(vsec(oneGB.CkptNFS), "ckpt-nfs-1G-vsec")
		b.ReportMetric(vsec(oneGB.RestartSnapIO), "rst-snapio-1G-vsec")
		b.ReportMetric(vsec(oneGB.RestartNFS), "rst-nfs-1G-vsec")
	}
}

// BenchmarkFig9_RuntimeOverhead regenerates Fig 9: the cost the Snapify
// instrumentation adds to normal execution of the OpenMP suite.
func BenchmarkFig9_RuntimeOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig9()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.AveragePct, "avg-overhead-%")
		for _, row := range res.Rows {
			if row.Code == "MD" {
				b.ReportMetric(row.OverheadPct, "MD-overhead-%")
			}
		}
	}
}

// BenchmarkFig10_SnapshotLifecycle regenerates Fig 10(a)–(f): checkpoint,
// restart, migration, and swapping for the OpenMP suite.
func BenchmarkFig10_SnapshotLifecycle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig10()
		if err != nil {
			b.Fatal(err)
		}
		var ss, mc float64
		for _, row := range res.Rows {
			switch row.Code {
			case "SS":
				ss = vsec(row.MigTotal)
			case "MC":
				mc = vsec(row.MigTotal)
			}
		}
		b.ReportMetric(ss, "SS-migrate-vsec")
		b.ReportMetric(mc, "MC-migrate-vsec")
	}
}

// BenchmarkFig11_MPICheckpointRestart regenerates Fig 11: coordinated CR
// of LU/SP/BT-MZ across 1, 2, and 4 ranks.
func BenchmarkFig11_MPICheckpointRestart(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig11()
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.Code == "BT-MZ" && row.Ranks == 4 {
				b.ReportMetric(vsec(row.CheckpointTime), "BT-MZ-x4-ckpt-vsec")
				b.ReportMetric(vsec(row.RestartTime), "BT-MZ-x4-rst-vsec")
			}
		}
	}
}

// BenchmarkAblation_StagingBufferSize sweeps the Snapify-IO staging buffer
// (the paper's 4 MiB choice, Section 6).
func BenchmarkAblation_StagingBufferSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.BufSizeAblation()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.BufSize == 4<<20 {
				b.ReportMetric(vsec(r.Write1G), "4MiB-staging-1G-vsec")
			}
		}
	}
}

// BenchmarkAblation_IncrementalCheckpoint compares the incremental
// checkpoint extension against the paper's full snapshots.
func BenchmarkAblation_IncrementalCheckpoint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.IncrementalAblation()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.DirtyFraction == 0.05 {
				b.ReportMetric(float64(r.Full)/float64(r.Delta), "speedup-at-5pct-dirty")
			}
		}
	}
}

// BenchmarkAblation_NFSTransferSize sweeps the NFS rsize/wsize under a
// BLCR-style synchronous write stream.
func BenchmarkAblation_NFSTransferSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.WsizeAblation()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(vsec(rows[0].Ckpt), "16KiB-wsize-vsec")
		b.ReportMetric(vsec(rows[len(rows)-1].Ckpt), "1MiB-wsize-vsec")
	}
}
