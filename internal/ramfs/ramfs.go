// Package ramfs models the Xeon Phi's RAM-backed root file system.
//
// The coprocessor has no directly accessible storage: its file system lives
// in the card's own physical memory, so every file byte competes with
// process memory. The FS therefore draws capacity from a Budget shared with
// the process allocator (implemented by internal/phi). This reproduces the
// paper's central storage constraint: a snapshot larger than the free card
// memory cannot be stored locally, and even a snapshot that fits starves
// other applications (Section 3, "Storing and retrieving snapshots").
package ramfs

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"snapify/internal/blob"
	"snapify/internal/simclock"
)

// ErrNoSpace is returned when a write would exceed the card's memory budget.
var ErrNoSpace = errors.New("ramfs: no space left on device")

// ErrNotExist is returned for operations on missing files.
var ErrNotExist = errors.New("ramfs: file does not exist")

// Budget arbitrates the card's physical memory between the file system and
// process memory. internal/phi provides the implementation.
type Budget interface {
	// Reserve claims n bytes, or returns an error if they are not available.
	Reserve(n int64) error
	// Release returns n bytes.
	Release(n int64)
}

// FS is a RAM-backed file system.
type FS struct {
	model  *simclock.Model
	budget Budget

	mu    sync.Mutex
	files map[string]blob.Blob
	open  map[string]int // writers in progress, guards concurrent create
}

// New returns an empty file system drawing capacity from budget.
func New(model *simclock.Model, budget Budget) *FS {
	return &FS{
		model:  model,
		budget: budget,
		files:  make(map[string]blob.Blob),
		open:   make(map[string]int),
	}
}

// WriteFile atomically stores content at path, replacing any existing file.
// It returns the virtual time of the write.
func (fs *FS) WriteFile(path string, content blob.Blob) (simclock.Duration, error) {
	w, err := fs.Create(path)
	if err != nil {
		return 0, err
	}
	d, err := w.WriteBlob(content)
	if err != nil {
		w.Abort()
		return d, err
	}
	return d + fs.model.RamFSOpLatency, w.Close()
}

// ReadFile returns the content at path and the virtual read time.
func (fs *FS) ReadFile(path string) (blob.Blob, simclock.Duration, error) {
	fs.mu.Lock()
	content, ok := fs.files[path]
	fs.mu.Unlock()
	if !ok {
		return blob.Blob{}, 0, fmt.Errorf("%w: %s", ErrNotExist, path)
	}
	d := fs.model.RamFSOpLatency + simclock.Rate(fs.model.RamFSBandwidth)(content.Len())
	return content, d, nil
}

// Remove deletes the file at path, releasing its memory.
func (fs *FS) Remove(path string) error {
	fs.mu.Lock()
	content, ok := fs.files[path]
	if ok {
		delete(fs.files, path)
	}
	fs.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, path)
	}
	fs.budget.Release(content.Len())
	return nil
}

// RemoveAll deletes every file whose path has the given prefix and returns
// the number removed. The COI daemon uses it to clean up an offload
// process's temporary files.
func (fs *FS) RemoveAll(prefix string) int {
	fs.mu.Lock()
	var victims []string
	for p := range fs.files {
		if strings.HasPrefix(p, prefix) {
			victims = append(victims, p)
		}
	}
	var freed int64
	for _, p := range victims {
		freed += fs.files[p].Len()
		delete(fs.files, p)
	}
	fs.mu.Unlock()
	fs.budget.Release(freed)
	return len(victims)
}

// Exists reports whether path holds a file.
func (fs *FS) Exists(path string) bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	_, ok := fs.files[path]
	return ok
}

// Size returns the size of the file at path.
func (fs *FS) Size(path string) (int64, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	content, ok := fs.files[path]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotExist, path)
	}
	return content.Len(), nil
}

// List returns the paths with the given prefix, sorted.
func (fs *FS) List(prefix string) []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var out []string
	for p := range fs.files {
		if strings.HasPrefix(p, prefix) {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// Usage returns the total bytes held by files.
func (fs *FS) Usage() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var n int64
	for _, c := range fs.files {
		n += c.Len()
	}
	return n
}

// Writer streams a file into the FS, reserving budget as chunks arrive.
type Writer struct {
	fs       *FS
	path     string
	parts    []blob.Blob
	reserved int64
	done     bool
}

// Create opens a streaming writer for path. The file becomes visible
// atomically at Close; an Abort releases everything.
func (fs *FS) Create(path string) (*Writer, error) {
	if path == "" {
		return nil, errors.New("ramfs: empty path")
	}
	fs.mu.Lock()
	fs.open[path]++
	fs.mu.Unlock()
	return &Writer{fs: fs, path: path}, nil
}

// WriteBlob appends content, returning the virtual time of the write.
// On ErrNoSpace the writer keeps earlier chunks reserved until Abort.
func (w *Writer) WriteBlob(content blob.Blob) (simclock.Duration, error) {
	if w.done {
		return 0, errors.New("ramfs: write on closed writer")
	}
	if err := w.fs.budget.Reserve(content.Len()); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrNoSpace, err)
	}
	w.reserved += content.Len()
	w.parts = append(w.parts, content)
	return simclock.Rate(w.fs.model.RamFSBandwidth)(content.Len()), nil
}

// Close makes the file visible, replacing any previous content at the path.
func (w *Writer) Close() error {
	if w.done {
		return nil
	}
	w.done = true
	content := blob.Concat(w.parts...)
	fs := w.fs
	fs.mu.Lock()
	old, had := fs.files[w.path]
	fs.files[w.path] = content
	fs.open[w.path]--
	if fs.open[w.path] == 0 {
		delete(fs.open, w.path)
	}
	fs.mu.Unlock()
	if had {
		fs.budget.Release(old.Len())
	}
	return nil
}

// Abort discards the partial file and releases its reservation.
func (w *Writer) Abort() {
	if w.done {
		return
	}
	w.done = true
	w.fs.budget.Release(w.reserved)
	w.fs.mu.Lock()
	w.fs.open[w.path]--
	if w.fs.open[w.path] == 0 {
		delete(w.fs.open, w.path)
	}
	w.fs.mu.Unlock()
}

// SparseWriter fills disjoint ranges of a fixed-size file. Its full size
// is reserved against the memory budget up front (the card must hold the
// whole file either way); the file becomes visible at Commit. WriteBlobAt
// is safe for concurrent use.
type SparseWriter struct {
	fs   *FS
	path string
	size int64

	mu      sync.Mutex
	content blob.Blob
	done    bool
}

// CreateSparse opens a positioned writer over a file of exactly size
// bytes, initially zero. On ErrNoSpace nothing is reserved.
func (fs *FS) CreateSparse(path string, size int64) (*SparseWriter, error) {
	if path == "" {
		return nil, errors.New("ramfs: empty path")
	}
	if size < 0 {
		return nil, fmt.Errorf("ramfs: negative sparse size %d", size)
	}
	if err := fs.budget.Reserve(size); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNoSpace, err)
	}
	fs.mu.Lock()
	fs.open[path]++
	fs.files[path+PartialSuffix] = blob.Zeros(0)
	fs.mu.Unlock()
	return &SparseWriter{fs: fs, path: path, size: size, content: blob.Zeros(size)}, nil
}

// PartialSuffix marks an in-progress sparse assembly, mirroring
// hostfs.PartialSuffix: visible from CreateSparse until Commit/Abort.
const PartialSuffix = ".partial"

// WriteBlobAt writes content at the given offset, returning the virtual
// time of the write.
func (w *SparseWriter) WriteBlobAt(off int64, content blob.Blob) (simclock.Duration, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.done {
		return 0, errors.New("ramfs: write on closed sparse writer")
	}
	if off < 0 || off+content.Len() > w.size {
		return 0, fmt.Errorf("ramfs: sparse write [%d,%d) outside file of %d bytes", off, off+content.Len(), w.size)
	}
	w.content = blob.Splice(w.content, off, content)
	return simclock.Rate(w.fs.model.RamFSBandwidth)(content.Len()), nil
}

// Commit makes the file visible, replacing any previous content at the
// path. The per-range write costs were already charged by WriteBlobAt.
func (w *SparseWriter) Commit() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.done {
		return nil
	}
	w.done = true
	fs := w.fs
	fs.mu.Lock()
	delete(fs.files, w.path+PartialSuffix)
	old, had := fs.files[w.path]
	fs.files[w.path] = w.content
	fs.open[w.path]--
	if fs.open[w.path] == 0 {
		delete(fs.open, w.path)
	}
	fs.mu.Unlock()
	if had {
		fs.budget.Release(old.Len())
	}
	return nil
}

// Abort discards the partial file and releases its reservation.
func (w *SparseWriter) Abort() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.done {
		return
	}
	w.done = true
	w.fs.budget.Release(w.size)
	w.fs.mu.Lock()
	delete(w.fs.files, w.path+PartialSuffix)
	w.fs.open[w.path]--
	if w.fs.open[w.path] == 0 {
		delete(w.fs.open, w.path)
	}
	w.fs.mu.Unlock()
}

// OpenRange returns a streaming reader over bytes [off, off+n) of the file
// at path.
func (fs *FS) OpenRange(path string, off, n int64) (*Reader, error) {
	fs.mu.Lock()
	content, ok := fs.files[path]
	fs.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotExist, path)
	}
	if off < 0 || n < 0 || off+n > content.Len() {
		return nil, fmt.Errorf("ramfs: range [%d,%d) outside %s (%d bytes)", off, off+n, path, content.Len())
	}
	return &Reader{fs: fs, content: content.Slice(off, n)}, nil
}

// Reader streams a file out of the FS in chunks.
type Reader struct {
	fs      *FS
	content blob.Blob
	off     int64
}

// Open returns a streaming reader for path.
func (fs *FS) Open(path string) (*Reader, error) {
	fs.mu.Lock()
	content, ok := fs.files[path]
	fs.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotExist, path)
	}
	return &Reader{fs: fs, content: content}, nil
}

// Size returns the total file size.
func (r *Reader) Size() int64 { return r.content.Len() }

// Next returns the next chunk of at most max bytes and its virtual read
// time, or io.EOF after the last chunk.
func (r *Reader) Next(max int64) (blob.Blob, simclock.Duration, error) {
	if r.off >= r.content.Len() {
		return blob.Blob{}, 0, io.EOF
	}
	n := max
	if rem := r.content.Len() - r.off; rem < n {
		n = rem
	}
	chunk := r.content.Slice(r.off, n)
	r.off += n
	return chunk, simclock.Rate(r.fs.model.RamFSBandwidth)(n), nil
}
