package simclock

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Span records the virtual duration of one named phase of an operation,
// with optional sub-phases. Spans are how the benchmark harness recovers
// the stacked-bar breakdowns of Fig 10 (pause / snapshot+write(host) /
// snapshot+write(device), etc.) from a run.
//
// A Span is safe for concurrent use: protocol phases executed by different
// goroutines (host process, COI daemon, offload process) add children and
// charge time concurrently.
type Span struct {
	Name string

	mu       sync.Mutex
	d        Duration
	children []*Span
}

// NewSpan returns an empty span with the given name.
func NewSpan(name string) *Span { return &Span{Name: name} }

// Add charges d virtual time to the span.
func (s *Span) Add(d Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.d += d
	s.mu.Unlock()
}

// Set replaces the span's own duration (used when a phase's time is the max
// of concurrent sub-activities rather than their sum).
func (s *Span) Set(d Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.d = d
	s.mu.Unlock()
}

// Child returns the child span with the given name, creating it if needed.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.children {
		if c.Name == name {
			return c
		}
	}
	c := NewSpan(name)
	s.children = append(s.children, c)
	return c
}

// Own returns the span's own charged duration, excluding children.
func (s *Span) Own() Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.d
}

// Total returns the span's own duration plus the totals of all children.
func (s *Span) Total() Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.d
	for _, c := range s.children {
		t += c.Total()
	}
	return t
}

// Children returns the child spans in creation order.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Span, len(s.children))
	copy(out, s.children)
	return out
}

// Find returns the descendant span with the given name, searching
// depth-first, or nil.
func (s *Span) Find(name string) *Span {
	if s == nil {
		return nil
	}
	if s.Name == name {
		return s
	}
	for _, c := range s.Children() {
		if f := c.Find(name); f != nil {
			return f
		}
	}
	return nil
}

// String renders the span tree for debugging and harness output.
func (s *Span) String() string {
	var b strings.Builder
	s.render(&b, 0)
	return b.String()
}

func (s *Span) render(b *strings.Builder, depth int) {
	if s == nil {
		return
	}
	fmt.Fprintf(b, "%s%-28s %12v\n", strings.Repeat("  ", depth), s.Name, s.Total())
	for _, c := range s.Children() {
		c.render(b, depth+1)
	}
}

// Breakdown returns a stable name->total map of the direct children,
// ordered by name, for table rendering.
func (s *Span) Breakdown() []NamedDuration {
	cs := s.Children()
	out := make([]NamedDuration, 0, len(cs))
	for _, c := range cs {
		out = append(out, NamedDuration{c.Name, c.Total()})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// NamedDuration pairs a phase name with its virtual duration.
type NamedDuration struct {
	Name string
	D    Duration
}
