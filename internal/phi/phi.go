// Package phi models a Xeon Phi coprocessor card: its physical memory
// budget (shared between process memory and the RAM-backed file system),
// core count, and per-card RAM file system. It also models the host side of
// the server.
//
// The memory budget is the load-bearing part: the paper's storage argument
// (Section 3) is that a snapshot cannot, in general, be saved on the card
// because file bytes and process bytes compete for the same 8/16 GiB.
package phi

import (
	"fmt"
	"sync"

	"snapify/internal/hostfs"
	"snapify/internal/ramfs"
	"snapify/internal/simclock"
	"snapify/internal/simnet"
)

// MemBudget arbitrates a card's physical memory. It implements
// ramfs.Budget; the process allocator draws from the same pool.
type MemBudget struct {
	mu       sync.Mutex
	capacity int64
	used     int64
}

// NewMemBudget returns a budget of the given capacity in bytes.
func NewMemBudget(capacity int64) *MemBudget {
	return &MemBudget{capacity: capacity}
}

// Reserve claims n bytes or fails with an out-of-memory error.
func (b *MemBudget) Reserve(n int64) error {
	if n < 0 {
		panic(fmt.Sprintf("phi: negative reservation %d", n)) //nolint:paniclib // caller bug: negative reservations are unconstructible
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.used+n > b.capacity {
		return fmt.Errorf("phi: out of memory: need %d, have %d of %d free",
			n, b.capacity-b.used, b.capacity)
	}
	b.used += n
	return nil
}

// Release returns n bytes to the pool.
func (b *MemBudget) Release(n int64) {
	if n < 0 {
		panic(fmt.Sprintf("phi: negative release %d", n)) //nolint:paniclib // caller bug: negative releases are unconstructible
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.used -= n
	if b.used < 0 {
		panic("phi: released more memory than reserved") //nolint:paniclib // accounting invariant: reserve/release are paired by construction
	}
}

// Used returns the bytes currently reserved.
func (b *MemBudget) Used() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.used
}

// Free returns the bytes currently available.
func (b *MemBudget) Free() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.capacity - b.used
}

// Capacity returns the total pool size.
func (b *MemBudget) Capacity() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.capacity
}

// Device is one Xeon Phi coprocessor card.
type Device struct {
	// Node is the card's SCIF node ID (>= 1).
	Node simnet.NodeID
	// Cores and ThreadsPerCore describe the card (the 5110P in the paper's
	// testbed has 60 cores x 4 threads).
	Cores          int
	ThreadsPerCore int
	// Mem is the card's physical memory budget.
	Mem *MemBudget
	// FS is the card's RAM-backed file system; it draws from Mem.
	FS *ramfs.FS

	model *simclock.Model
}

// DeviceConfig parameterizes a card.
type DeviceConfig struct {
	MemBytes       int64 // physical memory; 0 means 8 GiB (the paper's cards)
	Cores          int   // 0 means 60
	ThreadsPerCore int   // 0 means 4
	OSReserved     int64 // memory held by the Phi OS and system files; 0 means 512 MiB
}

// NewDevice returns a card at the given SCIF node.
func NewDevice(model *simclock.Model, node simnet.NodeID, cfg DeviceConfig) *Device {
	if node.IsHost() {
		panic("phi: device cannot be the host node") //nolint:paniclib // configuration bug: topology is fixed at platform setup
	}
	if cfg.MemBytes == 0 {
		cfg.MemBytes = 8 * simclock.GiB
	}
	if cfg.Cores == 0 {
		cfg.Cores = 60
	}
	if cfg.ThreadsPerCore == 0 {
		cfg.ThreadsPerCore = 4
	}
	if cfg.OSReserved == 0 {
		cfg.OSReserved = 512 * simclock.MiB
	}
	mem := NewMemBudget(cfg.MemBytes)
	if err := mem.Reserve(cfg.OSReserved); err != nil {
		panic(fmt.Sprintf("phi: OS reservation exceeds card memory: %v", err)) //nolint:paniclib // configuration bug: OSReserved is a constant of the device model
	}
	return &Device{
		Node:           node,
		Cores:          cfg.Cores,
		ThreadsPerCore: cfg.ThreadsPerCore,
		Mem:            mem,
		FS:             ramfs.New(model, mem),
		model:          model,
	}
}

// HWThreads returns the card's hardware thread count.
func (d *Device) HWThreads() int { return d.Cores * d.ThreadsPerCore }

// Model returns the card's cost model.
func (d *Device) Model() *simclock.Model { return d.model }

// Host is the host side of a Xeon Phi server.
type Host struct {
	// Node is always simnet.HostNode.
	Node simnet.NodeID
	// Mem is the host memory budget (the testbed has 32 GiB).
	Mem *MemBudget
	// FS is the host file system where snapshots are stored.
	FS *hostfs.FS

	model *simclock.Model
}

// NewHost returns the host with the given memory (0 means 32 GiB).
func NewHost(model *simclock.Model, memBytes int64) *Host {
	if memBytes == 0 {
		memBytes = 32 * simclock.GiB
	}
	return &Host{
		Node:  simnet.HostNode,
		Mem:   NewMemBudget(memBytes),
		FS:    hostfs.New(model),
		model: model,
	}
}

// Model returns the host's cost model.
func (h *Host) Model() *simclock.Model { return h.model }

// Server is a complete Xeon Phi server: a host, one or more cards, and the
// PCIe fabric connecting them.
type Server struct {
	Fabric  *simnet.Fabric
	Host    *Host
	Devices []*Device
}

// ServerConfig parameterizes a server.
type ServerConfig struct {
	Devices   int // number of cards; 0 means 1
	Device    DeviceConfig
	HostMem   int64
	CostModel *simclock.Model // nil means simclock.Default()
}

// NewServer assembles a server.
func NewServer(cfg ServerConfig) *Server {
	if cfg.Devices == 0 {
		cfg.Devices = 1
	}
	model := cfg.CostModel
	if model == nil {
		model = simclock.Default()
	}
	s := &Server{
		Fabric: simnet.NewFabric(model, cfg.Devices),
		Host:   NewHost(model, cfg.HostMem),
	}
	for i := 0; i < cfg.Devices; i++ {
		s.Devices = append(s.Devices, NewDevice(model, simnet.NodeID(i+1), cfg.Device))
	}
	return s
}

// Device returns the card at the given SCIF node.
func (s *Server) Device(node simnet.NodeID) *Device {
	for _, d := range s.Devices {
		if d.Node == node {
			return d
		}
	}
	panic(fmt.Sprintf("phi: no device at node %d", node)) //nolint:paniclib // caller bug: device lookups use node ids minted by this server
}

// Model returns the server's cost model.
func (s *Server) Model() *simclock.Model { return s.Fabric.Model() }
