package simclock

// PipelineAccum accumulates the virtual time of a chunked transfer whose
// stage costs are observed while the transfer actually executes (rather
// than predicted from closed-form stage functions as in Pipeline).
//
// The transports stream each chunk through their real data path, collect
// the per-stage costs of that chunk, and feed them to Observe. The first
// chunk fills the pipeline (all stages in sequence); each later chunk adds
// only its slowest stage. SerialObserve instead adds every stage of every
// chunk, modeling an unpipelined path.
type PipelineAccum struct {
	total Duration
	first bool
}

// NewPipelineAccum returns an empty accumulator.
func NewPipelineAccum() *PipelineAccum { return &PipelineAccum{first: true} }

// Observe adds one chunk's stage costs with pipeline overlap.
func (p *PipelineAccum) Observe(stageCosts ...Duration) {
	if p.first {
		for _, d := range stageCosts {
			p.total += d
		}
		p.first = false
		return
	}
	p.total += MaxAll(stageCosts...)
}

// SerialObserve adds one chunk's stage costs with no overlap.
func (p *PipelineAccum) SerialObserve(stageCosts ...Duration) {
	for _, d := range stageCosts {
		p.total += d
	}
	p.first = false
}

// Add charges a fixed duration (handshakes, per-file overheads).
func (p *PipelineAccum) Add(d Duration) { p.total += d }

// Total returns the accumulated virtual time.
func (p *PipelineAccum) Total() Duration { return p.total }
