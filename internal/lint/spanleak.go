package lint

import (
	"go/ast"
	"go/types"
	"strconv"
)

// SpanLeak reports obs spans begun with Track.Begin/BeginAt that are not
// ended on every CFG path out of the beginning function. An unended span
// never reaches the tracer, so the capture phase it was supposed to cover
// silently vanishes from the Chrome trace and from every duration metric
// derived from it — the observability analogue of a dropped error. The
// engine is the shared acquire/release dataflow in leak.go: a `defer
// sp.End()` right after Begin discharges every exit at once (End is
// idempotent, so an explicit early EndAt still composes); returning the
// span or handing it to another function moves the obligation to code
// this intraprocedural pass trusts.
var SpanLeak = &Analyzer{
	Name: "spanleak",
	Doc:  "every obs span begun must be ended on all paths out of the function (defer sp.End() or total return coverage)",
	Run:  runSpanLeak,
}

var spanLeakSpec = &leakSpec{
	isAcquire: func(p *Pass, f *types.Func) bool {
		if !funcPkgPathHasSuffix(f, "internal/obs") {
			return false
		}
		return f.Name() == "Begin" || f.Name() == "BeginAt"
	},
	isResource: func(t types.Type) bool {
		named, ok := derefNamed(t)
		return ok && named.Obj().Name() == "OpenSpan" && named.Obj().Pkg() != nil &&
			pathHasSuffix(named.Obj().Pkg().Path(), "internal/obs")
	},
	release: map[string]bool{"End": true, "EndAt": true},
	describe: func(p *Pass, call *ast.CallExpr, f *types.Func, obj types.Object) string {
		// Begin(scope, name, args) / BeginAt(scope, name, start, args):
		// the span name is the second argument when it is a literal.
		if len(call.Args) >= 2 {
			if lit, ok := ast.Unparen(call.Args[1]).(*ast.BasicLit); ok {
				if name, err := strconv.Unquote(lit.Value); err == nil {
					return "span " + strconv.Quote(name) + " begun here"
				}
			}
		}
		return "span begun here"
	},
	verb:   "ended",
	advice: "defer its End right after Begin, or end it before every return",
}

func runSpanLeak(p *Pass) {
	runLeak(p, spanLeakSpec)
}

// derefNamed unwraps one level of pointer and returns the named type.
func derefNamed(t types.Type) (*types.Named, bool) {
	if t == nil {
		return nil, false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return named, ok
}
