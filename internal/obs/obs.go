// Package obs is the observability spine of the reproduction: a span
// tracer keyed on the virtual simclock (exported as Chrome trace-event
// JSON, loadable in Perfetto) and a metrics registry of counters, gauges,
// and histograms with a Prometheus-style text exposition.
//
// Everything here measures *virtual* time — the same simclock.Duration
// the cost model advances — never the wall clock. A span is where a
// virtual duration is born; the core.Report phase fields are derived
// from spans, not the other way around (DESIGN.md §9).
//
// Every method is safe on a nil receiver: a Platform built without
// observability (obs == nil) costs nothing and instruments nothing, so
// call sites never need nil guards.
package obs

import "os"

// Obs bundles the tracer, the metrics registry, and the always-on
// flight recorder for one Platform. It is per-Platform, not
// process-global: the test suite runs many simulated platforms
// concurrently and their timelines are unrelated.
type Obs struct {
	Tracer  *Tracer
	Metrics *Registry
	Flight  *FlightRecorder
}

// New returns an Obs with an empty tracer and registry, and a flight
// recorder fed every span the tracer records. If SNAPIFY_FLIGHT_DIR is
// set in the environment, each incident dump is also written there.
func New() *Obs {
	t := NewTracer()
	m := NewRegistry()
	f := NewFlightRecorder(DefaultFlightSpans, m)
	if dir := os.Getenv("SNAPIFY_FLIGHT_DIR"); dir != "" {
		f.SetDumpDir(dir)
	}
	t.SetOnEmit(f.Record)
	return &Obs{Tracer: t, Metrics: m, Flight: f}
}

// TracerOf returns o.Tracer, tolerating a nil o.
func (o *Obs) TracerOf() *Tracer {
	if o == nil {
		return nil
	}
	return o.Tracer
}

// MetricsOf returns o.Metrics, tolerating a nil o.
func (o *Obs) MetricsOf() *Registry {
	if o == nil {
		return nil
	}
	return o.Metrics
}

// FlightOf returns o.Flight, tolerating a nil o.
func (o *Obs) FlightOf() *FlightRecorder {
	if o == nil {
		return nil
	}
	return o.Flight
}
