package core

// Flight-recorder chaos coverage (DESIGN.md §14): when a capture dies —
// here a daemon crash mid-stream with no retry budget — the platform's
// always-on flight recorder must produce a dump whose embedded trace is
// schema-valid and records the failing operation's marker span, so the
// failure can be analyzed offline without re-running the scenario.

import (
	"strings"
	"testing"

	"snapify/internal/faultinject"
	"snapify/internal/obs"
	"snapify/internal/simnet"
)

func TestChaosFlightRecorderDumpOnCaptureFailure(t *testing.T) {
	r := newRig(t, "core_chaos_flight", 1)
	r.count(t, 20)
	s := NewSnapshot("/snap/chaosflight", r.cp)
	if err := Pause(s); err != nil {
		t.Fatal(err)
	}
	// Crash the host daemon on the first capture chunk it receives and
	// grant no retry budget, so the capture must fail (a retry would
	// mask the dump we are testing for).
	arm(r, faultinject.Fault{
		Site: faultinject.SiteDaemon,
		Key:  simnet.HostNode.String(),
		Kind: faultinject.Crash,
		Nth:  1,
	})
	opts := chaosOpts()
	opts.Retry = RetryPolicy{}
	err := s.Capture(opts)
	if err == nil {
		err = Wait(s)
	}
	disarm(r)
	if err == nil {
		t.Fatal("capture with crashed daemon and no retry budget succeeded")
	}
	assertNoPartials(t, r.plat)

	d := r.plat.Obs.FlightOf().LastDump()
	if d == nil {
		t.Fatal("failed capture produced no flight dump")
	}
	if !strings.Contains(d.Reason, "capture") {
		t.Errorf("dump reason %q does not mention the failing op", d.Reason)
	}
	if d.SpanCount == 0 {
		t.Error("flight dump holds no spans")
	}
	if err := obs.ValidateChromeTrace([]byte(d.Trace)); err != nil {
		t.Errorf("flight dump trace does not validate: %v", err)
	}
	if !strings.Contains(string(d.Trace), `"capture_failed"`) {
		t.Error("flight dump trace is missing the capture_failed marker span")
	}
	if sum := d.Summary(); !strings.Contains(sum, "flight dump") {
		t.Errorf("dump summary missing header:\n%s", sum)
	}
}
