package coi

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"snapify/internal/proc"
	"snapify/internal/scif"
	"snapify/internal/simclock"
)

// Pipeline wire opcodes.
const (
	plRun  uint8 = 1
	plDone uint8 = 2
)

// ErrProcessGone is returned for operations against a destroyed or
// swapped-out offload process.
var ErrProcessGone = errors.New("coi: offload process gone")

// Pipeline is the host side of a COI pipeline: the client of the
// run-function channel (Pipe_Thread1 in Fig 4). RunFunction sends a run
// request and blocks until the server thread in the offload process sends
// the function's return value back.
type Pipeline struct {
	cp *Process
	id uint32

	// sendMu is the host side of the case-4 critical region: Snapify's
	// pause holds it, so no run request can enter the channel mid-drain.
	sendMu sync.Mutex

	mu       sync.Mutex
	ep       *scif.Endpoint
	nextSeq  uint64
	pending  map[uint64]chan runResult
	lastDone uint64
}

type runResult struct {
	data    []byte
	compute simclock.Duration
	recvD   simclock.Duration
	err     error
}

func newPipeline(cp *Process, id uint32, ep *scif.Endpoint) *Pipeline {
	pl := &Pipeline{cp: cp, id: id, ep: ep, nextSeq: 1, pending: make(map[uint64]chan runResult)}
	go pl.receiver(ep)
	return pl
}

// ID returns the pipeline id.
func (pl *Pipeline) ID() uint32 { return pl.id }

// receiver is the host-side result dispatcher. It exits when its endpoint
// dies (swap-out, destroy); a reconnect starts a fresh receiver on the new
// endpoint and the pending waiters simply keep waiting — the restored
// offload process re-sends results for re-entered functions.
func (pl *Pipeline) receiver(ep *scif.Endpoint) {
	for {
		raw, d, err := ep.Recv()
		if err != nil {
			return
		}
		if raw[0] != plDone {
			continue
		}
		seq := binary.BigEndian.Uint64(raw[1:9])
		status := raw[9]
		compute := simclock.Duration(binary.BigEndian.Uint64(raw[10:18]))
		payload := raw[18:]

		pl.mu.Lock()
		if seq <= pl.lastDone {
			// Duplicate result after a restore re-entry; drop it.
			pl.mu.Unlock()
			continue
		}
		ch, ok := pl.pending[seq]
		if ok {
			delete(pl.pending, seq)
			pl.lastDone = seq
		}
		pl.mu.Unlock()
		if !ok {
			continue
		}
		res := runResult{compute: compute, recvD: d}
		if status != 0 {
			res.err = fmt.Errorf("coi: offload function failed: %s", payload)
		} else {
			res.data = append([]byte(nil), payload...)
		}
		ch <- res
	}
}

// RunFunction executes the named offload function synchronously and
// returns its result (COIPipelineRunFunction with a blocking wait).
func (pl *Pipeline) RunFunction(name string, args []byte) ([]byte, error) {
	h, err := pl.RunFunctionAsync(name, args)
	if err != nil {
		return nil, err
	}
	return h.Wait()
}

// RunHandle is a pending asynchronous run-function call.
type RunHandle struct {
	pl  *Pipeline
	seq uint64
	ch  chan runResult
}

// RunFunctionAsync enqueues a run request and returns a handle to wait on.
func (pl *Pipeline) RunFunctionAsync(name string, args []byte) (*RunHandle, error) {
	cp := pl.cp
	// Paused is allowed: the send below blocks on the case-4 critical
	// region until resume, which is exactly the drain semantics.
	if s := cp.State(); s != StateActive && s != StatePaused {
		return nil, fmt.Errorf("%w: %s", ErrProcessGone, s)
	}

	pl.mu.Lock()
	seq := pl.nextSeq
	pl.nextSeq++
	ch := make(chan runResult, 1)
	pl.pending[seq] = ch
	ep := pl.ep
	pl.mu.Unlock()

	msg := []byte{plRun}
	msg = binary.BigEndian.AppendUint64(msg, seq)
	msg = binary.BigEndian.AppendUint32(msg, uint32(len(name)))
	msg = append(msg, name...)
	msg = append(msg, args...)

	// The send is a blocking call inside a critical region (the Snapify
	// transformation of Fig 4 step 1); pause blocks here, never mid-send.
	pl.sendMu.Lock()
	if cp.hooks() {
		cp.tl.Advance(cp.plat.Model().HookOffloadCall)
	}
	d, err := ep.Send(msg) //nolint:mutexblock // intended (Fig 4 step 1): sendMu IS the pause lock; pause must block here, never mid-send
	pl.sendMu.Unlock()
	if err != nil {
		pl.mu.Lock()
		delete(pl.pending, seq)
		pl.mu.Unlock()
		return nil, fmt.Errorf("coi: run request: %w", err)
	}
	cp.tl.Advance(d)
	return &RunHandle{pl: pl, seq: seq, ch: ch}, nil
}

// Wait blocks until the function's return value arrives and advances the
// application timeline by the offload's compute time.
func (h *RunHandle) Wait() ([]byte, error) {
	res := <-h.ch
	if res.err != nil {
		return nil, res.err
	}
	h.pl.cp.tl.Advance(res.compute + res.recvD)
	return res.data, nil
}

// reconnect swaps in the post-restore endpoint and restarts the receiver.
func (pl *Pipeline) reconnect(ep *scif.Endpoint) {
	pl.mu.Lock()
	pl.ep = ep
	pl.mu.Unlock()
	go pl.receiver(ep)
}

// endpoint returns the current endpoint (drain assertions).
func (pl *Pipeline) endpoint() *scif.Endpoint {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return pl.ep
}

// pauseLock acquires the case-4 host-side critical region.
func (pl *Pipeline) pauseLock() { pl.sendMu.Lock() }

// resumeUnlock releases it.
func (pl *Pipeline) resumeUnlock() { pl.sendMu.Unlock() }

// --- device side ---

// servePipeline is Pipe_Thread2: it receives run requests in order and
// executes them.
func (op *OffloadProc) servePipeline(id uint32, ep *scif.Endpoint) {
	for {
		raw, _, err := ep.Recv()
		if err != nil {
			return
		}
		if raw[0] != plRun {
			return
		}
		seq := binary.BigEndian.Uint64(raw[1:9])
		nameLen := binary.BigEndian.Uint32(raw[9:13])
		name := string(raw[13 : 13+nameLen])
		args := append([]byte(nil), raw[13+nameLen:]...)
		op.executeFunction(id, seq, name, args)
	}
}

// executeFunction records the active function in the control region, runs
// it, and delivers the result. The result send and the control-region
// clear are atomic under resultMu (the case-4 device-side critical
// region), so a snapshot observes either "active" or "delivered".
func (op *OffloadProc) executeFunction(id uint32, seq uint64, name string, args []byte) {
	op.writeCtrl(ctrlState{Active: true, PipelineID: id, Seq: seq, Func: name, Args: args})

	ctx := &RunContext{op: op}
	var payload []byte
	status := uint8(0)
	fn, err := op.bin.Lookup(name)
	if err == nil {
		payload, err = fn(ctx, args)
	}
	if errors.Is(err, proc.ErrGateShutdown) {
		// The process is being torn down (swap-out with terminate); the
		// function's progress is already in regions. Send nothing.
		return
	}
	if err != nil {
		status = 1
		payload = []byte(err.Error())
	}

	msg := []byte{plDone}
	msg = binary.BigEndian.AppendUint64(msg, seq)
	msg = append(msg, status)
	msg = binary.BigEndian.AppendUint64(msg, uint64(ctx.compute))
	msg = append(msg, payload...)

	// After a restore the host may still be reconnecting this pipeline;
	// block until its channel is back (or the process is being torn down)
	// so the result is never dropped.
	pl := op.awaitPipeline(id)
	if pl == nil {
		return
	}
	op.resultMu.Lock()
	defer op.resultMu.Unlock()
	if _, err := pl.ep.Send(msg); err != nil { //nolint:mutexblock // intended (Section 4.1 case 4): resultMu is the drain lock; the result send completes inside it
		return
	}
	op.writeCtrl(ctrlState{})
}

// Compute charges d of offload compute time to the current invocation; the
// host timeline advances by the total when the result arrives.
func (c *RunContext) Compute(d simclock.Duration) { c.compute += d }
