// Package storegate is a golden fixture for the storegate analyzer: it
// computes a digest with a hash primitive from a package that is not the
// snapshot store.
package storegate

import (
	"crypto/sha256" // want "chunk digests are computed only by internal/snapstore"
)

// Using the import keeps the fixture type-checking cleanly.
var _ = sha256.Sum256
