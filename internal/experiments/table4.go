package experiments

import (
	"fmt"

	"snapify/internal/blcr"
	"snapify/internal/platform"
	"snapify/internal/proc"
	"snapify/internal/simclock"
	"snapify/internal/simnet"
	"snapify/internal/snapifyio"
	"snapify/internal/stream"
	"snapify/internal/trace"
)

// Table4Sizes are the malloc sizes of the native-checkpoint benchmark.
var Table4Sizes = []int64{
	1 * simclock.MiB, 64 * simclock.MiB, 256 * simclock.MiB,
	1 * simclock.GiB, 4 * simclock.GiB,
}

// Table4Row is one malloc size's measurements. A zero duration with OOM
// set means the configuration was impossible (the paper's 4 GB Local
// case: the checkpoint no longer fits in card memory).
type Table4Row struct {
	Size int64

	CkptLocal, CkptNFS, CkptNFSKern, CkptNFSUser, CkptSnapIO simclock.Duration
	LocalOOM                                                 bool

	RestartLocal, RestartNFS, RestartSnapIO simclock.Duration
}

// Table4Result is the full benchmark.
type Table4Result struct {
	Rows []Table4Row
}

// Table4 reproduces the BLCR checkpoint/restart comparison for native Xeon
// Phi applications (Section 7, "Snapify-IO performance", second
// micro-benchmark): a native process mallocs 1 MB – 4 GB and runs an
// OpenMP loop; BLCR captures and restores it through five storage paths.
func Table4() (*Table4Result, error) {
	res := &Table4Result{}
	for _, size := range Table4Sizes {
		row := Table4Row{Size: size}

		// Each size gets a fresh platform so RAM-fs residue cannot skew
		// the memory gate.
		plat, err := newPlatform(1)
		if err != nil {
			return nil, err
		}
		dev := plat.Device(1)
		mnt := plat.NFS(1)

		spawn := func() (*proc.Process, error) {
			p := plat.Procs.Spawn("native_bench", dev.Node, dev.Mem)
			if _, err := p.AddRegion("heap", proc.RegionHeap, size, 7); err != nil {
				p.Terminate()
				return nil, err
			}
			// The micro-benchmark's OpenMP region: 240 threads that live
			// for the process's lifetime (their quiesce cost is part of
			// every checkpoint).
			for i := 0; i < 240; i++ {
				if err := p.SpawnThread("omp", func() { <-p.Exited() }); err != nil {
					p.Terminate()
					return nil, err
				}
			}
			p.Region("heap").WriteAt([]byte("touched"), 0)
			return p, nil
		}

		p, err := spawn()
		if err != nil {
			return nil, fmt.Errorf("table4: spawning %s process: %w", sizeLabel(size), err)
		}

		ckpt := func(mk func() (stream.Sink, error)) (simclock.Duration, error) {
			sink, err := mk()
			if err != nil {
				return 0, err
			}
			st, err := plat.CR.Checkpoint(p, sink)
			if err != nil {
				return 0, err
			}
			return st.Duration, nil
		}

		// Local: the snapshot goes to the card's own RAM file system.
		d, err := ckpt(func() (stream.Sink, error) {
			s, err := stream.NewRamFSSink(dev.FS, "/tmp/ctx_local")
			return s, err
		})
		if err != nil {
			// Expected for 4 GB: heap + snapshot exceed card memory.
			row.LocalOOM = true
		} else {
			row.CkptLocal = d
		}

		if row.CkptNFS, err = ckpt(func() (stream.Sink, error) { return mnt.CreateSync("/t4/ctx_nfs") }); err != nil {
			return nil, err
		}
		if row.CkptNFSKern, err = ckpt(func() (stream.Sink, error) { return mnt.CreateKernelBuffered("/t4/ctx_kern") }); err != nil {
			return nil, err
		}
		if row.CkptNFSUser, err = ckpt(func() (stream.Sink, error) { return mnt.CreateUserBuffered("/t4/ctx_user") }); err != nil {
			return nil, err
		}
		if row.CkptSnapIO, err = ckpt(func() (stream.Sink, error) {
			return plat.IO.Open(dev.Node, simnet.HostNode, "/t4/ctx_sio", snapifyio.Write)
		}); err != nil {
			return nil, err
		}

		// Kill the process, then restart from each stored snapshot.
		p.AnnounceExit()
		p.Terminate()

		restart := func(mk func() (stream.Source, error)) (simclock.Duration, error) {
			src, err := mk()
			if err != nil {
				return 0, err
			}
			rp, st, err := plat.CR.Restart(src, func(img *blcr.Image) (*proc.Process, error) {
				return plat.Procs.Spawn(img.Name, dev.Node, dev.Mem), nil
			})
			src.Close() //nolint:errcheck // read side at EOF: close only releases the descriptor
			if err != nil {
				return 0, err
			}
			rp.ResumeSteps()
			d := st.Duration + plat.Model().ProcLaunch
			rp.AnnounceExit()
			rp.Terminate()
			return d, nil
		}

		if !row.LocalOOM {
			if row.RestartLocal, err = restart(func() (stream.Source, error) {
				return stream.NewRamFSSource(dev.FS, "/tmp/ctx_local")
			}); err != nil {
				return nil, err
			}
			dev.FS.Remove("/tmp/ctx_local") //nolint:errcheck // scratch cleanup; a failed remove only holds simulated ram until the next loop
		}
		if row.RestartNFS, err = restart(func() (stream.Source, error) { return mnt.Open("/t4/ctx_nfs") }); err != nil {
			return nil, err
		}
		if row.RestartSnapIO, err = restart(func() (stream.Source, error) {
			return plat.IO.Open(dev.Node, simnet.HostNode, "/t4/ctx_sio", snapifyio.Read)
		}); err != nil {
			return nil, err
		}
		stopPlatform(plat)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func stopPlatform(plat *platform.Platform) { plat.IO.Stop() }

// Render prints the table in the paper's layout.
func (r *Table4Result) Render() string {
	t := trace.New("Table 4: BLCR checkpoint and restart of a native Xeon Phi process",
		"malloc",
		"ckpt Local", "ckpt NFS", "ckpt NFS-kbuf", "ckpt NFS-ubuf", "ckpt SnapIO",
		"rst Local", "rst NFS", "rst SnapIO")
	for _, row := range r.Rows {
		local := trace.Seconds(row.CkptLocal)
		rstLocal := trace.Seconds(row.RestartLocal)
		if row.LocalOOM {
			local, rstLocal = "OOM", "OOM"
		}
		t.Row(sizeLabel(row.Size),
			local, trace.Seconds(row.CkptNFS), trace.Seconds(row.CkptNFSKern),
			trace.Seconds(row.CkptNFSUser), trace.Seconds(row.CkptSnapIO),
			rstLocal, trace.Seconds(row.RestartNFS), trace.Seconds(row.RestartSnapIO))
	}
	return t.String()
}

// CheckShape verifies the paper's claims: Local is fastest but fails at
// 4 GB; Snapify-IO beats every NFS variant; kernel buffering beats user
// buffering beats plain NFS for checkpoints; Snapify-IO's advantage over
// NFS holds for restart too.
func (r *Table4Result) CheckShape() error {
	for _, row := range r.Rows {
		lbl := sizeLabel(row.Size)
		if row.Size >= 4*simclock.GiB {
			if !row.LocalOOM {
				return fmt.Errorf("table4 %s: Local should be impossible (card memory gate)", lbl)
			}
		} else {
			if row.LocalOOM {
				return fmt.Errorf("table4 %s: Local unexpectedly OOM", lbl)
			}
			if row.CkptLocal >= row.CkptSnapIO {
				return fmt.Errorf("table4 %s: Local ckpt (%v) should beat Snapify-IO (%v)", lbl, row.CkptLocal, row.CkptSnapIO)
			}
		}
		// Below a few tens of MB fixed costs dominate and the orderings
		// blur (the paper sees the same effect at 1 MB in Table 3); the
		// strict ordering claim is about checkpoint-sized snapshots.
		if row.Size >= 64*simclock.MiB {
			if !(row.CkptSnapIO < row.CkptNFSKern && row.CkptNFSKern <= row.CkptNFSUser && row.CkptNFSUser < row.CkptNFS) {
				return fmt.Errorf("table4 %s ckpt ordering violated: sio=%v kern=%v user=%v nfs=%v",
					lbl, row.CkptSnapIO, row.CkptNFSKern, row.CkptNFSUser, row.CkptNFS)
			}
		}
		if row.RestartSnapIO >= row.RestartNFS {
			return fmt.Errorf("table4 %s restart: Snapify-IO (%v) should beat NFS (%v)", lbl, row.RestartSnapIO, row.RestartNFS)
		}
	}
	// Speedups in the paper's reported ranges (conclusion: checkpoint
	// 4.7–8.8x, restart 4.4–5.3x for 1–4 GB; we accept the same order of
	// magnitude, 2–16x).
	for _, row := range r.Rows {
		if row.Size < simclock.GiB {
			continue
		}
		ck := ratio(row.CkptNFS, row.CkptSnapIO)
		if ck < 2 || ck > 16 {
			return fmt.Errorf("table4 %s: checkpoint speedup %.1fx outside plausible range", sizeLabel(row.Size), ck)
		}
		rs := ratio(row.RestartNFS, row.RestartSnapIO)
		if rs < 1.5 || rs > 16 {
			return fmt.Errorf("table4 %s: restart speedup %.1fx outside plausible range", sizeLabel(row.Size), rs)
		}
	}
	return nil
}
