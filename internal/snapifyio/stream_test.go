package snapifyio

import (
	"strings"
	"sync"
	"testing"

	"snapify/internal/blob"
	"snapify/internal/simclock"
	"snapify/internal/simnet"
	"snapify/internal/stream"
)

// writeAllOpts streams a blob through an already-open write handle,
// observing per-chunk costs and the flushed tail, and closes it.
func writeAllOpts(t *testing.T, f *File, content blob.Blob) simclock.Duration {
	t.Helper()
	acc := simclock.NewPipelineAccum()
	err := content.ForEachChunk(DefaultBufSize, func(chunk blob.Blob) error {
		cost, err := f.WriteBlob(chunk)
		if err != nil {
			return err
		}
		stream.Observe(acc, cost)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	tail, err := f.Flush()
	if err != nil {
		t.Fatal(err)
	}
	stream.Observe(acc, tail)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return acc.Total()
}

func TestMultiSlotWriteMatchesSingleSlotAndIsFaster(t *testing.T) {
	r := newRig(t)
	content := blob.Concat(
		blob.FromBytes([]byte("pipelined snapshot")),
		blob.Synthetic(11, simclock.GiB),
	)
	f1, err := r.svc.OpenStream(1, simnet.HostNode, "/serial", Write, OpenOptions{Slots: 1})
	if err != nil {
		t.Fatal(err)
	}
	serial := writeAllOpts(t, f1, content)
	f2, err := r.svc.OpenStream(1, simnet.HostNode, "/piped", Write, OpenOptions{Slots: 2})
	if err != nil {
		t.Fatal(err)
	}
	piped := writeAllOpts(t, f2, content)

	a, _, err := r.server.Host.FS.ReadFile("/serial")
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := r.server.Host.FS.ReadFile("/piped")
	if err != nil {
		t.Fatal(err)
	}
	if !blob.Equal(a, b) || !blob.Equal(a, content) {
		t.Error("multi-slot write content differs from single-slot write")
	}
	if piped > serial {
		t.Errorf("double-buffered write (%v) slower than ping-pong (%v)", piped, serial)
	}
}

func TestMultiSlotReadPrefetchMatchesContent(t *testing.T) {
	r := newRig(t)
	content := blob.Concat(blob.FromBytes([]byte("ctx")), blob.Synthetic(7, 64*simclock.MiB))
	r.server.Host.FS.WriteFile("/f", content)

	f1, err := r.svc.OpenStream(1, simnet.HostNode, "/f", Read, OpenOptions{Slots: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, serial := readAll(t, f1)
	f4, err := r.svc.OpenStream(1, simnet.HostNode, "/f", Read, OpenOptions{Slots: 4})
	if err != nil {
		t.Fatal(err)
	}
	got, piped := readAll(t, f4)
	if !blob.Equal(got, content) {
		t.Error("prefetching read corrupted content")
	}
	if piped >= serial {
		t.Errorf("prefetching read (%v) not faster than serial read (%v)", piped, serial)
	}
}

func TestStripedWriteAssemblesWholeFile(t *testing.T) {
	r := newRig(t)
	total := 32*simclock.MiB + 12345 // deliberately not chunk-aligned
	content := blob.Concat(blob.FromBytes([]byte("striped")), blob.Synthetic(3, total-7))
	const streams = 4
	per := (total + streams - 1) / streams

	var wg sync.WaitGroup
	errs := make([]error, streams)
	files := make([]*File, streams)
	for i := 0; i < streams; i++ {
		off := int64(i) * per
		length := per
		if off+length > total {
			length = total - off
		}
		f, err := r.svc.OpenStream(1, simnet.HostNode, "/snap/striped", Write, OpenOptions{
			Slots:  2,
			Stripe: Stripe{Offset: off, Length: length, Total: total},
		})
		if err != nil {
			t.Fatal(err)
		}
		files[i] = f
	}
	// The assembled file must not be visible while stripes are open.
	if _, _, err := r.server.Host.FS.ReadFile("/snap/striped"); err == nil {
		t.Error("striped file visible before any stripe closed")
	}
	for i := 0; i < streams; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			off := int64(i) * per
			length := files[i].stripeEnd - off
			part := content.Slice(off, length)
			err := part.ForEachChunk(DefaultBufSize, func(chunk blob.Blob) error {
				_, err := files[i].WriteBlob(chunk)
				return err
			})
			if err == nil {
				_, err = files[i].Flush()
			}
			if err == nil {
				err = files[i].Close()
			} else {
				files[i].Abort()
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("stripe %d: %v", i, err)
		}
	}
	got, _, err := r.server.Host.FS.ReadFile("/snap/striped")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != total {
		t.Fatalf("assembled file is %d bytes, want %d", got.Len(), total)
	}
	if !blob.Equal(got, content) {
		t.Error("assembled striped file differs from source content")
	}
	if got.LiteralBytes() > simclock.MiB {
		t.Errorf("assembled file holds %d literal bytes; synthetic background materialized", got.LiteralBytes())
	}
}

func TestStripedReadRange(t *testing.T) {
	r := newRig(t)
	content := blob.Concat(blob.FromBytes([]byte("0123456789")), blob.Synthetic(5, 8*simclock.MiB))
	r.server.Host.FS.WriteFile("/f", content)
	f, err := r.svc.OpenStream(1, simnet.HostNode, "/f", Read, OpenOptions{
		Slots:  2,
		Stripe: Stripe{Offset: 4, Length: 6*simclock.MiB + 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() != 6*simclock.MiB+2 {
		t.Errorf("range size = %d, want %d", f.Size(), 6*simclock.MiB+2)
	}
	got, _ := readAll(t, f)
	if !blob.Equal(got, content.Slice(4, 6*simclock.MiB+2)) {
		t.Error("range read content differs")
	}
}

func TestOpenStreamValidation(t *testing.T) {
	r := newRig(t)
	if _, err := r.svc.OpenStream(1, simnet.HostNode, "/f", Write, OpenOptions{Slots: MaxSlots + 1}); err == nil {
		t.Error("slots over MaxSlots accepted")
	}
	if _, err := r.svc.OpenStream(1, simnet.HostNode, "/f", Write, OpenOptions{
		Stripe: Stripe{Offset: -1, Length: 4, Total: 8},
	}); err == nil {
		t.Error("negative stripe offset accepted")
	}
	if _, err := r.svc.OpenStream(1, simnet.HostNode, "/f", Write, OpenOptions{
		Stripe: Stripe{Offset: 8, Length: 8, Total: 8},
	}); err == nil {
		t.Error("stripe outside declared total accepted")
	}

	// A second stripe declaring a different total must be rejected by the
	// remote daemon's assembly.
	f1, err := r.svc.OpenStream(1, simnet.HostNode, "/asm", Write, OpenOptions{
		Stripe: Stripe{Offset: 0, Length: 8, Total: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f1.Abort()
	_, err = r.svc.OpenStream(1, simnet.HostNode, "/asm", Write, OpenOptions{
		Stripe: Stripe{Offset: 8, Length: 16, Total: 24},
	})
	if err == nil || !strings.Contains(err.Error(), "total") {
		t.Errorf("mismatched stripe totals: %v", err)
	}
}

func TestStripeOverrunRejectedClientSide(t *testing.T) {
	r := newRig(t)
	f, err := r.svc.OpenStream(1, simnet.HostNode, "/f", Write, OpenOptions{
		Stripe: Stripe{Offset: 0, Length: 4, Total: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteBlob(blob.Synthetic(1, 8)); err == nil {
		t.Error("write past stripe end accepted")
	}
	f.Abort()
}

func TestAbortedStripeDiscardsAssembly(t *testing.T) {
	r := newRig(t)
	open := func(off, length int64) *File {
		f, err := r.svc.OpenStream(1, simnet.HostNode, "/asm", Write, OpenOptions{
			Stripe: Stripe{Offset: off, Length: length, Total: 8 * simclock.MiB},
		})
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	f1 := open(0, 4*simclock.MiB)
	f2 := open(4*simclock.MiB, 4*simclock.MiB)
	if _, err := f1.WriteBlob(blob.Synthetic(1, 4*simclock.MiB)); err != nil {
		t.Fatal(err)
	}
	f2.Abort()
	if err := f1.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.server.Host.FS.ReadFile("/asm"); err == nil {
		t.Error("aborted assembly still produced a file")
	}
}

func TestConcurrentStripedCaptures(t *testing.T) {
	// Several striped files from both devices to the host at once, each
	// over multiple streams — the stress shape of a parallel capture.
	r := newRig(t)
	const files, streams = 3, 3
	total := int64(12 * simclock.MiB)
	per := total / streams
	var wg sync.WaitGroup
	errCh := make(chan error, files*streams)
	for fi := 0; fi < files; fi++ {
		content := blob.Synthetic(uint64(fi+1), total)
		path := "/snap/" + string(rune('a'+fi))
		node := simnet.NodeID(fi%2 + 1)
		for s := 0; s < streams; s++ {
			wg.Add(1)
			go func(node simnet.NodeID, path string, content blob.Blob, off int64) {
				defer wg.Done()
				f, err := r.svc.OpenStream(node, simnet.HostNode, path, Write, OpenOptions{
					Slots:  2,
					Stripe: Stripe{Offset: off, Length: per, Total: total},
				})
				if err != nil {
					errCh <- err
					return
				}
				part := content.Slice(off, per)
				err = part.ForEachChunk(DefaultBufSize, func(chunk blob.Blob) error {
					_, werr := f.WriteBlob(chunk)
					return werr
				})
				if err == nil {
					err = f.Close()
				} else {
					f.Abort()
				}
				errCh <- err
			}(node, path, content, int64(s)*per)
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Fatal(err)
		}
	}
	for fi := 0; fi < files; fi++ {
		got, _, err := r.server.Host.FS.ReadFile("/snap/" + string(rune('a'+fi)))
		if err != nil {
			t.Fatal(err)
		}
		if !blob.Equal(got, blob.Synthetic(uint64(fi+1), total)) {
			t.Errorf("file %d corrupted by concurrent striped writes", fi)
		}
	}
}
