package simclock

import (
	"math/rand"
	"testing"
	"time"
)

func TestXferBasic(t *testing.T) {
	m := Default()
	if got := m.RDMA(0); got != m.RDMASetup {
		t.Errorf("RDMA(0) = %v, want setup-only %v", got, m.RDMASetup)
	}
	one := m.RDMA(m.RDMABandwidth)
	want := m.RDMASetup + time.Second
	if diff := one - want; diff < -time.Millisecond || diff > time.Millisecond {
		t.Errorf("RDMA(1s worth) = %v, want ~%v", one, want)
	}
}

func TestModelMonotonicInBytes(t *testing.T) {
	m := Default()
	fns := map[string]func(int64) Duration{
		"RDMA":         m.RDMA,
		"SCIFMsg":      m.SCIFMsg,
		"PhiMemcpy":    m.PhiMemcpy,
		"HostMemcpy":   m.HostMemcpy,
		"PhiPageWalk":  m.PhiPageWalk,
		"HostPageWalk": m.HostPageWalk,
		"RegisterCost": m.RegisterCost,
	}
	for name, fn := range fns {
		prev := Duration(-1)
		for _, n := range []int64{0, 1, KiB, MiB, 64 * MiB, GiB} {
			d := fn(n)
			if d < prev {
				t.Errorf("%s not monotonic at %d bytes: %v < %v", name, n, d, prev)
			}
			prev = d
		}
	}
}

func TestPipelineSingleChunkEqualsSerial(t *testing.T) {
	stages := []Stage{Rate(2 * GiB), Rate(6 * GiB), Rate(3 * GiB)}
	total := int64(3 * MiB)
	p := Pipeline(total, 4*MiB, stages...)
	s := Serial(total, 4*MiB, stages...)
	if p != s {
		t.Errorf("single-chunk pipeline %v != serial %v", p, s)
	}
}

func TestPipelineBottleneckDominates(t *testing.T) {
	// With many chunks the pipeline time approaches total/bottleneck.
	slow := Rate(1 * GiB)
	fast := Rate(10 * GiB)
	total := int64(1 * GiB)
	p := Pipeline(total, 4*MiB, fast, slow, fast)
	want := xfer(total, 1*GiB)
	// Allow fill overhead of a few chunks.
	if p < want {
		t.Errorf("pipeline %v faster than bottleneck bound %v", p, want)
	}
	if p > want+xfer(16*MiB, 1*GiB) {
		t.Errorf("pipeline %v too far above bottleneck bound %v", p, want)
	}
}

func TestPipelineNeverFasterThanAnyStage(t *testing.T) {
	for i := 0; i < 300; i++ {
		r := rand.New(rand.NewSource(int64(i)))
		total := 1 + r.Int63n(256*MiB)
		chunk := 1 + r.Int63n(8*MiB)
		bw1 := int64(1*MiB) + r.Int63n(8*GiB)
		bw2 := int64(1*MiB) + r.Int63n(8*GiB)
		p := Pipeline(total, chunk, Rate(bw1), Rate(bw2))
		// Per-chunk durations truncate to whole nanoseconds, so allow one
		// nanosecond of slack per chunk against the exact bound.
		slack := Duration(total/chunk + 2)
		for _, bw := range []int64{bw1, bw2} {
			if p+slack < xfer(total, bw) {
				t.Fatalf("seed %d: pipeline %v faster than stage bound %v (total=%d chunk=%d bw=%d)",
					i, p, xfer(total, bw), total, chunk, bw)
			}
		}
		if s := Serial(total, chunk, Rate(bw1), Rate(bw2)); p > s {
			t.Fatalf("seed %d: pipeline %v slower than serial %v", i, p, s)
		}
	}
}

func TestSerialAccountsEveryChunk(t *testing.T) {
	setup := 1 * time.Millisecond
	st := RateWithSetup(setup, 1*GiB)
	total := int64(10 * MiB)
	chunk := int64(1 * MiB)
	got := Serial(total, chunk, st)
	want := 10 * (setup + xfer(chunk, 1*GiB))
	if got != want {
		t.Errorf("Serial = %v, want %v", got, want)
	}
}

func TestPipelinePartialLastChunk(t *testing.T) {
	st := Fixed(time.Millisecond)
	got := Pipeline(10*MiB+1, 4*MiB, st) // chunks: 4,4,2+1B -> 3 chunks
	want := 3 * time.Millisecond
	if got != want {
		t.Errorf("partial-chunk pipeline = %v, want %v", got, want)
	}
}

func TestSpanTreeAccounting(t *testing.T) {
	root := NewSpan("checkpoint")
	root.Child("pause").Add(2 * time.Second)
	root.Child("pause").Add(1 * time.Second) // same child reused
	root.Child("capture").Add(5 * time.Second)
	if got := root.Child("pause").Total(); got != 3*time.Second {
		t.Errorf("pause total = %v, want 3s", got)
	}
	if got := root.Total(); got != 8*time.Second {
		t.Errorf("root total = %v, want 8s", got)
	}
	if f := root.Find("capture"); f == nil || f.Total() != 5*time.Second {
		t.Errorf("Find(capture) = %v", f)
	}
	if f := root.Find("missing"); f != nil {
		t.Errorf("Find(missing) = %v, want nil", f)
	}
	bd := root.Breakdown()
	if len(bd) != 2 || bd[0].Name != "capture" || bd[1].Name != "pause" {
		t.Errorf("Breakdown = %v", bd)
	}
}

func TestSpanConcurrent(t *testing.T) {
	root := NewSpan("r")
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 1000; j++ {
				root.Child("c").Add(time.Nanosecond)
			}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	if got := root.Total(); got != 8000*time.Nanosecond {
		t.Errorf("concurrent total = %v, want 8000ns", got)
	}
}

func TestMaxHelpers(t *testing.T) {
	if Max(time.Second, 2*time.Second) != 2*time.Second {
		t.Error("Max wrong")
	}
	if MaxAll() != 0 {
		t.Error("MaxAll() should be 0")
	}
	if MaxAll(time.Second, 3*time.Second, 2*time.Second) != 3*time.Second {
		t.Error("MaxAll wrong")
	}
}

func TestDefaultOrderings(t *testing.T) {
	// The calibration must preserve the platform's qualitative orderings;
	// the paper's results depend on these.
	m := Default()
	if m.RDMABandwidth <= m.NFSBandwidth {
		t.Error("RDMA must be faster than the virtio/NFS path")
	}
	if m.NFSBandwidth <= m.SCPCipherBandwidth {
		t.Error("NFS streaming must beat cipher-bound scp")
	}
	if m.HostMemcpyBandwidth <= m.PhiMemcpyBandwidth {
		t.Error("host cores must copy faster than a KNC core")
	}
	if m.HostFSFlushBandwidth >= m.HostFSWriteBandwidth {
		t.Error("flush to disk must be slower than writing the page cache")
	}
}
