package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"snapify/internal/simclock"
)

// gateBaseline runs a tiny parallel-capture sweep and writes its JSON to
// dir as a BENCH baseline for the gate tests.
func gateBaseline(t *testing.T, dir string) string {
	t.Helper()
	res, err := ParallelCapture(64*simclock.MiB, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	out, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "BENCH_capture.json")
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCheckBaselinesClean pins that a freshly generated baseline passes
// the gate: the virtual clock makes the re-run byte-reproducible on
// every non-wall field.
func TestCheckBaselinesClean(t *testing.T) {
	dir := t.TempDir()
	gateBaseline(t, dir)
	report, ok, err := CheckBaselines(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("fresh baseline regressed:\n%s", report)
	}
	if !strings.Contains(report, "BENCH_capture.json") {
		t.Errorf("report does not name the baseline:\n%s", report)
	}
}

// TestCheckBaselinesPerturbed is the acceptance probe: an intentionally
// perturbed baseline must fail the gate (snapbench -check exits nonzero
// on this same ok=false).
func TestCheckBaselinesPerturbed(t *testing.T) {
	dir := t.TempDir()
	path := gateBaseline(t, dir)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	doc := string(b)
	if !strings.Contains(doc, `"capture_ns"`) {
		t.Fatalf("baseline has no capture_ns field to perturb:\n%s", doc)
	}
	// Shift every capture_ns by an order of magnitude — far past the 1%
	// tolerance on every row.
	doc = strings.ReplaceAll(doc, `"capture_ns": `, `"capture_ns": 9`)
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	report, ok, err := CheckBaselines(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatalf("perturbed baseline passed the gate:\n%s", report)
	}
	if !strings.Contains(report, "capture_ns") {
		t.Errorf("report does not blame the perturbed field:\n%s", report)
	}
}

// TestCheckBaselinesEmptyDir pins that the gate refuses to vacuously
// pass when no baselines are present.
func TestCheckBaselinesEmptyDir(t *testing.T) {
	if _, _, err := CheckBaselines(t.TempDir()); err == nil {
		t.Fatal("gate passed with no baselines to check")
	}
}

// TestCheckBaselinesUnknownBenchmark pins the gate erroring (not
// passing) on a baseline it does not know how to replay.
func TestCheckBaselinesUnknownBenchmark(t *testing.T) {
	dir := t.TempDir()
	doc := `{"benchmark": "warp-drive", "rows": []}`
	if err := os.WriteFile(filepath.Join(dir, "BENCH_warp.json"), []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := CheckBaselines(dir)
	if err == nil || !strings.Contains(err.Error(), "warp-drive") {
		t.Fatalf("gate error = %v, want unknown-benchmark", err)
	}
}
