package core

import (
	"strings"
	"testing"

	"snapify/internal/coi"
	"snapify/internal/platform/platformtest"
	"snapify/internal/simclock"
	"snapify/internal/simnet"
)

// TestRestoreOntoFullCardFailsCleanly injects the paper's memory gate on
// the restore path: a swapped-out process cannot come back to a card whose
// memory is taken, the error is clean, and the snapshot remains usable on
// a card with room.
func TestRestoreOntoFullCardFailsCleanly(t *testing.T) {
	coi.RegisterBinary(testBinary("core_fullcard"))
	plat := platformtest.Start(t, platformtest.Options{Devices: 2, CardMem: 1 * simclock.GiB})

	host := plat.Procs.Spawn("host_full", simnet.HostNode, plat.Host().Mem)
	tl := simclock.NewTimeline()
	cp, err := coi.CreateProcess(plat, host, tl, 1, "core_fullcard")
	if err != nil {
		t.Fatal(err)
	}
	pl, _ := cp.CreatePipeline()
	args := makeCountArgs(12)
	if _, err := pl.RunFunction("count", args); err != nil {
		t.Fatal(err)
	}

	snap, err := Swapout("/snap/full", cp, CaptureOptions{})
	if err != nil {
		t.Fatal(err)
	}

	// Fill card 1 so the restore cannot fit.
	hog := plat.Procs.Spawn("hog", 1, plat.Device(1).Mem)
	if _, err := hog.AddRegion("hog", 1, plat.Device(1).Mem.Free()-8*simclock.MiB, 0); err != nil {
		t.Fatal(err)
	}

	if _, err := snap.Restore(1, RestoreOptions{}); err == nil {
		t.Fatal("restore onto a full card must fail")
	} else if !strings.Contains(err.Error(), "restoring") && !strings.Contains(err.Error(), "memory") {
		t.Logf("error (accepted): %v", err)
	}
	if cp.State() != coi.StateSwapped {
		t.Fatalf("failed restore left handle in state %v", cp.State())
	}
	// The hog did not leak partial restore allocations.
	hogFree := plat.Device(1).Mem.Free()
	if hogFree > 16*simclock.MiB {
		t.Errorf("failed restore leaked card memory: %d free", hogFree)
	}

	// The snapshot restores fine on the other card.
	if _, err := Swapin(snap, 2, RestoreOptions{}); err != nil {
		t.Fatal(err)
	}
	out, err := pl.RunFunction("count", makeCountArgs(24))
	if err != nil {
		t.Fatal(err)
	}
	if got := decodeU64(out); got != refSum(24) {
		t.Errorf("post-recovery result %d, want %d", got, refSum(24))
	}
}

// TestRestoreFromMissingSnapshotFails covers the storage error path.
func TestRestoreFromMissingSnapshotFails(t *testing.T) {
	r := newRig(t, "core_missing", 1)
	snap, err := Swapout("/snap/present", r.cp, CaptureOptions{})
	if err != nil {
		t.Fatal(err)
	}
	bogus := NewSnapshot("/snap/never_written", r.cp)
	if _, err := bogus.Restore(1, RestoreOptions{}); err == nil {
		t.Fatal("restore from missing snapshot must succeed? no — must fail")
	}
	// The real snapshot still works.
	if _, err := Swapin(snap, 1, RestoreOptions{}); err != nil {
		t.Fatal(err)
	}
}

// TestRestoreRequiresSwappedHandle covers state-machine misuse.
func TestRestoreRequiresSwappedHandle(t *testing.T) {
	r := newRig(t, "core_misuse", 1)
	s := NewSnapshot("/snap/misuse", r.cp)
	if _, err := s.Restore(1, RestoreOptions{}); err == nil {
		t.Fatal("restore of a live process must fail")
	}
	// Pause-resume still fine after the misuse.
	if err := Pause(s); err != nil {
		t.Fatal(err)
	}
	if err := Resume(s); err != nil {
		t.Fatal(err)
	}
}

// TestDoubleWaitBlocksOnlyOnce ensures the capture semaphore semantics:
// one Wait per Capture.
func TestCaptureWaitPairing(t *testing.T) {
	r := newRig(t, "core_sem", 1)
	s := NewSnapshot("/snap/sem", r.cp)
	if err := Pause(s); err != nil {
		t.Fatal(err)
	}
	if err := s.Capture(CaptureOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := Wait(s); err != nil {
		t.Fatal(err)
	}
	// A second capture+wait on the same paused snapshot also works (the
	// paper's API allows repeated captures before resume).
	if err := s.Capture(CaptureOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := Wait(s); err != nil {
		t.Fatal(err)
	}
	if err := Resume(s); err != nil {
		t.Fatal(err)
	}
}

func TestDoublePauseRejected(t *testing.T) {
	r := newRig(t, "core_doublepause", 1)
	s := NewSnapshot("/snap/dp", r.cp)
	if err := Pause(s); err != nil {
		t.Fatal(err)
	}
	s2 := NewSnapshot("/snap/dp2", r.cp)
	if err := Pause(s2); err == nil {
		t.Fatal("pausing an already-paused handle must fail, not deadlock")
	}
	if err := Resume(s); err != nil {
		t.Fatal(err)
	}
	// After resume, a fresh pause works again.
	s3 := NewSnapshot("/snap/dp3", r.cp)
	if err := Pause(s3); err != nil {
		t.Fatal(err)
	}
	mustOK(t, Resume(s3))
}
