package coi

import (
	"encoding/binary"
	"fmt"
	"sort"

	"snapify/internal/obs"
	"snapify/internal/scif"
	"snapify/internal/simclock"
	"snapify/internal/simnet"
)

// Host-side Snapify instrumentation: the drain of the four SCIF use cases
// (Section 4.1), the daemon request helpers internal/core calls, and the
// post-restore rebind (reconnect channels, recreate pipelines, re-register
// buffers and build the RDMA remap table, Section 4.3).

// DaemonRequest sends one request on the lifecycle channel and returns the
// reply payload (after the status byte has been checked).
func (cp *Process) DaemonRequest(op uint8, payload []byte, wantResp uint8) ([]byte, error) {
	if _, err := cp.lifecycleEP.Send(append([]byte{op}, payload...)); err != nil {
		return nil, err
	}
	raw, _, err := cp.lifecycleEP.Recv()
	if err != nil {
		return nil, err
	}
	u, err := expectOp(raw, wantResp)
	if err != nil {
		return nil, err
	}
	if u[0] != 0 {
		return nil, fmt.Errorf("coi: daemon error: %s", u[1:])
	}
	return u[1:], nil
}

// PauseChannels acquires every host-side lock of the drain protocol and
// injects the shutdown markers:
//
//	case 1 — the lifecycle (create/destroy) critical region;
//	case 2 — the buffer-RDMA call sites;
//	case 3 — each command channel's client lock plus a shutdown marker,
//	         acknowledged by the sequential server;
//	case 4 — the run-function send critical regions of every pipeline.
//
// It returns the accumulated drain cost. Locks stay held until
// ResumeChannels.
func (cp *Process) PauseChannels() (simclock.Duration, error) {
	mx := cp.plat.Obs.MetricsOf()
	lock := func(class string) *obs.Counter {
		return mx.Counter("coi_pause_locks_total",
			"Host-side locks taken by Snapify's drain protocol, by SCIF use-case class (Section 4.1).",
			obs.L("class", class))
	}
	cp.lifecycleMu.Lock()
	lock("lifecycle").Inc()
	cp.rdmaMu.Lock()
	lock("rdma").Inc()
	var total simclock.Duration
	for _, name := range CommandChannelNames {
		c := cp.Command(name)
		if c == nil {
			continue
		}
		d, err := c.PauseLock()
		if err != nil {
			return 0, fmt.Errorf("coi: draining %s channel: %w", name, err)
		}
		lock("command").Inc()
		total += d
	}
	for _, pl := range cp.Pipelines() {
		pl.pauseLock()
		lock("pipeline").Inc()
	}
	cp.setState(StatePaused)
	return total, nil
}

// ResumeChannels releases every lock PauseChannels acquired (Section 4.2).
func (cp *Process) ResumeChannels() {
	for _, pl := range cp.Pipelines() {
		pl.resumeUnlock()
	}
	for _, name := range CommandChannelNames {
		if c := cp.Command(name); c != nil {
			c.ResumeUnlock(nil)
		}
	}
	cp.rdmaMu.Unlock()
	cp.lifecycleMu.Unlock()
	cp.setState(StateActive)
}

// MarkSwapped flags the handle defunct after a capture-with-terminate. The
// host-side locks stay held; Rebind revives the handle at swap-in.
func (cp *Process) MarkSwapped() { cp.setState(StateSwapped) }

// QueuedBytesAll sums the undelivered bytes on every host-side endpoint of
// the process — the host half of Snapify's consistency invariant.
func (cp *Process) QueuedBytesAll() int64 {
	var n int64
	for _, ep := range cp.HostEndpoints() {
		n += ep.QueuedBytes()
	}
	return n
}

// RemapEntry records an (old, new) RDMA address pair produced by buffer
// re-registration after a restore (Section 4.3).
type RemapEntry struct {
	BufferID int
	Old, New int64
}

// Rebind revives the handle around a restored offload process: it connects
// the new channels, recreates each pipeline on the device and splices the
// new endpoint under the pending waiters, and re-registers every buffer,
// returning the address remap table. The process handle keeps its paused
// state; the caller resumes it afterwards.
func (cp *Process) Rebind(devNode simnet.NodeID, newID int, ports []ChannelPort) ([]RemapEntry, error) {
	model := cp.plat.Model()

	// Fresh lifecycle connection to the (possibly different) card's daemon.
	ep, err := cp.plat.Net.Connect(simnet.HostNode, scif.Addr{Node: devNode, Port: DaemonPort})
	if err != nil {
		return nil, fmt.Errorf("coi: reconnecting to daemon on %v: %w", devNode, err)
	}
	cp.mu.Lock()
	oldLifecycle := cp.lifecycleEP
	cp.lifecycleEP = ep
	cp.devNode = devNode
	cp.id = newID
	cp.mu.Unlock()
	if oldLifecycle != nil {
		oldLifecycle.Close() //nolint:errcheck // the pre-swap endpoint is already dead; close only releases the host-side descriptor
	}
	cp.tl.Advance(model.SCIFReconnect)

	// Reconnect the command and DMA channels on their new ports.
	var cmdEP *scif.Endpoint
	for _, chp := range ports {
		nep, err := cp.plat.Net.Connect(simnet.HostNode, scif.Addr{Node: devNode, Port: chp.port})
		if err != nil {
			return nil, fmt.Errorf("coi: reconnecting %s channel: %w", chp.name, err)
		}
		cp.tl.Advance(model.SCIFReconnect)
		if chp.name == "dma" {
			cp.mu.Lock()
			cp.dmaEP = nep
			cp.mu.Unlock()
			continue
		}
		cp.mu.Lock()
		c := cp.cmds[chp.name]
		cp.mu.Unlock()
		if c == nil {
			return nil, fmt.Errorf("coi: restored process offers unknown channel %q", chp.name)
		}
		c.replaceEndpoint(nep)
		if chp.name == "command" {
			cmdEP = nep
		}
	}
	if cmdEP == nil {
		return nil, fmt.Errorf("coi: restored process offers no command channel")
	}
	if _, err := cp.DaemonRequest(opAwaitReady, putU32(uint32(newID)), opAwaitReadyResp); err != nil {
		return nil, err
	}
	// Re-establish the daemon's host-liveness watch for the new pairing.
	if daemon := DaemonAt(cp.plat, devNode); daemon != nil {
		daemon.WatchHostProcess(cp.hostProc, newID)
	}

	// The application threads are still blocked on the pause locks, so the
	// rebind speaks on the raw command endpoint directly.
	rawRequest := func(req []byte) ([]byte, error) {
		if _, err := cmdEP.Send(append([]byte{cmdRequest}, req...)); err != nil {
			return nil, err
		}
		raw, _, err := cmdEP.Recv()
		if err != nil {
			return nil, err
		}
		if raw[0] != cmdReply {
			return nil, fmt.Errorf("coi: rebind: unexpected opcode %d", raw[0])
		}
		if raw[1] != 0 {
			return nil, fmt.Errorf("coi: rebind: %s", raw[2:])
		}
		return raw[2:], nil
	}

	// Recreate each pipeline's run-function channel and splice it in; the
	// pending waiters survive, and the restored server re-sends results
	// for any re-entered function.
	for _, pl := range cp.Pipelines() {
		reply, err := rawRequest(append([]byte{cmdPipelineCreate}, putU32(pl.id)...))
		if err != nil {
			return nil, fmt.Errorf("coi: recreating pipeline %d: %w", pl.id, err)
		}
		port := int(u32(reply))
		nep, err := cp.plat.Net.Connect(simnet.HostNode, scif.Addr{Node: devNode, Port: port})
		if err != nil {
			return nil, err
		}
		cp.tl.Advance(model.SCIFReconnect)
		pl.reconnect(nep)
	}

	// Re-register every buffer in ascending ID order; new RDMA offsets come
	// back, and the remap table translates the stale addresses the handle
	// still holds. The order matters twice over: each re-registration is a
	// wire request that advances the virtual timeline, and the remap table
	// is part of the restore transcript — iterating the buffer map directly
	// would make both nondeterministic.
	bufs := cp.Buffers()
	ids := make([]int, 0, len(bufs))
	for id := range bufs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var remap []RemapEntry
	for _, id := range ids {
		b := bufs[id]
		reply, err := rawRequest(append([]byte{cmdBufferReregister}, putU32(uint32(id))...))
		if err != nil {
			return nil, fmt.Errorf("coi: re-registering buffer %d: %w", id, err)
		}
		newOff := int64(binary.BigEndian.Uint64(reply))
		remap = append(remap, RemapEntry{BufferID: id, Old: b.rdmaOff, New: newOff})
		b.rdmaOff = newOff
		cp.tl.Advance(model.RegisterCost(b.size))
	}
	return remap, nil
}
