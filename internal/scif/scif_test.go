package scif

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"snapify/internal/blob"
	"snapify/internal/simclock"
	"snapify/internal/simnet"
)

func newTestNetwork(t *testing.T, devices int) *Network {
	t.Helper()
	return NewNetwork(simnet.NewFabric(simclock.Default(), devices))
}

// dial creates a connected pair with the server on (node, port).
func dial(t *testing.T, n *Network, clientNode, serverNode simnet.NodeID) (client, server *Endpoint) {
	t.Helper()
	l, err := n.Listen(serverNode, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	done := make(chan *Endpoint, 1)
	go func() {
		ep, err := l.Accept()
		if err != nil {
			t.Error(err)
		}
		done <- ep
	}()
	client, err = n.Connect(clientNode, l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	return client, <-done
}

func TestListenConnectAccept(t *testing.T) {
	n := newTestNetwork(t, 1)
	c, s := dial(t, n, 0, 1)
	if c.RemoteAddr() != s.LocalAddr() || s.RemoteAddr() != c.LocalAddr() {
		t.Errorf("address mismatch: c=%v->%v s=%v->%v",
			c.LocalAddr(), c.RemoteAddr(), s.LocalAddr(), s.RemoteAddr())
	}
	if c.Node() != 0 || s.Node() != 1 {
		t.Error("node mismatch")
	}
}

func TestPortConflictAndRefused(t *testing.T) {
	n := newTestNetwork(t, 1)
	if _, err := n.Listen(1, 400); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Listen(1, 400); !errors.Is(err, ErrPortInUse) {
		t.Errorf("want ErrPortInUse, got %v", err)
	}
	if _, err := n.Connect(0, Addr{1, 999}); !errors.Is(err, ErrConnRefused) {
		t.Errorf("want ErrConnRefused, got %v", err)
	}
	if _, err := n.Listen(7, 1); err == nil {
		t.Error("listen on invalid node must fail")
	}
	if _, err := n.Connect(7, Addr{1, 400}); err == nil {
		t.Error("connect from invalid node must fail")
	}
}

func TestSendRecvOrdering(t *testing.T) {
	n := newTestNetwork(t, 1)
	c, s := dial(t, n, 0, 1)
	for i := 0; i < 100; i++ {
		if _, err := c.Send([]byte(fmt.Sprintf("msg-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		msg, d, err := s.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if d < 0 {
			t.Error("negative recv cost")
		}
		if want := fmt.Sprintf("msg-%03d", i); string(msg) != want {
			t.Fatalf("out of order: got %q want %q", msg, want)
		}
	}
	if s.QueuedBytes() != 0 || s.QueuedMessages() != 0 {
		t.Errorf("queue not drained: %d bytes, %d msgs", s.QueuedBytes(), s.QueuedMessages())
	}
}

func TestQueuedBytesObservable(t *testing.T) {
	n := newTestNetwork(t, 1)
	c, s := dial(t, n, 0, 1)
	c.Send(make([]byte, 10))
	c.Send(make([]byte, 20))
	if s.QueuedBytes() != 30 || s.QueuedMessages() != 2 {
		t.Fatalf("queued = %d bytes / %d msgs, want 30/2", s.QueuedBytes(), s.QueuedMessages())
	}
	s.Recv()
	if s.QueuedBytes() != 20 {
		t.Fatalf("queued = %d after one recv, want 20", s.QueuedBytes())
	}
}

func TestSendDoesNotAliasCallerBuffer(t *testing.T) {
	n := newTestNetwork(t, 1)
	c, s := dial(t, n, 0, 1)
	buf := []byte("original")
	c.Send(buf)
	copy(buf, "CLOBBER!")
	msg, _, _ := s.Recv()
	if string(msg) != "original" {
		t.Errorf("message aliased sender buffer: %q", msg)
	}
}

func TestCloseResetsPeer(t *testing.T) {
	n := newTestNetwork(t, 1)
	c, s := dial(t, n, 0, 1)
	c.Send([]byte("last words"))
	c.Close()
	// Queued message still delivered, then reset.
	msg, _, err := s.Recv()
	if err != nil || string(msg) != "last words" {
		t.Fatalf("queued delivery after close: %q, %v", msg, err)
	}
	if _, _, err := s.Recv(); !errors.Is(err, ErrConnReset) {
		t.Errorf("want ErrConnReset, got %v", err)
	}
	if _, err := s.Send([]byte("x")); err == nil {
		t.Error("send to closed peer must fail")
	}
	if !c.Closed() || !s.Closed() {
		t.Error("both sides should report closed")
	}
}

func TestRecvUnblocksOnClose(t *testing.T) {
	n := newTestNetwork(t, 1)
	c, s := dial(t, n, 0, 1)
	errc := make(chan error, 1)
	go func() {
		_, _, err := s.Recv()
		errc <- err
	}()
	c.Close()
	if err := <-errc; !errors.Is(err, ErrConnReset) {
		t.Errorf("blocked Recv got %v, want ErrConnReset", err)
	}
}

func TestTryRecv(t *testing.T) {
	n := newTestNetwork(t, 1)
	c, s := dial(t, n, 0, 1)
	if _, _, ok, err := s.TryRecv(); ok || err != nil {
		t.Fatalf("TryRecv on empty queue: ok=%v err=%v", ok, err)
	}
	c.Send([]byte("hi"))
	msg, _, ok, err := s.TryRecv()
	if !ok || err != nil || string(msg) != "hi" {
		t.Fatalf("TryRecv: %q ok=%v err=%v", msg, ok, err)
	}
	c.Close()
	if _, _, _, err := s.TryRecv(); !errors.Is(err, ErrConnReset) {
		t.Errorf("TryRecv after close: %v", err)
	}
}

func TestListenerCloseUnblocksAccept(t *testing.T) {
	n := newTestNetwork(t, 1)
	l, _ := n.Listen(1, 0)
	errc := make(chan error, 1)
	go func() {
		_, err := l.Accept()
		errc <- err
	}()
	l.Close()
	if err := <-errc; !errors.Is(err, ErrListenerDone) {
		t.Errorf("Accept after close: %v", err)
	}
	// Port is free again.
	if _, err := n.Listen(1, l.Addr().Port); err != nil {
		t.Errorf("rebinding closed port: %v", err)
	}
}

func TestConcurrentSenders(t *testing.T) {
	n := newTestNetwork(t, 1)
	c, s := dial(t, n, 0, 1)
	const senders, per = 8, 50
	var wg sync.WaitGroup
	for i := 0; i < senders; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				if _, err := c.Send([]byte("m")); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	for i := 0; i < senders*per; i++ {
		if _, _, err := s.Recv(); err != nil {
			t.Fatal(err)
		}
	}
	if s.QueuedMessages() != 0 {
		t.Error("messages left over")
	}
}

func TestRDMARoundTrip(t *testing.T) {
	n := newTestNetwork(t, 1)
	c, s := dial(t, n, 0, 1)

	// Server (device side) registers a 64 KiB window over its buffer.
	devMem := blob.NewBuffer(1<<20, 3)
	w, d, err := s.Register(devMem, 4096, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Error("register cost must be positive")
	}

	// Host writes into the device window via vwriteto.
	hostMem := blob.NewBuffer(1<<20, 5)
	hostMem.WriteAt([]byte("input data"), 100)
	if _, err := c.VWriteTo(hostMem, 100, 10, w.Offset+8); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 10)
	devMem.ReadAt(got, 4096+8)
	if string(got) != "input data" {
		t.Fatalf("device memory after vwriteto: %q", got)
	}

	// Device computes; host reads the result back via vreadfrom.
	devMem.WriteAt([]byte("OUTPUT"), 4096+100)
	if _, err := c.VReadFrom(hostMem, 500, 6, w.Offset+100); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, 6)
	hostMem.ReadAt(out, 500)
	if string(out) != "OUTPUT" {
		t.Fatalf("host memory after vreadfrom: %q", out)
	}
}

func TestRDMARegisteredToRegistered(t *testing.T) {
	n := newTestNetwork(t, 1)
	c, s := dial(t, n, 0, 1)
	devMem := blob.NewBuffer(4096, 0)
	hostMem := blob.NewBuffer(4096, 0)
	hostMem.WriteAt([]byte("payload"), 0)
	rw, _, err := s.Register(devMem, 0, 4096)
	if err != nil {
		t.Fatal(err)
	}
	lw, _, err := c.Register(hostMem, 0, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.WriteTo(lw.Offset, 7, rw.Offset); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 7)
	devMem.ReadAt(got, 0)
	if string(got) != "payload" {
		t.Fatalf("writeto: %q", got)
	}
	devMem.WriteAt([]byte("REPLY"), 100)
	if _, err := c.ReadFrom(lw.Offset+200, 5, rw.Offset+100); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, 5)
	hostMem.ReadAt(out, 200)
	if string(out) != "REPLY" {
		t.Fatalf("readfrom: %q", out)
	}
}

func TestRDMAOffsetsUniqueAcrossReregistration(t *testing.T) {
	// Re-registering after a restore must return a different RDMA address;
	// Snapify's remap table exists because of this (Section 4.3).
	n := newTestNetwork(t, 1)
	c, s := dial(t, n, 0, 1)
	_ = c
	mem := blob.NewBuffer(4096, 0)
	w1, _, _ := s.Register(mem, 0, 4096)
	if err := s.Unregister(w1); err != nil {
		t.Fatal(err)
	}
	w2, _, _ := s.Register(mem, 0, 4096)
	if w1.Offset == w2.Offset {
		t.Fatal("re-registration reused the old RDMA offset")
	}
}

func TestRDMAErrors(t *testing.T) {
	n := newTestNetwork(t, 1)
	c, s := dial(t, n, 0, 1)
	mem := blob.NewBuffer(4096, 0)
	w, _, _ := s.Register(mem, 0, 1024)

	// Out-of-window access.
	if _, err := c.VReadFrom(mem, 0, 10, w.Offset+1020); !errors.Is(err, ErrBadWindow) {
		t.Errorf("out-of-window: %v", err)
	}
	// Unknown offset.
	if _, err := c.VWriteTo(mem, 0, 10, 0x42); !errors.Is(err, ErrBadWindow) {
		t.Errorf("unknown offset: %v", err)
	}
	// Local out of range.
	if _, err := c.VReadFrom(mem, 4090, 10, w.Offset); err == nil {
		t.Error("local overflow should fail")
	}
	// Bad registration ranges.
	if _, _, err := s.Register(mem, -1, 10); err == nil {
		t.Error("negative base should fail")
	}
	if _, _, err := s.Register(mem, 0, 8192); err == nil {
		t.Error("oversized window should fail")
	}
	// Unregister twice.
	if err := s.Unregister(w); err != nil {
		t.Fatal(err)
	}
	if err := s.Unregister(w); !errors.Is(err, ErrBadWindow) {
		t.Errorf("double unregister: %v", err)
	}
	// RDMA after close.
	c.Close()
	if _, err := c.VReadFrom(mem, 0, 10, w.Offset); !errors.Is(err, ErrConnReset) {
		t.Errorf("rdma after close: %v", err)
	}
	if _, _, err := c.Register(mem, 0, 10); !errors.Is(err, ErrClosed) {
		t.Errorf("register after close: %v", err)
	}
}

func TestRDMACostAccountedOnFabric(t *testing.T) {
	n := newTestNetwork(t, 1)
	c, s := dial(t, n, 0, 1)
	mem := blob.NewBuffer(1<<20, 0)
	w, _, _ := s.Register(mem, 0, 1<<20)
	before := n.Fabric().Traffic(0, 1)
	host := blob.NewBuffer(1<<20, 0)
	c.VWriteTo(host, 0, 1<<20, w.Offset)
	if got := n.Fabric().Traffic(0, 1) - before; got != 1<<20 {
		t.Errorf("fabric traffic = %d, want %d", got, 1<<20)
	}
}
