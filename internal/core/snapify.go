// Package core implements Snapify's host-facing API (Table 1 of the
// paper): snapify_pause, snapify_capture, snapify_wait, snapify_resume,
// and snapify_restore, plus the three capabilities built on them in
// Section 5 — checkpoint-and-restart, process swapping, and process
// migration.
//
// The package orchestrates the pieces the lower layers provide: the COI
// daemon coordinates the protocol on each card, the instrumented COI
// library drains the four SCIF channel classes, the BLCR-equivalent
// checkpointer serializes processes, and Snapify-IO streams everything
// between card and host file system. Every operation returns a Report with
// the per-phase virtual durations the benchmark harness turns into the
// paper's figures; the same quantities are emitted as spans on the
// platform's virtual-clock tracer, so Report and trace always agree.
package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"snapify/internal/blcr"
	"snapify/internal/coi"
	"snapify/internal/obs"
	"snapify/internal/platform"
	"snapify/internal/proc"
	"snapify/internal/simclock"
	"snapify/internal/simnet"
)

// HandleStateRegion is the host-process region where pause serializes the
// COI handle metadata, making it part of the host snapshot.
const HandleStateRegion = "snapify_handle_state"

// handleStateSize bounds the serialized handle metadata.
const handleStateSize = 64 * 1024

// hostProcessTrack is the trace process name for host-side lanes; each
// host application gets its own thread row under it.
const hostProcessTrack = "host"

// Snapshot mirrors snapify_t: the snapshot directory, the process handle,
// and the semaphore Capture posts (m_sem).
type Snapshot struct {
	// Path is the snapshot directory on the host file system
	// (m_snapshot_path).
	Path string
	// Proc is the offload process handle (m_process).
	Proc *coi.Process

	// localStoreTarget is the node the pause phase streams the local store
	// to. The host for checkpoint and swap; a migration (MigrateOptions)
	// sets the destination card so the local store moves device-to-device
	// (Section 7, "Process migration").
	localStoreTarget simnet.NodeID

	sem chan struct{} // m_sem

	mu         sync.Mutex
	paused     bool
	captureErr error

	// Report accumulates the phase timings.
	Report Report
}

// Report carries the virtual-time breakdown of one snapshot lifecycle —
// the quantities behind Fig 10's stacked bars. Each field equals the
// duration of the correspondingly named span on the platform tracer.
type Report struct {
	// Pause phases.
	PauseHandshake  simclock.Duration // steps 1-3 of Fig 3
	HostDrain       simclock.Duration // shutdown markers, lock acquisition
	DeviceDrain     simclock.Duration // quiesce + local-store save
	LocalStoreBytes int64

	// Capture.
	Capture       simclock.Duration // device snapshot + write via Snapify-IO
	SnapshotBytes int64
	// ShippedBytes is how many bytes the capture physically moved to the
	// host. Equals SnapshotBytes on the plain data path; under
	// CaptureOptions.Store the have/need negotiation skips chunks the
	// store already holds, so ShippedBytes <= SnapshotBytes and the gap
	// is the dedup win.
	ShippedBytes int64
	// CaptureStreams is how many parallel Snapify-IO streams the capture
	// actually used (1 — the paper's serial data path — unless
	// CaptureOptions.Streams asked for more).
	CaptureStreams int
	// CaptureStreamDurations holds each stream's virtual time when the
	// capture was striped; Capture is their max. Nil for a serial capture.
	// Derived from the capture_stream spans the shard workers emit.
	CaptureStreamDurations []simclock.Duration

	// Restore phases.
	RestoreDevice    simclock.Duration // BLCR restart reading via Snapify-IO
	RestoreLocal     simclock.Duration // local-store copy back
	RestoreReconnect simclock.Duration // SCIF reconnect + re-registration
	RemapEntries     int

	// Resume.
	Resume simclock.Duration

	// Live migration. Precopy records each pre-copy round a Migration
	// session ran; Downtime is the stop-everything window of the
	// switch-over (pause through resume) — the quantity live migration
	// exists to shrink. A stop-the-world Migrate fills Downtime too, with
	// an empty Precopy.
	Precopy  []PrecopyRound
	Downtime simclock.Duration
}

// PauseTotal returns the end-to-end pause duration (the "pause" bar of
// Fig 10a).
func (r *Report) PauseTotal() simclock.Duration {
	return r.PauseHandshake + r.HostDrain + r.DeviceDrain
}

// RestoreTotal returns the end-to-end restore duration.
func (r *Report) RestoreTotal() simclock.Duration {
	return r.RestoreDevice + r.RestoreLocal + r.RestoreReconnect
}

// NewSnapshot returns a snapshot descriptor for the given directory and
// process handle.
func NewSnapshot(path string, cp *coi.Process) *Snapshot {
	return &Snapshot{Path: path, Proc: cp, localStoreTarget: simnet.HostNode, sem: make(chan struct{}, 1)}
}

// hostTrack returns the host application's lane in the trace.
func (s *Snapshot) hostTrack() *obs.Track {
	cp := s.Proc
	return cp.Platform().Obs.TracerOf().Track(hostProcessTrack, cp.HostProc().Name())
}

// countOp bumps the per-operation counter on the platform registry.
func (s *Snapshot) countOp(op string) {
	s.Proc.Platform().Obs.MetricsOf().Counter("snapify_operations_total",
		"Snapify API operations started, by operation.", obs.L("op", op)).Inc()
}

// RetryPolicy bounds how a capture or restore recovers from transport
// and daemon faults; see blcr.RetryPolicy. The zero value disables
// recovery: the first fault fails the operation (the paper's behavior).
type RetryPolicy = blcr.RetryPolicy

// StoreOptions routes a capture or restore through the host's
// content-addressed snapshot store (internal/snapstore) instead of plain
// files: the capture negotiates a have/need chunk set and ships only the
// chunks the store lacks, and the restore reads the committed manifest's
// chunks through the store's overlay file system.
type StoreOptions struct {
	// Enabled turns on the dedup-aware data path.
	Enabled bool
	// Parent, if nonempty, names the snapshot file whose manifest this
	// capture's delta chain extends (e.g. the base capture's context
	// path). The parent must already be committed in the store; its
	// refcount is retained until this snapshot is released.
	Parent string
	// Replicas, when positive, asks the fleet layer (sched.Fleet) to keep
	// this many total copies of the committed snapshot directory across
	// hosts through the store federation. The capture data path itself
	// stays host-local; replication fans out after the commit. Requires
	// Enabled, and has no meaning on restore.
	Replicas int
}

// CaptureOptions configures a capture (snapify_capture).
type CaptureOptions struct {
	// Terminate makes the offload process exit after the capture (the
	// swap-out path); its exit is announced so the COI daemon does not
	// treat it as a crash.
	Terminate bool
	// Streams is how many parallel Snapify-IO streams the capture stripes
	// the context file across. Zero or one uses the paper's single-stream
	// data path; higher values divide the file into contiguous stripes,
	// one double-buffered stream each, assembled by the host daemon.
	Streams int
	// ChunkBytes is the I/O granularity of the parallel data path; zero
	// uses the checkpointer's default (4 MiB). Ignored when Streams <= 1.
	ChunkBytes int64
	// Retry lets the capture survive transport faults: each stream resumes
	// from its acknowledgement watermark, and crash-class failures redo
	// the whole capture, all under bounded virtual backoff. A capture that
	// still fails leaves no snapshot file behind. The zero value fails on
	// the first fault.
	Retry RetryPolicy
	// Store selects the dedup-aware data path through the host's
	// content-addressed snapshot store.
	Store StoreOptions
}

// RestoreOptions configures a restore (snapify_restore).
type RestoreOptions struct {
	// Streams is how many parallel Snapify-IO range streams the base
	// context is read over. Zero or one is the paper's serial restore.
	Streams int
	// ChunkBytes is the I/O granularity of the parallel restore path; zero
	// uses the checkpointer's default. Ignored when Streams <= 1.
	ChunkBytes int64
	// Retry lets the restore survive transport faults by reopening its
	// range reads where they left off, under bounded virtual backoff.
	Retry RetryPolicy
	// Store asserts the snapshot lives in the host's content-addressed
	// store: the restore fails fast with a clear error if no committed
	// manifest exists, instead of a read error deep in the data path. The
	// data path itself is unchanged — the store's overlay file system
	// serves store-resident snapshots through the ordinary reads.
	Store StoreOptions
}

// Pause stops and drains all communication between the host process and
// the offload process (snapify_pause, Section 4.1). On return every SCIF
// channel between the three parties is empty and the offload process's
// local store has been saved.
func Pause(s *Snapshot) error { return s.Pause() }

// Pause implements snapify_pause; see the package-level Pause.
func (s *Snapshot) Pause() error {
	cp := s.Proc
	plat := cp.Platform()
	model := plat.Model()

	// Guard the state machine: pausing a handle that is already paused
	// (or gone) would deadlock on the drain locks.
	if st := cp.State(); st != coi.StateActive {
		return fmt.Errorf("core: pause requires an active handle, have %s", st)
	}
	s.countOp("pause")
	start := cp.Timeline().Now()

	// Step one: save the runtime libraries the offload process needs from
	// the host file system into the snapshot directory (footnote 2: MPSS
	// keeps host-side copies, so this is a host-local copy).
	var handshake simclock.Duration
	libs, _, err := plat.Host().FS.ReadFile(platform.RuntimeLibsPath)
	if err == nil {
		if _, err := plat.Host().FS.WriteFile(s.Path+"/runtime_libs", libs); err != nil {
			return fmt.Errorf("core: saving runtime libraries: %w", err)
		}
		handshake += model.HostMemcpy(libs.Len())
	}

	// Steps 1-3 of Fig 3: snapify-service request to the daemon, pipe +
	// signal to the offload process, acknowledgements back.
	if _, err := cp.DaemonRequest(coi.OpSnapifyPause, coi.PutU32(uint32(cp.ID())), coi.OpSnapifyPauseResp); err != nil {
		return fmt.Errorf("core: pause handshake: %w", err)
	}
	handshake += 2*model.SCIFMsg(16) + model.SignalLatency + 4*model.PipeLatency

	// Host-side drain: the four channel classes of Section 4.1.
	hostDrain, err := cp.PauseChannels()
	if err != nil {
		return fmt.Errorf("core: host drain: %w", err)
	}

	// Step 4: the device-side drain — quiesce and local-store save. The
	// payload carries the host's virtual clock at which the drain begins,
	// so the card-side tracks land on the shared timeline.
	align := start + handshake + hostDrain
	payload := coi.PutU32(uint32(cp.ID()))
	payload = binary.BigEndian.AppendUint64(payload, uint64(align))
	payload = coi.AppendU32(payload, uint32(s.localStoreTarget))
	payload = coi.AppendU32(payload, uint32(len(s.Path)))
	payload = append(payload, s.Path...)
	resp, err := cp.DaemonRequest(coi.OpSnapifyDrain, payload, coi.OpSnapifyDrainResp)
	if err != nil {
		return fmt.Errorf("core: device drain: %w", err)
	}
	deviceDrain := simclock.Duration(binary.BigEndian.Uint64(resp))
	s.Report.LocalStoreBytes = int64(binary.BigEndian.Uint64(resp[8:]))

	// The phase spans are the source of truth; the Report repeats them.
	tk := s.hostTrack()
	tk.AlignTo(start)
	tk.Emit(0, "snapify_pause", start, handshake+hostDrain+deviceDrain,
		map[string]int64{"local_store_bytes": s.Report.LocalStoreBytes})
	s.Report.PauseHandshake = tk.Emit(0, "pause_handshake", start, handshake, nil).Dur
	s.Report.HostDrain = tk.Emit(0, "host_drain", start+handshake, hostDrain, nil).Dur
	s.Report.DeviceDrain = tk.Emit(0, "device_drain", align, deviceDrain,
		map[string]int64{"bytes": s.Report.LocalStoreBytes}).Dur

	// Make the handle metadata part of the host process image, so a
	// restarted host process can reattach (Section 4.3).
	if err := saveHandleState(cp); err != nil {
		return err
	}

	s.mu.Lock()
	s.paused = true
	s.mu.Unlock()
	cp.Timeline().Advance(s.Report.PauseTotal())
	return nil
}

// saveHandleState serializes the COI handle metadata into a host-process
// region.
func saveHandleState(cp *coi.Process) error {
	host := cp.HostProc()
	r := host.Region(HandleStateRegion)
	if r == nil {
		var err error
		r, err = host.AddRegion(HandleStateRegion, proc.RegionData, handleStateSize, 0)
		if err != nil {
			return fmt.Errorf("core: handle-state region: %w", err)
		}
	}
	enc := cp.ExportMeta().Encode()
	if len(enc)+4 > handleStateSize {
		return fmt.Errorf("core: handle metadata %d bytes exceeds region", len(enc))
	}
	buf := binary.BigEndian.AppendUint32(nil, uint32(len(enc)))
	buf = append(buf, enc...)
	r.WriteAt(buf, 0)
	return nil
}

// LoadHandleState reads the COI handle metadata back out of a (restored)
// host process.
func LoadHandleState(host *proc.Process) (coi.HandleMeta, error) {
	r := host.Region(HandleStateRegion)
	if r == nil {
		return coi.HandleMeta{}, errors.New("core: host process has no Snapify handle state")
	}
	head := make([]byte, 4)
	r.ReadAt(head, 0)
	n := binary.BigEndian.Uint32(head)
	buf := make([]byte, n)
	r.ReadAt(buf, 4)
	return coi.DecodeHandleMeta(buf)
}

// Capture takes the snapshot of the (paused) offload process and saves it
// on the host file system via Snapify-IO (snapify_capture). It is
// non-blocking: it returns immediately and posts the snapshot's semaphore
// when the capture completes; use Wait. Options select termination (the
// swap-out path) and the parallel multi-stream data path.
func (s *Snapshot) Capture(opts CaptureOptions) error {
	return s.captureMode(opts, coi.CaptureFull)
}

// CaptureBase is Capture plus a clean mark on every region of the offload
// process: the snapshot anchors a chain of CaptureDelta captures (the
// incremental-checkpoint extension; not in the paper).
func (s *Snapshot) CaptureBase(opts CaptureOptions) error {
	return s.captureMode(opts, coi.CaptureBase)
}

// CaptureDelta captures only what the offload process wrote since the last
// CaptureBase or CaptureDelta; restore with RestoreChain.
func (s *Snapshot) CaptureDelta(opts CaptureOptions) error {
	return s.captureMode(opts, coi.CaptureDelta)
}

func (s *Snapshot) captureMode(opts CaptureOptions, mode uint8) error {
	if err := opts.validate(); err != nil {
		return err
	}
	s.mu.Lock()
	paused := s.paused
	s.mu.Unlock()
	if !paused {
		return errors.New("core: capture requires a paused snapshot (call Pause first)")
	}
	s.countOp("capture")
	cp := s.Proc
	start := cp.Timeline().Now() // stable until Wait advances it
	go func() {
		payload := coi.PutU32(uint32(cp.ID()))
		tb := byte(0)
		if opts.Terminate {
			tb = 1
		}
		payload = append(payload, tb, mode)
		payload = binary.BigEndian.AppendUint16(payload, uint16(opts.Streams))
		payload = binary.BigEndian.AppendUint64(payload, uint64(opts.ChunkBytes))
		payload = binary.BigEndian.AppendUint64(payload, uint64(start))
		payload = coi.AppendU32(payload, uint32(len(s.Path)))
		payload = append(payload, s.Path...)
		payload = binary.BigEndian.AppendUint16(payload, uint16(opts.Retry.MaxAttempts))
		payload = binary.BigEndian.AppendUint64(payload, uint64(opts.Retry.Backoff))
		sb := byte(0)
		if opts.Store.Enabled {
			sb = 1
		}
		payload = append(payload, sb)
		payload = coi.AppendU32(payload, uint32(len(opts.Store.Parent)))
		payload = append(payload, opts.Store.Parent...)
		resp, err := cp.DaemonRequest(coi.OpSnapifyCapture, payload, coi.OpSnapifyCaptureResp)
		s.mu.Lock()
		if err != nil {
			s.captureErr = fmt.Errorf("core: capture: %w", err)
		} else {
			s.Report.SnapshotBytes = int64(binary.BigEndian.Uint64(resp))
			fallback := simclock.Duration(binary.BigEndian.Uint64(resp[8:]))
			scope := binary.BigEndian.Uint64(resp[16:])
			s.Report.ShippedBytes = s.Report.SnapshotBytes
			if len(resp) >= 32 {
				s.Report.ShippedBytes = int64(binary.BigEndian.Uint64(resp[24:]))
			}
			dur, streams, durs := deriveCapture(cp.Platform().Obs.TracerOf(), scope, start, fallback)
			s.Report.Capture = s.hostTrack().Emit(scope, "snapify_capture", start, dur,
				map[string]int64{"bytes": s.Report.SnapshotBytes, "streams": int64(streams),
					"shipped_bytes": s.Report.ShippedBytes}).Dur
			s.Report.CaptureStreams = streams
			s.Report.CaptureStreamDurations = durs
			if opts.Terminate {
				cp.MarkSwapped()
			}
		}
		s.mu.Unlock()
		s.sem <- struct{}{}
	}()
	return nil
}

// deriveCapture computes the Report's capture figures from the spans the
// capture emitted under scope — the single source of truth shared with
// the exported trace. The capture duration is the latest scope span's end
// relative to the capture's start, so preludes the workers sit out (the
// dedup path digests and negotiates before any stream moves) count, and
// the timeline advance in Wait lines up with the device-side
// capture_coordination span. The per-stream figures still come from the
// capture_stream spans alone. When the platform runs without a tracer
// there are no spans; the wire duration is the fallback and the capture
// counts as one serial stream.
func deriveCapture(tr *obs.Tracer, scope uint64, start, fallback simclock.Duration) (simclock.Duration, int, []simclock.Duration) {
	var durs []simclock.Duration
	var end simclock.Duration
	for _, sp := range tr.ScopeSpans(scope) {
		if sp.Name == "capture_stream" {
			durs = append(durs, sp.Dur)
		}
		if sp.End() > end {
			end = sp.End()
		}
	}
	if len(durs) == 0 {
		return fallback, 1, nil
	}
	if len(durs) == 1 {
		return end - start, 1, nil
	}
	return end - start, len(durs), durs
}

// Wait blocks until a pending Capture completes (snapify_wait) and returns
// its error, if any.
func Wait(s *Snapshot) error { return s.Wait() }

// Wait implements snapify_wait; see the package-level Wait.
func (s *Snapshot) Wait() error {
	<-s.sem
	s.mu.Lock()
	err := s.captureErr
	s.captureErr = nil
	s.Proc.Timeline().Advance(s.Report.Capture)
	s.mu.Unlock()
	if err != nil {
		s.failDump("capture", err)
	}
	return err
}

// failDump freezes the platform's flight recorder around a failed
// top-level operation: a zero-duration <op>_failed marker span lands at
// the host track cursor — so the dump provably contains the incident —
// and the recent-span ring plus counter deltas are dumped for the
// post-mortem (written to SNAPIFY_FLIGHT_DIR when set).
func (s *Snapshot) failDump(op string, err error) {
	tk := s.hostTrack()
	tk.Emit(0, op+"_failed", tk.Now(), 0, nil)
	s.Proc.Platform().Obs.FlightOf().Trigger("core: " + op + " failed: " + err.Error())
}

// Resume releases all locks acquired by Pause in both the host process and
// the offload process and reopens normal operation (snapify_resume).
func Resume(s *Snapshot) error { return s.Resume() }

// Resume implements snapify_resume; see the package-level Resume.
func (s *Snapshot) Resume() error {
	cp := s.Proc
	model := cp.Platform().Model()
	s.countOp("resume")
	start := cp.Timeline().Now()
	if _, err := cp.DaemonRequest(coi.OpSnapifyResume, coi.PutU32(uint32(cp.ID())), coi.OpSnapifyResumeResp); err != nil {
		return fmt.Errorf("core: resume: %w", err)
	}
	s.mu.Lock()
	locksHeld := s.paused
	s.paused = false
	s.mu.Unlock()
	if locksHeld {
		cp.ResumeChannels()
	} else {
		cp.ActivateRestored()
	}
	resume := 2*model.SCIFMsg(8) + 2*model.PipeLatency
	s.Report.Resume = s.hostTrack().Emit(0, "snapify_resume", start, resume, nil).Dur
	cp.Timeline().Advance(s.Report.Resume)
	return nil
}

// Restore recreates the offload process from the snapshot on the given
// device (snapify_restore, Section 4.3). The handle in s.Proc is rebound
// around the restored process — channels reconnect, pipelines are
// recreated, buffers re-register, and the (old, new) RDMA address remap is
// applied. The restored process stays quiesced until Resume is called.
func (s *Snapshot) Restore(device simnet.NodeID, opts RestoreOptions) (*coi.Process, error) {
	return s.RestoreChain(s.Path, nil, device, opts)
}

// RestoreChain restores from a base snapshot plus an ordered chain of
// delta snapshots (taken with CaptureBase / CaptureDelta). s is the
// snapshot of the *latest* capture — its Path provides the freshest saved
// local store; baseDir provides the full context.
func (s *Snapshot) RestoreChain(baseDir string, deltaDirs []string, device simnet.NodeID, opts RestoreOptions) (*coi.Process, error) {
	cp := s.Proc
	plat := cp.Platform()
	model := plat.Model()

	if err := opts.validate(); err != nil {
		return nil, err
	}
	if st := cp.State(); st != coi.StateSwapped {
		return nil, fmt.Errorf("core: restore requires a swapped-out handle, have %s", st)
	}
	if opts.Store.Enabled {
		// Fail fast with a clear error when the snapshot is supposed to be
		// store-resident but no manifest committed; the data path itself
		// reads through the store's overlay either way.
		if plat.Store == nil {
			return nil, errors.New("core: restore: platform has no snapshot store")
		}
		ctx := baseDir + "/" + coi.ContextFileName
		if !plat.Store.Has(ctx) {
			return nil, fmt.Errorf("core: restore: no committed store manifest for %s", ctx)
		}
		for _, dd := range deltaDirs {
			if dp := dd + "/" + coi.DeltaFileName; !plat.Store.Has(dp) {
				return nil, fmt.Errorf("core: restore: no committed store manifest for %s", dp)
			}
		}
	}
	s.countOp("restore")
	start := cp.Timeline().Now()

	payload := coi.AppendU32(nil, uint32(len(cp.BinaryName())))
	payload = append(payload, cp.BinaryName()...)
	payload = coi.AppendU32(payload, uint32(len(baseDir)))
	payload = append(payload, baseDir...)
	payload = coi.AppendU32(payload, uint32(s.localStoreTarget))
	payload = coi.AppendU32(payload, uint32(len(s.Path)))
	payload = append(payload, s.Path...)
	payload = coi.AppendU32(payload, uint32(len(deltaDirs)))
	for _, dd := range deltaDirs {
		payload = coi.AppendU32(payload, uint32(len(dd)))
		payload = append(payload, dd...)
	}
	payload = binary.BigEndian.AppendUint16(payload, uint16(opts.Streams))
	payload = binary.BigEndian.AppendUint64(payload, uint64(opts.ChunkBytes))
	payload = binary.BigEndian.AppendUint64(payload, uint64(start))
	payload = binary.BigEndian.AppendUint16(payload, uint16(opts.Retry.MaxAttempts))
	payload = binary.BigEndian.AppendUint64(payload, uint64(opts.Retry.Backoff))

	resp, err := coi.DaemonRestoreRequest(plat, device, payload)
	if err != nil {
		err = fmt.Errorf("core: restore: %w", err)
		s.failDump("restore", err)
		return nil, err
	}
	newID := int(binary.BigEndian.Uint32(resp))
	restoreDevice := simclock.Duration(binary.BigEndian.Uint64(resp[4:]))
	restoreLocal := simclock.Duration(binary.BigEndian.Uint64(resp[12:]))
	ports := coi.ParsePortList(resp[28:])

	// The daemon also copies the runtime libraries back on the fly.
	if libs, _, err := plat.Host().FS.ReadFile(s.Path + "/runtime_libs"); err == nil {
		restoreLocal += model.RDMA(libs.Len())
	}

	remap, err := cp.Rebind(device, newID, ports)
	if err != nil {
		err = fmt.Errorf("core: rebind: %w", err)
		s.failDump("restore", err)
		return nil, err
	}
	s.Report.RemapEntries = len(remap)
	var reconnect simclock.Duration
	reconnect += simclock.Duration(4+len(cp.Pipelines())) * model.SCIFReconnect
	for _, b := range cp.Buffers() {
		reconnect += model.RegisterCost(b.Size())
	}

	tk := s.hostTrack()
	tk.AlignTo(start)
	tk.Emit(0, "snapify_restore", start, restoreDevice+restoreLocal+reconnect, nil)
	s.Report.RestoreDevice = tk.Emit(0, "restore_device", start, restoreDevice, nil).Dur
	s.Report.RestoreLocal = tk.Emit(0, "restore_local", start+restoreDevice, restoreLocal, nil).Dur
	s.Report.RestoreReconnect = tk.Emit(0, "restore_reconnect", start+restoreDevice+restoreLocal, reconnect,
		map[string]int64{"remap_entries": int64(len(remap))}).Dur
	cp.Timeline().Advance(s.Report.RestoreTotal())
	return cp, nil
}
