// Package analyze is the insight layer over the obs tracer and metrics:
// it parses exported Chrome traces back into spans, extracts the
// critical path through a snapshot lifecycle (blame attribution,
// straggler skew, per-precopy-round accounting), and diffs benchmark
// JSON against committed baselines with per-metric tolerances. It
// consumes only the serialized artifacts (trace JSON, flight dumps,
// BENCH_*.json), never live platform state, so it works equally on a
// file from CI and on an in-memory export.
package analyze

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"snapify/internal/obs"
	"snapify/internal/simclock"
)

// ParseChromeTrace validates b (via obs.ValidateChromeTrace) and
// reconstructs the recorded spans: lane labels from the metadata
// events, exact nanosecond durations from args.dur_ns, scope from
// args.scope. The bookkeeping args (dur_ns, scope) are stripped;
// every other integer arg is kept.
func ParseChromeTrace(b []byte) ([]obs.Span, error) {
	if err := obs.ValidateChromeTrace(b); err != nil {
		return nil, err
	}
	return parseEventwise(b)
}

// parseEventwise decodes each event with json.RawMessage args so that
// metadata events (string args) and span events (numeric args) coexist.
func parseEventwise(b []byte) ([]obs.Span, error) {
	var doc struct {
		TraceEvents []struct {
			Name string          `json:"name"`
			Ph   string          `json:"ph"`
			TS   float64         `json:"ts"`
			Dur  float64         `json:"dur"`
			Pid  int             `json:"pid"`
			Tid  int             `json:"tid"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		return nil, fmt.Errorf("analyze: %w", err)
	}
	procName := map[int]string{}
	laneName := map[[2]int]string{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "M" {
			continue
		}
		var margs struct {
			Name string `json:"name"`
		}
		switch ev.Name {
		case "process_name":
			if err := json.Unmarshal(ev.Args, &margs); err == nil {
				procName[ev.Pid] = margs.Name
			}
		case "thread_name":
			if err := json.Unmarshal(ev.Args, &margs); err == nil {
				laneName[[2]int{ev.Pid, ev.Tid}] = margs.Name
			}
		}
	}
	var spans []obs.Span
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		var xargs map[string]float64
		if len(ev.Args) > 0 {
			if err := json.Unmarshal(ev.Args, &xargs); err != nil {
				return nil, fmt.Errorf("analyze: span %q args: %w", ev.Name, err)
			}
		}
		s := obs.Span{
			Process: procName[ev.Pid],
			Thread:  laneName[[2]int{ev.Pid, ev.Tid}],
			Name:    ev.Name,
			Start:   simclock.Duration(int64(math.Round(ev.TS * 1e3))),
			Dur:     simclock.Duration(int64(xargs["dur_ns"])),
			Scope:   uint64(xargs["scope"]),
		}
		keys := make([]string, 0, len(xargs))
		for k := range xargs {
			if k == "dur_ns" || k == "scope" {
				continue
			}
			keys = append(keys, k)
		}
		sort.Strings(keys)
		if len(keys) > 0 {
			s.Args = make(map[string]int64, len(keys))
			for _, k := range keys {
				s.Args[k] = int64(math.Round(xargs[k]))
			}
		}
		spans = append(spans, s)
	}
	return spans, nil
}
