package mpi_test

import (
	"fmt"
	"testing"

	"snapify/internal/mpi"
	"snapify/internal/phi"
	"snapify/internal/platform"
	"snapify/internal/workloads"
)

func newCluster(t *testing.T, nodes int) *mpi.Cluster {
	t.Helper()
	c, err := mpi.NewCluster(nodes, platform.Config{Server: phi.ServerConfig{Devices: 1, Device: phi.DeviceConfig{MemBytes: 8 * (1 << 30)}}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	return c
}

func TestSendRecvAcrossRanks(t *testing.T) {
	c := newCluster(t, 2)
	w, err := mpi.NewWorld(c, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	err = w.Run(func(r *mpi.Rank) error {
		if r.ID == 0 {
			if err := r.Send(1, 7, []byte("halo exchange")); err != nil {
				return err
			}
			msg, err := r.Recv(1, 8)
			if err != nil {
				return err
			}
			if string(msg) != "reply" {
				return fmt.Errorf("rank 0 got %q", msg)
			}
			return nil
		}
		msg, err := r.Recv(0, 7)
		if err != nil {
			return err
		}
		if string(msg) != "halo exchange" {
			return fmt.Errorf("rank 1 got %q", msg)
		}
		return r.Send(0, 8, []byte("reply"))
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.Rank(0).TL.Now() <= 0 {
		t.Error("no network time charged")
	}
}

func TestTagFiltering(t *testing.T) {
	c := newCluster(t, 2)
	w, _ := mpi.NewWorld(c, 2)
	defer w.Close()
	r0, r1 := w.Rank(0), w.Rank(1)
	r0.Send(1, 5, []byte("five"))  //nolint:errcheck
	r0.Send(1, 3, []byte("three")) //nolint:errcheck
	msg, err := r1.Recv(0, 3)
	if err != nil || string(msg) != "three" {
		t.Fatalf("tag recv: %q %v", msg, err)
	}
	msg, _ = r1.Recv(0, 5)
	if string(msg) != "five" {
		t.Fatalf("second recv: %q", msg)
	}
	if r1.PendingBytes() != 0 {
		t.Error("pending bytes after drain")
	}
}

func TestBarrierAlignsTimelines(t *testing.T) {
	c := newCluster(t, 3)
	w, _ := mpi.NewWorld(c, 3)
	defer w.Close()
	w.Rank(2).TL.Advance(1e9) // rank 2 is one second ahead
	err := w.Run(func(r *mpi.Rank) error {
		r.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if w.Rank(i).TL.Now() < 1e9 {
			t.Errorf("rank %d timeline %v behind the barrier", i, w.Rank(i).TL.Now())
		}
	}
}

func TestAllreduce(t *testing.T) {
	c := newCluster(t, 3)
	w, _ := mpi.NewWorld(c, 3)
	defer w.Close()
	sums := make([]uint64, 3)
	err := w.Run(func(r *mpi.Rank) error {
		sums[r.ID] = r.AllreduceSum(uint64(r.ID + 1))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range sums {
		if s != 6 {
			t.Errorf("rank %d allreduce = %d, want 6", i, s)
		}
	}
}

func TestWorldSizeValidation(t *testing.T) {
	c := newCluster(t, 2)
	if _, err := mpi.NewWorld(c, 3); err == nil {
		t.Error("oversized world must fail")
	}
	if _, err := mpi.NewWorld(c, 0); err == nil {
		t.Error("empty world must fail")
	}
}

func TestCoordinatedCheckpointRestart(t *testing.T) {
	const ranks = 2
	c := newCluster(t, ranks)
	w, err := mpi.NewWorld(c, ranks)
	if err != nil {
		t.Fatal(err)
	}

	spec, _ := workloads.MZByCode("SP-MZ")
	spec.Iterations = 8

	instances := make([]*workloads.Instance, ranks)
	err = w.Run(func(r *mpi.Rank) error {
		in, err := workloads.LaunchMZRank(r, spec, ranks)
		if err != nil {
			return err
		}
		instances[r.ID] = in
		return workloads.RunMZIterations(r, in, 3)
	})
	if err != nil {
		t.Fatal(err)
	}

	rep, err := w.Checkpoint("/snap/mpi")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.PerRank) != ranks || rep.Total <= 0 {
		t.Fatalf("report: %+v", rep)
	}
	for i, b := range rep.PerRankBytes {
		if b <= 0 {
			t.Errorf("rank %d snapshot empty", i)
		}
	}

	// The job dies; restart it from the coordinated snapshot.
	w.Close()
	w2, rrep, err := c.Restart("/snap/mpi", ranks)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if rrep.Total <= 0 {
		t.Error("restart total missing")
	}
	err = w2.Run(func(r *mpi.Rank) error {
		in, err := workloads.AttachMZRank(r, spec, ranks)
		if err != nil {
			return err
		}
		if got := in.Progress(); got != 3 {
			return fmt.Errorf("rank %d progress %d, want 3", r.ID, got)
		}
		return workloads.RunMZIterations(r, in, spec.Iterations-3)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointRejectsUndrainedChannels(t *testing.T) {
	c := newCluster(t, 2)
	w, _ := mpi.NewWorld(c, 2)
	defer w.Close()
	w.Rank(0).Send(1, 1, []byte("in flight")) //nolint:errcheck
	if _, err := w.Checkpoint("/snap/dirty"); err == nil {
		t.Fatal("checkpoint with undrained channels must fail")
	}
}

func TestBcastAndGather(t *testing.T) {
	c := newCluster(t, 3)
	w, _ := mpi.NewWorld(c, 3)
	defer w.Close()
	err := w.Run(func(r *mpi.Rank) error {
		// Broadcast from rank 1.
		var payload []byte
		if r.ID == 1 {
			payload = []byte("zone boundaries")
		}
		got, err := r.Bcast(1, payload)
		if err != nil {
			return err
		}
		if string(got) != "zone boundaries" {
			return fmt.Errorf("rank %d bcast got %q", r.ID, got)
		}
		// Gather at rank 0.
		all, err := r.Gather(0, []byte{byte('A' + r.ID)})
		if err != nil {
			return err
		}
		if r.ID == 0 {
			if len(all) != 3 || string(all[0]) != "A" || string(all[1]) != "B" || string(all[2]) != "C" {
				return fmt.Errorf("gather = %q", all)
			}
		} else if all != nil {
			return fmt.Errorf("rank %d gather should be nil", r.ID)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceMaxAndSkew(t *testing.T) {
	c := newCluster(t, 3)
	w, _ := mpi.NewWorld(c, 3)
	defer w.Close()
	maxes := make([]uint64, 3)
	err := w.Run(func(r *mpi.Rank) error {
		m, err := r.AllreduceMax(uint64(10 * (r.ID + 1)))
		maxes[r.ID] = m
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range maxes {
		if m != 30 {
			t.Errorf("rank %d max = %d, want 30", i, m)
		}
	}
	w.Rank(2).TL.Advance(5e8)
	if w.TimelineSkew() < 5e8 {
		t.Errorf("skew = %v", w.TimelineSkew())
	}
}

func TestCollectiveRootValidation(t *testing.T) {
	c := newCluster(t, 2)
	w, _ := mpi.NewWorld(c, 2)
	defer w.Close()
	if _, err := w.Rank(0).Bcast(7, nil); err == nil {
		t.Error("bad bcast root accepted")
	}
	if _, err := w.Rank(0).Gather(-1, nil); err == nil {
		t.Error("bad gather root accepted")
	}
}
