// Package snapify is the public API of the Snapify reproduction: a set of
// extensions to a (simulated) Intel Xeon Phi software stack that captures
// consistent process-level snapshots of offload applications, and builds
// three capabilities on them — application-transparent checkpoint and
// restart, process swapping, and process migration (Rezaei et al.,
// "Snapify: Capturing Snapshots of Offload Applications on Xeon Phi
// Manycore Processors", HPDC 2014).
//
// # Programming model
//
// A Server is one simulated Xeon Phi machine: a host plus one or more
// coprocessor cards connected by PCIe, with the full MPSS-equivalent stack
// running (SCIF, the COI library and daemons, Snapify-IO daemons, and a
// BLCR-equivalent checkpointer). Offload applications follow the paper's
// model: the host process creates an offload process from a registered
// device Binary, moves data through COI buffers, and invokes offload
// functions through a pipeline:
//
//	srv, err := snapify.NewServer(snapify.ServerOptions{Devices: 2})
//	if err != nil { ... }
//	defer srv.Stop()
//
//	bin := snapify.NewBinary("myapp")
//	bin.Register("kernel", func(ctx *snapify.RunContext, args []byte) ([]byte, error) { ... })
//	snapify.RegisterBinary(bin)
//
//	app, _ := srv.Launch("myapp", 1)     // offload process on card 1
//	buf, _ := app.Proc.CreateBuffer(64 << 20)
//	pl, _ := app.Proc.CreatePipeline()
//	out, _ := pl.RunFunction("kernel", args)
//
// # Snapshots
//
// The five primitives of the paper's Table 1 operate on a Snapshot
// descriptor: Pause drains every SCIF channel between the host process,
// the COI daemon, and the offload process; Capture writes the offload
// process's image to the host through Snapify-IO (non-blocking — Wait
// joins it); Resume reopens normal operation; Restore rebuilds the process
// from its snapshot on any card. Swapout, Swapin, and Migrate compose them
// exactly as Section 5 does, and App/RestartApp wire a whole application
// (host and offload process) into BLCR-callback-driven checkpoint and
// restart.
package snapify

import (
	"fmt"
	"sync"

	"snapify/internal/coi"
	"snapify/internal/core"
	"snapify/internal/phi"
	"snapify/internal/platform"
	"snapify/internal/proc"
	"snapify/internal/simclock"
	"snapify/internal/simnet"
)

// Re-exported core types. The underlying implementations live in internal
// packages; these names are the supported surface.
type (
	// Binary is a device-side offload binary: a registry of offload
	// functions plus the regions it sets up at load time.
	Binary = coi.Binary
	// RunContext is what an executing offload function sees.
	RunContext = coi.RunContext
	// Process is the host-side handle to an offload process (COIProcess*).
	Process = coi.Process
	// Buffer is a COI buffer handle.
	Buffer = coi.Buffer
	// Pipeline executes offload functions (COIPipeline).
	Pipeline = coi.Pipeline
	// Snapshot mirrors snapify_t: path, process handle, semaphore.
	Snapshot = core.Snapshot
	// CaptureOptions configures a capture: termination and the parallel
	// multi-stream data path.
	CaptureOptions = core.CaptureOptions
	// RestoreOptions configures a restore's parallel data path.
	RestoreOptions = core.RestoreOptions
	// MigrateOptions configures a migration: destination, snapshot
	// directory, and the capture/restore/pre-copy behavior.
	MigrateOptions = core.MigrateOptions
	// PrecopyOptions configures live migration's iterative pre-copy phase.
	PrecopyOptions = core.PrecopyOptions
	// Migration is a live-migration session (NewMigration, Round, Finish).
	Migration = core.Migration
	// PrecopyRound is one pre-copy round's outcome in Report.Precopy.
	PrecopyRound = core.PrecopyRound
	// Report is the per-phase timing breakdown of a snapshot lifecycle.
	Report = core.Report
	// CheckpointReport times one full-application checkpoint.
	CheckpointReport = core.CheckpointReport
	// RestartReport times one full-application restart.
	RestartReport = core.RestartReport
	// CommandServer handles the snapify command-line utility's requests.
	CommandServer = core.CommandServer
	// NodeID identifies a SCIF node: 0 is the host, 1..N are the cards.
	NodeID = simnet.NodeID
	// Duration is virtual time (see the cost model in DESIGN.md).
	Duration = simclock.Duration
	// HostProcess is a simulated host process.
	HostProcess = proc.Process
)

// NewBinary returns an empty device binary.
func NewBinary(name string) *Binary { return coi.NewBinary(name) }

// RegisterBinary publishes a binary so COI daemons can launch it by name.
func RegisterBinary(b *Binary) { coi.RegisterBinary(b) }

// ServerOptions parameterizes a simulated Xeon Phi server.
type ServerOptions struct {
	// Devices is the number of coprocessor cards (default 1).
	Devices int
	// DeviceMemBytes is each card's physical memory (default 8 GiB, the
	// paper's configuration).
	DeviceMemBytes int64
	// NoSnapifyHooks builds the COI runtime without the pause-protocol
	// instrumentation (the Fig 9 baseline). Snapshots are unavailable.
	NoSnapifyHooks bool
}

// Server is one simulated Xeon Phi machine with the full software stack
// running.
type Server struct {
	// Platform exposes the assembled substrate for advanced use (the
	// benchmark harness reads file systems and fabric counters from it).
	Platform *platform.Platform

	stop sync.Once
}

// NewServer boots a server: host, cards, SCIF, Snapify-IO daemons, and one
// COI daemon per card. On failure every daemon already started is stopped
// before the error is returned.
func NewServer(opts ServerOptions) (*Server, error) {
	plat, err := platform.New(platform.Config{
		Server: phi.ServerConfig{
			Devices: opts.Devices,
			Device:  phi.DeviceConfig{MemBytes: opts.DeviceMemBytes},
		},
		NoSnapify: opts.NoSnapifyHooks,
	})
	if err != nil {
		return nil, fmt.Errorf("snapify: %w", err)
	}
	if err := coi.StartDaemons(plat); err != nil {
		coi.StopDaemons(plat)
		plat.IO.Stop()
		return nil, fmt.Errorf("snapify: starting COI daemons: %w", err)
	}
	return &Server{Platform: plat}, nil
}

// Stop shuts the server down. It is idempotent: extra calls are no-ops, so
// a deferred Stop composes with explicit shutdown paths.
func (s *Server) Stop() {
	s.stop.Do(func() {
		coi.StopDaemons(s.Platform)
		s.Platform.IO.Stop()
	})
}

// Devices returns the number of cards.
func (s *Server) Devices() int { return s.Platform.Server.Fabric.Devices() }

// Application is a launched offload application: its host process, the
// offload process handle, and the virtual timeline its operations charge.
type Application struct {
	Host     *HostProcess
	Proc     *Process
	Timeline *simclock.Timeline
	server   *Server
}

// Launch starts an offload application: a host process plus an offload
// process running the named registered binary on the given card.
func (s *Server) Launch(binaryName string, device NodeID) (*Application, error) {
	host := s.Platform.Procs.Spawn("host_"+binaryName, simnet.HostNode, s.Platform.Host().Mem)
	tl := simclock.NewTimeline()
	cp, err := coi.CreateProcess(s.Platform, host, tl, device, binaryName)
	if err != nil {
		host.Terminate()
		return nil, err
	}
	return &Application{Host: host, Proc: cp, Timeline: tl, server: s}, nil
}

// Close terminates the application (the COI daemon reaps the offload
// process).
func (a *Application) Close() { a.Host.Terminate() }

// --- Table 1: the five Snapify primitives ---

// NewSnapshot returns a snapshot descriptor (snapify_t) for the directory
// and process handle.
func NewSnapshot(path string, p *Process) *Snapshot { return core.NewSnapshot(path, p) }

// Pause stops and drains all communication with the offload process
// (snapify_pause).
func Pause(s *Snapshot) error { return core.Pause(s) }

// Capture snapshots the paused offload process to the host, non-blocking
// (snapify_capture). Options select termination (the swap-out path) and
// the parallel multi-stream data path.
func Capture(s *Snapshot, opts CaptureOptions) error { return s.Capture(opts) }

// Wait joins a pending Capture (snapify_wait).
func Wait(s *Snapshot) error { return core.Wait(s) }

// Resume reopens normal operation after a snapshot (snapify_resume).
func Resume(s *Snapshot) error { return core.Resume(s) }

// Restore rebuilds the offload process from its snapshot on the given card
// (snapify_restore); call Resume afterwards.
func Restore(s *Snapshot, device NodeID, opts RestoreOptions) (*Process, error) {
	return s.Restore(device, opts)
}

// --- incremental snapshots (extension beyond the paper) ---

// CaptureBase is Capture plus a clean mark on every region: the snapshot
// anchors a chain of CaptureDelta captures.
func CaptureBase(s *Snapshot, opts CaptureOptions) error { return s.CaptureBase(opts) }

// CaptureDelta captures only what the offload process wrote since the last
// CaptureBase or CaptureDelta; restore the chain with RestoreChain.
func CaptureDelta(s *Snapshot, opts CaptureOptions) error { return s.CaptureDelta(opts) }

// RestoreChain restores from a base snapshot plus an ordered chain of
// delta snapshots; s is the latest capture's snapshot (its directory holds
// the freshest local store).
func RestoreChain(s *Snapshot, baseDir string, deltaDirs []string, device NodeID, opts RestoreOptions) (*Process, error) {
	return s.RestoreChain(baseDir, deltaDirs, device, opts)
}

// --- Section 5: the three capabilities ---

// Swapout captures and terminates the offload process (snapify_swapout).
// The zero opts is the paper's serial data path.
func Swapout(path string, p *Process, opts CaptureOptions) (*Snapshot, error) {
	return core.Swapout(path, p, opts)
}

// Swapin restores and resumes a swapped-out process (snapify_swapin).
func Swapin(s *Snapshot, device NodeID, opts RestoreOptions) (*Process, error) {
	return core.Swapin(s, device, opts)
}

// Migrate moves the offload process to another card (snapify_migration),
// streaming its local store device-to-device. With opts.Precopy enabled
// it is a live migration: pre-copy rounds ship the image while the
// process runs and only the final delta is captured under pause; the
// restored image is byte-identical either way.
func Migrate(p *Process, opts MigrateOptions) (*Process, *Snapshot, error) {
	return core.Migrate(p, opts)
}

// NewMigration opens a live-migration session whose pre-copy rounds the
// caller drives explicitly (Round, Finish, Abort) — for interleaving
// rounds with application work.
func NewMigration(p *Process, opts MigrateOptions) (*Migration, error) {
	return core.NewMigration(p, opts)
}

// --- full-application checkpoint and restart (Fig 5) ---

// App wires an application into BLCR-callback-driven checkpoint/restart.
type App = core.App

// NewApp registers the Snapify checkpoint callback for the application.
func (a *Application) NewApp() *App { return core.NewApp(a.server.Platform, a.Proc) }

// RestartApp restores a whole application from a snapshot directory.
func (s *Server) RestartApp(dir string) (*App, *HostProcess, *RestartReport, error) {
	return core.RestartApp(s.Platform, dir)
}

// InstallCommandServer installs the snapify utility's signal handler in
// the application's host process (Section 5, command-line tools).
func (a *Application) InstallCommandServer() *CommandServer {
	return core.InstallCommandServer(a.server.Platform, a.Proc)
}
