// Package simclock provides the virtual-time cost model for the Snapify
// simulation.
//
// The reproduction runs on commodity hardware instead of a Xeon Phi server,
// so wall-clock time is meaningless for the paper's figures. Instead, every
// simulated transfer, memory operation, RPC, and protocol step charges a
// virtual duration computed from a single calibrated Model. All tables and
// figures in the evaluation derive from the same constants, so the paper's
// orderings and crossovers are endogenous to the model rather than
// hard-coded per experiment.
//
// The calibration targets the paper's testbed (Table 2): an Intel Xeon
// E5-2630 host and Xeon Phi 5110P coprocessors connected by PCIe gen2 x16,
// running MPSS 2.1. Constants are drawn from the public characteristics of
// that platform: SCIF RDMA sustains roughly 6 GB/s on PCIe gen2 x16; the
// MPSS virtio network interface (which carries NFS and scp traffic) runs at
// GbE-class rates; and a single in-order Knights Corner core is slow — user
// copies reach several hundred MB/s, and the checkpointer's page-walk and
// serialization loop runs at a fraction of that, which is why checkpoint
// times in Section 7 are seconds, not the PCIe-limited milliseconds.
package simclock

import (
	"fmt"
	"time"
)

// Duration is a virtual duration. It uses time.Duration's representation
// (nanoseconds) but never measures wall-clock time.
type Duration = time.Duration

// Common unit helpers for byte counts.
const (
	KiB int64 = 1 << 10
	MiB int64 = 1 << 20
	GiB int64 = 1 << 30
)

// Model holds the calibration constants of the simulated platform. A Model
// is immutable after construction; all methods are safe for concurrent use.
type Model struct {
	// PCIe / SCIF data path.

	// RDMABandwidth is the sustained SCIF RDMA throughput over PCIe
	// (scif_readfrom / scif_writeto on registered windows).
	RDMABandwidth int64 // bytes per second
	// RDMASetup is the fixed cost of initiating one RDMA transfer
	// (descriptor post + doorbell + completion).
	RDMASetup Duration
	// SCIFMsgLatency is the one-way latency of a small scif_send message.
	SCIFMsgLatency Duration
	// SCIFMsgBandwidth is the throughput of the non-RDMA message path.
	SCIFMsgBandwidth int64

	// Memory systems.

	// PhiMemcpyBandwidth is single-thread memcpy throughput on a Knights
	// Corner core. The in-order core is slow: user-level copies (socket
	// reads, staging into RDMA buffers) run at several hundred MB/s.
	PhiMemcpyBandwidth int64
	// PhiPageWalkBandwidth is the rate at which the checkpointer walks and
	// serializes memory pages on the coprocessor (read + header bookkeeping).
	PhiPageWalkBandwidth int64
	// HostMemcpyBandwidth is host-side memcpy throughput.
	HostMemcpyBandwidth int64
	// HostPageWalkBandwidth is the host checkpointer's serialization rate.
	HostPageWalkBandwidth int64

	// Host file system.

	// HostFSWriteBandwidth is the rate of writing into the host page cache.
	HostFSWriteBandwidth int64
	// HostFSReadCachedBandwidth is the rate of reading a cached host file.
	HostFSReadCachedBandwidth int64
	// HostFSReadColdBandwidth is the rate of reading from secondary storage.
	HostFSReadColdBandwidth int64
	// HostFSFlushBandwidth is the asynchronous flush rate to secondary
	// storage. Flushes overlap with PCIe transfers, which is why writing a
	// snapshot from the coprocessor to the host is faster than reading it
	// back (the paper observes the same asymmetry in Section 7).
	HostFSFlushBandwidth int64
	// HostFSOpLatency is the per-call overhead of open/close/stat.
	HostFSOpLatency Duration

	// Phi RAM file system.

	// RamFSBandwidth is read/write throughput of the RAM-backed rootfs.
	RamFSBandwidth int64
	// RamFSOpLatency is per-call overhead in the Phi VFS.
	RamFSOpLatency Duration

	// Network file system (NFS mounted over the MPSS virtio interface).

	// NFSBandwidth is the streaming throughput of the TCP/IP-over-PCIe
	// virtio link that carries NFS traffic. MPSS's mic0 interface is far
	// slower than raw SCIF RDMA.
	NFSBandwidth int64
	// NFSRPCLatency is the round-trip cost of one NFS RPC. Every
	// uncached write() becomes at least one RPC, which is what punishes
	// BLCR's many small writes on the plain NFS configuration.
	NFSRPCLatency Duration
	// NFSMaxTransfer is the largest payload of a single NFS READ/WRITE RPC
	// (rsize/wsize).
	NFSMaxTransfer int64
	// NFSReadAhead is the number of read RPCs the client keeps in flight;
	// it hides RPC latency on sequential reads, which is why the paper's
	// buffering optimizations "do not apply" to restart.
	NFSReadAhead int

	// scp baseline.

	// SCPCipherBandwidth is the throughput of the ssh cipher+MAC on a
	// single Knights Corner core; scp is CPU-bound on the coprocessor.
	SCPCipherBandwidth int64
	// SCPHandshake is the fixed session-establishment cost.
	SCPHandshake Duration

	// Process control.

	// SignalLatency is delivery of a signal to a process.
	SignalLatency Duration
	// PipeLatency is a one-way message over a UNIX pipe.
	PipeLatency Duration
	// UnixSocketLatency is a one-way message over a UNIX domain socket.
	UnixSocketLatency Duration
	// ProcLaunch is the cost of launching a process on the coprocessor
	// (fork/exec on the Phi OS plus dynamic loading).
	ProcLaunch Duration
	// ThreadQuiesce is the per-thread cost of stopping a running thread at
	// a safe point during pause.
	ThreadQuiesce Duration
	// SCIFReconnect is the cost of re-establishing one SCIF connection
	// after restore.
	SCIFReconnect Duration
	// RegisterWindow is the per-call cost of scif_register (page pinning
	// plus aperture programming), excluding the per-byte pin cost.
	RegisterWindow Duration
	// RegisterPerByte is the per-byte cost of pinning pages for RDMA.
	RegisterPerByte float64 // nanoseconds per byte

	// Cluster interconnect (the 4-node cluster of the MPI experiments).

	// ClusterNetBandwidth is the node-to-node interconnect throughput.
	ClusterNetBandwidth int64
	// ClusterNetLatency is the one-way small-message latency between nodes.
	ClusterNetLatency Duration

	// Snapify hook overheads (Fig 9). These are the costs added to the
	// normal (snapshot-free) execution path by the pause-protocol
	// instrumentation in the COI runtime.

	// HookOffloadCall is the added cost per offload-region invocation:
	// two critical-region entries around the now-blocking run-function
	// sends (Section 4.1, case 4).
	HookOffloadCall Duration
	// HookRDMACall is the added mutex cost per COI buffer RDMA call site
	// (case 2).
	HookRDMACall Duration
	// HookLifecycle is the added cost per process create/destroy (case 1).
	HookLifecycle Duration
	// HookCommandSend is the added lock cost per client-server command
	// (case 3).
	HookCommandSend Duration
}

// Default returns the Model calibrated for the paper's testbed (Table 2).
func Default() *Model {
	return &Model{
		RDMABandwidth:    6 * GiB,
		RDMASetup:        15 * time.Microsecond,
		SCIFMsgLatency:   12 * time.Microsecond,
		SCIFMsgBandwidth: 300 * MiB,

		PhiMemcpyBandwidth:    800 * MiB,
		PhiPageWalkBandwidth:  250 * MiB,
		HostMemcpyBandwidth:   6 * GiB,
		HostPageWalkBandwidth: 800 * MiB,

		HostFSWriteBandwidth:      1 * GiB,
		HostFSReadCachedBandwidth: 1 * GiB,
		HostFSReadColdBandwidth:   400 * MiB,
		HostFSFlushBandwidth:      300 * MiB,
		HostFSOpLatency:           40 * time.Microsecond,

		RamFSBandwidth: 1 * GiB,
		RamFSOpLatency: 25 * time.Microsecond,

		NFSBandwidth:   120 * MiB,
		NFSRPCLatency:  800 * time.Microsecond,
		NFSMaxTransfer: 256 * KiB,
		NFSReadAhead:   2,

		SCPCipherBandwidth: 30 * MiB,
		SCPHandshake:       900 * time.Millisecond,

		ClusterNetBandwidth: 3 * GiB,
		ClusterNetLatency:   3 * time.Microsecond,

		SignalLatency:     60 * time.Microsecond,
		PipeLatency:       25 * time.Microsecond,
		UnixSocketLatency: 18 * time.Microsecond,
		ProcLaunch:        1400 * time.Millisecond,
		ThreadQuiesce:     900 * time.Microsecond,
		SCIFReconnect:     350 * time.Microsecond,
		RegisterWindow:    120 * time.Microsecond,
		RegisterPerByte:   0.055, // ns/B: ~55 us per MiB of pinned pages

		HookOffloadCall: 65 * time.Microsecond,
		HookRDMACall:    6 * time.Microsecond,
		HookLifecycle:   30 * time.Microsecond,
		HookCommandSend: 4 * time.Microsecond,
	}
}

// xfer computes bytes / bandwidth as a Duration.
func xfer(bytes, bandwidth int64) Duration {
	if bytes <= 0 {
		return 0
	}
	if bandwidth <= 0 {
		panic(fmt.Sprintf("simclock: non-positive bandwidth %d", bandwidth)) //nolint:paniclib // model bug: bandwidths are positive constants of the hardware model
	}
	return Duration(float64(bytes) / float64(bandwidth) * float64(time.Second))
}

// RDMA returns the cost of one RDMA transfer of the given size.
func (m *Model) RDMA(bytes int64) Duration {
	return m.RDMASetup + xfer(bytes, m.RDMABandwidth)
}

// SCIFMsg returns the one-way cost of a scif_send message of the given size.
func (m *Model) SCIFMsg(bytes int64) Duration {
	return m.SCIFMsgLatency + xfer(bytes, m.SCIFMsgBandwidth)
}

// PhiMemcpy returns the cost of copying bytes on a coprocessor core.
func (m *Model) PhiMemcpy(bytes int64) Duration {
	return xfer(bytes, m.PhiMemcpyBandwidth)
}

// HostMemcpy returns the cost of copying bytes on a host core.
func (m *Model) HostMemcpy(bytes int64) Duration {
	return xfer(bytes, m.HostMemcpyBandwidth)
}

// PhiPageWalk returns the checkpointer's serialization cost on the Phi.
func (m *Model) PhiPageWalk(bytes int64) Duration {
	return xfer(bytes, m.PhiPageWalkBandwidth)
}

// HostPageWalk returns the checkpointer's serialization cost on the host.
func (m *Model) HostPageWalk(bytes int64) Duration {
	return xfer(bytes, m.HostPageWalkBandwidth)
}

// RegisterCost returns the cost of registering a window of the given size
// for RDMA (scif_register), including page pinning.
func (m *Model) RegisterCost(bytes int64) Duration {
	return m.RegisterWindow + Duration(m.RegisterPerByte*float64(bytes))
}
