package analyze

import "snapify/internal/obs"

// FlightReport decodes a flight-recorder dump file (obs.FlightDump
// JSON) and renders its incident summary followed by the critical path
// of the embedded trace window. A dump holding only zero-duration
// marker spans has no path; the summary alone is returned.
func FlightReport(b []byte) (string, error) {
	d, err := obs.DecodeFlightDump(b)
	if err != nil {
		return "", err
	}
	out := d.Summary()
	spans, err := ParseChromeTrace([]byte(d.Trace))
	if err != nil {
		return "", err
	}
	r, err := CriticalPath(spans)
	if err != nil {
		return out, nil
	}
	return out + "\n" + r.Render(10), nil
}
