package fleetd

import (
	"fmt"
	"testing"

	"snapify/internal/obs"
	"snapify/internal/simclock"
)

const ms = simclock.Duration(1e6)

// newModel builds a controller over a synthetic fleet.
func newModel(t *testing.T, opts Options, mo ModelOptions) (*Controller, *ModelBackend) {
	t.Helper()
	be := NewModelBackend(mo)
	return New(opts, be, obs.New()), be
}

// simpleSpec is a one-liner job spec for targeted scenarios.
func simpleSpec(id int, tenant string, prio int, at simclock.Duration, fp int64, bursts int) JobSpec {
	return JobSpec{
		ID: id, Tenant: tenant, Priority: prio, Arrival: at,
		Footprint: fp, Bursts: bursts, BurstLen: 4 * ms, ThinkLen: 4 * ms,
	}
}

func mustRun(t *testing.T, c *Controller) {
	t.Helper()
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
}

func completedAll(t *testing.T, c *Controller) {
	t.Helper()
	st := c.Stats()
	if st.Completed != st.Admitted {
		t.Fatalf("completed %d of %d admitted", st.Completed, st.Admitted)
	}
	for _, j := range c.Jobs() {
		if j.State != StateDone && j.State != StateRejected {
			t.Errorf("job %d stuck in state %s", j.ID, j.State)
		}
	}
}

// checkInvariants asserts the card-accounting invariants: residency
// stays within [0, cap] (commitment may oversubscribe, physical memory
// never), and every running or thinking job actually holds residency on
// its card.
func checkInvariants(t *testing.T, c *Controller) {
	t.Helper()
	for _, h := range c.hosts {
		for _, cd := range h.cards {
			if cd.resident < 0 || cd.resident > cd.cap {
				t.Fatalf("at %v: card %s/%d resident %d outside [0, %d]",
					c.now, h.name, cd.idx, cd.resident, cd.cap)
			}
			if cd.committed < 0 {
				t.Fatalf("at %v: card %s/%d committed %d negative", c.now, h.name, cd.idx, cd.committed)
			}
		}
	}
	for _, j := range c.Jobs() {
		if j.State != StateRunning && j.State != StateThinking {
			continue
		}
		h, err := c.hostByName(j.Host)
		if err != nil {
			t.Fatalf("at %v: job %d %s on unknown host %q", c.now, j.ID, j.State, j.Host)
		}
		if _, ok := h.cards[j.Card].residents[j.ID]; !ok {
			t.Fatalf("at %v: job %d is %s on %s/%d without residency",
				c.now, j.ID, j.State, j.Host, j.Card)
		}
	}
}

// stepUntil advances the controller in 1ms steps, checking invariants
// at every step, until cond holds or the event queue drains. It
// reports whether cond was met.
func stepUntil(t *testing.T, c *Controller, cond func() bool) bool {
	t.Helper()
	for !cond() {
		if c.events.Len() == 0 {
			return false
		}
		if err := c.RunUntil(c.now + 1*ms); err != nil {
			t.Fatal(err)
		}
		checkInvariants(t, c)
	}
	return true
}

// TestEventHeapOrdering pops events in (time, seq) order regardless of
// push order.
func TestEventHeapOrdering(t *testing.T) {
	var h eventHeap
	// Deterministically scrambled times.
	s := uint64(7)
	for i := 0; i < 500; i++ {
		h.Push(event{at: simclock.Duration(splitmix64(&s) % 1000), seq: uint64(i)})
	}
	var prev event
	for i := 0; h.Len() > 0; i++ {
		e := h.Pop()
		if i > 0 && (e.at < prev.at || (e.at == prev.at && e.seq < prev.seq)) {
			t.Fatalf("pop %d out of order: (%d,%d) after (%d,%d)", i, e.at, e.seq, prev.at, prev.seq)
		}
		prev = e
	}
}

// TestEventHeapLogN pins the heap's complexity: total comparisons for n
// pushes and n pops must stay within c*n*log2(n), far under the n^2/4 a
// linear-scan queue would burn.
func TestEventHeapLogN(t *testing.T) {
	for _, n := range []int{1 << 10, 1 << 13} {
		var h eventHeap
		s := uint64(11)
		for i := 0; i < n; i++ {
			h.Push(event{at: simclock.Duration(splitmix64(&s)), seq: uint64(i)})
		}
		for h.Len() > 0 {
			h.Pop()
		}
		log2 := 0
		for v := n; v > 1; v >>= 1 {
			log2++
		}
		bound := int64(3 * n * log2)
		if h.cmps > bound {
			t.Fatalf("n=%d: %d comparisons, O(n log n) bound %d", n, h.cmps, bound)
		}
	}
}

// TestJobHeapPriority orders by priority desc, then arrival, then ID.
func TestJobHeapPriority(t *testing.T) {
	var h jobHeap
	h.Push(&Job{ID: 1, Spec: JobSpec{Priority: 0, Arrival: 5}})
	h.Push(&Job{ID: 2, Spec: JobSpec{Priority: 2, Arrival: 9}})
	h.Push(&Job{ID: 3, Spec: JobSpec{Priority: 2, Arrival: 3}})
	h.Push(&Job{ID: 4, Spec: JobSpec{Priority: 1, Arrival: 1}})
	want := []int{3, 2, 4, 1}
	for _, w := range want {
		if got := h.Pop().ID; got != w {
			t.Fatalf("pop order got job %d, want %d", got, w)
		}
	}
}

// TestAdmissionBackpressure rejects arrivals beyond the per-tenant
// queue depth while capacity is saturated.
func TestAdmissionBackpressure(t *testing.T) {
	c, _ := newModel(t, Options{QueueDepth: 2}, ModelOptions{Hosts: 1, CardsPerHost: 1, CardMem: 1 << 30})
	// One job fills the card; five more from the same tenant arrive
	// while it runs. Depth 2 admits two of them, rejects three.
	var specs []JobSpec
	specs = append(specs, simpleSpec(1, "a", 0, 0, 1<<30, 4))
	for i := 2; i <= 6; i++ {
		specs = append(specs, simpleSpec(i, "a", 0, 1*ms, 1<<30, 1))
	}
	if err := c.SubmitTrace(specs); err != nil {
		t.Fatal(err)
	}
	mustRun(t, c)
	st := c.Stats()
	if st.Rejected != 3 {
		t.Fatalf("rejected %d, want 3 (admitted %d)", st.Rejected, st.Admitted)
	}
	if st.Admitted != 3 || st.Completed != 3 {
		t.Fatalf("admitted %d completed %d, want 3/3", st.Admitted, st.Completed)
	}
	completedAll(t, c)
}

// TestPlacementBestFit packs two half-card jobs onto the same card
// before opening the second card.
func TestPlacementBestFit(t *testing.T) {
	c, _ := newModel(t, Options{}, ModelOptions{Hosts: 1, CardsPerHost: 2, CardMem: 1 << 30})
	// Job 1 takes half of card 0. Job 2 (quarter) should best-fit into
	// card 0's smaller leftover, not the empty card 1.
	if err := c.SubmitTrace([]JobSpec{
		simpleSpec(1, "a", 0, 0, 512<<20, 2),
		simpleSpec(2, "a", 0, 0, 256<<20, 2),
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.RunUntil(1 * ms); err != nil {
		t.Fatal(err)
	}
	j1, j2 := c.JobByID(1), c.JobByID(2)
	if j1.Card != 0 || j2.Card != 0 {
		t.Fatalf("best-fit broke: job1 on card %d, job2 on card %d, want both on 0", j1.Card, j2.Card)
	}
	mustRun(t, c)
	completedAll(t, c)
}

// TestOversubscriptionSwaps: at 100% two jobs too big to share a card
// serialize with no swaps; at 200% they interleave through the
// store-backed swap path during each other's long think phases,
// raising utilization and shrinking makespan.
func TestOversubscriptionSwaps(t *testing.T) {
	// 256 MiB jobs on a 384 MiB card: one resident at a time, two
	// committed at 200%. Thinks (5s) dwarf the swap cycle (~2s), so
	// oversubscription pays.
	sec := 1000 * ms
	trace := []JobSpec{
		{ID: 1, Tenant: "a", Arrival: 0, Footprint: 256 << 20, Bursts: 4, BurstLen: 100 * ms, ThinkLen: 5 * sec},
		{ID: 2, Tenant: "b", Arrival: 0, Footprint: 256 << 20, Bursts: 4, BurstLen: 100 * ms, ThinkLen: 5 * sec},
	}
	run := func(pct int) (Stats, int64, []simclock.Duration) {
		c, _ := newModel(t, Options{OversubPct: pct}, ModelOptions{Hosts: 1, CardsPerHost: 1, CardMem: 384 << 20})
		if err := c.SubmitTrace(trace); err != nil {
			t.Fatal(err)
		}
		mustRun(t, c)
		completedAll(t, c)
		return c.Stats(), c.UtilizationPct(), c.SwapLatencies()
	}
	flat, flatUtil, _ := run(100)
	over, overUtil, lats := run(200)
	if flat.SwapOuts != 0 {
		t.Fatalf("no-oversub run swapped %d times", flat.SwapOuts)
	}
	if over.SwapOuts == 0 || over.SwapIns == 0 {
		t.Fatalf("oversubscribed run never swapped (outs=%d ins=%d)", over.SwapOuts, over.SwapIns)
	}
	if overUtil <= flatUtil {
		t.Fatalf("oversubscription did not raise utilization: %d <= %d", overUtil, flatUtil)
	}
	if over.Makespan >= flat.Makespan {
		t.Fatalf("oversubscription did not shrink makespan: %v >= %v", over.Makespan, flat.Makespan)
	}
	if len(lats) == 0 || Percentile(lats, 99) <= 0 {
		t.Fatalf("no swap latency samples recorded: %v", lats)
	}
}

// TestPriorityPreemption: a high-priority arrival evicts a thinking
// low-priority job through the store and takes its memory.
func TestPriorityPreemption(t *testing.T) {
	c, _ := newModel(t, Options{}, ModelOptions{Hosts: 1, CardsPerHost: 1, CardMem: 1 << 30})
	// Low-priority job fills the card and has long thinks; the
	// high-priority job arrives during its first think phase.
	if err := c.SubmitTrace([]JobSpec{
		{ID: 1, Tenant: "lo", Priority: 0, Arrival: 0, Footprint: 1 << 30, Bursts: 3, BurstLen: 4 * ms, ThinkLen: 40 * ms},
		{ID: 2, Tenant: "hi", Priority: 2, Arrival: 6 * ms, Footprint: 1 << 30, Bursts: 2, BurstLen: 4 * ms, ThinkLen: 1 * ms},
	}); err != nil {
		t.Fatal(err)
	}
	mustRun(t, c)
	st := c.Stats()
	if st.Preemptions == 0 {
		t.Fatalf("no preemption happened: %+v", st)
	}
	completedAll(t, c)
	// The victim must have come back and finished all bursts.
	if j := c.JobByID(1); !j.Done() {
		t.Fatalf("victim stuck in %s", j.State)
	}
}

// TestPercentile pins the exact-index percentile arithmetic.
func TestPercentile(t *testing.T) {
	s := []simclock.Duration{10, 20, 30, 40}
	if got := Percentile(s, 50); got != 20 {
		t.Fatalf("p50 = %d, want 20", got)
	}
	if got := Percentile(s, 99); got != 30 {
		t.Fatalf("p99 = %d, want 30", got)
	}
	if got := Percentile(nil, 99); got != 0 {
		t.Fatalf("empty p99 = %d, want 0", got)
	}
}

// TestEvacuationWaves drains a host under deadline: every job moves in
// bounded waves and completes elsewhere.
func TestEvacuationWaves(t *testing.T) {
	c, _ := newModel(t, Options{EvacWave: 2}, ModelOptions{Hosts: 3, CardsPerHost: 1, CardMem: 4 << 30})
	// Six eighth-card jobs, all placed on h000 (it fits them all and
	// wins every tie), with enough remaining work (~6s each) that the
	// ~0.5s migrations move them before they finish. Then h000 drains.
	var specs []JobSpec
	for i := 1; i <= 6; i++ {
		specs = append(specs, JobSpec{
			ID: i, Tenant: "a", Arrival: 0, Footprint: 512 << 20,
			Bursts: 4, BurstLen: 50 * ms, ThinkLen: 2000 * ms,
		})
	}
	if err := c.SubmitTrace(specs); err != nil {
		t.Fatal(err)
	}
	if err := c.RunUntil(1 * ms); err != nil {
		t.Fatal(err)
	}
	for _, j := range c.Jobs() {
		if j.Host != "h000" {
			t.Fatalf("setup: job %d on %s, want h000", j.ID, j.Host)
		}
	}
	c.ScheduleEvacuation(2*ms, "h000", 60*1000*ms)
	mustRun(t, c)
	completedAll(t, c)
	st := c.Stats()
	if st.EvacMoves == 0 {
		t.Fatal("no evacuation moves")
	}
	// Waves bound concurrency at 2: six jobs need at least 3 waves.
	if st.EvacWaves < 3 {
		t.Fatalf("6 jobs moved in %d waves of 2", st.EvacWaves)
	}
	evs := c.Evacuations()
	if len(evs) != 1 || !evs[0].Done || !evs[0].DeadlineMet {
		t.Fatalf("evacuation report %+v, want done under deadline", evs)
	}
	// The drained host must hold nothing.
	for _, j := range c.Jobs() {
		if j.Host == "h000" {
			t.Errorf("job %d still homed on drained host", j.ID)
		}
	}
}

// TestKillHostRecovery: killing a host loses its jobs; those with
// replicated snapshots recover with progress, the rest restart.
func TestKillHostRecovery(t *testing.T) {
	c, be := newModel(t, Options{OversubPct: 200}, ModelOptions{Hosts: 4, CardsPerHost: 1, CardMem: 1 << 30, ReplicaK: 2})
	// Two card-filling jobs on h000 (oversubscribed): their swap churn
	// leaves durable snapshots. One fresh job arrives on another host.
	if err := c.SubmitTrace([]JobSpec{
		simpleSpec(1, "a", 0, 0, 1<<30, 6),
		simpleSpec(2, "b", 0, 0, 1<<30, 6),
	}); err != nil {
		t.Fatal(err)
	}
	// 1 GiB swap cycles price in the seconds; run far enough for the
	// first eviction to land durably.
	if err := c.RunUntil(8000 * ms); err != nil {
		t.Fatal(err)
	}
	if c.Stats().SwapOuts == 0 {
		t.Fatal("setup: no swaps happened before the kill")
	}
	snapshotted := 0
	for _, j := range c.Jobs() {
		if j.snapshotted && len(be.Holders(j)) > 1 {
			snapshotted++
		}
	}
	if snapshotted == 0 {
		t.Fatal("setup: no job has a replicated snapshot")
	}
	if err := c.KillHost("h000"); err != nil {
		t.Fatal(err)
	}
	mustRun(t, c)
	completedAll(t, c)
	st := c.Stats()
	if st.JobsLost == 0 {
		t.Fatal("kill lost no jobs")
	}
	if st.Recovered == 0 {
		t.Fatal("no job recovered from its replica")
	}
	for _, j := range c.Jobs() {
		if j.Host == "h000" {
			t.Errorf("job %d completed on the dead host", j.ID)
		}
	}
}

// TestGenerateTraceDeterministic: a trace is a pure function of its
// config, and different seeds give different traces.
func TestGenerateTraceDeterministic(t *testing.T) {
	cfg := TraceConfig{Seed: 42, Jobs: 200, Tenants: 5, CardMem: 8 << 30}
	a, b := GenerateTrace(cfg), GenerateTrace(cfg)
	if len(a) != 200 || len(b) != 200 {
		t.Fatalf("trace lengths %d/%d, want 200", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at job %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	cfg.Seed = 43
	cDiff := GenerateTrace(cfg)
	same := true
	for i := range a {
		if a[i] != cDiff[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
	// Arrivals are non-decreasing (open loop).
	for i := 1; i < len(a); i++ {
		if a[i].Arrival < a[i-1].Arrival {
			t.Fatalf("arrival order broken at %d", i)
		}
	}
}

// TestTraceRunConservation runs a generated trace end to end on the
// model backend and checks the conservation laws the bench gate relies
// on.
func TestTraceRunConservation(t *testing.T) {
	c, _ := newModel(t, Options{OversubPct: 150, QueueDepth: 64},
		ModelOptions{Hosts: 8, CardsPerHost: 2, CardMem: 8 << 30})
	trace := GenerateTrace(TraceConfig{Seed: 1, Jobs: 120, Tenants: 4, CardMem: 8 << 30})
	if err := c.SubmitTrace(trace); err != nil {
		t.Fatal(err)
	}
	mustRun(t, c)
	st := c.Stats()
	if st.Admitted+st.Rejected != st.Submitted {
		t.Fatalf("admission leak: %d + %d != %d", st.Admitted, st.Rejected, st.Submitted)
	}
	completedAll(t, c)
	if st.Placements < st.Admitted {
		t.Fatalf("placements %d < admitted %d", st.Placements, st.Admitted)
	}
	if u := c.UtilizationPct(); u <= 0 || u > 10000 {
		t.Fatalf("utilization %d out of range", u)
	}
	if st.SwapOuts != st.SwapIns && st.SwapOuts != st.SwapIns+st.JobsLost {
		// Swapped-out jobs may die with the host instead of swapping in.
		t.Logf("note: swap outs %d, ins %d, lost %d", st.SwapOuts, st.SwapIns, st.JobsLost)
	}
}

// TestUtilizationWindowStartsAtFirstPlacement: utilization is measured
// from the first placement, not from t=0, so a delayed trace reports
// the same utilization as the identical trace starting immediately.
func TestUtilizationWindowStartsAtFirstPlacement(t *testing.T) {
	run := func(offset simclock.Duration) int64 {
		c, _ := newModel(t, Options{}, ModelOptions{Hosts: 1, CardsPerHost: 1, CardMem: 1 << 30})
		if err := c.SubmitTrace([]JobSpec{
			simpleSpec(1, "a", 0, offset, 512<<20, 3),
			simpleSpec(2, "a", 0, offset, 256<<20, 3),
		}); err != nil {
			t.Fatal(err)
		}
		mustRun(t, c)
		completedAll(t, c)
		return c.UtilizationPct()
	}
	immediate, delayed := run(0), run(5000*ms)
	if immediate <= 0 {
		t.Fatalf("utilization %d, want positive", immediate)
	}
	if delayed != immediate {
		t.Fatalf("5s arrival delay changed utilization: %d vs %d — window not anchored at first placement",
			delayed, immediate)
	}
}

// TestEvacDestinationNeedsPhysicalRoom: with oversubscription on, a
// card can have commit headroom while its physical memory is full.
// Evacuation moves land resident, so such a card must not be chosen —
// residency must never exceed card memory.
func TestEvacDestinationNeedsPhysicalRoom(t *testing.T) {
	c, _ := newModel(t, Options{OversubPct: 200},
		ModelOptions{Hosts: 3, CardsPerHost: 1, CardMem: 1 << 30, ReplicaK: 2})
	sec := 1000 * ms
	// Jobs 1+2 oversubscribe h000 and churn through the swap path; job 3
	// holds h001 physically full with long bursts (commit headroom
	// remains at 200%), so h001 is the tempting-but-wrong destination —
	// doubly so for the swapped jobs, whose snapshot replicas land there.
	if err := c.SubmitTrace([]JobSpec{
		{ID: 1, Tenant: "a", Arrival: 0, Footprint: 1 << 30, Bursts: 4, BurstLen: 50 * ms, ThinkLen: 3 * sec},
		{ID: 2, Tenant: "a", Arrival: 0, Footprint: 1 << 30, Bursts: 4, BurstLen: 50 * ms, ThinkLen: 3 * sec},
		{ID: 3, Tenant: "b", Arrival: 0, Footprint: 1 << 30, Bursts: 4, BurstLen: 3 * sec, ThinkLen: 10 * ms},
	}); err != nil {
		t.Fatal(err)
	}
	if !stepUntil(t, c, func() bool {
		for _, j := range c.Jobs() {
			if j.Host == "h000" && j.State == StateSwappedOut && j.curOp == opNone {
				return true
			}
		}
		return false
	}) {
		t.Fatal("setup: no job ever sat swapped out on h000")
	}
	if j3 := c.JobByID(3); j3.Host != "h001" {
		t.Fatalf("setup: job 3 on %s, want h001", j3.Host)
	}
	c.ScheduleEvacuation(c.now+1*ms, "h000", 600*sec)
	if !stepUntil(t, c, func() bool { return c.events.Len() == 0 }) {
		t.Fatal("unreachable")
	}
	completedAll(t, c)
	if st := c.Stats(); st.EvacMoves == 0 {
		t.Fatalf("evacuation moved nothing: %+v", st)
	}
}

// failSwapInBackend fails the first `failures` swap-in attempts, then
// behaves like the model.
type failSwapInBackend struct {
	*ModelBackend
	failures int
	calls    int
}

func (b *failSwapInBackend) SwapIn(j *Job, from string) (simclock.Duration, error) {
	b.calls++
	if b.calls <= b.failures {
		return 0, fmt.Errorf("transient swap-in failure %d", b.calls)
	}
	return b.ModelBackend.SwapIn(j, from)
}

// TestServeRetryAfterSwapInFailure: a failed swap-in must schedule its
// own card-targeted retry. The scenario is tuned so both transient
// failures strike when no other event would ever touch the card again
// — without the retry the waiter (and the run) stalls forever.
func TestServeRetryAfterSwapInFailure(t *testing.T) {
	be := &failSwapInBackend{
		ModelBackend: NewModelBackend(ModelOptions{Hosts: 1, CardsPerHost: 1, CardMem: 1 << 30, ReplicaK: 1}),
		failures:     2,
	}
	c := New(Options{OversubPct: 200}, be, obs.New())
	// Job 1 runs, swaps out for job 2, and wants back in while job 2
	// occupies the card; every later swap-in attempt for it happens with
	// an otherwise-empty event queue.
	if err := c.SubmitTrace([]JobSpec{
		{ID: 1, Tenant: "a", Arrival: 0, Footprint: 1 << 30, Bursts: 2, BurstLen: 50 * ms, ThinkLen: 200 * ms},
		{ID: 2, Tenant: "b", Arrival: 0, Footprint: 1 << 30, Bursts: 2, BurstLen: 300 * ms, ThinkLen: 10 * ms},
	}); err != nil {
		t.Fatal(err)
	}
	mustRun(t, c)
	st := c.Stats()
	if st.SwapFails != 2 {
		t.Fatalf("swap failures %d, want the 2 injected ones", st.SwapFails)
	}
	if st.Completed != 2 {
		t.Fatalf("completed %d of 2 — the failed swap-in was never retried: %+v", st.Completed, st)
	}
	completedAll(t, c)
}

// TestRunDeterminism: two controllers over the same trace produce
// byte-identical stats — the control plane is a pure function of its
// inputs.
func TestRunDeterminism(t *testing.T) {
	run := func() Stats {
		c, _ := newModel(t, Options{OversubPct: 200, QueueDepth: 32},
			ModelOptions{Hosts: 6, CardsPerHost: 2, CardMem: 8 << 30})
		trace := GenerateTrace(TraceConfig{Seed: 99, Jobs: 150, Tenants: 6, CardMem: 8 << 30})
		if err := c.SubmitTrace(trace); err != nil {
			t.Fatal(err)
		}
		mustRun(t, c)
		return c.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same trace diverged:\n%+v\n%+v", a, b)
	}
}
