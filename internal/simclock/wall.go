package simclock

import "time"

// WallTimer measures real elapsed wall-clock time of the simulator
// harness itself — the one legitimate wall-clock reading in the tree.
// Everything the paper's figures report is virtual time from the cost
// model; the wall timer exists so snapbench can report how fast the
// *simulator* runs (ns of host CPU per GiB of simulated image), which
// is what bounds fleet-scale experiments. Wall readings are
// machine-dependent and must never feed a deterministic artifact:
// benchmark JSON carries them in fields containing "wall", which the
// analyze regression gate skips.
type WallTimer struct {
	start time.Time
}

// StartWall starts a wall-clock timer.
func StartWall() WallTimer {
	return WallTimer{start: time.Now()}
}

// ElapsedNs returns the real nanoseconds since StartWall.
func (w WallTimer) ElapsedNs() int64 {
	if w.start.IsZero() {
		return 0
	}
	return time.Since(w.start).Nanoseconds()
}

// WallNsPerGiB scales elapsed wall nanoseconds to a per-GiB rate over
// the given number of simulated bytes (0 if bytes is 0).
func WallNsPerGiB(elapsedNs, bytes int64) int64 {
	if bytes <= 0 {
		return 0
	}
	return int64(float64(elapsedNs) * float64(GiB) / float64(bytes))
}
