// Package goroutineleak is a golden fixture for the goroutineleak
// analyzer.
package goroutineleak

import (
	"context"
	"sync"
)

var counter int

func leak() {
	go func() { // want "go func literal has no shutdown signal"
		counter++
	}()
}

func doneChannel(done chan struct{}) {
	go func() {
		<-done
		counter++
	}()
}

func waitGroupArg(wg *sync.WaitGroup) {
	go func(wg *sync.WaitGroup) {
		defer wg.Done()
		counter++
	}(wg)
}

func contextInScope(ctx context.Context) {
	go func() {
		if ctx.Err() == nil {
			counter++
		}
	}()
}

func namedCallee() {
	go leak() // a named callee owns its lifecycle: only literals are flagged
}

func suppressed() {
	go func() { //nolint:goroutineleak // golden fixture: a justified directive suppresses the finding
		counter++
	}()
}
