package snapifyio

import (
	"fmt"
	"io"
	"sync"

	"snapify/internal/obs"
	"snapify/internal/scif"
	"snapify/internal/simclock"
	"snapify/internal/simnet"
	"snapify/internal/vfs"
)

// chunkSizeBuckets are the histogram bounds for per-chunk transfer sizes
// (the staging buffer caps a chunk, so 4 MiB is the common case and the
// 16 MiB bucket only fills under ablation-sized buffers).
var chunkSizeBuckets = []int64{
	64 * simclock.KiB, 256 * simclock.KiB, simclock.MiB, 4 * simclock.MiB, 16 * simclock.MiB,
}

// Daemon is the per-node Snapify-IO daemon: a remote server thread accepts
// SCIF connections from peer daemons and spawns a handler per connection to
// serve the local file system. Each connection carries one stream; the
// daemon keeps per-stream staging slots and assembles striped writes into
// whole files.
type Daemon struct {
	svc     *Service
	node    simnet.NodeID
	fs      vfs.NodeFS
	lst     *scif.Listener
	bufSize int64
	done    chan struct{}

	mu         sync.Mutex
	streams    map[int64]streamInfo
	assemblies map[string]*assembly
}

// streamInfo describes one stream this daemon is currently serving.
type streamInfo struct {
	mode  Mode
	path  string
	slots int
}

// Node returns the daemon's SCIF node.
func (d *Daemon) Node() simnet.NodeID { return d.node }

// ActiveStreams returns the number of streams the daemon is serving.
func (d *Daemon) ActiveStreams() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.streams)
}

func (d *Daemon) registerStream(id int64, info streamInfo) {
	d.mu.Lock()
	if d.streams == nil {
		d.streams = make(map[int64]streamInfo)
	}
	d.streams[id] = info
	d.mu.Unlock()
}

func (d *Daemon) unregisterStream(id int64) {
	d.mu.Lock()
	delete(d.streams, id)
	d.mu.Unlock()
}

// assembly is one striped write in progress: parallel streams deliver
// disjoint ranges of the same remote file, and the daemon commits the
// assembled file once the closed stripes cover the whole declared size
// (so stream open/close order does not matter), or discards it if a
// stripe aborted and no stream remains.
type assembly struct {
	sw      vfs.SparseWriter
	total   int64
	refs    int
	covered int64
	aborted bool
}

// openAssembly joins (or starts) the striped write of path with the given
// total size.
func (d *Daemon) openAssembly(path string, total int64) (*assembly, error) {
	if total < 0 {
		return nil, fmt.Errorf("snapifyio: negative stripe total %d", total)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if a, ok := d.assemblies[path]; ok {
		if a.total != total {
			return nil, fmt.Errorf("snapifyio: stripe total %d for %q, other streams declared %d", total, path, a.total)
		}
		a.refs++
		return a, nil
	}
	sfs, ok := d.fs.(vfs.SparseFS)
	if !ok {
		return nil, fmt.Errorf("snapifyio: file system on %v does not support striped writes", d.node)
	}
	sw, err := sfs.CreateSparse(path, total)
	if err != nil {
		return nil, err
	}
	a := &assembly{sw: sw, total: total, refs: 1}
	d.assemblies[path] = a
	return a, nil
}

// releaseAssembly drops one stripe's reference. A clean close credits the
// stripe's length toward coverage; once closed stripes cover the declared
// total the file commits (stripes are disjoint, so coverage is exact). An
// aborted stripe poisons the assembly, and the last departing stream
// discards it.
func (d *Daemon) releaseAssembly(path string, length int64, abort bool) error {
	d.mu.Lock()
	a, ok := d.assemblies[path]
	if !ok {
		d.mu.Unlock()
		return nil
	}
	a.refs--
	if abort {
		a.aborted = true
	} else {
		a.covered += length
	}
	complete := !a.aborted && a.covered >= a.total
	discard := a.aborted && a.refs == 0
	if complete || discard {
		delete(d.assemblies, path)
	}
	d.mu.Unlock()
	if complete {
		return a.sw.Commit()
	}
	if discard {
		a.sw.Abort()
	}
	return nil
}

// remoteServer is the daemon's remote server thread (Section 6): it accepts
// SCIF connections and spawns a remote handler per connection.
func (d *Daemon) remoteServer() {
	for {
		ep, err := d.lst.Accept()
		if err != nil {
			return // listener closed: daemon shutting down
		}
		go d.remoteHandler(ep)
	}
}

// remoteHandler serves one file stream for a peer daemon.
func (d *Daemon) remoteHandler(ep *scif.Endpoint) {
	defer ep.Close()

	raw, _, err := ep.Recv()
	if err != nil {
		return
	}
	if len(raw) > 0 && raw[0] == msgMetricsDump {
		// SIGUSR1 analogue: dump the metrics registry and hang up.
		d.reply(ep, func(w *wire) {
			w.u8(msgMetricsResp)
			w.str(d.svc.obs.MetricsOf().Expose())
		})
		return
	}
	u, err := expect(raw, msgOpen)
	if err != nil {
		return
	}
	mode := Mode(u.u8())
	streamID := u.i64()
	slots := int(u.u8())
	bufSize := u.i64()
	windows := make([]int64, 0, slots)
	for i := 0; i < slots; i++ {
		windows = append(windows, u.i64())
	}
	striped := u.u8() == 1
	st := Stripe{Offset: u.i64(), Length: u.i64(), Total: u.i64()}
	path := u.str()

	openErr := func(msg string) {
		d.reply(ep, func(w *wire) { w.u8(msgOpenResp); w.str(msg); w.i64(0) })
	}
	if bufSize != d.bufSize {
		// Mismatched staging sizes would deadlock the chunk protocol.
		openErr("staging buffer size mismatch")
		return
	}
	if slots < 1 || slots > MaxSlots {
		openErr(fmt.Sprintf("stream wants %d staging slots, daemon allows 1..%d", slots, MaxSlots))
		return
	}

	d.registerStream(streamID, streamInfo{mode: mode, path: path, slots: slots})
	defer d.unregisterStream(streamID)

	switch mode {
	case Write:
		d.serveWrite(ep, streamID, path, windows, striped, st)
	case Read:
		d.serveRead(ep, streamID, path, windows, striped, st)
	}
}

func (d *Daemon) reply(ep *scif.Endpoint, fill func(*wire)) {
	w := &wire{}
	fill(w)
	ep.Send(w.buf) //nolint:errcheck // peer teardown is handled by Recv errors
}

// serveWrite drains the peer's staging slots into a local file — appended
// chunk by chunk in the classic mode, or written at explicit offsets into
// a shared striped assembly.
func (d *Daemon) serveWrite(ep *scif.Endpoint, streamID int64, path string, windows []int64, striped bool, st Stripe) {
	var fw vfs.Writer
	var asm *assembly
	var err error
	if striped {
		if st.Offset < 0 || st.Length < 0 || st.Offset+st.Length > st.Total {
			d.reply(ep, func(w *wire) {
				w.u8(msgOpenResp)
				w.str(fmt.Sprintf("stripe [%d,%d) outside file of %d bytes", st.Offset, st.Offset+st.Length, st.Total))
				w.i64(0)
			})
			return
		}
		asm, err = d.openAssembly(path, st.Total)
	} else {
		fw, err = d.fs.Create(path)
	}
	if err != nil {
		d.reply(ep, func(w *wire) { w.u8(msgOpenResp); w.str(err.Error()); w.i64(0) })
		return
	}
	abort := func() {
		if striped {
			d.releaseAssembly(path, 0, true) //nolint:errcheck // abort path: discarding the partial assembly is the handling
		} else {
			fw.Abort()
		}
	}
	d.reply(ep, func(w *wire) { w.u8(msgOpenResp); w.str(""); w.i64(0) })

	staging := make([]*slot, len(windows))
	for i := range staging {
		staging[i] = newSlot(d.bufSize)
	}
	for {
		raw, _, err := ep.Recv()
		if err != nil {
			abort() // peer vanished mid-stream
			return
		}
		u := &unwire{buf: raw}
		switch u.u8() {
		case msgChunkReady:
			sid := u.i64()
			sl := int(u.u8())
			n := u.i64()
			fileOff := u.i64()
			nack := func(msg string) {
				d.reply(ep, func(w *wire) {
					w.u8(msgChunkAck)
					w.i64(streamID)
					w.u8(uint8(sl))
					w.str(msg)
					w.dur(0)
					w.dur(0)
				})
			}
			if sid != streamID {
				nack(fmt.Sprintf("chunk for stream %d on stream %d", sid, streamID))
				abort()
				return
			}
			if sl < 0 || sl >= len(staging) {
				nack(fmt.Sprintf("chunk names slot %d of %d", sl, len(staging)))
				abort()
				return
			}
			// Drain the peer's registered buffer with scif_vreadfrom.
			rdma, err := ep.VReadFrom(staging[sl], 0, n, windows[sl])
			if err != nil {
				abort()
				return
			}
			content := staging[sl].SnapshotRange(0, n)
			var fsWrite simclock.Duration
			if striped {
				if fileOff < st.Offset || fileOff+n > st.Offset+st.Length {
					nack(fmt.Sprintf("chunk [%d,%d) outside stripe [%d,%d)", fileOff, fileOff+n, st.Offset, st.Offset+st.Length))
					abort()
					return
				}
				fsWrite, err = asm.sw.WriteBlobAt(fileOff, content)
			} else {
				if fileOff >= 0 {
					nack("positioned chunk on an unstriped stream")
					abort()
					return
				}
				fsWrite, err = fw.WriteBlob(content)
			}
			if err != nil {
				nack(err.Error())
				abort()
				return
			}
			d.reply(ep, func(w *wire) {
				w.u8(msgChunkAck)
				w.i64(streamID)
				w.u8(uint8(sl))
				w.str("")
				w.dur(rdma)
				w.dur(fsWrite)
			})
		case msgClose:
			var err error
			if striped {
				err = d.releaseAssembly(path, st.Length, false)
			} else {
				err = fw.Close()
			}
			msg := ""
			if err != nil {
				msg = err.Error()
			}
			d.reply(ep, func(w *wire) { w.u8(msgCloseResp); w.str(msg) })
			return
		case msgAbort:
			abort()
			return
		default:
			abort()
			return
		}
	}
}

// serveRead streams a local file (or a byte range of it) into the peer's
// staging slots.
func (d *Daemon) serveRead(ep *scif.Endpoint, streamID int64, path string, windows []int64, striped bool, st Stripe) {
	var fr vfs.Reader
	var err error
	if striped {
		rfs, ok := d.fs.(vfs.RangeFS)
		if !ok {
			err = fmt.Errorf("snapifyio: file system on %v does not support range reads", d.node)
		} else {
			fr, err = rfs.OpenRange(path, st.Offset, st.Length)
		}
	} else {
		fr, err = d.fs.Open(path)
	}
	if err != nil {
		d.reply(ep, func(w *wire) { w.u8(msgOpenResp); w.str(err.Error()); w.i64(0) })
		return
	}
	d.reply(ep, func(w *wire) { w.u8(msgOpenResp); w.str(""); w.i64(fr.Size()) })

	staging := make([]*slot, len(windows))
	for i := range staging {
		staging[i] = newSlot(d.bufSize)
	}
	for {
		raw, _, err := ep.Recv()
		if err != nil {
			return
		}
		u := &unwire{buf: raw}
		switch u.u8() {
		case msgPull:
			sid := u.i64()
			sl := int(u.u8())
			nack := func(msg string) {
				d.reply(ep, func(w *wire) {
					w.u8(msgChunkHere)
					w.i64(streamID)
					w.u8(uint8(sl))
					w.str(msg)
					w.i64(0)
					w.dur(0)
					w.dur(0)
				})
			}
			if sid != streamID {
				nack(fmt.Sprintf("pull for stream %d on stream %d", sid, streamID))
				return
			}
			if sl < 0 || sl >= len(staging) {
				nack(fmt.Sprintf("pull names slot %d of %d", sl, len(staging)))
				return
			}
			chunk, fsRead, err := fr.Next(d.bufSize)
			if err == io.EOF {
				d.reply(ep, func(w *wire) {
					w.u8(msgChunkHere)
					w.i64(streamID)
					w.u8(uint8(sl))
					w.str("")
					w.i64(0)
					w.dur(0)
					w.dur(0)
				})
				continue // peer will close
			}
			if err != nil {
				nack(err.Error())
				return
			}
			staging[sl].WriteBlob(0, chunk)
			// Push into the peer's registered buffer with scif_vwriteto.
			rdma, err := ep.VWriteTo(staging[sl], 0, chunk.Len(), windows[sl])
			if err != nil {
				return
			}
			d.reply(ep, func(w *wire) {
				w.u8(msgChunkHere)
				w.i64(streamID)
				w.u8(uint8(sl))
				w.str("")
				w.i64(chunk.Len())
				w.dur(fsRead)
				w.dur(rdma)
			})
		case msgClose, msgAbort:
			d.reply(ep, func(w *wire) { w.u8(msgCloseResp); w.str("") })
			return
		default:
			return
		}
	}
}

// open implements the library side: connect to the target daemon, register
// the staging slots, declare the stream (ID, slots, stripe), and return
// the file handle. The stream registers a bulk flow on the fabric for its
// lifetime, so concurrent streams share link bandwidth honestly.
func (d *Daemon) open(target simnet.NodeID, path string, mode Mode, opts OpenOptions) (*File, error) {
	slots := opts.Slots
	if slots == 0 {
		slots = 1
	}
	if slots < 1 || slots > MaxSlots {
		return nil, fmt.Errorf("snapifyio: %d staging slots requested, allowed 1..%d", slots, MaxSlots)
	}
	st := opts.Stripe
	if st.enabled() {
		if st.Offset < 0 || st.Length <= 0 {
			return nil, fmt.Errorf("snapifyio: bad stripe [%d,%d)", st.Offset, st.Offset+st.Length)
		}
		if mode == Write && st.Offset+st.Length > st.Total {
			return nil, fmt.Errorf("snapifyio: stripe [%d,%d) outside declared file of %d bytes", st.Offset, st.Offset+st.Length, st.Total)
		}
	}

	model := d.svc.net.Fabric().Model()
	ep, err := d.svc.net.Connect(d.node, scif.Addr{Node: target, Port: Port})
	if err != nil {
		return nil, err
	}
	staging := make([]*slot, slots)
	windows := make([]int64, slots)
	var regCost simclock.Duration
	for i := range staging {
		staging[i] = newSlot(d.bufSize)
		win, rc, err := ep.Register(staging[i], 0, d.bufSize)
		if err != nil {
			ep.Close()
			return nil, err
		}
		windows[i] = win.Offset
		regCost += rc
	}
	streamID := d.svc.nextStreamID.Add(1)

	w := &wire{}
	w.u8(msgOpen)
	w.u8(uint8(mode))
	w.i64(streamID)
	w.u8(uint8(slots))
	w.i64(d.bufSize)
	for _, win := range windows {
		w.i64(win)
	}
	if st.enabled() {
		w.u8(1)
	} else {
		w.u8(0)
	}
	w.i64(st.Offset)
	w.i64(st.Length)
	w.i64(st.Total)
	w.str(path)
	if _, err := ep.Send(w.buf); err != nil {
		ep.Close()
		return nil, err
	}
	raw, _, err := ep.Recv()
	if err != nil {
		ep.Close()
		return nil, err
	}
	u, err := expect(raw, msgOpenResp)
	if err != nil {
		ep.Close()
		return nil, err
	}
	if msg := u.str(); msg != "" {
		ep.Close()
		return nil, &RemoteError{Node: target, Path: path, Msg: msg}
	}
	size := u.i64()

	// The stream is a bulk flow on the PCIe link for as long as it is
	// open: writes move node -> target, reads target -> node.
	fab := d.svc.net.Fabric()
	var release func()
	if mode == Write {
		release = fab.RegisterFlow(d.node, target)
	} else {
		release = fab.RegisterFlow(target, d.node)
	}

	mx := d.svc.obs.MetricsOf()
	nodeL := obs.L("node", d.node.String())
	modeL := obs.L("mode", mode.String())
	mx.Counter("snapifyio_streams_opened_total",
		"Streams opened through snapifyio_open.", nodeL, modeL).Inc()

	f := &File{
		node:     d.node,
		target:   target,
		mode:     mode,
		ep:       ep,
		slots:    staging,
		bufSize:  d.bufSize,
		model:    model,
		size:     size,
		streamID: streamID,
		release:  release,
		fileOff:  -1,
		bytesCtr: mx.Counter("snapifyio_stream_bytes_total",
			"Bytes streamed through Snapify-IO handles.", nodeL, modeL),
		chunkHist: mx.Histogram("snapifyio_chunk_bytes",
			"Per-chunk sizes moved through the staging slots.", chunkSizeBuckets, nodeL, modeL),
		abortCtr: mx.Counter("snapifyio_aborts_total",
			"Streams discarded via Abort.", nodeL),
		errCtr: mx.Counter("snapifyio_remote_errors_total",
			"Errors reported by the remote daemon on an open stream.", nodeL),
		// The open handshake: UNIX socket to the local daemon, SCIF
		// connect, window registration, request/response.
		pending: model.UnixSocketLatency + 2*model.SCIFMsgLatency + regCost,
	}
	if st.enabled() && mode == Write {
		f.fileOff = st.Offset
		f.stripeEnd = st.Offset + st.Length
	}
	return f, nil
}

// RemoteError is a failure reported by the remote daemon.
type RemoteError struct {
	Node simnet.NodeID
	Path string
	Msg  string
}

func (e *RemoteError) Error() string {
	return "snapifyio: " + e.Node.String() + ":" + e.Path + ": " + e.Msg
}
