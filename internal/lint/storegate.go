package lint

import "strconv"

// storegateHashImports are the digest-primitive packages the storegate
// rule pins to the snapshot store. SHA-256 is the store's chunk key; the
// other common digests are gated too so the rule can't be dodged by
// "temporarily" keying chunks with a different hash elsewhere.
var storegateHashImports = []string{
	"crypto/sha256",
	"crypto/sha512",
	"crypto/sha1",
	"crypto/md5",
}

// Storegate reports non-test imports of the digest primitives outside
// internal/snapstore. Chunk identity is the store's one load-bearing
// invariant: a chunk file's name IS the SHA-256 of its content, and
// every layer above (the have/need negotiation, the dedup accounting,
// GC's mark set, Verify) assumes exactly one implementation computed it.
// A second digest site — a layer hashing chunks "the same way" itself —
// could drift (chunking geometry, hex casing, a truncated digest) and
// silently corrupt dedup, so other packages must take the function as a
// value (snapstore.Digest) instead of re-deriving it. Tests are exempt:
// asserting stored bytes against an independently computed digest is how
// the invariant is checked.
var Storegate = &Analyzer{
	Name: "storegate",
	Doc:  "chunk digests are computed only by internal/snapstore; other packages pass snapstore.Digest as a value instead of importing hash primitives",
	Run:  runStoregate,
}

func runStoregate(p *Pass) {
	if pathHasSuffix(p.Pkg.Path, "internal/snapstore") {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			for _, gated := range storegateHashImports {
				if path == gated {
					p.Reportf(imp.Pos(), "package %s imports %s but chunk digests are computed only by internal/snapstore; take snapstore.Digest as a value instead", p.Pkg.Path, path)
				}
			}
		}
	}
}
