// Package snapifyio implements Snapify-IO, the RDMA-based remote file
// access service of Section 6.
//
// Snapify-IO consists of a user-level library and one long-running daemon
// per SCIF node. A process calls Open with a SCIF node ID, a path valid on
// that node, and an access mode; it gets back a file handle it can stream
// through (the real system returns a UNIX file descriptor that BLCR writes
// to directly — here the handle implements stream.Sink/stream.Source, which
// is the same role). The data path is the paper's, stage for stage:
//
//	user process ⇄ (UNIX socket) ⇄ local daemon ⇄ (4 MiB registered RDMA
//	buffer over SCIF) ⇄ remote daemon ⇄ remote file system
//
// The local handler fills the staging buffer, notifies the remote daemon
// with a SCIF message, the remote side moves the buffer with
// scif_vreadfrom/scif_vwriteto, touches the file system, and acknowledges
// so the buffer can be reused. Every leg charges its virtual cost, and the
// per-chunk stage costs are reported to the caller so the checkpointer can
// compose them into a pipelined end-to-end time.
package snapifyio

import (
	"errors"
	"fmt"
	"sync"

	"snapify/internal/scif"
	"snapify/internal/simclock"
	"snapify/internal/simnet"
	"snapify/internal/vfs"
)

// Port is the predetermined SCIF port every Snapify-IO daemon listens on.
const Port = 3500

// DefaultBufSize is the registered RDMA staging buffer size. The paper
// picks 4 MiB to balance memory footprint against transfer latency.
const DefaultBufSize = 4 * simclock.MiB

// Mode is a file access mode. A handle is read-only or write-only, never
// both, matching snapifyio_open.
type Mode int

const (
	// Read opens a remote file for reading.
	Read Mode = iota
	// Write creates a remote file for writing.
	Write
)

func (m Mode) String() string {
	if m == Read {
		return "read"
	}
	return "write"
}

// Errors returned by the service.
var (
	ErrNoDaemon   = errors.New("snapifyio: no daemon on node")
	ErrFileClosed = errors.New("snapifyio: file closed")
)

// Service manages the per-node daemons of one Xeon Phi server.
type Service struct {
	net *scif.Network

	mu      sync.Mutex
	daemons map[simnet.NodeID]*Daemon
}

// NewService returns a service with no daemons running.
func NewService(net *scif.Network) *Service {
	return &Service{net: net, daemons: make(map[simnet.NodeID]*Daemon)}
}

// StartDaemon launches the Snapify-IO daemon on node, serving its local
// file system fs, with the default 4 MiB staging buffer.
func (s *Service) StartDaemon(node simnet.NodeID, fs vfs.NodeFS) (*Daemon, error) {
	return s.StartDaemonBuf(node, fs, DefaultBufSize)
}

// StartDaemonBuf launches a daemon with a specific staging buffer size
// (the ablation of the paper's 4 MiB choice sweeps this; all daemons of a
// service must agree or streams are rejected).
func (s *Service) StartDaemonBuf(node simnet.NodeID, fs vfs.NodeFS, bufSize int64) (*Daemon, error) {
	if bufSize <= 0 {
		return nil, fmt.Errorf("snapifyio: non-positive staging buffer %d", bufSize)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.daemons[node]; dup {
		return nil, fmt.Errorf("snapifyio: daemon already running on %v", node)
	}
	l, err := s.net.Listen(node, Port)
	if err != nil {
		return nil, fmt.Errorf("snapifyio: binding daemon port on %v: %w", node, err)
	}
	d := &Daemon{
		svc:     s,
		node:    node,
		fs:      fs,
		lst:     l,
		bufSize: bufSize,
		done:    make(chan struct{}),
	}
	s.daemons[node] = d
	go d.remoteServer()
	return d, nil
}

// Daemon returns the daemon on node, or an error if none runs.
func (s *Service) Daemon(node simnet.NodeID) (*Daemon, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.daemons[node]
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrNoDaemon, node)
	}
	return d, nil
}

// Open is the library entry point (snapifyio_open): a process on localNode
// opens the file at path on targetNode in the given mode. The returned
// handle streams through the local daemon.
func (s *Service) Open(localNode, targetNode simnet.NodeID, path string, mode Mode) (*File, error) {
	d, err := s.Daemon(localNode)
	if err != nil {
		return nil, err
	}
	return d.open(targetNode, path, mode)
}

// Stop shuts down all daemons.
func (s *Service) Stop() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for node, d := range s.daemons {
		d.lst.Close() //nolint:errcheck // service stop: a close error on the accept listener has no recovery
		close(d.done)
		delete(s.daemons, node)
	}
}
