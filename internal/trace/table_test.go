package trace

import (
	"strings"
	"testing"
	"time"
)

func TestTableAlignment(t *testing.T) {
	tbl := New("Title", "Name", "Value")
	tbl.Row("a", 1)
	tbl.Row("longer-name", 22)
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != "Title" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "Name") || !strings.Contains(lines[1], "Value") {
		t.Errorf("header = %q", lines[1])
	}
	// Column alignment: "Value" column starts at the same offset everywhere.
	idx := strings.Index(lines[1], "Value")
	if got := strings.Index(lines[3], "1"); got != idx {
		t.Errorf("value misaligned: header col %d, row col %d\n%s", idx, got, out)
	}
}

func TestFormatters(t *testing.T) {
	cases := []struct{ got, want string }{
		{Seconds(2500 * time.Millisecond), "2.50s"},
		{Millis(1500 * time.Microsecond), "1.5ms"},
		{Bytes(512), "512B"},
		{Bytes(2 * 1024), "2.0KiB"},
		{Bytes(3 * 1024 * 1024), "3.0MiB"},
		{Bytes(5 << 30), "5.00GiB"},
		{Percent(0.0136), "1.36%"},
		{Speedup(6.28), "6.3x"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("got %q, want %q", c.got, c.want)
		}
	}
}

func TestBarChartRendering(t *testing.T) {
	c := NewBarChart("Checkpoint breakdown", "s", "pause", "capture")
	c.Bar("SS", []float64{4.8, 1.1}, "")
	c.Bar("MC", []float64{0.05, 0.3}, "(fastest)")
	out := c.String()
	if !strings.Contains(out, "Checkpoint breakdown") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "key: █ pause ▓ capture") {
		t.Errorf("missing key:\n%s", out)
	}
	if !strings.Contains(out, "5.90s") {
		t.Errorf("missing total:\n%s", out)
	}
	if !strings.Contains(out, "(fastest)") {
		t.Error("missing note")
	}
	// The longest bar belongs to SS.
	lines := strings.Split(out, "\n")
	var ssBlocks, mcBlocks int
	for _, l := range lines {
		if strings.Contains(l, "SS") {
			ssBlocks = strings.Count(l, "█") + strings.Count(l, "▓")
		}
		if strings.Contains(l, "MC") {
			mcBlocks = strings.Count(l, "█") + strings.Count(l, "▓")
		}
	}
	if ssBlocks <= mcBlocks {
		t.Errorf("SS bar (%d cells) should dwarf MC (%d)", ssBlocks, mcBlocks)
	}
	// Tiny non-zero segments still show at least one cell.
	if mcBlocks < 2 {
		t.Errorf("MC segments collapsed: %d cells", mcBlocks)
	}
}
