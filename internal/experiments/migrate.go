package experiments

import (
	"encoding/json"
	"fmt"
	"time"

	"snapify/internal/coi"
	"snapify/internal/core"
	"snapify/internal/obs"
	"snapify/internal/phi"
	"snapify/internal/platform"
	"snapify/internal/simclock"
	"snapify/internal/trace"
	"snapify/internal/workloads"
)

// MigrateSweepSizes is the full image grid: live-migration downtime must
// stay roughly flat across it while stop-the-world downtime grows
// linearly, because the workload's per-call dirty set is fixed.
var MigrateSweepSizes = []int64{
	1 * simclock.GiB, 2 * simclock.GiB, 4 * simclock.GiB, 8 * simclock.GiB,
}

// MigrateSweepSmokeSizes is the CI grid: small images, same shape rules.
var MigrateSweepSmokeSizes = []int64{128 * simclock.MiB, 256 * simclock.MiB}

// MigrateSweepRounds bounds each live migration's pre-copy iterations.
const MigrateSweepRounds = 4

// MigrateRow is one image size's stop-the-world vs live comparison.
type MigrateRow struct {
	ImageBytes int64 `json:"image_bytes"`
	// StwDowntimeNs is the stop-the-world migration's downtime: the
	// process stands still for the entire capture and restore.
	StwDowntimeNs int64 `json:"stw_downtime_ns"`
	// LiveDowntimeNs is the live migration's downtime: pause, final delta
	// capture, adoption restore, resume.
	LiveDowntimeNs int64 `json:"live_downtime_ns"`
	// DowntimeRatio is live/stw — the headline win.
	DowntimeRatio float64 `json:"downtime_ratio"`
	// Rounds is how many pre-copy rounds ran before the switch-over.
	Rounds int `json:"rounds"`
	// PrecopyShippedBytes is what the rounds moved while the process ran.
	PrecopyShippedBytes int64 `json:"precopy_shipped_bytes"`
	// FinalDirtyBytes is the last round's dirty set — what was left for
	// the paused final capture.
	FinalDirtyBytes int64 `json:"final_dirty_bytes"`
	// ChecksumsMatch is the transparency probe: the live-migrated, the
	// stop-the-world-migrated, and the undisturbed run all finish with the
	// same device-side checksum.
	ChecksumsMatch bool `json:"checksums_match"`
	// WallNs is the real wall-clock time the harness spent on this size
	// (all three runs) — machine-dependent, excluded from the gate.
	WallNs int64 `json:"wall_ns"`
}

// MigrateResult is the full sweep.
type MigrateResult struct {
	Benchmark string       `json:"benchmark"`
	Rows      []MigrateRow `json:"rows"`
	// RoundSpans / DowntimeSpans count the largest run's precopy_round and
	// migration_downtime spans on the trace (observability acceptance).
	RoundSpans    int `json:"round_spans"`
	DowntimeSpans int `json:"downtime_spans"`
	// ChunksAfterGC is the largest live run's store population after every
	// manifest was released and a GC ran: zero, or a refcount leaked.
	ChunksAfterGC int `json:"chunks_after_gc"`
	// WallTotalNs / WallNsPerGiB are the harness's own wall-clock cost,
	// normalized per GiB of simulated image migrated (three runs per size).
	WallTotalNs  int64 `json:"wall_total_ns"`
	WallNsPerGiB int64 `json:"wall_ns_per_gib"`

	tracer *obs.Tracer
}

// TraceJSON exports the largest live run's virtual-clock trace as Chrome
// trace-event JSON: the precopy_round spans on the host track, the
// per-round precopy_stream/precopy_digest work on the card tracks, and
// the migration_downtime span marking the switch-over.
func (r *MigrateResult) TraceJSON() []byte { return r.tracer.ChromeTrace() }

// migrateSpec is the sweep's workload at one image size: the heap scales,
// the per-call dirty set does not (workloads touch a fixed working set
// each call), so pre-copy converges to the same final delta at every
// size. InPerCall must stay nonzero and within LocalStore: the kernel
// checksums the input window, and a zero transfer would leave it reading
// the buffer's per-launch background seed, making the checksum depend on
// the instance rather than the computation.
func migrateSpec(imageBytes int64) workloads.Spec {
	return workloads.Spec{
		Code: "MG", Name: "migration sweep",
		HostMem:        16 * simclock.MiB,
		DeviceMem:      imageBytes,
		LocalStore:     4 * simclock.MiB,
		Calls:          10,
		StepsPerCall:   2,
		ComputePerCall: 2 * time.Millisecond,
		InPerCall:      1 * simclock.MiB,
	}
}

// migrateOne runs both migration flavors at one image size on fresh
// platforms (deterministic replays, so the checksums are comparable) and
// returns the row plus the live platform for trace/store inspection.
func migrateOne(imageBytes int64) (*MigrateRow, *platform.Platform, error) {
	newPlat := func() (*platform.Platform, error) {
		p, err := platform.New(platform.Config{Server: phi.ServerConfig{
			Devices: 2,
			Device:  phi.DeviceConfig{MemBytes: imageBytes + 2*simclock.GiB},
		}})
		if err != nil {
			return nil, err
		}
		if err := coi.StartDaemons(p); err != nil {
			return nil, err
		}
		return p, nil
	}
	spec := migrateSpec(imageBytes)
	row := &MigrateRow{ImageBytes: imageBytes}
	wall := simclock.StartWall()

	// Undisturbed reference checksum.
	refPlat, err := newPlat()
	if err != nil {
		return nil, nil, err
	}
	refSum, err := func() (uint64, error) {
		defer coi.StopDaemons(refPlat)
		defer refPlat.IO.Stop()
		in, err := workloads.Launch(refPlat, spec, 1)
		if err != nil {
			return 0, err
		}
		defer in.Close()
		return in.Run()
	}()
	if err != nil {
		return nil, nil, fmt.Errorf("reference run: %w", err)
	}

	// Stop-the-world.
	stwPlat, err := newPlat()
	if err != nil {
		return nil, nil, err
	}
	stwSum, err := func() (uint64, error) {
		defer coi.StopDaemons(stwPlat)
		defer stwPlat.IO.Stop()
		in, err := workloads.Launch(stwPlat, spec, 1)
		if err != nil {
			return 0, err
		}
		defer in.Close()
		if _, err := in.RunCalls(2); err != nil {
			return 0, err
		}
		_, snap, err := core.Migrate(in.CP, core.MigrateOptions{DeviceTo: 2, Path: "/bench/mig/stw"})
		if err != nil {
			return 0, err
		}
		row.StwDowntimeNs = int64(snap.Report.Downtime)
		return in.Run()
	}()
	if err != nil {
		return nil, nil, fmt.Errorf("stop-the-world: %w", err)
	}

	// Live: drive the session by hand, one offload call between rounds —
	// the process computes while its image moves.
	livePlat, err := newPlat()
	if err != nil {
		return nil, nil, err
	}
	liveSum, err := func() (uint64, error) {
		in, err := workloads.Launch(livePlat, spec, 1)
		if err != nil {
			return 0, err
		}
		defer in.Close()
		if _, err := in.RunCalls(2); err != nil {
			return 0, err
		}
		m, err := core.NewMigration(in.CP, core.MigrateOptions{
			DeviceTo: 2,
			Path:     "/bench/mig/live",
			Precopy:  core.PrecopyOptions{MaxRounds: MigrateSweepRounds},
		})
		if err != nil {
			return 0, err
		}
		for {
			rec, done, err := m.Round()
			if err != nil {
				return 0, fmt.Errorf("round %d: %w", rec.Round, err)
			}
			row.Rounds = rec.Round
			row.PrecopyShippedBytes += rec.ShippedBytes
			row.FinalDirtyBytes = rec.DirtyBytes
			if done {
				break
			}
			if !in.Done() {
				if _, err := in.RunCalls(1); err != nil {
					return 0, err
				}
			}
		}
		if _, err := m.Finish(); err != nil {
			return 0, err
		}
		row.LiveDowntimeNs = int64(m.Snapshot().Report.Downtime)
		return in.Run()
	}()
	if err != nil {
		coi.StopDaemons(livePlat)
		livePlat.IO.Stop()
		return nil, nil, fmt.Errorf("live: %w", err)
	}

	if row.StwDowntimeNs > 0 {
		row.DowntimeRatio = float64(row.LiveDowntimeNs) / float64(row.StwDowntimeNs)
	}
	row.ChecksumsMatch = refSum == stwSum && refSum == liveSum
	row.WallNs = wall.ElapsedNs()
	return row, livePlat, nil
}

// MigrateSweep compares stop-the-world and live migration downtime across
// the image-size grid at a fixed per-call dirty rate. Each size runs an
// undisturbed reference, a stop-the-world migration, and a session-driven
// live migration with work interleaved between rounds; the largest live
// run's platform is kept for trace and store-hygiene inspection.
func MigrateSweep(sizes []int64) (*MigrateResult, error) {
	if len(sizes) == 0 {
		return nil, fmt.Errorf("migrate sweep: empty size grid")
	}
	res := &MigrateResult{Benchmark: "migrate-sweep"}
	sweepWall := simclock.StartWall()
	var migratedBytes int64
	var last *platform.Platform
	for _, size := range sizes {
		migratedBytes += 3 * size
		row, plat, err := migrateOne(size)
		if err != nil {
			if last != nil {
				coi.StopDaemons(last)
				last.IO.Stop()
			}
			return nil, fmt.Errorf("migrate sweep %s: %w", sizeLabel(size), err)
		}
		res.Rows = append(res.Rows, *row)
		if last != nil {
			coi.StopDaemons(last)
			last.IO.Stop()
		}
		last = plat
	}
	defer coi.StopDaemons(last)
	defer last.IO.Stop()

	res.tracer = last.Obs.TracerOf()
	for _, sp := range res.tracer.Spans() {
		switch sp.Name {
		case "precopy_round":
			res.RoundSpans++
		case "migration_downtime":
			res.DowntimeSpans++
		}
	}

	// Store hygiene on the largest run: release everything, collect, and
	// the store must be empty — pre-copy's intermediate manifests and the
	// aborted-round machinery may not leak a single chunk.
	for _, p := range last.Store.List() {
		if _, err := last.Store.Release(p); err != nil {
			return nil, fmt.Errorf("releasing %s: %w", p, err)
		}
	}
	if _, _, err := last.Store.GC(0); err != nil {
		return nil, fmt.Errorf("gc: %w", err)
	}
	res.ChunksAfterGC = last.Store.Stats().Chunks
	res.WallTotalNs = sweepWall.ElapsedNs()
	res.WallNsPerGiB = simclock.WallNsPerGiB(res.WallTotalNs, migratedBytes)
	return res, nil
}

// Render prints the sweep in the tables' layout.
func (r *MigrateResult) Render() string {
	t := trace.New("Migration: stop-the-world vs live (pre-copy) downtime, fixed dirty rate",
		"Image", "STW downtime (s)", "Live downtime (ms)", "Ratio", "Rounds", "Pre-copy ship (MiB)", "Checksums")
	for _, row := range r.Rows {
		t.Row(sizeLabel(row.ImageBytes),
			fmt.Sprintf("%.2f", simclock.Duration(row.StwDowntimeNs).Seconds()),
			fmt.Sprintf("%.0f", simclock.Duration(row.LiveDowntimeNs).Seconds()*1000),
			fmt.Sprintf("%.3f", row.DowntimeRatio),
			fmt.Sprintf("%d", row.Rounds),
			fmt.Sprintf("%d", row.PrecopyShippedBytes/simclock.MiB),
			fmt.Sprintf("%v", row.ChecksumsMatch))
	}
	return t.String() + fmt.Sprintf("\nspans: %d precopy_round, %d migration_downtime; chunks after release-all + GC: %d\nharness wall-clock: %.1f ms total, %d ns per simulated GiB",
		r.RoundSpans, r.DowntimeSpans, r.ChunksAfterGC,
		float64(r.WallTotalNs)/1e6, r.WallNsPerGiB)
}

// CheckShape verifies the acceptance claims: live downtime undercuts
// stop-the-world at every size and by at least 6.7x (ratio <= 0.15) at
// the largest; stop-the-world downtime grows with the image while live
// downtime stays roughly flat (max/min <= 3x); every live run converged
// through at least two rounds with a final delta far below the image;
// all three checksums agree at every size; the trace carries the
// per-round and downtime spans; and the store is empty after GC.
func (r *MigrateResult) CheckShape() error {
	if len(r.Rows) == 0 {
		return fmt.Errorf("migrate sweep: no rows")
	}
	minLive, maxLive := r.Rows[0].LiveDowntimeNs, r.Rows[0].LiveDowntimeNs
	for i, row := range r.Rows {
		if !row.ChecksumsMatch {
			return fmt.Errorf("migrate sweep %s: checksums diverge — a migration was not byte-identical", sizeLabel(row.ImageBytes))
		}
		if row.LiveDowntimeNs >= row.StwDowntimeNs {
			return fmt.Errorf("migrate sweep %s: live downtime %v not below stop-the-world %v",
				sizeLabel(row.ImageBytes), simclock.Duration(row.LiveDowntimeNs), simclock.Duration(row.StwDowntimeNs))
		}
		if row.Rounds < 2 {
			return fmt.Errorf("migrate sweep %s: only %d pre-copy rounds; convergence needs at least a full pass and a delta pass",
				sizeLabel(row.ImageBytes), row.Rounds)
		}
		if row.FinalDirtyBytes*4 > row.ImageBytes {
			return fmt.Errorf("migrate sweep %s: final delta %d bytes did not converge below a quarter of the image",
				sizeLabel(row.ImageBytes), row.FinalDirtyBytes)
		}
		if i > 0 && row.StwDowntimeNs <= r.Rows[i-1].StwDowntimeNs {
			return fmt.Errorf("migrate sweep: stop-the-world downtime must grow with the image, but %s (%v) <= %s (%v)",
				sizeLabel(row.ImageBytes), simclock.Duration(row.StwDowntimeNs),
				sizeLabel(r.Rows[i-1].ImageBytes), simclock.Duration(r.Rows[i-1].StwDowntimeNs))
		}
		if row.LiveDowntimeNs < minLive {
			minLive = row.LiveDowntimeNs
		}
		if row.LiveDowntimeNs > maxLive {
			maxLive = row.LiveDowntimeNs
		}
	}
	last := r.Rows[len(r.Rows)-1]
	if last.DowntimeRatio > 0.15 {
		return fmt.Errorf("migrate sweep: live/stw downtime ratio %.3f at %s, want <= 0.15",
			last.DowntimeRatio, sizeLabel(last.ImageBytes))
	}
	if minLive > 0 && float64(maxLive)/float64(minLive) > 3.0 {
		return fmt.Errorf("migrate sweep: live downtime not flat across sizes: min %v, max %v (> 3x spread)",
			simclock.Duration(minLive), simclock.Duration(maxLive))
	}
	if r.RoundSpans < last.Rounds {
		return fmt.Errorf("migrate sweep: %d precopy_round spans for %d rounds", r.RoundSpans, last.Rounds)
	}
	if r.DowntimeSpans == 0 {
		return fmt.Errorf("migrate sweep: no migration_downtime span on the trace")
	}
	if r.ChunksAfterGC != 0 {
		return fmt.Errorf("migrate sweep: %d chunks survive release-all + GC — a refcount leaked", r.ChunksAfterGC)
	}
	return nil
}

// JSON renders the sweep as the BENCH_migrate.json document.
func (r *MigrateResult) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
