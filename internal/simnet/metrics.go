package simnet

import "snapify/internal/obs"

// PublishMetrics registers a collector on r that snapshots the fabric's
// per-path traffic counters and per-link utilization state at every
// metrics dump. The fabric keeps its own atomic counters as the source
// of truth; publishing is pull-based so the hot transfer paths carry no
// extra instrumentation.
func (f *Fabric) PublishMetrics(r *obs.Registry) {
	r.RegisterCollector(func(r *obs.Registry) {
		for from := NodeID(0); int(from) < f.Nodes(); from++ {
			for to := NodeID(0); int(to) < f.Nodes(); to++ {
				if b := f.traffic[from][to].Load(); b != 0 {
					r.Gauge("simnet_traffic_bytes",
						"Bytes moved between two SCIF nodes (all paths).",
						obs.L("from", from.String()), obs.L("to", to.String())).Set(b)
				}
			}
		}
		for i := 1; i < f.Nodes(); i++ {
			node := NodeID(i)
			st := f.LinkStats(node)
			l := obs.L("link", node.String())
			r.Gauge("simnet_link_flows",
				"Bulk flows currently registered on a card's PCIe link.", l).Set(st.Flows)
			r.Gauge("simnet_link_peak_flows",
				"High-water mark of concurrent bulk flows on a card's PCIe link.", l).Set(st.PeakFlows)
			r.Gauge("simnet_link_transfers_total",
				"RDMA transfers carried by a card's PCIe link.", l).Set(st.Transfers)
			r.Gauge("simnet_link_busy_ns",
				"Cumulative virtual nanoseconds of RDMA occupancy on a card's PCIe link.", l).Set(int64(st.Busy))
		}
	})
}
