package sched

import (
	"strings"
	"testing"

	"snapify/internal/coi"
	"snapify/internal/faultinject"
	"snapify/internal/obs"
	"snapify/internal/platform/platformtest"
	"snapify/internal/snapstore"
	"snapify/internal/workloads"
)

// fleetEnv is an n-host fleet with a swappable federation fault
// injector (nil means no faults).
type fleetEnv struct {
	fleet *Fleet
	inj   *faultinject.Injector
}

func newFleetEnv(t *testing.T, hosts int, replicas int) *fleetEnv {
	t.Helper()
	fe := &fleetEnv{}
	fe.fleet = NewFleet(obs.New(), snapstore.DefaultLink(), func() *faultinject.Injector { return fe.inj })
	for i := 0; i < hosts; i++ {
		name := string(rune('a' + i))
		plat := platformtest.Start(t, platformtest.Options{Devices: 1})
		if err := fe.fleet.AddHost("h"+name, plat); err != nil {
			t.Fatal(err)
		}
	}
	fe.fleet.Capture.Streams = 2
	fe.fleet.Capture.ChunkBytes = 256 * 1024
	fe.fleet.Capture.Store.Enabled = true
	fe.fleet.Capture.Store.Replicas = replicas
	fe.fleet.Restore.Store.Enabled = true
	return fe
}

func (fe *fleetEnv) arm(plan faultinject.Plan) { fe.inj = faultinject.New(plan, nil) }
func (fe *fleetEnv) disarm()                   { fe.inj = nil }

// referenceChecksum runs spec uninterrupted on a fresh platform.
func referenceChecksum(t *testing.T, spec workloads.Spec) uint64 {
	t.Helper()
	plat := platformtest.Start(t, platformtest.Options{Devices: 1})
	in, err := workloads.Launch(plat, spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	want, err := in.Run()
	if err != nil {
		t.Fatal(err)
	}
	return want
}

// ctxDigests returns the chunk digest list of the job's offload context
// manifest in the named member's store — the byte-identity fingerprint.
func ctxDigests(t *testing.T, f *Fleet, host string, j *FleetJob) []string {
	t.Helper()
	st, err := f.Federation().StoreOf(host)
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := st.Manifest(j.Dir + "/" + coi.ContextFileName)
	if err != nil {
		t.Fatalf("no context manifest for job %d on %s: %v", j.ID, host, err)
	}
	return m.Chunks
}

func assertFleetFsckClean(t *testing.T, f *Fleet) {
	t.Helper()
	for _, name := range f.Federation().Members() {
		if !f.Federation().Alive(name) {
			continue
		}
		st, err := f.Federation().StoreOf(name)
		if err != nil {
			t.Fatal(err)
		}
		if problems, _ := st.Verify(); len(problems) != 0 {
			t.Errorf("store on %s inconsistent: %v", name, problems)
		}
	}
}

// TestFleetMigrateJobCrossHostDedup moves a job between hosts twice:
// the first migration ships the whole image cold, the return trip
// negotiates against a store that already holds the first checkpoint's
// chunks and ships almost nothing (the tentpole's >= 2x dedup claim).
func TestFleetMigrateJobCrossHostDedup(t *testing.T) {
	fe := newFleetEnv(t, 2, 0)
	spec := smallSpec("FM", 8)
	want := referenceChecksum(t, spec)

	j, err := fe.fleet.Submit(spec, "ha", 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Inst.RunCalls(3); err != nil {
		t.Fatal(err)
	}

	cold, err := fe.fleet.MigrateJob(j, "hb")
	if err != nil {
		t.Fatal(err)
	}
	if j.Host != "hb" {
		t.Fatalf("job migrated to %q, want hb", j.Host)
	}
	if cold.BytesShipped == 0 {
		t.Fatal("cold migration shipped nothing")
	}
	if _, err := j.Inst.RunCalls(1); err != nil {
		t.Fatal(err)
	}

	warm, err := fe.fleet.MigrateJob(j, "ha")
	if err != nil {
		t.Fatal(err)
	}
	if warm.BytesLogical < 2*warm.BytesShipped {
		t.Errorf("warm migration dedup ratio %.2f, want >= 2 (logical %d, shipped %d)",
			float64(warm.BytesLogical)/float64(warm.BytesShipped), warm.BytesLogical, warm.BytesShipped)
	}
	if warm.ChunksDeduped == 0 {
		t.Error("warm migration deduped no chunks")
	}

	if err := fe.fleet.Run(); err != nil {
		t.Fatal(err)
	}
	if got := j.Inst.Checksum(); got != want {
		t.Errorf("checksum after two migrations %d, want %d", got, want)
	}
	assertFleetFsckClean(t, fe.fleet)
}

// TestFleetHostKillRecovery is the PR's acceptance scenario: jobs
// checkpoint with k=2 replication, the whole host dies, and Recover
// restarts every lost job on a surviving replica holder with
// byte-identical state (same context chunk digests, same progress,
// same final checksum).
func TestFleetHostKillRecovery(t *testing.T) {
	fe := newFleetEnv(t, 3, 2)
	spec := smallSpec("FK", 8)
	want := referenceChecksum(t, spec)

	var jobs []*FleetJob
	for i := 0; i < 2; i++ {
		j, err := fe.fleet.Submit(spec, "ha", 1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := j.Inst.RunCalls(4); err != nil {
			t.Fatal(err)
		}
		_, holders, err := fe.fleet.Checkpoint(j)
		if err != nil {
			t.Fatal(err)
		}
		if len(holders) < 2 {
			t.Fatalf("job %d replicated to %v, want >= 2 holders", j.ID, holders)
		}
		jobs = append(jobs, j)
	}
	// Fingerprint the checkpoints before the failure.
	digests := make(map[int][]string)
	for _, j := range jobs {
		digests[j.ID] = ctxDigests(t, fe.fleet, "ha", j)
	}

	if err := fe.fleet.KillHost("ha"); err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if !j.Lost {
			t.Fatalf("job %d not marked lost after host kill", j.ID)
		}
	}
	if _, err := fe.fleet.Submit(spec, "ha", 1); err == nil {
		t.Fatal("submitting to a dead host must fail")
	}

	recovered, err := fe.fleet.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 2 {
		t.Fatalf("recovered %d jobs, want 2", len(recovered))
	}
	for _, j := range jobs {
		if j.Lost || j.Host == "ha" {
			t.Fatalf("job %d still lost or on the dead host (%q)", j.ID, j.Host)
		}
		// Progress rolled back exactly to the checkpoint.
		if got := j.Inst.Progress(); got != 4 {
			t.Errorf("job %d restored progress %d, want 4", j.ID, got)
		}
		// Byte identity: the replica's context manifest lists the same
		// chunk digests the source committed.
		got := ctxDigests(t, fe.fleet, j.Host, j)
		if strings.Join(got, ",") != strings.Join(digests[j.ID], ",") {
			t.Errorf("job %d context digests differ after recovery", j.ID)
		}
	}

	if err := fe.fleet.Run(); err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if got := j.Inst.Checksum(); got != want {
			t.Errorf("job %d checksum after recovery %d, want %d", j.ID, got, want)
		}
	}
	assertFleetFsckClean(t, fe.fleet)
}

// TestFleetRecoverNeedsReplicas: without replication the snapshot dies
// with its host and Recover reports the loss instead of fabricating
// state.
func TestFleetRecoverNeedsReplicas(t *testing.T) {
	fe := newFleetEnv(t, 2, 0)
	j, err := fe.fleet.Submit(smallSpec("FN", 4), "ha", 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Inst.RunCalls(2); err != nil {
		t.Fatal(err)
	}
	if _, _, err := fe.fleet.Checkpoint(j); err != nil {
		t.Fatal(err)
	}
	if err := fe.fleet.KillHost("ha"); err != nil {
		t.Fatal(err)
	}
	if _, err := fe.fleet.Recover(); err == nil {
		t.Fatal("recover without replicas must fail")
	}
}

// TestChaosFleetKillDuringReplication injects a host crash in the
// middle of the replication ship: the checkpoint's replication leg
// fails, the repair loop re-establishes k on the remaining host, and
// after the source also dies the job still recovers.
func TestChaosFleetKillDuringReplication(t *testing.T) {
	fe := newFleetEnv(t, 3, 2)
	j, err := fe.fleet.Submit(smallSpec("FC", 8), "ha", 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Inst.RunCalls(4); err != nil {
		t.Fatal(err)
	}

	// The destination host dies while chunks are in flight.
	fe.arm(faultinject.Plan{{Site: faultinject.SiteFederation, Key: "chunk", Kind: faultinject.Crash, Nth: 2}})
	_, _, err = fe.fleet.Checkpoint(j)
	fe.disarm()
	if err == nil {
		t.Fatal("replication onto a dying host must surface an error")
	}
	if fe.fleet.Federation().ReplicaLag() == 0 {
		t.Fatal("no replica lag after a failed replication")
	}

	// The repair loop tops the set back up on the surviving host.
	stats, _, err := fe.fleet.Federation().Repair(0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ReplicasAdded == 0 {
		t.Fatal("repair added no replicas")
	}
	if lag := fe.fleet.Federation().ReplicaLag(); lag != 0 {
		t.Fatalf("replica lag %d after repair, want 0", lag)
	}

	// Now the source dies too; the repaired replica carries the job.
	if err := fe.fleet.KillHost("ha"); err != nil {
		t.Fatal(err)
	}
	recovered, err := fe.fleet.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 1 {
		t.Fatalf("recovered %d jobs, want 1", len(recovered))
	}
	if got := j.Inst.Progress(); got != 4 {
		t.Errorf("recovered progress %d, want 4", got)
	}
	if err := fe.fleet.Run(); err != nil {
		t.Fatal(err)
	}
	assertFleetFsckClean(t, fe.fleet)
}

// TestFleetRecoverPrefersClosestHolder is the regression test for the
// link-aware recovery policy: with per-pair link overrides making the
// first-sorted surviving holder expensive to reach from the dead host,
// Recover must restart the job on the cheaper (later-sorted) holder —
// the old first-in-map-order pick would land on the wrong host.
func TestFleetRecoverPrefersClosestHolder(t *testing.T) {
	fe := newFleetEnv(t, 4, 3)
	spec := smallSpec("FL", 6)
	j, err := fe.fleet.Submit(spec, "ha", 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Inst.RunCalls(3); err != nil {
		t.Fatal(err)
	}
	_, holders, err := fe.fleet.Checkpoint(j)
	if err != nil {
		t.Fatal(err)
	}
	if len(holders) != 3 {
		t.Fatalf("holders = %v, want 3", holders)
	}
	if err := fe.fleet.KillHost("ha"); err != nil {
		t.Fatal(err)
	}
	survivors := fe.fleet.Federation().Holders(j.Dir)
	if len(survivors) != 2 {
		t.Fatalf("surviving holders = %v, want 2", survivors)
	}
	// The first-sorted survivor sits across the rack from the dead
	// host; the second is in-rack and must win the recovery placement.
	fe.fleet.Federation().SetLink("ha", survivors[0], snapstore.CrossRackLink())
	want := survivors[1]

	recovered, err := fe.fleet.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 1 {
		t.Fatalf("recovered %d jobs, want 1", len(recovered))
	}
	if j.Host != want {
		t.Fatalf("recovered onto %q, want closest holder %q (survivors %v)", j.Host, want, survivors)
	}
	if got := j.Inst.Progress(); got != 3 {
		t.Errorf("recovered progress %d, want 3", got)
	}
	if err := fe.fleet.Run(); err != nil {
		t.Fatal(err)
	}
	assertFleetFsckClean(t, fe.fleet)
}
