// Command snapifylint runs the Snapify-specific static analyzers
// (internal/lint) over the module and reports protocol-invariant
// violations with file:line positions.
//
// Usage:
//
//	snapifylint [-allowlist file] [-json] [-sarif file] [-stats] [-unused-allowlist] [-list] [patterns...]
//
// Patterns are package directories relative to the module root, with the
// usual /... suffix for subtrees (default ./...). The exit status is 0
// when no findings survive the allowlist, 1 when findings remain, and 2
// on usage or load errors.
//
// -sarif additionally writes the surviving findings as a SARIF 2.1.0 log
// so code hosts and editors that speak the format can ingest them.
// -stats appends a per-analyzer finding-count and wall-clock summary.
// -unused-allowlist inverts the check: instead of findings it reports
// allowlist entries that no longer match anything (exit 1 if any), so
// the suppression file cannot rot.
//
// If -allowlist is not given and a .snapifylint file exists at the module
// root, it is used automatically. See internal/lint for the allowlist and
// //nolint directive formats — every suppression requires a written
// justification.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"snapify/internal/lint"
)

// DefaultAllowlistName is the allowlist loaded from the module root when
// -allowlist is not given.
const DefaultAllowlistName = ".snapifylint"

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	flags := flag.NewFlagSet("snapifylint", flag.ContinueOnError)
	flags.SetOutput(stderr)
	allowPath := flags.String("allowlist", "", "allowlist file of acknowledged findings (default: <module root>/"+DefaultAllowlistName+" if present)")
	asJSON := flags.Bool("json", false, "emit findings as a JSON array (stable across runs, for CI diffing)")
	sarifPath := flags.String("sarif", "", "also write findings as a SARIF 2.1.0 log to this file")
	stats := flags.Bool("stats", false, "print a per-analyzer finding-count and wall-clock summary")
	unusedOnly := flags.Bool("unused-allowlist", false, "report allowlist entries that no longer match any finding, exit 1 if any")
	list := flags.Bool("list", false, "list the analyzers and the invariant each protects, then exit")
	if err := flags.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "snapifylint:", err)
		return 2
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "snapifylint:", err)
		return 2
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(stderr, "snapifylint:", err)
		return 2
	}

	patterns := flags.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "snapifylint:", err)
		return 2
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(stderr, "snapifylint: type error (analysis degrades): %v\n", terr)
		}
	}

	var allow *lint.Allowlist
	switch {
	case *allowPath != "":
		if allow, err = lint.ParseAllowlist(*allowPath); err != nil {
			fmt.Fprintln(stderr, "snapifylint:", err)
			return 2
		}
	default:
		implicit := filepath.Join(root, DefaultAllowlistName)
		if _, statErr := os.Stat(implicit); statErr == nil {
			if allow, err = lint.ParseAllowlist(implicit); err != nil {
				fmt.Fprintln(stderr, "snapifylint:", err)
				return 2
			}
		}
	}

	raw, perAnalyzer := lint.RunStats(pkgs, lint.All())
	findings := allow.Filter(raw)

	if *unusedOnly {
		if allow == nil {
			fmt.Fprintln(stdout, "snapifylint: no allowlist in use, nothing to check")
			return 0
		}
		unused := allow.Unused()
		for _, e := range unused {
			fmt.Fprintf(stdout, "unused allowlist entry in %s: %s %s %s (delete it)\n",
				allow.Source, e.Analyzer, e.PathSuffix, e.Match)
		}
		if len(unused) > 0 {
			fmt.Fprintf(stdout, "snapifylint: %d stale allowlist entr%s\n",
				len(unused), pluralY(len(unused)))
			return 1
		}
		fmt.Fprintf(stdout, "snapifylint: allowlist %s is clean: every entry still matches a finding\n", allow.Source)
		return 0
	}
	for _, e := range allow.Unused() {
		fmt.Fprintf(stderr, "snapifylint: unused allowlist entry in %s: %s %s %s (delete it?)\n",
			allow.Source, e.Analyzer, e.PathSuffix, e.Match)
	}

	// Findings print with module-root-relative paths so output (and the
	// -json stream CI diffs across PRs) is stable across checkouts.
	for i := range findings {
		if rel, relErr := filepath.Rel(root, findings[i].File); relErr == nil {
			findings[i].File = filepath.ToSlash(rel)
		}
	}

	if *sarifPath != "" {
		if err := writeSARIFFile(*sarifPath, findings); err != nil {
			fmt.Fprintln(stderr, "snapifylint:", err)
			return 2
		}
	}

	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(stderr, "snapifylint:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if *stats {
		printStats(stdout, perAnalyzer)
	}
	if len(findings) > 0 {
		if !*asJSON {
			fmt.Fprintf(stdout, "snapifylint: %d finding(s)\n", len(findings))
		}
		return 1
	}
	return 0
}

// printStats renders the per-analyzer summary: raw finding counts
// (before the allowlist, so suppressed noise is still visible) and the
// wall-clock each analyzer spent, then a total line.
func printStats(w io.Writer, perAnalyzer []lint.AnalyzerStat) {
	var findings int
	var wall time.Duration
	for _, s := range perAnalyzer {
		fmt.Fprintf(w, "stats: %-14s findings=%-3d wall=%s\n",
			s.Analyzer, s.Findings, s.Wall.Round(time.Microsecond))
		findings += s.Findings
		wall += s.Wall
	}
	fmt.Fprintf(w, "stats: %-14s findings=%-3d wall=%s\n",
		"total", findings, wall.Round(time.Microsecond))
}

func pluralY(n int) string {
	if n == 1 {
		return "y"
	}
	return "ies"
}
