package coi

import (
	"fmt"

	"snapify/internal/platform"
	"snapify/internal/scif"
	"snapify/internal/simnet"
)

// Exported surface for internal/core: the Snapify daemon opcodes, wire
// helpers, and the restore request (which goes to the target card's daemon
// on a fresh connection, since the source card may no longer host the
// process).

// Daemon opcodes core sends on the lifecycle channel.
const (
	OpSnapifyPause       = opSnapifyPause
	OpSnapifyPauseResp   = opSnapifyPauseResp
	OpSnapifyDrain       = opSnapifyDrain
	OpSnapifyDrainResp   = opSnapifyDrainResp
	OpSnapifyCapture     = opSnapifyCapture
	OpSnapifyCaptureResp = opSnapifyCaptureResp
	OpSnapifyResume      = opSnapifyResume
	OpSnapifyResumeResp  = opSnapifyResumeResp
	OpSnapifyPrecopy     = opSnapifyPrecopy
	OpSnapifyPrecopyResp = opSnapifyPrecopyResp
)

// Stage-control modes of a DaemonStageRequest.
const (
	// StageSync pulls the current digest plan's missing chunks from the
	// host store into the destination daemon's staging area.
	StageSync uint8 = 0
	// StageDrop discards the staged chunks for the path (abort).
	StageDrop uint8 = 1
)

// PutU32 encodes v big-endian.
func PutU32(v uint32) []byte { return putU32(v) }

// AppendU32 appends v big-endian to b.
func AppendU32(b []byte, v uint32) []byte { return appendU32(b, v) }

// ParsePortList decodes the (name, port) list of a launch or restore reply.
func ParsePortList(b []byte) []ChannelPort { return parsePorts(b) }

// DaemonRestoreRequest sends a snapify-restore request to the daemon on
// device and returns the reply payload after the status byte.
func DaemonRestoreRequest(plat *platform.Platform, device simnet.NodeID, payload []byte) ([]byte, error) {
	return daemonRequest(plat, device, opSnapifyRestore, opSnapifyRestoreResp, "restore", payload)
}

// DaemonStageRequest sends a pre-copy stage-control request (StageSync
// or StageDrop) to the daemon on the migration's destination device.
func DaemonStageRequest(plat *platform.Platform, device simnet.NodeID, payload []byte) ([]byte, error) {
	return daemonRequest(plat, device, opSnapifyPrecopyStage, opSnapifyPrecopyStageResp, "stage", payload)
}

// daemonRequest runs one host-to-daemon request on a fresh connection —
// the shape restore and stage control share, since both talk to a card
// that does not (yet) host the process.
func daemonRequest(plat *platform.Platform, device simnet.NodeID, op, respOp uint8, what string, payload []byte) ([]byte, error) {
	ep, err := plat.Net.Connect(simnet.HostNode, scif.Addr{Node: device, Port: DaemonPort})
	if err != nil {
		return nil, err
	}
	defer ep.Close() //nolint:errcheck // one-shot request endpoint: the reply already arrived or err reports the failure
	if _, err := ep.Send(append([]byte{op}, payload...)); err != nil {
		return nil, err
	}
	raw, _, err := ep.Recv()
	if err != nil {
		return nil, err
	}
	u, err := expectOp(raw, respOp)
	if err != nil {
		return nil, err
	}
	if u[0] != 0 {
		return nil, fmt.Errorf("coi: daemon %s error: %s", what, u[1:])
	}
	return u[1:], nil
}
