package workloads

import (
	"testing"

	"snapify/internal/core"
	"snapify/internal/platform"
	"snapify/internal/platform/platformtest"
	"snapify/internal/simclock"
)

func newPlat(t *testing.T, devices int) *platform.Platform {
	t.Helper()
	return platformtest.Start(t, platformtest.Options{Devices: devices, CardMem: 8 * simclock.GiB})
}

// scaled returns spec with a small call count for fast tests.
func scaled(s Spec, calls int) Spec {
	s.Calls = calls
	return s
}

func TestEverySpecRunsAndIsDeterministic(t *testing.T) {
	for _, s := range OpenMP {
		s := scaled(s, 6)
		t.Run(s.Code, func(t *testing.T) {
			plat := newPlat(t, 1)
			run := func() uint64 {
				in, err := Launch(plat, s, 1)
				if err != nil {
					t.Fatal(err)
				}
				defer in.Close()
				sum, err := in.Run()
				if err != nil {
					t.Fatal(err)
				}
				if !in.Done() {
					t.Error("run not done")
				}
				if in.Runtime() <= 0 {
					t.Error("no virtual runtime accumulated")
				}
				return sum
			}
			if run() != run() {
				t.Error("checksum not deterministic across runs")
			}
		})
	}
}

func TestFootprintsOnCard(t *testing.T) {
	plat := newPlat(t, 1)
	s, _ := ByCode("SS")
	before := plat.Device(1).Mem.Used()
	in, err := Launch(plat, scaled(s, 1), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	used := plat.Device(1).Mem.Used() - before
	// Device heap + local store (+ runtime/binary overhead).
	min := s.DeviceMem + s.LocalStore
	if used < min {
		t.Errorf("card holds %d bytes, want >= %d", used, min)
	}
}

func TestCheckpointRestartMidRunPreservesChecksum(t *testing.T) {
	s, _ := ByCode("JC")
	s = scaled(s, 10)

	// Reference: uninterrupted.
	refPlat := newPlat(t, 1)
	refIn, err := Launch(refPlat, s, 1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := refIn.Run()
	if err != nil {
		t.Fatal(err)
	}
	refIn.Close()

	// Interrupted: checkpoint at call 4, kill, restart, finish.
	plat := newPlat(t, 1)
	in, err := Launch(plat, s, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.RunCalls(4); err != nil {
		t.Fatal(err)
	}
	app := core.NewApp(plat, in.CP)
	if _, err := app.Checkpoint("/snap/wl"); err != nil {
		t.Fatal(err)
	}
	in.Close() // the application dies

	app2, host2, _, err := core.RestartApp(plat, "/snap/wl")
	if err != nil {
		t.Fatal(err)
	}
	defer host2.Terminate()
	in2, err := Attach(plat, s, host2, app2.Proc())
	if err != nil {
		t.Fatal(err)
	}
	if got := in2.Progress(); got != 4 {
		t.Fatalf("restored progress = %d, want 4", got)
	}
	got, err := in2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("restarted checksum %d, want %d", got, want)
	}
}

func TestFig9OverheadBounds(t *testing.T) {
	// Scaled-down Fig 9: the Snapify hooks add runtime, bounded by 5%.
	s, _ := ByCode("MD")
	s = scaled(s, 400)
	run := func(noHooks bool) simclock.Duration {
		plat := platformtest.Start(t, platformtest.Options{NoSnapify: noHooks})
		in, err := Launch(plat, s, 1)
		if err != nil {
			t.Fatal(err)
		}
		defer in.Close()
		if _, err := in.Run(); err != nil {
			t.Fatal(err)
		}
		return in.Runtime()
	}
	with := run(false)
	without := run(true)
	if with <= without {
		t.Fatalf("hooks add no overhead: with=%v without=%v", with, without)
	}
	overhead := float64(with-without) / float64(without)
	if overhead >= 0.05 {
		t.Errorf("MD overhead %.2f%% breaches the paper's 5%% bound", overhead*100)
	}
	if overhead < 0.005 {
		t.Errorf("MD overhead %.3f%% implausibly low for the most call-heavy app", overhead*100)
	}
}

func TestMZRankSpecShrinksWithRanks(t *testing.T) {
	for _, m := range NASMZ {
		s1 := m.RankSpec(1)
		s2 := m.RankSpec(2)
		s4 := m.RankSpec(4)
		total := func(s Spec) int64 { return s.HostMem + s.DeviceMem + s.LocalStore }
		if !(total(s1) > total(s2) && total(s2) > total(s4)) {
			t.Errorf("%s per-rank footprint not shrinking: %d %d %d", m.Code, total(s1), total(s2), total(s4))
		}
		// Sub-linear: 4 ranks hold more than a quarter of 1 rank each.
		if total(s4) <= total(s1)/4 {
			t.Errorf("%s shrink is not sub-linear", m.Code)
		}
	}
}

func TestByCodeLookups(t *testing.T) {
	if _, ok := ByCode("MD"); !ok {
		t.Error("MD missing")
	}
	if _, ok := ByCode("XX"); ok {
		t.Error("bogus code found")
	}
	if _, ok := MZByCode("LU-MZ"); !ok {
		t.Error("LU-MZ missing")
	}
	if _, ok := MZByCode("ZZ-MZ"); ok {
		t.Error("bogus MZ code found")
	}
	if len(OpenMP) != 8 {
		t.Errorf("suite has %d benchmarks, want 8", len(OpenMP))
	}
	if len(NASMZ) != 3 {
		t.Errorf("MZ suite has %d benchmarks, want 3", len(NASMZ))
	}
}
