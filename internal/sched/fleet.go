package sched

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"snapify/internal/core"
	"snapify/internal/obs"
	"snapify/internal/platform"
	"snapify/internal/simnet"
	"snapify/internal/snapstore"
	"snapify/internal/workloads"
)

// Fleet federates several single-server schedulers (Section 5 scaled up
// to a cluster): each member is one Xeon Phi server with its own cards,
// host file system, and dedup store. Jobs checkpoint through core.App
// and replicate their snapshot directories across members through the
// store federation, so a whole-host failure is survivable — Recover
// restarts every lost job on a surviving replica holder with
// byte-identical state.
type Fleet struct {
	fed *snapstore.Federation

	// Capture configures every fleet checkpoint. Store.Enabled is
	// effectively mandatory (cross-host shipping negotiates chunks);
	// Store.Replicas sets the copy count ReplicateDir maintains.
	Capture core.CaptureOptions
	// Restore configures every restart, local or cross-host.
	Restore core.RestoreOptions

	mu      sync.Mutex
	members map[string]*Member
	order   []string
	jobs    []*FleetJob
	// byID and byHost index the job list so per-job lookup and
	// whole-host events (kill, evacuation) touch only the jobs involved
	// instead of scanning every job ever submitted.
	byID   map[int]*FleetJob
	byHost map[string]map[int]*FleetJob
	nextID int
}

// Member is one server in the fleet.
type Member struct {
	Name  string
	Plat  *platform.Platform
	Sched *Scheduler
}

// FleetJob is one offload application scheduled on the fleet.
type FleetJob struct {
	ID   int
	Spec workloads.Spec
	// Host is the member currently running the job.
	Host string
	// Device is the card node on that member.
	Device simnet.NodeID
	// Dir is the job's snapshot directory, identical on every holder.
	Dir string

	Inst *workloads.Instance
	App  *core.App

	// Lost marks a job whose host died; Recover clears it.
	Lost bool
	// Done marks a finished job.
	Done bool
	// Swaps counts store-backed swap-out events (SwapoutJob).
	Swaps int

	snapshot *core.Snapshot
}

// SwappedOut reports whether the job currently lives as a snapshot on
// its host (SwapoutJob ran and SwapinJob has not yet revived it).
func (j *FleetJob) SwappedOut() bool { return j.snapshot != nil }

// NewFleet builds an empty fleet whose federation publishes metrics to o
// and consults injector (may yield nil) for chaos faults on the
// inter-host links.
func NewFleet(o *obs.Obs, link snapstore.LinkModel, injector snapstore.InjectorFunc) *Fleet {
	return &Fleet{
		fed:     snapstore.NewFederation(o, link, injector),
		members: make(map[string]*Member),
		byID:    make(map[int]*FleetJob),
		byHost:  make(map[string]map[int]*FleetJob),
		nextID:  1,
	}
}

// Federation exposes the underlying store federation (repair loops,
// replica metadata, ship metrics).
func (f *Fleet) Federation() *snapstore.Federation { return f.fed }

// AddHost registers a server under name.
func (f *Fleet) AddHost(name string, plat *platform.Platform) error {
	if err := f.fed.Add(name, plat.Store); err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.members[name] = &Member{Name: name, Plat: plat, Sched: New(plat)}
	f.order = append(f.order, name)
	return nil
}

// Member returns the named server.
func (f *Fleet) Member(name string) (*Member, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	m, ok := f.members[name]
	if !ok {
		return nil, fmt.Errorf("sched: fleet has no member %q", name)
	}
	return m, nil
}

// Jobs returns all fleet jobs in submission order.
func (f *Fleet) Jobs() []*FleetJob {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]*FleetJob, len(f.jobs))
	copy(out, f.jobs)
	return out
}

// JobByID returns the fleet job with the given ID, or nil.
func (f *Fleet) JobByID(id int) *FleetJob {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.byID[id]
}

// JobsOn returns the not-done jobs currently homed on host, sorted by ID.
func (f *Fleet) JobsOn(host string) []*FleetJob {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]*FleetJob, 0, len(f.byHost[host]))
	for _, j := range f.byHost[host] {
		out = append(out, j)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// rehomeLocked moves j's byHost index entry to host.
func (f *Fleet) rehomeLocked(j *FleetJob, host string) {
	if cur, ok := f.byHost[j.Host]; ok {
		delete(cur, j.ID)
	}
	set := f.byHost[host]
	if set == nil {
		set = make(map[int]*FleetJob)
		f.byHost[host] = set
	}
	set[j.ID] = j
	j.Host = host
}

// Submit launches a job on the named host's card and registers the
// Snapify checkpoint callback with the fleet's capture/restore options.
func (f *Fleet) Submit(spec workloads.Spec, host string, device simnet.NodeID) (*FleetJob, error) {
	m, err := f.Member(host)
	if err != nil {
		return nil, err
	}
	if !f.fed.Alive(host) {
		return nil, fmt.Errorf("sched: submitting to dead host %q: %w", host, snapstore.ErrHostDead)
	}
	f.mu.Lock()
	id := f.nextID
	f.nextID++
	f.mu.Unlock()

	inst, err := workloads.Launch(m.Plat, spec, device)
	if err != nil {
		return nil, fmt.Errorf("sched: launching fleet job %d: %w", id, err)
	}
	app := core.NewApp(m.Plat, inst.CP)
	if err := app.SetOptions(f.Capture, f.Restore); err != nil {
		inst.Close()
		return nil, err
	}
	j := &FleetJob{
		ID: id, Spec: spec, Host: host, Device: device,
		Dir:  fmt.Sprintf("/fleet/job%d", id),
		Inst: inst, App: app,
	}
	f.mu.Lock()
	f.jobs = append(f.jobs, j)
	f.byID[id] = j
	f.rehomeLocked(j, host)
	f.mu.Unlock()
	return j, nil
}

// Checkpoint snapshots the whole application into the job's directory
// and, when Capture.Store.Replicas asks for it, replicates the
// directory across the fleet. It returns the holders of the snapshot.
func (f *Fleet) Checkpoint(j *FleetJob) (*core.CheckpointReport, []string, error) {
	rep, err := j.App.Checkpoint(j.Dir)
	if err != nil {
		return nil, nil, fmt.Errorf("sched: checkpointing fleet job %d: %w", j.ID, err)
	}
	holders := []string{j.Host}
	if k := f.Capture.Store.Replicas; k > 1 {
		holders, _, err = f.fed.ReplicateDir(j.Host, j.Dir, k)
		if err != nil {
			return rep, holders, fmt.Errorf("sched: replicating fleet job %d: %w", j.ID, err)
		}
	}
	return rep, holders, nil
}

// MigrateJob moves a running job to another host: checkpoint, ship the
// snapshot directory (the federation negotiates chunks against the
// destination store, so repeated migrations of similar images ship
// almost nothing), kill the source instance, restart on dst. The ship
// statistics expose the cross-host dedup.
func (f *Fleet) MigrateJob(j *FleetJob, dst string) (snapstore.ShipStats, error) {
	m, err := f.Member(dst)
	if err != nil {
		return snapstore.ShipStats{}, err
	}
	if j.Lost {
		return snapstore.ShipStats{}, fmt.Errorf("sched: migrating lost job %d; run Recover first", j.ID)
	}
	if !f.fed.Alive(dst) {
		return snapstore.ShipStats{}, fmt.Errorf("sched: migrating job %d to dead host %q: %w", j.ID, dst, snapstore.ErrHostDead)
	}
	if _, _, err := f.Checkpoint(j); err != nil {
		return snapstore.ShipStats{}, err
	}
	stats, _, err := f.fed.ShipDir(j.Host, dst, j.Dir)
	if err != nil {
		return stats, fmt.Errorf("sched: shipping fleet job %d to %q: %w", j.ID, dst, err)
	}
	// The source processes die; the snapshot is the job now.
	j.Inst.Close()
	j.Inst.Host.Terminate()
	if err := f.restartOn(j, m); err != nil {
		return stats, err
	}
	return stats, nil
}

// KillHost marks a member dead — the whole server failed. Every job
// resident on it is lost until Recover restarts it elsewhere. The store
// federation aborts the dead host's uploads and excludes it from
// placement and repair.
func (f *Fleet) KillHost(name string) error {
	if err := f.fed.KillHost(name); err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, j := range f.byHost[name] {
		if !j.Done {
			j.Lost = true
		}
	}
	return nil
}

// Recover restarts every lost job from a surviving replica of its last
// checkpoint: the host process via BLCR, the offload process via the
// restore callback, both reading the replicated snapshot directory on
// the new host. Progress rolls back to the checkpoint — exactly the
// paper's fault-tolerance contract. Among the living holders it prefers
// the one *closest* to the job's last host by link cost (holders on the
// dead host's rack restart with the least data motion when the job's
// working files re-ship). It returns the recovered jobs.
func (f *Fleet) Recover() ([]*FleetJob, error) {
	var recovered []*FleetJob
	for _, j := range f.Jobs() {
		if !j.Lost {
			continue
		}
		holder := f.fed.ClosestHolder(j.Dir, j.Host, recoverBytes(j.Spec))
		if holder == "" {
			return recovered, fmt.Errorf("sched: job %d has no living replica of %s", j.ID, j.Dir)
		}
		m, err := f.Member(holder)
		if err != nil {
			return recovered, err
		}
		if err := f.restartOn(j, m); err != nil {
			return recovered, fmt.Errorf("sched: recovering job %d on %q: %w", j.ID, holder, err)
		}
		recovered = append(recovered, j)
	}
	return recovered, nil
}

// RecoverJobOn restarts one lost or swapped-out job from its replicated
// snapshot directory onto the named host — the fleet control plane's
// per-job recovery path, which picks the destination itself (Recover
// picks the closest holder instead). When the destination doesn't hold
// a replica yet, the directory ships there from the closest one first.
func (f *Fleet) RecoverJobOn(j *FleetJob, host string) error {
	m, err := f.Member(host)
	if err != nil {
		return err
	}
	if !f.fed.Alive(host) {
		return fmt.Errorf("sched: recovering job %d on dead host %q: %w", j.ID, host, snapstore.ErrHostDead)
	}
	if j.Done {
		return fmt.Errorf("sched: recovering finished job %d", j.ID)
	}
	if !j.Lost && !j.SwappedOut() {
		return fmt.Errorf("sched: job %d is live on %q; use MigrateJob", j.ID, j.Host)
	}
	holder := f.fed.ClosestHolder(j.Dir, host, recoverBytes(j.Spec))
	if holder == "" {
		return fmt.Errorf("sched: job %d has no living replica of %s", j.ID, j.Dir)
	}
	if holder != host {
		if _, _, err := f.fed.ShipDir(holder, host, j.Dir); err != nil {
			return fmt.Errorf("sched: shipping job %d replica %s -> %s: %w", j.ID, holder, host, err)
		}
	}
	if !j.Lost && j.Inst != nil {
		// A swapped-out job leaving a draining host: its offload process
		// is already gone, the host process dies with the move.
		j.Inst.Close()
		j.Inst.Host.Terminate()
	}
	if err := f.restartOn(j, m); err != nil {
		return fmt.Errorf("sched: recovering job %d on %q: %w", j.ID, host, err)
	}
	return nil
}

// recoverBytes estimates the bytes that move when a job restarts from a
// replica — its snapshot image, dominated by device memory and local
// store. Only the relative order across holders matters to Recover.
func recoverBytes(spec workloads.Spec) int64 {
	return spec.DeviceMem + spec.LocalStore + spec.HostMem
}

// restartOn restores job j from its snapshot directory on the given
// member and rebinds the job's instance and app. The offload process
// lands on the same card node it occupied at checkpoint time (the
// handle records its device, Fig 5a's GetDeviceID).
func (f *Fleet) restartOn(j *FleetJob, m *Member) error {
	app, hostProc, _, err := core.RestartAppOptions(m.Plat, j.Dir, f.Restore)
	if err != nil {
		return err
	}
	inst, err := workloads.Attach(m.Plat, j.Spec, hostProc, app.Proc())
	if err != nil {
		hostProc.Terminate()
		return err
	}
	if err := app.SetOptions(f.Capture, f.Restore); err != nil {
		hostProc.Terminate()
		return err
	}
	f.mu.Lock()
	f.rehomeLocked(j, m.Name)
	j.Device = inst.CP.DeviceNode()
	j.Inst, j.App = inst, app
	j.Lost = false
	j.snapshot = nil
	f.mu.Unlock()
	return nil
}

// SwapoutJob captures the job into its snapshot directory through the
// fleet's store-backed capture options and terminates the offload
// process — the card memory is free until SwapinJob. The control plane
// uses this as the oversubscription eviction path.
func (f *Fleet) SwapoutJob(j *FleetJob) (*core.Snapshot, error) {
	if j.Lost || j.Done {
		return nil, fmt.Errorf("sched: swapping out job %d in state lost=%v done=%v", j.ID, j.Lost, j.Done)
	}
	if j.snapshot != nil {
		return j.snapshot, nil
	}
	snap, err := core.Swapout(j.Dir, j.Inst.CP, f.Capture)
	if err != nil {
		return nil, fmt.Errorf("sched: swapping out fleet job %d: %w", j.ID, err)
	}
	f.mu.Lock()
	j.snapshot = snap
	j.Swaps++
	f.mu.Unlock()
	return snap, nil
}

// SwapinJob revives a swapped-out job on its host, on the given card.
func (f *Fleet) SwapinJob(j *FleetJob, device simnet.NodeID) error {
	f.mu.Lock()
	snap := j.snapshot
	f.mu.Unlock()
	if snap == nil {
		return fmt.Errorf("sched: job %d is not swapped out", j.ID)
	}
	if _, err := core.Swapin(snap, device, f.Restore); err != nil {
		return fmt.Errorf("sched: swapping in fleet job %d: %w", j.ID, err)
	}
	f.mu.Lock()
	j.snapshot = nil
	j.Device = device
	f.mu.Unlock()
	return nil
}

// Run drives every live job to completion in submission order and marks
// it done. Lost jobs are skipped (Recover them first).
func (f *Fleet) Run() error {
	for _, j := range f.Jobs() {
		if j.Done || j.Lost {
			continue
		}
		if _, err := j.Inst.Run(); err != nil {
			return fmt.Errorf("sched: fleet job %d: %w", j.ID, err)
		}
		f.mu.Lock()
		j.Done = true
		f.mu.Unlock()
		j.Inst.Close()
	}
	return nil
}

// errNoMembers is returned by placement helpers when the fleet is empty.
var errNoMembers = errors.New("sched: fleet has no members")

// FirstAlive returns the first living member in registration order.
func (f *Fleet) FirstAlive() (string, error) {
	f.mu.Lock()
	order := append([]string(nil), f.order...)
	f.mu.Unlock()
	for _, n := range order {
		if f.fed.Alive(n) {
			return n, nil
		}
	}
	return "", errNoMembers
}
