package blcr

import (
	"fmt"
	"io"

	"snapify/internal/blob"
	"snapify/internal/fanout"
	"snapify/internal/proc"
	"snapify/internal/simclock"
	"snapify/internal/stream"
)

// This file parallelizes the context-file data path. A checkpoint first
// lays out the file — every record's bytes and every region's page run at
// its exact offset — then stripes contiguous byte ranges of that layout
// across N workers, each writing its own sink. Because the layout is
// computed up front, the striped output is byte-identical to the serial
// writer's, whatever N is. Restart runs the inverse: a cheap scan hops
// over the page runs (the format is length-prefixed, so pages are
// skippable once the region table is known), then workers stream the runs
// back into the regions concurrently.

// ShardSinkFactory opens the sink for one shard of a parallel checkpoint:
// the byte range [off, off+n) of a context file totaling total bytes
// (e.g. a striped Snapify-IO stream).
type ShardSinkFactory func(off, n, total int64) (stream.Sink, error)

// RangeSourceFactory opens the byte range [off, off+n) of a stored context
// file for a parallel restart.
type RangeSourceFactory func(off, n int64) (stream.Source, error)

// seg is one element of a context-file layout: either a small metadata
// record (meta non-empty) or a run of region pages.
type seg struct {
	meta      blob.Blob
	walkBytes int64 // producer-stage size charged for a meta record
	region    *proc.Region
	regOff    int64
	n         int64             // page-run length; meta segments use len(meta)
	extraWalk simclock.Duration // flat cost (delta dirty-page-table walk)
}

func (s seg) fileLen() int64 {
	if s.region != nil {
		return s.n
	}
	return s.meta.Len()
}

// plan is a fully laid-out context file.
type plan struct {
	segs  []seg
	total int64
	st    Stats // counts only; Duration filled by the runner
}

func (p *plan) add(s seg) {
	p.segs = append(p.segs, s)
	p.total += s.fileLen()
}

func (p *plan) addMeta(b blob.Blob, walkBytes int64) {
	p.add(seg{meta: b, walkBytes: walkBytes})
	p.st.MetaWrites++
	p.st.Bytes += b.Len()
}

// planFull lays out the format write() produces, record for record.
func (c *Checkpointer) planFull(p *proc.Process) *plan {
	enc := &recEncoder{}
	pl := &plan{}
	regions := p.Regions()
	threads := p.ThreadNames()

	pl.addMeta(enc.record(tagHeader, func(e *recEncoder) {
		e.str(magic)
		e.u64(formatVersion)
	}), 0)
	pl.addMeta(enc.record(tagProcMeta, func(e *recEncoder) {
		e.str(p.Name())
		e.u64(uint64(p.PID()))
		e.u64(uint64(p.Node()))
		e.u64(uint64(len(threads)))
		e.u64(uint64(len(regions)))
	}), 0)
	for _, name := range threads {
		pl.addMeta(enc.record(tagThread, func(e *recEncoder) { e.str(name) }), 0)
		pl.st.Threads++
	}
	for _, r := range regions {
		pinned := uint64(0)
		if r.Pinned() {
			pinned = 1
		}
		external := uint64(0)
		if r.Kind() == proc.RegionLocalStore {
			external = 1
		}
		pl.addMeta(enc.record(tagRegionMeta, func(e *recEncoder) {
			e.str(r.Name())
			e.u64(uint64(r.Kind()))
			e.u64(r.Seed())
			e.u64(uint64(r.Size()))
			e.u64(pinned)
			e.u64(external)
		}), 0)
		if external == 0 && r.Size() > 0 {
			pl.add(seg{region: r, regOff: 0, n: r.Size()})
			pl.st.Bytes += r.Size()
		}
		pl.st.Regions++
	}
	pl.addMeta(enc.record(tagTrailer, func(e *recEncoder) {
		e.u64(uint64(len(regions)))
	}), 0)
	// The full-checkpoint writer charges the page walk on each record's
	// framed length.
	for i := range pl.segs {
		if pl.segs[i].meta.Len() > 0 {
			pl.segs[i].walkBytes = pl.segs[i].meta.Len()
		}
	}
	return pl
}

// planDelta lays out the delta format CheckpointDeltaFrozen produces.
func (c *Checkpointer) planDelta(p *proc.Process, onHost bool) *plan {
	enc := &recEncoder{}
	pl := &plan{}
	regions := p.Regions()

	pl.addMeta(enc.record(tagDeltaHeader, func(e *recEncoder) {
		e.str(magic)
		e.u64(formatVersion)
		e.u64(uint64(len(regions)))
	}), metaRecordSize)
	for _, r := range regions {
		ranges := r.DirtyRanges()
		pl.addMeta(enc.record(tagDeltaRegion, func(e *recEncoder) {
			e.str(r.Name())
			e.u64(uint64(len(ranges)))
		}), metaRecordSize)
		// Dirty detection walks the whole region's page tables; attach the
		// cost to the shard carrying this region's record.
		pl.segs[len(pl.segs)-1].extraWalk = c.walkStage(onHost, r.Size()) / 8
		for _, rg := range ranges {
			pl.addMeta(enc.record(tagDeltaRange, func(e *recEncoder) {
				e.u64(uint64(rg.Off))
				e.u64(uint64(rg.Len))
			}), metaRecordSize)
			if rg.Len > 0 {
				pl.add(seg{region: r, regOff: rg.Off, n: rg.Len})
				pl.st.Bytes += rg.Len
			}
		}
		pl.st.Regions++
	}
	pl.addMeta(enc.record(tagDeltaTrailer, func(e *recEncoder) {
		e.u64(uint64(len(regions)))
	}), metaRecordSize)
	return pl
}

// shard is one worker's contiguous byte range of the layout.
type shard struct {
	off  int64
	n    int64
	segs []seg
}

// chunkOrDefault normalizes a caller-supplied I/O chunk granularity:
// anything non-positive means the serial writer's PageChunk.
func chunkOrDefault(chunk int64) int64 {
	if chunk <= 0 {
		return PageChunk
	}
	return chunk
}

// buildShards partitions the layout into at most workers contiguous
// shards of roughly equal size. Metadata records travel whole; page runs
// split only at chunk boundaries (the writer's chunk boundaries), so
// per-chunk cost accounting is unchanged by sharding.
func buildShards(segs []seg, total int64, workers int, chunk int64) []shard {
	if workers < 1 {
		workers = 1
	}
	target := (total + int64(workers) - 1) / int64(workers)
	if target < chunk {
		target = chunk
	}
	var shards []shard
	cur := shard{}
	flush := func() {
		if len(cur.segs) > 0 {
			shards = append(shards, cur)
			cur = shard{off: cur.off + cur.n}
		}
	}
	for _, sg := range segs {
		for {
			room := target - cur.n
			if sg.fileLen() <= room || sg.region == nil {
				// Fits (or is an unsplittable record: take it and run over).
				if sg.fileLen() > room && cur.n > 0 {
					flush()
				}
				cur.segs = append(cur.segs, sg)
				cur.n += sg.fileLen()
				if cur.n >= target {
					flush()
				}
				break
			}
			// Split the page run at the last chunk boundary within room.
			split := room - room%chunk
			if split <= 0 {
				flush()
				continue
			}
			head := sg
			head.n = split
			head.extraWalk = sg.extraWalk
			cur.segs = append(cur.segs, head)
			cur.n += split
			flush()
			sg.regOff += split
			sg.n -= split
			sg.extraWalk = 0
		}
	}
	flush()
	// The flush cadence can overrun by one when unsplittable records land
	// badly; fold any excess into the last shard so a request for N
	// streams never opens more than N.
	for len(shards) > workers {
		last := shards[len(shards)-1]
		dst := &shards[len(shards)-2]
		dst.segs = append(dst.segs, last.segs...)
		dst.n += last.n
		shards = shards[:len(shards)-1]
	}
	return shards
}

func maxDur(ds []simclock.Duration) simclock.Duration {
	var m simclock.Duration
	for _, d := range ds {
		if d > m {
			m = d
		}
	}
	return m
}

// runShards opens one sink per shard and streams them concurrently on a
// bounded pool. Every worker closes (or aborts) its own sink, so a striped
// assembly either completes or is discarded as a whole. The merged
// Duration is the slowest worker — the wall-clock of the parallel capture.
func (c *Checkpointer) runShards(p *proc.Process, pl *plan, workers int, chunk int64, open ShardSinkFactory) (*Stats, error) {
	onHost := p.Node().IsHost()
	chunk = chunkOrDefault(chunk)
	shards := buildShards(pl.segs, pl.total, workers, chunk)
	sinks := make([]stream.Sink, len(shards))
	for i, sh := range shards {
		s, err := open(sh.off, sh.n, pl.total)
		if err != nil {
			for _, prev := range sinks[:i] {
				prev.Abort()
			}
			return nil, err
		}
		sinks[i] = s
	}
	durs := make([]simclock.Duration, len(shards))
	marks := make([][]retryMark, len(shards))
	err := fanout.Run(workers, len(shards), func(i int) error {
		acc := simclock.NewPipelineAccum()
		sink := sinks[i]
		written := int64(0) // durable watermark, bytes into the shard
		attempt := 1
		for {
			werr := c.streamShard(sink, shards[i], written, onHost, chunk, acc)
			if werr == nil {
				durs[i] = acc.Total()
				return nil
			}
			// Advance the watermark by whatever this transport got
			// acknowledged before it failed; the resumed stream starts
			// there instead of at the shard's front.
			if wm, ok := sink.(stream.Watermarked); ok {
				written += wm.Acked()
			}
			if !c.retry.Enabled() || attempt >= c.retry.MaxAttempts {
				sink.Abort()
				return werr
			}
			// Part company with the failed transport. A Detacher keeps
			// the remote assembly (and its durable bytes) alive for the
			// resumed stream; anything else is aborted and the shard
			// starts over.
			if dt, ok := sink.(stream.Detacher); ok {
				dt.Detach()
			} else {
				sink.Abort()
				written = 0
			}
			attempt++
			backoff := c.retry.BackoffFor(attempt)
			marks[i] = append(marks[i], retryMark{at: acc.Total(), backoff: backoff, attempt: attempt})
			acc.Add(backoff)
			off, n := shards[i].off+written, shards[i].n-written
			if n <= 0 {
				// Every byte was acknowledged but the close handshake was
				// lost: rejoin the assembly over the full stripe, write
				// nothing, and close it again (idempotent — the remote
				// coverage is already credited).
				off, n, written = shards[i].off, shards[i].n, shards[i].n
			}
			ns, err := open(off, n, pl.total)
			if err != nil {
				return err
			}
			sink = ns
			sinks[i] = ns
		}
	})
	if err != nil {
		return nil, err
	}
	bytes := make([]int64, len(shards))
	for i, sh := range shards {
		bytes[i] = sh.n
	}
	c.emitStreamSpans(p, "capture_stream", c.spanStart(), durs, bytes)
	c.emitRetrySpans(p, c.spanStart(), marks)
	st := pl.st
	st.Duration = maxDur(durs)
	return &st, nil
}

// streamShard replays a shard's layout into sink, skipping the first
// written bytes (already durable at the remote end from a previous
// attempt), then flushes and closes the sink. The skipped prefix charges
// nothing: those pages were walked and shipped by the attempt that got
// them acknowledged.
func (c *Checkpointer) streamShard(sink stream.Sink, sh shard, written int64, onHost bool, chunk int64, acc *simclock.PipelineAccum) error {
	pos := int64(0)
	for _, sg := range sh.segs {
		l := sg.fileLen()
		if pos+l <= written {
			pos += l
			continue
		}
		skip := written - pos
		if skip < 0 {
			skip = 0
		}
		pos += l
		if sg.extraWalk > 0 && skip == 0 {
			acc.Add(sg.extraWalk)
		}
		if sg.region == nil {
			b := sg.meta
			wb := sg.walkBytes
			if skip > 0 {
				b = b.Slice(skip, l-skip)
				wb = b.Len()
			}
			cost, err := sink.WriteBlob(b)
			if err != nil {
				return err
			}
			stream.Observe(acc, cost, c.walkStage(onHost, wb))
			continue
		}
		content := sg.region.SnapshotRange(sg.regOff+skip, sg.n-skip)
		err := content.ForEachChunk(chunk, func(piece blob.Blob) error {
			cost, err := sink.WriteBlob(piece)
			if err != nil {
				return err
			}
			stream.Observe(acc, cost, c.walkStage(onHost, piece.Len()))
			return nil
		})
		if err != nil {
			return err
		}
	}
	if fl, ok := sink.(stream.Flusher); ok {
		cost, err := fl.Flush()
		if err != nil {
			return err
		}
		stream.Observe(acc, cost)
	}
	return sink.Close()
}

// retryMark records one stream retry for the trace: at which virtual
// offset of the worker's pipeline it happened and how long it backed off.
type retryMark struct {
	at      simclock.Duration
	backoff simclock.Duration
	attempt int
}

// emitRetrySpans records a "stream_retry" span on each stream's track for
// every retry it took, so a Perfetto trace shows the fault and the
// recovery gap. No-op unless WithSpans installed a tracer and scope.
func (c *Checkpointer) emitRetrySpans(p *proc.Process, base simclock.Duration, marks [][]retryMark) {
	if c.sp == nil || c.sp.scope == 0 {
		return
	}
	for i, ms := range marks {
		for _, m := range ms {
			tk := c.sp.tracer.Track(p.Node().String(), fmt.Sprintf("%s/stream %d", p.Name(), i))
			tk.Emit(c.sp.scope, "stream_retry", base+m.at, m.backoff,
				map[string]int64{"attempt": int64(m.attempt), "stream": int64(i)})
		}
	}
}

// spanStart returns the operation's begin time installed by WithSpans.
func (c *Checkpointer) spanStart() simclock.Duration {
	if c.sp == nil {
		return 0
	}
	return c.sp.start
}

// CheckpointFrozenParallel serializes an already-quiesced process across
// workers concurrent sinks, chunking page runs at chunk bytes (<=0 means
// PageChunk). The concatenated shards are byte-identical to what
// CheckpointFrozen writes to a single sink.
func (c *Checkpointer) CheckpointFrozenParallel(p *proc.Process, workers int, chunk int64, open ShardSinkFactory) (*Stats, error) {
	if p.State() != proc.Running {
		return nil, fmt.Errorf("blcr: cannot checkpoint %s process %s", p.State(), p.Name())
	}
	return c.runShards(p, c.planFull(p), workers, chunk, open)
}

// CheckpointDeltaFrozenParallel is CheckpointFrozenParallel for the delta
// format: only dirty ranges travel, striped across workers. Regions are
// marked clean once every shard has committed.
func (c *Checkpointer) CheckpointDeltaFrozenParallel(p *proc.Process, workers int, chunk int64, open ShardSinkFactory) (*Stats, error) {
	st, err := c.CheckpointDeltaFrozenParallelKeepDirty(p, workers, chunk, open)
	if err != nil {
		return nil, err
	}
	for _, r := range p.Regions() {
		r.MarkClean()
	}
	return st, nil
}

// CheckpointDeltaFrozenParallelKeepDirty is CheckpointDeltaFrozenParallel
// without the clean-mark. Callers that verify the snapshot end-to-end —
// and may have to redo the whole capture from the same dirty set — mark
// the regions clean themselves once satisfied.
func (c *Checkpointer) CheckpointDeltaFrozenParallelKeepDirty(p *proc.Process, workers int, chunk int64, open ShardSinkFactory) (*Stats, error) {
	if p.State() != proc.Running {
		return nil, fmt.Errorf("blcr: cannot checkpoint %s process %s", p.State(), p.Name())
	}
	return c.runShards(p, c.planDelta(p, p.Node().IsHost()), workers, chunk, open)
}

// pageRun is one region's pages at a known context-file offset, discovered
// by the restart scan.
type pageRun struct {
	region  *proc.Region
	regOff  int64
	fileOff int64
	n       int64
}

// RestartParallel rebuilds a process from a context file of size bytes
// reachable through range reads. A serial scan hops the region table
// (skipping page runs by offset), the process is spawned and its regions
// allocated, and then workers stream the page runs back concurrently —
// each from its own range-opened source, chunk bytes at a time (<=0 means
// PageChunk).
func (c *Checkpointer) RestartParallel(size int64, workers int, chunk int64, open RangeSourceFactory, spawn Spawner) (*proc.Process, *Stats, error) {
	chunk = chunkOrDefault(chunk)
	acc := simclock.NewPipelineAccum()
	sc := &rangeScanner{c: c, open: open, size: size, acc: acc}
	defer sc.close()
	st := &Stats{}

	dec, err := sc.readRecord()
	if err != nil {
		return nil, nil, err
	}
	if tag := dec.u16(); tag != tagHeader {
		return nil, nil, badContext("expected header, got tag %#x", tag)
	}
	if m := dec.str(); m != magic {
		return nil, nil, badContext("bad magic %q", m)
	}
	if v := dec.u64(); v != formatVersion {
		return nil, nil, badContext("unsupported version %d", v)
	}
	st.MetaWrites++

	dec, err = sc.readRecord()
	if err != nil {
		return nil, nil, err
	}
	if tag := dec.u16(); tag != tagProcMeta {
		return nil, nil, badContext("expected process metadata, got tag %#x", tag)
	}
	img := &Image{Name: dec.str(), PID: int(dec.u64())}
	_ = dec.u64() // original node
	nThreads := int(dec.u64())
	nRegions := int(dec.u64())
	st.MetaWrites++

	for i := 0; i < nThreads; i++ {
		dec, err = sc.readRecord()
		if err != nil {
			return nil, nil, err
		}
		if tag := dec.u16(); tag != tagThread {
			return nil, nil, badContext("expected thread record, got tag %#x", tag)
		}
		img.Threads = append(img.Threads, dec.str())
		st.MetaWrites++
		st.Threads++
	}

	p, err := spawn(img)
	if err != nil {
		return nil, nil, fmt.Errorf("blcr: spawning restore target: %w", err)
	}
	sc.onHost = p.Node().IsHost()
	p.PauseSteps()
	abandon := func(err error) (*proc.Process, *Stats, error) {
		p.Terminate()
		return nil, nil, err
	}

	var runs []pageRun
	for i := 0; i < nRegions; i++ {
		dec, err = sc.readRecord()
		if err != nil {
			return abandon(err)
		}
		if tag := dec.u16(); tag != tagRegionMeta {
			return abandon(badContext("expected region metadata, got tag %#x", tag))
		}
		name := dec.str()
		kind := proc.RegionKind(dec.u64())
		seed := dec.u64()
		rsize := int64(dec.u64())
		pinned := dec.u64() == 1
		external := dec.u64() == 1
		st.MetaWrites++

		reg, err := p.AddRegion(name, kind, rsize, seed)
		if err != nil {
			return abandon(fmt.Errorf("blcr: restoring region %q: %w", name, err))
		}
		if pinned {
			reg.Pin()
		}
		st.Regions++
		if external {
			continue
		}
		if rsize > 0 {
			runs = append(runs, pageRun{region: reg, fileOff: sc.pos(), n: rsize})
			if err := sc.skip(rsize); err != nil {
				return abandon(err)
			}
		}
		st.Bytes += rsize
	}
	dec, err = sc.readRecord()
	if err != nil {
		return abandon(err)
	}
	if tag := dec.u16(); tag != tagTrailer {
		return abandon(badContext("expected trailer, got tag %#x", tag))
	}
	if n := int(dec.u64()); n != nRegions {
		return abandon(badContext("trailer region count %d != %d", n, nRegions))
	}
	st.MetaWrites++
	st.Bytes += int64(st.MetaWrites) * (metaRecordSize + 8)

	// Load the page runs concurrently, splitting at chunk boundaries so
	// big regions spread across all workers.
	pieces := splitRuns(runs, workers, chunk)
	durs := make([]simclock.Duration, len(pieces))
	onHost := p.Node().IsHost()
	err = fanout.Run(workers, len(pieces), func(i int) error {
		d, err := c.loadRun(pieces[i], onHost, chunk, open)
		durs[i] = d
		return err
	})
	if err != nil {
		return abandon(err)
	}
	scanDur := acc.Total()
	bytes := make([]int64, len(pieces))
	for i, pc := range pieces {
		bytes[i] = pc.n
	}
	c.emitStreamSpans(p, "restore_stream", c.spanStart()+scanDur, durs, bytes)
	st.Duration = scanDur + maxDur(durs)
	return p, st, nil
}

// splitRuns cuts page runs so that workers can balance: each piece is at
// most ceil(total/workers) bytes, cut at chunk boundaries.
func splitRuns(runs []pageRun, workers int, chunk int64) []pageRun {
	if workers < 1 {
		workers = 1
	}
	var total int64
	for _, r := range runs {
		total += r.n
	}
	if total == 0 {
		return runs
	}
	target := (total + int64(workers) - 1) / int64(workers)
	target -= target % chunk
	if target < chunk {
		target = chunk
	}
	var pieces []pageRun
	for _, r := range runs {
		for r.n > target {
			head := r
			head.n = target
			pieces = append(pieces, head)
			r.regOff += target
			r.fileOff += target
			r.n -= target
		}
		pieces = append(pieces, r)
	}
	return pieces
}

// loadRun streams one piece of a region's pages from its own range source.
// Reads are idempotent, so a transport fault retries by reopening the
// range at the current offset and continuing (bounded by the retry
// policy, with virtual backoff charged into the pipeline).
func (c *Checkpointer) loadRun(run pageRun, onHost bool, chunk int64, open RangeSourceFactory) (simclock.Duration, error) {
	acc := simclock.NewPipelineAccum()
	restoreStage := c.model.PhiMemcpy
	if onHost {
		restoreStage = c.model.HostMemcpy
	}
	var off int64
	attempt := 1
	for {
		err := func() error {
			src, err := open(run.fileOff+off, run.n-off)
			if err != nil {
				return err
			}
			defer src.Close() //nolint:errcheck // read-side close failure has nothing to recover
			for off < run.n {
				piece, cost, err := src.Next(chunk)
				if err == io.EOF {
					return badContext("truncated page run")
				}
				if err != nil {
					return err
				}
				stream.Observe(acc, cost, restoreStage(piece.Len()))
				run.region.WriteBlob(run.regOff+off, piece)
				off += piece.Len()
			}
			return nil
		}()
		if err == nil {
			return acc.Total(), nil
		}
		if !c.retry.Enabled() || attempt >= c.retry.MaxAttempts {
			return acc.Total(), err
		}
		attempt++
		acc.Add(c.retry.BackoffFor(attempt))
	}
}

// RestartChainParallel restores a base context in parallel, then applies
// the delta chain in order (deltas are small; the base carries the bytes).
func (c *Checkpointer) RestartChainParallel(size int64, workers int, chunk int64, open RangeSourceFactory, deltas []stream.Source, spawn Spawner) (*proc.Process, *Stats, error) {
	p, st, err := c.RestartParallel(size, workers, chunk, open, spawn)
	if err != nil {
		return nil, nil, err
	}
	for i, d := range deltas {
		ds, err := c.ApplyDelta(p, d)
		if err != nil {
			p.Terminate()
			return nil, nil, fmt.Errorf("blcr: applying delta %d: %w", i, err)
		}
		st.Bytes += ds.Bytes
		st.Duration += ds.Duration
	}
	return p, st, nil
}

// rangeScanner reads metadata records from the front of a context file
// through successive small range opens, and skips page runs by offset
// instead of reading them — the cheap scan that makes parallel restart
// possible.
type rangeScanner struct {
	c      *Checkpointer
	open   RangeSourceFactory
	size   int64
	acc    *simclock.PipelineAccum
	onHost bool

	src     stream.Source
	readPos int64 // absolute offset of the next byte src will return
	winEnd  int64 // absolute end of the current window
	pending blob.Blob
	pendOff int64
	filePos int64 // absolute offset of the next byte take() returns
	retries int   // transport retries used so far, bounded by the policy
}

// scanWindow is how much of the file one scan range-open covers. Large
// enough to swallow a burst of metadata records in one open, small enough
// that over-reading into page bytes is cheap.
const scanWindow = 4096

func (s *rangeScanner) buffered() int64 { return s.pending.Len() - s.pendOff }

func (s *rangeScanner) close() {
	if s.src != nil {
		s.src.Close() //nolint:errcheck // scanner teardown; reads already completed
		s.src = nil
	}
}

// fault consumes one retry from the scanner's budget: the current source
// is dropped (pull reopens a window at readPos — reads are idempotent)
// and the backoff is charged as virtual time. Out of budget, it returns
// the original error.
func (s *rangeScanner) fault(err error) error {
	rp := s.c.retry
	if !rp.Enabled() || s.retries >= rp.MaxAttempts-1 {
		return err
	}
	s.retries++
	s.acc.Add(rp.BackoffFor(s.retries + 1))
	s.close()
	return nil
}

func (s *rangeScanner) pull(n int64) error {
	for s.buffered() < n {
		if s.src == nil || s.readPos >= s.winEnd {
			s.close()
			win := int64(scanWindow)
			if rem := s.size - s.readPos; win > rem {
				win = rem
			}
			if win <= 0 {
				return badContext("truncated context file")
			}
			src, err := s.open(s.readPos, win)
			if err != nil {
				if ferr := s.fault(err); ferr != nil {
					return ferr
				}
				continue
			}
			s.src = src
			s.winEnd = s.readPos + win
		}
		chunk, cost, err := s.src.Next(s.winEnd - s.readPos)
		if err == io.EOF {
			return badContext("truncated context file")
		}
		if err != nil {
			if ferr := s.fault(err); ferr != nil {
				return ferr
			}
			continue
		}
		restoreStage := s.c.model.PhiMemcpy
		if s.onHost {
			restoreStage = s.c.model.HostMemcpy
		}
		stream.Observe(s.acc, cost, restoreStage(chunk.Len()))
		s.readPos += chunk.Len()
		if s.pendOff > 0 {
			s.pending = s.pending.Slice(s.pendOff, s.pending.Len()-s.pendOff)
			s.pendOff = 0
		}
		s.pending = blob.Concat(s.pending, chunk)
	}
	return nil
}

func (s *rangeScanner) take(n int64) (blob.Blob, error) {
	if err := s.pull(n); err != nil {
		return blob.Blob{}, err
	}
	b := s.pending.Slice(s.pendOff, n)
	s.pendOff += n
	s.filePos += n
	return b, nil
}

// pos is the file offset of the next unconsumed byte.
func (s *rangeScanner) pos() int64 { return s.filePos }

// skip advances past n bytes (a page run) without reading them.
func (s *rangeScanner) skip(n int64) error {
	if n <= s.buffered() {
		s.pendOff += n
		s.filePos += n
		return nil
	}
	rest := n - s.buffered()
	s.pending = blob.Blob{}
	s.pendOff = 0
	s.close()
	s.filePos = s.readPos + rest
	s.readPos = s.filePos
	if s.filePos > s.size {
		return badContext("page run past end of context file")
	}
	return nil
}

// readRecord parses one framed metadata record.
func (s *rangeScanner) readRecord() (*recDecoder, error) {
	hdr, err := s.take(8)
	if err != nil {
		return nil, err
	}
	hb := hdr.Bytes()
	var n int64
	for _, b := range hb {
		n = n<<8 | int64(b)
	}
	if n <= 0 || n > 1<<20 {
		return nil, badContext("implausible record length %d", n)
	}
	body, err := s.take(n)
	if err != nil {
		return nil, err
	}
	return &recDecoder{buf: body.Bytes()}, nil
}
