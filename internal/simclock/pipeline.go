package simclock

// Stage is the cost function of one stage of a chunked transfer pipeline:
// given a chunk of n bytes it returns the virtual time the stage needs to
// process that chunk.
type Stage func(bytes int64) Duration

// Pipeline returns the end-to-end virtual time of streaming total bytes
// through a sequence of stages in chunks of chunkSize bytes, where each
// stage can work on a different chunk concurrently (the classic software
// pipeline: Snapify-IO's socket -> RDMA buffer -> SCIF -> file chain
// operates exactly this way with a 4 MiB staging buffer).
//
// The formula is the standard pipelined-latency bound: the first chunk pays
// every stage in sequence (fill), and each subsequent chunk adds only the
// cost of the slowest stage (steady state). A final partial chunk is
// accounted with its actual size.
func Pipeline(total, chunkSize int64, stages ...Stage) Duration {
	if total <= 0 || len(stages) == 0 {
		return 0
	}
	if chunkSize <= 0 || chunkSize > total {
		chunkSize = total
	}
	fullChunks := total / chunkSize
	rem := total % chunkSize

	// Fill: the first chunk traverses all stages.
	first := chunkSize
	if fullChunks == 0 {
		first = rem
	}
	var fill Duration
	for _, s := range stages {
		fill += s(first)
	}

	// Steady state: every further chunk is gated by the slowest stage.
	var steady Duration
	bottleneck := func(n int64) Duration {
		var mx Duration
		for _, s := range stages {
			if d := s(n); d > mx {
				mx = d
			}
		}
		return mx
	}
	if fullChunks > 1 {
		steady += Duration(fullChunks-1) * bottleneck(chunkSize)
	}
	if rem > 0 && fullChunks > 0 {
		steady += bottleneck(rem)
	}
	return fill + steady
}

// Serial returns the cost of streaming total bytes through the stages with
// no overlap: every chunk pays every stage (e.g. a synchronous read path
// with no readahead).
func Serial(total, chunkSize int64, stages ...Stage) Duration {
	if total <= 0 || len(stages) == 0 {
		return 0
	}
	if chunkSize <= 0 || chunkSize > total {
		chunkSize = total
	}
	var sum Duration
	for off := int64(0); off < total; off += chunkSize {
		n := chunkSize
		if total-off < n {
			n = total - off
		}
		for _, s := range stages {
			sum += s(n)
		}
	}
	return sum
}

// Rate returns a Stage with the given throughput in bytes per second.
func Rate(bandwidth int64) Stage {
	return func(n int64) Duration { return xfer(n, bandwidth) }
}

// RateWithSetup returns a Stage with a fixed per-chunk setup cost plus a
// throughput term.
func RateWithSetup(setup Duration, bandwidth int64) Stage {
	return func(n int64) Duration { return setup + xfer(n, bandwidth) }
}

// Fixed returns a Stage costing d per chunk regardless of size.
func Fixed(d Duration) Stage {
	return func(int64) Duration { return d }
}

// Max returns the larger of two durations; it expresses phases that run
// concurrently (e.g. the host-side and device-side snapshot captures in
// Fig 10a overlap, so the checkpoint pays the maximum of the two).
func Max(a, b Duration) Duration {
	if a > b {
		return a
	}
	return b
}

// MaxAll returns the maximum of the given durations (0 if none).
func MaxAll(ds ...Duration) Duration {
	var mx Duration
	for _, d := range ds {
		if d > mx {
			mx = d
		}
	}
	return mx
}
