// Package simclock is a golden fixture proving the wallclock analyzer
// exempts packages whose import path ends in internal/simclock — the one
// place the repo is allowed to touch the host clock. No findings are
// expected anywhere in this file.
package simclock

import "time"

// HostNow reads the real clock; legal only here.
func HostNow() time.Time { return time.Now() }
