// Package trace renders the benchmark harness's tables and bar-style
// figures as text, in the spirit of the paper's tables and figures.
package trace

import (
	"fmt"
	"strings"

	"snapify/internal/simclock"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// New returns a table with the given title and column headers.
func New(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// Row appends a row; values are formatted with %v.
func (t *Table) Row(values ...any) *Table {
	row := make([]string, len(values))
	for i, v := range values {
		row[i] = fmt.Sprint(v)
	}
	t.rows = append(t.rows, row)
	return t
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.rows {
		for i, v := range r {
			if i < len(widths) && len(v) > widths[i] {
				widths[i] = len(v)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(vals []string) {
		for i, v := range vals {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], v)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	line(seps)
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}

// Seconds formats a virtual duration as seconds with two decimals.
func Seconds(d simclock.Duration) string {
	return fmt.Sprintf("%.2fs", d.Seconds())
}

// Millis formats a virtual duration as milliseconds.
func Millis(d simclock.Duration) string {
	return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
}

// Bytes formats a byte count with a binary unit.
func Bytes(n int64) string {
	switch {
	case n >= simclock.GiB:
		return fmt.Sprintf("%.2fGiB", float64(n)/float64(simclock.GiB))
	case n >= simclock.MiB:
		return fmt.Sprintf("%.1fMiB", float64(n)/float64(simclock.MiB))
	case n >= simclock.KiB:
		return fmt.Sprintf("%.1fKiB", float64(n)/float64(simclock.KiB))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// Percent formats a ratio as a percentage.
func Percent(v float64) string { return fmt.Sprintf("%.2f%%", v*100) }

// Speedup formats a ratio like "6.3x".
func Speedup(v float64) string { return fmt.Sprintf("%.1fx", v) }
