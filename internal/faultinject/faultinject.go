// Package faultinject provides deterministic, virtual-clock-safe fault
// injection for the Snapify simulation (DESIGN.md §10).
//
// A fault plan is an explicit list of Fault records — link drops,
// slowdowns, message corruption/truncation, daemon crashes, partial
// stripe writes — and an Injector arms a plan against the choke points
// that already exist in the data path: scif message sends, scif RDMA
// transfers, the Snapify-IO daemon's chunk service loop, and the COI
// daemon's request dispatch. The layers consult the injector through
// Fire(site, key); they never roll dice themselves.
//
// Determinism is the contract. A fault fires when its own matched-call
// ordinal reaches Nth (and keeps firing for Count consecutive matches),
// or — for time-triggered faults — when the injector's virtual clock
// has reached At. There is no real randomness anywhere: seeded plans
// are derived with a splitmix64 generator so the same seed over the
// same site menu always yields the same plan, and replaying a plan
// yields the identical trace (pinned by test).
package faultinject

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"snapify/internal/obs"
	"snapify/internal/simclock"
)

// Kind classifies what a fault does at its injection site.
type Kind string

// The fault kinds. Sites ignore kinds they cannot express (a Crash at
// a scif send site does nothing, for example); the chaos tier pins the
// meaningful (site, kind) pairs.
const (
	// Drop severs the connection: the message or transfer fails with a
	// connection reset and both endpoint halves are closed.
	Drop Kind = "drop"
	// Slow multiplies the virtual-time cost of the operation by Factor
	// (a link slowdown / congestion event). The operation succeeds.
	Slow Kind = "slow"
	// Corrupt flips a byte in the delivered copy of a message. The
	// receiver's protocol decoder rejects it as a clean error.
	Corrupt Kind = "corrupt"
	// Truncate delivers only a prefix of the message.
	Truncate Kind = "truncate"
	// Crash crashes the serving daemon: all of its connections die,
	// all of its in-progress assemblies are discarded (partial files
	// removed), and it restarts with fresh state.
	Crash Kind = "crash"
	// PartialWrite persists only a prefix of a chunk to the backing
	// file system and then fails the chunk. Coverage is only credited
	// for fully written chunks, so an idempotent replay repairs it.
	PartialWrite Kind = "partial_write"
)

// Site names an injection choke point. The set of sites is closed: the
// data path consults exactly these, and snapifylint's faultgate
// analyzer keeps the hook surface from leaking elsewhere.
type Site string

// The injection sites.
const (
	// SiteSend is scif.Endpoint.Send — every control message between a
	// stream client and a Snapify-IO daemon crosses it. Key: "a->b"
	// node-name pair (see LinkKey).
	SiteSend Site = "scif.send"
	// SiteRDMA is scif RDMA (VReadFrom/VWriteTo) — the bulk chunk
	// payload path. Key: "a->b" node-name pair.
	SiteRDMA Site = "scif.rdma"
	// SiteChunk is the Snapify-IO daemon's per-chunk service point
	// (write side). Key: decimal stripe offset of the stream, "0" for
	// unstriped streams — so a plan can target one stream index of a
	// parallel capture.
	SiteChunk Site = "snapifyio.chunk"
	// SiteDaemon is the Snapify-IO daemon crash point, consulted once
	// per served chunk. Key: node name ("host", "mic0", ...).
	SiteDaemon Site = "snapifyio.daemon"
	// SiteRequest is the COI daemon's capture/restore request
	// dispatch. Key: node name of the daemon.
	SiteRequest Site = "coi.request"
	// SiteStore is the snapshot store's mutation points. Key "commit"
	// fires between a manifest's temp write and its final rename (a
	// Crash there leaves the snapshot absent, never torn); key "gc"
	// fires once per chunk the sweep examines (a Crash abandons the
	// sweep mid-way — re-running GC must converge).
	SiteStore Site = "snapstore.op"
	// SiteFederation is the cross-host store federation's choke points.
	// Key "negotiate" fires when a ship negotiates against the
	// destination store, "chunk" once per chunk shipped cross-host,
	// "repair" once per replica re-established by the repair loop. A
	// Crash kills the destination host mid-op (the federation marks it
	// dead and the op fails with ErrHostDead); ships and repairs must
	// stay retryable against the surviving members.
	SiteFederation Site = "snapstore.federation"
)

// LinkKey renders the canonical key for a directed link fault at
// SiteSend/SiteRDMA: "from->to" using simnet node names.
func LinkKey(from, to string) string { return from + "->" + to }

// Fault is one armed fault. Matching: Site must equal the firing site
// and Key must equal the firing key (empty Key matches every key at
// the site). Trigger: if At > 0 the fault fires on the first matched
// call at or after virtual time At; otherwise it fires on the Nth
// matched call (1-based; 0 means 1). Either way it keeps firing for
// Count consecutive matched calls (0 means 1).
type Fault struct {
	Site  Site              `json:"site"`
	Key   string            `json:"key,omitempty"`
	Kind  Kind              `json:"kind"`
	Nth   int64             `json:"nth,omitempty"`
	Count int64             `json:"count,omitempty"`
	At    simclock.Duration `json:"at_ns,omitempty"`
	// Factor is the cost multiplier for Slow faults (0 means 2).
	Factor int64 `json:"factor,omitempty"`
}

// nth returns the 1-based trigger ordinal.
func (f Fault) nth() int64 {
	if f.Nth <= 0 {
		return 1
	}
	return f.Nth
}

// count returns how many consecutive matches fire.
func (f Fault) count() int64 {
	if f.Count <= 0 {
		return 1
	}
	return f.Count
}

// SlowFactor returns the effective cost multiplier of a Slow fault.
func (f Fault) SlowFactor() int64 {
	if f.Factor <= 1 {
		return 2
	}
	return f.Factor
}

// Plan is an ordered list of faults. Order matters only for Fire's
// first-match-wins rule when several faults trigger on the same call.
type Plan []Fault

// ParsePlan decodes a JSON fault plan (the snapbench -faults format:
// a JSON array of Fault objects).
func ParsePlan(data []byte) (Plan, error) {
	var p Plan
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("faultinject: parsing plan: %w", err)
	}
	for i, f := range p {
		if f.Site == "" || f.Kind == "" {
			return nil, fmt.Errorf("faultinject: plan[%d]: site and kind are required", i)
		}
	}
	return p, nil
}

// Encode renders the plan as deterministic JSON (the -faults format).
func (p Plan) Encode() ([]byte, error) { return json.MarshalIndent(p, "", "  ") }

// SiteKey is one candidate injection point for seeded plan derivation.
type SiteKey struct {
	Site Site
	Key  string
}

// Kinds a seeded plan draws from, in a fixed order. Crash and
// PartialWrite are site-specific, so the seeded menu sticks to the
// kinds every site can express.
var seededKinds = []Kind{Drop, Slow, Corrupt, Truncate}

// SeededPlan derives n faults from seed over the given menu of
// candidate sites, with trigger ordinals in [1, maxNth]. The
// derivation is a pure function of its arguments (splitmix64), so the
// same seed always produces the same plan — this is what makes a
// chaos run replayable from nothing but its seed.
func SeededPlan(seed uint64, menu []SiteKey, n, maxNth int) Plan {
	if len(menu) == 0 || n <= 0 {
		return nil
	}
	if maxNth < 1 {
		maxNth = 1
	}
	s := seed
	next := func() uint64 {
		// splitmix64 (Steele et al.): a tiny, well-mixed deterministic
		// generator — explicitly not a source of real randomness.
		s += 0x9E3779B97F4A7C15
		z := s
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
	p := make(Plan, 0, n)
	for i := 0; i < n; i++ {
		sk := menu[next()%uint64(len(menu))]
		kind := seededKinds[next()%uint64(len(seededKinds))]
		p = append(p, Fault{
			Site: sk.Site,
			Key:  sk.Key,
			Kind: kind,
			Nth:  int64(next()%uint64(maxNth)) + 1,
		})
	}
	return p
}

// Injector arms a plan and answers Fire calls from the choke points.
// Each fault keeps a private counter of matched calls, so trigger
// ordinals are per-fault and independent of unrelated traffic at other
// (site, key) pairs. An Injector is safe for concurrent use. A nil
// Injector never fires.
type Injector struct {
	mu     sync.Mutex
	faults []armed
	now    func() simclock.Duration
	fired  map[string]*obs.Counter
	reg    *obs.Registry
}

type armed struct {
	Fault
	calls int64 // matched calls so far
	shots int64 // times fired
}

// New builds an injector over plan. now supplies the injector's
// virtual clock for At-triggered faults; it may be nil, in which case
// At faults never fire (ordinal faults are unaffected).
func New(plan Plan, now func() simclock.Duration) *Injector {
	in := &Injector{now: now}
	for _, f := range plan {
		in.faults = append(in.faults, armed{Fault: f})
	}
	return in
}

// PublishMetrics counts fired faults in reg as
// faultinject_fired_total{site,kind}.
func (in *Injector) PublishMetrics(reg *obs.Registry) {
	if in == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.reg = reg
	in.fired = make(map[string]*obs.Counter)
}

// Fire reports the fault, if any, that triggers on this call at
// (site, key). The matched-call counter of every matching fault
// advances regardless of whether it fires. First match wins when
// several faults trigger together.
func (in *Injector) Fire(site Site, key string) *Fault {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	var hit *Fault
	for i := range in.faults {
		a := &in.faults[i]
		if a.Site != site || (a.Key != "" && a.Key != key) {
			continue
		}
		a.calls++
		trigger := false
		if a.At > 0 {
			trigger = in.now != nil && in.now() >= a.At
		} else {
			trigger = a.calls >= a.nth()
		}
		if trigger && a.shots < a.count() && hit == nil {
			a.shots++
			f := a.Fault
			hit = &f
		}
	}
	if hit != nil && in.reg != nil {
		ck := string(hit.Site) + "\x00" + string(hit.Kind)
		c, ok := in.fired[ck]
		if !ok {
			c = in.reg.Counter("faultinject_fired_total",
				"Injected faults fired, by site and kind.",
				obs.L("site", string(hit.Site)), obs.L("kind", string(hit.Kind)))
			in.fired[ck] = c
		}
		c.Inc()
	}
	return hit
}

// FiredTotal returns how many faults have fired so far.
func (in *Injector) FiredTotal() int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	var n int64
	for i := range in.faults {
		n += in.faults[i].shots
	}
	return n
}

// Pending returns the armed faults that have not yet exhausted their
// shot budget, sorted by (site, key, kind) for deterministic output.
func (in *Injector) Pending() Plan {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	var p Plan
	for i := range in.faults {
		a := in.faults[i]
		if a.shots < a.count() {
			p = append(p, a.Fault)
		}
	}
	sort.Slice(p, func(i, j int) bool {
		if p[i].Site != p[j].Site {
			return p[i].Site < p[j].Site
		}
		if p[i].Key != p[j].Key {
			return p[i].Key < p[j].Key
		}
		return p[i].Kind < p[j].Kind
	})
	return p
}
