package snapify_test

import (
	"encoding/binary"
	"testing"
	"time"

	"snapify"
	"snapify/internal/proc"
)

// demoBinary is a public-API example kernel: sums the first n integers
// with its progress in device memory.
func demoBinary(name string) *snapify.Binary {
	bin := snapify.NewBinary(name)
	bin.AddRegion("state", proc.RegionHeap, 1<<16, 0)
	bin.Register("sum", func(ctx *snapify.RunContext, args []byte) ([]byte, error) {
		n := binary.BigEndian.Uint64(args)
		st := ctx.Region("state")
		buf := make([]byte, 16)
		st.ReadAt(buf, 0)
		for {
			i := binary.BigEndian.Uint64(buf[:8])
			if i >= n {
				break
			}
			if err := ctx.Step(func() {
				s := binary.BigEndian.Uint64(buf[8:])
				binary.BigEndian.PutUint64(buf[:8], i+1)
				binary.BigEndian.PutUint64(buf[8:], s+i)
				st.WriteAt(buf, 0)
				ctx.Compute(time.Millisecond)
			}); err != nil {
				return nil, err
			}
		}
		out := make([]byte, 8)
		st.ReadAt(buf, 0)
		copy(out, buf[8:])
		return out, nil
	})
	return bin
}

func runSum(t *testing.T, pl *snapify.Pipeline, n uint64) uint64 {
	t.Helper()
	args := make([]byte, 8)
	binary.BigEndian.PutUint64(args, n)
	out, err := pl.RunFunction("sum", args)
	if err != nil {
		t.Fatal(err)
	}
	return binary.BigEndian.Uint64(out)
}

func TestPublicAPIEndToEnd(t *testing.T) {
	snapify.RegisterBinary(demoBinary("pub_demo"))
	srv, err := snapify.NewServer(snapify.ServerOptions{Devices: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	if srv.Devices() != 2 {
		t.Fatalf("Devices = %d", srv.Devices())
	}

	app, err := srv.Launch("pub_demo", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	pl, err := app.Proc.CreatePipeline()
	if err != nil {
		t.Fatal(err)
	}
	if got := runSum(t, pl, 100); got != 4950 {
		t.Fatalf("sum(100) = %d", got)
	}

	// Checkpoint + resume via the five primitives.
	s := snapify.NewSnapshot("/pub/snap1", app.Proc)
	if err := snapify.Pause(s); err != nil {
		t.Fatal(err)
	}
	if err := snapify.Capture(s, snapify.CaptureOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := snapify.Wait(s); err != nil {
		t.Fatal(err)
	}
	if err := snapify.Resume(s); err != nil {
		t.Fatal(err)
	}

	// Migrate to card 2, keep computing.
	if _, _, err := snapify.Migrate(app.Proc, snapify.MigrateOptions{DeviceTo: 2, Path: "/pub/mig"}); err != nil {
		t.Fatal(err)
	}
	if got := runSum(t, pl, 200); got != 19900 {
		t.Fatalf("sum(200) after migration = %d", got)
	}

	// Swap out and back.
	snap, err := snapify.Swapout("/pub/swap", app.Proc, snapify.CaptureOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := snapify.Swapin(snap, 1, snapify.RestoreOptions{}); err != nil {
		t.Fatal(err)
	}
	if got := runSum(t, pl, 300); got != 44850 {
		t.Fatalf("sum(300) after swap = %d", got)
	}
	if app.Timeline.Now() <= 0 {
		t.Error("timeline never advanced")
	}
}

func TestPublicAppCheckpointRestart(t *testing.T) {
	snapify.RegisterBinary(demoBinary("pub_cr"))
	srv, err := snapify.NewServer(snapify.ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	app, err := srv.Launch("pub_cr", 1)
	if err != nil {
		t.Fatal(err)
	}
	pl, _ := app.Proc.CreatePipeline()
	runSum(t, pl, 50)

	cr := app.NewApp()
	rep, err := cr.Checkpoint("/pub/appcr")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total() <= 0 {
		t.Error("empty checkpoint report")
	}
	want := runSum(t, pl, 120)
	app.Close()

	app2, host2, rrep, err := srv.RestartApp("/pub/appcr")
	if err != nil {
		t.Fatal(err)
	}
	defer host2.Terminate()
	if rrep.Total() <= 0 {
		t.Error("empty restart report")
	}
	if got := runSumOn(t, app2.Proc().Pipelines()[0], 120); got != want {
		t.Errorf("restarted sum = %d, want %d", got, want)
	}
}

func runSumOn(t *testing.T, pl *snapify.Pipeline, n uint64) uint64 {
	t.Helper()
	args := make([]byte, 8)
	binary.BigEndian.PutUint64(args, n)
	out, err := pl.RunFunction("sum", args)
	if err != nil {
		t.Fatal(err)
	}
	return binary.BigEndian.Uint64(out)
}
