package obs

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"snapify/internal/simclock"
)

// TestFlightRecorderRing pins the ring semantics: the recorder keeps
// the most recent capacity spans oldest-first and counts overwrites.
func TestFlightRecorderRing(t *testing.T) {
	f := NewFlightRecorder(4, nil)
	tr := NewTracer()
	tr.SetOnEmit(f.Record)
	tk := tr.Track("host", "app")
	for i := 0; i < 7; i++ {
		tk.Emit(0, fmt.Sprintf("op_%d", i), simclock.Duration(i*10), 5, nil)
	}
	d := f.Trigger("unit test")
	if d.SpanCount != 4 {
		t.Fatalf("ring held %d spans, want 4", d.SpanCount)
	}
	if d.Dropped != 3 {
		t.Errorf("dropped = %d, want 3", d.Dropped)
	}
	// Oldest surviving span is op_3; the trace must contain op_3..op_6
	// and none earlier.
	trace := string(d.Trace)
	for i := 0; i < 3; i++ {
		if strings.Contains(trace, fmt.Sprintf("op_%d", i)) {
			t.Errorf("evicted span op_%d still in dump", i)
		}
	}
	for i := 3; i < 7; i++ {
		if !strings.Contains(trace, fmt.Sprintf("op_%d", i)) {
			t.Errorf("span op_%d missing from dump", i)
		}
	}
	if err := ValidateChromeTrace([]byte(d.Trace)); err != nil {
		t.Errorf("dump trace does not validate: %v", err)
	}
}

// TestFlightRecorderDeltas: counter movement between baseline and
// trigger is reported sorted by series, and the baseline resets so the
// next incident reports only what moved since.
func TestFlightRecorderDeltas(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("zz_total", "Z.").Add(5) // pre-baseline
	f := NewFlightRecorder(8, reg)
	reg.Counter("aa_total", "A.").Add(2)
	reg.Counter("zz_total", "Z.").Add(1)
	d := f.Trigger("first")
	want := []CounterDelta{{Series: "aa_total", Delta: 2}, {Series: "zz_total", Delta: 1}}
	if len(d.CounterDeltas) != len(want) {
		t.Fatalf("deltas %+v, want %+v", d.CounterDeltas, want)
	}
	for i, cd := range d.CounterDeltas {
		if cd != want[i] {
			t.Errorf("delta[%d] = %+v, want %+v", i, cd, want[i])
		}
	}
	d2 := f.Trigger("second")
	if len(d2.CounterDeltas) != 0 {
		t.Errorf("second trigger reported stale deltas %+v", d2.CounterDeltas)
	}
}

// TestFlightRecorderDumpFile: with a dump dir set, Trigger writes a
// file that DecodeFlightDump round-trips (including trace
// re-validation), and LastDump returns the same incident.
func TestFlightRecorderDumpFile(t *testing.T) {
	dir := t.TempDir()
	f := NewFlightRecorder(8, nil)
	tr := NewTracer()
	tr.SetOnEmit(f.Record)
	scope := tr.NewScope()
	tr.Track("host", "app").Emit(scope, "capture_failed", 100, 0, nil)
	d := f.Trigger("capture error")
	if f.LastDump() != d {
		t.Error("LastDump does not return the trigger result")
	}
	if d.Path != "" {
		t.Fatalf("dump written with no dir set: %q", d.Path)
	}
	f.SetDumpDir(dir)
	d = f.Trigger("capture error again")
	wantPath := filepath.Join(dir, "flight_002.json")
	if d.Path != wantPath {
		t.Fatalf("dump path %q, want %q (write err %q)", d.Path, wantPath, d.WriteErr)
	}
	b, err := os.ReadFile(d.Path)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeFlightDump(b)
	if err != nil {
		t.Fatal(err)
	}
	if back.Reason != "capture error again" || back.SpanCount != 1 {
		t.Errorf("round-trip dump %+v", back)
	}
	if !strings.Contains(back.Summary(), "capture error again") {
		t.Errorf("summary missing reason:\n%s", back.Summary())
	}
}

// TestFlightRecorderNil: the nil-safety contract call sites rely on.
func TestFlightRecorderNil(t *testing.T) {
	var f *FlightRecorder
	f.Record(Span{Name: "x"})
	f.SetDumpDir("/nope")
	if d := f.Trigger("nil"); d != nil {
		t.Errorf("nil recorder triggered %+v", d)
	}
	if f.LastDump() != nil {
		t.Error("nil recorder has a dump")
	}
	var d *FlightDump
	if !strings.Contains(d.Summary(), "no flight dump") {
		t.Error("nil dump summary drifted")
	}
}
