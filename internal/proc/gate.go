package proc

import (
	"errors"
	"sync"
)

// ErrGateShutdown is returned by Step when the process terminates while a
// worker is blocked at the gate.
var ErrGateShutdown = errors.New("proc: process terminated at step gate")

// stepGate serializes computation steps against pauses. Simulated kernels
// call Step between computation steps; Pause blocks until every in-flight
// step has finished and then holds new steps until Resume. This is the
// safe-point mechanism that stands in for BLCR freezing threads mid-kernel
// (the drained state the gate produces is one the real BLCR could observe).
type stepGate struct {
	mu           sync.Mutex
	cond         *sync.Cond
	pauseDepth   int
	active       int
	shutdownFlag bool
}

func (g *stepGate) init() {
	g.cond = sync.NewCond(&g.mu)
}

// enter blocks while paused, then marks a step active.
func (g *stepGate) enter() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	for g.pauseDepth > 0 && !g.shutdownFlag {
		g.cond.Wait()
	}
	if g.shutdownFlag {
		return ErrGateShutdown
	}
	g.active++
	return nil
}

// leave marks a step finished.
func (g *stepGate) leave() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.active--
	if g.active < 0 {
		panic("proc: step gate leave without enter") //nolint:paniclib // protocol invariant: enter/leave are paired by the step loop
	}
	g.cond.Broadcast()
}

// pause blocks new steps and waits for in-flight steps to drain. Pauses
// nest: the gate re-opens only when every pause has been matched by a
// resume (the checkpointer quiesces inside an already-paused Snapify flow).
func (g *stepGate) pause() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.pauseDepth++
	for g.active > 0 && !g.shutdownFlag {
		g.cond.Wait()
	}
}

// resume undoes one pause.
func (g *stepGate) resume() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.pauseDepth == 0 {
		panic("proc: resume without matching pause") //nolint:paniclib // protocol invariant: pause/resume are paired by the snapshot driver
	}
	g.pauseDepth--
	if g.pauseDepth == 0 {
		g.cond.Broadcast()
	}
}

// shutdown releases all waiters with ErrGateShutdown.
func (g *stepGate) shutdown() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.shutdownFlag = true
	g.cond.Broadcast()
}

// BeginStep marks the start of one computation step, blocking while the
// process is paused. Every BeginStep must be paired with EndStep.
func (p *Process) BeginStep() error { return p.gate.enter() }

// EndStep marks the end of a computation step.
func (p *Process) EndStep() { p.gate.leave() }

// PauseSteps blocks new computation steps and waits until all in-flight
// steps have drained. After PauseSteps returns, no simulated kernel is
// mid-step, so all computation state is in memory regions.
func (p *Process) PauseSteps() { p.gate.pause() }

// ResumeSteps re-opens the step gate.
func (p *Process) ResumeSteps() { p.gate.resume() }

// StepActive returns the number of steps currently executing (test hook).
func (p *Process) StepActive() int {
	p.gate.mu.Lock()
	defer p.gate.mu.Unlock()
	return p.gate.active
}

// StepsPaused reports whether the gate is holding new steps (test hook).
func (p *Process) StepsPaused() bool {
	p.gate.mu.Lock()
	defer p.gate.mu.Unlock()
	return p.gate.pauseDepth > 0
}
