// Package fanout provides the bounded worker pool the parallel snapshot
// data path runs on: the checkpointer, the COI daemon, and the core API all
// partition their per-region or per-shard work with Run.
package fanout

import "sync"

// Run executes fn(i) for every i in [0, items) on at most workers
// concurrent goroutines and waits for all of them. It returns the first
// error in item order (all items run regardless — snapshot shards must not
// be silently skipped, and a striped sink is only consistent once every
// worker has finished or aborted). workers < 1 is treated as 1.
func Run(workers, items int, fn func(i int) error) error {
	if items <= 0 {
		return nil
	}
	if workers < 1 {
		workers = 1
	}
	if workers > items {
		workers = items
	}
	errs := make([]error, items)
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= items {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
