package phi

import (
	"sync"
	"testing"

	"snapify/internal/blob"
	"snapify/internal/simclock"
	"snapify/internal/simnet"
)

func TestMemBudgetBasics(t *testing.T) {
	b := NewMemBudget(1000)
	if err := b.Reserve(600); err != nil {
		t.Fatal(err)
	}
	if err := b.Reserve(500); err == nil {
		t.Fatal("over-reservation must fail")
	}
	if b.Used() != 600 || b.Free() != 400 || b.Capacity() != 1000 {
		t.Errorf("Used/Free/Capacity = %d/%d/%d", b.Used(), b.Free(), b.Capacity())
	}
	b.Release(600)
	if b.Used() != 0 {
		t.Errorf("Used = %d after release", b.Used())
	}
}

func TestMemBudgetOverReleasePanics(t *testing.T) {
	b := NewMemBudget(10)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on over-release")
		}
	}()
	b.Release(1)
}

func TestMemBudgetConcurrent(t *testing.T) {
	b := NewMemBudget(1 << 30)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				if err := b.Reserve(100); err != nil {
					t.Error(err)
					return
				}
				b.Release(100)
			}
		}()
	}
	wg.Wait()
	if b.Used() != 0 {
		t.Errorf("Used = %d after balanced ops", b.Used())
	}
}

func TestDeviceDefaults(t *testing.T) {
	d := NewDevice(simclock.Default(), 1, DeviceConfig{})
	if d.Cores != 60 || d.ThreadsPerCore != 4 || d.HWThreads() != 240 {
		t.Errorf("default card shape wrong: %d cores x %d", d.Cores, d.ThreadsPerCore)
	}
	if d.Mem.Capacity() != 8*simclock.GiB {
		t.Errorf("default memory = %d", d.Mem.Capacity())
	}
	// The OS reservation must already be charged.
	if d.Mem.Used() != 512*simclock.MiB {
		t.Errorf("OS reservation = %d", d.Mem.Used())
	}
}

func TestDeviceCannotBeHost(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for host-node device")
		}
	}()
	NewDevice(simclock.Default(), simnet.HostNode, DeviceConfig{})
}

func TestRamFSCompetesWithProcessMemory(t *testing.T) {
	// The paper's core storage constraint: a big file in the RAM fs starves
	// process allocation, and vice versa.
	d := NewDevice(simclock.Default(), 1, DeviceConfig{MemBytes: 1 * simclock.GiB, OSReserved: 100 * simclock.MiB})
	if _, err := d.FS.WriteFile("/tmp/snapshot", blob.Zeros(600*simclock.MiB)); err != nil {
		t.Fatal(err)
	}
	// Process tries to allocate 400 MiB: only ~324 MiB free.
	if err := d.Mem.Reserve(400 * simclock.MiB); err == nil {
		t.Fatal("process allocation should fail while the snapshot occupies the RAM fs")
	}
	d.FS.Remove("/tmp/snapshot")
	if err := d.Mem.Reserve(400 * simclock.MiB); err != nil {
		t.Fatalf("allocation after file removal: %v", err)
	}
}

func TestServerAssembly(t *testing.T) {
	s := NewServer(ServerConfig{Devices: 2})
	if s.Fabric.Devices() != 2 || len(s.Devices) != 2 {
		t.Fatalf("server has %d fabric devices, %d cards", s.Fabric.Devices(), len(s.Devices))
	}
	if s.Host.Node != simnet.HostNode {
		t.Error("host node wrong")
	}
	if s.Device(1).Node != 1 || s.Device(2).Node != 2 {
		t.Error("device lookup wrong")
	}
	if s.Host.Mem.Capacity() != 32*simclock.GiB {
		t.Errorf("host memory default = %d", s.Host.Mem.Capacity())
	}
	if s.Model() == nil {
		t.Error("nil model")
	}
}

func TestServerUnknownDevicePanics(t *testing.T) {
	s := NewServer(ServerConfig{})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for unknown device")
		}
	}()
	s.Device(9)
}
