#!/bin/sh
# verify.sh — the one-command tier-1 gate (ROADMAP.md "Tier-1 verify").
#
# Runs, in order: formatting, go vet, the build, the Snapify-specific
# static analyzers (cmd/snapifylint — exits non-zero on any unjustified
# finding), and the full test suite under the race detector. Run it from
# anywhere inside the module; it cds to the module root first.
set -eu

cd "$(dirname "$0")/.."

echo "==> gofmt"
unformatted=$(gofmt -l $(git ls-files '*.go'))
if [ -n "$unformatted" ]; then
    echo "gofmt: needs formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> snapifylint -stats ./internal/... ./cmd/..."
# All twelve analyzers run here, including the interprocedural CFG-based
# ones (maporder, spanleak, lockorder, closeleak); -stats prints the
# per-analyzer finding-count and wall-clock summary so gate cost and
# noise stay visible in CI logs.
go run ./cmd/snapifylint -stats ./internal/... ./cmd/...

echo "==> snapifylint -unused-allowlist (no stale suppressions)"
go run ./cmd/snapifylint -unused-allowlist ./internal/... ./cmd/...

echo "==> go test -race ./..."
go test -race ./...

echo "==> chaos tier (fault-injection sweeps + seed replay, -count=2)"
# The chaos tier re-runs the deterministic fault-injection sweeps twice
# under the race detector: every single-fault case must end atomic (no
# torn snapshot, no orphan .partial) or retryable, and the seeded runs
# (seeds pinned inside the tests: 1, 7, 0xC0FFEE) must replay to
# byte-identical Chrome traces. -count=2 makes cross-run nondeterminism
# a failure, not a flake.
go test -race -count=2 -run 'TestChaos|TestSeedReplay' ./internal/core/

echo "==> snapbench -parallel -smoke -trace (parallel capture + trace smoke)"
# The -trace flag makes snapbench export the sweep's Chrome trace and
# schema-check it (obs.ValidateChromeTrace) before writing; a malformed
# trace fails the gate.
trace_out=$(mktemp /tmp/snapify_trace_smoke.XXXXXX.json)
go run ./cmd/snapbench -parallel -smoke -trace "$trace_out"

echo "==> snapifyctl analyze critical-path (smoke trace)"
# The critical-path analyzer must decompose the smoke trace into a chain
# whose summed segments exactly tile the end-to-end window (the analyzer
# errors out otherwise — integer-equality, no tolerance).
go run ./cmd/snapifyctl analyze critical-path "$trace_out"
rm -f "$trace_out"

echo "==> snapbench -store -smoke -trace (dedup store + trace smoke)"
# The store smoke runs the swap-cycle dedup comparison on a small image;
# its shape check pins the >= 3x shipped-byte reduction, the
# byte-identical store round-trip, the negotiation spans' capture-scope
# correlation, and GC back to zero chunks.
store_trace=$(mktemp /tmp/snapify_store_smoke.XXXXXX.json)
go run ./cmd/snapbench -store -smoke -trace "$store_trace"
rm -f "$store_trace"

echo "==> snapbench -migrate -smoke -trace (live migration + trace smoke)"
# The migrate smoke runs the stop-the-world vs live pre-copy sweep on
# small images; its shape check pins byte-identical restores, bounded
# live downtime against a stop-the-world that grows with image size,
# pre-copy convergence within the round budget, the downtime/round span
# accounting, and a store drained back to zero chunks after release.
migrate_trace=$(mktemp /tmp/snapify_migrate_smoke.XXXXXX.json)
go run ./cmd/snapbench -migrate -smoke -trace "$migrate_trace"
rm -f "$migrate_trace"

echo "==> snapbench -check baselines/ (benchmark regression gate)"
# Re-runs every committed smoke-scale baseline at its recorded parameters
# and fails on any drifted non-wall field: the virtual clock makes every
# benchmark number exactly reproducible, so a drift means the data path
# changed and the baselines (and their analysis) must be regenerated
# deliberately — scripts/bench.sh -smoke refreshes them.
go run ./cmd/snapbench -check baselines/

echo "verify: all gates passed"
