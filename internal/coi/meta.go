package coi

import (
	"encoding/binary"
	"fmt"

	"snapify/internal/platform"
	"snapify/internal/proc"
	"snapify/internal/simclock"
	"snapify/internal/simnet"
)

// HandleMeta is the host-side COI library state that must survive a
// host-process checkpoint: which binary ran where, which buffers existed at
// which (stale) RDMA addresses, and which pipelines were open. Snapify's
// pause serializes it into a region of the host process, so a restarted
// host process can reattach a COIProcess handle and the restore's remap
// table can translate the stale buffer addresses (Section 4.3).
type HandleMeta struct {
	BinaryName string
	DevNode    simnet.NodeID
	Buffers    []BufferMeta
	Pipelines  []uint32
}

// BufferMeta records one COI buffer.
type BufferMeta struct {
	ID   int
	Size int64
	Addr int64 // RDMA address at checkpoint time (stale after restore)
}

// ExportMeta snapshots the handle state.
func (cp *Process) ExportMeta() HandleMeta {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	m := HandleMeta{BinaryName: cp.binName, DevNode: cp.devNode}
	for id, b := range cp.buffers {
		m.Buffers = append(m.Buffers, BufferMeta{ID: id, Size: b.size, Addr: b.rdmaOff})
	}
	for _, pl := range cp.pipelines {
		m.Pipelines = append(m.Pipelines, pl.id)
	}
	return m
}

// Encode serializes the metadata.
func (m HandleMeta) Encode() []byte {
	var b []byte
	b = appendU32(b, uint32(len(m.BinaryName)))
	b = append(b, m.BinaryName...)
	b = appendU32(b, uint32(m.DevNode))
	b = appendU32(b, uint32(len(m.Buffers)))
	for _, bm := range m.Buffers {
		b = appendU32(b, uint32(bm.ID))
		b = binary.BigEndian.AppendUint64(b, uint64(bm.Size))
		b = binary.BigEndian.AppendUint64(b, uint64(bm.Addr))
	}
	b = appendU32(b, uint32(len(m.Pipelines)))
	for _, id := range m.Pipelines {
		b = appendU32(b, id)
	}
	return b
}

// DecodeHandleMeta parses an encoded HandleMeta.
func DecodeHandleMeta(b []byte) (m HandleMeta, err error) {
	defer func() {
		if recover() != nil {
			err = fmt.Errorf("coi: truncated handle metadata")
		}
	}()
	if len(b) < 4 {
		return m, fmt.Errorf("coi: truncated handle metadata")
	}
	n := int(u32(b))
	m.BinaryName = string(b[4 : 4+n])
	b = b[4+n:]
	m.DevNode = simnet.NodeID(u32(b))
	b = b[4:]
	nb := int(u32(b))
	b = b[4:]
	for i := 0; i < nb; i++ {
		m.Buffers = append(m.Buffers, BufferMeta{
			ID:   int(u32(b)),
			Size: int64(binary.BigEndian.Uint64(b[4:])),
			Addr: int64(binary.BigEndian.Uint64(b[12:])),
		})
		b = b[20:]
	}
	np := int(u32(b))
	b = b[4:]
	for i := 0; i < np; i++ {
		m.Pipelines = append(m.Pipelines, u32(b))
		b = b[4:]
	}
	return m, nil
}

// AttachRestored builds a defunct (StateSwapped) handle from checkpointed
// metadata inside a restarted host process. A subsequent Rebind + resume
// revives it around the restored offload process; the stale buffer
// addresses in the metadata are what the remap table translates.
func AttachRestored(plat *platform.Platform, hostProc *proc.Process, tl *simclock.Timeline, m HandleMeta) *Process {
	cp := &Process{
		plat:     plat,
		tl:       tl,
		hostProc: hostProc,
		devNode:  m.DevNode,
		binName:  m.BinaryName,
		state:    StateSwapped,
		cmds:     make(map[string]*ClientChan),
		buffers:  make(map[int]*Buffer),
	}
	for _, name := range CommandChannelNames {
		cp.cmds[name] = newClientChan(name, nil, tl, cp.hooks(), plat.Model().HookCommandSend, plat.Obs.MetricsOf())
	}
	for _, bm := range m.Buffers {
		cp.buffers[bm.ID] = &Buffer{cp: cp, id: bm.ID, size: bm.Size, rdmaOff: bm.Addr}
		if bm.ID >= cp.nextBufID {
			cp.nextBufID = bm.ID + 1
		}
	}
	for _, id := range m.Pipelines {
		cp.pipelines = append(cp.pipelines, newDetachedPipeline(cp, id))
		if id >= cp.nextPipeID {
			cp.nextPipeID = id + 1
		}
	}
	return cp
}

// newDetachedPipeline builds a pipeline with no connection; reconnect (via
// Rebind) attaches it.
func newDetachedPipeline(cp *Process, id uint32) *Pipeline {
	return &Pipeline{cp: cp, id: id, nextSeq: 1, pending: make(map[uint64]chan runResult)}
}

// ActivateRestored marks a handle active after a restart-path restore,
// where no host-side locks were held (unlike the swap path, whose pause
// locks are released by ResumeChannels).
func (cp *Process) ActivateRestored() { cp.setState(StateActive) }
