package analyze

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
)

// CheckOptions tunes the baseline comparison.
type CheckOptions struct {
	// RelTol is the default relative tolerance for numeric fields: a
	// fresh value within RelTol of the baseline passes. The simulation
	// is deterministic, so the default is tight (1%) — it exists to
	// absorb row reordering artifacts, not real drift.
	RelTol float64
	// SkipSubstrings lists key fragments whose fields are ignored
	// entirely. Wall-clock fields are machine-dependent and skipped by
	// default.
	SkipSubstrings []string
	// FieldTol overrides RelTol for any field whose key contains the
	// map key (first match in sorted key order wins).
	FieldTol map[string]float64
}

// DefaultCheckOptions returns the tolerances the snapbench gate uses.
func DefaultCheckOptions() CheckOptions {
	return CheckOptions{
		RelTol:         0.01,
		SkipSubstrings: []string{"wall"},
	}
}

// Regression is one field where a fresh benchmark run diverged from the
// committed baseline beyond tolerance.
type Regression struct {
	Path string `json:"path"`
	Msg  string `json:"msg"`
}

func (r Regression) String() string { return r.Path + ": " + r.Msg }

// CompareBenchJSON diffs a fresh benchmark JSON document against the
// committed baseline, field by field: numbers compare with relative
// tolerance, strings and booleans must match exactly, and structure
// (missing fields, new fields, array length changes) is itself a
// regression — a schema drift the baseline must be regenerated for.
// Fields whose key path matches a skip substring are ignored.
func CompareBenchJSON(baseline, fresh []byte, opts CheckOptions) ([]Regression, error) {
	var bv, fv any
	if err := json.Unmarshal(baseline, &bv); err != nil {
		return nil, fmt.Errorf("analyze: baseline: %w", err)
	}
	if err := json.Unmarshal(fresh, &fv); err != nil {
		return nil, fmt.Errorf("analyze: fresh: %w", err)
	}
	var regs []Regression
	compareValue("$", bv, fv, opts, &regs)
	return regs, nil
}

func skipPath(path string, opts CheckOptions) bool {
	lower := strings.ToLower(path)
	for _, sub := range opts.SkipSubstrings {
		if strings.Contains(lower, strings.ToLower(sub)) {
			return true
		}
	}
	return false
}

func tolFor(path string, opts CheckOptions) float64 {
	keys := make([]string, 0, len(opts.FieldTol))
	for k := range opts.FieldTol {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if strings.Contains(path, k) {
			return opts.FieldTol[k]
		}
	}
	return opts.RelTol
}

func compareValue(path string, base, fresh any, opts CheckOptions, regs *[]Regression) {
	if skipPath(path, opts) {
		return
	}
	switch bv := base.(type) {
	case map[string]any:
		fm, ok := fresh.(map[string]any)
		if !ok {
			*regs = append(*regs, Regression{path, fmt.Sprintf("baseline is an object, fresh is %T", fresh)})
			return
		}
		keys := map[string]bool{}
		for k := range bv {
			keys[k] = true
		}
		for k := range fm {
			keys[k] = true
		}
		sorted := make([]string, 0, len(keys))
		for k := range keys {
			sorted = append(sorted, k)
		}
		sort.Strings(sorted)
		for _, k := range sorted {
			sub := path + "." + k
			bval, inB := bv[k]
			fval, inF := fm[k]
			switch {
			case !inF:
				if !skipPath(sub, opts) {
					*regs = append(*regs, Regression{sub, "field missing from fresh run"})
				}
			case !inB:
				if !skipPath(sub, opts) {
					*regs = append(*regs, Regression{sub, "field absent from baseline (regenerate baselines)"})
				}
			default:
				compareValue(sub, bval, fval, opts, regs)
			}
		}
	case []any:
		fa, ok := fresh.([]any)
		if !ok {
			*regs = append(*regs, Regression{path, fmt.Sprintf("baseline is an array, fresh is %T", fresh)})
			return
		}
		if len(bv) != len(fa) {
			*regs = append(*regs, Regression{path, fmt.Sprintf("array length %d, baseline %d", len(fa), len(bv))})
			return
		}
		for i := range bv {
			compareValue(fmt.Sprintf("%s[%d]", path, i), bv[i], fa[i], opts, regs)
		}
	case float64:
		fn, ok := fresh.(float64)
		if !ok {
			*regs = append(*regs, Regression{path, fmt.Sprintf("baseline is a number, fresh is %T", fresh)})
			return
		}
		tol := tolFor(path, opts)
		denom := math.Max(math.Max(math.Abs(bv), math.Abs(fn)), 1e-12)
		if diff := math.Abs(bv - fn); diff/denom > tol {
			*regs = append(*regs, Regression{path,
				fmt.Sprintf("%.6g vs baseline %.6g (rel diff %.2f%% > %.2f%%)",
					fn, bv, 100*diff/denom, 100*tol)})
		}
	case string:
		if fs, ok := fresh.(string); !ok || fs != bv {
			*regs = append(*regs, Regression{path, fmt.Sprintf("%v vs baseline %q", fresh, bv)})
		}
	case bool:
		if fb, ok := fresh.(bool); !ok || fb != bv {
			*regs = append(*regs, Regression{path, fmt.Sprintf("%v vs baseline %v", fresh, bv)})
		}
	case nil:
		if fresh != nil {
			*regs = append(*regs, Regression{path, fmt.Sprintf("%v vs baseline null", fresh)})
		}
	}
}

// RenderRegressions formats the regression list (or a pass line).
func RenderRegressions(name string, regs []Regression) string {
	if len(regs) == 0 {
		return fmt.Sprintf("%s: ok\n", name)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d regression(s)\n", name, len(regs))
	for _, r := range regs {
		fmt.Fprintf(&b, "  %s\n", r.String())
	}
	return b.String()
}
