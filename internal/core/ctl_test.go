package core

import (
	"testing"
)

func TestCommandServerSwapAndMigrate(t *testing.T) {
	r := newRig(t, "core_ctl", 2)
	r.count(t, 5)
	srv := InstallCommandServer(r.plat, r.cp)

	// Swap out, then in on the other card.
	if err := srv.SubmitCommand("swapout /snap/ctl"); err != nil {
		t.Fatal(err)
	}
	if !srv.Swapped() {
		t.Fatal("server does not report swapped state")
	}
	if err := srv.SubmitCommand("swapout /snap/ctl2"); err == nil {
		t.Fatal("double swapout must fail")
	}
	if err := srv.SubmitCommand("swapin 2"); err != nil {
		t.Fatal(err)
	}
	if srv.Proc().DeviceNode() != 2 {
		t.Errorf("process on %v after swapin 2", srv.Proc().DeviceNode())
	}

	// Migrate back to card 1.
	if err := srv.SubmitCommand("migrate 1 /snap/ctl_mig"); err != nil {
		t.Fatal(err)
	}
	if srv.Proc().DeviceNode() != 1 {
		t.Errorf("process on %v after migrate 1", srv.Proc().DeviceNode())
	}

	// The computation is intact through all of it.
	if got := r.count(t, 25); got != refSum(25) {
		t.Errorf("count after ctl operations = %d, want %d", got, refSum(25))
	}

	// Error paths.
	if err := srv.SubmitCommand("swapin 1"); err == nil {
		t.Error("swapin while not swapped must fail")
	}
	if err := srv.SubmitCommand("frobnicate"); err == nil {
		t.Error("unknown command must fail")
	}
	if err := srv.SubmitCommand(""); err == nil {
		t.Error("empty command must fail")
	}
	if err := srv.SubmitCommand("migrate nope /x"); err == nil {
		t.Error("bad device must fail")
	}
}
