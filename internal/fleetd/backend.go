package fleetd

// ModelBackend prices control-plane operations from the calibrated
// simclock cost model, with no real platforms behind it. It is the
// backend for fleet-scale benchmarking: 100+ hosts and 1000+ jobs cost
// only the controller's own bookkeeping, so the bench measures
// placement throughput rather than simulated platform churn.

import (
	"fmt"
	"sort"
	"time"

	"snapify/internal/simclock"
	"snapify/internal/snapstore"
)

// ModelOptions shapes a synthetic fleet.
type ModelOptions struct {
	Hosts        int
	CardsPerHost int
	// CardMem is each card's memory capacity in bytes.
	CardMem int64
	// HostsPerRack groups hosts into racks: intra-rack pairs use the
	// default federation link, cross-rack pairs the slow one. 0 defaults
	// to 16.
	HostsPerRack int
	// ReplicaK is how many hosts hold each snapshot (self + K-1 peers).
	// 0 defaults to 3.
	ReplicaK int
}

func (o ModelOptions) hostsPerRack() int {
	if o.HostsPerRack <= 0 {
		return 16
	}
	return o.HostsPerRack
}

func (o ModelOptions) replicaK() int {
	if o.ReplicaK <= 0 {
		return 3
	}
	return o.ReplicaK
}

// ModelBackend implements Backend on the cost model alone.
type ModelBackend struct {
	opts  ModelOptions
	model *simclock.Model
	names []string
	local snapstore.LinkModel
	cross snapstore.LinkModel

	// holders maps job ID to the sorted host names replicating its
	// snapshot; dead hosts are pruned on HostKilled.
	holders map[int][]string
	dead    map[string]bool
	// swapped tracks how many times a job swapped out: the first capture
	// ships the full footprint, later ones only the re-dirtied quarter.
	swapped map[int]int
}

// NewModelBackend builds a synthetic fleet of opts.Hosts hosts.
func NewModelBackend(opts ModelOptions) *ModelBackend {
	if opts.Hosts < 1 || opts.CardsPerHost < 1 || opts.CardMem <= 0 {
		panic("fleetd: model backend needs at least one host, one card and positive card memory") //nolint:paniclib // configuration bug: bench topology is fixed at setup
	}
	b := &ModelBackend{
		opts:    opts,
		model:   simclock.Default(),
		local:   snapstore.DefaultLink(),
		cross:   snapstore.CrossRackLink(),
		holders: make(map[int][]string),
		dead:    make(map[string]bool),
		swapped: make(map[int]int),
	}
	for i := 0; i < opts.Hosts; i++ {
		b.names = append(b.names, fmt.Sprintf("h%03d", i))
	}
	return b
}

// Topology enumerates the synthetic hosts.
func (b *ModelBackend) Topology() []HostTopo {
	out := make([]HostTopo, len(b.names))
	for i, name := range b.names {
		cards := make([]int64, b.opts.CardsPerHost)
		for ci := range cards {
			cards[ci] = b.opts.CardMem
		}
		out[i] = HostTopo{Name: name, Cards: cards}
	}
	return out
}

func (b *ModelBackend) rackOf(host string) int {
	var idx int
	if _, err := fmt.Sscanf(host, "h%d", &idx); err != nil {
		return -1
	}
	return idx / b.opts.hostsPerRack()
}

// LinkCost prices an a->b transfer: default link within a rack, the
// slow cross-rack link otherwise.
func (b *ModelBackend) LinkCost(a, bHost string, n int64) simclock.Duration {
	if a == bHost {
		return 0
	}
	if b.rackOf(a) == b.rackOf(bHost) {
		return b.local.Cost(n)
	}
	return b.cross.Cost(n)
}

// Launch prices pushing the job's footprint to its card over PCIe.
func (b *ModelBackend) Launch(j *Job) (simclock.Duration, error) {
	return b.model.RDMA(j.Spec.Footprint), nil
}

// RunBurst is free in model mode — burst time is virtual by construction.
func (b *ModelBackend) RunBurst(*Job) error { return nil }

// dirtyBytes is how much a capture must move: the full footprint the
// first time, the re-dirtied quarter after.
func (b *ModelBackend) dirtyBytes(j *Job) int64 {
	if b.swapped[j.ID] == 0 {
		return j.Spec.Footprint
	}
	d := j.Spec.Footprint / 4
	if d < 1 {
		d = 1
	}
	return d
}

// replicate records the snapshot's holders (self plus the next K-1
// living hosts) and prices shipping the dirty bytes to the farthest one
// (replication fans out in parallel; the slowest link dominates).
func (b *ModelBackend) replicate(j *Job, dirty int64) simclock.Duration {
	n := len(b.names)
	self := j.Host
	holders := []string{self}
	var worst simclock.Duration
	var start int
	if _, err := fmt.Sscanf(self, "h%d", &start); err != nil {
		start = 0
	}
	for i := 1; i < n && len(holders) < b.opts.replicaK(); i++ {
		peer := b.names[(start+i)%n]
		if b.dead[peer] {
			continue
		}
		holders = append(holders, peer)
		if c := b.LinkCost(self, peer, dirty); c > worst {
			worst = c
		}
	}
	sort.Strings(holders)
	b.holders[j.ID] = holders
	return worst
}

// SwapOut prices capture (page walk + store write) plus replication.
func (b *ModelBackend) SwapOut(j *Job) (simclock.Duration, error) {
	dirty := b.dirtyBytes(j)
	dur := b.model.PhiPageWalk(j.Spec.Footprint) +
		simclock.Rate(b.model.HostFSWriteBandwidth)(dirty) +
		b.replicate(j, dirty)
	b.swapped[j.ID]++
	return dur, nil
}

// SwapIn prices restoring the footprint from `from` onto j's card.
func (b *ModelBackend) SwapIn(j *Job, from string) (simclock.Duration, error) {
	fp := j.Spec.Footprint
	dur := simclock.Rate(b.model.HostFSReadCachedBandwidth)(fp) + b.model.RDMA(fp)
	if from != j.Host {
		dur += b.LinkCost(from, j.Host, fp)
	}
	return dur, nil
}

// Checkpoint prices a capture-without-stop: same bytes as a swap-out.
func (b *ModelBackend) Checkpoint(j *Job) (simclock.Duration, error) {
	return b.SwapOut(j)
}

// Holders returns the living holders of j's snapshot, sorted.
func (b *ModelBackend) Holders(j *Job) []string {
	var out []string
	for _, h := range b.holders[j.ID] {
		if !b.dead[h] {
			out = append(out, h)
		}
	}
	return out
}

// Migrate prices a live pre-copy migration: three shrinking copy
// rounds over the inter-host link, a short stop-and-copy, and a
// reconnect handshake.
func (b *ModelBackend) Migrate(j *Job, dstHost string, dstCard int) (simclock.Duration, error) {
	fp := j.Spec.Footprint
	link := func(n int64) simclock.Duration {
		if dstHost == j.Host {
			return b.model.RDMA(n) // card-to-card on one host
		}
		return b.LinkCost(j.Host, dstHost, n)
	}
	dur := link(fp) + link(fp/4) + link(fp/16) + // pre-copy rounds
		link(fp/64) + // stop-and-copy of the final dirty set
		2*time.Millisecond // proxy teardown + reconnect
	// Landing counts as a durable snapshot on the destination.
	b.holders[j.ID] = []string{dstHost}
	return dur, nil
}

// Recover prices restoring j onto dstHost from its closest holder.
func (b *ModelBackend) Recover(j *Job, dstHost string, dstCard int) (simclock.Duration, error) {
	fp := j.Spec.Footprint
	from := dstHost
	holders := b.Holders(j)
	if len(holders) > 0 {
		from = holders[0]
		best := simclock.Duration(-1)
		for _, h := range holders {
			c := b.LinkCost(dstHost, h, fp)
			if best < 0 || c < best {
				from, best = h, c
			}
		}
	}
	dur := simclock.Rate(b.model.HostFSReadColdBandwidth)(fp) + b.model.RDMA(fp)
	if from != dstHost {
		dur += b.LinkCost(from, dstHost, fp)
	}
	return dur, nil
}

// Finish is free in model mode.
func (b *ModelBackend) Finish(*Job) error { return nil }

// HostKilled prunes the dead host from every replica set.
func (b *ModelBackend) HostKilled(name string) { b.dead[name] = true }
