package snapstore

import (
	"fmt"
	"sort"
	"sync"

	"snapify/internal/blob"
)

// Staging is the destination side of live migration's pre-copy protocol:
// the VM-migration analog of "pages received into destination memory
// ahead of the switch-over". Each pre-copy round the source ships its
// dirty chunks into the host store; the destination card then pulls the
// changed chunks down and parks them here, keyed by the snapshot path
// whose manifest has not committed yet. Across rounds the staged digest
// list converges on the final image, so the switch-over restore only
// patches the last round's stragglers and adopts the rest in place.
//
// Every staged chunk is digest-verified on arrival, and a Plan against
// the committed manifest re-verifies the whole set before an adoption —
// a stale or corrupted staging area degrades to extra fetches, never to
// a wrong image.
type Staging struct {
	mu      sync.Mutex
	entries map[string]*stageEntry
}

// stageEntry is the staged state of one not-yet-committed snapshot.
type stageEntry struct {
	size       int64
	chunkBytes int64
	want       []string    // authoritative digest plan of the last Plan call
	got        []string    // digest each staged chunk verified against ("" = empty slot)
	chunks     []blob.Blob // staged content, indexed like want
}

// NewStaging returns an empty staging area.
func NewStaging() *Staging {
	return &Staging{entries: make(map[string]*stageEntry)}
}

// Plan reconciles the staging area for path against an authoritative
// digest plan (a pending upload's digests mid-migration, the committed
// manifest's at restore time) and returns the chunk indices that still
// need fetching — missing slots plus any staged chunk the new plan
// disagrees with. A geometry change (the image grew or shrank between
// rounds) resets the entry; correctness is unaffected, the next fetch
// set is just larger.
func (sg *Staging) Plan(path string, size, chunkBytes int64, want []string) []int {
	sg.mu.Lock()
	defer sg.mu.Unlock()
	path = normPath(path)
	e := sg.entries[path]
	if e == nil || e.size != size || e.chunkBytes != chunkBytes || len(e.want) != len(want) {
		e = &stageEntry{
			size:       size,
			chunkBytes: chunkBytes,
			got:        make([]string, len(want)),
			chunks:     make([]blob.Blob, len(want)),
		}
		sg.entries[path] = e
	}
	e.want = append([]string(nil), want...)
	var need []int
	for i, d := range e.want {
		if e.got[i] != d {
			need = append(need, i)
		}
	}
	return need
}

// SetChunk stages the fetched content of chunk idx. The content is
// digest-verified against the current plan before it is admitted, so a
// corrupted (or raced) fetch is rejected rather than staged.
func (sg *Staging) SetChunk(path string, idx int, content blob.Blob) error {
	sg.mu.Lock()
	defer sg.mu.Unlock()
	e := sg.entries[normPath(path)]
	if e == nil {
		return fmt.Errorf("snapstore: stage %s: no staging plan", path)
	}
	if idx < 0 || idx >= len(e.want) {
		return fmt.Errorf("snapstore: stage %s: chunk %d out of %d", path, idx, len(e.want))
	}
	m := Manifest{Size: e.size, ChunkBytes: e.chunkBytes}
	if content.Len() != m.chunkLen(idx) {
		return fmt.Errorf("snapstore: stage %s: chunk %d is %d bytes, want %d", path, idx, content.Len(), m.chunkLen(idx))
	}
	if got := Digest(content); got != e.want[idx] {
		return fmt.Errorf("snapstore: stage %s: chunk %d digest mismatch (got %s, want %s)", path, idx, got[:12], e.want[idx][:12])
	}
	e.chunks[idx] = content
	e.got[idx] = e.want[idx]
	return nil
}

// Image assembles the staged snapshot for path if every chunk of the
// current plan has arrived and verified; ok=false otherwise.
func (sg *Staging) Image(path string) (blob.Blob, bool) {
	sg.mu.Lock()
	defer sg.mu.Unlock()
	e := sg.entries[normPath(path)]
	if e == nil || len(e.want) == 0 {
		return blob.FromBytes(nil), false
	}
	for i, d := range e.want {
		if e.got[i] != d {
			return blob.FromBytes(nil), false
		}
	}
	return blob.Concat(e.chunks...), true
}

// Has reports whether a staging entry exists for path.
func (sg *Staging) Has(path string) bool {
	sg.mu.Lock()
	defer sg.mu.Unlock()
	_, ok := sg.entries[normPath(path)]
	return ok
}

// StagedBytes returns how many verified bytes are parked for path.
func (sg *Staging) StagedBytes(path string) int64 {
	sg.mu.Lock()
	defer sg.mu.Unlock()
	e := sg.entries[normPath(path)]
	if e == nil {
		return 0
	}
	var n int64
	for i := range e.want {
		if e.got[i] != "" && e.got[i] == e.want[i] {
			n += e.chunks[i].Len()
		}
	}
	return n
}

// Paths lists the staged snapshot paths, sorted.
func (sg *Staging) Paths() []string {
	sg.mu.Lock()
	defer sg.mu.Unlock()
	out := make([]string, 0, len(sg.entries))
	for p := range sg.entries {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Drop discards the staged state for path (migration aborted, or the
// adoption consumed it).
func (sg *Staging) Drop(path string) {
	sg.mu.Lock()
	defer sg.mu.Unlock()
	delete(sg.entries, normPath(path))
}

// DropAll discards every staged entry (daemon teardown).
func (sg *Staging) DropAll() {
	sg.mu.Lock()
	defer sg.mu.Unlock()
	sg.entries = make(map[string]*stageEntry)
}
