// Package fleetd is the event-driven fleet control plane (DESIGN.md
// §16): one virtual-clock discrete-event core scheduling thousands of
// offload jobs over hundreds of cards. Jobs arrive on an open-loop
// trace, pass a per-tenant admission queue with backpressure, and are
// bin-packed onto cards scored by free memory, snapshot replica
// locality, and link cost. Card memory oversubscribes: jobs in their
// host think-phase are swapped out through the store-backed Swapout
// path to let another job's offload burst run, higher-priority arrivals
// preempt lower-priority idle jobs, and a whole host drains under a
// deadline in waves of live pre-copy migrations.
//
// The controller is strictly single-threaded: every state change
// happens inside its event loop, ordered by an O(log n) (time, seq)
// event heap, so a run is a pure function of its inputs. Execution
// mechanics and cost pricing hide behind the Backend interface —
// ModelBackend prices operations from the calibrated simclock model at
// 100+ host scale, PlatformBackend drives real simulated platforms
// through sched.Fleet at test scale.
package fleetd

import (
	"errors"
	"fmt"
	"sort"

	"snapify/internal/obs"
	"snapify/internal/simclock"
	"snapify/internal/workloads"
)

// JobState is a fleet job's scheduling state.
type JobState int

const (
	// StatePending means admitted and waiting for placement.
	StatePending JobState = iota
	// StateLaunching means the first placement's data motion is in flight.
	StateLaunching
	// StateRunning means an offload burst is executing on a card.
	StateRunning
	// StateThinking means the job is in a host phase; its card memory idles.
	StateThinking
	// StateSwappingOut means a store-backed swap-out is in flight.
	StateSwappingOut
	// StateSwappedOut means the job lives as a snapshot; card memory is free.
	StateSwappedOut
	// StateSwappingIn means a swap-in (or snapshot re-placement) is in flight.
	StateSwappingIn
	// StateMigrating means an evacuation pre-copy migration is in flight.
	StateMigrating
	// StateDone means all bursts completed.
	StateDone
	// StateRejected means admission refused the job (backpressure).
	StateRejected
)

func (s JobState) String() string {
	switch s {
	case StatePending:
		return "pending"
	case StateLaunching:
		return "launching"
	case StateRunning:
		return "running"
	case StateThinking:
		return "thinking"
	case StateSwappingOut:
		return "swapping-out"
	case StateSwappedOut:
		return "swapped-out"
	case StateSwappingIn:
		return "swapping-in"
	case StateMigrating:
		return "migrating"
	case StateDone:
		return "done"
	case StateRejected:
		return "rejected"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// JobSpec describes one job on the arrival trace. A job alternates
// Bursts offload bursts of BurstLen with host think-phases of ThinkLen
// — the think-phase is when its card memory is idle and the
// oversubscription machinery may reclaim it.
type JobSpec struct {
	ID       int
	Tenant   string
	Priority int
	Arrival  simclock.Duration
	// Footprint is the card memory the job occupies while resident.
	Footprint int64
	Bursts    int
	BurstLen  simclock.Duration
	ThinkLen  simclock.Duration
	// Workload carries the real workload spec in platform-backed mode;
	// the model backend ignores it.
	Workload *workloads.Spec
}

type opKind int

const (
	opNone opKind = iota
	opLaunch
	opSwapOut
	opSwapIn
	opMigrate
	opRecover
)

func (k opKind) spanName() string {
	switch k {
	case opLaunch:
		return "fleet_launch"
	case opSwapOut:
		return "fleet_swap_out"
	case opSwapIn:
		return "fleet_swap_in"
	case opMigrate:
		return "fleet_migrate"
	case opRecover:
		return "fleet_recover"
	default:
		return "fleet_op"
	}
}

// Job is one job's control-plane record.
type Job struct {
	ID    int
	Spec  JobSpec
	State JobState

	// Host/Card locate the job's assignment (committed memory); Card is
	// -1 while unassigned.
	Host string
	Card int

	// FJ binds the job to its real sched.Fleet record in platform mode.
	FJ interface{}

	epoch      int
	burstsDone int
	// ckptBursts is the progress captured in the last durable snapshot;
	// recovery resumes from it.
	ckptBursts  int
	snapshotted bool
	// launched marks a live execution context on j.Host/j.Card; cleared
	// when the job loses it (host death, preemption eviction).
	launched bool

	wantsBurst     bool
	beingPreempted bool
	// preemptEvicts counts this job's in-flight victim swap-outs when it
	// is the preemptor; preemptFor names the preemptor when this job is
	// the victim.
	preemptEvicts int
	preemptFor    int

	curOp   opKind
	opStart simclock.Duration
	opDur   simclock.Duration
	// opPreempt marks an in-flight swap-out as a preemption eviction.
	opPreempt bool
	// opDst is the destination of an in-flight migrate/recover.
	opDstHost string
	opDstCard int

	enqueuedAt   simclock.Duration
	swapWantedAt simclock.Duration
	thinkStart   simclock.Duration
	thinkEndAt   simclock.Duration
	burstStart   simclock.Duration
}

// Done reports whether the job completed all bursts.
func (j *Job) Done() bool { return j.State == StateDone }

// HostTopo describes one host a backend exposes: its name and the card
// memory capacities, in card order.
type HostTopo struct {
	Name  string
	Cards []int64
}

// Backend executes (and prices) the control plane's operations. The
// model backend answers from the calibrated cost model; the platform
// backend drives real simulated hosts. Durations are virtual time on
// the controller's timeline.
type Backend interface {
	// Topology enumerates hosts and card capacities, in placement order.
	Topology() []HostTopo
	// LinkCost prices moving n bytes between two hosts.
	LinkCost(a, b string, n int64) simclock.Duration
	// Launch starts job j on j.Host/j.Card for the first time.
	Launch(j *Job) (simclock.Duration, error)
	// RunBurst executes one offload burst (real compute in platform mode).
	RunBurst(j *Job) error
	// SwapOut captures j through the store-backed swap path and
	// replicates the snapshot; j's card memory is reclaimable after.
	SwapOut(j *Job) (simclock.Duration, error)
	// SwapIn revives j on j.Host/j.Card from the holder `from`.
	SwapIn(j *Job, from string) (simclock.Duration, error)
	// Checkpoint captures a durable replicated snapshot without stopping j.
	Checkpoint(j *Job) (simclock.Duration, error)
	// Holders returns the living replica holders of j's snapshot, sorted.
	Holders(j *Job) []string
	// Migrate live pre-copy migrates resident job j to dstHost/dstCard.
	Migrate(j *Job, dstHost string, dstCard int) (simclock.Duration, error)
	// Recover restarts j from a replica onto dstHost/dstCard after its
	// host died or while it is swapped out on a draining host.
	Recover(j *Job, dstHost string, dstCard int) (simclock.Duration, error)
	// Finish releases j's execution resources.
	Finish(j *Job) error
	// HostKilled tells the backend a host died.
	HostKilled(name string)
}

// Options tunes the control plane's policies.
type Options struct {
	// OversubPct caps committed card memory at capacity*OversubPct/100.
	// 100 disables oversubscription.
	OversubPct int
	// QueueDepth bounds each tenant's pending queue; arrivals beyond it
	// are rejected (backpressure). 0 means unbounded.
	QueueDepth int
	// EvacWave is how many migrations one evacuation wave runs
	// concurrently. 0 defaults to 4.
	EvacWave int
	// Trace emits fleet_* spans on the tracer (per-card engine lanes and
	// per-job lifecycle lanes). Off for full-scale benches.
	Trace bool
}

func (o Options) oversubPct() int64 {
	if o.OversubPct < 100 {
		return 100
	}
	return int64(o.OversubPct)
}

func (o Options) evacWave() int {
	if o.EvacWave <= 0 {
		return 4
	}
	return o.EvacWave
}

type card struct {
	hostIdx int
	idx     int
	cap     int64
	// committed is the memory promised to assigned jobs (<= cap *
	// oversub); resident is the memory physically on the card (<= cap).
	committed int64
	resident  int64
	residents map[int]*Job
	// busyUntil serializes the card's swap/DMA engine: one data-motion
	// op at a time per card, which is also what keeps its trace lane
	// well-nested.
	busyUntil simclock.Duration
	// waiters queues job IDs wanting residency (swap-in), FIFO.
	waiters []int
	// retries counts consecutive failed serve attempts; it drives the
	// card-targeted retry backoff and resets on the first success.
	retries int
}

func (c *card) commitCap(pct int64) int64 { return c.cap * pct / 100 }

type drainState struct {
	deadline  simclock.Duration
	remaining []int
	inflight  int
	waves     int
	moved     int
	done      bool
	met       bool
}

type hostState struct {
	name     string
	idx      int
	cards    []*card
	dead     bool
	draining bool
	drain    *drainState
	assigned map[int]*Job
}

// Stats aggregates one run's control-plane counters.
type Stats struct {
	Submitted   int64
	Admitted    int64
	Rejected    int64
	Completed   int64
	Placements  int64
	Preemptions int64
	// PreemptAborts counts preemption evictions undone because the
	// victim's swap-out failed (the victim is unharmed).
	PreemptAborts int64
	SwapOuts      int64
	SwapIns       int64
	SwapFails     int64
	EvacMoves     int64
	EvacWaves     int64
	EvacFails     int64
	JobsLost      int64
	Recovered     int64
	Restarted     int64
	// BurstNs is the total virtual compute time of completed bursts —
	// the numerator of utilization.
	BurstNs int64
	// Events counts handled controller events (the heap's workload).
	Events int64
	// Makespan is the virtual time of the last completion.
	Makespan simclock.Duration
}

// Controller is the fleet control plane. It is strictly
// single-threaded: drive it with Run/RunUntil and call the mutating
// methods only between runs.
type Controller struct {
	opts Options
	be   Backend
	obs  *obs.Obs

	now    simclock.Duration
	events eventHeap
	seq    uint64

	pending      jobHeap
	tenantQueued map[string]int

	hosts   []*hostState
	hostIdx map[string]int
	cards   int

	jobs     map[int]*Job
	order    []int
	controls map[uint64]controlPayload
	drained  []string

	stats     Stats
	swapLats  []simclock.Duration
	waitLats  []simclock.Duration
	totalCap  int64
	firstTime simclock.Duration

	mAdmitted, mRejected, mPlacements, mPreempts *obs.Counter
	mSwapOuts, mSwapIns, mEvacMoves, mLost       *obs.Counter
	hSwapLat, hQueueWait                         *obs.Histogram
}

// New builds a controller over the backend's topology.
func New(opts Options, be Backend, o *obs.Obs) *Controller {
	c := &Controller{
		opts:         opts,
		be:           be,
		obs:          o,
		tenantQueued: make(map[string]int),
		hostIdx:      make(map[string]int),
		jobs:         make(map[int]*Job),
		controls:     make(map[uint64]controlPayload),
	}
	for i, ht := range be.Topology() {
		h := &hostState{name: ht.Name, idx: i, assigned: make(map[int]*Job)}
		for ci, capBytes := range ht.Cards {
			h.cards = append(h.cards, &card{hostIdx: i, idx: ci, cap: capBytes, residents: make(map[int]*Job)})
			c.totalCap += capBytes
			c.cards++
		}
		c.hosts = append(c.hosts, h)
		c.hostIdx[ht.Name] = i
	}
	reg := o.MetricsOf()
	c.mAdmitted = reg.Counter("fleet_admitted_total", "Jobs admitted past backpressure.")
	c.mRejected = reg.Counter("fleet_rejected_total", "Jobs rejected by admission backpressure.")
	c.mPlacements = reg.Counter("fleet_placements_total", "Placement decisions executed.")
	c.mPreempts = reg.Counter("fleet_preemptions_total", "Jobs evicted by priority preemption.")
	c.mSwapOuts = reg.Counter("fleet_swap_out_total", "Store-backed swap-outs issued.")
	c.mSwapIns = reg.Counter("fleet_swap_in_total", "Swap-ins completed.")
	c.mEvacMoves = reg.Counter("fleet_evac_moves_total", "Jobs moved by evacuation waves.")
	c.mLost = reg.Counter("fleet_jobs_lost_total", "Jobs lost to host failures.")
	bounds := []int64{1e5, 1e6, 1e7, 1e8, 1e9, 1e10}
	c.hSwapLat = reg.Histogram("fleet_swap_latency_ns", "Virtual swap-in latency: burst wanted to burst running.", bounds)
	c.hQueueWait = reg.Histogram("fleet_queue_wait_ns", "Virtual wait from admission to placement.", bounds)
	return c
}

// Stats returns the run counters so far.
func (c *Controller) Stats() Stats { return c.stats }

// CardStatus is one card's occupancy snapshot.
type CardStatus struct {
	CapacityBytes  int64
	CommittedBytes int64
	ResidentBytes  int64
	Residents      int
	Waiters        int
}

// HostStatus is one host's occupancy snapshot.
type HostStatus struct {
	Host     string
	Dead     bool
	Draining bool
	Assigned int
	Cards    []CardStatus
}

// HostStatuses snapshots every host's occupancy in topology order.
func (c *Controller) HostStatuses() []HostStatus {
	out := make([]HostStatus, 0, len(c.hosts))
	for _, h := range c.hosts {
		hs := HostStatus{Host: h.name, Dead: h.dead, Draining: h.draining, Assigned: len(h.assigned)}
		for _, cd := range h.cards {
			hs.Cards = append(hs.Cards, CardStatus{
				CapacityBytes:  cd.cap,
				CommittedBytes: cd.committed,
				ResidentBytes:  cd.resident,
				Residents:      len(cd.residents),
				Waiters:        len(cd.waiters),
			})
		}
		out = append(out, hs)
	}
	return out
}

// PendingJobs returns the admission queue's jobs in submission order
// (the heap's pop order is priority-then-arrival; this is for
// inspection, not dispatch).
func (c *Controller) PendingJobs() []*Job {
	var out []*Job
	for _, id := range c.order {
		if j := c.jobs[id]; j != nil && j.State == StatePending {
			out = append(out, j)
		}
	}
	return out
}

// Now returns the controller's virtual time.
func (c *Controller) Now() simclock.Duration { return c.now }

// JobByID returns the job record, or nil.
func (c *Controller) JobByID(id int) *Job { return c.jobs[id] }

// Jobs returns all jobs in submission order.
func (c *Controller) Jobs() []*Job {
	out := make([]*Job, 0, len(c.order))
	for _, id := range c.order {
		out = append(out, c.jobs[id])
	}
	return out
}

// PendingLen returns how many admitted jobs await placement.
func (c *Controller) PendingLen() int { return c.pending.Len() }

// SwapLatencies returns the observed swap-in latencies, sorted.
func (c *Controller) SwapLatencies() []simclock.Duration {
	out := append([]simclock.Duration(nil), c.swapLats...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// QueueWaits returns the observed admission-to-placement waits, sorted.
func (c *Controller) QueueWaits() []simclock.Duration {
	out := append([]simclock.Duration(nil), c.waitLats...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Percentile returns the p-th percentile (0-100) of a sorted sample
// set, 0 when empty.
func Percentile(sorted []simclock.Duration, p int) simclock.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := (len(sorted) - 1) * p / 100
	return sorted[idx]
}

// UtilizationPct returns card-compute utilization as a per-10000
// fraction: completed burst time over cards x makespan.
func (c *Controller) UtilizationPct() int64 {
	if c.stats.Makespan <= c.firstTime || c.cards == 0 {
		return 0
	}
	window := int64(c.stats.Makespan - c.firstTime)
	return 10000 * c.stats.BurstNs / (int64(c.cards) * window)
}

// EventComparisons returns the event heap's comparison count — the
// complexity-pin tests consume it.
func (c *Controller) EventComparisons() int64 { return c.events.cmps }

func (c *Controller) schedule(at simclock.Duration, kind eventKind, j *Job) {
	c.seq++
	e := event{at: at, seq: c.seq, kind: kind}
	if j != nil {
		e.job = j.ID
		e.epoch = j.epoch
	}
	c.events.Push(e)
}

// control events carry their payload out of band, keyed by seq.
type controlPayload struct {
	host     string
	deadline simclock.Duration
	kill     bool
	// card targets an evServeCard retry at one card's waiter queue.
	card int
}

var errUnknownHost = errors.New("fleetd: unknown host")

func (c *Controller) hostByName(name string) (*hostState, error) {
	i, ok := c.hostIdx[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", errUnknownHost, name)
	}
	return c.hosts[i], nil
}

// SubmitTrace schedules every job on the arrival trace.
func (c *Controller) SubmitTrace(specs []JobSpec) error {
	for _, sp := range specs {
		if _, ok := c.jobs[sp.ID]; ok {
			return fmt.Errorf("fleetd: duplicate job id %d", sp.ID)
		}
		if sp.Bursts < 1 || sp.Footprint <= 0 || sp.BurstLen <= 0 {
			return fmt.Errorf("fleetd: job %d: bursts, footprint and burst length must be positive", sp.ID)
		}
		j := &Job{ID: sp.ID, Spec: sp, State: StatePending, Card: -1}
		c.jobs[sp.ID] = j
		c.order = append(c.order, sp.ID)
		c.stats.Submitted++
		c.schedule(sp.Arrival, evArrival, j)
	}
	return nil
}

// Run drives the event loop until no events remain.
func (c *Controller) Run() error { return c.RunUntil(-1) }

// RunUntil drives the event loop through every event at or before
// `until` (negative: run dry). Virtual time never rewinds.
func (c *Controller) RunUntil(until simclock.Duration) error {
	for c.events.Len() > 0 {
		if until >= 0 && c.events.es[0].at > until {
			break
		}
		e := c.events.Pop()
		c.stats.Events++
		if e.at > c.now {
			c.now = e.at
		}
		if err := c.handle(e); err != nil {
			return err
		}
	}
	if until >= 0 && until > c.now {
		c.now = until
	}
	return nil
}

func (c *Controller) handle(e event) error {
	var j *Job
	if e.job != 0 {
		j = c.jobs[e.job]
		if j == nil || j.epoch != e.epoch {
			return nil // stale: the job's world changed under this event
		}
	}
	switch e.kind {
	case evArrival:
		c.admit(j)
	case evBurstEnd:
		if err := c.burstEnd(j); err != nil {
			return err
		}
	case evThinkEnd:
		if err := c.thinkEnd(j); err != nil {
			return err
		}
	case evOpDone:
		if err := c.opDone(j); err != nil {
			return err
		}
	case evEvacuate:
		p := c.controls[e.seq]
		delete(c.controls, e.seq)
		if p.kill {
			if err := c.KillHost(p.host); err != nil {
				return err
			}
		} else if err := c.startDrain(p.host, p.deadline); err != nil {
			return err
		}
	case evServeCard:
		p := c.controls[e.seq]
		delete(c.controls, e.seq)
		if h, err := c.hostByName(p.host); err == nil && !h.dead {
			c.serveWaiters(h.cards[p.card])
		}
	case evHeartbeat:
		// fallthrough to dispatch below
	}
	return c.dispatch()
}

// --- admission ---

func (c *Controller) admit(j *Job) {
	depth := c.opts.QueueDepth
	if depth > 0 && c.tenantQueued[j.Spec.Tenant] >= depth {
		j.State = StateRejected
		c.stats.Rejected++
		c.mRejected.Inc()
		return
	}
	c.tenantQueued[j.Spec.Tenant]++
	j.enqueuedAt = c.now
	c.stats.Admitted++
	c.mAdmitted.Inc()
	c.pending.Push(j)
}

// --- placement ---

// findCard scores every placeable card for j and returns the best, or
// nil. Score is lexicographic: replica-locality link cost first (jobs
// with snapshots land near their replicas), then best-fit leftover
// (bin packing), then host/card index for determinism. With needRoom
// the card must also have physical residency headroom — evacuation
// moves land resident immediately, so commit headroom alone (which
// oversubscription inflates past card memory) is not enough for them.
func (c *Controller) findCard(j *Job, needRoom bool) *card {
	pct := c.opts.oversubPct()
	holders := c.liveHolders(j)
	var best *card
	var bestLoc simclock.Duration
	var bestLeft int64
	for _, h := range c.hosts {
		if h.dead || h.draining {
			continue
		}
		loc := simclock.Duration(0)
		if len(holders) > 0 {
			loc = -1
			for _, hold := range holders {
				cost := simclock.Duration(0)
				if hold != h.name {
					cost = c.be.LinkCost(h.name, hold, j.Spec.Footprint)
				}
				if loc < 0 || cost < loc {
					loc = cost
				}
			}
		}
		for _, cd := range h.cards {
			left := cd.commitCap(pct) - cd.committed - j.Spec.Footprint
			if left < 0 {
				continue
			}
			if needRoom && cd.cap-cd.resident < j.Spec.Footprint {
				continue
			}
			if best == nil || loc < bestLoc || (loc == bestLoc && left < bestLeft) {
				best, bestLoc, bestLeft = cd, loc, left
			}
		}
	}
	return best
}

// liveHolders returns j's replica holders on living hosts. When the
// job thought it had a snapshot but every holder died, the snapshot is
// gone: the job restarts from scratch.
func (c *Controller) liveHolders(j *Job) []string {
	if !j.snapshotted {
		return nil
	}
	var out []string
	for _, h := range c.be.Holders(j) {
		if hs, err := c.hostByName(h); err == nil && !hs.dead {
			out = append(out, h)
		}
	}
	if len(out) == 0 {
		j.snapshotted = false
		j.burstsDone = 0
		j.ckptBursts = 0
	}
	return out
}

// dispatch places pending jobs head-of-line: the highest-priority job
// places first; when nothing fits it may preempt; while it waits no
// lower-priority job jumps it. It also re-pumps parked evacuation
// drains — jobs that were mid-op when the drain started become movable
// as their ops complete.
func (c *Controller) dispatch() error {
	for _, name := range c.drained {
		h, err := c.hostByName(name)
		if err != nil {
			return err
		}
		// Only a parked drain (empty wave) re-pumps here; a partial wave
		// refills when its last move lands, keeping waves batched.
		if h.draining && h.drain != nil && !h.drain.done && h.drain.inflight == 0 {
			if err := c.pumpDrain(h); err != nil {
				return err
			}
		}
	}
	for c.pending.Len() > 0 {
		j := c.pending.Peek()
		if j.preemptEvicts > 0 {
			return nil // its evictions are still in flight
		}
		cd := c.findCard(j, false)
		if cd == nil {
			if c.tryPreempt(j) {
				return nil
			}
			return nil
		}
		c.pending.Pop()
		c.tenantQueued[j.Spec.Tenant]--
		if err := c.place(j, cd); err != nil {
			return err
		}
	}
	return nil
}

// place assigns j to cd (committing its memory) and, when the card has
// physical room, starts its data motion. When committed memory
// oversubscribes the card, the job queues as a non-resident image and
// the eviction machinery makes room.
func (c *Controller) place(j *Job, cd *card) error {
	h := c.hosts[cd.hostIdx]
	j.Host, j.Card = h.name, cd.idx
	cd.committed += j.Spec.Footprint
	h.assigned[j.ID] = j
	c.stats.Placements++
	if c.stats.Placements == 1 {
		// The utilization window opens when work first reaches a card;
		// idle lead time before the trace starts is not the fleet's fault.
		c.firstTime = c.now
	}
	c.mPlacements.Inc()
	wait := c.now - j.enqueuedAt
	c.waitLats = append(c.waitLats, wait)
	c.hQueueWait.Observe(int64(wait))

	if cd.cap-cd.resident >= j.Spec.Footprint {
		cd.resident += j.Spec.Footprint
		cd.residents[j.ID] = j
		return c.placedMotion(j, cd)
	}
	// Oversubscribed: the job waits for residency like a swapped-out
	// one; serveWaiters launches or recovers it once memory frees.
	j.State = StateSwappedOut
	j.wantsBurst = true
	j.swapWantedAt = c.now
	cd.waiters = append(cd.waiters, j.ID)
	c.serveWaiters(cd)
	return nil
}

// placedMotion starts the data motion of a freshly placed, resident
// job: a snapshot recovery when a replica survives, a cold launch
// otherwise. The caller has already reserved committed and resident
// memory on cd.
func (c *Controller) placedMotion(j *Job, cd *card) error {
	h := c.hosts[cd.hostIdx]
	holders := c.liveHolders(j)
	if len(holders) > 0 {
		from := holders[0]
		bestCost := simclock.Duration(-1)
		for _, hold := range holders {
			cost := simclock.Duration(0)
			if hold != h.name {
				cost = c.be.LinkCost(h.name, hold, j.Spec.Footprint)
			}
			if bestCost < 0 || cost < bestCost {
				from, bestCost = hold, cost
			}
		}
		j.swapWantedAt = c.now
		dur, err := c.be.Recover(j, h.name, cd.idx)
		if err != nil {
			return fmt.Errorf("fleetd: recovering job %d on %s from %s: %w", j.ID, h.name, from, err)
		}
		j.burstsDone = j.ckptBursts
		j.launched = true
		c.startOp(j, opRecover, dur, cd)
		return nil
	}
	dur, err := c.be.Launch(j)
	if err != nil {
		return fmt.Errorf("fleetd: launching job %d on %s: %w", j.ID, h.name, err)
	}
	j.launched = true
	c.startOp(j, opLaunch, dur, cd)
	return nil
}

// tryPreempt looks for a card where evicting strictly-lower-priority
// idle jobs (thinking or swapped out) frees enough committed memory for
// j. Swapped victims unassign immediately; thinking victims swap out
// through the store first. Returns true when a preemption started.
func (c *Controller) tryPreempt(j *Job) bool {
	pct := c.opts.oversubPct()
	type plan struct {
		cd      *card
		victims []*Job
	}
	var best *plan
	for _, h := range c.hosts {
		if h.dead || h.draining {
			continue
		}
		for _, cd := range h.cards {
			deficit := j.Spec.Footprint - (cd.commitCap(pct) - cd.committed)
			if deficit <= 0 {
				continue // findCard would have taken it
			}
			var cands []*Job
			for _, v := range h.assigned {
				if v.Card != cd.idx || v.beingPreempted {
					continue
				}
				if v.Spec.Priority >= j.Spec.Priority {
					continue
				}
				if v.State == StateThinking || v.State == StateSwappedOut {
					cands = append(cands, v)
				}
			}
			// Evict lowest priority first; ties prefer swapped-out (free
			// to evict), then latest-returning, then ID.
			sort.Slice(cands, func(a, b int) bool {
				va, vb := cands[a], cands[b]
				if va.Spec.Priority != vb.Spec.Priority {
					return va.Spec.Priority < vb.Spec.Priority
				}
				aSwapped, bSwapped := va.State == StateSwappedOut, vb.State == StateSwappedOut
				if aSwapped != bSwapped {
					return aSwapped
				}
				if va.thinkEndAt != vb.thinkEndAt {
					return va.thinkEndAt > vb.thinkEndAt
				}
				return va.ID < vb.ID
			})
			var take []*Job
			freed := int64(0)
			for _, v := range cands {
				take = append(take, v)
				freed += v.Spec.Footprint
				if freed >= deficit {
					break
				}
			}
			if freed < deficit {
				continue
			}
			if best == nil || len(take) < len(best.victims) ||
				(len(take) == len(best.victims) && (cd.hostIdx < best.cd.hostIdx ||
					(cd.hostIdx == best.cd.hostIdx && cd.idx < best.cd.idx))) {
				best = &plan{cd: cd, victims: take}
			}
		}
	}
	if best == nil {
		return false
	}
	for _, v := range best.victims {
		v.beingPreempted = true
		if v.State == StateSwappedOut {
			c.evictPreempted(v)
			continue
		}
		// Thinking: its state must move through the store first.
		j.preemptEvicts++
		v.preemptFor = j.ID
		v.epoch++ // cancel its scheduled thinkEnd
		if err := c.startSwapOut(v, true); err != nil {
			// The capture failed; the victim is unharmed (atomic-or-absent).
			c.abortEviction(v, j)
		}
	}
	return true
}

// evictPreempted unassigns a victim whose state is already safely in
// the store and requeues it.
func (c *Controller) evictPreempted(v *Job) {
	c.unassign(v)
	v.beingPreempted = false
	v.wantsBurst = false
	v.launched = false // it may be re-placed anywhere; recovery re-homes it
	v.epoch++
	v.State = StatePending
	v.enqueuedAt = c.now
	c.tenantQueued[v.Spec.Tenant]++
	c.stats.Preemptions++
	c.mPreempts.Inc()
	c.pending.Push(v)
}

// abortEviction undoes a failed eviction: the victim keeps running as
// if nothing happened (the failed capture is atomic-or-absent).
func (c *Controller) abortEviction(v *Job, preemptor *Job) {
	v.beingPreempted = false
	v.preemptFor = 0
	v.State = StateThinking
	c.stats.PreemptAborts++
	if preemptor != nil && preemptor.preemptEvicts > 0 {
		preemptor.preemptEvicts--
	}
	// Its think phase already elapsed conceptually; resume bursting.
	c.schedule(c.now, evThinkEnd, v)
}

// unassign releases j's committed and resident memory.
func (c *Controller) unassign(j *Job) {
	if j.Card < 0 {
		return
	}
	h, err := c.hostByName(j.Host)
	if err != nil {
		return
	}
	cd := h.cards[j.Card]
	cd.committed -= j.Spec.Footprint
	if _, ok := cd.residents[j.ID]; ok {
		cd.resident -= j.Spec.Footprint
		delete(cd.residents, j.ID)
	}
	delete(h.assigned, j.ID)
	j.Host, j.Card = "", -1
	c.serveWaiters(cd)
}

// --- engine ops ---

// startOp schedules an engine op completion on j's card. The card's
// engine runs one data-motion op at a time: the op starts when the
// engine frees and the completion event fires dur later.
func (c *Controller) startOp(j *Job, k opKind, dur simclock.Duration, cd *card) {
	start := c.now
	if cd.busyUntil > start {
		start = cd.busyUntil
	}
	cd.busyUntil = start + dur
	j.curOp = k
	j.opStart = start
	j.opDur = dur
	switch k {
	case opLaunch:
		j.State = StateLaunching
	case opRecover, opSwapIn:
		j.State = StateSwappingIn
	case opSwapOut:
		j.State = StateSwappingOut
	case opMigrate:
		j.State = StateMigrating
	}
	c.schedule(start+dur, evOpDone, j)
}

// startSwapOut begins a store-backed swap-out of a thinking job.
func (c *Controller) startSwapOut(v *Job, preempt bool) error {
	h, err := c.hostByName(v.Host)
	if err != nil {
		return err
	}
	cd := h.cards[v.Card]
	dur, err := c.be.SwapOut(v)
	if err != nil {
		c.stats.SwapFails++
		return fmt.Errorf("fleetd: swapping out job %d: %w", v.ID, err)
	}
	v.opPreempt = preempt
	c.stats.SwapOuts++
	c.mSwapOuts.Inc()
	c.startOp(v, opSwapOut, dur, cd)
	return nil
}

func (c *Controller) opDone(j *Job) error {
	k := j.curOp
	j.curOp = opNone
	c.emitOpSpan(j, k)
	switch k {
	case opLaunch, opSwapIn, opRecover:
		if k != opLaunch {
			lat := c.now - j.swapWantedAt
			c.swapLats = append(c.swapLats, lat)
			c.hSwapLat.Observe(int64(lat))
			c.stats.SwapIns++
			c.mSwapIns.Inc()
			c.emitJobSpan(j, "fleet_wait", j.swapWantedAt, lat)
		}
		return c.startBurst(j)
	case opSwapOut:
		return c.swapOutDone(j)
	case opMigrate:
		return c.migrateDone(j)
	}
	return nil
}

func (c *Controller) swapOutDone(j *Job) error {
	h, err := c.hostByName(j.Host)
	if err != nil {
		return err
	}
	cd := h.cards[j.Card]
	cd.resident -= j.Spec.Footprint
	delete(cd.residents, j.ID)
	j.State = StateSwappedOut
	j.snapshotted = true
	j.ckptBursts = j.burstsDone
	if j.opPreempt {
		j.opPreempt = false
		if p := c.jobs[j.preemptFor]; p != nil && p.preemptEvicts > 0 {
			p.preemptEvicts--
		}
		j.preemptFor = 0
		c.evictPreempted(j)
		c.serveWaiters(cd)
		return nil
	}
	if j.wantsBurst {
		// Churn: the job's think phase ended while it was being evicted;
		// it immediately queues to come back.
		cd.waiters = append(cd.waiters, j.ID)
	} else {
		// Its think clock kept running through the capture; re-raise the
		// burst trigger the eviction's epoch bump canceled.
		at := j.thinkEndAt
		if at < c.now {
			at = c.now
		}
		c.schedule(at, evThinkEnd, j)
	}
	c.serveWaiters(cd)
	return nil
}

// serveWaiters starts swap-ins for the card's waiters while residency
// allows, evicting thinking jobs when it does not.
func (c *Controller) serveWaiters(cd *card) {
	for len(cd.waiters) > 0 {
		j := c.jobs[cd.waiters[0]]
		if j == nil || j.State != StateSwappedOut || j.Card != cd.idx {
			cd.waiters = cd.waiters[1:]
			continue
		}
		if cd.cap-cd.resident < j.Spec.Footprint {
			// Whether or not a victim was found, wait: either the eviction
			// or a later burst end frees the memory, and both re-serve.
			c.evictForResidency(cd)
			return
		}
		cd.waiters = cd.waiters[1:]
		cd.resident += j.Spec.Footprint
		cd.residents[j.ID] = j
		if !j.launched {
			// A placed-but-never-resident job (oversubscribed admission or
			// post-failure requeue): launch or recover, not swap in.
			if err := c.placedMotion(j, cd); err != nil {
				c.stats.SwapFails++
				cd.resident -= j.Spec.Footprint
				delete(cd.residents, j.ID)
				cd.waiters = append([]int{j.ID}, cd.waiters...)
				c.scheduleServeRetry(cd)
				return
			}
			cd.retries = 0
			continue
		}
		holders := c.liveHolders(j)
		from := c.hosts[cd.hostIdx].name
		if len(holders) > 0 {
			from = holders[0]
			for _, hold := range holders {
				if hold == c.hosts[cd.hostIdx].name {
					from = hold
					break
				}
			}
		}
		dur, err := c.be.SwapIn(j, from)
		if err != nil {
			// Retryable: put the job back at the head and arrange a
			// card-targeted retry — nothing else is guaranteed to touch
			// this card again.
			c.stats.SwapFails++
			cd.resident -= j.Spec.Footprint
			delete(cd.residents, j.ID)
			cd.waiters = append([]int{j.ID}, cd.waiters...)
			c.scheduleServeRetry(cd)
			return
		}
		cd.retries = 0
		c.startOp(j, opSwapIn, dur, cd)
	}
}

// maxServeRetries bounds a card's self-scheduled retry chain: past it
// the waiter parks until another event on the card re-serves it, so a
// backend that fails forever cannot keep the event loop alive forever.
const maxServeRetries = 10

// serveRetryBase is the first retry's backoff; it doubles per
// consecutive failure on the card.
const serveRetryBase = simclock.Duration(1e6) // 1ms virtual

// scheduleServeRetry arranges a card-targeted re-serve after a failed
// swap-in or launch attempt. Without it a failure on a card that no
// later burst end, swap-out, or completion happens to touch would
// strand the waiter queue indefinitely.
func (c *Controller) scheduleServeRetry(cd *card) {
	if cd.retries >= maxServeRetries {
		return
	}
	backoff := serveRetryBase << uint(cd.retries)
	cd.retries++
	c.seq++
	c.controls[c.seq] = controlPayload{host: c.hosts[cd.hostIdx].name, card: cd.idx}
	c.events.Push(event{at: c.now + backoff, seq: c.seq, kind: evServeCard})
}

// evictForResidency swaps out the thinking resident whose next burst
// is furthest away (it needs its memory last; ties go to the lowest
// ID). One victim at a time — swap-outs serialize on the card engine
// anyway, and each completion re-runs serveWaiters.
func (c *Controller) evictForResidency(cd *card) {
	var victim *Job
	for _, v := range cd.residents {
		if v.State != StateThinking || v.beingPreempted {
			continue
		}
		if victim == nil || v.thinkEndAt > victim.thinkEndAt ||
			(v.thinkEndAt == victim.thinkEndAt && v.ID < victim.ID) {
			victim = v
		}
	}
	if victim == nil {
		return // every resident is bursting; a burst end frees one
	}
	victim.epoch++ // its thinkEnd will be re-raised after the swap cycle
	victim.wantsBurst = false
	if err := c.startSwapOut(victim, false); err != nil {
		c.abortEviction(victim, nil)
	}
}

// --- job lifecycle ---

func (c *Controller) startBurst(j *Job) error {
	j.State = StateRunning
	j.wantsBurst = false
	j.burstStart = c.now
	if err := c.be.RunBurst(j); err != nil {
		return fmt.Errorf("fleetd: job %d burst %d: %w", j.ID, j.burstsDone+1, err)
	}
	c.schedule(c.now+j.Spec.BurstLen, evBurstEnd, j)
	return nil
}

func (c *Controller) burstEnd(j *Job) error {
	j.burstsDone++
	c.stats.BurstNs += int64(j.Spec.BurstLen)
	c.emitJobSpan(j, "fleet_burst", j.burstStart, j.Spec.BurstLen)
	if j.burstsDone >= j.Spec.Bursts {
		return c.complete(j)
	}
	j.State = StateThinking
	j.thinkStart = c.now
	j.thinkEndAt = c.now + j.Spec.ThinkLen
	c.schedule(j.thinkEndAt, evThinkEnd, j)
	// Oversubscription: if someone is waiting for this card's memory,
	// the thinking job's idle footprint is the cheapest thing to
	// reclaim.
	h, err := c.hostByName(j.Host)
	if err != nil {
		return err
	}
	cd := h.cards[j.Card]
	if len(cd.waiters) > 0 {
		j.epoch++
		j.wantsBurst = false
		if err := c.startSwapOut(j, false); err != nil {
			c.abortEviction(j, nil)
		}
	}
	return nil
}

func (c *Controller) thinkEnd(j *Job) error {
	c.emitJobSpan(j, "fleet_think", j.thinkStart, j.Spec.ThinkLen)
	switch j.State {
	case StateThinking:
		// Still resident: burst immediately.
		return c.startBurst(j)
	case StateSwappedOut:
		j.wantsBurst = true
		j.swapWantedAt = c.now
		h, err := c.hostByName(j.Host)
		if err != nil {
			return err
		}
		cd := h.cards[j.Card]
		cd.waiters = append(cd.waiters, j.ID)
		c.serveWaiters(cd)
	case StateSwappingOut:
		// Mid-eviction: remember the burst is due; swapOutDone requeues.
		j.wantsBurst = true
		j.swapWantedAt = c.now
	}
	return nil
}

func (c *Controller) complete(j *Job) error {
	j.State = StateDone
	c.stats.Completed++
	c.stats.Makespan = c.now
	if err := c.be.Finish(j); err != nil {
		return fmt.Errorf("fleetd: finishing job %d: %w", j.ID, err)
	}
	h, err := c.hostByName(j.Host)
	if err != nil {
		return err
	}
	cd := h.cards[j.Card]
	c.unassign(j)
	if h.draining && h.drain != nil {
		c.dropFromDrain(h, j.ID)
	}
	c.serveWaiters(cd)
	return nil
}

// --- tracing ---

func (c *Controller) emitOpSpan(j *Job, k opKind) {
	if !c.opts.Trace || j.opDur <= 0 {
		return
	}
	host := j.Host
	cardIdx := j.Card
	if k == opMigrate || k == opRecover {
		host, cardIdx = j.opDstHost, j.opDstCard
		if host == "" {
			host, cardIdx = j.Host, j.Card
		}
	}
	tk := c.obs.TracerOf().Track("fleet/"+host, fmt.Sprintf("card%d", cardIdx))
	tk.Emit(0, k.spanName(), j.opStart, j.opDur, map[string]int64{
		"job":      int64(j.ID),
		"bytes":    j.Spec.Footprint,
		"priority": int64(j.Spec.Priority),
	})
}

func (c *Controller) emitJobSpan(j *Job, name string, start, dur simclock.Duration) {
	if !c.opts.Trace || dur <= 0 {
		return
	}
	tk := c.obs.TracerOf().Track("fleet/jobs", fmt.Sprintf("job%04d", j.ID))
	tk.Emit(0, name, start, dur, map[string]int64{"bursts_done": int64(j.burstsDone)})
}
