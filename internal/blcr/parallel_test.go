package blcr

import (
	"testing"

	"snapify/internal/blob"
	"snapify/internal/proc"
	"snapify/internal/simclock"
	"snapify/internal/stream"
	"snapify/internal/vfs"
)

// stripedSink returns a ShardSinkFactory assembling shards into one file
// on the test host FS.
func (e *testEnv) stripedSink(t *testing.T, path string) ShardSinkFactory {
	t.Helper()
	var set *stream.StripeSet
	return func(off, n, total int64) (stream.Sink, error) {
		if set == nil {
			s, err := stream.NewStripeSet(vfs.Host(e.fs).(vfs.SparseFS), path, total)
			if err != nil {
				return nil, err
			}
			set = s
		}
		return set.Sink(off, n)
	}
}

func (e *testEnv) rangeSource(path string) RangeSourceFactory {
	return func(off, n int64) (stream.Source, error) {
		return stream.NewRangeSource(vfs.Host(e.fs).(vfs.RangeFS), path, off, n)
	}
}

// makeBigProc builds a process whose regions are large enough to stripe.
func makeBigProc(t *testing.T) *proc.Process {
	t.Helper()
	p := proc.New("offload_big", 4242, 1, nil)
	data, err := p.AddRegion("data", proc.RegionData, 8192, 11)
	if err != nil {
		t.Fatal(err)
	}
	data.WriteAt([]byte("globals"), 0)
	heap, _ := p.AddRegion("heap", proc.RegionHeap, 64*simclock.MiB, 13)
	heap.WriteAt([]byte("hot pages"), 12345)
	heap.WriteAt([]byte("cold pages"), 48*simclock.MiB)
	stack, _ := p.AddRegion("stack", proc.RegionStack, 9*simclock.MiB, 19)
	stack.WriteAt([]byte("frames"), 100)
	ls, _ := p.AddRegion("coibuf0", proc.RegionLocalStore, 16*simclock.MiB, 17)
	ls.Pin()
	return p
}

func TestParallelCheckpointByteIdenticalToSerial(t *testing.T) {
	e := newEnv()
	p := makeBigProc(t)
	p.PauseSteps()
	defer p.ResumeSteps()

	sst, err := e.cr.CheckpointFrozen(p, e.sink(t, "serial"))
	if err != nil {
		t.Fatal(err)
	}
	pst, err := e.cr.CheckpointFrozenParallel(p, 4, 0, e.stripedSink(t, "parallel"))
	if err != nil {
		t.Fatal(err)
	}
	a, _, err := e.fs.ReadFile("serial")
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := e.fs.ReadFile("parallel")
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatalf("parallel context is %d bytes, serial %d", b.Len(), a.Len())
	}
	if !blob.Equal(a, b) {
		t.Error("parallel context differs from serial context byte-for-byte")
	}
	if pst.Bytes != sst.Bytes || pst.MetaWrites != sst.MetaWrites || pst.Regions != sst.Regions {
		t.Errorf("parallel stats %+v != serial stats %+v", pst, sst)
	}
	// Synthetic background must survive striping without materializing.
	if b.LiteralBytes() > simclock.MiB {
		t.Errorf("striped context holds %d literal bytes", b.LiteralBytes())
	}
}

func TestParallelCheckpointSingleWorkerDegenerate(t *testing.T) {
	e := newEnv()
	p := makeBigProc(t)
	p.PauseSteps()
	defer p.ResumeSteps()
	if _, err := e.cr.CheckpointFrozen(p, e.sink(t, "serial")); err != nil {
		t.Fatal(err)
	}
	if _, err := e.cr.CheckpointFrozenParallel(p, 1, 0, e.stripedSink(t, "one")); err != nil {
		t.Fatal(err)
	}
	a, _, _ := e.fs.ReadFile("serial")
	b, _, err := e.fs.ReadFile("one")
	if err != nil {
		t.Fatal(err)
	}
	if !blob.Equal(a, b) {
		t.Error("single-worker parallel context differs from serial")
	}
}

func TestParallelRestartRestoresIdenticalState(t *testing.T) {
	e := newEnv()
	p := makeBigProc(t)
	want := snapshotAll(p)
	p.PauseSteps()
	if _, err := e.cr.CheckpointFrozenParallel(p, 4, 0, e.stripedSink(t, "ctx")); err != nil {
		t.Fatal(err)
	}
	p.ResumeSteps()

	ctx, _, err := e.fs.ReadFile("ctx")
	if err != nil {
		t.Fatal(err)
	}
	restored, st, err := e.cr.RestartParallel(ctx.Len(), 4, 0, e.rangeSource("ctx"), func(img *Image) (*proc.Process, error) {
		if img.Name != "offload_big" {
			t.Errorf("image name = %q", img.Name)
		}
		return proc.New(img.Name, 777, 2, nil), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Regions != 4 || st.Duration <= 0 {
		t.Errorf("restart stats: %+v", st)
	}
	got := snapshotAll(restored)
	for name, b := range want {
		g, ok := got[name]
		if !ok {
			t.Fatalf("region %q missing after parallel restart", name)
		}
		if name == "coibuf0" {
			if g.Len() != b.Len() {
				t.Errorf("local-store region size %d, want %d", g.Len(), b.Len())
			}
			continue
		}
		if !blob.Equal(g, b) {
			t.Errorf("region %q content differs after parallel restart", name)
		}
	}
	if !restored.Region("coibuf0").Pinned() {
		t.Error("pinned flag lost through parallel restart")
	}
	if !restored.StepsPaused() {
		t.Error("parallel-restored process not frozen")
	}
}

func TestParallelDeltaByteIdenticalToSerial(t *testing.T) {
	e := newEnv()
	p := makeBigProc(t)
	p.PauseSteps()
	defer p.ResumeSteps()
	if _, err := e.cr.CheckpointFrozen(p, e.sink(t, "base")); err != nil {
		t.Fatal(err)
	}
	for _, r := range p.Regions() {
		r.MarkClean()
	}
	dirty := func() {
		p.Region("heap").WriteAt([]byte("delta pages"), 10*simclock.MiB)
		p.Region("stack").WriteAt([]byte("new frame"), 2048)
	}

	dirty()
	if _, err := e.cr.CheckpointDeltaFrozen(p, e.sink(t, "d_serial")); err != nil {
		t.Fatal(err)
	}
	dirty() // identical dirty set again
	if _, err := e.cr.CheckpointDeltaFrozenParallel(p, 4, 0, e.stripedSink(t, "d_parallel")); err != nil {
		t.Fatal(err)
	}
	if p.Region("heap").DirtySinceClean() != 0 {
		t.Error("parallel delta did not mark regions clean")
	}
	a, _, err := e.fs.ReadFile("d_serial")
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := e.fs.ReadFile("d_parallel")
	if err != nil {
		t.Fatal(err)
	}
	if !blob.Equal(a, b) {
		t.Error("parallel delta context differs from serial delta")
	}
}

func TestRestartChainParallel(t *testing.T) {
	e := newEnv()
	p := makeBigProc(t)
	p.PauseSteps()
	if _, err := e.cr.CheckpointFrozenParallel(p, 3, 0, e.stripedSink(t, "base")); err != nil {
		t.Fatal(err)
	}
	for _, r := range p.Regions() {
		r.MarkClean()
	}
	p.Region("heap").WriteAt([]byte("post-base state"), 30*simclock.MiB)
	if _, err := e.cr.CheckpointDeltaFrozenParallel(p, 3, 0, e.stripedSink(t, "delta0")); err != nil {
		t.Fatal(err)
	}
	p.ResumeSteps()
	want := snapshotAll(p)

	base, _, err := e.fs.ReadFile("base")
	if err != nil {
		t.Fatal(err)
	}
	restored, st, err := e.cr.RestartChainParallel(base.Len(), 3, 0, e.rangeSource("base"),
		[]stream.Source{e.source(t, "delta0")},
		func(img *Image) (*proc.Process, error) {
			return proc.New(img.Name, 778, 2, nil), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if st.Duration <= 0 {
		t.Errorf("chain stats: %+v", st)
	}
	got := snapshotAll(restored)
	for _, name := range []string{"data", "heap", "stack"} {
		if !blob.Equal(got[name], want[name]) {
			t.Errorf("region %q differs after parallel chain restore", name)
		}
	}
}
