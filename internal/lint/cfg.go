package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// A CFG is the control-flow graph of one function body. Blocks hold
// statements (and the control expressions that guard them) in evaluation
// order; edges follow Go's structured control flow. One synthetic Exit
// block collects every way out of the function: returns, panics, and
// falling off the end. Defer statements appear as ordinary nodes in the
// block that registers them — analyzers that care about function-exit
// effects (spanleak, closeleak) interpret a registered defer as running
// at every subsequent exit.
type CFG struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block // Entry first, Exit last, interior blocks in creation order
}

// A Block is one straight-line run of nodes.
type Block struct {
	Index int
	// Kind labels what created the block, for debug dumps and tests.
	Kind string
	// Nodes are statements and guard expressions in evaluation order.
	// Guard expressions (an if condition, a range operand) appear before
	// the branch's blocks.
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
}

func (b *Block) addSucc(s *Block) {
	if b == nil || s == nil {
		return
	}
	for _, have := range b.Succs {
		if have == s {
			return
		}
	}
	b.Succs = append(b.Succs, s)
	s.Preds = append(s.Preds, b)
}

// String renders the graph compactly for tests and debugging:
// "0[entry]->1,2 1[if.then]->3 ...".
func (c *CFG) String() string {
	var parts []string
	for _, b := range c.Blocks {
		var succ []string
		for _, s := range b.Succs {
			succ = append(succ, fmt.Sprint(s.Index))
		}
		parts = append(parts, fmt.Sprintf("%d[%s]->%s", b.Index, b.Kind, strings.Join(succ, ",")))
	}
	return strings.Join(parts, " ")
}

// BuildCFG constructs the control-flow graph of a function body.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{}
	b.cfg = &CFG{}
	b.cfg.Entry = b.newBlock("entry")
	b.cfg.Exit = &Block{Kind: "exit"}
	b.cur = b.cfg.Entry
	b.stmts(body.List)
	// Falling off the end of the body exits the function.
	b.jump(b.cfg.Exit)
	b.cfg.Exit.Index = len(b.cfg.Blocks)
	b.cfg.Blocks = append(b.cfg.Blocks, b.cfg.Exit)
	return b.cfg
}

type loopFrame struct {
	label         string
	brk, cont     *Block
	isSwitchOrSel bool
	fallthroughTo *Block
}

type cfgBuilder struct {
	cfg   *CFG
	cur   *Block // nil while control cannot reach the next statement
	loops []*loopFrame
	// pendingLabel names the loop/switch statement that follows a
	// labeled statement, so labeled break/continue resolve.
	pendingLabel string
}

func (b *cfgBuilder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.cfg.Blocks), Kind: kind}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// jump wires the current block to target and leaves the builder with no
// current block (control has transferred).
func (b *cfgBuilder) jump(target *Block) {
	if b.cur != nil {
		b.cur.addSucc(target)
	}
	b.cur = nil
}

// startBlock makes blk current, as the continuation of the previous
// current block when one exists.
func (b *cfgBuilder) startBlock(blk *Block) {
	if b.cur != nil {
		b.cur.addSucc(blk)
	}
	b.cur = blk
}

// add appends a node to the current block, materializing an unreachable
// block if control already transferred (so dead statements still get
// facts — analyzers should not crash on them).
func (b *cfgBuilder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock("unreachable")
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *cfgBuilder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// frame finds the innermost loop (or, for break, switch/select) frame,
// optionally by label.
func (b *cfgBuilder) frame(label string, forBreak bool) *loopFrame {
	for i := len(b.loops) - 1; i >= 0; i-- {
		f := b.loops[i]
		if label != "" && f.label != label {
			continue
		}
		if !forBreak && f.isSwitchOrSel {
			continue // continue skips switch frames
		}
		return f
	}
	return nil
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch stmt := s.(type) {
	case *ast.BlockStmt:
		b.stmts(stmt.List)

	case *ast.LabeledStmt:
		b.pendingLabel = stmt.Label.Name
		b.stmt(stmt.Stmt)
		b.pendingLabel = ""

	case *ast.ReturnStmt:
		b.add(stmt)
		b.jump(b.cfg.Exit)

	case *ast.BranchStmt:
		b.add(stmt)
		label := ""
		if stmt.Label != nil {
			label = stmt.Label.Name
		}
		switch stmt.Tok {
		case token.BREAK:
			if f := b.frame(label, true); f != nil {
				b.jump(f.brk)
			} else {
				b.cur = nil
			}
		case token.CONTINUE:
			if f := b.frame(label, false); f != nil {
				b.jump(f.cont)
			} else {
				b.cur = nil
			}
		case token.FALLTHROUGH:
			if f := b.frame("", true); f != nil && f.fallthroughTo != nil {
				b.jump(f.fallthroughTo)
			} else {
				b.cur = nil
			}
		case token.GOTO:
			// Rare in this codebase; treated conservatively as leaving
			// the function so facts stay sound (nothing downstream is
			// assumed released/sorted).
			b.jump(b.cfg.Exit)
		}

	case *ast.ExprStmt:
		b.add(stmt)
		if call, ok := ast.Unparen(stmt.X).(*ast.CallExpr); ok && isPanicCall(call) {
			b.jump(b.cfg.Exit)
		}

	case *ast.IfStmt:
		if stmt.Init != nil {
			b.stmt(stmt.Init)
		}
		b.add(stmt.Cond)
		cond := b.cur
		join := b.newBlock("if.join")
		then := b.newBlock("if.then")
		then.Nodes = append(then.Nodes, &Assume{Cond: stmt.Cond, Truth: true})
		cond.addSucc(then)
		b.cur = then
		b.stmts(stmt.Body.List)
		b.jump(join)
		// The false edge always gets its own block so the negative Assume
		// has somewhere to live (the join may have other predecessors).
		els := b.newBlock("if.else")
		els.Nodes = append(els.Nodes, &Assume{Cond: stmt.Cond, Truth: false})
		cond.addSucc(els)
		b.cur = els
		if stmt.Else != nil {
			b.stmt(stmt.Else)
		}
		b.jump(join)
		b.cur = join

	case *ast.ForStmt:
		if stmt.Init != nil {
			b.stmt(stmt.Init)
		}
		head := b.newBlock("for.head")
		b.startBlock(head)
		if stmt.Cond != nil {
			b.add(stmt.Cond)
		}
		body := b.newBlock("for.body")
		join := b.newBlock("for.join")
		post := head
		if stmt.Post != nil {
			post = b.newBlock("for.post")
		}
		head.addSucc(body)
		if stmt.Cond != nil {
			head.addSucc(join) // condition false
		}
		b.loops = append(b.loops, &loopFrame{label: b.pendingLabel, brk: join, cont: post})
		b.pendingLabel = ""
		b.cur = body
		b.stmts(stmt.Body.List)
		if stmt.Post != nil {
			b.jump(post)
			b.cur = post
			b.stmt(stmt.Post)
			b.jump(head)
		} else {
			b.jump(head)
		}
		b.loops = b.loops[:len(b.loops)-1]
		b.cur = join

	case *ast.RangeStmt:
		head := b.newBlock("range.head")
		b.startBlock(head)
		b.add(stmt) // the range statement itself guards the body
		body := b.newBlock("range.body")
		join := b.newBlock("range.join")
		head.addSucc(body)
		head.addSucc(join) // exhausted
		b.loops = append(b.loops, &loopFrame{label: b.pendingLabel, brk: join, cont: head})
		b.pendingLabel = ""
		b.cur = body
		b.stmts(stmt.Body.List)
		b.jump(head)
		b.loops = b.loops[:len(b.loops)-1]
		b.cur = join

	case *ast.SwitchStmt:
		if stmt.Init != nil {
			b.stmt(stmt.Init)
		}
		if stmt.Tag != nil {
			b.add(stmt.Tag)
		}
		b.caseBodies(stmt.Body, false)

	case *ast.TypeSwitchStmt:
		if stmt.Init != nil {
			b.stmt(stmt.Init)
		}
		b.add(stmt.Assign)
		b.caseBodies(stmt.Body, false)

	case *ast.SelectStmt:
		b.add(stmt) // the blocking point itself
		b.caseBodies(stmt.Body, true)

	case *ast.GoStmt, *ast.DeferStmt, *ast.AssignStmt, *ast.DeclStmt,
		*ast.IncDecStmt, *ast.SendStmt, *ast.EmptyStmt:
		b.add(s)

	default:
		b.add(s)
	}
}

// caseBodies builds the blocks of a switch/type-switch/select body. Every
// clause body is a successor of the header; a missing default adds a
// direct header->join edge.
func (b *cfgBuilder) caseBodies(body *ast.BlockStmt, isSelect bool) {
	header := b.cur
	if header == nil {
		header = b.newBlock("unreachable")
		b.cur = header
	}
	join := b.newBlock("switch.join")
	kind := "case"
	if isSelect {
		kind = "comm"
	}
	var clauses []ast.Stmt
	for _, c := range body.List {
		clauses = append(clauses, c)
	}
	blocks := make([]*Block, len(clauses))
	for i := range clauses {
		blocks[i] = b.newBlock(kind)
	}
	hasDefault := false
	frame := &loopFrame{label: b.pendingLabel, brk: join, isSwitchOrSel: true}
	b.pendingLabel = ""
	b.loops = append(b.loops, frame)
	for i, c := range clauses {
		var bodyStmts []ast.Stmt
		var guards []ast.Node
		isDefault := false
		switch cc := c.(type) {
		case *ast.CaseClause:
			bodyStmts = cc.Body
			isDefault = cc.List == nil
			for _, e := range cc.List {
				guards = append(guards, e)
			}
		case *ast.CommClause:
			bodyStmts = cc.Body
			isDefault = cc.Comm == nil
			if cc.Comm != nil {
				guards = append(guards, cc.Comm)
			}
		}
		if isDefault {
			hasDefault = true
		}
		header.addSucc(blocks[i])
		b.cur = blocks[i]
		for _, g := range guards {
			b.add(g)
		}
		if i+1 < len(blocks) {
			frame.fallthroughTo = blocks[i+1]
		} else {
			frame.fallthroughTo = nil
		}
		b.stmts(bodyStmts)
		b.jump(join)
	}
	b.loops = b.loops[:len(b.loops)-1]
	if !hasDefault || len(clauses) == 0 {
		header.addSucc(join)
	}
	b.cur = join
}

// An Assume is a synthetic CFG node recording that a branch condition is
// known true or false on entry to a block — the then-branch of an if
// carries Assume{Cond, true}, the else/fall-through edge Assume{Cond,
// false}. Transfer functions that care about path conditions (closeleak's
// "the handle is invalid when its paired error is non-nil") refine their
// facts on it; everything else ignores it. Assume is NOT a node ast.Walk
// knows, so transfer functions must type-switch on it before handing a
// node to ast.Inspect.
type Assume struct {
	Cond  ast.Expr
	Truth bool
}

// Pos and End delegate to the condition, so Assume satisfies ast.Node.
func (a *Assume) Pos() token.Pos { return a.Cond.Pos() }
func (a *Assume) End() token.Pos { return a.Cond.End() }

// AssumeNilness interprets an Assume over a `X == nil` / `X != nil`
// comparison of a simple identifier: it returns the identifier and
// whether the assumed path has X non-nil. ok is false for any other
// condition shape.
func (a *Assume) AssumeNilness() (id *ast.Ident, nonNil, ok bool) {
	bin, isBin := ast.Unparen(a.Cond).(*ast.BinaryExpr)
	if !isBin || (bin.Op != token.EQL && bin.Op != token.NEQ) {
		return nil, false, false
	}
	x, y := ast.Unparen(bin.X), ast.Unparen(bin.Y)
	if isNilIdent(x) {
		x, y = y, x
	}
	if !isNilIdent(y) {
		return nil, false, false
	}
	ident, isIdent := x.(*ast.Ident)
	if !isIdent {
		return nil, false, false
	}
	// X != nil assumed true, or X == nil assumed false, means X is non-nil.
	return ident, (bin.Op == token.NEQ) == a.Truth, true
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// isPanicCall reports a direct call of the builtin panic.
func isPanicCall(call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

// --- forward dataflow ---

// Facts is a set of analysis facts (keys must be comparable: a
// types.Object, a token.Pos, a small struct).
type Facts map[any]bool

// Clone copies the set.
func (f Facts) Clone() Facts {
	c := make(Facts, len(f))
	for k := range f {
		c[k] = true
	}
	return c
}

func (f Facts) equal(g Facts) bool {
	if len(f) != len(g) {
		return false
	}
	for k := range f {
		if !g[k] {
			return false
		}
	}
	return true
}

// union adds g's facts into f, reporting whether f grew.
func (f Facts) union(g Facts) bool {
	grew := false
	for k := range g {
		if !f[k] {
			f[k] = true
			grew = true
		}
	}
	return grew
}

// maxFixpointRounds bounds the solver. Gen/kill transfers over a union
// join converge in O(blocks) rounds; the bound exists so a buggy
// (non-monotone) transfer surfaces as a loud failure instead of a hang.
const maxFixpointRounds = 10000

// SolveForward runs a forward may-analysis to fixpoint: a block's input
// is the union of its predecessors' outputs, its output the result of
// applying transfer to every node in order. It returns the input facts of
// every block; analyzers replay transfer over a block's nodes to get the
// facts at a particular node. transfer must mutate and return in (the
// solver clones between blocks) and must be monotone in the usual
// gen/kill sense.
func SolveForward(cfg *CFG, entry Facts, transfer func(n ast.Node, in Facts) Facts) map[*Block]Facts {
	in := make(map[*Block]Facts, len(cfg.Blocks))
	out := make(map[*Block]Facts, len(cfg.Blocks))
	for _, b := range cfg.Blocks {
		in[b] = Facts{}
		out[b] = Facts{}
	}
	in[cfg.Entry] = entry.Clone()
	// Worklist seeded with every block in index order (deterministic).
	work := make([]*Block, len(cfg.Blocks))
	copy(work, cfg.Blocks)
	queued := make([]bool, len(cfg.Blocks))
	for i := range queued {
		queued[i] = true
	}
	rounds := 0
	for len(work) > 0 {
		if rounds++; rounds > maxFixpointRounds {
			panic("lint: dataflow fixpoint did not converge (non-monotone transfer?)") //nolint:paniclib // analyzer-internal invariant: a bounded worklist over monotone gen/kill transfers always converges; reaching this is a lint bug worth a loud crash
		}
		b := work[0]
		work = work[1:]
		queued[b.Index] = false
		for _, p := range b.Preds {
			in[b].union(out[p])
		}
		o := in[b].Clone()
		for _, n := range b.Nodes {
			o = transfer(n, o)
		}
		if !o.equal(out[b]) {
			out[b] = o
			for _, s := range b.Succs {
				if !queued[s.Index] {
					queued[s.Index] = true
					work = append(work, s)
				}
			}
		}
	}
	return in
}

// FactsAt replays transfer over the nodes of node's block up to (not
// including) node, starting from the block's solved input facts — the
// facts that hold immediately before node executes.
func FactsAt(cfg *CFG, in map[*Block]Facts, node ast.Node, transfer func(n ast.Node, in Facts) Facts) Facts {
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			if n == node {
				f := in[b].Clone()
				for _, m := range b.Nodes {
					if m == node {
						return f
					}
					f = transfer(m, f)
				}
			}
		}
	}
	return Facts{}
}

// sortedFactPositions renders fact keys that carry positions in a stable
// order, for deterministic messages.
func sortedFactPositions(fset interface {
	Position(token.Pos) token.Position
}, facts Facts, posOf func(any) token.Pos) []string {
	var ps []token.Pos
	for k := range facts {
		if p := posOf(k); p.IsValid() {
			ps = append(ps, p)
		}
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
	var out []string
	for _, p := range ps {
		out = append(out, fmt.Sprint(fset.Position(p).Line))
	}
	return out
}
