package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// moduleNamespace is the import-path prefix that marks a function as
// "ours": the analyzers scope several rules to module-defined callees so
// that conventional standard-library patterns (fmt.Println and friends)
// stay out of scope.
const moduleNamespace = "snapify"

// calleeFunc resolves the function or method a call invokes, or nil for
// conversions, builtins, and calls the checker could not resolve.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// isModuleFunc reports whether f is defined in this module.
func isModuleFunc(f *types.Func) bool {
	if f == nil || f.Pkg() == nil {
		return false
	}
	path := f.Pkg().Path()
	return path == moduleNamespace || strings.HasPrefix(path, moduleNamespace+"/")
}

// funcDisplayName renders f for a finding message: pkg.Func for
// functions, Type.Method for methods.
func funcDisplayName(f *types.Func) string {
	sig, ok := f.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + f.Name()
		}
		return f.Name()
	}
	if f.Pkg() != nil {
		return f.Pkg().Name() + "." + f.Name()
	}
	return f.Name()
}

// errorResults returns the indexes of error-typed results in a call's
// result list (nil if the callee's signature is unknown).
func errorResults(info *types.Info, call *ast.CallExpr) []int {
	f := calleeFunc(info, call)
	if f == nil {
		return nil
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var idx []int
	for i := 0; i < sig.Results().Len(); i++ {
		if isErrorType(sig.Results().At(i).Type()) {
			idx = append(idx, i)
		}
	}
	return idx
}

var errorIface = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool { return types.Identical(t, errorIface) }

// isChanType reports whether t is (or points to) a channel.
func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// namedTypeIs reports whether t (possibly behind a pointer) is the named
// type pkgPath.name.
func namedTypeIs(t types.Type, pkgPath, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}
