package simnet

import (
	"testing"

	"snapify/internal/simclock"
)

func newTestFabric(t *testing.T, devices int) *Fabric {
	t.Helper()
	return NewFabric(simclock.Default(), devices)
}

func TestNodeNaming(t *testing.T) {
	if !HostNode.IsHost() {
		t.Error("host node not host")
	}
	if HostNode.String() != "host" {
		t.Errorf("host String = %q", HostNode.String())
	}
	if NodeID(1).String() != "mic0" || NodeID(2).String() != "mic1" {
		t.Errorf("device naming wrong: %q %q", NodeID(1), NodeID(2))
	}
}

func TestFabricTopology(t *testing.T) {
	f := newTestFabric(t, 2)
	if f.Nodes() != 3 || f.Devices() != 2 {
		t.Fatalf("Nodes = %d, Devices = %d", f.Nodes(), f.Devices())
	}
	for _, n := range []NodeID{0, 1, 2} {
		if !f.ValidNode(n) {
			t.Errorf("node %d should be valid", n)
		}
	}
	for _, n := range []NodeID{-1, 3} {
		if f.ValidNode(n) {
			t.Errorf("node %d should be invalid", n)
		}
	}
}

func TestNewFabricRequiresDevice(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero devices")
		}
	}()
	NewFabric(simclock.Default(), 0)
}

func TestRDMACostOrdering(t *testing.T) {
	f := newTestFabric(t, 2)
	n := int64(64 * simclock.MiB)
	hostDev := f.RDMACost(0, 1, n)
	devDev := f.RDMACost(1, 2, n)
	if devDev <= hostDev {
		t.Errorf("peer-to-peer RDMA (%v) must be slower than host-device (%v)", devDev, hostDev)
	}
	localHost := f.RDMACost(0, 0, n)
	localDev := f.RDMACost(1, 1, n)
	if localHost >= localDev {
		t.Errorf("host memcpy (%v) must beat KNC memcpy (%v)", localHost, localDev)
	}
}

func TestVirtioSlowerThanRDMA(t *testing.T) {
	f := newTestFabric(t, 1)
	n := int64(256 * simclock.MiB)
	if f.VirtioCost(1, 0, n) <= f.RDMACost(1, 0, n) {
		t.Error("virtio path must be slower than RDMA")
	}
}

func TestTrafficAccounting(t *testing.T) {
	f := newTestFabric(t, 2)
	f.RDMACost(1, 0, 1000)
	f.RDMACost(1, 0, 500)
	f.MsgCost(0, 1, 64)
	f.VirtioCost(2, 0, 10)
	if got := f.Traffic(1, 0); got != 1500 {
		t.Errorf("Traffic(1,0) = %d, want 1500", got)
	}
	if got := f.Traffic(0, 1); got != 64 {
		t.Errorf("Traffic(0,1) = %d, want 64", got)
	}
	if got := f.Traffic(2, 0); got != 10 {
		t.Errorf("Traffic(2,0) = %d, want 10", got)
	}
	if got := f.Traffic(2, 1); got != 0 {
		t.Errorf("Traffic(2,1) = %d, want 0", got)
	}
}

func TestFlowSharingScalesPerByteCost(t *testing.T) {
	f := newTestFabric(t, 2)
	n := int64(64 * simclock.MiB)
	m := f.Model()
	iso := f.RDMACost(1, 0, n)
	if iso != m.RDMA(n) {
		t.Fatalf("isolated cost %v != model RDMA %v", iso, m.RDMA(n))
	}

	// Two flows on card 1's link: per-byte time doubles, setup does not.
	rel1 := f.RegisterFlow(1, 0)
	rel2 := f.RegisterFlow(0, 1)
	shared := f.RDMACost(1, 0, n)
	want := m.RDMASetup + 2*(m.RDMA(n)-m.RDMASetup)
	if shared != want {
		t.Errorf("shared cost %v, want %v", shared, want)
	}
	// A different card's link is unaffected.
	if got := f.RDMACost(2, 0, n); got != iso {
		t.Errorf("card 2 cost %v changed, want isolated %v", got, iso)
	}

	// Releasing restores the isolated cost; release is idempotent.
	rel1()
	rel1()
	rel2()
	if got := f.RDMACost(1, 0, n); got != iso {
		t.Errorf("after release cost %v, want %v", got, iso)
	}
}

func TestFlowSharingPeerToPeer(t *testing.T) {
	f := newTestFabric(t, 2)
	n := int64(8 * simclock.MiB)
	m := f.Model()
	iso := f.RDMACost(1, 2, n)
	if iso != 2*m.RDMA(n) {
		t.Fatalf("isolated p2p cost %v != 2*RDMA %v", iso, 2*m.RDMA(n))
	}
	// Three flows on card 2's link only: the path's share is the busiest
	// link's count.
	var rels []func()
	for i := 0; i < 3; i++ {
		rels = append(rels, f.RegisterFlow(0, 2))
	}
	got := f.RDMACost(1, 2, n)
	want := 2 * (m.RDMASetup + 3*(m.RDMA(n)-m.RDMASetup))
	if got != want {
		t.Errorf("p2p shared cost %v, want %v", got, want)
	}
	for _, r := range rels {
		r()
	}
}

func TestLinkUtilizationCounters(t *testing.T) {
	f := newTestFabric(t, 1)
	rel := f.RegisterFlow(1, 0)
	rel2 := f.RegisterFlow(1, 0)
	rel2()
	d1 := f.RDMACost(1, 0, 1*simclock.MiB)
	d2 := f.RDMACost(0, 1, 2*simclock.MiB)
	st := f.LinkStats(1)
	if st.Transfers != 2 {
		t.Errorf("Transfers = %d, want 2", st.Transfers)
	}
	if st.Busy != d1+d2 {
		t.Errorf("Busy = %v, want %v", st.Busy, d1+d2)
	}
	if st.Flows != 1 {
		t.Errorf("Flows = %d, want 1", st.Flows)
	}
	if st.PeakFlows != 2 {
		t.Errorf("PeakFlows = %d, want 2", st.PeakFlows)
	}
	rel()
	if got := f.LinkStats(1).Flows; got != 0 {
		t.Errorf("Flows after release = %d, want 0", got)
	}
	// Same-node copies cross no link.
	f.RDMACost(0, 0, 1024)
	if got := f.LinkStats(1).Transfers; got != 2 {
		t.Errorf("local copy accounted on link: Transfers = %d", got)
	}
	if got := f.LinkStats(HostNode); got != (LinkStats{}) {
		t.Errorf("host LinkStats = %+v, want zero", got)
	}
}

func TestInvalidNodePanics(t *testing.T) {
	f := newTestFabric(t, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for invalid node")
		}
	}()
	f.RDMACost(0, 5, 10)
}

// BenchmarkRDMACost pins the per-transfer cost of the fabric hot path:
// fleet-scale runs price thousands of DMA transfers per virtual second,
// so one RDMACost call must stay allocation-free.
func BenchmarkRDMACost(b *testing.B) {
	f := NewFabric(simclock.Default(), 4)
	release := f.RegisterFlow(HostNode, 1)
	defer release()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.RDMACost(HostNode, NodeID(1+i%4), 1<<20)
	}
}

// TestRDMACostNoAlloc is the regression gate behind BenchmarkRDMACost:
// the path computation must not allocate per transfer.
func TestRDMACostNoAlloc(t *testing.T) {
	f := NewFabric(simclock.Default(), 4)
	release := f.RegisterFlow(1, 2)
	defer release()
	allocs := testing.AllocsPerRun(100, func() {
		f.RDMACost(1, 2, 1<<20)
		f.RDMACost(HostNode, 3, 4096)
	})
	if allocs != 0 {
		t.Fatalf("RDMACost allocates %.1f objects per transfer, want 0", allocs)
	}
}
