package snapstore

import (
	"crypto/sha256"
	"encoding/hex"
	"sync"

	"snapify/internal/blob"
)

// This file is the only place in the tree that computes chunk digests
// (snapifylint's storegate analyzer pins that): every layer that needs a
// content address — the card-side layout walk, the daemon's upload
// verification, the fsck in Verify — calls Digest. Keeping the hash in one
// package is what makes "same bytes, same name" a global invariant instead
// of a per-caller convention.

// digestWindow bounds how much synthetic content is materialized at a
// time while hashing, mirroring blob's bounded-window comparisons: chunk
// digests stay content-true without ever holding a materialized chunk.
const digestWindow = 64 * 1024

// synKey identifies a fully synthetic extent's content. Synthetic
// content is a pure function of (seed, offset, size), so its digest is
// too — the cache turns the repeated-swap hot path (mostly untouched
// background pages) into a map lookup.
type synKey struct {
	seed      uint64
	off, size int64
}

var (
	synMu    sync.Mutex
	synCache = make(map[synKey]string)
)

// synCacheMax bounds the process-wide synthetic-digest cache; on
// overflow the cache resets rather than evicting (entries are cheap to
// recompute and the working set of one run fits comfortably).
const synCacheMax = 1 << 15

// Digest returns the hex SHA-256 of the blob's content. Synthetic
// extents are materialized in bounded windows, so digesting a multi-GiB
// snapshot chunk never allocates more than digestWindow bytes; fully
// synthetic chunks are served from a deterministic cache.
func Digest(b blob.Blob) string {
	exts := b.Extents()
	var key synKey
	cacheable := len(exts) == 1 && !exts[0].IsLiteral()
	if cacheable {
		key = synKey{seed: exts[0].Seed, off: exts[0].Off, size: exts[0].Size}
		synMu.Lock()
		d, ok := synCache[key]
		synMu.Unlock()
		if ok {
			return d
		}
	}
	h := sha256.New()
	var buf [digestWindow]byte
	for _, e := range exts {
		if e.IsLiteral() {
			h.Write(e.Literal)
			continue
		}
		for off := int64(0); off < e.Size; {
			n := e.Size - off
			if n > digestWindow {
				n = digestWindow
			}
			blob.Materialize(e.Seed, e.Off+off, buf[:n])
			h.Write(buf[:n])
			off += n
		}
	}
	d := hex.EncodeToString(h.Sum(nil))
	if cacheable {
		synMu.Lock()
		if len(synCache) >= synCacheMax {
			synCache = make(map[synKey]string)
		}
		synCache[key] = d
		synMu.Unlock()
	}
	return d
}

// ChunkDigests splits content into chunkBytes-sized pieces (the last may
// be short) and returns their digests in order — the have/need unit of
// the dedup-aware transfer protocol.
func ChunkDigests(content blob.Blob, chunkBytes int64) []string {
	if chunkBytes <= 0 || content.Len() == 0 {
		return nil
	}
	out := make([]string, 0, (content.Len()+chunkBytes-1)/chunkBytes)
	content.ForEachChunk(chunkBytes, func(chunk blob.Blob) error { //nolint:errcheck // the callback never fails
		out = append(out, Digest(chunk))
		return nil
	})
	return out
}
