// Package simnet models the PCIe fabric of a Xeon Phi server: one host
// (SCIF node 0) and one or more coprocessors (SCIF nodes 1..N) connected by
// PCIe gen2 x16 links. It provides virtual-time costs for message and DMA
// traffic between nodes and keeps per-link byte counters so tests and the
// benchmark harness can verify where data actually moved.
//
// Contention on the bulk-data (RDMA) path is modeled through *flows*: a
// long-lived bulk transfer — an open Snapify-IO stream — registers itself
// on the links it crosses with RegisterFlow, and every RDMA transfer's
// per-byte cost is scaled by the number of flows sharing its busiest link.
// A solitary transfer (no registered flows, or just its own) pays exactly
// the isolated cost, so single-stream captures reproduce the paper's
// numbers; N streams striping one capture each see 1/N of the link, which
// is what keeps the simulation honest about overlap instead of
// double-counting bandwidth. Small control messages (MsgCost) and the
// virtio path are latency- and CPU-bound, not PCIe-bound, and stay
// contention-free.
package simnet

import (
	"fmt"
	"sync/atomic"

	"snapify/internal/faultinject"
	"snapify/internal/simclock"
)

// NodeID identifies a SCIF node. Node 0 is the host; nodes 1..N are the
// Xeon Phi coprocessors, matching SCIF's numbering in MPSS.
type NodeID int

// HostNode is the SCIF node ID of the host processor.
const HostNode NodeID = 0

// IsHost reports whether n is the host node.
func (n NodeID) IsHost() bool { return n == HostNode }

func (n NodeID) String() string {
	if n.IsHost() {
		return "host"
	}
	return fmt.Sprintf("mic%d", int(n)-1)
}

// link holds the contention and utilization state of one card's PCIe link
// to the root complex.
type link struct {
	flows     atomic.Int64 // currently registered bulk flows
	peakFlows atomic.Int64 // high-water mark of concurrent flows
	transfers atomic.Int64 // RDMA transfers carried
	busy      atomic.Int64 // virtual nanoseconds of RDMA occupancy
}

// LinkStats is a snapshot of one PCIe link's utilization counters.
type LinkStats struct {
	// Flows is the number of bulk flows currently registered on the link.
	Flows int64
	// PeakFlows is the maximum number of concurrently registered flows seen.
	PeakFlows int64
	// Transfers counts RDMA transfers that crossed the link.
	Transfers int64
	// Busy is the cumulative virtual time of RDMA occupancy on the link
	// (transfer durations summed; overlapping transfers each count in full).
	Busy simclock.Duration
}

// Fabric is the PCIe interconnect of one Xeon Phi server.
type Fabric struct {
	model   *simclock.Model
	devices int

	// traffic[i][j] counts bytes moved from node i to node j.
	traffic [][]atomic.Int64

	// links[i] is the PCIe link of card node i (index 0, the host, is
	// unused: the host sits at the root complex and has no single link).
	links []link

	// injector holds the armed fault plan, if any. The fabric is the
	// one object every data-path layer can already reach (scif, the
	// Snapify-IO daemons, the COI runtime), so it doubles as the
	// distribution point for fault injection.
	injector atomic.Pointer[faultinject.Injector]
}

// SetInjector arms a fault injector on the fabric. Passing nil disarms
// it. Layers consult it through Injector at their choke points.
func (f *Fabric) SetInjector(in *faultinject.Injector) { f.injector.Store(in) }

// Injector returns the armed fault injector, or nil when none is set.
// A nil *faultinject.Injector never fires, so callers may consult the
// result unconditionally.
func (f *Fabric) Injector() *faultinject.Injector { return f.injector.Load() }

// NewFabric returns a fabric with the given number of coprocessor devices.
func NewFabric(model *simclock.Model, devices int) *Fabric {
	if devices < 1 {
		panic("simnet: a Xeon Phi server needs at least one coprocessor") //nolint:paniclib // configuration bug: fabric topology is fixed at setup
	}
	n := devices + 1
	tr := make([][]atomic.Int64, n)
	for i := range tr {
		tr[i] = make([]atomic.Int64, n)
	}
	return &Fabric{model: model, devices: devices, traffic: tr, links: make([]link, n)}
}

// Model returns the fabric's cost model.
func (f *Fabric) Model() *simclock.Model { return f.model }

// Devices returns the number of coprocessors.
func (f *Fabric) Devices() int { return f.devices }

// Nodes returns the total number of SCIF nodes (host + devices).
func (f *Fabric) Nodes() int { return f.devices + 1 }

// ValidNode reports whether n names a node of this fabric.
func (f *Fabric) ValidNode(n NodeID) bool { return n >= 0 && int(n) < f.Nodes() }

func (f *Fabric) checkPair(from, to NodeID) {
	if !f.ValidNode(from) || !f.ValidNode(to) {
		panic(fmt.Sprintf("simnet: invalid node pair %d -> %d (fabric has %d nodes)", from, to, f.Nodes())) //nolint:paniclib // caller bug: node ids are minted by this fabric
	}
}

// account records bytes on the from->to link.
func (f *Fabric) account(from, to NodeID, bytes int64) {
	f.traffic[from][to].Add(bytes)
}

// Traffic returns the bytes moved from one node to another so far.
func (f *Fabric) Traffic(from, to NodeID) int64 {
	f.checkPair(from, to)
	return f.traffic[from][to].Load()
}

// linkNodes returns the card nodes whose PCIe links a from->to transfer
// crosses: none for a same-node copy, one for host<->card, both for
// card<->card (staged through the root complex). It returns a fixed
// array plus count — RDMACost runs once per DMA transfer on the
// fleet-scale hot path, so it must not allocate.
func (f *Fabric) linkNodes(from, to NodeID) ([2]NodeID, int) {
	var nodes [2]NodeID
	if from == to {
		return nodes, 0
	}
	n := 0
	if !from.IsHost() {
		nodes[n] = from
		n++
	}
	if !to.IsHost() {
		nodes[n] = to
		n++
	}
	return nodes, n
}

// RegisterFlow declares a long-lived bulk flow between two nodes (an open
// Snapify-IO stream). While registered, every RDMA transfer crossing the
// same link divides the link's per-byte bandwidth with it. The returned
// release function deregisters the flow; it is idempotent.
func (f *Fabric) RegisterFlow(from, to NodeID) func() {
	f.checkPair(from, to)
	nodes, nn := f.linkNodes(from, to)
	for _, n := range nodes[:nn] {
		l := &f.links[n]
		cur := l.flows.Add(1)
		for {
			peak := l.peakFlows.Load()
			if cur <= peak || l.peakFlows.CompareAndSwap(peak, cur) {
				break
			}
		}
	}
	var released atomic.Bool
	return func() {
		if !released.CompareAndSwap(false, true) {
			return
		}
		for _, n := range nodes[:nn] {
			f.links[n].flows.Add(-1)
		}
	}
}

// Flows returns the number of bulk flows currently sharing the from->to
// path (the maximum over the links it crosses, at least 1 — a transfer
// always shares a link with itself).
func (f *Fabric) Flows(from, to NodeID) int64 {
	f.checkPair(from, to)
	nodes, nn := f.linkNodes(from, to)
	return f.shareOn(nodes, nn)
}

// shareOn returns the flow share over the given links (at least 1).
func (f *Fabric) shareOn(nodes [2]NodeID, nn int) int64 {
	share := int64(1)
	for _, n := range nodes[:nn] {
		if c := f.links[n].flows.Load(); c > share {
			share = c
		}
	}
	return share
}

// LinkStats returns the utilization counters of the given card's PCIe
// link.
func (f *Fabric) LinkStats(node NodeID) LinkStats {
	f.checkPair(node, node)
	if node.IsHost() {
		return LinkStats{}
	}
	l := &f.links[node]
	return LinkStats{
		Flows:     l.flows.Load(),
		PeakFlows: l.peakFlows.Load(),
		Transfers: l.transfers.Load(),
		Busy:      simclock.Duration(l.busy.Load()),
	}
}

// RDMACost returns the virtual cost of one RDMA transfer of the given size
// between two nodes and accounts the traffic. Device-to-device transfers
// cross the host root complex, halving effective bandwidth (KNC peer-to-peer
// behaves this way); same-node transfers are local memcpys. The per-byte
// portion is scaled by the number of registered bulk flows sharing the
// busiest link on the path (see RegisterFlow); the fixed setup cost is not —
// descriptor posts do not contend for link bandwidth.
func (f *Fabric) RDMACost(from, to NodeID, bytes int64) simclock.Duration {
	f.checkPair(from, to)
	f.account(from, to, bytes)
	m := f.model
	if from == to {
		if from.IsHost() {
			return m.HostMemcpy(bytes)
		}
		return m.PhiMemcpy(bytes)
	}
	hops := simclock.Duration(1)
	if !from.IsHost() && !to.IsHost() {
		// Peer-to-peer: staged through the root complex.
		hops = 2
	}
	// One path computation serves both the share lookup and the
	// per-link accounting below.
	nodes, nn := f.linkNodes(from, to)
	share := f.shareOn(nodes, nn)
	perByte := m.RDMA(bytes) - m.RDMASetup
	cost := hops * (m.RDMASetup + simclock.Duration(share)*perByte)
	for _, n := range nodes[:nn] {
		l := &f.links[n]
		l.transfers.Add(1)
		l.busy.Add(int64(cost))
	}
	return cost
}

// MsgCost returns the virtual cost of a message-path (scif_send) transfer
// between two nodes and accounts the traffic.
func (f *Fabric) MsgCost(from, to NodeID, bytes int64) simclock.Duration {
	f.checkPair(from, to)
	f.account(from, to, bytes)
	if from == to {
		// Local loopback: one memcpy plus scheduling.
		m := f.model
		if from.IsHost() {
			return m.HostMemcpy(bytes) + m.UnixSocketLatency
		}
		return m.PhiMemcpy(bytes) + m.UnixSocketLatency
	}
	if !from.IsHost() && !to.IsHost() {
		return 2 * f.model.SCIFMsg(bytes)
	}
	return f.model.SCIFMsg(bytes)
}

// VirtioCost returns the virtual cost of moving bytes over the TCP/IP
// virtio interface (the path NFS and scp traffic takes) and accounts it.
func (f *Fabric) VirtioCost(from, to NodeID, bytes int64) simclock.Duration {
	f.checkPair(from, to)
	f.account(from, to, bytes)
	hops := 1
	if !from.IsHost() && !to.IsHost() && from != to {
		hops = 2
	}
	return simclock.Duration(hops) * simclock.Rate(f.model.NFSBandwidth)(bytes)
}
