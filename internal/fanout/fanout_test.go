package fanout

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunExecutesEveryItem(t *testing.T) {
	const items = 100
	var hits [items]atomic.Int32
	if err := Run(7, items, func(i int) error {
		hits[i].Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range hits {
		if got := hits[i].Load(); got != 1 {
			t.Fatalf("item %d ran %d times", i, got)
		}
	}
}

func TestRunBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int32
	var mu sync.Mutex
	if err := Run(workers, 50, func(int) error {
		c := cur.Add(1)
		mu.Lock()
		if c > peak.Load() {
			peak.Store(c)
		}
		mu.Unlock()
		defer cur.Add(-1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("peak concurrency %d exceeds %d workers", p, workers)
	}
}

func TestRunReturnsFirstErrorInItemOrder(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	err := Run(4, 10, func(i int) error {
		switch i {
		case 3:
			return errA
		case 7:
			return errB
		}
		return nil
	})
	if !errors.Is(err, errA) {
		t.Errorf("got %v, want first error in item order (%v)", err, errA)
	}
}

func TestRunDegenerateInputs(t *testing.T) {
	if err := Run(4, 0, func(int) error { t.Fatal("ran"); return nil }); err != nil {
		t.Fatal(err)
	}
	var n atomic.Int32
	if err := Run(0, 5, func(int) error { n.Add(1); return nil }); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 5 {
		t.Errorf("workers=0 ran %d of 5 items", n.Load())
	}
}

// TestRunFaultedWorkerLeaksNoGoroutines pins the cancellation story the
// chaos tier leans on: when items error (an injected fault killed a
// stream), Run still joins every worker — no goroutine may outlive the
// call, or retried captures would pile up leaked workers.
func TestRunFaultedWorkerLeaksNoGoroutines(t *testing.T) {
	base := runtime.NumGoroutine()
	fault := errors.New("injected")
	for round := 0; round < 20; round++ {
		err := Run(8, 64, func(i int) error {
			if i%3 == 0 {
				return fault
			}
			runtime.Gosched()
			return nil
		})
		if !errors.Is(err, fault) {
			t.Fatalf("round %d: got %v, want %v", round, err, fault)
		}
	}
	// Run waits on its WaitGroup, so the pool must already be gone; give
	// the runtime a moment only for unrelated scheduler noise to settle.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d running, baseline %d", runtime.NumGoroutine(), base)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRunPanicInWorkerDoesNotHangSiblings documents that a panicking fn
// propagates (it is a bug, not a fault) rather than deadlocking Run.
func TestRunPanicInWorkerDoesNotHangSiblings(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("panic in fn must propagate to the caller")
		}
	}()
	Run(1, 1, func(int) error { panic("boom") }) //nolint:errcheck // the panic is the point
}
