package coi

import (
	"encoding/binary"
	"fmt"
	"sync"

	"snapify/internal/blob"
	"snapify/internal/proc"
	"snapify/internal/scif"
	"snapify/internal/simclock"
	"snapify/internal/simnet"
	"snapify/internal/snapifyio"
	"snapify/internal/stream"
)

// Control-region layout. The server thread records the active offload
// function here *before* executing it and clears it (under the result-send
// lock) after the return value has been sent, so every snapshot knows
// whether an offload region was in flight and can re-enter it after a
// restore.
const (
	ctrlRegionName = "coi_ctrl"
	ctrlRegionSize = 4096
)

// BufferRegionName returns the region name backing COI buffer id.
func BufferRegionName(id int) string { return fmt.Sprintf("coibuf_%d", id) }

// runtimeHeapSize is the offload process's own runtime footprint (loader,
// COI device library, thread stacks).
const runtimeHeapSize = 32 * simclock.MiB

// OffloadProc is the device-side runtime of one offload process: the
// process itself plus the COI machinery inside it (server threads, control
// region, registered buffers).
type OffloadProc struct {
	d   *Daemon
	p   *proc.Process
	bin *Binary
	id  int

	ready     sync.WaitGroup // channel accepts outstanding
	mu        sync.Mutex
	pipeCond  *sync.Cond // signals pipeline registration (see awaitPipeline)
	closed    bool
	cmdEPs    map[string]*scif.Endpoint
	dmaEP     *scif.Endpoint
	pipelines map[uint32]*devicePipeline
	buffers   map[int]*deviceBuffer
	ports     []ChannelPort
	listeners []*scif.Listener

	// resultMu is the device side of the case-4 critical region: the
	// result send and the control-region clear happen atomically under it,
	// so a pause observes either "function active" or "result delivered",
	// never a half state.
	resultMu sync.Mutex

	// pipe connects to the daemon during Snapify operations (created by
	// the pause protocol, Section 4.1).
	pipe *proc.PipeEnd

	// Pre-copy round state (live migration): the chunk digests of the
	// previous round's materialized image. The next round diffs its own
	// digests against these to size the dirty set — both for the
	// shipped delta and for the dirty-bit-assisted rescan cost. Cleared
	// on round 1, on resume, and when the final capture consumes it.
	precopyDigests []string
	precopyChunk   int64
}

type ChannelPort struct {
	name string
	port int
}

type devicePipeline struct {
	id uint32
	ep *scif.Endpoint
}

type deviceBuffer struct {
	id     int
	size   int64
	window *scif.Window
}

// newOffloadProc launches the offload process for bin on the daemon's card
// and starts its runtime threads. binSize is the device binary's size (the
// host copies it to the card before launch).
func newOffloadProc(d *Daemon, bin *Binary, id int, binSize int64) (*OffloadProc, error) {
	p := d.plat.Procs.Spawn(fmt.Sprintf("offload_proc[%s:%d]", bin.Name, id), d.dev.Node, d.dev.Mem)

	op := &OffloadProc{
		d:         d,
		p:         p,
		bin:       bin,
		id:        id,
		cmdEPs:    make(map[string]*scif.Endpoint),
		pipelines: make(map[uint32]*devicePipeline),
		buffers:   make(map[int]*deviceBuffer),
	}
	op.pipeCond = sync.NewCond(&op.mu)
	fail := func(err error) (*OffloadProc, error) {
		p.Terminate()
		return nil, err
	}

	// The dynamically loaded device binary occupies card memory; so do the
	// runtime heap and the control region.
	if _, err := p.AddRegion("binary", proc.RegionData, binSize, seedFor(bin.Name, id, "binary")); err != nil {
		return fail(fmt.Errorf("coi: loading binary: %w", err))
	}
	if _, err := p.AddRegion("runtime_heap", proc.RegionHeap, runtimeHeapSize, seedFor(bin.Name, id, "heap")); err != nil {
		return fail(fmt.Errorf("coi: runtime heap: %w", err))
	}
	if _, err := p.AddRegion(ctrlRegionName, proc.RegionData, ctrlRegionSize, 0); err != nil {
		return fail(fmt.Errorf("coi: control region: %w", err))
	}
	for _, rs := range bin.Regions {
		if _, err := p.AddRegion(rs.Name, rs.Kind, rs.Size, rs.Seed); err != nil {
			return fail(fmt.Errorf("coi: binary region %q: %w", rs.Name, err))
		}
	}

	if err := op.listenChannels(); err != nil {
		return fail(err)
	}
	op.installSnapifyHandler()
	return op, nil
}

// seedFor derives a deterministic background seed from a region identity,
// so a restored process recreates regions with matching backgrounds and
// untouched memory never materializes.
func seedFor(parts ...any) uint64 {
	h := uint64(1469598103934665603) // FNV-1a offset basis
	for _, p := range parts {
		for _, b := range []byte(fmt.Sprint(p)) {
			h ^= uint64(b)
			h *= 1099511628211
		}
		h ^= 0xFF
		h *= 1099511628211
	}
	if h == 0 {
		h = 1
	}
	return h
}

// listenChannels opens the command channels and the DMA channel and starts
// their server threads.
func (op *OffloadProc) listenChannels() error {
	for _, name := range CommandChannelNames {
		name := name
		if err := op.listenOne(name, func(ep *scif.Endpoint) {
			op.mu.Lock()
			op.cmdEPs[name] = ep
			op.mu.Unlock()
			op.p.SpawnThread("server_"+name, func() { //nolint:errcheck // the process died mid-setup; the pending Accept fails and tears the channel down
				serveCommandChannel(ep, func(req []byte) []byte { return op.handleCommand(name, req) })
			})
		}); err != nil {
			return err
		}
	}
	// The DMA channel is passive on the device side: the host drives RDMA
	// against windows registered here.
	if err := op.listenOne("dma", func(ep *scif.Endpoint) {
		op.mu.Lock()
		op.dmaEP = ep
		op.mu.Unlock()
	}); err != nil {
		return err
	}
	return nil
}

// listenOne binds an ephemeral port for one channel and installs the
// endpoint via set when the host connects.
func (op *OffloadProc) listenOne(name string, set func(*scif.Endpoint)) error {
	lst, err := op.d.plat.Net.Listen(op.d.dev.Node, 0)
	if err != nil {
		return fmt.Errorf("coi: listening for %s channel: %w", name, err)
	}
	op.mu.Lock()
	op.ports = append(op.ports, ChannelPort{name, lst.Addr().Port})
	op.listeners = append(op.listeners, lst)
	op.mu.Unlock()
	op.ready.Add(1)
	go func() {
		defer op.ready.Done()
		ep, err := lst.Accept()
		lst.Close() //nolint:errcheck // single-use listener: the one Accept already returned
		if err != nil {
			return
		}
		set(ep)
	}()
	return nil
}

// AwaitChannels blocks until every channel the host dialed has been
// accepted and installed, making launch/rebind deterministic.
func (op *OffloadProc) AwaitChannels() { op.ready.Wait() }

// ChannelPorts returns the (name, port) pairs the host must connect to.
func (op *OffloadProc) ChannelPorts() []ChannelPort {
	op.mu.Lock()
	defer op.mu.Unlock()
	out := make([]ChannelPort, len(op.ports))
	copy(out, op.ports)
	return out
}

// handleCommand serves one request on a command channel. The command
// channel carries buffer management; event and log channels answer pings
// (their traffic exists so the drain protocol has real channels to prove
// empty).
func (op *OffloadProc) handleCommand(channel string, req []byte) []byte {
	if len(req) == 0 {
		return []byte{1}
	}
	switch req[0] {
	case cmdPing:
		return []byte{0}
	case cmdBufferCreate:
		// id u32 | size u64
		id := int(u32(req[1:]))
		size := int64(binary.BigEndian.Uint64(req[5:]))
		off, err := op.createBuffer(id, size)
		if err != nil {
			return append([]byte{1}, []byte(err.Error())...)
		}
		return append([]byte{0}, binary.BigEndian.AppendUint64(nil, uint64(off))...)
	case cmdBufferDestroy:
		id := int(u32(req[1:]))
		if err := op.destroyBuffer(id); err != nil {
			return append([]byte{1}, []byte(err.Error())...)
		}
		return []byte{0}
	case cmdPipelineCreate:
		id := u32(req[1:])
		port, err := op.createPipeline(id)
		if err != nil {
			return append([]byte{1}, []byte(err.Error())...)
		}
		return append([]byte{0}, putU32(uint32(port))...)
	case cmdBufferReregister:
		id := int(u32(req[1:]))
		off, err := op.reregisterBuffer(id)
		if err != nil {
			return append([]byte{1}, []byte(err.Error())...)
		}
		return append([]byte{0}, binary.BigEndian.AppendUint64(nil, uint64(off))...)
	default:
		return []byte{1}
	}
}

// Command-channel request opcodes.
const (
	cmdPing uint8 = iota + 10
	cmdBufferCreate
	cmdBufferDestroy
	cmdPipelineCreate
)

// createBuffer allocates the local-store region backing a COI buffer and
// registers it for RDMA on the DMA channel.
func (op *OffloadProc) createBuffer(id int, size int64) (int64, error) {
	name := BufferRegionName(id)
	r, err := op.p.AddRegion(name, proc.RegionLocalStore, size, seedFor(op.bin.Name, op.id, name))
	if err != nil {
		return 0, err
	}
	r.Pin() // COI buffers are pinned for RDMA (Section 1)
	op.mu.Lock()
	dma := op.dmaEP
	op.mu.Unlock()
	if dma == nil {
		op.p.RemoveRegion(name) //nolint:errcheck // unwinding a failed buffer create; the region was just added
		return 0, fmt.Errorf("coi: DMA channel not connected")
	}
	w, _, err := dma.Register(r, 0, size)
	if err != nil {
		op.p.RemoveRegion(name) //nolint:errcheck // unwinding a failed DMA registration; the region was just added
		return 0, err
	}
	op.mu.Lock()
	op.buffers[id] = &deviceBuffer{id: id, size: size, window: w}
	op.mu.Unlock()
	return w.Offset, nil
}

func (op *OffloadProc) destroyBuffer(id int) error {
	op.mu.Lock()
	b, ok := op.buffers[id]
	if ok {
		delete(op.buffers, id)
	}
	dma := op.dmaEP
	op.mu.Unlock()
	if !ok {
		return fmt.Errorf("coi: no buffer %d", id)
	}
	if dma != nil {
		dma.Unregister(b.window) //nolint:errcheck // unregistering a vanished window is a no-op on the simulated fabric
	}
	return op.p.RemoveRegion(BufferRegionName(id))
}

// createPipeline opens the run-function channel for pipeline id and starts
// its server thread (Pipe_Thread2 in Fig 4).
func (op *OffloadProc) createPipeline(id uint32) (int, error) {
	lst, err := op.d.plat.Net.Listen(op.d.dev.Node, 0)
	if err != nil {
		return 0, err
	}
	go func() { //nolint:goroutineleak // exits when its one Accept returns; teardown closes lst, which fails the Accept
		ep, err := lst.Accept()
		lst.Close() //nolint:errcheck // single-use listener: the one Accept already returned
		if err != nil {
			return
		}
		op.mu.Lock()
		op.pipelines[id] = &devicePipeline{id: id, ep: ep}
		op.pipeCond.Broadcast()
		op.mu.Unlock()
		op.p.SpawnThread(fmt.Sprintf("pipe_thread2_%d", id), func() { //nolint:errcheck // the process died mid-setup; the connected peer sees the endpoint close
			op.servePipeline(id, ep)
		})
	}()
	return lst.Addr().Port, nil
}

// awaitPipeline blocks until pipeline id is registered (the host may still
// be reconnecting it after a restore) or the process is torn down; it
// returns nil in the latter case.
func (op *OffloadProc) awaitPipeline(id uint32) *devicePipeline {
	op.mu.Lock()
	defer op.mu.Unlock()
	for op.pipelines[id] == nil && !op.closed {
		op.pipeCond.Wait()
	}
	return op.pipelines[id]
}

// teardown terminates the offload process and its connections.
func (op *OffloadProc) teardown() {
	op.mu.Lock()
	op.closed = true
	if op.pipeCond != nil {
		op.pipeCond.Broadcast()
	}
	eps := make([]*scif.Endpoint, 0, 8)
	for _, ep := range op.cmdEPs {
		eps = append(eps, ep)
	}
	if op.dmaEP != nil {
		eps = append(eps, op.dmaEP)
	}
	for _, pl := range op.pipelines {
		eps = append(eps, pl.ep)
	}
	pipe := op.pipe
	op.mu.Unlock()
	for _, ep := range eps {
		ep.Close() //nolint:errcheck // teardown fan-out: each close only unblocks the host-side peer
	}
	if pipe != nil {
		pipe.Close() //nolint:errcheck // teardown: the agent thread exits on the resulting Recv error
	}
	op.p.Terminate()
}

// Proc returns the underlying process.
func (op *OffloadProc) Proc() *proc.Process { return op.p }

// ID returns the daemon-assigned process id.
func (op *OffloadProc) ID() int { return op.id }

// LocalStoreBytes returns the total size of the process's local-store
// regions (what pause must save).
func (op *OffloadProc) LocalStoreBytes() int64 {
	var n int64
	for _, r := range op.p.Regions() {
		if r.Kind() == proc.RegionLocalStore {
			n += r.Size()
		}
	}
	return n
}

// Endpoints returns every SCIF endpoint of the offload process, for drain
// assertions.
func (op *OffloadProc) Endpoints() []*scif.Endpoint {
	op.mu.Lock()
	defer op.mu.Unlock()
	var out []*scif.Endpoint
	for _, ep := range op.cmdEPs {
		out = append(out, ep)
	}
	if op.dmaEP != nil {
		out = append(out, op.dmaEP)
	}
	for _, pl := range op.pipelines {
		out = append(out, pl.ep)
	}
	return out
}

// --- control region bookkeeping ---

// ctrlState is the decoded control region.
type ctrlState struct {
	Active     bool
	PipelineID uint32
	Seq        uint64
	Func       string
	Args       []byte
}

func (op *OffloadProc) writeCtrl(st ctrlState) {
	r := op.p.Region(ctrlRegionName)
	buf := make([]byte, 0, 64+len(st.Func)+len(st.Args))
	if st.Active {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.BigEndian.AppendUint32(buf, st.PipelineID)
	buf = binary.BigEndian.AppendUint64(buf, st.Seq)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(st.Func)))
	buf = append(buf, st.Func...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(st.Args)))
	buf = append(buf, st.Args...)
	if len(buf) > ctrlRegionSize {
		panic(fmt.Sprintf("coi: control record %d bytes exceeds control region", len(buf))) //nolint:paniclib // protocol invariant: the control region is sized for the largest record (args are capped at launch)
	}
	r.WriteAt(buf, 0)
}

func (op *OffloadProc) readCtrl() ctrlState {
	r := op.p.Region(ctrlRegionName)
	head := make([]byte, 17)
	r.ReadAt(head, 0)
	st := ctrlState{
		Active:     head[0] == 1,
		PipelineID: binary.BigEndian.Uint32(head[1:5]),
		Seq:        binary.BigEndian.Uint64(head[5:13]),
	}
	nameLen := binary.BigEndian.Uint32(head[13:17])
	name := make([]byte, nameLen)
	r.ReadAt(name, 17)
	st.Func = string(name)
	lenBuf := make([]byte, 4)
	r.ReadAt(lenBuf, 17+int64(nameLen))
	argsLen := binary.BigEndian.Uint32(lenBuf)
	args := make([]byte, argsLen)
	r.ReadAt(args, 21+int64(nameLen))
	st.Args = args
	return st
}

// SaveLocalStore streams every local-store region to files under dir on
// targetNode via Snapify-IO (the pause phase of Section 4.1; for process
// migration the target is the destination card). It returns the virtual
// time and the bytes moved.
func (op *OffloadProc) SaveLocalStore(targetNode simnet.NodeID, dir string) (simclock.Duration, int64, error) {
	acc := simclock.NewPipelineAccum()
	var total int64
	for _, r := range op.p.Regions() {
		if r.Kind() != proc.RegionLocalStore {
			continue
		}
		f, err := op.d.plat.IO.Open(op.d.dev.Node, targetNode, dir+"/localstore_"+r.Name(), snapifyio.Write)
		if err != nil {
			return 0, 0, err
		}
		snap := r.Snapshot()
		err = snap.ForEachChunk(4*simclock.MiB, func(chunk blob.Blob) error {
			cost, err := f.WriteBlob(chunk)
			if err != nil {
				return err
			}
			stream.Observe(acc, cost, op.d.plat.Model().PhiPageWalk(chunk.Len()))
			return nil
		})
		if err != nil {
			f.Abort()
			return 0, 0, err
		}
		if err := f.Close(); err != nil {
			return 0, 0, err
		}
		total += snap.Len()
	}
	return acc.Total(), total, nil
}
