package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MutexBlock reports channel operations and SCIF calls performed while a
// sync.Mutex or sync.RWMutex is held in the same function body. The
// pause/drain protocol is a lock-step conversation between three parties
// (host process, COI daemon, offload agent, Fig 3); a handler that blocks
// on a channel or a SCIF endpoint while holding one of the daemon's locks
// stalls every other request on that lock — the classic way the drain
// deadlocks. The analysis is a straight-line approximation: it tracks
// Lock/Unlock pairs lexically within one function (branches are explored
// with a copy of the held set, nested function literals start clean) and
// does not model aliasing or cross-iteration state.
var MutexBlock = &Analyzer{
	Name: "mutexblock",
	Doc:  "no channel send/receive/select or SCIF call while holding a mutex within one function body",
	Run:  runMutexBlock,
}

func runMutexBlock(p *Pass) {
	inspectFiles(p, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				mb := &mutexWalker{pass: p}
				mb.walkStmts(fn.Body.List, map[string]token.Pos{})
			}
		case *ast.FuncLit:
			mb := &mutexWalker{pass: p}
			mb.walkStmts(fn.Body.List, map[string]token.Pos{})
		}
		// Keep descending: FuncLits nested inside a FuncDecl are found by
		// this same Inspect and analyzed with their own (empty) held set;
		// walkStmts itself never enters a FuncLit body.
		return true
	})
}

// scifBlocking is the subset of the SCIF API that can wait on a remote
// peer (a message, an accept, a connection, an RDMA completion).
// Accessors, non-blocking probes (TryRecv), and local teardown (Close,
// Listen) only take short internal locks and are not flagged.
var scifBlocking = map[string]bool{
	"Send":      true,
	"Recv":      true,
	"Accept":    true,
	"Connect":   true,
	"Register":  true,
	"ReadFrom":  true,
	"WriteTo":   true,
	"VReadFrom": true,
	"VWriteTo":  true,
}

type mutexWalker struct {
	pass *Pass
}

// walkStmts walks one statement sequence in source order, mutating held
// (mutex expression → Lock position) as Lock/Unlock calls go by.
func (w *mutexWalker) walkStmts(list []ast.Stmt, held map[string]token.Pos) {
	for _, s := range list {
		w.walkStmt(s, held)
	}
}

func clone(held map[string]token.Pos) map[string]token.Pos {
	c := make(map[string]token.Pos, len(held))
	for k, v := range held {
		c[k] = v
	}
	return c
}

func (w *mutexWalker) walkStmt(s ast.Stmt, held map[string]token.Pos) {
	switch stmt := s.(type) {
	case *ast.ExprStmt:
		if key, op, ok := w.mutexOp(stmt.X); ok {
			switch op {
			case "Lock", "RLock":
				held[key] = stmt.Pos()
			case "Unlock", "RUnlock":
				delete(held, key)
			}
			return
		}
		w.scanExpr(stmt.X, held)
	case *ast.SendStmt:
		w.blocked(stmt.Pos(), "channel send", held)
		w.scanExpr(stmt.Value, held)
	case *ast.DeferStmt:
		// `defer mu.Unlock()` keeps the mutex held for the rest of the
		// body — exactly the span this analyzer patrols — so it is not an
		// unlock event. Other deferred work runs after the walk's scope.
		if _, _, ok := w.mutexOp(stmt.Call); !ok {
			for _, a := range stmt.Call.Args {
				w.scanExpr(a, held)
			}
		}
	case *ast.GoStmt:
		for _, a := range stmt.Call.Args {
			w.scanExpr(a, held)
		}
	case *ast.AssignStmt:
		for _, e := range stmt.Rhs {
			w.scanExpr(e, held)
		}
		for _, e := range stmt.Lhs {
			w.scanExpr(e, held)
		}
	case *ast.DeclStmt, *ast.ReturnStmt, *ast.IncDecStmt:
		ast.Inspect(s, w.exprInspector(held))
	case *ast.BlockStmt:
		w.walkStmts(stmt.List, held)
	case *ast.IfStmt:
		if stmt.Init != nil {
			w.walkStmt(stmt.Init, held)
		}
		w.scanExpr(stmt.Cond, held)
		w.walkStmts(stmt.Body.List, clone(held))
		if stmt.Else != nil {
			w.walkStmt(stmt.Else, clone(held))
		}
	case *ast.ForStmt:
		if stmt.Init != nil {
			w.walkStmt(stmt.Init, held)
		}
		if stmt.Cond != nil {
			w.scanExpr(stmt.Cond, held)
		}
		body := clone(held)
		w.walkStmts(stmt.Body.List, body)
		if stmt.Post != nil {
			w.walkStmt(stmt.Post, body)
		}
	case *ast.RangeStmt:
		if tv, ok := w.pass.Pkg.Info.Types[stmt.X]; ok && isChanType(tv.Type) {
			w.blocked(stmt.Pos(), "range over channel", held)
		}
		w.scanExpr(stmt.X, held)
		w.walkStmts(stmt.Body.List, clone(held))
	case *ast.SwitchStmt:
		if stmt.Init != nil {
			w.walkStmt(stmt.Init, held)
		}
		if stmt.Tag != nil {
			w.scanExpr(stmt.Tag, held)
		}
		for _, c := range stmt.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body, clone(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range stmt.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body, clone(held))
			}
		}
	case *ast.SelectStmt:
		w.blocked(stmt.Pos(), "select", held)
		for _, c := range stmt.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.walkStmts(cc.Body, clone(held))
			}
		}
	case *ast.LabeledStmt:
		w.walkStmt(stmt.Stmt, held)
	}
}

// scanExpr looks inside one expression for blocking operations: channel
// receives and calls into the SCIF layer. Function literals are skipped —
// they run later, under their own (empty) held set.
func (w *mutexWalker) scanExpr(e ast.Expr, held map[string]token.Pos) {
	if e == nil {
		return
	}
	ast.Inspect(e, w.exprInspector(held))
}

func (w *mutexWalker) exprInspector(held map[string]token.Pos) func(ast.Node) bool {
	return func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if e.Op == token.ARROW {
				w.blocked(e.Pos(), "channel receive", held)
			}
		case *ast.CallExpr:
			if f := calleeFunc(w.pass.Pkg.Info, e); f != nil && f.Pkg() != nil &&
				strings.HasSuffix(f.Pkg().Path(), "internal/scif") && scifBlocking[f.Name()] {
				w.blocked(e.Pos(), "SCIF call "+funcDisplayName(f), held)
			}
		}
		return true
	}
}

// blocked reports pos as a blocking operation if any mutex is held.
func (w *mutexWalker) blocked(pos token.Pos, what string, held map[string]token.Pos) {
	for key, at := range held {
		w.pass.Reportf(pos, "%s while holding %s (locked at line %d): blocking under a mutex can deadlock the pause/drain protocol",
			what, key, w.pass.Pkg.Fset.Position(at).Line)
	}
}

// mutexOp classifies e as a Lock/RLock/Unlock/RUnlock call on a
// sync.Mutex or sync.RWMutex, returning the receiver's printed form as
// the tracking key.
func (w *mutexWalker) mutexOp(e ast.Expr) (key, op string, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	f, isFunc := w.pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !isFunc || f.Pkg() == nil || f.Pkg().Path() != "sync" {
		return "", "", false
	}
	switch f.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return types.ExprString(sel.X), f.Name(), true
	}
	return "", "", false
}
