package proc

import (
	"errors"
	"sync"

	"snapify/internal/simclock"
)

// ErrPipeClosed is returned on operations against a closed pipe.
var ErrPipeClosed = errors.New("proc: pipe closed")

// PipeEnd is one end of a bidirectional UNIX-pipe-style channel. The COI
// daemon opens one to each offload process during pause (Section 4.1) and
// the snapify command-line utility submits commands to a host process over
// one (Section 5). Messages are ordered; delivery costs the model's pipe
// latency, charged to the returned duration.
type PipeEnd struct {
	model *simclock.Model
	peer  *PipeEnd

	mu     sync.Mutex
	cond   *sync.Cond
	queue  [][]byte
	closed bool
}

// NewPipe returns the two connected ends of a pipe.
func NewPipe(model *simclock.Model) (*PipeEnd, *PipeEnd) {
	a := &PipeEnd{model: model}
	b := &PipeEnd{model: model}
	a.cond = sync.NewCond(&a.mu)
	b.cond = sync.NewCond(&b.mu)
	a.peer, b.peer = b, a
	return a, b
}

// Send writes msg to the peer end and returns the virtual cost.
func (p *PipeEnd) Send(msg []byte) (simclock.Duration, error) {
	cp := make([]byte, len(msg))
	copy(cp, msg)
	peer := p.peer
	peer.mu.Lock()
	if peer.closed {
		peer.mu.Unlock()
		return 0, ErrPipeClosed
	}
	peer.queue = append(peer.queue, cp)
	peer.cond.Signal()
	peer.mu.Unlock()
	return p.model.PipeLatency, nil
}

// Recv blocks until a message arrives.
func (p *PipeEnd) Recv() ([]byte, simclock.Duration, error) {
	p.mu.Lock()
	for len(p.queue) == 0 && !p.closed {
		p.cond.Wait()
	}
	if len(p.queue) == 0 {
		p.mu.Unlock()
		return nil, 0, ErrPipeClosed
	}
	msg := p.queue[0]
	p.queue = p.queue[1:]
	p.mu.Unlock()
	return msg, p.model.PipeLatency, nil
}

// TryRecv returns a pending message without blocking. The COI daemon's
// Snapify monitor thread polls pipes with it.
func (p *PipeEnd) TryRecv() (msg []byte, d simclock.Duration, ok bool, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.queue) == 0 {
		if p.closed {
			return nil, 0, false, ErrPipeClosed
		}
		return nil, 0, false, nil
	}
	msg = p.queue[0]
	p.queue = p.queue[1:]
	return msg, p.model.PipeLatency, true, nil
}

// Close shuts down both ends; blocked receivers drain queued messages and
// then fail with ErrPipeClosed.
func (p *PipeEnd) Close() error {
	p.closeOne()
	if p.peer != nil {
		p.peer.closeOne()
	}
	return nil
}

func (p *PipeEnd) closeOne() {
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
}
