package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"snapify/internal/lint"
)

// SARIF 2.1.0 output: the minimal subset of the OASIS schema that GitHub
// code scanning and SARIF-aware editors consume. Only fields we fill are
// declared; encoding/json leaves the rest out entirely, which the schema
// permits (almost everything in SARIF is optional).

const (
	sarifSchema  = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
	sarifVersion = "2.1.0"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// buildSARIF converts findings (with module-root-relative slash paths
// already applied) into a SARIF log. The rules table lists only the
// analyzers that actually fired, in name order, so the log is stable.
func buildSARIF(findings []lint.Finding) sarifLog {
	docs := make(map[string]string)
	for _, a := range lint.All() {
		docs[a.Name] = a.Doc
	}
	fired := make(map[string]bool)
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		fired[f.Analyzer] = true
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "warning",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: f.File},
					Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Col},
				},
			}},
		})
	}
	rules := make([]sarifRule, 0, len(fired))
	for name := range fired {
		rules = append(rules, sarifRule{
			ID:               name,
			ShortDescription: sarifMessage{Text: docs[name]},
		})
	}
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID })
	return sarifLog{
		Schema:  sarifSchema,
		Version: sarifVersion,
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "snapifylint", Rules: rules}},
			Results: results,
		}},
	}
}

// writeSARIFFile writes the findings as an indented SARIF 2.1.0 log.
func writeSARIFFile(path string, findings []lint.Finding) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("sarif: %w", err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(buildSARIF(findings)); err != nil {
		f.Close()
		return fmt.Errorf("sarif: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("sarif: %w", err)
	}
	return nil
}
