package experiments

import (
	"encoding/json"
	"strings"
	"testing"

	"snapify/internal/simclock"
)

// TestFederationBenchSmoke runs the federation benchmark at a tiny
// image size and holds it to its own acceptance shape: >= 2x cross-host
// dedup on warm legs, byte-identical restart-from-replica after a host
// kill, a repaired replica set, and clean stores.
func TestFederationBenchSmoke(t *testing.T) {
	res, err := FederationBench(32*simclock.MiB, FederationHosts, FederationLegs)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.CheckShape(); err != nil {
		t.Fatal(err)
	}
	if res.CrossHostDedupX < 2 {
		t.Errorf("cross-host dedup %.2fx, want >= 2", res.CrossHostDedupX)
	}
	out, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var round FederationResult
	if err := json.Unmarshal(out, &round); err != nil {
		t.Fatalf("result JSON does not round-trip: %v", err)
	}
	if round.Benchmark != "federation" {
		t.Errorf("benchmark field %q", round.Benchmark)
	}
	if !strings.Contains(res.Render(), "cross-host dedup") {
		t.Error("render misses the headline number")
	}
}

// TestFederationBenchRejectsBadShape covers the parameter guards.
func TestFederationBenchRejectsBadShape(t *testing.T) {
	if _, err := FederationBench(32*simclock.MiB, 2, 4); err == nil {
		t.Error("2 hosts must be rejected (no repair target)")
	}
	if _, err := FederationBench(32*simclock.MiB, 3, 1); err == nil {
		t.Error("1 leg must be rejected (no warm measurement)")
	}
}
