// Package hostfs models the host's file system: effectively unlimited
// capacity backed by secondary storage, fronted by the page cache.
//
// Two timing behaviours matter to the paper. Writes land in the page cache
// and are flushed to disk asynchronously — so a snapshot streaming from the
// coprocessor overlaps its disk writeback with the PCIe transfer, which is
// why Snapify-IO writes (device to host) outrun reads (Section 7). Reads of
// recently written files come from the cache; cold files pay the disk rate.
package hostfs

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"snapify/internal/blob"
	"snapify/internal/simclock"
)

// ErrNotExist is returned for operations on missing files.
var ErrNotExist = errors.New("hostfs: file does not exist")

type file struct {
	content blob.Blob
	cold    bool // evicted from the page cache
}

// FS is the host file system.
type FS struct {
	model *simclock.Model

	mu    sync.Mutex
	files map[string]*file
}

// New returns an empty host file system.
func New(model *simclock.Model) *FS {
	return &FS{model: model, files: make(map[string]*file)}
}

// WriteFile atomically stores content at path and returns the virtual time
// until the write is durable in the page cache (not the async flush).
func (fs *FS) WriteFile(path string, content blob.Blob) (simclock.Duration, error) {
	w, err := fs.Create(path)
	if err != nil {
		return 0, err
	}
	d, err := w.WriteBlob(content)
	if err != nil {
		w.Abort()
		return d, err
	}
	return d + fs.model.HostFSOpLatency, w.Close()
}

// ReadFile returns the content at path and the virtual read time.
func (fs *FS) ReadFile(path string) (blob.Blob, simclock.Duration, error) {
	fs.mu.Lock()
	f, ok := fs.files[path]
	fs.mu.Unlock()
	if !ok {
		return blob.Blob{}, 0, fmt.Errorf("%w: %s", ErrNotExist, path)
	}
	bw := fs.model.HostFSReadCachedBandwidth
	if f.cold {
		bw = fs.model.HostFSReadColdBandwidth
	}
	return f.content, fs.model.HostFSOpLatency + simclock.Rate(bw)(f.content.Len()), nil
}

// Remove deletes the file at path.
func (fs *FS) Remove(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[path]; !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, path)
	}
	delete(fs.files, path)
	return nil
}

// RemoveAll deletes every file whose path has the given prefix and returns
// the number removed.
func (fs *FS) RemoveAll(prefix string) int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var victims []string
	for p := range fs.files {
		if strings.HasPrefix(p, prefix) {
			victims = append(victims, p)
		}
	}
	for _, p := range victims {
		delete(fs.files, p)
	}
	return len(victims)
}

// Exists reports whether path holds a file.
func (fs *FS) Exists(path string) bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	_, ok := fs.files[path]
	return ok
}

// Size returns the size of the file at path.
func (fs *FS) Size(path string) (int64, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[path]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotExist, path)
	}
	return f.content.Len(), nil
}

// List returns the paths with the given prefix, sorted.
func (fs *FS) List(prefix string) []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var out []string
	for p := range fs.files {
		if strings.HasPrefix(p, prefix) {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// EvictAll marks every file cold, as if the page cache were dropped.
// Experiments use it to measure cold-restart behaviour.
func (fs *FS) EvictAll() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for _, f := range fs.files {
		f.cold = true
	}
}

// FlushCost returns the virtual time of flushing the file at path to
// secondary storage. The flush runs asynchronously to foreground writes;
// callers that need durable-on-disk semantics add this cost explicitly.
func (fs *FS) FlushCost(path string) (simclock.Duration, error) {
	fs.mu.Lock()
	f, ok := fs.files[path]
	fs.mu.Unlock()
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotExist, path)
	}
	return simclock.Rate(fs.model.HostFSFlushBandwidth)(f.content.Len()), nil
}

// Writer streams a file into the FS.
type Writer struct {
	fs    *FS
	path  string
	parts []blob.Blob
	done  bool
}

// Create opens a streaming writer for path; the file becomes visible at
// Close.
func (fs *FS) Create(path string) (*Writer, error) {
	if path == "" {
		return nil, errors.New("hostfs: empty path")
	}
	return &Writer{fs: fs, path: path}, nil
}

// WriteBlob appends content, returning the virtual page-cache write time.
func (w *Writer) WriteBlob(content blob.Blob) (simclock.Duration, error) {
	if w.done {
		return 0, errors.New("hostfs: write on closed writer")
	}
	w.parts = append(w.parts, content)
	return simclock.Rate(w.fs.model.HostFSWriteBandwidth)(content.Len()), nil
}

// Close makes the file visible.
func (w *Writer) Close() error {
	if w.done {
		return nil
	}
	w.done = true
	w.fs.mu.Lock()
	w.fs.files[w.path] = &file{content: blob.Concat(w.parts...)}
	w.fs.mu.Unlock()
	return nil
}

// Abort discards the partial file.
func (w *Writer) Abort() { w.done = true }

// SparseWriter fills disjoint ranges of a fixed-size file; parallel
// Snapify-IO streams striping one snapshot each write their own ranges.
// WriteBlobAt is safe for concurrent use.
type SparseWriter struct {
	fs   *FS
	path string
	size int64

	mu      sync.Mutex
	content blob.Blob
	done    bool
}

// PartialSuffix marks an in-progress sparse assembly on the file
// system: CreateSparse registers "<path>.partial" so a crashed or
// abandoned assembly is observable (and must be cleaned up), exactly
// like the temp file a real striped writer would leave behind. Commit
// and Abort both remove it.
const PartialSuffix = ".partial"

// CreateSparse opens a positioned writer over a file of exactly size
// bytes, initially zero; the file becomes visible at Commit. While the
// writer is open, "<path>.partial" is visible in its place.
func (fs *FS) CreateSparse(path string, size int64) (*SparseWriter, error) {
	if path == "" {
		return nil, errors.New("hostfs: empty path")
	}
	if size < 0 {
		return nil, fmt.Errorf("hostfs: negative sparse size %d", size)
	}
	fs.mu.Lock()
	fs.files[path+PartialSuffix] = &file{content: blob.Zeros(0)}
	fs.mu.Unlock()
	return &SparseWriter{fs: fs, path: path, size: size, content: blob.Zeros(size)}, nil
}

// WriteBlobAt writes content at the given offset, returning the virtual
// page-cache write time.
func (w *SparseWriter) WriteBlobAt(off int64, content blob.Blob) (simclock.Duration, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.done {
		return 0, errors.New("hostfs: write on closed sparse writer")
	}
	if off < 0 || off+content.Len() > w.size {
		return 0, fmt.Errorf("hostfs: sparse write [%d,%d) outside file of %d bytes", off, off+content.Len(), w.size)
	}
	w.content = blob.Splice(w.content, off, content)
	return simclock.Rate(w.fs.model.HostFSWriteBandwidth)(content.Len()), nil
}

// Commit makes the file visible. The per-range write costs were already
// charged by WriteBlobAt; committing is a metadata operation.
func (w *SparseWriter) Commit() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.done {
		return nil
	}
	w.done = true
	w.fs.mu.Lock()
	delete(w.fs.files, w.path+PartialSuffix)
	w.fs.files[w.path] = &file{content: w.content}
	w.fs.mu.Unlock()
	return nil
}

// Abort discards the partial file, removing its ".partial" marker.
func (w *SparseWriter) Abort() {
	w.mu.Lock()
	if w.done {
		w.mu.Unlock()
		return
	}
	w.done = true
	w.mu.Unlock()
	w.fs.mu.Lock()
	delete(w.fs.files, w.path+PartialSuffix)
	w.fs.mu.Unlock()
}

// Reader streams a file out of the FS in chunks.
type Reader struct {
	content blob.Blob
	bw      int64
	off     int64
}

// Open returns a streaming reader for path.
func (fs *FS) Open(path string) (*Reader, error) {
	fs.mu.Lock()
	f, ok := fs.files[path]
	fs.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotExist, path)
	}
	bw := fs.model.HostFSReadCachedBandwidth
	if f.cold {
		bw = fs.model.HostFSReadColdBandwidth
	}
	return &Reader{content: f.content, bw: bw}, nil
}

// OpenRange returns a streaming reader over bytes [off, off+n) of the
// file at path (the read side of striped transfers).
func (fs *FS) OpenRange(path string, off, n int64) (*Reader, error) {
	fs.mu.Lock()
	f, ok := fs.files[path]
	fs.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotExist, path)
	}
	if off < 0 || n < 0 || off+n > f.content.Len() {
		return nil, fmt.Errorf("hostfs: range [%d,%d) outside %s (%d bytes)", off, off+n, path, f.content.Len())
	}
	bw := fs.model.HostFSReadCachedBandwidth
	if f.cold {
		bw = fs.model.HostFSReadColdBandwidth
	}
	return &Reader{content: f.content.Slice(off, n), bw: bw}, nil
}

// Size returns the total file size.
func (r *Reader) Size() int64 { return r.content.Len() }

// Next returns the next chunk of at most max bytes and its virtual read
// time, or io.EOF after the last chunk.
func (r *Reader) Next(max int64) (blob.Blob, simclock.Duration, error) {
	if r.off >= r.content.Len() {
		return blob.Blob{}, 0, io.EOF
	}
	n := max
	if rem := r.content.Len() - r.off; rem < n {
		n = rem
	}
	chunk := r.content.Slice(r.off, n)
	r.off += n
	return chunk, simclock.Rate(r.bw)(n), nil
}
