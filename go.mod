module snapify

go 1.22
