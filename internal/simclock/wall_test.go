package simclock

import "testing"

func TestWallNsPerGiB(t *testing.T) {
	if got := WallNsPerGiB(1000, 0); got != 0 {
		t.Errorf("zero bytes rate = %d, want 0", got)
	}
	if got := WallNsPerGiB(1000, GiB); got != 1000 {
		t.Errorf("1 GiB rate = %d, want 1000", got)
	}
	if got := WallNsPerGiB(1000, 2*GiB); got != 500 {
		t.Errorf("2 GiB rate = %d, want 500", got)
	}
}

func TestWallTimer(t *testing.T) {
	var zero WallTimer
	if zero.ElapsedNs() != 0 {
		t.Error("zero-value timer reported elapsed time")
	}
	w := StartWall()
	a := w.ElapsedNs()
	b := w.ElapsedNs()
	if a < 0 || b < a {
		t.Errorf("wall clock not monotone: %d then %d", a, b)
	}
}
