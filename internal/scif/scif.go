// Package scif reimplements the Symmetric Communications Interface, the
// low-level transport of Intel's MPSS that connects processes on the host
// (SCIF node 0) and on Xeon Phi coprocessors (nodes 1..N).
//
// The package preserves the two SCIF communication styles the paper relies
// on (Section 2):
//
//   - message passing: connection-oriented, ordered scif_send/scif_recv on
//     endpoints obtained via listen/connect/accept on (node, port) pairs;
//   - RDMA: a process registers a memory window (scif_register) and the
//     peer moves data with scif_readfrom/scif_writeto (registered local
//     memory) or scif_vreadfrom/scif_vwriteto (arbitrary local memory).
//
// Snapify's drain protocol depends on two semantic properties that this
// implementation keeps faithfully: messages on one connection are delivered
// in order, and a connection's queue length is observable as exactly the
// bytes sent but not yet received (so "all channels drained" is a checkable
// predicate, which the tests and the core package assert at capture time).
package scif

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"snapify/internal/simnet"
)

// Errors returned by endpoint and listener operations.
var (
	ErrClosed       = errors.New("scif: endpoint closed")
	ErrConnReset    = errors.New("scif: connection reset by peer")
	ErrPortInUse    = errors.New("scif: port already bound")
	ErrConnRefused  = errors.New("scif: connection refused")
	ErrBadWindow    = errors.New("scif: offset not in a registered window")
	ErrListenerDone = errors.New("scif: listener closed")
)

// Addr is a SCIF endpoint address.
type Addr struct {
	Node simnet.NodeID
	Port int
}

func (a Addr) String() string { return fmt.Sprintf("%v:%d", a.Node, a.Port) }

// Network is the SCIF namespace of one Xeon Phi server: the set of bound
// ports and live connections over the PCIe fabric.
type Network struct {
	fabric *simnet.Fabric

	mu        sync.Mutex
	listeners map[Addr]*Listener
	nextPort  int
	// nextWindowOffset allocates RDMA window offsets. It is global and
	// monotone, so re-registering a window after a restore always yields a
	// fresh offset — the reason Snapify needs its (old, new) address remap
	// table (Section 4.3).
	nextWindowOffset atomic.Int64
}

// NewNetwork returns an empty SCIF namespace over the fabric.
func NewNetwork(fabric *simnet.Fabric) *Network {
	n := &Network{
		fabric:    fabric,
		listeners: make(map[Addr]*Listener),
		nextPort:  1 << 16, // ephemeral ports start above the well-known range
	}
	n.nextWindowOffset.Store(0x1000_0000) // a recognizable RDMA offset base
	return n
}

// Fabric returns the underlying PCIe fabric.
func (n *Network) Fabric() *simnet.Fabric { return n.fabric }

// Listener accepts connections on a bound (node, port).
type Listener struct {
	net  *Network
	addr Addr

	mu      sync.Mutex
	cond    *sync.Cond
	backlog []*Endpoint
	closed  bool
}

// Listen binds the given port on node. Port 0 picks an ephemeral port.
func (n *Network) Listen(node simnet.NodeID, port int) (*Listener, error) {
	if !n.fabric.ValidNode(node) {
		return nil, fmt.Errorf("scif: invalid node %d", node)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if port == 0 {
		port = n.nextPort
		n.nextPort++
	}
	a := Addr{node, port}
	if _, busy := n.listeners[a]; busy {
		return nil, fmt.Errorf("%w: %v", ErrPortInUse, a)
	}
	l := &Listener{net: n, addr: a}
	l.cond = sync.NewCond(&l.mu)
	n.listeners[a] = l
	return l, nil
}

// Addr returns the listener's bound address.
func (l *Listener) Addr() Addr { return l.addr }

// Accept blocks until a connection arrives and returns its endpoint.
func (l *Listener) Accept() (*Endpoint, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for len(l.backlog) == 0 && !l.closed {
		l.cond.Wait()
	}
	if l.closed && len(l.backlog) == 0 {
		return nil, ErrListenerDone
	}
	ep := l.backlog[0]
	l.backlog = l.backlog[1:]
	return ep, nil
}

// Close unbinds the port and fails pending Accepts.
func (l *Listener) Close() error {
	l.net.mu.Lock()
	delete(l.net.listeners, l.addr)
	l.net.mu.Unlock()
	l.mu.Lock()
	l.closed = true
	l.cond.Broadcast()
	l.mu.Unlock()
	return nil
}

// Connect establishes a connection from a process on node `from` to the
// listener at to. It returns the client endpoint.
func (n *Network) Connect(from simnet.NodeID, to Addr) (*Endpoint, error) {
	if !n.fabric.ValidNode(from) {
		return nil, fmt.Errorf("scif: invalid node %d", from)
	}
	n.mu.Lock()
	l, ok := n.listeners[to]
	localPort := n.nextPort
	n.nextPort++
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrConnRefused, to)
	}

	client := newEndpoint(n, Addr{from, localPort}, to)
	server := newEndpoint(n, to, Addr{from, localPort})
	client.peer, server.peer = server, client

	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil, fmt.Errorf("%w: %v", ErrConnRefused, to)
	}
	l.backlog = append(l.backlog, server)
	l.cond.Signal()
	l.mu.Unlock()
	return client, nil
}
