package proc

import (
	"fmt"
	"sync"

	"snapify/internal/blob"
)

// RegionKind classifies a memory region. BLCR serializes all kinds; the
// kinds matter to COI (local store handling) and to reporting.
type RegionKind int

const (
	// RegionData is statically allocated program data.
	RegionData RegionKind = iota
	// RegionHeap is malloc'd private memory.
	RegionHeap
	// RegionStack is a thread stack.
	RegionStack
	// RegionLocalStore backs a COI buffer: files memory-mapped into a
	// contiguous range (Section 2). The pause phase streams these to the
	// host snapshot directory separately from the BLCR context.
	RegionLocalStore
)

func (k RegionKind) String() string {
	switch k {
	case RegionData:
		return "data"
	case RegionHeap:
		return "heap"
	case RegionStack:
		return "stack"
	case RegionLocalStore:
		return "local-store"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Region is one contiguous memory region of a process. It implements
// scif.Memory, with internal locking so RDMA from a peer and application
// writes can interleave safely.
type Region struct {
	name string
	kind RegionKind
	seed uint64

	mu     sync.Mutex
	buf    *blob.Buffer
	pinned bool
	dirty  rangeSet // writes since the last MarkClean (incremental CR)
}

func newRegion(name string, kind RegionKind, size int64, seed uint64) *Region {
	return &Region{name: name, kind: kind, seed: seed, buf: blob.NewBuffer(size, seed)}
}

// Name returns the region name.
func (r *Region) Name() string { return r.name }

// Kind returns the region kind.
func (r *Region) Kind() RegionKind { return r.kind }

// Seed returns the region's background seed. Restores recreate regions with
// the same seed so untouched background collapses instead of materializing.
func (r *Region) Seed() uint64 { return r.seed }

// Size returns the region size in bytes.
func (r *Region) Size() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.buf.Size()
}

// Pin marks the region's pages pinned for RDMA; pinned pages cannot be
// swapped out by the Phi OS (one of the paper's arguments against relying
// on OS swap, Section 1).
func (r *Region) Pin() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pinned = true
}

// Unpin clears the pinned mark.
func (r *Region) Unpin() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pinned = false
}

// Pinned reports whether the region is pinned.
func (r *Region) Pinned() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.pinned
}

// WriteAt copies p into the region at off.
func (r *Region) WriteAt(p []byte, off int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf.WriteAt(p, off)
	r.dirty.add(off, int64(len(p)))
}

// ReadAt fills p from the region at off.
func (r *Region) ReadAt(p []byte, off int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf.ReadAt(p, off)
}

// Fill writes n copies of v at off.
func (r *Region) Fill(v byte, off, n int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf.Fill(v, off, n)
	r.dirty.add(off, n)
}

// SnapshotRange returns the content of [off, off+n). Part of scif.Memory.
func (r *Region) SnapshotRange(off, n int64) blob.Blob {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.buf.SnapshotRange(off, n)
}

// Snapshot returns the whole region content.
func (r *Region) Snapshot() blob.Blob {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.buf.Snapshot()
}

// WriteBlob overwrites [off, off+src.Len()) with src. Part of scif.Memory.
func (r *Region) WriteBlob(off int64, src blob.Blob) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf.WriteBlob(off, src)
	r.dirty.add(off, src.Len())
}

// Restore overwrites the whole region from src.
func (r *Region) Restore(src blob.Blob) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf.Restore(src)
	r.dirty.add(0, r.buf.Size())
}

// DirtyRanges returns the coalesced byte ranges written since the last
// MarkClean — the payload of an incremental checkpoint.
func (r *Region) DirtyRanges() []ByteRange {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dirty.ranges()
}

// DirtySinceClean returns the byte count written since the last MarkClean.
func (r *Region) DirtySinceClean() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dirty.bytes()
}

// MarkClean resets the dirty tracking; the checkpointer calls it after a
// full or incremental capture, so the next delta is relative to this one.
func (r *Region) MarkClean() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.dirty.reset()
}

// DirtyBytes returns the overlay (actually written) byte count.
func (r *Region) DirtyBytes() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.buf.DirtyBytes()
}
