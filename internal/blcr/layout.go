package blcr

import (
	"fmt"

	"snapify/internal/blob"
	"snapify/internal/proc"
	"snapify/internal/simclock"
)

// Layout is a checkpoint's byte-exact context-file layout, computed
// without writing a byte anywhere. The dedup-aware capture path uses
// it in three steps: digest the image chunk by chunk (ChunkDigests),
// negotiate a have/need set against the store, then ship only the
// missing ranges (Range) — the bytes are identical, offset for offset,
// to what the plain serial or striped writers would have produced.
type Layout struct {
	c      *Checkpointer
	pl     *plan
	onHost bool
}

// LayoutFull lays out the full-checkpoint format of an already-quiesced
// process.
func (c *Checkpointer) LayoutFull(p *proc.Process) (*Layout, error) {
	if p.State() != proc.Running {
		return nil, fmt.Errorf("blcr: cannot lay out %s process %s", p.State(), p.Name())
	}
	return &Layout{c: c, pl: c.planFull(p), onHost: p.Node().IsHost()}, nil
}

// LayoutDelta lays out the delta-checkpoint format (dirty ranges only).
// Regions are NOT marked clean: the caller does that itself once the
// capture is verified end-to-end, exactly like the KeepDirty writers.
func (c *Checkpointer) LayoutDelta(p *proc.Process) (*Layout, error) {
	if p.State() != proc.Running {
		return nil, fmt.Errorf("blcr: cannot lay out %s process %s", p.State(), p.Name())
	}
	return &Layout{c: c, pl: c.planDelta(p, p.Node().IsHost()), onHost: p.Node().IsHost()}, nil
}

// Size is the laid-out context file's exact byte length.
func (l *Layout) Size() int64 { return l.pl.total }

// Stats returns the layout's counts (Bytes, MetaWrites, Regions,
// Threads); Duration is zero — laying out moves no data.
func (l *Layout) Stats() Stats { return l.pl.st }

// Range materializes bytes [off, off+n) of the laid-out context file.
// Out-of-range requests are clipped to the file.
func (l *Layout) Range(off, n int64) blob.Blob {
	if off < 0 {
		off = 0
	}
	if off+n > l.pl.total {
		n = l.pl.total - off
	}
	if n <= 0 {
		return blob.FromBytes(nil)
	}
	var parts []blob.Blob
	pos := int64(0)
	for _, sg := range l.pl.segs {
		fl := sg.fileLen()
		segStart, segEnd := pos, pos+fl
		pos = segEnd
		if segEnd <= off {
			continue
		}
		if segStart >= off+n {
			break
		}
		s := segStart
		if off > s {
			s = off
		}
		e := segEnd
		if off+n < e {
			e = off + n
		}
		if sg.region == nil {
			parts = append(parts, sg.meta.Slice(s-segStart, e-s))
		} else {
			parts = append(parts, sg.region.SnapshotRange(sg.regOff+(s-segStart), e-s))
		}
	}
	return blob.Concat(parts...)
}

// ChunkDigests digests the layout in chunk-sized windows (<=0 means
// PageChunk) using the supplied digest function — the function lives in
// internal/snapstore; keeping it a parameter keeps blcr free of hash
// imports (snapifylint's storegate pins that). The returned duration is
// the virtual cost of the digest pass: one page-table walk plus one
// memcpy-rate read of the image on the process's node, plus any
// dirty-detection walks the delta layout carries.
func (l *Layout) ChunkDigests(chunk int64, digest func(blob.Blob) string) ([]string, simclock.Duration) {
	chunk = chunkOrDefault(chunk)
	img, dur := l.Materialize()
	var out []string
	if img.Len() > 0 {
		img.ForEachChunk(chunk, func(piece blob.Blob) error { //nolint:errcheck // the callback never fails
			out = append(out, digest(piece))
			return nil
		})
	}
	return out, dur
}

// Materialize snapshots the whole laid-out context file into one
// immutable blob. The pre-copy rounds of a live migration depend on
// this immutability: the process keeps running (and writing) after the
// call, but digests computed from the returned blob and chunks shipped
// from it always describe the same point-in-time image — never a torn
// mix of old and new pages. The returned duration is the cost of the
// full read pass: a page-table walk plus a memcpy-rate copy of the
// image on the process's node (the same formula ChunkDigests charges),
// plus any dirty-detection walks the delta layout carries.
func (l *Layout) Materialize() (blob.Blob, simclock.Duration) {
	img := l.Range(0, l.pl.total)
	memcpy := l.c.model.PhiMemcpy
	if l.onHost {
		memcpy = l.c.model.HostMemcpy
	}
	dur := l.c.walkStage(l.onHost, l.pl.total) + memcpy(l.pl.total)
	for _, sg := range l.pl.segs {
		dur += sg.extraWalk
	}
	return img, dur
}

// pteBytesPerByte is the page-table overhead ratio: one 8-byte entry
// describes one 4 KiB page, so scanning (or installing) the page tables
// that cover n bytes of memory touches n/512 bytes.
const pteBytesPerByte = 512

// RescanCost is the virtual cost of re-reading an image whose dirty set
// the hardware already knows: a PTE-granularity scan of the whole page
// table (to collect dirty bits) plus a walk and memcpy-rate read of
// only the dirty bytes. The pre-copy rounds after the first charge this
// instead of a full Materialize pass — the digests still come from the
// genuinely materialized image, so correctness never rests on the dirty
// bits being right; only the charged time does.
func (c *Checkpointer) RescanCost(onHost bool, totalBytes, dirtyBytes int64) simclock.Duration {
	memcpy := c.model.PhiMemcpy
	if onHost {
		memcpy = c.model.HostMemcpy
	}
	return memcpy(totalBytes/pteBytesPerByte) + c.walkStage(onHost, dirtyBytes) + memcpy(dirtyBytes)
}
