package proc

import "sort"

// rangeSet tracks dirty byte ranges of a region since the last clean mark,
// coalescing overlapping and adjacent inserts. It backs the incremental
// checkpointing extension: a delta checkpoint serializes only these
// ranges.
type rangeSet struct {
	spans []ByteRange // sorted by Off, non-overlapping, non-adjacent
}

// ByteRange is one contiguous dirty range.
type ByteRange struct {
	Off, Len int64
}

// End returns the exclusive end offset.
func (r ByteRange) End() int64 { return r.Off + r.Len }

// add inserts [off, off+n), merging as needed.
func (s *rangeSet) add(off, n int64) {
	if n <= 0 {
		return
	}
	end := off + n
	lo := sort.Search(len(s.spans), func(i int) bool { return s.spans[i].End() >= off })
	hi := sort.Search(len(s.spans), func(i int) bool { return s.spans[i].Off > end })
	if lo == hi {
		s.spans = append(s.spans, ByteRange{})
		copy(s.spans[lo+1:], s.spans[lo:])
		s.spans[lo] = ByteRange{Off: off, Len: n}
		return
	}
	newOff := s.spans[lo].Off
	if off < newOff {
		newOff = off
	}
	newEnd := s.spans[hi-1].End()
	if end > newEnd {
		newEnd = end
	}
	s.spans[lo] = ByteRange{Off: newOff, Len: newEnd - newOff}
	s.spans = append(s.spans[:lo+1], s.spans[hi:]...)
}

// ranges returns the coalesced dirty ranges.
func (s *rangeSet) ranges() []ByteRange {
	out := make([]ByteRange, len(s.spans))
	copy(out, s.spans)
	return out
}

// bytes returns the total dirty byte count.
func (s *rangeSet) bytes() int64 {
	var n int64
	for _, r := range s.spans {
		n += r.Len
	}
	return n
}

// reset clears the set.
func (s *rangeSet) reset() { s.spans = nil }
