package blob

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFromBytesRoundTrip(t *testing.T) {
	in := []byte("hello snapify")
	b := FromBytes(in)
	if b.Len() != int64(len(in)) {
		t.Fatalf("Len = %d, want %d", b.Len(), len(in))
	}
	if !bytes.Equal(b.Bytes(), in) {
		t.Fatalf("Bytes = %q, want %q", b.Bytes(), in)
	}
	in[0] = 'X' // must not alias
	if b.Bytes()[0] == 'X' {
		t.Fatal("FromBytes aliases caller's slice")
	}
}

func TestZerosAndSynthetic(t *testing.T) {
	z := Zeros(100)
	for i, v := range z.Bytes() {
		if v != 0 {
			t.Fatalf("Zeros[%d] = %d", i, v)
		}
	}
	s := Synthetic(42, 100)
	if bytes.Equal(s.Bytes(), z.Bytes()) {
		t.Fatal("seeded synthetic equals zeros")
	}
	s2 := Synthetic(42, 100)
	if !bytes.Equal(s.Bytes(), s2.Bytes()) {
		t.Fatal("synthetic content not deterministic")
	}
}

func TestSliceMatchesBytes(t *testing.T) {
	b := Concat(FromBytes([]byte("abcdefgh")), Synthetic(7, 64), FromBytes([]byte("XYZ")))
	whole := b.Bytes()
	for _, c := range []struct{ off, n int64 }{
		{0, 0}, {0, 8}, {3, 10}, {8, 64}, {70, 5}, {0, 75}, {74, 1},
	} {
		got := b.Slice(c.off, c.n).Bytes()
		want := whole[c.off : c.off+c.n]
		if !bytes.Equal(got, want) {
			t.Errorf("Slice(%d,%d) = %q, want %q", c.off, c.n, got, want)
		}
	}
}

func TestSliceOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Zeros(10).Slice(5, 6)
}

func TestAt(t *testing.T) {
	b := Concat(FromBytes([]byte{1, 2, 3}), Synthetic(9, 16))
	whole := b.Bytes()
	for i := int64(0); i < b.Len(); i++ {
		if b.At(i) != whole[i] {
			t.Fatalf("At(%d) = %d, want %d", i, b.At(i), whole[i])
		}
	}
}

func TestEqualFastPathAndMixed(t *testing.T) {
	a := Synthetic(5, 1000)
	b := Synthetic(5, 1000)
	if !Equal(a, b) {
		t.Fatal("identical synthetic blobs not equal")
	}
	// Mixed: literal copy of synthetic content must compare equal.
	lit := FromBytes(a.Bytes())
	if !Equal(a, lit) {
		t.Fatal("literal materialization not equal to synthetic source")
	}
	// Shifted synthetic stream differs.
	c := Synthetic(5, 1001).Slice(1, 1000)
	if Equal(a, c) {
		t.Fatal("shifted synthetic stream compared equal")
	}
	if Equal(a, Zeros(1000)) {
		t.Fatal("seeded synthetic equals zeros")
	}
	if Equal(a, Synthetic(5, 999)) {
		t.Fatal("different sizes compared equal")
	}
}

func TestLiteralBytes(t *testing.T) {
	b := Concat(FromBytes(make([]byte, 100)), Synthetic(1, 900))
	if b.LiteralBytes() != 100 {
		t.Fatalf("LiteralBytes = %d, want 100", b.LiteralBytes())
	}
	if b.Len() != 1000 {
		t.Fatalf("Len = %d, want 1000", b.Len())
	}
}

func TestHashDistinguishesContent(t *testing.T) {
	a := Synthetic(5, 4096)
	if a.Hash() != FromBytes(a.Bytes()).Hash() {
		t.Fatal("hash depends on representation, not content")
	}
	if a.Hash() == Synthetic(6, 4096).Hash() {
		t.Fatal("different seeds hash equal")
	}
}

func TestForEachChunk(t *testing.T) {
	b := Synthetic(3, 10*1024)
	var got []byte
	var sizes []int64
	err := b.ForEachChunk(4096, func(c Blob) error {
		got = append(got, c.Bytes()...)
		sizes = append(sizes, c.Len())
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, b.Bytes()) {
		t.Fatal("chunked content differs from whole")
	}
	want := []int64{4096, 4096, 2048}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("chunk sizes = %v, want %v", sizes, want)
		}
	}
}

func TestBufferWriteReadBasic(t *testing.T) {
	buf := NewBuffer(64, 0)
	buf.WriteAt([]byte("abc"), 10)
	p := make([]byte, 5)
	buf.ReadAt(p, 9)
	if !bytes.Equal(p, []byte{0, 'a', 'b', 'c', 0}) {
		t.Fatalf("ReadAt = %v", p)
	}
}

func TestBufferMergeAdjacentAndOverlapping(t *testing.T) {
	buf := NewBuffer(100, 0)
	buf.WriteAt([]byte("aaaa"), 10) // [10,14)
	buf.WriteAt([]byte("bbbb"), 14) // adjacent -> [10,18)
	buf.WriteAt([]byte("cc"), 12)   // overlap inside
	if len(buf.writes) != 1 {
		t.Fatalf("writes not merged: %d spans", len(buf.writes))
	}
	p := make([]byte, 8)
	buf.ReadAt(p, 10)
	if string(p) != "aaccbbbb" {
		t.Fatalf("content = %q", p)
	}
	if buf.DirtyBytes() != 8 {
		t.Fatalf("DirtyBytes = %d, want 8", buf.DirtyBytes())
	}
}

func TestBufferSnapshotRestoreRoundTrip(t *testing.T) {
	buf := NewBuffer(1<<16, 77)
	buf.WriteAt([]byte("snapshot me"), 1234)
	buf.Fill(0xAB, 40000, 100)
	snap := buf.Snapshot()
	if snap.Len() != buf.Size() {
		t.Fatalf("snapshot len %d != size %d", snap.Len(), buf.Size())
	}

	// Restore into a fresh buffer with the same background seed.
	fresh := NewBuffer(1<<16, 77)
	fresh.Restore(snap)
	if !Equal(fresh.Snapshot(), snap) {
		t.Fatal("restore(snapshot) not content-identical")
	}
	// The restore must collapse background extents, not materialize 64 KiB.
	if fresh.DirtyBytes() != buf.DirtyBytes() {
		t.Fatalf("restore dirty bytes %d, want %d", fresh.DirtyBytes(), buf.DirtyBytes())
	}

	// Restore into a buffer with a different seed: still content-identical,
	// now fully materialized.
	alien := NewBuffer(1<<16, 99)
	alien.Restore(snap)
	if !Equal(alien.Snapshot(), snap) {
		t.Fatal("cross-seed restore not content-identical")
	}
}

func TestBufferOutOfRangePanics(t *testing.T) {
	buf := NewBuffer(10, 0)
	for _, f := range []func(){
		func() { buf.WriteAt([]byte("xyz"), 8) },
		func() { buf.ReadAt(make([]byte, 3), 8) },
		func() { buf.WriteAt([]byte("x"), -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic on out-of-range access")
				}
			}()
			f()
		}()
	}
}

// TestBufferQuickAgainstReference drives a Buffer and a plain []byte
// reference model with identical random operations and requires identical
// observable content throughout.
func TestBufferQuickAgainstReference(t *testing.T) {
	const size = 4096
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		bg := uint64(r.Int63())
		buf := NewBuffer(size, bg)
		ref := make([]byte, size)
		Materialize(bg, 0, ref)
		for op := 0; op < 50; op++ {
			off := r.Int63n(size)
			n := r.Int63n(size - off)
			switch r.Intn(3) {
			case 0: // write
				p := make([]byte, n)
				r.Read(p)
				buf.WriteAt(p, off)
				copy(ref[off:], p)
			case 1: // read
				p := make([]byte, n)
				buf.ReadAt(p, off)
				if !bytes.Equal(p, ref[off:off+n]) {
					return false
				}
			case 2: // snapshot + restore into clone
				snap := buf.Snapshot()
				if !bytes.Equal(snap.Bytes(), ref) {
					return false
				}
				clone := NewBuffer(size, bg)
				clone.Restore(snap)
				if !bytes.Equal(clone.Snapshot().Bytes(), ref) {
					return false
				}
			}
		}
		return bytes.Equal(buf.Snapshot().Bytes(), ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestSliceQuick verifies Slice against materialized content for random
// extent mixes.
func TestSliceQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var parts []Blob
		for i := 0; i < 1+r.Intn(6); i++ {
			if r.Intn(2) == 0 {
				p := make([]byte, 1+r.Intn(200))
				r.Read(p)
				parts = append(parts, FromBytes(p))
			} else {
				parts = append(parts, Synthetic(uint64(r.Int63()), int64(1+r.Intn(200))))
			}
		}
		b := Concat(parts...)
		whole := b.Bytes()
		for i := 0; i < 20; i++ {
			off := r.Int63n(b.Len() + 1)
			n := r.Int63n(b.Len() - off + 1)
			s := b.Slice(off, n)
			if s.Len() != n {
				return false
			}
			if !bytes.Equal(s.Bytes(), whole[off:off+n]) {
				return false
			}
			if !Equal(s, FromBytes(whole[off:off+n])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMaterializeWindowIndependence(t *testing.T) {
	// Materializing in windows must agree with one shot, at any alignment.
	whole := make([]byte, 257)
	Materialize(11, 3, whole)
	for w := 1; w <= 64; w *= 4 {
		got := make([]byte, len(whole))
		for off := 0; off < len(whole); off += w {
			end := off + w
			if end > len(whole) {
				end = len(whole)
			}
			Materialize(11, 3+int64(off), got[off:end])
		}
		if !bytes.Equal(got, whole) {
			t.Fatalf("window %d materialization differs", w)
		}
	}
}
