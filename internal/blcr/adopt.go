package blcr

import (
	"io"

	"snapify/internal/blob"
	"snapify/internal/proc"
	"snapify/internal/stream"
)

// This file is the restore half of live migration's staging protocol:
// the destination card accumulated the context image in its own memory
// while the source process kept running, so the final restore does not
// move the pages again — it adopts them.

// RestartAdopted rebuilds a process from a context image that is already
// resident in the target node's memory (the pre-copy staging area of a
// live migration). The record-parse loop is exactly Restart's — the
// resulting process is byte-identical to one restored over Snapify-IO —
// but the per-page cost is adoption, not copying: the staged frames are
// donated to the new process and only their page-table entries are
// installed, so the charged time scales with the page count, not the
// image size. The caller is responsible for having verified the staged
// image against the committed manifest before adopting it.
func (c *Checkpointer) RestartAdopted(img blob.Blob, spawn Spawner) (*proc.Process, *Stats, error) {
	return c.restartFrom(&residentSource{img: img}, spawn, true)
}

// residentSource feeds an already-resident image to the restart parser.
// Transport cost is zero — the bytes crossed the fabric during the
// pre-copy rounds, charged there — so the only time the restart accrues
// is the adoption stage the contextReader adds per chunk.
type residentSource struct {
	img blob.Blob
	off int64
}

func (s *residentSource) Next(max int64) (blob.Blob, stream.Cost, error) {
	if s.off >= s.img.Len() {
		return blob.FromBytes(nil), stream.Cost{}, io.EOF
	}
	n := s.img.Len() - s.off
	if n > max {
		n = max
	}
	b := s.img.Slice(s.off, n)
	s.off += n
	return b, stream.Cost{}, nil
}

func (s *residentSource) Size() int64 { return s.img.Len() }

func (s *residentSource) Close() error { return nil }
