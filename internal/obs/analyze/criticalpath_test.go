package analyze

import (
	"strings"
	"testing"

	"snapify/internal/obs"
	"snapify/internal/simclock"
)

// scriptedLifecycle builds the tracer the obs golden uses: a two-card
// pause + 2-stream capture + restore with hand-picked durations, plus
// an idle gap between capture end (3000) and restore start (3000) — no
// gap here, but the restore tail ends at 4150.
func scriptedLifecycle() *obs.Tracer {
	tr := obs.NewTracer()
	host := tr.Track("host", "app")
	host.Emit(0, "snapify_pause", 0, 1000, nil)
	scope := tr.NewScope()
	w0 := tr.Track("mic0", "offload_a/stream 0")
	w1 := tr.Track("mic0", "offload_a/stream 1")
	w0.Emit(scope, "capture_stream", 1000, 2000, map[string]int64{"stream": 0})
	w1.Emit(scope, "capture_stream", 1000, 1500, map[string]int64{"stream": 1})
	host.Emit(scope, "snapify_capture", 1000, 2000, nil)
	host.Emit(0, "snapify_restore", 3500, 600, nil)
	host.Emit(0, "snapify_resume", 4100, 50, nil)
	return tr
}

// TestCriticalPathTilesWindow is the acceptance-criteria property: the
// chain's segment durations sum exactly (integer equality) to the
// trace's end-to-end duration, idle gaps included.
func TestCriticalPathTilesWindow(t *testing.T) {
	spans, err := ParseChromeTrace(scriptedLifecycle().ChromeTrace())
	if err != nil {
		t.Fatal(err)
	}
	r, err := CriticalPath(spans)
	if err != nil {
		t.Fatal(err)
	}
	if r.EndToEndNs != 4150 {
		t.Errorf("end-to-end %d ns, want 4150", r.EndToEndNs)
	}
	if got := r.ChainTotalNs(); got != r.EndToEndNs {
		t.Errorf("chain total %d != end-to-end %d", got, r.EndToEndNs)
	}
	// The gap [3000, 3500) has no active span: the chain must carry it
	// as (idle) so the tiling stays exact.
	var idle int64
	for _, seg := range r.Chain {
		if seg.Name == "(idle)" {
			idle += seg.DurNs
		}
	}
	if idle != 500 {
		t.Errorf("idle time %d ns, want 500", idle)
	}
}

// TestCriticalPathBlame pins blame attribution: the capture streams
// (deeper than the covering snapify_capture span) take the capture
// window, with stream 0 — the straggler — blamed for the skew tail.
func TestCriticalPathBlame(t *testing.T) {
	spans, err := ParseChromeTrace(scriptedLifecycle().ChromeTrace())
	if err != nil {
		t.Fatal(err)
	}
	r, err := CriticalPath(spans)
	if err != nil {
		t.Fatal(err)
	}
	// Expected chain: pause 1000 → capture_stream (stream 0, the later
	// finisher wins both the shared window and the tail) 2000 → idle
	// 500 → restore 600 → resume 50.
	wantNames := []string{"snapify_pause", "capture_stream", "(idle)", "snapify_restore", "snapify_resume"}
	var gotNames []string
	for _, seg := range r.Chain {
		gotNames = append(gotNames, seg.Name)
	}
	if len(r.Chain) != len(wantNames) {
		t.Fatalf("chain has %d segments %v, want %d", len(r.Chain), gotNames, len(wantNames))
	}
	for i, w := range wantNames {
		if r.Chain[i].Name != w {
			t.Errorf("chain[%d] = %q, want %q", i, r.Chain[i].Name, w)
		}
	}
	if r.Chain[1].Thread != "offload_a/stream 0" {
		t.Errorf("capture window blamed on %q, want the straggler stream 0", r.Chain[1].Thread)
	}
	if r.Blame[0].Name != "capture_stream" || r.Blame[0].TotalNs != 2000 {
		t.Errorf("top blame %+v, want capture_stream 2000ns", r.Blame[0])
	}
	// Straggler skew: stream 0 ends at 3000, stream 1 at 2500.
	if len(r.Skews) != 1 || r.Skews[0].SkewNs != 500 || r.Skews[0].Lanes != 2 {
		t.Errorf("skews %+v, want one capture_stream skew of 500ns over 2 lanes", r.Skews)
	}
	if !strings.Contains(r.Render(0), "capture_stream") {
		t.Error("render missing blame table")
	}
}

// TestCriticalPathRounds: precopy_round spans surface as per-round
// stats ordered by round number.
func TestCriticalPathRounds(t *testing.T) {
	tr := obs.NewTracer()
	host := tr.Track("host", "app")
	host.Emit(0, "precopy_round", 0, 100, map[string]int64{"round": 1, "dirty_bytes": 800, "shipped_bytes": 800})
	host.Emit(0, "precopy_round", 100, 40, map[string]int64{"round": 2, "dirty_bytes": 200, "shipped_bytes": 200})
	host.Emit(0, "migration_downtime", 140, 10, map[string]int64{"rounds": 2})
	spans, err := ParseChromeTrace(tr.ChromeTrace())
	if err != nil {
		t.Fatal(err)
	}
	r, err := CriticalPath(spans)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rounds) != 2 {
		t.Fatalf("rounds %+v, want 2", r.Rounds)
	}
	if r.Rounds[0].Round != 1 || r.Rounds[0].DirtyBytes != 800 {
		t.Errorf("round 1 stats %+v", r.Rounds[0])
	}
	if r.Rounds[1].Round != 2 || r.Rounds[1].ShippedBytes != 200 {
		t.Errorf("round 2 stats %+v", r.Rounds[1])
	}
	if !strings.Contains(r.Render(0), "pre-copy rounds") {
		t.Error("render missing rounds section")
	}
}

// TestCriticalPathErrors: no spans, or only zero-duration markers.
func TestCriticalPathErrors(t *testing.T) {
	if _, err := CriticalPath(nil); err == nil {
		t.Error("empty span set produced a report")
	}
	if _, err := CriticalPath([]obs.Span{{Name: "capture_failed", Start: 5, Dur: 0}}); err == nil {
		t.Error("marker-only span set produced a report")
	}
}

// TestParseChromeTraceRoundTrip: export → parse reproduces the spans
// the tracer recorded (args minus the dur_ns/scope bookkeeping).
func TestParseChromeTraceRoundTrip(t *testing.T) {
	tr := scriptedLifecycle()
	want := tr.Spans()
	got, err := ParseChromeTrace(tr.ChromeTrace())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d spans, tracer recorded %d", len(got), len(want))
	}
	// The export sorts spans by lane then start; match by identity key.
	type key struct {
		p, th, n string
		start    simclock.Duration
	}
	index := map[key]obs.Span{}
	for _, s := range got {
		index[key{s.Process, s.Thread, s.Name, s.Start}] = s
	}
	for _, w := range want {
		g, ok := index[key{w.Process, w.Thread, w.Name, w.Start}]
		if !ok {
			t.Errorf("span %s/%s %q missing from parse", w.Process, w.Thread, w.Name)
			continue
		}
		if g.Dur != w.Dur || g.Scope != w.Scope {
			t.Errorf("span %q parsed as dur %v scope %d, want %v/%d", w.Name, g.Dur, g.Scope, w.Dur, w.Scope)
		}
		for k, v := range w.Args {
			if g.Args[k] != v {
				t.Errorf("span %q arg %s = %d, want %d", w.Name, k, g.Args[k], v)
			}
		}
	}
	if _, err := ParseChromeTrace([]byte("not json")); err == nil {
		t.Error("garbage parsed")
	}
}
