// Package snapstore is a chunked, content-addressed snapshot repository
// on the host file system (DESIGN.md §11).
//
// Snapshot images are split into fixed-size chunks keyed by SHA-256 and
// stored once; per-snapshot manifests list the chunk digests that
// reassemble the image, carry a refcount, and link to a delta chain's
// parent manifest. The capture data path negotiates a have/need chunk
// set before streaming (Snapify-IO msgStoreNegotiate) and ships only
// the chunks the store lacks — the dedup that makes repeated swap-out
// of a mostly-unchanged offload process cheap, the same redundancy the
// paper's delta checkpoints (§4.4) exploit at page granularity.
//
// Consistency contract: a manifest is committed atomically
// (temp-then-final write; a crash in between leaves the snapshot
// absent, never torn), chunk writes are idempotent (same digest, same
// content), and GC — mark from manifests plus in-flight uploads, sweep
// unreferenced chunks — is safe to re-run after any interruption.
package snapstore

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"snapify/internal/blob"
	"snapify/internal/faultinject"
	"snapify/internal/hostfs"
	"snapify/internal/obs"
	"snapify/internal/simclock"
)

// ErrInterrupted reports an operation cut short by an injected daemon
// crash (SiteStore). The store is left consistent; the operation can be
// re-run.
var ErrInterrupted = errors.New("snapstore: interrupted by injected crash")

// Store is the content-addressed snapshot repository. Safe for
// concurrent use; the parallel upload streams of one capture and the
// control plane (GC, Verify, ctl) share one Store.
type Store struct {
	model *simclock.Model
	fs    *hostfs.FS
	obs   *obs.Obs
	// injector supplies the fault injector lazily: chaos plans are armed
	// on the fabric after the Platform (and Store) are built.
	injector func() *faultinject.Injector

	mu      sync.Mutex
	uploads map[string]*upload
	tiers   *tiers

	chunksPut    *obs.Counter
	chunkHits    *obs.Counter
	bytesShipped *obs.Counter
	bytesLogical *obs.Counter
	gcChunks     *obs.Counter
	gcBytes      *obs.Counter
	commits      *obs.Counter

	cacheHits      *obs.Counter
	hostTierHits   *obs.Counter
	coldHits       *obs.Counter
	tierDemotions  *obs.Counter
	tierPromotions *obs.Counter
}

// upload is one negotiated dedup upload in flight. It pins its digests
// against GC until committed or aborted, so a concurrent sweep can
// never reclaim a chunk the writer was told the store already has.
type upload struct {
	path       string // normalized snapshot path
	parent     string // normalized parent snapshot path, or ""
	size       int64
	chunkBytes int64
	digests    []string
	have       []bool // chunk present when negotiated or put since
	committed  bool
}

// New builds a Store over the host file system. injector may be nil or
// return nil; faults then never fire.
func New(model *simclock.Model, fs *hostfs.FS, o *obs.Obs, injector func() *faultinject.Injector) *Store {
	reg := o.MetricsOf()
	st := &Store{
		model:    model,
		fs:       fs,
		obs:      o,
		injector: injector,
		uploads:  make(map[string]*upload),
		chunksPut: reg.Counter("snapstore_chunks_put_total",
			"Chunks shipped to and written by the store."),
		chunkHits: reg.Counter("snapstore_chunk_hits_total",
			"Chunks a negotiation found already present (dedup hits)."),
		bytesShipped: reg.Counter("snapstore_bytes_shipped_total",
			"Bytes physically shipped into the store."),
		bytesLogical: reg.Counter("snapstore_bytes_logical_total",
			"Logical snapshot bytes committed (pre-dedup)."),
		gcChunks: reg.Counter("snapstore_gc_reclaimed_chunks_total",
			"Chunks reclaimed by GC sweeps."),
		gcBytes: reg.Counter("snapstore_gc_reclaimed_bytes_total",
			"Bytes reclaimed by GC sweeps."),
		commits: reg.Counter("snapstore_manifests_committed_total",
			"Manifests committed (temp-then-final renames)."),
		cacheHits: reg.Counter("snapstore_tier_reads_total",
			"Chunk reads served per tier.", obs.L("tier", string(TierCache))),
		hostTierHits: reg.Counter("snapstore_tier_reads_total",
			"Chunk reads served per tier.", obs.L("tier", string(TierHost))),
		coldHits: reg.Counter("snapstore_tier_reads_total",
			"Chunk reads served per tier.", obs.L("tier", string(TierCold))),
		tierDemotions: reg.Counter("snapstore_tier_demotions_total",
			"Chunks demoted host -> cold by the byte-budget rebalance."),
		tierPromotions: reg.Counter("snapstore_tier_promotions_total",
			"Chunks promoted cold -> host on read."),
		tiers: newTiers(),
	}
	reg.RegisterCollector(func(r *obs.Registry) {
		s := st.Stats()
		r.Gauge("snapstore_chunks", "Unique chunks resident in the store.").Set(int64(s.Chunks))
		r.Gauge("snapstore_manifests", "Manifests resident in the store.").Set(int64(s.Manifests))
		r.Gauge("snapstore_stored_bytes", "Physical chunk bytes resident.").Set(s.StoredBytes)
		r.Gauge("snapstore_logical_bytes", "Logical snapshot bytes referenced.").Set(s.LogicalBytes)
	})
	return st
}

func (st *Store) fire(key string) *faultinject.Fault {
	if st.injector == nil {
		return nil
	}
	return st.injector().Fire(faultinject.SiteStore, key)
}

// Negotiate registers a dedup upload for the snapshot at path and
// returns which chunk indices the store lacks. digests are the ordered
// chunk digests of the full image (size bytes in chunkBytes chunks);
// parent, if nonempty, names the snapshot whose manifest this one's
// delta chain extends and must already be committed. If nothing is
// missing the manifest commits immediately (committed reports this) and
// no data streams at all.
//
// Negotiating again for the same path replaces the pending upload (the
// retry path after a mid-upload crash: chunks already shipped are found
// and drop out of the need set).
func (st *Store) Negotiate(path, parent string, size, chunkBytes int64, digests []string) (need []int, committed bool, dur simclock.Duration, err error) {
	if size < 0 || chunkBytes <= 0 {
		return nil, false, 0, fmt.Errorf("snapstore: negotiate %s: bad geometry size=%d chunkBytes=%d", path, size, chunkBytes)
	}
	if got, want := len(digests), chunkCount(size, chunkBytes); got != want {
		return nil, false, 0, fmt.Errorf("snapstore: negotiate %s: %d digests for %d bytes in %d-byte chunks (want %d)", path, got, size, chunkBytes, want)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	path = normPath(path)
	if parent != "" {
		parent = normPath(parent)
		if !st.fs.Exists(manifestPath(parent)) {
			return nil, false, 0, fmt.Errorf("snapstore: negotiate %s: parent %s has no manifest", path, parent)
		}
		if parent == path {
			return nil, false, 0, fmt.Errorf("snapstore: negotiate %s: snapshot cannot parent itself", path)
		}
	}
	up := &upload{
		path:       path,
		parent:     parent,
		size:       size,
		chunkBytes: chunkBytes,
		digests:    append([]string(nil), digests...),
		have:       make([]bool, len(digests)),
	}
	for i, d := range digests {
		if st.chunkResidentLocked(d) {
			up.have[i] = true
			st.chunkHits.Inc()
		} else {
			need = append(need, i)
		}
	}
	st.uploads[path] = up
	// Metadata cost: one fs round-trip plus an in-memory index scan of
	// the digest list (a real store answers have/need from an index, not
	// per-chunk stats).
	dur = st.model.HostFSOpLatency + st.model.HostMemcpy(64*int64(len(digests)))
	if len(need) == 0 {
		d, err := st.commitLocked(up)
		dur += d
		if err != nil {
			return nil, false, dur, err
		}
		return nil, true, dur, nil
	}
	return need, false, dur, nil
}

// PutChunkAt stores one chunk of a negotiated upload. off must be
// chunk-aligned; content is digest-verified against the negotiated
// digest before it is admitted (a corrupted transfer is rejected, not
// stored under a name it doesn't match). Idempotent: re-shipping a
// chunk that already landed is a no-op replay.
func (st *Store) PutChunkAt(path string, off int64, content blob.Blob) (simclock.Duration, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	up := st.uploads[normPath(path)]
	if up == nil {
		return 0, fmt.Errorf("snapstore: put %s: no negotiated upload", path)
	}
	if off < 0 || off%up.chunkBytes != 0 || off >= up.size {
		return 0, fmt.Errorf("snapstore: put %s: offset %d not a chunk boundary of %d-byte chunks in %d bytes", path, off, up.chunkBytes, up.size)
	}
	idx := int(off / up.chunkBytes)
	m := Manifest{Size: up.size, ChunkBytes: up.chunkBytes}
	if content.Len() != m.chunkLen(idx) {
		return 0, fmt.Errorf("snapstore: put %s: chunk %d is %d bytes, want %d", path, idx, content.Len(), m.chunkLen(idx))
	}
	// Verifying the digest re-reads the chunk once at memcpy rate.
	dur := st.model.HostMemcpy(content.Len())
	if got := Digest(content); got != up.digests[idx] {
		return dur, fmt.Errorf("snapstore: put %s: chunk %d digest mismatch (got %s, want %s)", path, idx, got[:12], up.digests[idx][:12])
	}
	cp := chunkPath(up.digests[idx])
	if !st.chunkResidentLocked(up.digests[idx]) {
		d, err := st.fs.WriteFile(cp, content)
		dur += d
		if err != nil {
			return dur, err
		}
		st.chunksPut.Inc()
		d, err = st.admitHostLocked(up.digests[idx], content.Len())
		dur += d
		if err != nil {
			return dur, err
		}
	}
	if !up.have[idx] {
		up.have[idx] = true
		st.bytesShipped.Add(content.Len())
	}
	return dur, nil
}

// CloseUpload finishes a negotiated upload: if every chunk is present
// the manifest commits atomically and CloseUpload reports committed;
// otherwise the upload stays pending (the writer detached or died
// mid-stream — a retry re-negotiates). Idempotent across the parallel
// streams of one capture: the first complete close commits, later
// closes see committed.
func (st *Store) CloseUpload(path string) (bool, simclock.Duration, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	up := st.uploads[normPath(path)]
	if up == nil {
		return false, 0, fmt.Errorf("snapstore: close %s: no negotiated upload", path)
	}
	if up.committed {
		return true, 0, nil
	}
	for _, ok := range up.have {
		if !ok {
			return false, 0, nil
		}
	}
	dur, err := st.commitLocked(up)
	return err == nil, dur, err
}

// AbortUpload drops a pending upload, unpinning its digests. Chunks
// already written stay — they are content-addressed, so a retry (or an
// unrelated snapshot) reuses them, and GC reclaims them if nobody does.
func (st *Store) AbortUpload(path string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	delete(st.uploads, normPath(path))
}

// DigestPlan returns the digest list the destination of a live
// migration should stage against: the pending negotiated upload for
// path when one is in flight (the current pre-copy round's image), else
// the committed manifest. committed distinguishes the two; ok is false
// when neither exists. The charged duration mirrors Negotiate's
// metadata cost — one fs round-trip plus an index scan of the list.
func (st *Store) DigestPlan(path string) (size, chunkBytes int64, digests []string, committed, ok bool, dur simclock.Duration) {
	st.mu.Lock()
	defer st.mu.Unlock()
	p := normPath(path)
	if up := st.uploads[p]; up != nil && !up.committed {
		dur = st.model.HostFSOpLatency + st.model.HostMemcpy(64*int64(len(up.digests)))
		return up.size, up.chunkBytes, append([]string(nil), up.digests...), false, true, dur
	}
	m, d, err := st.manifestLocked(p)
	if err != nil {
		return 0, 0, nil, false, false, d
	}
	dur = d + st.model.HostMemcpy(64*int64(len(m.Chunks)))
	return m.Size, m.ChunkBytes, m.Chunks, true, true, dur
}

// PendingUploads counts negotiated uploads that have not committed —
// the in-flight state a chaos test asserts is cleaned up after a fault.
func (st *Store) PendingUploads() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	n := 0
	for _, up := range st.uploads {
		if !up.committed {
			n++
		}
	}
	return n
}

// AbortAll drops every pending upload — the Snapify-IO daemon crashed
// and its stream state is gone. Durable chunks and committed manifests
// are unaffected.
func (st *Store) AbortAll() {
	st.mu.Lock()
	defer st.mu.Unlock()
	for p, up := range st.uploads {
		if !up.committed {
			delete(st.uploads, p)
		}
	}
}

// commitLocked writes the manifest for a completed upload with the
// temp-then-final dance and settles refcounts: a replaced manifest's
// refs carry over (holders don't know the content changed), a replaced
// parent link is released, a new parent link retained. Caller holds
// st.mu.
func (st *Store) commitLocked(up *upload) (simclock.Duration, error) {
	mp := manifestPath(up.path)
	var old *Manifest
	if st.fs.Exists(mp) {
		b, d, err := st.fs.ReadFile(mp)
		if err != nil {
			return d, err
		}
		old, err = decodeManifest(b)
		if err != nil {
			return d, err
		}
	}
	m := &Manifest{
		Path:       up.path,
		Size:       up.size,
		ChunkBytes: up.chunkBytes,
		Parent:     up.parent,
		Refs:       1,
		Chunks:     append([]string(nil), up.digests...),
	}
	if old != nil {
		m.Refs = old.Refs
	}
	dur, err := st.fs.WriteFile(mp+TmpSuffix, m.encode())
	if err != nil {
		return dur, err
	}
	if f := st.fire("commit"); f != nil && f.Kind == faultinject.Crash {
		// Crashed between temp and final: the snapshot is absent, the
		// stale temp is GC fodder, the upload dies with the daemon.
		delete(st.uploads, up.path)
		return dur, fmt.Errorf("%w: commit of %s", ErrInterrupted, up.path)
	}
	d, err := st.fs.WriteFile(mp, m.encode())
	dur += d
	if err != nil {
		return dur, err
	}
	if err := st.fs.Remove(mp + TmpSuffix); err != nil {
		return dur, err
	}
	if old == nil || old.Parent != m.Parent {
		if m.Parent != "" {
			d, err := st.retainLocked(m.Parent)
			dur += d
			if err != nil {
				return dur, err
			}
		}
		if old != nil && old.Parent != "" {
			d, err := st.releaseLocked(old.Parent)
			dur += d
			if err != nil {
				return dur, err
			}
		}
	}
	up.committed = true
	st.commits.Inc()
	st.bytesLogical.Add(up.size)
	return dur, nil
}

// writeManifestLocked rewrites an existing manifest (refcount changes)
// with the same temp-then-final discipline as a commit.
func (st *Store) writeManifestLocked(m *Manifest) (simclock.Duration, error) {
	mp := manifestPath(m.Path)
	dur, err := st.fs.WriteFile(mp+TmpSuffix, m.encode())
	if err != nil {
		return dur, err
	}
	d, err := st.fs.WriteFile(mp, m.encode())
	dur += d
	if err != nil {
		return dur, err
	}
	return dur, st.fs.Remove(mp + TmpSuffix)
}

// retainLocked bumps the refcount of the manifest at path.
func (st *Store) retainLocked(path string) (simclock.Duration, error) {
	m, dur, err := st.manifestLocked(path)
	if err != nil {
		return dur, err
	}
	m.Refs++
	d, err := st.writeManifestLocked(m)
	return dur + d, err
}

// releaseLocked drops one reference from the manifest at path, deleting
// it (and cascading up its delta chain) at zero. Chunks are left for GC.
func (st *Store) releaseLocked(path string) (simclock.Duration, error) {
	m, dur, err := st.manifestLocked(path)
	if err != nil {
		return dur, err
	}
	m.Refs--
	if m.Refs > 0 {
		d, err := st.writeManifestLocked(m)
		return dur + d, err
	}
	if err := st.fs.Remove(manifestPath(path)); err != nil {
		return dur, err
	}
	if m.Parent != "" {
		d, err := st.releaseLocked(m.Parent)
		return dur + d, err
	}
	return dur, nil
}

// Release drops one reference from the snapshot at path — the owner no
// longer wants it. At refcount zero the manifest disappears (parents
// cascade) and the next GC reclaims any chunks nothing else references.
func (st *Store) Release(path string) (simclock.Duration, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	p := normPath(path)
	// The committed upload entry kept for idempotent CloseUpload replays
	// has outlived its purpose once the owner releases the snapshot.
	if up := st.uploads[p]; up != nil && up.committed {
		delete(st.uploads, p)
	}
	return st.releaseLocked(p)
}

// manifestLocked reads and decodes the manifest for the snapshot at
// path. Caller holds st.mu.
func (st *Store) manifestLocked(path string) (*Manifest, simclock.Duration, error) {
	b, dur, err := st.fs.ReadFile(manifestPath(normPath(path)))
	if err != nil {
		return nil, dur, err
	}
	m, err := decodeManifest(b)
	return m, dur, err
}

// Manifest returns the committed manifest for the snapshot at path.
func (st *Store) Manifest(path string) (*Manifest, simclock.Duration, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.manifestLocked(path)
}

// Has reports whether a committed manifest exists for the snapshot at
// path.
func (st *Store) Has(path string) bool {
	return st.fs.Exists(manifestPath(normPath(path)))
}

// List returns the snapshot paths with committed manifests, sorted.
func (st *Store) List() []string {
	var out []string
	for _, mp := range st.fs.List(ManifestPrefix) {
		if strings.HasSuffix(mp, TmpSuffix) {
			continue
		}
		out = append(out, strings.TrimPrefix(mp, ManifestPrefix))
	}
	return out
}

// Stats summarizes the store for snapifyctl and the metrics collector.
type Stats struct {
	Manifests         int
	Chunks            int
	StoredBytes       int64 // physical chunk bytes resident
	LogicalBytes      int64 // sum of manifest sizes (pre-dedup)
	ReclaimableChunks int
	ReclaimableBytes  int64 // unreferenced chunk bytes a GC would sweep
}

// DedupRatio is logical over stored bytes — how many snapshot bytes
// each resident byte serves. 0 when the store is empty.
func (s Stats) DedupRatio() float64 {
	if s.StoredBytes == 0 {
		return 0
	}
	return float64(s.LogicalBytes) / float64(s.StoredBytes)
}

// Stats walks the manifests and chunk files. Metadata-only; it charges
// no virtual time (the ctl surface reports, it doesn't simulate).
func (st *Store) Stats() Stats {
	st.mu.Lock()
	defer st.mu.Unlock()
	var s Stats
	live := st.referencedLocked()
	for _, mp := range st.fs.List(ManifestPrefix) {
		if strings.HasSuffix(mp, TmpSuffix) {
			continue
		}
		s.Manifests++
		if b, _, err := st.fs.ReadFile(mp); err == nil {
			if m, err := decodeManifest(b); err == nil {
				s.LogicalBytes += m.Size
			}
		}
	}
	for _, prefix := range []string{ChunkPrefix, ColdPrefix} {
		for _, cp := range st.fs.List(prefix) {
			n, err := st.fs.Size(cp)
			if err != nil {
				continue
			}
			s.Chunks++
			s.StoredBytes += n
			if !live[strings.TrimPrefix(cp, prefix)] {
				s.ReclaimableChunks++
				s.ReclaimableBytes += n
			}
		}
	}
	return s
}

// referencedLocked builds the mark set: every digest referenced by a
// committed manifest or pinned by a pending upload. Caller holds st.mu.
func (st *Store) referencedLocked() map[string]bool {
	live := make(map[string]bool)
	for _, mp := range st.fs.List(ManifestPrefix) {
		if strings.HasSuffix(mp, TmpSuffix) {
			continue
		}
		b, _, err := st.fs.ReadFile(mp)
		if err != nil {
			continue
		}
		m, err := decodeManifest(b)
		if err != nil {
			continue
		}
		for _, d := range m.Chunks {
			live[d] = true
		}
	}
	for _, up := range st.uploads {
		// A committed upload's chunks are protected by its manifest (or
		// fair game once that manifest is released): the entry lingers
		// only so late CloseUpload calls from sibling streams stay
		// idempotent, and must not pin anything.
		if up.committed {
			continue
		}
		for _, d := range up.digests {
			live[d] = true
		}
	}
	return live
}
