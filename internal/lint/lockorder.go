package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder builds the module-wide mutex acquisition-order graph and
// reports cycles as potential deadlocks. An edge A→B is recorded when B
// is locked — directly, or anywhere in the static call graph below a call
// made — while A is held; two goroutines traversing a cycle from
// different entry points can each hold one lock and wait forever on the
// other. The scheduler, the snapshot store, and the simulated network all
// take locks on behalf of concurrently-running virtual processors, which
// is exactly the shape that breeds this bug.
//
// Lock identity is the declared variable or struct field (the
// types.Object of `(*Scheduler).mu`), so two instances of the same struct
// share a node. That approximation can in principle merge distinct
// instances into a spurious cycle; in exchange it needs no alias
// analysis, and the rule it enforces — one global acquisition order per
// lock *site* — is the discipline the codebase documents anyway.
// Self-edges are only reported for lexically nested acquisitions;
// call-graph expansion skips them, because "a method of the same struct
// locks its own mu" is usually a different instance.
var LockOrder = &Analyzer{
	Name:   "lockorder",
	Doc:    "mutex acquisition order must be acyclic module-wide (a cycle is a potential deadlock)",
	Module: true,
	Run:    runLockOrder,
}

// lockEdge is one ordered pair in the acquisition graph.
type lockEdge struct{ from, to types.Object }

// heldCall is a call made while locks were held, expanded against the
// callee's transitively-acquired lock set once that fixpoint is known.
type heldCall struct {
	callee *types.Func
	impls  []*types.Func
	held   []types.Object
	pos    token.Pos
}

type lockOrderState struct {
	pass    *Pass
	prog    *Program
	display map[types.Object]string
	order   []types.Object // first-seen order, for deterministic iteration
	direct  map[*types.Func][]types.Object
	edges   map[lockEdge]token.Pos // first witness site per edge
	calls   []heldCall
}

func runLockOrder(p *Pass) {
	st := &lockOrderState{
		pass:    p,
		prog:    p.Prog,
		display: map[types.Object]string{},
		direct:  map[*types.Func][]types.Object{},
		edges:   map[lockEdge]token.Pos{},
	}
	for _, info := range p.Prog.FuncsInOrder() {
		w := &lockWalker{st: st, fn: info}
		w.walkStmts(info.Decl.Body.List, nil)
	}
	st.expandCalls()
	st.reportCycles()
}

// note registers a lock object on first sight and returns it.
func (st *lockOrderState) note(obj types.Object, display string) types.Object {
	if _, ok := st.display[obj]; !ok {
		st.display[obj] = display
		st.order = append(st.order, obj)
	}
	return obj
}

func (st *lockOrderState) addEdge(from, to types.Object, pos token.Pos) {
	e := lockEdge{from, to}
	if _, ok := st.edges[e]; !ok {
		st.edges[e] = pos
	}
}

func (st *lockOrderState) addDirect(fn *types.Func, obj types.Object) {
	for _, have := range st.direct[fn] {
		if have == obj {
			return
		}
	}
	st.direct[fn] = append(st.direct[fn], obj)
}

// expandCalls computes each function's transitively-acquired lock set over
// the call graph, then turns every held-site call into edges from the
// held locks to everything the callee may acquire.
func (st *lockOrderState) expandCalls() {
	acquired := map[*types.Func][]types.Object{}
	for fn, locks := range st.direct {
		acquired[fn] = append([]types.Object(nil), locks...)
	}
	add := func(fn *types.Func, obj types.Object) bool {
		for _, have := range acquired[fn] {
			if have == obj {
				return false
			}
		}
		acquired[fn] = append(acquired[fn], obj)
		return true
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range st.prog.funcOrder {
			for _, site := range st.prog.Funcs[fn].Calls {
				for _, target := range callTargets(st.prog, site) {
					for _, obj := range acquired[target] {
						if add(fn, obj) {
							changed = true
						}
					}
				}
			}
		}
	}
	for _, hc := range st.calls {
		var targets []*types.Func
		if _, ok := st.prog.Funcs[hc.callee]; ok {
			targets = append(targets, hc.callee)
		}
		targets = append(targets, hc.impls...)
		for _, t := range targets {
			for _, to := range acquired[t] {
				for _, from := range hc.held {
					if from == to {
						continue // see the instance-identity note above
					}
					st.addEdge(from, to, hc.pos)
				}
			}
		}
	}
}

// callTargets lists the declared functions a call site can reach.
func callTargets(prog *Program, site CallSite) []*types.Func {
	var out []*types.Func
	if _, ok := prog.Funcs[site.Callee]; ok {
		out = append(out, site.Callee)
	}
	out = append(out, site.Impls...)
	return out
}

// reportCycles finds strongly connected components of the edge graph and
// reports each cycle once, at its lexically first witness site.
func (st *lockOrderState) reportCycles() {
	// Deterministic adjacency: nodes in first-seen order, successors
	// sorted by display name.
	succs := map[types.Object][]types.Object{}
	for e := range st.edges {
		succs[e.from] = append(succs[e.from], e.to)
	}
	for _, list := range succs {
		sort.Slice(list, func(i, j int) bool { return st.display[list[i]] < st.display[list[j]] })
	}

	// Tarjan's SCC algorithm, iterative state kept simple via recursion
	// (lock graphs are tiny).
	index := map[types.Object]int{}
	low := map[types.Object]int{}
	onStack := map[types.Object]bool{}
	var stack []types.Object
	next := 0
	var sccs [][]types.Object
	var strongconnect func(v types.Object)
	strongconnect = func(v types.Object) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range succs[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []types.Object
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, v := range st.order {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}

	for _, scc := range sccs {
		if len(scc) == 1 {
			if _, self := st.edges[lockEdge{scc[0], scc[0]}]; !self {
				continue
			}
		}
		st.reportCycle(scc)
	}
}

func (st *lockOrderState) reportCycle(scc []types.Object) {
	in := map[types.Object]bool{}
	for _, v := range scc {
		in[v] = true
	}
	// Collect the cycle's edges sorted by (from, to) display name; the
	// report anchors at the earliest witness position.
	type witness struct {
		from, to types.Object
		pos      token.Pos
	}
	var ws []witness
	for e, pos := range st.edges {
		if in[e.from] && in[e.to] {
			ws = append(ws, witness{e.from, e.to, pos})
		}
	}
	sort.Slice(ws, func(i, j int) bool {
		if a, b := st.display[ws[i].from], st.display[ws[j].from]; a != b {
			return a < b
		}
		return st.display[ws[i].to] < st.display[ws[j].to]
	})
	at := ws[0].pos
	for _, w := range ws {
		if w.pos < at {
			at = w.pos
		}
	}
	fset := st.pass.Fset()
	var parts []string
	for _, w := range ws {
		p := fset.Position(w.pos)
		parts = append(parts, fmt.Sprintf("%s -> %s (%s:%d)",
			st.display[w.from], st.display[w.to], shortFile(p.Filename), p.Line))
	}
	var names []string
	for _, v := range scc {
		names = append(names, st.display[v])
	}
	sort.Strings(names)
	st.pass.Reportf(at, "mutex acquisition-order cycle among {%s}: %s; pick one global order and acquire in it everywhere",
		strings.Join(names, ", "), strings.Join(parts, ", "))
}

func shortFile(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// lockWalker walks one function body lexically, tracking the held stack.
type lockWalker struct {
	st *lockOrderState
	fn *FuncInfo
}

func (w *lockWalker) info() *types.Info { return w.fn.Pkg.Info }

func cloneHeld(held []types.Object) []types.Object {
	return append([]types.Object(nil), held...)
}

func (w *lockWalker) walkStmts(list []ast.Stmt, held []types.Object) []types.Object {
	for _, s := range list {
		held = w.walkStmt(s, held)
	}
	return held
}

func (w *lockWalker) walkStmt(s ast.Stmt, held []types.Object) []types.Object {
	switch stmt := s.(type) {
	case *ast.ExprStmt:
		if obj, op, ok := w.lockOp(stmt.X); ok {
			switch op {
			case "Lock", "RLock":
				for _, h := range held {
					w.st.addEdge(h, obj, stmt.Pos())
				}
				w.st.addDirect(w.fn.Func, obj)
				return append(held, obj)
			case "Unlock", "RUnlock":
				for i := len(held) - 1; i >= 0; i-- {
					if held[i] == obj {
						return append(cloneHeld(held[:i]), held[i+1:]...)
					}
				}
			}
			return held
		}
		w.scanCalls(stmt.X, held)
	case *ast.DeferStmt:
		// `defer mu.Unlock()` keeps the lock held for the rest of the
		// body; a deferred call into other code runs at exit, when locks
		// taken here are (lexically) still held — scan it conservatively.
		if _, _, ok := w.lockOp(stmt.Call); !ok {
			w.scanCalls(stmt.Call, held)
		}
	case *ast.GoStmt:
		// The goroutine runs with its own (empty) held set; only the
		// argument expressions evaluate here.
		for _, a := range stmt.Call.Args {
			w.scanCalls(a, held)
		}
	case *ast.AssignStmt:
		for _, e := range stmt.Rhs {
			w.scanCalls(e, held)
		}
	case *ast.DeclStmt, *ast.ReturnStmt, *ast.IncDecStmt, *ast.SendStmt:
		w.scanCalls(s, held)
	case *ast.BlockStmt:
		return w.walkStmts(stmt.List, held)
	case *ast.IfStmt:
		if stmt.Init != nil {
			held = w.walkStmt(stmt.Init, held)
		}
		w.scanCalls(stmt.Cond, held)
		w.walkStmts(stmt.Body.List, cloneHeld(held))
		if stmt.Else != nil {
			w.walkStmt(stmt.Else, cloneHeld(held))
		}
	case *ast.ForStmt:
		if stmt.Init != nil {
			held = w.walkStmt(stmt.Init, held)
		}
		if stmt.Cond != nil {
			w.scanCalls(stmt.Cond, held)
		}
		body := cloneHeld(held)
		body = w.walkStmts(stmt.Body.List, body)
		if stmt.Post != nil {
			w.walkStmt(stmt.Post, body)
		}
	case *ast.RangeStmt:
		w.scanCalls(stmt.X, held)
		w.walkStmts(stmt.Body.List, cloneHeld(held))
	case *ast.SwitchStmt:
		if stmt.Init != nil {
			held = w.walkStmt(stmt.Init, held)
		}
		if stmt.Tag != nil {
			w.scanCalls(stmt.Tag, held)
		}
		for _, c := range stmt.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body, cloneHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range stmt.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body, cloneHeld(held))
			}
		}
	case *ast.SelectStmt:
		for _, c := range stmt.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.walkStmts(cc.Body, cloneHeld(held))
			}
		}
	case *ast.LabeledStmt:
		return w.walkStmt(stmt.Stmt, held)
	}
	return held
}

// scanCalls records every module call made under held locks. Function
// literals are skipped: they run later, under whatever is held then.
func (w *lockWalker) scanCalls(n ast.Node, held []types.Object) {
	if n == nil || len(held) == 0 {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch e := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			callee := calleeFunc(w.info(), e)
			if callee == nil {
				return true
			}
			var impls []*types.Func
			if site, ok := w.st.prog.SiteOf(e); ok {
				impls = site.Impls
			}
			if _, declared := w.st.prog.Funcs[callee]; declared || len(impls) > 0 {
				w.st.calls = append(w.st.calls, heldCall{
					callee: callee,
					impls:  impls,
					held:   cloneHeld(held),
					pos:    e.Pos(),
				})
			}
		}
		return true
	})
}

// lockOp classifies e as a Lock/RLock/Unlock/RUnlock call on a
// sync.Mutex/RWMutex and resolves the mutex to its declared object.
func (w *lockWalker) lockOp(e ast.Expr) (types.Object, string, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return nil, "", false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	f, ok := w.info().Uses[sel.Sel].(*types.Func)
	if !ok || f.Pkg() == nil || f.Pkg().Path() != "sync" {
		return nil, "", false
	}
	switch f.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return nil, "", false
	}
	obj, display := w.lockIdent(ast.Unparen(sel.X))
	if obj == nil {
		return nil, "", false
	}
	return w.st.note(obj, display), f.Name(), true
}

// lockIdent resolves the mutex expression to the declared variable or
// field, with a stable display name ("sched.fleetMu", "Scheduler.mu").
func (w *lockWalker) lockIdent(x ast.Expr) (types.Object, string) {
	switch e := x.(type) {
	case *ast.Ident:
		obj := w.info().Uses[e]
		if obj == nil {
			obj = w.info().Defs[e]
		}
		if obj == nil {
			return nil, ""
		}
		if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			return obj, obj.Pkg().Name() + "." + obj.Name()
		}
		return obj, obj.Name()
	case *ast.SelectorExpr:
		obj := w.info().Uses[e.Sel]
		if obj == nil {
			return nil, ""
		}
		owner := ""
		if tv, ok := w.info().Types[e.X]; ok {
			owner = typeShortName(tv.Type)
		}
		if owner == "" {
			return obj, obj.Name()
		}
		return obj, owner + "." + obj.Name()
	}
	return nil, ""
}

// typeShortName renders a type as its bare named-type name.
func typeShortName(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}
