package experiments

import (
	"encoding/json"
	"strings"
	"testing"

	"snapify/internal/simclock"
)

// TestParallelCaptureShape runs the stream sweep on a smoke-sized image
// (the full 8 GiB sweep is scripts/bench.sh) and pins the acceptance
// shape: 4 streams >= 2x over serial, monotone speedup, byte-identical
// snapshots across all stream counts.
func TestParallelCaptureShape(t *testing.T) {
	res, err := ParallelCapture(256*simclock.MiB, ParallelCaptureStreams)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.CheckShape(); err != nil {
		t.Errorf("%v\n%s", err, res.Render())
	}
	if got := len(res.Rows); got != len(ParallelCaptureStreams) {
		t.Fatalf("rows = %d, want %d", got, len(ParallelCaptureStreams))
	}
	// Serial capture is page-walk bound: the sustained rate must sit at
	// the model's 250 MiB/s, and the parallel rows must clear it.
	if r := res.Rows[0].ThroughputMiBs; r < 180 || r > 260 {
		t.Errorf("serial throughput %.0f MiB/s, want near the 250 MiB/s page-walk bound", r)
	}
	out, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back ParallelCaptureResult
	if err := json.Unmarshal(out, &back); err != nil {
		t.Fatalf("BENCH JSON does not round-trip: %v", err)
	}
	if back.Benchmark != "parallel-capture" || len(back.Rows) != len(res.Rows) {
		t.Errorf("JSON round-trip lost data: %+v", back)
	}
	if !strings.Contains(res.Render(), "Streams") {
		t.Error("render missing header")
	}
}

// TestParallelCaptureRejectsBadSweep pins the serial-baseline contract.
func TestParallelCaptureRejectsBadSweep(t *testing.T) {
	if _, err := ParallelCapture(simclock.MiB, []int{2, 4}); err == nil {
		t.Error("sweep without a serial baseline must be rejected")
	}
	if _, err := ParallelCapture(simclock.MiB, nil); err == nil {
		t.Error("empty sweep must be rejected")
	}
}
