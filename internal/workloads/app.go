package workloads

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"

	"snapify/internal/coi"
	"snapify/internal/platform"
	"snapify/internal/proc"
	"snapify/internal/simclock"
	"snapify/internal/simnet"
)

// Region and progress bookkeeping names.
const (
	hostDataRegion = "host_data"
	progressRegion = "app_progress"
	deviceHeap     = "private"
)

var binarySerial atomic.Int64

// RegisterBinary builds and registers the device binary for spec and
// returns its unique name. The binary has the app's private heap and one
// resumable kernel that mixes the input buffer into a running checksum,
// one step at a time, with all progress in device memory.
func RegisterBinary(s Spec) string {
	name := fmt.Sprintf("wl_%s_%d", s.Code, binarySerial.Add(1))
	bin := coi.NewBinary(name)
	bin.AddRegion(deviceHeap, proc.RegionHeap, s.DeviceMem, 0)
	steps := s.StepsPerCall
	if steps < 1 {
		steps = 1
	}
	perStep := s.ComputePerCall / simclock.Duration(steps)
	bin.Register("kernel", func(ctx *coi.RunContext, args []byte) ([]byte, error) {
		bufID := int(binary.BigEndian.Uint32(args))
		callIdx := binary.BigEndian.Uint64(args[4:])
		inBytes := int64(binary.BigEndian.Uint64(args[12:]))

		heap := ctx.Region(deviceHeap)
		buf := ctx.Buffer(bufID)
		// Device-side progress: [call u64 | step u64 | checksum u64]. The
		// step counter is keyed by the call index, so a snapshot at any
		// step boundary — including after the final step but before the
		// result send — re-enters without redoing or skipping work.
		st := make([]byte, 24)
		heap.ReadAt(st, 0)
		storedCall := binary.BigEndian.Uint64(st[:8])
		step := binary.BigEndian.Uint64(st[8:16])
		sum := binary.BigEndian.Uint64(st[16:])
		if storedCall != callIdx {
			// A fresh call, not a re-entry.
			step = 0
			binary.BigEndian.PutUint64(st[:8], callIdx)
			binary.BigEndian.PutUint64(st[8:16], 0)
			heap.WriteAt(st, 0)
		}
		sliceLen := inBytes / int64(steps)
		if sliceLen < 1 {
			sliceLen = 1
		}
		page := make([]byte, sliceLen)
		for ; step < uint64(steps); step++ {
			step := step
			if err := ctx.Step(func() {
				off := (int64(step) * sliceLen) % buf.Size()
				n := sliceLen
				if off+n > buf.Size() {
					n = buf.Size() - off
				}
				buf.ReadAt(page[:n], off)
				for _, v := range page[:n] {
					sum = sum*1099511628211 + uint64(v)
				}
				sum += callIdx
				binary.BigEndian.PutUint64(st[8:16], step+1)
				binary.BigEndian.PutUint64(st[16:], sum)
				heap.WriteAt(st, 0)
				// Dirty a rotating page of the private heap, as a real
				// kernel's working set would.
				heap.WriteAt(st[:8], 4096+(int64(callIdx)*4096)%(4*simclock.MiB))
				ctx.Compute(perStep)
			}); err != nil {
				return nil, err
			}
		}
		out := make([]byte, 8)
		binary.BigEndian.PutUint64(out, sum)
		return out, nil
	})
	coi.RegisterBinary(bin)
	return name
}

// Instance is one running benchmark: the host process, its offload
// process, and the driver state.
type Instance struct {
	Spec Spec
	Plat *platform.Platform
	Host *proc.Process
	TL   *simclock.Timeline
	CP   *coi.Process
	PL   *coi.Pipeline
	Buf  *coi.Buffer

	lastSum uint64
}

// Launch starts spec on the given device, allocating the host data, the
// COI buffer (the local store), and the pipeline.
func Launch(plat *platform.Platform, s Spec, dev simnet.NodeID) (*Instance, error) {
	host := plat.Procs.Spawn("host_"+s.Code, simnet.HostNode, plat.Host().Mem)
	in, err := LaunchWithHost(plat, s, dev, host, simclock.NewTimeline())
	if err != nil {
		host.Terminate()
	}
	return in, err
}

// LaunchWithHost starts spec inside an existing host process (an MPI rank
// launches its per-rank zone this way).
func LaunchWithHost(plat *platform.Platform, s Spec, dev simnet.NodeID, host *proc.Process, tl *simclock.Timeline) (*Instance, error) {
	fail := func(err error) (*Instance, error) {
		return nil, err
	}
	if _, err := host.AddRegion(hostDataRegion, proc.RegionHeap, s.HostMem, 0); err != nil {
		return fail(err)
	}
	if _, err := host.AddRegion(progressRegion, proc.RegionData, 4096, 0); err != nil {
		return fail(err)
	}
	binName := RegisterBinary(s)
	cp, err := coi.CreateProcess(plat, host, tl, dev, binName)
	if err != nil {
		return fail(err)
	}
	pl, err := cp.CreatePipeline()
	if err != nil {
		return fail(err)
	}
	buf, err := cp.CreateBuffer(s.LocalStore)
	if err != nil {
		return fail(err)
	}
	return &Instance{Spec: s, Plat: plat, Host: host, TL: tl, CP: cp, PL: pl, Buf: buf}, nil
}

// Attach rebuilds an Instance around a restarted application (the host
// process and handle restored by core.RestartApp). The driver resumes from
// the progress counter in the restored host memory.
func Attach(plat *platform.Platform, s Spec, host *proc.Process, cp *coi.Process) (*Instance, error) {
	pls := cp.Pipelines()
	if len(pls) != 1 {
		return nil, fmt.Errorf("workloads: restored app has %d pipelines", len(pls))
	}
	bufs := cp.Buffers()
	if len(bufs) != 1 {
		return nil, fmt.Errorf("workloads: restored app has %d buffers", len(bufs))
	}
	var buf *coi.Buffer
	for _, b := range bufs {
		buf = b
	}
	return &Instance{Spec: s, Plat: plat, Host: host, TL: cp.Timeline(), CP: cp, PL: pls[0], Buf: buf}, nil
}

// Progress returns the number of completed offload calls.
func (in *Instance) Progress() int {
	r := in.Host.Region(progressRegion)
	b := make([]byte, 8)
	r.ReadAt(b, 0)
	return int(binary.BigEndian.Uint64(b))
}

func (in *Instance) setProgress(n int) {
	r := in.Host.Region(progressRegion)
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, uint64(n))
	r.WriteAt(b, 0)
}

// RunCalls executes up to n further offload calls (fewer if the run
// completes) and returns the number executed.
func (in *Instance) RunCalls(n int) (int, error) {
	s := in.Spec
	model := in.Plat.Model()
	done := 0
	inData := make([]byte, s.InPerCall)
	outData := make([]byte, s.OutPerCall)
	for done < n {
		call := in.Progress()
		if call >= s.Calls {
			break
		}
		// Host-side step: produce the input block (deterministic content)
		// and dirty a page of host data.
		for i := 0; i < len(inData); i += 251 {
			inData[i] = byte(call + i)
		}
		in.TL.Advance(model.HostMemcpy(s.InPerCall))
		hd := in.Host.Region(hostDataRegion)
		hd.WriteAt(inData[:min64(4096, s.InPerCall)], (int64(call)*4096)%(4*simclock.MiB))

		// Transfer in, run, transfer out — the offload pragma's in/out
		// clauses.
		off := (int64(call) * s.InPerCall) % s.LocalStore
		nIn := min64(s.InPerCall, s.LocalStore-off)
		if err := in.Buf.Write(inData[:nIn], off); err != nil {
			return done, err
		}
		args := make([]byte, 20)
		binary.BigEndian.PutUint32(args, uint32(in.Buf.ID()))
		binary.BigEndian.PutUint64(args[4:], uint64(call))
		binary.BigEndian.PutUint64(args[12:], uint64(s.InPerCall))
		out, err := in.PL.RunFunction("kernel", args)
		if err != nil {
			return done, err
		}
		in.lastSum = binary.BigEndian.Uint64(out)
		if s.OutPerCall > 0 {
			nOut := min64(s.OutPerCall, s.LocalStore)
			if err := in.Buf.Read(outData[:nOut], 0); err != nil {
				return done, err
			}
		}
		in.setProgress(call + 1)
		done++
	}
	return done, nil
}

// Run executes the benchmark to completion and returns its checksum.
func (in *Instance) Run() (uint64, error) {
	if _, err := in.RunCalls(in.Spec.Calls); err != nil {
		return 0, err
	}
	return in.Checksum(), nil
}

// Checksum returns the device-side checksum after the last completed call.
func (in *Instance) Checksum() uint64 { return in.lastSum }

// Runtime returns the application's virtual runtime so far.
func (in *Instance) Runtime() simclock.Duration { return in.TL.Now() }

// Done reports whether all calls have completed.
func (in *Instance) Done() bool { return in.Progress() >= in.Spec.Calls }

// Close tears the application down.
func (in *Instance) Close() {
	in.Host.Terminate()
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
