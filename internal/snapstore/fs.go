package snapstore

import (
	"io"

	"snapify/internal/blob"
	"snapify/internal/simclock"
	"snapify/internal/vfs"
)

// FS overlays the store on a node file system: reads of a path with a
// committed manifest assemble the snapshot from store chunks; every
// other operation passes through. Mounting this as the host daemon's
// file system makes the entire existing read path — serial restores,
// striped parallel restores, delta-chain reads, size probes — work
// unchanged against store-resident snapshots.
type FS struct {
	store *Store
	under vfs.NodeFS
}

// Overlay mounts the store over under.
func Overlay(store *Store, under vfs.NodeFS) *FS {
	return &FS{store: store, under: under}
}

// Create passes through: plain (non-store) snapshot writes land on the
// underlying file system exactly as before.
func (f *FS) Create(path string) (vfs.Writer, error) { return f.under.Create(path) }

// CreateSparse passes through for striped plain writes.
func (f *FS) CreateSparse(path string, size int64) (vfs.SparseWriter, error) {
	return f.under.(vfs.SparseFS).CreateSparse(path, size)
}

// Open prefers a plain file at path, falling back to the store.
func (f *FS) Open(path string) (vfs.Reader, error) {
	if r, err := f.under.Open(path); err == nil {
		return r, nil
	}
	return f.openStore(path, -1, -1)
}

// OpenRange prefers a plain file, falling back to the store.
func (f *FS) OpenRange(path string, off, n int64) (vfs.Reader, error) {
	if r, err := f.under.(vfs.RangeFS).OpenRange(path, off, n); err == nil {
		return r, nil
	}
	return f.openStore(path, off, n)
}

// openStore builds a chunk-assembling reader over [off, off+n) of the
// store-resident snapshot at path (off < 0 means the whole file).
func (f *FS) openStore(path string, off, n int64) (vfs.Reader, error) {
	m, _, err := f.store.Manifest(path)
	if err != nil {
		return nil, err
	}
	if off < 0 {
		off, n = 0, m.Size
	}
	if off+n > m.Size {
		return nil, io.ErrUnexpectedEOF
	}
	return &chunkReader{store: f.store, m: m, off: off, end: off + n, total: n}, nil
}

// chunkReader streams a byte range of a manifest by lazily fetching the
// chunks it crosses. Each chunk's read cost is charged once, on the
// Next call that first touches it — back-to-back small Nexts inside one
// chunk don't re-pay the chunk fetch.
type chunkReader struct {
	store *Store
	m     *Manifest
	off   int64 // next byte to return
	end   int64
	total int64 // length of the opened range, constant across Next

	cur      blob.Blob // chunk currently buffered
	curIdx   int
	curValid bool
}

// Size returns the length of the opened range.
func (r *chunkReader) Size() int64 { return r.total }

// Next returns the next at most max bytes and the virtual time to fetch
// them from the store.
func (r *chunkReader) Next(max int64) (blob.Blob, simclock.Duration, error) {
	if r.off >= r.end {
		return blob.Blob{}, 0, io.EOF
	}
	idx := int(r.off / r.m.ChunkBytes)
	var dur simclock.Duration
	if !r.curValid || r.curIdx != idx {
		b, d, err := r.store.ReadChunk(r.m.Chunks[idx])
		if err != nil {
			return blob.Blob{}, d, err
		}
		r.cur, r.curIdx, r.curValid = b, idx, true
		dur += d
	}
	chunkStart := int64(idx) * r.m.ChunkBytes
	n := chunkStart + r.cur.Len() - r.off
	if n > max {
		n = max
	}
	if rem := r.end - r.off; n > rem {
		n = rem
	}
	out := r.cur.Slice(r.off-chunkStart, n)
	r.off += n
	return out, dur, nil
}

// Compile-time checks mirroring the vfs adapters: the overlay serves
// every interface the Snapify-IO daemon relies on.
var (
	_ vfs.NodeFS   = (*FS)(nil)
	_ vfs.SparseFS = (*FS)(nil)
	_ vfs.RangeFS  = (*FS)(nil)
)
