package coi

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"snapify/internal/phi"
	"snapify/internal/platform"
	"snapify/internal/proc"
	"snapify/internal/simclock"
	"snapify/internal/simnet"
)

// counterBinary builds a test binary with a resumable counting kernel: it
// adds the integers [0, n) into a sum stored in the "state" region, one
// per step, with all progress in the region.
func counterBinary(name string) *Binary {
	bin := NewBinary(name)
	bin.AddRegion("state", proc.RegionHeap, 1<<16, 0)
	bin.Register("count", func(ctx *RunContext, args []byte) ([]byte, error) {
		n := binary.BigEndian.Uint64(args)
		st := ctx.Region("state")
		buf := make([]byte, 16) // [i, sum]
		st.ReadAt(buf, 0)
		for {
			i := binary.BigEndian.Uint64(buf[:8])
			if i >= n {
				break
			}
			if err := ctx.Step(func() {
				sum := binary.BigEndian.Uint64(buf[8:])
				binary.BigEndian.PutUint64(buf[:8], i+1)
				binary.BigEndian.PutUint64(buf[8:], sum+i)
				st.WriteAt(buf, 0)
				ctx.Compute(time.Millisecond)
			}); err != nil {
				return nil, err
			}
		}
		out := make([]byte, 8)
		st.ReadAt(buf, 0)
		copy(out, buf[8:])
		return out, nil
	})
	bin.Register("sum_buffer", func(ctx *RunContext, args []byte) ([]byte, error) {
		id := int(binary.BigEndian.Uint32(args))
		b := ctx.Buffer(id)
		p := make([]byte, b.Size())
		b.ReadAt(p, 0)
		var sum uint64
		for _, v := range p {
			sum += uint64(v)
		}
		out := make([]byte, 8)
		binary.BigEndian.PutUint64(out, sum)
		return out, nil
	})
	return bin
}

type env struct {
	plat *platform.Platform
	host *proc.Process
	tl   *simclock.Timeline
}

func newEnv(t *testing.T, devices int) *env {
	t.Helper()
	plat, err := platform.New(platform.Config{Server: phi.ServerConfig{Devices: devices}})
	if err != nil {
		t.Fatal(err)
	}
	if err := StartDaemons(plat); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { StopDaemons(plat) })
	return &env{
		plat: plat,
		host: plat.Procs.Spawn("host_proc", simnet.HostNode, plat.Host().Mem),
		tl:   simclock.NewTimeline(),
	}
}

func (e *env) create(t *testing.T, binName string, dev simnet.NodeID) *Process {
	t.Helper()
	cp, err := CreateProcess(e.plat, e.host, e.tl, dev, binName)
	if err != nil {
		t.Fatal(err)
	}
	return cp
}

func sumTo(n uint64) uint64 { return n * (n - 1) / 2 }

func runCount(t *testing.T, pl *Pipeline, n uint64) uint64 {
	t.Helper()
	args := make([]byte, 8)
	binary.BigEndian.PutUint64(args, n)
	out, err := pl.RunFunction("count", args)
	if err != nil {
		t.Fatal(err)
	}
	return binary.BigEndian.Uint64(out)
}

func TestCreateRunDestroy(t *testing.T) {
	RegisterBinary(counterBinary("app_basic"))
	e := newEnv(t, 1)
	cp := e.create(t, "app_basic", 1)
	if cp.State() != StateActive || cp.ID() == 0 {
		t.Fatalf("handle: state=%v id=%d", cp.State(), cp.ID())
	}
	pl, err := cp.CreatePipeline()
	if err != nil {
		t.Fatal(err)
	}
	if got := runCount(t, pl, 100); got != sumTo(100) {
		t.Errorf("count(100) = %d, want %d", got, sumTo(100))
	}
	// The offload compute time landed on the timeline.
	if e.tl.Now() < 100*time.Millisecond {
		t.Errorf("timeline %v missing offload compute", e.tl.Now())
	}
	if err := cp.Destroy(); err != nil {
		t.Fatal(err)
	}
	if cp.State() != StateDestroyed {
		t.Error("not destroyed")
	}
	if _, err := pl.RunFunctionAsync("count", make([]byte, 8)); err == nil {
		t.Error("run on destroyed process must fail")
	}
	// The daemon must not have marked the requested destroy as a crash.
	if DaemonAt(e.plat, 1).Crashed(cp.ID()) {
		t.Error("requested destroy recorded as crash")
	}
}

func TestUnknownBinaryAndFunction(t *testing.T) {
	RegisterBinary(counterBinary("app_known"))
	e := newEnv(t, 1)
	if _, err := CreateProcess(e.plat, e.host, e.tl, 1, "no_such_binary"); err == nil {
		t.Fatal("unknown binary must fail")
	}
	cp := e.create(t, "app_known", 1)
	pl, _ := cp.CreatePipeline()
	if _, err := pl.RunFunction("no_such_fn", nil); err == nil {
		t.Error("unknown function must fail")
	}
	cp.Destroy()
}

func TestBufferWriteReadThroughRDMA(t *testing.T) {
	RegisterBinary(counterBinary("app_buf"))
	e := newEnv(t, 1)
	cp := e.create(t, "app_buf", 1)
	defer cp.Destroy()

	buf, err := cp.CreateBuffer(1 << 16)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 1<<16)
	var want uint64
	for i := range data {
		data[i] = byte(i % 251)
		want += uint64(data[i])
	}
	if err := buf.Write(data, 0); err != nil {
		t.Fatal(err)
	}

	pl, _ := cp.CreatePipeline()
	args := make([]byte, 4)
	binary.BigEndian.PutUint32(args, uint32(buf.ID()))
	out, err := pl.RunFunction("sum_buffer", args)
	if err != nil {
		t.Fatal(err)
	}
	if got := binary.BigEndian.Uint64(out); got != want {
		t.Errorf("device-side checksum %d, want %d", got, want)
	}

	// Read back through RDMA.
	back := make([]byte, 1<<16)
	if err := buf.Read(back, 0); err != nil {
		t.Fatal(err)
	}
	for i := range back {
		if back[i] != data[i] {
			t.Fatalf("readback differs at %d", i)
		}
	}
	if err := buf.Destroy(); err != nil {
		t.Fatal(err)
	}
	if err := buf.Write(data, 0); err == nil {
		t.Error("write to destroyed buffer must fail")
	}
}

func TestBufferCreateFailsOnFullCard(t *testing.T) {
	RegisterBinary(counterBinary("app_full"))
	e := newEnv(t, 1)
	cp := e.create(t, "app_full", 1)
	defer cp.Destroy()
	free := e.plat.Device(1).Mem.Free()
	if _, err := cp.CreateBuffer(free + 1); err == nil {
		t.Fatal("buffer exceeding card memory must fail")
	}
	// The card must not leak the failed allocation.
	if _, err := cp.CreateBuffer(64 * simclock.MiB); err != nil {
		t.Fatalf("card unusable after failed create: %v", err)
	}
}

func TestHostProcessDeathCleansUpOffloadProcess(t *testing.T) {
	RegisterBinary(counterBinary("app_orphan"))
	e := newEnv(t, 1)
	cp := e.create(t, "app_orphan", 1)
	op, err := DaemonAt(e.plat, 1).Lookup(cp.ID())
	if err != nil {
		t.Fatal(err)
	}
	e.host.Terminate()
	waitFor(t, func() bool { return op.Proc().State() == proc.Terminated })
	// Daemon-driven cleanup is not a crash.
	if DaemonAt(e.plat, 1).Crashed(cp.ID()) {
		t.Error("host-death cleanup recorded as crash")
	}
}

func TestCrashDetection(t *testing.T) {
	RegisterBinary(counterBinary("app_crash"))
	e := newEnv(t, 1)
	cp := e.create(t, "app_crash", 1)
	op, _ := DaemonAt(e.plat, 1).Lookup(cp.ID())
	op.Proc().Terminate() // unannounced: a crash
	waitFor(t, func() bool { return DaemonAt(e.plat, 1).Crashed(cp.ID()) })
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition never became true")
}

// --- low-level snapify protocol drive (what internal/core orchestrates) ---

// snapPause runs the pause protocol: handshake, host-side drain, device
// drain with local-store save to dir.
func snapPause(t *testing.T, cp *Process, dir string) {
	t.Helper()
	if _, err := cp.DaemonRequest(opSnapifyPause, putU32(uint32(cp.ID())), opSnapifyPauseResp); err != nil {
		t.Fatalf("pause handshake: %v", err)
	}
	if _, err := cp.PauseChannels(); err != nil {
		t.Fatalf("host drain: %v", err)
	}
	payload := putU32(uint32(cp.ID()))
	payload = appendU64(payload, 0) // alignNs: tests drive the raw protocol at t=0
	payload = appendU32(payload, uint32(simnet.HostNode))
	payload = appendU32(payload, uint32(len(dir)))
	payload = append(payload, dir...)
	if _, err := cp.DaemonRequest(opSnapifyDrain, payload, opSnapifyDrainResp); err != nil {
		t.Fatalf("device drain: %v", err)
	}
}

func snapCapture(t *testing.T, cp *Process, dir string, terminate bool) {
	t.Helper()
	payload := putU32(uint32(cp.ID()))
	tb := byte(0)
	if terminate {
		tb = 1
	}
	payload = append(payload, tb, CaptureFull)
	payload = appendU16(payload, 0) // streams: serial
	payload = appendU64(payload, 0) // chunk: default
	payload = appendU64(payload, 0) // alignNs
	payload = appendU32(payload, uint32(len(dir)))
	payload = append(payload, dir...)
	payload = appendU16(payload, 0) // retry attempts: disabled
	payload = appendU64(payload, 0) // retry backoff
	if _, err := cp.DaemonRequest(opSnapifyCapture, payload, opSnapifyCaptureResp); err != nil {
		t.Fatalf("capture: %v", err)
	}
	if terminate {
		cp.MarkSwapped()
	}
}

func snapResume(t *testing.T, cp *Process) {
	t.Helper()
	if _, err := cp.DaemonRequest(opSnapifyResume, putU32(uint32(cp.ID())), opSnapifyResumeResp); err != nil {
		t.Fatalf("resume: %v", err)
	}
	cp.ResumeChannels()
}

func snapRestore(t *testing.T, cp *Process, dev simnet.NodeID, dir string) []RemapEntry {
	t.Helper()
	payload := appendU32(nil, uint32(len(cp.BinaryName())))
	payload = append(payload, cp.BinaryName()...)
	payload = appendU32(payload, uint32(len(dir)))
	payload = append(payload, dir...)
	payload = appendU32(payload, uint32(simnet.HostNode))
	payload = appendU32(payload, uint32(len(dir)))
	payload = append(payload, dir...)
	payload = appendU32(payload, 0) // no deltas
	payload = appendU16(payload, 0) // streams: serial
	payload = appendU64(payload, 0) // chunk: default
	payload = appendU64(payload, 0) // alignNs
	payload = appendU16(payload, 0) // retry attempts: disabled
	payload = appendU64(payload, 0) // retry backoff

	// The restore request goes to the target card's daemon on a fresh
	// connection (the old card may not even host the process anymore).
	ep, err := cp.plat.Net.Connect(simnet.HostNode, addrOf(dev))
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	if _, err := ep.Send(append([]byte{opSnapifyRestore}, payload...)); err != nil {
		t.Fatal(err)
	}
	raw, _, err := ep.Recv()
	if err != nil {
		t.Fatal(err)
	}
	u, err := expectOp(raw, opSnapifyRestoreResp)
	if err != nil {
		t.Fatal(err)
	}
	if u[0] != 0 {
		t.Fatalf("restore failed: %s", u[1:])
	}
	newID := int(u32(u[1:5]))
	rest := u[29:] // skip durations (8+8+8)
	ports := parsePorts(rest)
	remap, err := cp.Rebind(dev, newID, ports)
	if err != nil {
		t.Fatalf("rebind: %v", err)
	}
	return remap
}

func addrOf(dev simnet.NodeID) (a scifAddr) { return scifAddr{Node: dev, Port: DaemonPort} }

type scifAddr = struct {
	Node simnet.NodeID
	Port int
}

func TestPauseDrainsAllChannels(t *testing.T) {
	RegisterBinary(counterBinary("app_drain"))
	e := newEnv(t, 1)
	cp := e.create(t, "app_drain", 1)
	pl, _ := cp.CreatePipeline()
	runCount(t, pl, 50)

	snapPause(t, cp, "/snap/drain")
	// The consistency invariant: zero queued bytes on every host endpoint
	// and every device endpoint.
	if n := cp.QueuedBytesAll(); n != 0 {
		t.Errorf("host endpoints hold %d queued bytes at pause", n)
	}
	op, _ := DaemonAt(e.plat, 1).Lookup(cp.ID())
	for _, ep := range op.Endpoints() {
		if n := ep.QueuedBytes(); n != 0 {
			t.Errorf("device endpoint %v holds %d queued bytes at pause", ep.LocalAddr(), n)
		}
	}
	// Local store was saved to the host.
	if !e.plat.Host().FS.Exists("/snap/drain/" + LocalStorePrefix + "coibuf_0") {
		// No buffers created: no local store files is fine. Create one
		// next time; here just resume.
		_ = op
	}
	snapResume(t, cp)
	// The app continues normally after resume.
	if got := runCount(t, pl, 50); got != sumTo(50) {
		t.Errorf("post-resume count = %d, want %d", got, sumTo(50))
	}
	cp.Destroy()
}

func TestPauseBlocksNewOffloadCalls(t *testing.T) {
	RegisterBinary(counterBinary("app_block"))
	e := newEnv(t, 1)
	cp := e.create(t, "app_block", 1)
	pl, _ := cp.CreatePipeline()
	snapPause(t, cp, "/snap/block")

	started := make(chan struct{})
	done := make(chan uint64, 1)
	go func() {
		close(started)
		done <- runCount(t, pl, 10)
	}()
	<-started
	select {
	case <-done:
		t.Fatal("offload call completed during pause")
	case <-time.After(30 * time.Millisecond):
	}
	snapResume(t, cp)
	select {
	case got := <-done:
		if got != sumTo(10) {
			t.Errorf("blocked call result %d, want %d", got, sumTo(10))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked call never completed after resume")
	}
	cp.Destroy()
}

func TestSwapOutSwapInWithBuffers(t *testing.T) {
	RegisterBinary(counterBinary("app_swap"))
	e := newEnv(t, 1)
	cp := e.create(t, "app_swap", 1)
	pl, _ := cp.CreatePipeline()
	buf, err := cp.CreateBuffer(256 * 1024)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 256*1024)
	for i := range data {
		data[i] = byte(i)
	}
	if err := buf.Write(data, 0); err != nil {
		t.Fatal(err)
	}
	runCount(t, pl, 30)
	oldAddr := buf.RDMAAddr()
	oldID := cp.ID()

	dir := "/snap/swap"
	snapPause(t, cp, dir)
	snapCapture(t, cp, dir, true) // swap out: capture + terminate

	// The offload process is gone and card memory is freed; the daemon did
	// not mark a crash.
	waitFor(t, func() bool {
		_, err := DaemonAt(e.plat, 1).Lookup(oldID)
		return err != nil
	})
	if DaemonAt(e.plat, 1).Crashed(oldID) {
		t.Fatal("announced swap-out termination recorded as crash")
	}
	if cp.State() != StateSwapped {
		t.Fatal("handle not swapped")
	}
	// Snapshot artifacts exist on the host.
	hostFS := e.plat.Host().FS
	if !hostFS.Exists(dir+"/"+ContextFileName) || !hostFS.Exists(dir+"/"+LocalStorePrefix+"coibuf_0") {
		t.Fatalf("snapshot files missing: %v", hostFS.List(dir))
	}

	// Swap in.
	remap := snapRestore(t, cp, 1, dir)
	snapResume(t, cp)
	if cp.State() != StateActive {
		t.Fatal("handle not active after swap-in")
	}
	// The RDMA address changed and the remap table recorded it.
	if len(remap) != 1 || remap[0].Old != oldAddr || remap[0].New == oldAddr {
		t.Errorf("remap = %+v (old addr %#x)", remap, oldAddr)
	}
	if buf.RDMAAddr() == oldAddr {
		t.Error("buffer handle still holds the stale RDMA address")
	}

	// Buffer content survived the swap (via the local store).
	back := make([]byte, len(data))
	if err := buf.Read(back, 0); err != nil {
		t.Fatal(err)
	}
	for i := range back {
		if back[i] != data[i] {
			t.Fatalf("buffer content differs at %d after swap-in", i)
		}
	}
	// The counter state survived too: continuing to 60 picks up at 30.
	if got := runCount(t, pl, 60); got != sumTo(60) {
		t.Errorf("post-swap count = %d, want %d", got, sumTo(60))
	}
	cp.Destroy()
}

// TestRebindRemapOrderDeterministic pins the fix for a real defect the
// maporder analyzer caught: Rebind used to iterate the buffer map
// directly, so with several buffers the cmdBufferReregister wire
// requests — and the remap table, part of the restore transcript — came
// out in Go's randomized map order and differed run to run. The remap
// table must list buffers in ascending ID order, every buffer, exactly
// once.
func TestRebindRemapOrderDeterministic(t *testing.T) {
	RegisterBinary(counterBinary("app_remap_order"))
	e := newEnv(t, 1)
	cp := e.create(t, "app_remap_order", 1)
	const nbufs = 6
	bufs := make([]*Buffer, nbufs)
	for i := range bufs {
		b, err := cp.CreateBuffer(64 * 1024)
		if err != nil {
			t.Fatal(err)
		}
		bufs[i] = b
	}

	dir := "/snap/remap_order"
	snapPause(t, cp, dir)
	snapCapture(t, cp, dir, true)
	remap := snapRestore(t, cp, 1, dir)
	snapResume(t, cp)

	if len(remap) != nbufs {
		t.Fatalf("remap table has %d entries, want %d: %+v", len(remap), nbufs, remap)
	}
	for i := 1; i < len(remap); i++ {
		if remap[i-1].BufferID >= remap[i].BufferID {
			t.Fatalf("remap table not in ascending buffer-ID order: %+v", remap)
		}
	}
	// Each entry's new address is what the corresponding handle now holds.
	byID := map[int]RemapEntry{}
	for _, re := range remap {
		byID[re.BufferID] = re
	}
	for _, b := range bufs {
		re, ok := byID[b.ID()]
		if !ok {
			t.Fatalf("buffer %d missing from remap table %+v", b.ID(), remap)
		}
		if re.New != b.RDMAAddr() {
			t.Errorf("buffer %d: remap New %#x, handle holds %#x", b.ID(), re.New, b.RDMAAddr())
		}
	}
	cp.Destroy()
}

func TestMigrationAcrossDevices(t *testing.T) {
	RegisterBinary(counterBinary("app_migrate"))
	e := newEnv(t, 2)
	cp := e.create(t, "app_migrate", 1)
	pl, _ := cp.CreatePipeline()
	runCount(t, pl, 25)

	dir := "/snap/migrate"
	snapPause(t, cp, dir)
	snapCapture(t, cp, dir, true)
	remap := snapRestore(t, cp, 2, dir) // restore on the OTHER card
	_ = remap
	snapResume(t, cp)

	if cp.DeviceNode() != 2 {
		t.Fatalf("process on %v, want mic1", cp.DeviceNode())
	}
	if got := runCount(t, pl, 50); got != sumTo(50) {
		t.Errorf("post-migration count = %d, want %d", got, sumTo(50))
	}
	// The new card hosts the process; the old one is free of it.
	if _, err := DaemonAt(e.plat, 2).Lookup(cp.ID()); err != nil {
		t.Errorf("process not registered on target daemon: %v", err)
	}
	cp.Destroy()
}

func TestSnapshotMidOffloadFunction(t *testing.T) {
	// The hard case (Section 4.1, case 4): the snapshot lands while an
	// offload function is executing. The function's progress is in the
	// control and data regions; after restore it re-enters, finishes the
	// remaining steps, and the host's blocked RunFunction gets the right
	// answer.
	var firstRun atomic.Bool
	firstRun.Store(true)
	reached := make(chan struct{})
	release := make(chan struct{})

	bin := NewBinary("app_midfn")
	bin.AddRegion("state", proc.RegionHeap, 1<<16, 0)
	bin.Register("count", func(ctx *RunContext, args []byte) ([]byte, error) {
		n := binary.BigEndian.Uint64(args)
		st := ctx.Region("state")
		buf := make([]byte, 16)
		st.ReadAt(buf, 0)
		for {
			i := binary.BigEndian.Uint64(buf[:8])
			if i >= n {
				break
			}
			if err := ctx.Step(func() {
				sum := binary.BigEndian.Uint64(buf[8:])
				binary.BigEndian.PutUint64(buf[:8], i+1)
				binary.BigEndian.PutUint64(buf[8:], sum+i)
				st.WriteAt(buf, 0)
			}); err != nil {
				return nil, err
			}
			if i+1 == n/2 && firstRun.CompareAndSwap(true, false) {
				close(reached)
				<-release
			}
		}
		out := make([]byte, 8)
		st.ReadAt(buf, 0)
		copy(out, buf[8:])
		return out, nil
	})
	RegisterBinary(bin)

	e := newEnv(t, 1)
	cp := e.create(t, "app_midfn", 1)
	pl, _ := cp.CreatePipeline()

	const n = 1000
	args := make([]byte, 8)
	binary.BigEndian.PutUint64(args, n)
	h, err := pl.RunFunctionAsync("count", args)
	if err != nil {
		t.Fatal(err)
	}
	<-reached // the function is mid-flight at iteration n/2

	dir := "/snap/midfn"
	go func() { close(release) }() // let it keep stepping; pause races it
	snapPause(t, cp, dir)
	snapCapture(t, cp, dir, true)

	// At this point the host-side waiter is still pending.
	snapRestore(t, cp, 1, dir)
	snapResume(t, cp)

	out, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if got := binary.BigEndian.Uint64(out); got != sumTo(n) {
		t.Errorf("mid-function snapshot result = %d, want %d", got, sumTo(n))
	}
	cp.Destroy()
}

func TestHookCostsOnlyWhenEnabled(t *testing.T) {
	RegisterBinary(counterBinary("app_hooks"))
	run := func(noSnapify bool) simclock.Duration {
		plat, err := platform.New(platform.Config{Server: phi.ServerConfig{Devices: 1}, NoSnapify: noSnapify})
		if err != nil {
			t.Fatal(err)
		}
		if err := StartDaemons(plat); err != nil {
			t.Fatal(err)
		}
		defer StopDaemons(plat)
		host := plat.Procs.Spawn("host_proc", simnet.HostNode, plat.Host().Mem)
		tl := simclock.NewTimeline()
		cp, err := CreateProcess(plat, host, tl, 1, "app_hooks")
		if err != nil {
			t.Fatal(err)
		}
		pl, _ := cp.CreatePipeline()
		for i := 0; i < 20; i++ {
			args := make([]byte, 8)
			binary.BigEndian.PutUint64(args, 10)
			// Reset progress by running forward; counter keeps going, so
			// just issue calls — cost is what we measure.
			pl.RunFunction("count", args) //nolint:errcheck
		}
		cp.Destroy()
		return tl.Now()
	}
	with := run(false)
	without := run(true)
	if with <= without {
		t.Errorf("snapify hooks must add runtime: with=%v without=%v", with, without)
	}
	overhead := float64(with-without) / float64(without)
	if overhead > 0.05 {
		t.Errorf("hook overhead %.2f%% exceeds the paper's 5%% bound", overhead*100)
	}
}

func TestDuplicateDaemonStartRejected(t *testing.T) {
	e := newEnv(t, 1)
	if err := StartDaemons(e.plat); err == nil {
		t.Fatal("duplicate StartDaemons must fail")
	}
	_ = fmt.Sprint() // keep fmt imported
}

func TestCommandChannelsServeTraffic(t *testing.T) {
	RegisterBinary(counterBinary("app_channels"))
	e := newEnv(t, 1)
	cp := e.create(t, "app_channels", 1)
	defer cp.Destroy()

	// All three client-server channels answer pings concurrently.
	var wg sync.WaitGroup
	for _, name := range CommandChannelNames {
		c := cp.Command(name)
		if c == nil {
			t.Fatalf("missing channel %q", name)
		}
		for i := 0; i < 10; i++ {
			wg.Add(1)
			go func(c *ClientChan) {
				defer wg.Done()
				if err := c.Ping(); err != nil {
					t.Error(err)
				}
			}(c)
		}
	}
	wg.Wait()

	// After traffic, a pause still drains everything.
	snapPause(t, cp, "/snap/channels")
	if n := cp.QueuedBytesAll(); n != 0 {
		t.Errorf("queued bytes after ping traffic: %d", n)
	}
	snapResume(t, cp)
	if err := cp.Command("log").Ping(); err != nil {
		t.Errorf("ping after resume: %v", err)
	}
}
