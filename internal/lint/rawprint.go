package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// rawprintBanned are the fmt functions that write straight to standard
// output.
var rawprintBanned = map[string]bool{
	"Print":   true,
	"Printf":  true,
	"Println": true,
}

// RawPrint reports fmt.Print* calls inside internal/ packages, excepting
// the rendering layer (import paths ending in internal/obs). Library code
// that prints to stdout bypasses the observability surface: the figure it
// announces exists nowhere a trace or metrics consumer can see, and a
// benchmark's stdout stops being the CLI's to own. Libraries return
// values or emit spans/metrics through internal/obs; only the cmd/
// binaries (and the rendering layer itself) talk to the terminal.
var RawPrint = &Analyzer{
	Name: "rawprint",
	Doc:  "raw fmt.Print* in internal/ packages bypasses the observability layer; return values or emit via internal/obs (exempt), and print only from cmd/",
	Run:  runRawPrint,
}

func runRawPrint(p *Pass) {
	if !strings.Contains(p.Pkg.Path, "internal/") || strings.HasSuffix(p.Pkg.Path, "internal/obs") {
		return
	}
	info := p.Pkg.Info
	inspectFiles(p, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		f, ok := info.Uses[sel.Sel].(*types.Func)
		if !ok || f.Pkg() == nil || f.Pkg().Path() != "fmt" {
			return true
		}
		if rawprintBanned[f.Name()] {
			p.Reportf(sel.Pos(), "raw fmt.%s in an internal package bypasses the observability layer; return the value or record it via internal/obs", f.Name())
		}
		return true
	})
}
