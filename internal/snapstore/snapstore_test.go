package snapstore

import (
	"errors"
	"io"
	"strings"
	"testing"

	"snapify/internal/blob"
	"snapify/internal/faultinject"
	"snapify/internal/hostfs"
	"snapify/internal/obs"
	"snapify/internal/simclock"
	"snapify/internal/vfs"
)

// env is a store over a fresh host file system with a swappable fault
// injector (nil means no faults), mirroring how the platform wires the
// injector in lazily.
type env struct {
	st  *Store
	fs  *hostfs.FS
	inj *faultinject.Injector
}

func newEnv(t *testing.T) *env {
	t.Helper()
	m := simclock.Default()
	e := &env{fs: hostfs.New(m)}
	e.st = New(m, e.fs, obs.New(), func() *faultinject.Injector { return e.inj })
	return e
}

func (e *env) arm(f faultinject.Fault) { e.inj = faultinject.New(faultinject.Plan{f}, nil) }
func (e *env) disarm()                 { e.inj = nil }

// testContent builds deterministic literal content so different seeds
// give chunk sets that never collide.
func testContent(seed byte, n int64) blob.Blob {
	data := make([]byte, n)
	for i := range data {
		data[i] = seed + byte(i%251)
	}
	return blob.FromBytes(data)
}

// putAll drives the full writer protocol: negotiate, ship every needed
// chunk, close. It returns how many chunks the store asked for.
func putAll(t *testing.T, e *env, path, parent string, content blob.Blob, chunkBytes int64) int {
	t.Helper()
	digests := ChunkDigests(content, chunkBytes)
	need, committed, _, err := e.st.Negotiate(path, parent, content.Len(), chunkBytes, digests)
	if err != nil {
		t.Fatalf("negotiate %s: %v", path, err)
	}
	if committed {
		return 0
	}
	m := Manifest{Size: content.Len(), ChunkBytes: chunkBytes}
	for _, idx := range need {
		off := int64(idx) * chunkBytes
		if _, err := e.st.PutChunkAt(path, off, content.Slice(off, m.chunkLen(idx))); err != nil {
			t.Fatalf("put %s chunk %d: %v", path, idx, err)
		}
	}
	committed, _, err = e.st.CloseUpload(path)
	if err != nil {
		t.Fatalf("close %s: %v", path, err)
	}
	if !committed {
		t.Fatalf("close %s: upload complete but not committed", path)
	}
	return len(need)
}

// readAll assembles a store-resident snapshot through the overlay.
func readAll(t *testing.T, e *env, path string) blob.Blob {
	t.Helper()
	r, err := Overlay(e.st, vfs.Host(e.fs)).Open(path)
	if err != nil {
		t.Fatalf("overlay open %s: %v", path, err)
	}
	var parts []blob.Blob
	for {
		b, _, err := r.Next(1 << 20)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("overlay read %s: %v", path, err)
		}
		parts = append(parts, b)
	}
	return blob.Concat(parts...)
}

func TestUploadCommitAndCrossSnapshotDedup(t *testing.T) {
	e := newEnv(t)
	const chunk = 4096
	content := testContent(1, 4*chunk+100) // 5 chunks, last one short

	if got := putAll(t, e, "/snap/a/ctx", "", content, chunk); got != 5 {
		t.Fatalf("cold upload shipped %d chunks, want 5", got)
	}
	if !e.st.Has("/snap/a/ctx") {
		t.Fatal("manifest missing after commit")
	}
	// Same content under a second path: the negotiation finds every chunk
	// resident and commits without a single put.
	if got := putAll(t, e, "/snap/b/ctx", "", content, chunk); got != 0 {
		t.Fatalf("identical re-upload shipped %d chunks, want 0", got)
	}
	s := e.st.Stats()
	if s.Manifests != 2 || s.Chunks != 5 {
		t.Fatalf("stats after dedup: %+v", s)
	}
	if s.LogicalBytes != 2*content.Len() || s.StoredBytes != content.Len() {
		t.Fatalf("logical/stored bytes: %+v", s)
	}
	if r := s.DedupRatio(); r < 1.9 || r > 2.1 {
		t.Fatalf("dedup ratio %.2f, want ~2", r)
	}
	if got := readAll(t, e, "/snap/b/ctx"); !blob.Equal(got, content) {
		t.Fatal("deduped snapshot does not reassemble byte-identical")
	}
}

func TestPutChunkVerifiesDigestAndAlignment(t *testing.T) {
	e := newEnv(t)
	const chunk = 4096
	content := testContent(2, 2*chunk)
	digests := ChunkDigests(content, chunk)
	if _, _, _, err := e.st.Negotiate("/snap/p/ctx", "", content.Len(), chunk, digests); err != nil {
		t.Fatal(err)
	}
	// Right length, wrong bytes: rejected before anything is stored.
	if _, err := e.st.PutChunkAt("/snap/p/ctx", 0, testContent(99, chunk)); err == nil {
		t.Fatal("corrupt chunk admitted")
	}
	if e.fs.Exists(chunkPath(digests[0])) {
		t.Fatal("rejected chunk landed on disk")
	}
	if _, err := e.st.PutChunkAt("/snap/p/ctx", chunk/2, content.Slice(0, chunk)); err == nil {
		t.Fatal("misaligned offset admitted")
	}
	if _, err := e.st.PutChunkAt("/snap/p/ctx", 0, content.Slice(0, chunk)); err != nil {
		t.Fatal(err)
	}
	// Replaying the same chunk is a no-op, not an error.
	if _, err := e.st.PutChunkAt("/snap/p/ctx", 0, content.Slice(0, chunk)); err != nil {
		t.Fatalf("idempotent replay failed: %v", err)
	}
	if _, err := e.st.PutChunkAt("/snap/nobody", 0, content.Slice(0, chunk)); err == nil {
		t.Fatal("put without a negotiated upload admitted")
	}
}

func TestNegotiateRejectsBadGeometryAndParent(t *testing.T) {
	e := newEnv(t)
	const chunk = 4096
	content := testContent(3, 2*chunk)
	digests := ChunkDigests(content, chunk)
	if _, _, _, err := e.st.Negotiate("/snap/g", "", content.Len(), 0, digests); err == nil {
		t.Fatal("zero chunkBytes accepted")
	}
	if _, _, _, err := e.st.Negotiate("/snap/g", "", content.Len(), chunk, digests[:1]); err == nil {
		t.Fatal("digest count mismatch accepted")
	}
	if _, _, _, err := e.st.Negotiate("/snap/g", "/snap/noparent", content.Len(), chunk, digests); err == nil {
		t.Fatal("missing parent accepted")
	}
	if _, _, _, err := e.st.Negotiate("/snap/g", "/snap/g", content.Len(), chunk, digests); err == nil {
		t.Fatal("self-parent accepted")
	}
}

func TestReleaseCascadesDeltaChain(t *testing.T) {
	e := newEnv(t)
	const chunk = 4096
	base := testContent(4, 3*chunk)
	delta := testContent(5, 2*chunk)
	putAll(t, e, "/snap/base/ctx", "", base, chunk)
	putAll(t, e, "/snap/d1/delta", "/snap/base/ctx", delta, chunk)

	m, _, err := e.st.Manifest("/snap/base/ctx")
	if err != nil {
		t.Fatal(err)
	}
	if m.Refs != 2 {
		t.Fatalf("base refs %d, want 2 (holder + child)", m.Refs)
	}
	dm, _, err := e.st.Manifest("/snap/d1/delta")
	if err != nil {
		t.Fatal(err)
	}
	if dm.Parent != "/snap/base/ctx" || dm.Refs != 1 {
		t.Fatalf("delta manifest: %+v", dm)
	}
	if problems, _ := e.st.Verify(); len(problems) != 0 {
		t.Fatalf("verify: %v", problems)
	}

	// Releasing the delta cascades one reference off the base.
	if _, err := e.st.Release("/snap/d1/delta"); err != nil {
		t.Fatal(err)
	}
	if e.st.Has("/snap/d1/delta") {
		t.Fatal("released delta manifest still present")
	}
	m, _, err = e.st.Manifest("/snap/base/ctx")
	if err != nil {
		t.Fatal(err)
	}
	if m.Refs != 1 {
		t.Fatalf("base refs %d after delta release, want 1", m.Refs)
	}
	if _, err := e.st.Release("/snap/base/ctx"); err != nil {
		t.Fatal(err)
	}
	s := e.st.Stats()
	if s.Manifests != 0 || s.ReclaimableChunks != 5 {
		t.Fatalf("stats after release-all: %+v", s)
	}
	gs, _, err := e.st.GC(0)
	if err != nil {
		t.Fatal(err)
	}
	if gs.ChunksReclaimed != 5 || e.st.Stats().Chunks != 0 {
		t.Fatalf("gc after release-all: %+v, stats %+v", gs, e.st.Stats())
	}
}

func TestPendingUploadPinsChunksUntilAbort(t *testing.T) {
	e := newEnv(t)
	const chunk = 4096
	content := testContent(6, 2*chunk)
	digests := ChunkDigests(content, chunk)
	if _, _, _, err := e.st.Negotiate("/snap/pin", "", content.Len(), chunk, digests); err != nil {
		t.Fatal(err)
	}
	if _, err := e.st.PutChunkAt("/snap/pin", 0, content.Slice(0, chunk)); err != nil {
		t.Fatal(err)
	}
	// The in-flight upload shields its shipped chunk from a concurrent GC.
	gs, _, err := e.st.GC(0)
	if err != nil {
		t.Fatal(err)
	}
	if gs.ChunksReclaimed != 0 || gs.ChunksLive != 1 {
		t.Fatalf("gc swept a pinned chunk: %+v", gs)
	}
	e.st.AbortUpload("/snap/pin")
	gs, _, err = e.st.GC(0)
	if err != nil {
		t.Fatal(err)
	}
	if gs.ChunksReclaimed != 1 || e.st.Stats().Chunks != 0 {
		t.Fatalf("gc after abort: %+v", gs)
	}
}

// TestCommittedUploadDoesNotPinChunks is the regression for the GC leak:
// a committed upload entry lingers (so late CloseUpload replays from
// sibling streams stay idempotent) but must not pin chunks once the
// snapshot itself is released.
func TestCommittedUploadDoesNotPinChunks(t *testing.T) {
	e := newEnv(t)
	const chunk = 4096
	content := testContent(7, 3*chunk)
	putAll(t, e, "/snap/lin/ctx", "", content, chunk)
	// A late close replay still reports committed.
	committed, _, err := e.st.CloseUpload("/snap/lin/ctx")
	if err != nil || !committed {
		t.Fatalf("close replay: committed=%v err=%v", committed, err)
	}
	if _, err := e.st.Release("/snap/lin/ctx"); err != nil {
		t.Fatal(err)
	}
	gs, _, err := e.st.GC(0)
	if err != nil {
		t.Fatal(err)
	}
	if gs.ChunksReclaimed != 3 || e.st.Stats().Chunks != 0 {
		t.Fatalf("lingering committed upload pinned chunks: %+v", gs)
	}
}

// TestRenegotiateResumesPartialUpload is the mid-upload crash retry path:
// chunks shipped before the writer died drop out of the second need set.
func TestRenegotiateResumesPartialUpload(t *testing.T) {
	e := newEnv(t)
	const chunk = 4096
	content := testContent(8, 3*chunk)
	digests := ChunkDigests(content, chunk)
	need, _, _, err := e.st.Negotiate("/snap/re", "", content.Len(), chunk, digests)
	if err != nil {
		t.Fatal(err)
	}
	if len(need) != 3 {
		t.Fatalf("cold need %v", need)
	}
	if _, err := e.st.PutChunkAt("/snap/re", 0, content.Slice(0, chunk)); err != nil {
		t.Fatal(err)
	}
	e.st.AbortAll() // the daemon died; stream state is gone

	need, committed, _, err := e.st.Negotiate("/snap/re", "", content.Len(), chunk, digests)
	if err != nil {
		t.Fatal(err)
	}
	if committed || len(need) != 2 {
		t.Fatalf("retry negotiation: committed=%v need=%v, want the 2 unshipped chunks", committed, need)
	}
	m := Manifest{Size: content.Len(), ChunkBytes: chunk}
	for _, idx := range need {
		off := int64(idx) * chunk
		if _, err := e.st.PutChunkAt("/snap/re", off, content.Slice(off, m.chunkLen(idx))); err != nil {
			t.Fatal(err)
		}
	}
	if committed, _, err := e.st.CloseUpload("/snap/re"); err != nil || !committed {
		t.Fatalf("retry close: committed=%v err=%v", committed, err)
	}
	if got := readAll(t, e, "/snap/re"); !blob.Equal(got, content) {
		t.Fatal("resumed upload does not reassemble byte-identical")
	}
}

func TestCommitCrashLeavesSnapshotAbsentAndGCRecovers(t *testing.T) {
	e := newEnv(t)
	const chunk = 4096
	content := testContent(9, 2*chunk)
	digests := ChunkDigests(content, chunk)
	if _, _, _, err := e.st.Negotiate("/snap/cc", "", content.Len(), chunk, digests); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		off := int64(i) * chunk
		if _, err := e.st.PutChunkAt("/snap/cc", off, content.Slice(off, chunk)); err != nil {
			t.Fatal(err)
		}
	}
	e.arm(faultinject.Fault{Site: faultinject.SiteStore, Key: "commit", Kind: faultinject.Crash, Nth: 1})
	if _, _, err := e.st.CloseUpload("/snap/cc"); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("crashed commit returned %v, want ErrInterrupted", err)
	}
	e.disarm()
	// Atomic-or-absent: no manifest, a stale temp, both chunks orphaned.
	if e.st.Has("/snap/cc") {
		t.Fatal("crashed commit left a committed manifest")
	}
	staleTmp := false
	for _, mp := range e.fs.List(ManifestPrefix) {
		if strings.HasSuffix(mp, TmpSuffix) {
			staleTmp = true
		}
	}
	if !staleTmp {
		t.Fatal("crashed commit left no stale temp manifest to sweep")
	}
	if problems, _ := e.st.Verify(); len(problems) == 0 {
		t.Fatal("verify did not flag the stale temp manifest")
	}
	gs, _, err := e.st.GC(0)
	if err != nil {
		t.Fatal(err)
	}
	if gs.TmpSwept != 1 || gs.ChunksReclaimed != 2 {
		t.Fatalf("recovery gc: %+v", gs)
	}
	if problems, _ := e.st.Verify(); len(problems) != 0 {
		t.Fatalf("store inconsistent after recovery gc: %v", problems)
	}
	// The retry path works: a fresh upload of the same snapshot commits.
	putAll(t, e, "/snap/cc", "", content, chunk)
	if got := readAll(t, e, "/snap/cc"); !blob.Equal(got, content) {
		t.Fatal("post-recovery upload does not reassemble byte-identical")
	}
}

func TestGCCrashIsResumable(t *testing.T) {
	e := newEnv(t)
	const chunk = 4096
	content := testContent(10, 4*chunk)
	putAll(t, e, "/snap/gcc/ctx", "", content, chunk)
	if _, err := e.st.Release("/snap/gcc/ctx"); err != nil {
		t.Fatal(err)
	}
	e.arm(faultinject.Fault{Site: faultinject.SiteStore, Key: "gc", Kind: faultinject.Crash, Nth: 2})
	gs, _, err := e.st.GC(0)
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("crashed gc returned %v, want ErrInterrupted", err)
	}
	if gs.ChunksScanned != 2 || gs.ChunksReclaimed != 1 {
		t.Fatalf("interrupted gc stats: %+v", gs)
	}
	e.disarm()
	// The sweep only deletes garbage, so the re-run converges.
	if _, _, err := e.st.GC(0); err != nil {
		t.Fatal(err)
	}
	if s := e.st.Stats(); s.Chunks != 0 || s.ReclaimableChunks != 0 {
		t.Fatalf("gc re-run did not converge: %+v", s)
	}
	if problems, _ := e.st.Verify(); len(problems) != 0 {
		t.Fatalf("verify after interrupted+resumed gc: %v", problems)
	}
}

func TestVerifyDetectsCorruptionAndMissingChunks(t *testing.T) {
	e := newEnv(t)
	const chunk = 4096
	content := testContent(11, 2*chunk)
	digests := ChunkDigests(content, chunk)
	putAll(t, e, "/snap/v/ctx", "", content, chunk)
	if problems, _ := e.st.Verify(); len(problems) != 0 {
		t.Fatalf("clean store flagged: %v", problems)
	}
	// Flip a chunk's content under its digest name.
	if _, err := e.fs.WriteFile(chunkPath(digests[0]), testContent(12, chunk)); err != nil {
		t.Fatal(err)
	}
	problems, _ := e.st.Verify()
	if len(problems) != 1 || !strings.Contains(problems[0], "digests to") {
		t.Fatalf("corrupt chunk not flagged: %v", problems)
	}
	// Remove the other chunk: the manifest's reference dangles.
	if err := e.fs.Remove(chunkPath(digests[1])); err != nil {
		t.Fatal(err)
	}
	problems, _ = e.st.Verify()
	found := false
	for _, p := range problems {
		if strings.Contains(p, "missing") {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing chunk not flagged: %v", problems)
	}
}

func TestOverlayRangeAndPassthroughReads(t *testing.T) {
	e := newEnv(t)
	const chunk = 4096
	content := testContent(13, 3*chunk+200)
	putAll(t, e, "/snap/o/ctx", "", content, chunk)
	fs := Overlay(e.st, vfs.Host(e.fs))

	if got := readAll(t, e, "/snap/o/ctx"); !blob.Equal(got, content) {
		t.Fatal("whole-file overlay read differs")
	}
	// A range crossing a chunk boundary.
	off, n := int64(chunk-100), int64(chunk+300)
	r, err := fs.OpenRange("/snap/o/ctx", off, n)
	if err != nil {
		t.Fatal(err)
	}
	if r.Size() != n {
		t.Fatalf("range size %d, want %d", r.Size(), n)
	}
	var parts []blob.Blob
	for {
		b, _, err := r.Next(512)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, b)
	}
	if got := blob.Concat(parts...); !blob.Equal(got, content.Slice(off, n)) {
		t.Fatal("range overlay read differs")
	}
	// A range past the end fails fast.
	if _, err := fs.OpenRange("/snap/o/ctx", content.Len()-10, 20); err == nil {
		t.Fatal("out-of-range open succeeded")
	}
	// Plain files pass through untouched.
	plain := testContent(14, 1000)
	if _, err := e.fs.WriteFile("/plain/file", plain); err != nil {
		t.Fatal(err)
	}
	pr, err := fs.Open("/plain/file")
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := pr.Next(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if !blob.Equal(b, plain) {
		t.Fatal("passthrough read differs")
	}
}
